package bioperfload

import (
	"strings"
	"testing"
)

func TestProgramsRegistry(t *testing.T) {
	all := Programs()
	if len(all) != 9 {
		t.Fatalf("got %d programs, want 9", len(all))
	}
	if len(TransformedPrograms()) != 6 {
		t.Fatal("want 6 transformable programs")
	}
	for _, p := range all {
		got, err := Program(p.Name)
		if err != nil || got.Name != p.Name {
			t.Errorf("Program(%q) = %v, %v", p.Name, got, err)
		}
	}
	if _, err := Program("doom"); err == nil {
		t.Error("unknown program accepted")
	}
	if len(SPECAnalogs()) != 3 {
		t.Error("want 3 SPEC analogs")
	}
}

func TestPlatformsRegistry(t *testing.T) {
	if len(Platforms()) != 4 {
		t.Fatal("want 4 platforms")
	}
	p, err := PlatformByName("alpha21264")
	if err != nil || p.Name != "alpha21264" {
		t.Fatal(err)
	}
	if _, err := PlatformByName("sparc"); err == nil {
		t.Error("unknown platform accepted")
	}
}

func TestCompileMiniCPublicAPI(t *testing.T) {
	prog, err := CompileMiniC("t.mc", `
int main() {
	int i; int s = 0;
	for (i = 1; i <= 100; i++) s += i;
	print(s);
	return 0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(prog)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IntOutput) != 1 || res.IntOutput[0] != 5050 {
		t.Fatalf("output = %v", res.IntOutput)
	}

	if _, err := CompileMiniC("bad.mc", "int main( {"); err == nil {
		t.Error("syntax error not surfaced")
	}
	if _, err := CompileMiniC("bad.mc", "int f() { return 1; }"); err == nil ||
		!strings.Contains(err.Error(), "main") {
		t.Errorf("missing main not surfaced: %v", err)
	}
}

func TestCharacterizePublicAPI(t *testing.T) {
	p, err := Program("predator")
	if err != nil {
		t.Fatal(err)
	}
	a, err := Characterize(p, SizeTest)
	if err != nil {
		t.Fatal(err)
	}
	if a.Mix().Total == 0 {
		t.Fatal("empty analysis")
	}
	if a.Mix().FPFraction <= 0 {
		t.Error("predator should execute floating-point code")
	}
}

func TestEvaluateAndSpeedupPublicAPI(t *testing.T) {
	p, err := Program("dnapenny")
	if err != nil {
		t.Fatal(err)
	}
	alpha, _ := PlatformByName("alpha21264")
	st, err := Evaluate(p, alpha, SizeTest, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycles == 0 || st.Instructions == 0 {
		t.Fatal("empty stats")
	}
	sp, err := Speedup(p, alpha, SizeTest)
	if err != nil {
		t.Fatal(err)
	}
	if sp < -0.5 || sp > 3 {
		t.Errorf("implausible speedup %.2f", sp)
	}

	blast, _ := Program("blast")
	if _, err := Speedup(blast, alpha, SizeTest); err == nil {
		t.Error("Speedup must reject non-transformable programs")
	}
}

func TestCompilerOptionConstructors(t *testing.T) {
	d := DefaultCompiler()
	if !d.Opt.IfConvert || !d.Opt.Schedule {
		t.Error("default compiler should enable the paper's passes")
	}
	u := UnoptimizedCompiler()
	if u.Opt.IfConvert || u.Opt.Fold {
		t.Error("unoptimized compiler should disable passes")
	}
}
