// Characterize reproduces the paper's Section 2 study for one
// application: instruction mix, static-load coverage, cache behaviour,
// load-to-branch sequences, and the hot-load profile with source
// attribution (the paper's Figures 1-2 and Tables 2/4/5 for
// hmmsearch).
package main

import (
	"fmt"
	"log"

	"bioperfload"
)

func main() {
	p, err := bioperfload.Program("hmmsearch")
	if err != nil {
		log.Fatal(err)
	}
	a, err := bioperfload.Characterize(p, bioperfload.SizeTest)
	if err != nil {
		log.Fatal(err)
	}

	m := a.Mix()
	fmt.Printf("== %s ==\n", p.Name)
	fmt.Printf("instruction mix: %.1f%% loads, %.1f%% stores, %.1f%% branches, %.1f%% other\n",
		m.LoadPct, m.StorePct, m.BranchPct, m.OtherPct)

	fmt.Printf("\nstatic-load coverage (the paper's key observation):\n")
	for _, n := range []int{1, 10, 20, 40, 80} {
		fmt.Printf("  top %3d static loads cover %5.1f%% of dynamic loads\n",
			n, 100*a.CoverageAt(n))
	}

	c := a.CacheReport()
	fmt.Printf("\ncache: L1 miss %.2f%%, overall to memory %.3f%%, AMAT %.2f cycles\n",
		100*c.L1Local, 100*c.Overall, c.AMAT)
	fmt.Println("=> the loads almost always hit; the bottleneck is the L1 HIT latency")

	s := a.Sequences()
	fmt.Printf("\nload-to-branch sequences: %.1f%% of loads (fed branches mispredict %.1f%%)\n",
		s.LoadToBranchPct, 100*s.FedBranchMispredictRate)
	fmt.Printf("loads right after hard-to-predict branches: %.1f%%\n", s.LoadAfterHardBranchPct)

	fmt.Printf("\nhottest loads (Table 5):\n")
	for _, h := range a.HotLoads(5) {
		fmt.Printf("  freq %5.2f%%  L1 miss %5.2f%%  branch mispredict %5.2f%%  %s line %d\n",
			100*h.Frequency, 100*h.L1MissRate, 100*h.BranchMispred, h.Func, h.Line)
	}
}
