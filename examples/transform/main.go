// Transform demonstrates the paper's Section 3 result end to end: the
// same hmmsearch workload is compiled from the original sources
// (Figure 6a) and from the load-transformed sources (Figure 6c), both
// run on the modeled Alpha 21264, and the cycle-level effects of the
// source-level load scheduling are shown — fewer hard branches (they
// became conditional moves), a shorter critical path, and a speedup.
package main

import (
	"fmt"
	"log"

	"bioperfload"
)

func main() {
	p, err := bioperfload.Program("hmmsearch")
	if err != nil {
		log.Fatal(err)
	}
	alpha, err := bioperfload.PlatformByName("alpha21264")
	if err != nil {
		log.Fatal(err)
	}

	orig, err := bioperfload.Evaluate(p, alpha, bioperfload.SizeTest, false)
	if err != nil {
		log.Fatal(err)
	}
	trans, err := bioperfload.Evaluate(p, alpha, bioperfload.SizeTest, true)
	if err != nil {
		log.Fatal(err)
	}

	show := func(label string, s bioperfload.PipelineStats) {
		fmt.Printf("%-16s %9d cycles  IPC %.2f  %7d cond branches  %6d mispredicts (%.2f%%)\n",
			label, s.Cycles, s.IPC(), s.CondBranches, s.Mispredicts, 100*s.MispredictRate())
	}
	fmt.Printf("hmmsearch on the modeled Alpha 21264 (identical outputs, verified):\n\n")
	show("original:", orig)
	show("transformed:", trans)

	fmt.Printf("\nthe transformation eliminated %d of %d conditional branches (CMOV if-conversion)\n",
		orig.CondBranches-trans.CondBranches, orig.CondBranches)
	fmt.Printf("and removed %.0f%% of the mispredictions,\n",
		100*(1-float64(trans.Mispredicts)/float64(orig.Mispredicts)))
	fmt.Printf("for a speedup of %.1f%%\n",
		(float64(orig.Cycles)/float64(trans.Cycles)-1)*100)
}
