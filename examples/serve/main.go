// Serve boots the bioperfd characterization service in-process on a
// loopback listener and drives it like a client: submit a sweep,
// stream its progress events, fetch the result, and show that a
// repeated request answers from the shared session's cache.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"bioperfload/internal/runner"
	"bioperfload/internal/service"
)

func main() {
	log.SetFlags(0)
	svc := service.New(service.Config{Session: runner.NewSession(0)})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: svc.Handler()}
	go httpSrv.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Printf("bioperfd serving on %s\n\n", base)

	// Submit a characterization sweep across all nine programs.
	resp, err := http.Post(base+"/v1/sweep", "application/json",
		strings.NewReader(`{"kind":"characterize","size":"test"}`))
	if err != nil {
		log.Fatal(err)
	}
	var sub service.SubmitResponse
	json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	fmt.Printf("submitted sweep: job=%s status=%s\n", sub.JobID, sub.Status)

	// Stream its progress log (NDJSON) until the terminal event.
	events, err := http.Get(base + "/v1/jobs/" + sub.JobID + "/events")
	if err != nil {
		log.Fatal(err)
	}
	sc := bufio.NewScanner(events.Body)
	for sc.Scan() {
		var ev service.Event
		if json.Unmarshal(sc.Bytes(), &ev) == nil {
			fmt.Printf("  event[%d] %s\n", ev.Seq, ev.Message)
		}
	}
	events.Body.Close()

	// Fetch the finished job and summarize the per-program results.
	resp, err = http.Get(base + "/v1/jobs/" + sub.JobID)
	if err != nil {
		log.Fatal(err)
	}
	var view struct {
		Status service.Status      `json:"status"`
		Result service.SweepResult `json:"result"`
	}
	json.NewDecoder(resp.Body).Decode(&view)
	resp.Body.Close()
	fmt.Printf("\nsweep %s: %d programs characterized\n", view.Status, len(view.Result.Characterize))
	for _, r := range view.Result.Characterize {
		fmt.Printf("  %-12s %9d insts  loads %5.2f%%  L1 miss %5.2f%%\n",
			r.Program, r.Instructions, r.Mix.LoadPct, r.Cache.L1LocalPct)
	}

	// A repeated characterize now answers from the session cache.
	start := time.Now()
	resp, err = http.Post(base+"/v1/characterize", "application/json",
		bytes.NewReader([]byte(`{"program":"hmmsearch","size":"test","wait":true}`)))
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("\ncached characterize answered in %s\n", time.Since(start).Round(time.Microsecond))
	fmt.Printf("session counters: %+v\n", svc.Session().Stats())

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	httpSrv.Shutdown(ctx)
	svc.Shutdown(ctx)
}
