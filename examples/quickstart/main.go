// Quickstart: compile a MiniC program with the toolchain, run it on
// the simulated Alpha-like machine, and print its output — the
// shortest path through the library's public API.
package main

import (
	"fmt"
	"log"

	"bioperfload"
)

const source = `
int fib[32];

int main() {
	int i;
	fib[0] = 0;
	fib[1] = 1;
	for (i = 2; i < 32; i++) {
		fib[i] = fib[i-1] + fib[i-2];
	}
	print(fib[10]);
	print(fib[31]);
	double golden = (double)fib[31] / (double)fib[30];
	print(golden);
	return 0;
}
`

func main() {
	prog, err := bioperfload.CompileMiniC("fib.mc", source)
	if err != nil {
		log.Fatal(err)
	}
	m, err := bioperfload.NewMachine(prog)
	if err != nil {
		log.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fib(10) = %d\n", res.IntOutput[0])
	fmt.Printf("fib(31) = %d\n", res.IntOutput[1])
	fmt.Printf("ratio   = %.6f (golden ratio)\n", res.FPOutput[0])
	fmt.Printf("executed %d simulated instructions\n", res.Instructions)
}
