// Platformsweep reproduces a slice of Table 8 / Figure 9: one
// transformed application timed on all four modeled platforms,
// showing the paper's cross-platform shape (out-of-order machines
// with multicycle L1 benefit most; the register-scarce Pentium 4
// benefits least).
package main

import (
	"fmt"
	"log"

	"bioperfload"
)

func main() {
	p, err := bioperfload.Program("hmmsearch")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("load-transformation speedup for %s (test inputs):\n\n", p.Name)
	fmt.Printf("%-12s %-58s %8s\n", "platform", "configuration", "speedup")
	for _, plat := range bioperfload.Platforms() {
		sp, err := bioperfload.Speedup(p, plat, bioperfload.SizeTest)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %-58s %7.1f%%\n", plat.Name, plat.Description, 100*sp)
	}
	fmt.Println("\n(paper, class-C inputs on real hardware: Alpha +92%, PPC +27%, P4 +11%, Itanium +28% for hmmsearch)")
}
