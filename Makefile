GO ?= go

.PHONY: check vet build test race smoke serve-smoke experiments bench bench-service

# check is the full gate: static analysis, build, the race-enabled
# test suite, and an end-to-end experiments smoke run.
check: vet build race smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# smoke regenerates every table and figure at test size through the
# parallel session, proving the whole pipeline end to end.
smoke:
	$(GO) run ./cmd/experiments -size test -timing test > /dev/null

# experiments reproduces the paper-scale artifacts and records the
# perf trajectory in BENCH_experiments.json.
experiments:
	$(GO) run ./cmd/experiments -size classB -timing classB \
		-bench-json BENCH_experiments.json > experiments_classB.txt

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# serve-smoke proves the bioperfd daemon end to end: boot, health
# check, one characterize over the API, graceful SIGTERM drain.
SMOKE_ADDR ?= 127.0.0.1:18980
serve-smoke:
	$(GO) build -o bioperfd.smoke ./cmd/bioperfd
	@set -e; ./bioperfd.smoke -addr $(SMOKE_ADDR) & pid=$$!; \
	trap 'kill $$pid 2>/dev/null || true; rm -f bioperfd.smoke' EXIT; \
	ok=; for i in $$(seq 1 100); do \
		curl -sf http://$(SMOKE_ADDR)/healthz >/dev/null 2>&1 && ok=1 && break; \
		sleep 0.1; \
	done; \
	test -n "$$ok" || { echo "serve-smoke: daemon never became healthy" >&2; exit 1; }; \
	curl -sf http://$(SMOKE_ADDR)/healthz; \
	curl -sf -X POST http://$(SMOKE_ADDR)/v1/characterize \
		-d '{"program":"hmmsearch","size":"test","wait":true}' \
		| grep -q '"status": "done"' \
		|| { echo "serve-smoke: characterize did not finish" >&2; exit 1; }; \
	curl -sf http://$(SMOKE_ADDR)/metrics | grep -q bioperfd_http_requests_total \
		|| { echo "serve-smoke: metrics missing" >&2; exit 1; }; \
	kill -TERM $$pid; wait $$pid; \
	echo "serve-smoke: OK"

# bench-service records the daemon's cold vs cached characterize
# latency over the loopback API at paper scale.
bench-service:
	$(GO) run ./cmd/bioperfd -bench BENCH_service.json -bench-size classB
