GO ?= go

.PHONY: check fmt-check vet build test race race-concurrent smoke fuzz-smoke serve-smoke cluster-smoke experiments bench bench-service bench-trace bench-replay-scaling validate-timing sweep-smoke sample-smoke bench-sampling

# check is the full gate: formatting, static analysis, build, the
# race-enabled test suite, and an end-to-end experiments smoke run.
check: fmt-check vet build race smoke

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; echo "$$unformatted" >&2; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# race-concurrent stresses the concurrency-heavy packages — shard
# workers and pass merges, decode pools and slab recycling, the job
# queue and event streams, session singleflight — with repeated runs
# under the race detector.
# -timeout covers three race-instrumented repetitions of the runner
# suite, which exceed go test's 10-minute default on a single core.
race-concurrent:
	$(GO) test -race -count 3 -timeout 30m ./internal/loadchar ./internal/trace ./internal/service ./internal/runner ./internal/cluster ./internal/simpoint ./internal/bpred ./internal/cache

# smoke regenerates every table and figure at test size through the
# parallel session, proving the whole pipeline end to end.
smoke:
	$(GO) run ./cmd/experiments -size test -timing test > /dev/null

# fuzz-smoke gives the trace codec fuzzer a short budget on top of the
# checked-in corpus (which always runs as part of `go test`).
fuzz-smoke:
	$(GO) test ./internal/trace -run '^$$' -fuzz FuzzCodec -fuzztime 10s

# validate-timing asserts the fast scoreboard tier reproduces the full
# model's speedup and cross-platform ratios within the checked-in
# per-program tolerances (internal/scoreboard/validate). Runs at test
# size by default; VALIDATE_SIZE=classB is the paper-scale check.
VALIDATE_SIZE ?= test
validate-timing:
	$(GO) run ./cmd/bioperf validate-timing -size $(VALIDATE_SIZE)

# sweep-smoke runs the platform-parameter sweep grid end to end at
# test size on the fast tier.
sweep-smoke:
	$(GO) run ./cmd/experiments -size test -timing test -only sweep > /dev/null

# experiments reproduces the paper-scale artifacts and records the
# perf trajectory in BENCH_experiments.json. The canonical tables use
# the full-tier model (byte-identical to the paper reproduction); the
# bench file additionally records fast-tier best-of-N timings, and the
# sweep grid and causal ablations are appended to the text artifact.
experiments:
	$(GO) run ./cmd/experiments -size classB -timing classB -fidelity full \
		-sweep -ablations -bench-json BENCH_experiments.json > experiments_classB.txt

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# serve-smoke proves the bioperfd daemon end to end: boot with a
# persistent artifact store, health check, one characterize over the
# API, graceful SIGTERM drain — then restart on the same store and
# show the second characterize is served from persisted artifacts
# without re-simulating (store hits and profile hits move on /metrics).
SMOKE_ADDR ?= 127.0.0.1:18980
serve-smoke:
	$(GO) build -o bioperfd.smoke ./cmd/bioperfd
	@set -e; store=$$(mktemp -d); \
	./bioperfd.smoke -addr $(SMOKE_ADDR) -store $$store & pid=$$!; \
	trap 'kill $$pid 2>/dev/null || true; rm -rf bioperfd.smoke "$$store"' EXIT; \
	ok=; for i in $$(seq 1 100); do \
		curl -sf http://$(SMOKE_ADDR)/healthz >/dev/null 2>&1 && ok=1 && break; \
		sleep 0.1; \
	done; \
	test -n "$$ok" || { echo "serve-smoke: daemon never became healthy" >&2; exit 1; }; \
	curl -sf http://$(SMOKE_ADDR)/healthz; \
	curl -sf -X POST http://$(SMOKE_ADDR)/v1/characterize \
		-d '{"program":"hmmsearch","size":"test","wait":true}' \
		| grep -q '"status": "done"' \
		|| { echo "serve-smoke: characterize did not finish" >&2; exit 1; }; \
	curl -sf -X POST http://$(SMOKE_ADDR)/v1/evaluate \
		-d '{"program":"hmmsearch","platform":"alpha21264","size":"test","wait":true}' \
		| grep -q '"fidelity": "fast"' \
		|| { echo "serve-smoke: fast-tier evaluate did not finish" >&2; exit 1; }; \
	curl -sf -X POST http://$(SMOKE_ADDR)/v1/evaluate \
		-d '{"program":"hmmsearch","platform":"alpha21264","size":"test","fidelity":"full","wait":true}' \
		| grep -q '"fidelity": "full"' \
		|| { echo "serve-smoke: full-tier evaluate did not finish" >&2; exit 1; }; \
	curl -sf http://$(SMOKE_ADDR)/metrics | grep -q bioperfd_http_requests_total \
		|| { echo "serve-smoke: metrics missing" >&2; exit 1; }; \
	curl -sf http://$(SMOKE_ADDR)/metrics \
		| grep -q 'bioperfd_timing_requests_total{kind="evaluate",fidelity="fast"} 1' \
		|| { echo "serve-smoke: fast-tier counter missing" >&2; exit 1; }; \
	curl -sf http://$(SMOKE_ADDR)/metrics \
		| grep -q 'bioperfd_timing_requests_total{kind="evaluate",fidelity="full"} 1' \
		|| { echo "serve-smoke: full-tier counter missing" >&2; exit 1; }; \
	kill -TERM $$pid; wait $$pid; \
	./bioperfd.smoke -addr $(SMOKE_ADDR) -store $$store & pid=$$!; \
	ok=; for i in $$(seq 1 100); do \
		curl -sf http://$(SMOKE_ADDR)/healthz >/dev/null 2>&1 && ok=1 && break; \
		sleep 0.1; \
	done; \
	test -n "$$ok" || { echo "serve-smoke: restarted daemon never became healthy" >&2; exit 1; }; \
	curl -sf -X POST http://$(SMOKE_ADDR)/v1/characterize \
		-d '{"program":"hmmsearch","size":"test","wait":true}' \
		| grep -q '"status": "done"' \
		|| { echo "serve-smoke: warm characterize did not finish" >&2; exit 1; }; \
	curl -sf http://$(SMOKE_ADDR)/metrics | grep -Eq 'bioperfd_store_hits [1-9]' \
		|| { echo "serve-smoke: restart did not hit the store" >&2; exit 1; }; \
	curl -sf http://$(SMOKE_ADDR)/metrics | grep -Eq 'bioperfd_session_(profile_hits|replay_runs) [1-9]' \
		|| { echo "serve-smoke: warm characterize was not served from the store" >&2; exit 1; }; \
	kill -TERM $$pid; wait $$pid; \
	echo "serve-smoke: OK (cold boot + warm restart from store)"

# cluster-smoke proves the fleet end to end: boot three daemons with
# separate stores joined by -peers, compute one characterization cold
# on node 1, then show nodes 2 and 3 answer the same request with ZERO
# simulations of their own — served through the peer artifact tier (or
# a replicated snapshot), asserted on each node's /metrics counters.
# -replicas 0 keeps at most one pushed copy, so at least one of the
# two warm nodes must fetch from a peer.
CLUSTER_ADDR1 ?= 127.0.0.1:18981
CLUSTER_ADDR2 ?= 127.0.0.1:18982
CLUSTER_ADDR3 ?= 127.0.0.1:18983
cluster-smoke:
	$(GO) build -o bioperfd.cluster ./cmd/bioperfd
	@set -e; s1=$$(mktemp -d); s2=$$(mktemp -d); s3=$$(mktemp -d); \
	u1=http://$(CLUSTER_ADDR1); u2=http://$(CLUSTER_ADDR2); u3=http://$(CLUSTER_ADDR3); \
	./bioperfd.cluster -addr $(CLUSTER_ADDR1) -store $$s1 -self $$u1 -peers $$u2,$$u3 -replicas 0 & p1=$$!; \
	./bioperfd.cluster -addr $(CLUSTER_ADDR2) -store $$s2 -self $$u2 -peers $$u1,$$u3 -replicas 0 & p2=$$!; \
	./bioperfd.cluster -addr $(CLUSTER_ADDR3) -store $$s3 -self $$u3 -peers $$u1,$$u2 -replicas 0 & p3=$$!; \
	trap 'kill $$p1 $$p2 $$p3 2>/dev/null || true; rm -rf bioperfd.cluster "$$s1" "$$s2" "$$s3"' EXIT; \
	for u in $$u1 $$u2 $$u3; do \
		ok=; for i in $$(seq 1 100); do \
			curl -sf $$u/healthz >/dev/null 2>&1 && ok=1 && break; \
			sleep 0.1; \
		done; \
		test -n "$$ok" || { echo "cluster-smoke: $$u never became healthy" >&2; exit 1; }; \
	done; \
	curl -sf -X POST $$u1/v1/characterize \
		-d '{"program":"hmmsearch","size":"test","wait":true}' \
		| grep -q '"status": "done"' \
		|| { echo "cluster-smoke: cold characterize on node 1 failed" >&2; exit 1; }; \
	curl -sf $$u1/metrics | grep -q 'bioperfd_serve_source_total{source="cold"} 1' \
		|| { echo "cluster-smoke: node 1 did not count a cold characterize" >&2; exit 1; }; \
	peer=0; \
	for u in $$u2 $$u3; do \
		curl -sf -X POST $$u/v1/characterize \
			-d '{"program":"hmmsearch","size":"test","wait":true}' \
			| grep -q '"status": "done"' \
			|| { echo "cluster-smoke: warm characterize on $$u failed" >&2; exit 1; }; \
		curl -sf $$u/metrics | grep -q 'bioperfd_serve_source_total{source="cold"} 0' \
			|| { echo "cluster-smoke: $$u re-simulated instead of serving warm" >&2; exit 1; }; \
		curl -sf $$u/metrics | grep -q 'bioperfd_session_runs 0' \
			|| { echo "cluster-smoke: $$u ran a simulation" >&2; exit 1; }; \
		n=$$(curl -sf $$u/metrics | sed -n 's/^bioperfd_serve_source_total{source="peer"} //p'); \
		peer=$$((peer+n)); \
	done; \
	test "$$peer" -ge 1 \
		|| { echo "cluster-smoke: no node served from the peer tier" >&2; exit 1; }; \
	curl -sf $$u2/healthz | grep -q '"cluster"' \
		|| { echo "cluster-smoke: healthz lacks the cluster section" >&2; exit 1; }; \
	kill -TERM $$p1 $$p2 $$p3; wait $$p1 $$p2 $$p3 || true; \
	echo "cluster-smoke: OK (cold on node 1, peer-served on nodes 2 and 3, $$peer peer fetches)"

# sample-smoke proves the sampled characterization path end to end at
# test size: tiny intervals force real clustering (the default 1Mi
# intervals would degrade every test-size trace to exact), and the
# accuracy/speedup JSON goes to a scratch path.
sample-smoke:
	$(GO) run ./cmd/bioperf bench-sampling -programs hmmsearch,predator \
		-sizes test -interval 16384 -n 1 -json /tmp/BENCH_sampling_smoke.json

# bench-sampling records sampled-vs-exact accuracy and speedup:
# classB rows must land within the checked-in per-program tolerances
# (internal/simpoint/tolerances_classB.json) and classC rows must beat
# exact replay by at least 5x, or the target fails.
bench-sampling:
	$(GO) run ./cmd/bioperf bench-sampling -n 3 -check-errors -check-speedup 5 \
		-json BENCH_sampling.json

# bench-service records the daemon's cold vs cached characterize
# latency over the loopback API at paper scale.
bench-service:
	$(GO) run ./cmd/bioperfd -bench BENCH_service.json -bench-size classB

# bench-trace records cold vs store-served characterization plus the
# block-characterized replay timings (including the worker-scaling
# table) and writes the comparison JSON.
TRACE_SIZE ?= classB
TRACE_JSON ?= BENCH_trace.json
bench-trace:
	$(GO) run ./cmd/bioperf bench-trace -size $(TRACE_SIZE) -json $(TRACE_JSON)

# bench-replay-scaling is bench-trace with the replay speedup floors
# enforced: cold characterization over parallel replay must be at
# least MIN_PARALLEL_SPEEDUP, and the GOMAXPROCS=4 replay must beat
# the 1-worker wall clock by MIN_WALL_SCALING (true multi-core
# scaling, not just beating the simulator). The 4x default is the
# paper-scale target on a dedicated machine; CI runs 2x on the small
# shared runner. The wall gate self-skips on hosts with fewer than 4
# CPUs, where a 4-way wall ratio would measure the scheduler.
MIN_PARALLEL_SPEEDUP ?= 4
MIN_WALL_SCALING ?= 2
bench-replay-scaling:
	$(GO) run ./cmd/bioperf bench-trace -size $(TRACE_SIZE) -json $(TRACE_JSON) \
		-min-parallel-speedup $(MIN_PARALLEL_SPEEDUP) \
		-min-wall-scaling $(MIN_WALL_SCALING)
