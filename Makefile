GO ?= go

.PHONY: check vet build test race smoke experiments bench

# check is the full gate: static analysis, build, the race-enabled
# test suite, and an end-to-end experiments smoke run.
check: vet build race smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# smoke regenerates every table and figure at test size through the
# parallel session, proving the whole pipeline end to end.
smoke:
	$(GO) run ./cmd/experiments -size test -timing test > /dev/null

# experiments reproduces the paper-scale artifacts and records the
# perf trajectory in BENCH_experiments.json.
experiments:
	$(GO) run ./cmd/experiments -size classB -timing classB \
		-bench-json BENCH_experiments.json > experiments_classB.txt

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .
