package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"syscall"
	"time"

	"bioperfload/internal/bio"
	"bioperfload/internal/compiler"
	"bioperfload/internal/isa"
	"bioperfload/internal/loadchar"
	"bioperfload/internal/runner"
	"bioperfload/internal/sim"
	"bioperfload/internal/store"
	"bioperfload/internal/trace"
)

func parseSize(s string) (bio.Size, error) {
	switch s {
	case "test":
		return bio.SizeTest, nil
	case "classB", "b", "B":
		return bio.SizeB, nil
	case "classC", "c", "C":
		return bio.SizeC, nil
	}
	return 0, fmt.Errorf("unknown size %q (test|classB|classC)", s)
}

// record simulates p at sz with a trace writer attached and returns
// the validated result. The trace is written to w at the requested
// format version and is only complete (footer present) if record
// returns nil error.
func record(p *bio.Program, prog *isa.Program, sz bio.Size, fp string, w io.Writer, compression string, version int) (*sim.Result, *trace.Writer, error) {
	m, err := sim.New(prog)
	if err != nil {
		return nil, nil, err
	}
	if err := p.Bind(m, sz); err != nil {
		return nil, nil, fmt.Errorf("%s: bind: %w", p.Name, err)
	}
	tw := trace.NewWriterVersion(w, trace.Meta{
		Program:     p.Name,
		Fingerprint: fp,
		Size:        sz.String(),
		Compression: compression,
	}, prog, version)
	m.AddBatchObserver(tw)
	res, err := m.Run()
	if err != nil {
		return nil, nil, err
	}
	if err := p.Validate(res, sz); err != nil {
		return nil, nil, fmt.Errorf("%s: validation: %w", p.Name, err)
	}
	if err := tw.Close(); err != nil {
		return nil, nil, fmt.Errorf("%s: trace: %w", p.Name, err)
	}
	if tw.Events() != res.Instructions {
		return nil, nil, fmt.Errorf("%s: trace recorded %d events for %d instructions",
			p.Name, tw.Events(), res.Instructions)
	}
	return res, tw, nil
}

// cmdTrace records a committed-instruction trace of one program run to
// a file, for later offline replay with `bioperf replay`.
func cmdTrace(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("bioperf trace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	name := fs.String("program", "hmmsearch", "application to record")
	sizeFlag := fs.String("size", "test", "input size (test|classB|classC)")
	out := fs.String("o", "", "output path (default <program>-<size>.trace)")
	comp := fs.String("compression", "flate", "chunk codec: flate (smallest) or none (fastest replay)")
	ver := fs.Int("trace-version", trace.FormatVersion,
		fmt.Sprintf("trace format version to write (1-%d); older versions interoperate with pre-upgrade readers", trace.FormatVersion))
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "bioperf trace: unexpected arguments: %v\n", fs.Args())
		return 2
	}
	sz, err := parseSize(*sizeFlag)
	if err != nil {
		fmt.Fprintf(stderr, "bioperf trace: -size: %v\n", err)
		return 2
	}
	p, err := bio.ByName(*name)
	if err != nil {
		fmt.Fprintf(stderr, "bioperf trace: %v\n", err)
		return 2
	}
	path := *out
	if path == "" {
		path = fmt.Sprintf("%s-%s.trace", p.Name, sz)
	}

	prog, err := p.Compile(false, compiler.Default())
	if err != nil {
		fmt.Fprintf(stderr, "bioperf trace: %v\n", err)
		return 1
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(stderr, "bioperf trace: %v\n", err)
		return 1
	}
	if *comp != "flate" && *comp != "none" {
		fmt.Fprintf(stderr, "bioperf trace: -compression: unknown codec %q (flate|none)\n", *comp)
		return 2
	}
	if *ver < 1 || *ver > trace.FormatVersion {
		fmt.Fprintf(stderr, "bioperf trace: -trace-version: %d out of range (1-%d)\n", *ver, trace.FormatVersion)
		return 2
	}
	// Hash with the version being written so the file's own fingerprint
	// matches what replay recomputes for that version.
	fp := runner.FingerprintAt(p, false, compiler.Default(), *ver)
	res, tw, err := record(p, prog, sz, fp, f, *comp, *ver)
	if err != nil {
		f.Close()
		os.Remove(path)
		fmt.Fprintf(stderr, "bioperf trace: %v\n", err)
		return 1
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(stderr, "bioperf trace: %v\n", err)
		return 1
	}
	st, _ := os.Stat(path)
	fmt.Printf("%s: %d instructions -> %s (%d bytes, %.2f bits/event)\n",
		p.Name, res.Instructions, path, st.Size(),
		8*float64(st.Size())/float64(tw.Events()))
	return 0
}

// cmdReplay re-runs the load characterization from a recorded trace:
// no compilation beyond rebinding instruction metadata, no simulation.
// A v2 trace (footer chunk index) replays through the sharded analyzer;
// v1 traces fall back to the sequential stream, so files recorded
// before the format bump keep working.
func cmdReplay(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("bioperf replay", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jobs := fs.Int("j", 1, "replay shard workers (0 = GOMAXPROCS)")
	hot := fs.Int("hot", 6, "hot loads to print")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintf(stderr, "usage: bioperf replay [-j n] [-hot n] file.trace\n")
		return 2
	}
	if *jobs < 0 {
		fmt.Fprintf(stderr, "bioperf replay: -j: invalid worker count %d\n", *jobs)
		return 2
	}
	if *jobs == 0 {
		*jobs = runtime.GOMAXPROCS(0)
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "bioperf replay: %v\n", err)
		return 1
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		fmt.Fprintf(stderr, "bioperf replay: %v\n", err)
		return 1
	}

	// Prefer the indexed footer; anything unindexable (a v1 trace)
	// streams sequentially. NewIndexedReader reads via ReadAt, so the
	// file offset is still 0 for the fallback.
	var (
		meta    trace.Meta
		version int
		ir      *trace.IndexedReader
		tr      *trace.Reader
	)
	if ir, err = trace.NewIndexedReader(f, fi.Size()); err == nil {
		meta, version = ir.Meta(), ir.Version()
	} else {
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			fmt.Fprintf(stderr, "bioperf replay: %v\n", err)
			return 1
		}
		if tr, err = trace.NewReader(f); err != nil {
			fmt.Fprintf(stderr, "bioperf replay: %v\n", err)
			return 1
		}
		meta, version = tr.Meta(), tr.Version()
	}
	p, err := bio.ByName(meta.Program)
	if err != nil {
		fmt.Fprintf(stderr, "bioperf replay: trace program: %v\n", err)
		return 1
	}
	// Hash with the file's own format version so traces recorded before
	// a format bump still verify against the same program source.
	if fp := runner.FingerprintAt(p, false, compiler.Default(), version); meta.Fingerprint != fp {
		fmt.Fprintf(stderr, "bioperf replay: fingerprint mismatch: trace %s was recorded from a different %s build\n",
			meta.Fingerprint[:12], p.Name)
		return 1
	}
	prog, err := p.Compile(false, compiler.Default())
	if err != nil {
		fmt.Fprintf(stderr, "bioperf replay: %v\n", err)
		return 1
	}

	var a *loadchar.Analysis
	if ir != nil {
		a, err = runner.ReplayAnalyze(context.Background(), prog, ir, *jobs)
	} else if *jobs > 1 {
		src := tr.ParallelEvents(prog, *jobs)
		a, err = loadchar.AnalyzeParallel(context.Background(), prog, src)
		src.Close()
	} else {
		a = loadchar.New(prog)
		_, err = tr.Replay(context.Background(), prog, a)
	}
	if err != nil {
		fmt.Fprintf(stderr, "bioperf replay: %v\n", err)
		return 1
	}
	if tr != nil {
		// The legacy stream path never touches the sharded engine.
		a.Exec = loadchar.Execution{RequestedWorkers: *jobs, Workers: 1, SerialReason: loadchar.SerialReasonNoIndex}
	}
	if e := a.Exec; e.RequestedWorkers > 1 && !e.Parallel() {
		fmt.Fprintf(stderr, "bioperf replay: note: %d workers requested, ran serial (%s)\n", e.RequestedWorkers, e.SerialReason)
	}
	fmt.Print(loadchar.RenderProfile(p.Name, meta.Size, a, *hot))
	return 0
}

// benchTraceFile is the bench-trace JSON document. The headline
// comparison is a cold store-backed characterization (compile +
// simulate + analyze + persist) against the same request served warm
// from the persisted artifacts by a fresh session; the raw replay
// timings document what trace decoding and re-analysis cost on their
// own. Every duration is the best of Samples runs, so one scheduler
// hiccup cannot flip a speedup ratio.
type benchTraceFile struct {
	Tool         string  `json:"tool"`
	Program      string  `json:"program"`
	Size         string  `json:"size"`
	Instructions uint64  `json:"instructions"`
	TraceBytes   int64   `json:"trace_bytes"`
	BitsPerEvent float64 `json:"bits_per_event"`
	Compression  string  `json:"compression"`
	TraceVersion int     `json:"trace_version"`
	Samples      int     `json:"samples"`
	GOMAXPROCS   int     `json:"gomaxprocs"`
	NumCPU       int     `json:"num_cpu"`

	ColdCharacterizeMS  float64 `json:"cold_characterize_ms"`
	WarmCharacterizeMS  float64 `json:"warm_characterize_ms"`
	CharacterizeSpeedup float64 `json:"characterize_speedup"`
	ColdMS              float64 `json:"cold_ms"`
	RecordMS            float64 `json:"record_ms"`

	// Replay timings carry the Execution each measurement actually ran
	// with (the old schema recorded a single top-level "workers" that
	// did not describe any measurement).
	ReplayMS              float64            `json:"replay_ms"`
	ReplayExec            loadchar.Execution `json:"replay_exec"`
	ReplayMem             benchMem           `json:"replay_mem"`
	ParallelReplayMS      float64            `json:"parallel_replay_ms"`
	ParallelReplayExec    loadchar.Execution `json:"parallel_replay_exec"`
	ParallelReplayMem     benchMem           `json:"parallel_replay_mem"`
	ReplaySpeedup         float64            `json:"replay_speedup"`
	ParallelReplaySpeedup float64            `json:"parallel_replay_speedup"`

	// Scaling is the wall-clock scaling table: one replay per
	// GOMAXPROCS setting with a matching worker count, each row
	// reporting wall time, CPU time (user-equivalent work — the wall
	// savings must come from spreading roughly constant CPU work
	// across cores, not from doing less of it), and allocation stats
	// from the decode-slab pools.
	Scaling []benchScalingPoint `json:"replay_scaling"`

	// CrossVersion is the back-compat matrix: the same run recorded at
	// every readable format version, each decoded and re-analyzed
	// against the live profile.
	CrossVersion []benchVersionPoint `json:"cross_version"`

	ProfilesIdentical bool   `json:"profiles_identical"`
	Generated         string `json:"generated"`
}

// benchMem is the allocation delta across one measured region, read
// from runtime.MemStats. A healthy slab-recycling decode path keeps
// Mallocs near-flat between samples of the same measurement.
type benchMem struct {
	Mallocs    uint64 `json:"mallocs"`
	AllocBytes uint64 `json:"alloc_bytes"`
}

// benchScalingPoint is one row of the wall-clock scaling table.
type benchScalingPoint struct {
	GOMAXPROCS  int                `json:"gomaxprocs"`
	Exec        loadchar.Execution `json:"exec"`
	WallMS      float64            `json:"wall_ms"`
	CPUMS       float64            `json:"cpu_ms"`
	Speedup     float64            `json:"speedup"`      // cold simulate / this wall
	WallScaling float64            `json:"wall_scaling"` // 1-worker wall / this wall
	Mem         benchMem           `json:"mem"`
}

// benchVersionPoint is one row of the cross-version matrix.
type benchVersionPoint struct {
	Version           int     `json:"version"`
	TraceBytes        int64   `json:"trace_bytes"`
	BitsPerEvent      float64 `json:"bits_per_event"`
	DecodeNSPerEvent  float64 `json:"decode_ns_per_event"`
	ProfilesIdentical bool    `json:"profiles_identical"`
}

// measurement is one timed region: wall clock, process CPU time
// (user+system, from getrusage — on a multi-core run CPU stays near
// the 1-worker wall while wall drops), and the allocation delta.
type measurement struct {
	Wall time.Duration
	CPU  time.Duration
	Mem  benchMem
}

func (m measurement) WallMS() float64 { return m.Wall.Seconds() * 1e3 }

// cpuTime returns the process's cumulative user+system CPU time.
func cpuTime() time.Duration {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return time.Duration(ru.Utime.Nano() + ru.Stime.Nano())
}

// measureBest runs f n times and returns the sample with the minimum
// wall time. The minimum — not the mean — is the right statistic for a
// deterministic workload: every sample computes the same thing, so all
// variance is noise added on top and the fastest run is the closest
// estimate of the true cost. CPU and allocation stats come from that
// same fastest sample so the row is internally consistent.
func measureBest(n int, f func() error) (measurement, error) {
	best := measurement{Wall: -1}
	for i := 0; i < n; i++ {
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		c0 := cpuTime()
		start := time.Now()
		if err := f(); err != nil {
			return measurement{}, err
		}
		wall := time.Since(start)
		c1 := cpuTime()
		runtime.ReadMemStats(&m1)
		if best.Wall < 0 || wall < best.Wall {
			best = measurement{
				Wall: wall,
				CPU:  c1 - c0,
				Mem:  benchMem{Mallocs: m1.Mallocs - m0.Mallocs, AllocBytes: m1.TotalAlloc - m0.TotalAlloc},
			}
		}
	}
	return best, nil
}

// bestOf runs f n times and returns the minimum duration.
func bestOf(n int, f func() (time.Duration, error)) (time.Duration, error) {
	best := time.Duration(-1)
	for i := 0; i < n; i++ {
		d, err := f()
		if err != nil {
			return 0, err
		}
		if best < 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// cmdBenchTrace measures cold vs store-served characterization (and
// raw trace replay) and writes the comparison as JSON. With -check N
// it exits non-zero when the characterize speedup falls below N.
func cmdBenchTrace(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("bioperf bench-trace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	name := fs.String("program", "hmmsearch", "application to benchmark")
	sizeFlag := fs.String("size", "classB", "input size (test|classB|classC)")
	jsonPath := fs.String("json", "BENCH_trace.json", "output JSON path")
	jobs := fs.Int("j", 0, "parallel replay shard workers (0 = GOMAXPROCS)")
	samples := fs.Int("n", 3, "samples per timing (best-of-N)")
	check := fs.Float64("check", 0, "fail unless warm characterize speedup >= this (0 = no check)")
	minPar := fs.Float64("min-parallel-speedup", 0, "fail unless parallel replay speedup >= this (0 = no check)")
	minWall := fs.Float64("min-wall-scaling", 0,
		"fail unless the GOMAXPROCS=4 replay wall time beats 1-worker by >= this factor (0 = no check; skipped with a note when the host has fewer than 4 CPUs)")
	comp := fs.String("compression", "none", "trace codec for the replay benchmark (none|flate); none keeps inflate off the replay critical path")
	ver := fs.Int("trace-version", trace.FormatVersion,
		fmt.Sprintf("trace format version for the replay benchmark (1-%d)", trace.FormatVersion))
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "bioperf bench-trace: unexpected arguments: %v\n", fs.Args())
		return 2
	}
	if *samples < 1 {
		fmt.Fprintf(stderr, "bioperf bench-trace: -n: invalid sample count %d\n", *samples)
		return 2
	}
	if *jobs < 0 {
		fmt.Fprintf(stderr, "bioperf bench-trace: -j: invalid worker count %d\n", *jobs)
		return 2
	}
	if *jobs == 0 {
		*jobs = runtime.GOMAXPROCS(0)
	}
	sz, err := parseSize(*sizeFlag)
	if err != nil {
		fmt.Fprintf(stderr, "bioperf bench-trace: -size: %v\n", err)
		return 2
	}
	p, err := bio.ByName(*name)
	if err != nil {
		fmt.Fprintf(stderr, "bioperf bench-trace: %v\n", err)
		return 2
	}
	if *comp != "flate" && *comp != "none" {
		fmt.Fprintf(stderr, "bioperf bench-trace: -compression: unknown codec %q (flate|none)\n", *comp)
		return 2
	}
	if *ver < 1 || *ver > trace.FormatVersion {
		fmt.Fprintf(stderr, "bioperf bench-trace: -trace-version: %d out of range (1-%d)\n", *ver, trace.FormatVersion)
		return 2
	}
	if err := benchTrace(p, sz, *jsonPath, *jobs, *samples, *check, *minPar, *minWall, *comp, *ver); err != nil {
		fmt.Fprintf(stderr, "bioperf bench-trace: %v\n", err)
		return 1
	}
	return 0
}

func benchTrace(p *bio.Program, sz bio.Size, jsonPath string, jobs, samples int, check, minPar, minWall float64, comp string, version int) error {
	prog, err := p.Compile(false, compiler.Default())
	if err != nil {
		return err
	}
	fp := runner.FingerprintAt(p, false, compiler.Default(), version)
	ctx := context.Background()

	// Cold: simulate with the live analyzer attached — the baseline
	// characterization path.
	var (
		res  *sim.Result
		want string
	)
	cold, err := bestOf(samples, func() (time.Duration, error) {
		start := time.Now()
		m, err := sim.New(prog)
		if err != nil {
			return 0, err
		}
		if err := p.Bind(m, sz); err != nil {
			return 0, err
		}
		live := loadchar.New(prog)
		m.AddBatchObserver(live)
		r, err := m.Run()
		if err != nil {
			return 0, err
		}
		if err := p.Validate(r, sz); err != nil {
			return 0, err
		}
		d := time.Since(start)
		res = r
		want = loadchar.RenderProfile(p.Name, sz.String(), live, 10)
		return d, nil
	})
	if err != nil {
		return err
	}

	// Record: simulate again, this time writing the trace file. Each
	// sample rewrites the file from the start; the last one is the
	// trace the replay samples read.
	tf, err := os.CreateTemp("", "bioperf-bench-*.trace")
	if err != nil {
		return err
	}
	defer os.Remove(tf.Name())
	defer tf.Close()
	recDur, err := bestOf(samples, func() (time.Duration, error) {
		if err := tf.Truncate(0); err != nil {
			return 0, err
		}
		if _, err := tf.Seek(0, io.SeekStart); err != nil {
			return 0, err
		}
		start := time.Now()
		if _, _, err := record(p, prog, sz, fp, tf, comp, version); err != nil {
			return 0, err
		}
		return time.Since(start), nil
	})
	if err != nil {
		return err
	}
	traceSize, err := tf.Seek(0, io.SeekEnd)
	if err != nil {
		return err
	}

	// Replay through the footer index — sequential first (one fused
	// decode-and-analyze loop), then sharded across jobs workers. Each
	// sample re-parses the index so no decoder state is carried over.
	var seq, par *loadchar.Analysis
	seqM, err := measureBest(samples, func() error {
		ir, err := trace.NewIndexedReader(tf, traceSize)
		if err != nil {
			return err
		}
		seq, err = runner.ReplayAnalyze(ctx, prog, ir, 1)
		return err
	})
	if err != nil {
		return err
	}
	parM, err := measureBest(samples, func() error {
		ir, err := trace.NewIndexedReader(tf, traceSize)
		if err != nil {
			return err
		}
		par, err = runner.ReplayAnalyze(ctx, prog, ir, jobs)
		return err
	})
	if err != nil {
		return err
	}

	// Wall-clock scaling table: the same replay with GOMAXPROCS pinned
	// to the worker count, so each row is what a w-core machine would
	// measure on the wall rather than w goroutines timeslicing the
	// cores the host happens to have. CPU time per row is the
	// user-equivalent work: near-constant CPU with falling wall is
	// real scaling, falling CPU would mean the rows computed less.
	prevProcs := runtime.GOMAXPROCS(0)
	var scaling []benchScalingPoint
	for _, w := range []int{1, 2, 4, 8} {
		runtime.GOMAXPROCS(w)
		var sa *loadchar.Analysis
		m, err := measureBest(samples, func() error {
			ir, err := trace.NewIndexedReader(tf, traceSize)
			if err != nil {
				return err
			}
			sa, err = runner.ReplayAnalyze(ctx, prog, ir, w)
			return err
		})
		if err != nil {
			runtime.GOMAXPROCS(prevProcs)
			return err
		}
		if got := loadchar.RenderProfile(p.Name, sz.String(), sa, 10); got != want {
			runtime.GOMAXPROCS(prevProcs)
			return fmt.Errorf("replay at %d workers produced a different profile", w)
		}
		scaling = append(scaling, benchScalingPoint{
			GOMAXPROCS: w,
			Exec:       sa.Exec,
			WallMS:     m.WallMS(),
			CPUMS:      m.CPU.Seconds() * 1e3,
			Speedup:    cold.Seconds() / m.Wall.Seconds(),
			Mem:        m.Mem,
		})
	}
	runtime.GOMAXPROCS(prevProcs)
	for i := range scaling {
		scaling[i].WallScaling = scaling[0].WallMS / scaling[i].WallMS
	}

	// Cross-version matrix: the same simulation recorded once at every
	// readable format version, then each file decoded (ns/event, no
	// analysis) and re-analyzed back to the live profile. v1 has no
	// footer index, so it streams through the sequential reader.
	crossVersion, crossOK, err := benchCrossVersion(ctx, p, prog, sz, samples, comp, want)
	if err != nil {
		return err
	}

	// Store-backed serving, the path runner.Session and bioperfd use:
	// a cold session on an empty store pays the full pipeline (compile
	// + simulate + analyze + record + persist), then a fresh session on
	// the same store must serve the identical profile from the
	// persisted artifacts without simulating. Every cold sample gets
	// its own empty store (a second run on a populated store would be
	// warm); the last one stays on disk for the warm samples.
	var (
		coldProf *runner.Profile
		storeDir string
	)
	coldChar, err := bestOf(samples, func() (time.Duration, error) {
		if storeDir != "" {
			os.RemoveAll(storeDir)
		}
		dir, err := os.MkdirTemp("", "bioperf-bench-store-")
		if err != nil {
			return 0, err
		}
		storeDir = dir
		st, err := store.Open(dir, 0)
		if err != nil {
			return 0, err
		}
		sess := runner.NewSessionWithStore(jobs, st)
		start := time.Now()
		prof, err := sess.Characterize(ctx, p, sz)
		d := time.Since(start)
		if err != nil {
			st.Close()
			return 0, err
		}
		coldProf = prof
		return d, st.Close()
	})
	if err != nil {
		if storeDir != "" {
			os.RemoveAll(storeDir)
		}
		return err
	}
	defer os.RemoveAll(storeDir)

	var warmProf *runner.Profile
	warmChar, err := bestOf(samples, func() (time.Duration, error) {
		st, err := store.Open(storeDir, 0)
		if err != nil {
			return 0, err
		}
		defer st.Close()
		sess := runner.NewSessionWithStore(jobs, st)
		start := time.Now()
		prof, err := sess.Characterize(ctx, p, sz)
		d := time.Since(start)
		if err != nil {
			return 0, err
		}
		if stats := sess.Stats(); stats.Runs != 0 {
			return 0, fmt.Errorf("warm characterize re-simulated: %+v", stats)
		}
		warmProf = prof
		return d, nil
	})
	if err != nil {
		return err
	}

	identical := crossOK &&
		loadchar.RenderProfile(p.Name, sz.String(), seq, 10) == want &&
		loadchar.RenderProfile(p.Name, sz.String(), par, 10) == want &&
		loadchar.RenderProfile(p.Name, sz.String(), coldProf.Analysis, 10) == want &&
		loadchar.RenderProfile(p.Name, sz.String(), warmProf.Analysis, 10) == want
	if !identical {
		return fmt.Errorf("replayed profiles differ from the live profile")
	}

	out := benchTraceFile{
		Tool:                  "bioperf bench-trace",
		Program:               p.Name,
		Size:                  sz.String(),
		Instructions:          res.Instructions,
		TraceBytes:            traceSize,
		BitsPerEvent:          8 * float64(traceSize) / float64(res.Instructions),
		Compression:           comp,
		TraceVersion:          version,
		Samples:               samples,
		GOMAXPROCS:            runtime.GOMAXPROCS(0),
		NumCPU:                runtime.NumCPU(),
		ColdCharacterizeMS:    coldChar.Seconds() * 1e3,
		WarmCharacterizeMS:    warmChar.Seconds() * 1e3,
		CharacterizeSpeedup:   coldChar.Seconds() / warmChar.Seconds(),
		ColdMS:                cold.Seconds() * 1e3,
		RecordMS:              recDur.Seconds() * 1e3,
		ReplayMS:              seqM.WallMS(),
		ReplayExec:            seq.Exec,
		ReplayMem:             seqM.Mem,
		ParallelReplayMS:      parM.WallMS(),
		ParallelReplayExec:    par.Exec,
		ParallelReplayMem:     parM.Mem,
		ReplaySpeedup:         cold.Seconds() / seqM.Wall.Seconds(),
		ParallelReplaySpeedup: cold.Seconds() / parM.Wall.Seconds(),
		Scaling:               scaling,
		CrossVersion:          crossVersion,
		ProfilesIdentical:     identical,
		Generated:             time.Now().UTC().Format(time.RFC3339),
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("%s %s: %d instructions, trace v%d %d bytes (%.2f bits/event), best of %d, %d cpus\n",
		p.Name, sz, res.Instructions, version, traceSize, out.BitsPerEvent, samples, out.NumCPU)
	fmt.Printf("  cold characterize %8.1f ms\n", out.ColdCharacterizeMS)
	fmt.Printf("  warm characterize %8.1f ms  (%.2fx, store-served)\n", out.WarmCharacterizeMS, out.CharacterizeSpeedup)
	fmt.Printf("  cold simulate     %8.1f ms\n", out.ColdMS)
	fmt.Printf("  record            %8.1f ms\n", out.RecordMS)
	fmt.Printf("  replay            %8.1f ms  (%.2fx)\n", out.ReplayMS, out.ReplaySpeedup)
	fmt.Printf("  parallel replay   %8.1f ms  (%.2fx, j=%d requested, ran %d)\n",
		out.ParallelReplayMS, out.ParallelReplaySpeedup, jobs, par.Exec.Workers)
	for _, pt := range scaling {
		note := ""
		if pt.Exec.SerialReason != "" && pt.Exec.Workers < pt.Exec.RequestedWorkers {
			note = fmt.Sprintf(" [%s]", pt.Exec.SerialReason)
		}
		fmt.Printf("  scaling p=%d       wall %8.1f ms  cpu %8.1f ms  (%.2fx wall vs 1 worker, ran %d%s)\n",
			pt.GOMAXPROCS, pt.WallMS, pt.CPUMS, pt.WallScaling, pt.Exec.Workers, note)
	}
	for _, cv := range crossVersion {
		fmt.Printf("  decode v%d         %8.2f ns/event  (%d bytes, %.2f bits/event)\n",
			cv.Version, cv.DecodeNSPerEvent, cv.TraceBytes, cv.BitsPerEvent)
	}
	fmt.Printf("  wrote %s\n", jsonPath)
	if check > 0 && out.CharacterizeSpeedup < check {
		return fmt.Errorf("warm characterize speedup %.2fx below required %.2fx", out.CharacterizeSpeedup, check)
	}
	if minPar > 0 && out.ParallelReplaySpeedup < minPar {
		return fmt.Errorf("parallel replay speedup %.2fx below required %.2fx", out.ParallelReplaySpeedup, minPar)
	}
	if minWall > 0 {
		if runtime.NumCPU() < 4 {
			fmt.Printf("  note: wall-scaling gate (>= %.2fx at GOMAXPROCS=4) skipped: host has %d CPUs\n",
				minWall, runtime.NumCPU())
		} else {
			var got float64
			for _, pt := range scaling {
				if pt.GOMAXPROCS == 4 {
					got = pt.WallScaling
				}
			}
			if got < minWall {
				return fmt.Errorf("wall scaling at GOMAXPROCS=4 is %.2fx, below required %.2fx", got, minWall)
			}
		}
	}
	return nil
}

// benchCrossVersion records one simulation simultaneously at every
// readable trace format version, then measures each file's pure decode
// cost and checks that every version re-analyzes to the live profile —
// v1 through the sequential reader, v2+ through the indexed engine at
// several worker counts. It returns one matrix row per version and
// whether every profile matched.
func benchCrossVersion(ctx context.Context, p *bio.Program, prog *isa.Program, sz bio.Size, samples int, comp string, want string) ([]benchVersionPoint, bool, error) {
	files := make([]*os.File, trace.FormatVersion)
	for v := 1; v <= trace.FormatVersion; v++ {
		f, err := os.CreateTemp("", fmt.Sprintf("bioperf-bench-v%d-*.trace", v))
		if err != nil {
			return nil, false, err
		}
		defer os.Remove(f.Name())
		defer f.Close()
		files[v-1] = f
	}
	m, err := sim.New(prog)
	if err != nil {
		return nil, false, err
	}
	if err := p.Bind(m, sz); err != nil {
		return nil, false, err
	}
	tws := make([]*trace.Writer, trace.FormatVersion)
	for v := 1; v <= trace.FormatVersion; v++ {
		fp := runner.FingerprintAt(p, false, compiler.Default(), v)
		tws[v-1] = trace.NewWriterVersion(files[v-1], trace.Meta{
			Program: p.Name, Fingerprint: fp, Size: sz.String(), Compression: comp,
		}, prog, v)
		m.AddBatchObserver(tws[v-1])
	}
	if _, err := m.Run(); err != nil {
		return nil, false, err
	}
	events := uint64(0)
	for v, tw := range tws {
		if err := tw.Close(); err != nil {
			return nil, false, fmt.Errorf("v%d: close: %v", v+1, err)
		}
		events = tw.Events()
	}

	allOK := true
	rows := make([]benchVersionPoint, 0, trace.FormatVersion)
	for v := 1; v <= trace.FormatVersion; v++ {
		f := files[v-1]
		size, err := f.Seek(0, io.SeekEnd)
		if err != nil {
			return nil, false, err
		}
		// Pure decode with no analysis attached, so the row isolates
		// the codec from the characterization passes. Indexed versions
		// decode through the column path the replay analyzer actually
		// consumes — for v4 that is dictionary-token lookup with zero
		// per-event varint work, which is the whole point of the
		// format; v1 has no index and streams materialized events.
		var decoded uint64
		dec, err := measureBest(samples, func() error {
			decoded = 0
			if v == 1 {
				if _, err := f.Seek(0, io.SeekStart); err != nil {
					return err
				}
				tr, err := trace.NewReader(f)
				if err != nil {
					return err
				}
				n, err := tr.Replay(ctx, prog, sim.BatchObserverFunc(func(evs []sim.Event) {}))
				decoded = n
				return err
			}
			ir, err := trace.NewIndexedReader(f, size)
			if err != nil {
				return err
			}
			src := ir.Columns(ctx, prog, 0, ir.Chunks(), 1)
			defer src.Close()
			for {
				ch, release, err := src.Next()
				if err == io.EOF {
					return nil
				}
				if err != nil {
					return err
				}
				decoded += uint64(ch.N)
				release()
			}
		})
		if err != nil {
			return nil, false, fmt.Errorf("v%d: decode: %v", v, err)
		}
		if decoded != events {
			return nil, false, fmt.Errorf("v%d: decoded %d of %d events", v, decoded, events)
		}

		ok := true
		if v == 1 {
			if _, err := f.Seek(0, io.SeekStart); err != nil {
				return nil, false, err
			}
			tr, err := trace.NewReader(f)
			if err != nil {
				return nil, false, err
			}
			a := loadchar.New(prog)
			if _, err := tr.Replay(ctx, prog, a); err != nil {
				return nil, false, fmt.Errorf("v1: replay: %v", err)
			}
			ok = loadchar.RenderProfile(p.Name, sz.String(), a, 10) == want
		} else {
			for _, jobs := range []int{1, 4, 8} {
				ir, err := trace.NewIndexedReader(f, size)
				if err != nil {
					return nil, false, err
				}
				a, err := runner.ReplayAnalyze(ctx, prog, ir, jobs)
				if err != nil {
					return nil, false, fmt.Errorf("v%d jobs=%d: %v", v, jobs, err)
				}
				if loadchar.RenderProfile(p.Name, sz.String(), a, 10) != want {
					ok = false
				}
			}
		}
		allOK = allOK && ok
		rows = append(rows, benchVersionPoint{
			Version:           v,
			TraceBytes:        size,
			BitsPerEvent:      8 * float64(size) / float64(events),
			DecodeNSPerEvent:  float64(dec.Wall.Nanoseconds()) / float64(events),
			ProfilesIdentical: ok,
		})
	}
	return rows, allOK, nil
}
