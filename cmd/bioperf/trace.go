package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"bioperfload/internal/bio"
	"bioperfload/internal/compiler"
	"bioperfload/internal/isa"
	"bioperfload/internal/loadchar"
	"bioperfload/internal/runner"
	"bioperfload/internal/sim"
	"bioperfload/internal/store"
	"bioperfload/internal/trace"
)

func parseSize(s string) (bio.Size, error) {
	switch s {
	case "test":
		return bio.SizeTest, nil
	case "classB", "b", "B":
		return bio.SizeB, nil
	case "classC", "c", "C":
		return bio.SizeC, nil
	}
	return 0, fmt.Errorf("unknown size %q (test|classB|classC)", s)
}

// record simulates p at sz with a trace writer attached and returns
// the validated result. The trace is written to w and is only complete
// (footer present) if record returns nil error.
func record(p *bio.Program, prog *isa.Program, sz bio.Size, fp string, w io.Writer, compression string) (*sim.Result, *trace.Writer, error) {
	m, err := sim.New(prog)
	if err != nil {
		return nil, nil, err
	}
	if err := p.Bind(m, sz); err != nil {
		return nil, nil, fmt.Errorf("%s: bind: %w", p.Name, err)
	}
	tw := trace.NewWriter(w, trace.Meta{
		Program:     p.Name,
		Fingerprint: fp,
		Size:        sz.String(),
		Compression: compression,
	})
	m.AddBatchObserver(tw)
	res, err := m.Run()
	if err != nil {
		return nil, nil, err
	}
	if err := p.Validate(res, sz); err != nil {
		return nil, nil, fmt.Errorf("%s: validation: %w", p.Name, err)
	}
	if err := tw.Close(); err != nil {
		return nil, nil, fmt.Errorf("%s: trace: %w", p.Name, err)
	}
	if tw.Events() != res.Instructions {
		return nil, nil, fmt.Errorf("%s: trace recorded %d events for %d instructions",
			p.Name, tw.Events(), res.Instructions)
	}
	return res, tw, nil
}

// cmdTrace records a committed-instruction trace of one program run to
// a file, for later offline replay with `bioperf replay`.
func cmdTrace(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("bioperf trace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	name := fs.String("program", "hmmsearch", "application to record")
	sizeFlag := fs.String("size", "test", "input size (test|classB|classC)")
	out := fs.String("o", "", "output path (default <program>-<size>.trace)")
	comp := fs.String("compression", "flate", "chunk codec: flate (smallest) or none (fastest replay)")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "bioperf trace: unexpected arguments: %v\n", fs.Args())
		return 2
	}
	sz, err := parseSize(*sizeFlag)
	if err != nil {
		fmt.Fprintf(stderr, "bioperf trace: -size: %v\n", err)
		return 2
	}
	p, err := bio.ByName(*name)
	if err != nil {
		fmt.Fprintf(stderr, "bioperf trace: %v\n", err)
		return 2
	}
	path := *out
	if path == "" {
		path = fmt.Sprintf("%s-%s.trace", p.Name, sz)
	}

	prog, err := p.Compile(false, compiler.Default())
	if err != nil {
		fmt.Fprintf(stderr, "bioperf trace: %v\n", err)
		return 1
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(stderr, "bioperf trace: %v\n", err)
		return 1
	}
	if *comp != "flate" && *comp != "none" {
		fmt.Fprintf(stderr, "bioperf trace: -compression: unknown codec %q (flate|none)\n", *comp)
		return 2
	}
	fp := runner.Fingerprint(p, false, compiler.Default())
	res, tw, err := record(p, prog, sz, fp, f, *comp)
	if err != nil {
		f.Close()
		os.Remove(path)
		fmt.Fprintf(stderr, "bioperf trace: %v\n", err)
		return 1
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(stderr, "bioperf trace: %v\n", err)
		return 1
	}
	st, _ := os.Stat(path)
	fmt.Printf("%s: %d instructions -> %s (%d bytes, %.2f bits/event)\n",
		p.Name, res.Instructions, path, st.Size(),
		8*float64(st.Size())/float64(tw.Events()))
	return 0
}

// cmdReplay re-runs the load characterization from a recorded trace:
// no compilation beyond rebinding instruction metadata, no simulation.
// A v2 trace (footer chunk index) replays through the sharded analyzer;
// v1 traces fall back to the sequential stream, so files recorded
// before the format bump keep working.
func cmdReplay(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("bioperf replay", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jobs := fs.Int("j", 1, "replay shard workers (0 = GOMAXPROCS)")
	hot := fs.Int("hot", 6, "hot loads to print")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintf(stderr, "usage: bioperf replay [-j n] [-hot n] file.trace\n")
		return 2
	}
	if *jobs < 0 {
		fmt.Fprintf(stderr, "bioperf replay: -j: invalid worker count %d\n", *jobs)
		return 2
	}
	if *jobs == 0 {
		*jobs = runtime.GOMAXPROCS(0)
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "bioperf replay: %v\n", err)
		return 1
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		fmt.Fprintf(stderr, "bioperf replay: %v\n", err)
		return 1
	}

	// Prefer the indexed footer; anything unindexable (a v1 trace)
	// streams sequentially. NewIndexedReader reads via ReadAt, so the
	// file offset is still 0 for the fallback.
	var (
		meta    trace.Meta
		version int
		ir      *trace.IndexedReader
		tr      *trace.Reader
	)
	if ir, err = trace.NewIndexedReader(f, fi.Size()); err == nil {
		meta, version = ir.Meta(), ir.Version()
	} else {
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			fmt.Fprintf(stderr, "bioperf replay: %v\n", err)
			return 1
		}
		if tr, err = trace.NewReader(f); err != nil {
			fmt.Fprintf(stderr, "bioperf replay: %v\n", err)
			return 1
		}
		meta, version = tr.Meta(), tr.Version()
	}
	p, err := bio.ByName(meta.Program)
	if err != nil {
		fmt.Fprintf(stderr, "bioperf replay: trace program: %v\n", err)
		return 1
	}
	// Hash with the file's own format version so traces recorded before
	// a format bump still verify against the same program source.
	if fp := runner.FingerprintAt(p, false, compiler.Default(), version); meta.Fingerprint != fp {
		fmt.Fprintf(stderr, "bioperf replay: fingerprint mismatch: trace %s was recorded from a different %s build\n",
			meta.Fingerprint[:12], p.Name)
		return 1
	}
	prog, err := p.Compile(false, compiler.Default())
	if err != nil {
		fmt.Fprintf(stderr, "bioperf replay: %v\n", err)
		return 1
	}

	var a *loadchar.Analysis
	if ir != nil {
		a, err = runner.ReplayAnalyze(context.Background(), prog, ir, *jobs)
	} else if *jobs > 1 {
		src := tr.ParallelEvents(prog, *jobs)
		a, err = loadchar.AnalyzeParallel(context.Background(), prog, src)
		src.Close()
	} else {
		a = loadchar.New(prog)
		_, err = tr.Replay(context.Background(), prog, a)
	}
	if err != nil {
		fmt.Fprintf(stderr, "bioperf replay: %v\n", err)
		return 1
	}
	if tr != nil {
		// The legacy stream path never touches the sharded engine.
		a.Exec = loadchar.Execution{RequestedWorkers: *jobs, Workers: 1, SerialReason: loadchar.SerialReasonNoIndex}
	}
	if e := a.Exec; e.RequestedWorkers > 1 && !e.Parallel() {
		fmt.Fprintf(stderr, "bioperf replay: note: %d workers requested, ran serial (%s)\n", e.RequestedWorkers, e.SerialReason)
	}
	fmt.Print(loadchar.RenderProfile(p.Name, meta.Size, a, *hot))
	return 0
}

// benchTraceFile is the bench-trace JSON document. The headline
// comparison is a cold store-backed characterization (compile +
// simulate + analyze + persist) against the same request served warm
// from the persisted artifacts by a fresh session; the raw replay
// timings document what trace decoding and re-analysis cost on their
// own. Every duration is the best of Samples runs, so one scheduler
// hiccup cannot flip a speedup ratio.
type benchTraceFile struct {
	Tool         string  `json:"tool"`
	Program      string  `json:"program"`
	Size         string  `json:"size"`
	Instructions uint64  `json:"instructions"`
	TraceBytes   int64   `json:"trace_bytes"`
	BitsPerEvent float64 `json:"bits_per_event"`
	Compression  string  `json:"compression"`
	Samples      int     `json:"samples"`

	ColdCharacterizeMS  float64 `json:"cold_characterize_ms"`
	WarmCharacterizeMS  float64 `json:"warm_characterize_ms"`
	CharacterizeSpeedup float64 `json:"characterize_speedup"`
	ColdMS              float64 `json:"cold_ms"`
	RecordMS            float64 `json:"record_ms"`

	// Replay timings carry the Execution each measurement actually ran
	// with (the old schema recorded a single top-level "workers" that
	// did not describe any measurement).
	ReplayMS              float64            `json:"replay_ms"`
	ReplayExec            loadchar.Execution `json:"replay_exec"`
	ParallelReplayMS      float64            `json:"parallel_replay_ms"`
	ParallelReplayExec    loadchar.Execution `json:"parallel_replay_exec"`
	ReplaySpeedup         float64            `json:"replay_speedup"`
	ParallelReplaySpeedup float64            `json:"parallel_replay_speedup"`

	// Scaling is the worker-scaling table: one replay measurement per
	// requested worker count, each tagged with its actual execution.
	Scaling []benchScalingPoint `json:"replay_scaling"`

	ProfilesIdentical bool   `json:"profiles_identical"`
	Generated         string `json:"generated"`
}

// benchScalingPoint is one row of the worker-scaling table.
type benchScalingPoint struct {
	Exec    loadchar.Execution `json:"exec"`
	MS      float64            `json:"ms"`
	Speedup float64            `json:"speedup"`
}

// bestOf runs f n times and returns the minimum duration. The minimum
// — not the mean — is the right statistic for a deterministic workload:
// every sample computes the same thing, so all variance is noise added
// on top and the fastest run is the closest estimate of the true cost.
func bestOf(n int, f func() (time.Duration, error)) (time.Duration, error) {
	best := time.Duration(-1)
	for i := 0; i < n; i++ {
		d, err := f()
		if err != nil {
			return 0, err
		}
		if best < 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// cmdBenchTrace measures cold vs store-served characterization (and
// raw trace replay) and writes the comparison as JSON. With -check N
// it exits non-zero when the characterize speedup falls below N.
func cmdBenchTrace(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("bioperf bench-trace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	name := fs.String("program", "hmmsearch", "application to benchmark")
	sizeFlag := fs.String("size", "classB", "input size (test|classB|classC)")
	jsonPath := fs.String("json", "BENCH_trace.json", "output JSON path")
	jobs := fs.Int("j", 0, "parallel replay shard workers (0 = GOMAXPROCS)")
	samples := fs.Int("n", 3, "samples per timing (best-of-N)")
	check := fs.Float64("check", 0, "fail unless warm characterize speedup >= this (0 = no check)")
	minPar := fs.Float64("min-parallel-speedup", 0, "fail unless parallel replay speedup >= this (0 = no check)")
	comp := fs.String("compression", "none", "trace codec for the replay benchmark (none|flate); none keeps inflate off the replay critical path")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "bioperf bench-trace: unexpected arguments: %v\n", fs.Args())
		return 2
	}
	if *samples < 1 {
		fmt.Fprintf(stderr, "bioperf bench-trace: -n: invalid sample count %d\n", *samples)
		return 2
	}
	if *jobs < 0 {
		fmt.Fprintf(stderr, "bioperf bench-trace: -j: invalid worker count %d\n", *jobs)
		return 2
	}
	if *jobs == 0 {
		*jobs = runtime.GOMAXPROCS(0)
	}
	sz, err := parseSize(*sizeFlag)
	if err != nil {
		fmt.Fprintf(stderr, "bioperf bench-trace: -size: %v\n", err)
		return 2
	}
	p, err := bio.ByName(*name)
	if err != nil {
		fmt.Fprintf(stderr, "bioperf bench-trace: %v\n", err)
		return 2
	}
	if *comp != "flate" && *comp != "none" {
		fmt.Fprintf(stderr, "bioperf bench-trace: -compression: unknown codec %q (flate|none)\n", *comp)
		return 2
	}
	if err := benchTrace(p, sz, *jsonPath, *jobs, *samples, *check, *minPar, *comp); err != nil {
		fmt.Fprintf(stderr, "bioperf bench-trace: %v\n", err)
		return 1
	}
	return 0
}

func benchTrace(p *bio.Program, sz bio.Size, jsonPath string, jobs, samples int, check, minPar float64, comp string) error {
	prog, err := p.Compile(false, compiler.Default())
	if err != nil {
		return err
	}
	fp := runner.Fingerprint(p, false, compiler.Default())
	ctx := context.Background()

	// Cold: simulate with the live analyzer attached — the baseline
	// characterization path.
	var (
		res  *sim.Result
		want string
	)
	cold, err := bestOf(samples, func() (time.Duration, error) {
		start := time.Now()
		m, err := sim.New(prog)
		if err != nil {
			return 0, err
		}
		if err := p.Bind(m, sz); err != nil {
			return 0, err
		}
		live := loadchar.New(prog)
		m.AddBatchObserver(live)
		r, err := m.Run()
		if err != nil {
			return 0, err
		}
		if err := p.Validate(r, sz); err != nil {
			return 0, err
		}
		d := time.Since(start)
		res = r
		want = loadchar.RenderProfile(p.Name, sz.String(), live, 10)
		return d, nil
	})
	if err != nil {
		return err
	}

	// Record: simulate again, this time writing the trace file. Each
	// sample rewrites the file from the start; the last one is the
	// trace the replay samples read.
	tf, err := os.CreateTemp("", "bioperf-bench-*.trace")
	if err != nil {
		return err
	}
	defer os.Remove(tf.Name())
	defer tf.Close()
	recDur, err := bestOf(samples, func() (time.Duration, error) {
		if err := tf.Truncate(0); err != nil {
			return 0, err
		}
		if _, err := tf.Seek(0, io.SeekStart); err != nil {
			return 0, err
		}
		start := time.Now()
		if _, _, err := record(p, prog, sz, fp, tf, comp); err != nil {
			return 0, err
		}
		return time.Since(start), nil
	})
	if err != nil {
		return err
	}
	traceSize, err := tf.Seek(0, io.SeekEnd)
	if err != nil {
		return err
	}

	// Replay through the footer index — sequential first (one fused
	// decode-and-analyze loop), then sharded across jobs workers. Each
	// sample re-parses the index so no decoder state is carried over.
	var seq, par *loadchar.Analysis
	seqDur, err := bestOf(samples, func() (time.Duration, error) {
		ir, err := trace.NewIndexedReader(tf, traceSize)
		if err != nil {
			return 0, err
		}
		start := time.Now()
		if seq, err = runner.ReplayAnalyze(ctx, prog, ir, 1); err != nil {
			return 0, err
		}
		return time.Since(start), nil
	})
	if err != nil {
		return err
	}
	parDur, err := bestOf(samples, func() (time.Duration, error) {
		ir, err := trace.NewIndexedReader(tf, traceSize)
		if err != nil {
			return 0, err
		}
		start := time.Now()
		if par, err = runner.ReplayAnalyze(ctx, prog, ir, jobs); err != nil {
			return 0, err
		}
		return time.Since(start), nil
	})
	if err != nil {
		return err
	}

	// Worker-scaling table: the same replay at fixed requested counts,
	// each row tagged with the execution it actually got (clamps to
	// GOMAXPROCS show up here as workers < requested, not as silence).
	var scaling []benchScalingPoint
	for _, w := range []int{1, 2, 4, 8} {
		var sa *loadchar.Analysis
		d, err := bestOf(samples, func() (time.Duration, error) {
			ir, err := trace.NewIndexedReader(tf, traceSize)
			if err != nil {
				return 0, err
			}
			start := time.Now()
			if sa, err = runner.ReplayAnalyze(ctx, prog, ir, w); err != nil {
				return 0, err
			}
			return time.Since(start), nil
		})
		if err != nil {
			return err
		}
		if got := loadchar.RenderProfile(p.Name, sz.String(), sa, 10); got != want {
			return fmt.Errorf("replay at %d workers produced a different profile", w)
		}
		scaling = append(scaling, benchScalingPoint{
			Exec:    sa.Exec,
			MS:      d.Seconds() * 1e3,
			Speedup: cold.Seconds() / d.Seconds(),
		})
	}

	// Store-backed serving, the path runner.Session and bioperfd use:
	// a cold session on an empty store pays the full pipeline (compile
	// + simulate + analyze + record + persist), then a fresh session on
	// the same store must serve the identical profile from the
	// persisted artifacts without simulating. Every cold sample gets
	// its own empty store (a second run on a populated store would be
	// warm); the last one stays on disk for the warm samples.
	var (
		coldProf *runner.Profile
		storeDir string
	)
	coldChar, err := bestOf(samples, func() (time.Duration, error) {
		if storeDir != "" {
			os.RemoveAll(storeDir)
		}
		dir, err := os.MkdirTemp("", "bioperf-bench-store-")
		if err != nil {
			return 0, err
		}
		storeDir = dir
		st, err := store.Open(dir, 0)
		if err != nil {
			return 0, err
		}
		sess := runner.NewSessionWithStore(jobs, st)
		start := time.Now()
		prof, err := sess.Characterize(ctx, p, sz)
		d := time.Since(start)
		if err != nil {
			st.Close()
			return 0, err
		}
		coldProf = prof
		return d, st.Close()
	})
	if err != nil {
		if storeDir != "" {
			os.RemoveAll(storeDir)
		}
		return err
	}
	defer os.RemoveAll(storeDir)

	var warmProf *runner.Profile
	warmChar, err := bestOf(samples, func() (time.Duration, error) {
		st, err := store.Open(storeDir, 0)
		if err != nil {
			return 0, err
		}
		defer st.Close()
		sess := runner.NewSessionWithStore(jobs, st)
		start := time.Now()
		prof, err := sess.Characterize(ctx, p, sz)
		d := time.Since(start)
		if err != nil {
			return 0, err
		}
		if stats := sess.Stats(); stats.Runs != 0 {
			return 0, fmt.Errorf("warm characterize re-simulated: %+v", stats)
		}
		warmProf = prof
		return d, nil
	})
	if err != nil {
		return err
	}

	identical := loadchar.RenderProfile(p.Name, sz.String(), seq, 10) == want &&
		loadchar.RenderProfile(p.Name, sz.String(), par, 10) == want &&
		loadchar.RenderProfile(p.Name, sz.String(), coldProf.Analysis, 10) == want &&
		loadchar.RenderProfile(p.Name, sz.String(), warmProf.Analysis, 10) == want
	if !identical {
		return fmt.Errorf("replayed profiles differ from the live profile")
	}

	out := benchTraceFile{
		Tool:                  "bioperf bench-trace",
		Program:               p.Name,
		Size:                  sz.String(),
		Instructions:          res.Instructions,
		TraceBytes:            traceSize,
		BitsPerEvent:          8 * float64(traceSize) / float64(res.Instructions),
		Compression:           comp,
		Samples:               samples,
		ColdCharacterizeMS:    coldChar.Seconds() * 1e3,
		WarmCharacterizeMS:    warmChar.Seconds() * 1e3,
		CharacterizeSpeedup:   coldChar.Seconds() / warmChar.Seconds(),
		ColdMS:                cold.Seconds() * 1e3,
		RecordMS:              recDur.Seconds() * 1e3,
		ReplayMS:              seqDur.Seconds() * 1e3,
		ReplayExec:            seq.Exec,
		ParallelReplayMS:      parDur.Seconds() * 1e3,
		ParallelReplayExec:    par.Exec,
		ReplaySpeedup:         cold.Seconds() / seqDur.Seconds(),
		ParallelReplaySpeedup: cold.Seconds() / parDur.Seconds(),
		Scaling:               scaling,
		ProfilesIdentical:     identical,
		Generated:             time.Now().UTC().Format(time.RFC3339),
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("%s %s: %d instructions, trace %d bytes (%.2f bits/event), best of %d\n",
		p.Name, sz, res.Instructions, traceSize, out.BitsPerEvent, samples)
	fmt.Printf("  cold characterize %8.1f ms\n", out.ColdCharacterizeMS)
	fmt.Printf("  warm characterize %8.1f ms  (%.2fx, store-served)\n", out.WarmCharacterizeMS, out.CharacterizeSpeedup)
	fmt.Printf("  cold simulate     %8.1f ms\n", out.ColdMS)
	fmt.Printf("  record            %8.1f ms\n", out.RecordMS)
	fmt.Printf("  replay            %8.1f ms  (%.2fx)\n", out.ReplayMS, out.ReplaySpeedup)
	fmt.Printf("  parallel replay   %8.1f ms  (%.2fx, j=%d requested, ran %d)\n",
		out.ParallelReplayMS, out.ParallelReplaySpeedup, jobs, par.Exec.Workers)
	for _, pt := range scaling {
		note := ""
		if pt.Exec.SerialReason != "" && pt.Exec.Workers < pt.Exec.RequestedWorkers {
			note = fmt.Sprintf(" [%s]", pt.Exec.SerialReason)
		}
		fmt.Printf("  scaling j=%d       %8.1f ms  (%.2fx, ran %d%s)\n",
			pt.Exec.RequestedWorkers, pt.MS, pt.Speedup, pt.Exec.Workers, note)
	}
	fmt.Printf("  wrote %s\n", jsonPath)
	if check > 0 && out.CharacterizeSpeedup < check {
		return fmt.Errorf("warm characterize speedup %.2fx below required %.2fx", out.CharacterizeSpeedup, check)
	}
	if minPar > 0 && out.ParallelReplaySpeedup < minPar {
		return fmt.Errorf("parallel replay speedup %.2fx below required %.2fx", out.ParallelReplaySpeedup, minPar)
	}
	return nil
}
