package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"bioperfload/internal/runner"
	"bioperfload/internal/scoreboard/validate"
)

// cmdValidateTiming runs the fast-tier validation harness: every
// program on every platform through both timing tiers, asserting the
// scoreboard reproduces the full model's speedup ratios (and, for the
// non-transformable programs, cross-platform cycle ratios) within the
// checked-in per-program tolerances. Exits non-zero if any cell is out
// of tolerance.
func cmdValidateTiming(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("validate-timing", flag.ContinueOnError)
	fs.SetOutput(stderr)
	sizeFlag := fs.String("size", "test", "input size (test|classB|classC)")
	jobs := fs.Int("j", 0, "max concurrent simulations (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "validate-timing: unexpected arguments: %v\n", fs.Args())
		return 2
	}
	sz, err := parseSize(*sizeFlag)
	if err != nil {
		fmt.Fprintf(stderr, "validate-timing: -size: %v\n", err)
		return 2
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rows, err := validate.Run(ctx, runner.NewSession(*jobs), sz)
	if err != nil {
		fmt.Fprintf(stderr, "validate-timing: %v\n", err)
		return 1
	}
	fmt.Print(validate.Render(rows))
	if err := validate.Check(rows); err != nil {
		fmt.Fprintf(stderr, "validate-timing: %v\n", err)
		return 1
	}
	fmt.Printf("validate-timing: all %d cells within tolerance at %s\n", len(rows), sz)
	return 0
}
