// Command bioperf runs and characterizes individual BioPerf
// applications on the simulated machine.
//
//	bioperf -list
//	bioperf -program hmmsearch -size classB -profile
//	bioperf -program hmmsearch -size classB -platform alpha21264 -transformed
//
// Subcommands record and replay committed-instruction traces, and
// validate the fast timing tier against the full model:
//
//	bioperf trace -program hmmsearch -size classB -o hmm.trace
//	bioperf replay -j 2 hmm.trace
//	bioperf bench-trace -size classB -json BENCH_trace.json
//	bioperf validate-timing -size test
//
// Phase analysis: inspect the SimPoint-style sampling plan and compare
// sampled characterization against exact replay:
//
//	bioperf -program hmmsearch -size classC -profile -accuracy sampled
//	bioperf phases -program hmmsearch -size classB
//	bioperf bench-sampling -sizes classB,classC -json BENCH_sampling.json
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"

	"bioperfload"
	"bioperfload/internal/runner"
)

func main() {
	log.SetFlags(0)
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "trace":
			os.Exit(cmdTrace(os.Args[2:], os.Stderr))
		case "replay":
			os.Exit(cmdReplay(os.Args[2:], os.Stderr))
		case "bench-trace":
			os.Exit(cmdBenchTrace(os.Args[2:], os.Stderr))
		case "validate-timing":
			os.Exit(cmdValidateTiming(os.Args[2:], os.Stderr))
		case "phases":
			os.Exit(cmdPhases(os.Args[2:], os.Stderr))
		case "bench-sampling":
			os.Exit(cmdBenchSampling(os.Args[2:], os.Stderr))
		}
	}
	list := flag.Bool("list", false, "list the applications and platforms")
	name := flag.String("program", "hmmsearch", "application to run")
	sizeFlag := flag.String("size", "test", "input size (test|classB|classC)")
	profile := flag.Bool("profile", false, "run the load characterization")
	platName := flag.String("platform", "", "run the timing model for this platform")
	fidelity := flag.String("fidelity", "full", "timing tier for -platform (full|fast)")
	transformed := flag.Bool("transformed", false, "use the load-transformed sources")
	hot := flag.Int("hot", 6, "hot loads to print with -profile")
	accuracy := flag.String("accuracy", "exact", "characterization tier for -profile (exact|sampled)")
	flag.Parse()

	if *list {
		fmt.Println("applications:")
		for _, p := range bioperfload.Programs() {
			tr := " "
			if p.Transformable {
				tr = "T"
			}
			fmt.Printf("  [%s] %-13s %s\n", tr, p.Name, p.Area)
		}
		fmt.Println("platforms:")
		for _, pl := range bioperfload.Platforms() {
			fmt.Printf("      %-11s %s\n", pl.Name, pl.Description)
		}
		return
	}

	var sz bioperfload.Size
	switch *sizeFlag {
	case "test":
		sz = bioperfload.SizeTest
	case "classB", "b", "B":
		sz = bioperfload.SizeB
	case "classC", "c", "C":
		sz = bioperfload.SizeC
	default:
		log.Fatalf("unknown size %q", *sizeFlag)
	}

	p, err := bioperfload.Program(*name)
	if err != nil {
		log.Fatal(err)
	}

	switch {
	case *profile:
		acc, err := runner.ParseAccuracy(*accuracy)
		if err != nil {
			log.Fatal(err)
		}
		sess := runner.NewSession(runtime.GOMAXPROCS(0))
		prof, err := sess.CharacterizeAccuracy(context.Background(), p, sz, acc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(bioperfload.RenderProfile(p.Name, sz.String(), prof.Analysis, *hot))

	case *platName != "":
		plat, err := bioperfload.PlatformByName(*platName)
		if err != nil {
			log.Fatal(err)
		}
		fid, err := bioperfload.ParseFidelity(*fidelity)
		if err != nil {
			log.Fatal(err)
		}
		plat = plat.WithFidelity(fid)
		st, err := bioperfload.Evaluate(p, plat, sz, *transformed)
		if err != nil {
			log.Fatal(err)
		}
		kind := "original"
		if *transformed {
			kind = "load-transformed"
		}
		fmt.Printf("%s (%s, %s, %s tier) on %s:\n", p.Name, kind, sz, fid, plat.Name)
		fmt.Printf("  %d instructions, %d cycles (IPC %.2f)\n", st.Instructions, st.Cycles, st.IPC())
		fmt.Printf("  %d cond branches, %.2f%% mispredicted\n", st.CondBranches, 100*st.MispredictRate())
		fmt.Printf("  %d loads, AMAT %.2f cycles (L1 %d / L2 %d / mem %d)\n",
			st.Loads, st.AMAT(), st.L1Hits, st.L2Hits, st.MemHits)
		if p.Transformable && !*transformed {
			sp, err := bioperfload.Speedup(p, plat, sz)
			if err == nil {
				fmt.Printf("  load transformation speedup on this platform: %.1f%%\n", 100*sp)
			}
		}

	default:
		prog, err := p.Compile(*transformed, bioperfload.DefaultCompiler())
		if err != nil {
			log.Fatal(err)
		}
		m, err := bioperfload.NewMachine(prog)
		if err != nil {
			log.Fatal(err)
		}
		if err := p.Bind(m, sz); err != nil {
			log.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			log.Fatal(err)
		}
		if err := p.Validate(res, sz); err != nil {
			fmt.Fprintf(os.Stderr, "VALIDATION FAILED: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%s: %d instructions, output %v (validated)\n",
			p.Name, res.Instructions, res.IntOutput)
	}
}
