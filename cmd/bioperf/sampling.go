package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"bioperfload/internal/bio"
	"bioperfload/internal/compiler"
	"bioperfload/internal/loadchar"
	"bioperfload/internal/runner"
	"bioperfload/internal/simpoint"
	"bioperfload/internal/trace"
)

// clusterGlyph maps a cluster id to one timeline character.
func clusterGlyph(c int) byte {
	const glyphs = "0123456789abcdefghijklmnopqrstuvwxyz"
	if c < 0 || c >= len(glyphs) {
		return '?'
	}
	return glyphs[c]
}

// cmdPhases renders the sampling decision for one (program, size): the
// interval-to-cluster timeline plus each cluster's representative and
// weight — the plan `-accuracy sampled` executes.
func cmdPhases(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("bioperf phases", flag.ContinueOnError)
	fs.SetOutput(stderr)
	name := fs.String("program", "hmmsearch", "application to analyze")
	sizeFlag := fs.String("size", "classB", "input size (test|classB|classC)")
	interval := fs.Uint64("interval", 0, "events per interval (0 = default 1Mi)")
	jobs := fs.Int("j", 0, "parallel workers (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "bioperf phases: unexpected arguments: %v\n", fs.Args())
		return 2
	}
	if *jobs == 0 {
		*jobs = runtime.GOMAXPROCS(0)
	}
	sz, err := parseSize(*sizeFlag)
	if err != nil {
		fmt.Fprintf(stderr, "bioperf phases: -size: %v\n", err)
		return 2
	}
	p, err := bio.ByName(*name)
	if err != nil {
		fmt.Fprintf(stderr, "bioperf phases: %v\n", err)
		return 2
	}

	s := runner.NewSession(*jobs)
	s.SetSimPoint(simpoint.Config{IntervalSize: *interval})
	plan, err := s.PhasePlan(context.Background(), p, sz)
	var de *simpoint.DegradeError
	if errors.As(err, &de) {
		fmt.Printf("%s %s: no phase plan — %s; characterization would run exact\n", p.Name, sz, de.Reason)
		return 0
	}
	if err != nil {
		fmt.Fprintf(stderr, "bioperf phases: %v\n", err)
		return 1
	}

	fmt.Printf("%s %s: %d events in %d intervals of %d -> %d phase(s)\n",
		p.Name, sz, plan.TotalEvents, len(plan.Intervals), plan.Config.IntervalSize, plan.K)
	for i, c := range plan.Clusters {
		rep := plan.Intervals[c.Rep]
		fmt.Printf("  phase %c: %3d interval(s), weight %4.1f%%, representative #%d [%d,%d)\n",
			clusterGlyph(i), len(c.Members), 100*float64(c.Weight)/float64(len(plan.Intervals)),
			rep.Index, c.Start, c.End)
	}
	fmt.Println("timeline (one glyph per interval):")
	const width = 64
	for lo := 0; lo < len(plan.Assign); lo += width {
		hi := lo + width
		if hi > len(plan.Assign) {
			hi = len(plan.Assign)
		}
		row := make([]byte, hi-lo)
		for i := lo; i < hi; i++ {
			row[i-lo] = clusterGlyph(plan.Assign[i])
		}
		fmt.Printf("  %8d  %s\n", lo, row)
	}
	return 0
}

// benchSamplingRow is one (program, size) cell of BENCH_sampling.json.
type benchSamplingRow struct {
	Program         string             `json:"program"`
	Size            string             `json:"size"`
	Instructions    uint64             `json:"instructions"`
	Intervals       int                `json:"intervals"`
	K               int                `json:"k"`
	ExactReplayMS   float64            `json:"exact_replay_ms"`
	SampledMS       float64            `json:"sampled_ms"`
	Speedup         float64            `json:"speedup"`
	MaxErrorPP      float64            `json:"max_error_pp"`
	Errors          map[string]float64 `json:"errors_pp"`
	TolerancePP     float64            `json:"tolerance_pp,omitempty"`
	WithinTolerance *bool              `json:"within_tolerance,omitempty"`
}

// benchSamplingFile is the bench-sampling JSON document.
type benchSamplingFile struct {
	Tool         string             `json:"tool"`
	IntervalSize uint64             `json:"interval_size"`
	Workers      int                `json:"workers"`
	Samples      int                `json:"samples"`
	Rows         []benchSamplingRow `json:"rows"`
	Generated    string             `json:"generated"`
}

// cmdBenchSampling measures sampled phase characterization against
// exact trace replay for each (program, size) and records accuracy
// (percentage-point error per headline metric) next to the speedup.
// Gates: -check-errors fails if any classB row exceeds its checked-in
// tolerance; -check-speedup N fails if any classC row is below Nx.
func cmdBenchSampling(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("bioperf bench-sampling", flag.ContinueOnError)
	fs.SetOutput(stderr)
	progList := fs.String("programs", "", "comma-separated programs (default all nine)")
	sizesFlag := fs.String("sizes", "classB,classC", "comma-separated sizes to measure")
	jsonPath := fs.String("json", "BENCH_sampling.json", "output JSON path")
	jobs := fs.Int("j", 0, "parallel workers (0 = GOMAXPROCS)")
	samples := fs.Int("n", 3, "samples per timing (best-of-N)")
	interval := fs.Uint64("interval", 0, "events per interval (0 = default 1Mi; smoke runs shrink this)")
	checkErrors := fs.Bool("check-errors", false, "fail if a classB row exceeds its tolerance")
	checkSpeedup := fs.Float64("check-speedup", 0, "fail unless every classC speedup >= this (0 = no check)")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "bioperf bench-sampling: unexpected arguments: %v\n", fs.Args())
		return 2
	}
	if *samples < 1 {
		fmt.Fprintf(stderr, "bioperf bench-sampling: -n: invalid sample count %d\n", *samples)
		return 2
	}
	if *jobs == 0 {
		*jobs = runtime.GOMAXPROCS(0)
	}
	var progs []*bio.Program
	if *progList == "" {
		progs = bio.All()
	} else {
		for _, n := range strings.Split(*progList, ",") {
			p, err := bio.ByName(strings.TrimSpace(n))
			if err != nil {
				fmt.Fprintf(stderr, "bioperf bench-sampling: %v\n", err)
				return 2
			}
			progs = append(progs, p)
		}
	}
	var sizes []bio.Size
	for _, s := range strings.Split(*sizesFlag, ",") {
		sz, err := parseSize(strings.TrimSpace(s))
		if err != nil {
			fmt.Fprintf(stderr, "bioperf bench-sampling: -sizes: %v\n", err)
			return 2
		}
		sizes = append(sizes, sz)
	}
	if err := benchSampling(progs, sizes, *jsonPath, *interval, *jobs, *samples, *checkErrors, *checkSpeedup); err != nil {
		fmt.Fprintf(stderr, "bioperf bench-sampling: %v\n", err)
		return 1
	}
	return 0
}

func benchSampling(progs []*bio.Program, sizes []bio.Size, jsonPath string, interval uint64, jobs, samples int, checkErrors bool, checkSpeedup float64) error {
	ctx := context.Background()
	cfg := simpoint.Config{IntervalSize: interval}.WithDefaults()
	out := benchSamplingFile{
		Tool:         "bioperf bench-sampling",
		IntervalSize: cfg.IntervalSize,
		Workers:      jobs,
		Samples:      samples,
	}
	var failures []string
	for _, p := range progs {
		prog, err := p.Compile(false, compiler.Default())
		if err != nil {
			return err
		}
		fp := runner.Fingerprint(p, false, compiler.Default())
		for _, sz := range sizes {
			tf, err := os.CreateTemp("", "bioperf-sampling-*.trace")
			if err != nil {
				return err
			}
			res, _, err := record(p, prog, sz, fp, tf, "flate", trace.FormatVersion)
			if err != nil {
				tf.Close()
				os.Remove(tf.Name())
				return fmt.Errorf("%s %s: record: %w", p.Name, sz, err)
			}
			traceSize, err := tf.Seek(0, io.SeekEnd)
			if err == nil {
				_, err = trace.NewIndexedReader(tf, traceSize)
			}
			if err != nil {
				tf.Close()
				os.Remove(tf.Name())
				return fmt.Errorf("%s %s: index trace: %w", p.Name, sz, err)
			}

			var exact *loadchar.Analysis
			exactDur, err := bestOf(samples, func() (time.Duration, error) {
				ir, err := trace.NewIndexedReader(tf, traceSize)
				if err != nil {
					return 0, err
				}
				start := time.Now()
				if exact, err = runner.ReplayAnalyze(ctx, prog, ir, jobs); err != nil {
					return 0, err
				}
				return time.Since(start), nil
			})
			if err == nil {
				var sampled *loadchar.Analysis
				var plan *simpoint.Plan
				var sampledDur time.Duration
				sampledDur, err = bestOf(samples, func() (time.Duration, error) {
					ir, err := trace.NewIndexedReader(tf, traceSize)
					if err != nil {
						return 0, err
					}
					start := time.Now()
					if sampled, plan, err = runner.SampledAnalyze(ctx, prog, ir, cfg, jobs); err != nil {
						return 0, err
					}
					return time.Since(start), nil
				})
				if err == nil {
					errs, max := simpoint.ProfileError(exact, sampled)
					row := benchSamplingRow{
						Program: p.Name, Size: sz.String(),
						Instructions: res.Instructions,
						Intervals:    len(plan.Intervals), K: plan.K,
						ExactReplayMS: exactDur.Seconds() * 1e3,
						SampledMS:     sampledDur.Seconds() * 1e3,
						Speedup:       exactDur.Seconds() / sampledDur.Seconds(),
						MaxErrorPP:    max, Errors: errs,
					}
					if sz == bio.SizeB {
						if tol, ok := simpoint.ToleranceClassB(p.Name); ok {
							within := max <= tol
							row.TolerancePP, row.WithinTolerance = tol, &within
							if checkErrors && !within {
								failures = append(failures,
									fmt.Sprintf("%s classB error %.2f pp exceeds tolerance %.2f pp", p.Name, max, tol))
							}
						}
					}
					if sz == bio.SizeC && checkSpeedup > 0 && row.Speedup < checkSpeedup {
						failures = append(failures,
							fmt.Sprintf("%s classC speedup %.2fx below required %.2fx", p.Name, row.Speedup, checkSpeedup))
					}
					out.Rows = append(out.Rows, row)
					fmt.Printf("%-13s %-6s %10d ev  %3d iv -> k=%-2d  exact %8.1f ms  sampled %8.1f ms  (%5.2fx)  max err %.2f pp\n",
						p.Name, sz, res.Instructions, row.Intervals, plan.K,
						row.ExactReplayMS, row.SampledMS, row.Speedup, max)
				}
			}
			tf.Close()
			os.Remove(tf.Name())
			if err != nil {
				return fmt.Errorf("%s %s: %w", p.Name, sz, err)
			}
		}
	}
	out.Generated = time.Now().UTC().Format(time.RFC3339)
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d rows)\n", jsonPath, len(out.Rows))
	if len(failures) > 0 {
		return fmt.Errorf("gates failed:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}
