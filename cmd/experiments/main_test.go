package main

import (
	"flag"
	"strings"
	"testing"

	"bioperfload/internal/bio"
	"bioperfload/internal/pipeline"
)

func TestParseArgsValid(t *testing.T) {
	var errBuf strings.Builder
	cfg, err := parseArgs([]string{"-size", "test", "-timing", "classC", "-only", "tab5", "-j", "3"}, &errBuf)
	if err != nil {
		t.Fatalf("parseArgs: %v (stderr: %s)", err, errBuf.String())
	}
	if cfg.size != bio.SizeTest || cfg.timing != bio.SizeC {
		t.Fatalf("sizes = %v/%v, want test/classC", cfg.size, cfg.timing)
	}
	if cfg.only != "tab5" || cfg.jobs != 3 {
		t.Fatalf("only=%q jobs=%d", cfg.only, cfg.jobs)
	}
}

func TestParseArgsTimingFlags(t *testing.T) {
	cfg, err := parseArgs([]string{"-fidelity", "full", "-sweep", "-bench-samples", "5"}, &strings.Builder{})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.fidelity != pipeline.FidelityFull {
		t.Fatalf("fidelity = %v, want full", cfg.fidelity)
	}
	if !cfg.sweep {
		t.Fatal("sweep flag not set")
	}
	if cfg.benchSamples != 5 {
		t.Fatalf("benchSamples = %d, want 5", cfg.benchSamples)
	}
}

func TestParseArgsDefaults(t *testing.T) {
	cfg, err := parseArgs(nil, &strings.Builder{})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.size != bio.SizeB || cfg.timing != bio.SizeB || cfg.jobs != 0 || cfg.only != "" {
		t.Fatalf("unexpected defaults: %+v", cfg)
	}
	if cfg.fidelity != pipeline.FidelityFast || cfg.sweep || cfg.benchSamples != 3 {
		t.Fatalf("unexpected timing defaults: fidelity=%v sweep=%v samples=%d",
			cfg.fidelity, cfg.sweep, cfg.benchSamples)
	}
}

// TestParseArgsRejects pins down the error paths: each bad invocation
// must fail parsing (so main exits non-zero) with a message naming
// the offending flag.
func TestParseArgsRejects(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantMsg string
	}{
		{"unknown flag", []string{"-frobnicate"}, "frobnicate"},
		{"negative jobs", []string{"-j", "-3"}, "invalid worker count -3"},
		{"bad size", []string{"-size", "classZ"}, "-size"},
		{"bad timing size", []string{"-timing", "huge"}, "-timing"},
		{"unknown experiment", []string{"-only", "tab99"}, "unknown experiment"},
		{"bad fidelity", []string{"-fidelity", "approximate"}, "-fidelity"},
		{"zero bench samples", []string{"-bench-samples", "0"}, "invalid sample count 0"},
		{"stray positional args", []string{"tab5"}, "unexpected arguments"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var errBuf strings.Builder
			_, err := parseArgs(tc.args, &errBuf)
			if err == nil {
				t.Fatalf("parseArgs(%v) succeeded, want error", tc.args)
			}
			combined := err.Error() + " " + errBuf.String()
			if !strings.Contains(combined, tc.wantMsg) {
				t.Fatalf("parseArgs(%v) error %q (stderr %q) missing %q",
					tc.args, err, errBuf.String(), tc.wantMsg)
			}
		})
	}
}

func TestParseArgsHelp(t *testing.T) {
	var errBuf strings.Builder
	_, err := parseArgs([]string{"-h"}, &errBuf)
	if err != flag.ErrHelp {
		t.Fatalf("err = %v, want flag.ErrHelp", err)
	}
	if !strings.Contains(errBuf.String(), "-size") {
		t.Fatalf("usage text missing flags: %s", errBuf.String())
	}
}
