// Command experiments regenerates every table and figure of the
// paper's evaluation and prints them in order. The -size flag selects
// the characterization input scale and -timing the Table 8/Figure 9
// scale (the paper profiles with class-B inputs and times with
// class-C). All experiments share one analysis session: each kernel
// is compiled once and functionally simulated once, every analyzer
// reads from that shared run, and independent simulations fan out
// across -j worker goroutines with deterministic output.
//
//	go run ./cmd/experiments -size classB -timing classB -j 8 \
//	    -bench-json BENCH_experiments.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"bioperfload/internal/bio"
	"bioperfload/internal/experiments"
	"bioperfload/internal/runner"
)

func parseSize(s string) (bio.Size, error) {
	switch s {
	case "test":
		return bio.SizeTest, nil
	case "classB", "b", "B":
		return bio.SizeB, nil
	case "classC", "c", "C":
		return bio.SizeC, nil
	}
	return 0, fmt.Errorf("unknown size %q (test|classB|classC)", s)
}

// benchEntry is one experiment's perf record in the -bench-json file.
type benchEntry struct {
	Experiment          string  `json:"experiment"`
	WallSeconds         float64 `json:"wall_seconds"`
	DynamicInstructions uint64  `json:"dynamic_instructions,omitempty"`
}

// benchFile is the -bench-json document: per-experiment wall time and
// dynamic instruction counts plus the session's cache counters, the
// perf trajectory record for future optimization PRs.
type benchFile struct {
	Size         string       `json:"size"`
	Timing       string       `json:"timing"`
	Jobs         int          `json:"jobs"`
	TotalSeconds float64      `json:"total_seconds"`
	Session      runner.Stats `json:"session"`
	Experiments  []benchEntry `json:"experiments"`
}

func main() {
	log.SetFlags(0)
	sizeFlag := flag.String("size", "classB", "characterization input size (test|classB|classC)")
	timingFlag := flag.String("timing", "classB", "Table 8 / Figure 9 input size")
	only := flag.String("only", "", "run a single experiment (fig1|tab1|fig2|tab2|tab4|tab5|tab6|tab7|tab8|fig9|ablations)")
	ablations := flag.Bool("ablations", false, "also run the causal ablations (L1 latency, predictor, passes, restrict)")
	jobs := flag.Int("j", 0, "max concurrent simulations (0 = GOMAXPROCS, 1 = sequential)")
	benchJSON := flag.String("bench-json", "", "write per-experiment wall-time and instruction counts to this file")
	flag.Parse()

	sz, err := parseSize(*sizeFlag)
	if err != nil {
		log.Fatal(err)
	}
	tsz, err := parseSize(*timingFlag)
	if err != nil {
		log.Fatal(err)
	}

	s := runner.NewSession(*jobs)
	want := func(name string) bool { return *only == "" || *only == name }
	start := time.Now()

	var bench []benchEntry
	timed := func(name string, insts uint64, began time.Time) {
		bench = append(bench, benchEntry{
			Experiment:          name,
			WallSeconds:         time.Since(began).Seconds(),
			DynamicInstructions: insts,
		})
	}

	var profiles []*experiments.ProgramProfile
	needProfiles := want("fig1") || want("tab1") || want("tab2") || want("tab4")
	if needProfiles {
		log.Printf("characterizing the nine applications at %s (j=%d)...", sz, s.Jobs())
		began := time.Now()
		profiles, err = experiments.CharacterizeSession(s, sz)
		if err != nil {
			log.Fatal(err)
		}
		var insts uint64
		for _, p := range profiles {
			insts += p.Instructions
		}
		timed("characterize", insts, began)
	}

	out := os.Stdout
	if want("fig1") {
		fmt.Fprintln(out, experiments.RenderFig1(experiments.Fig1(profiles)))
	}
	if want("tab1") {
		fmt.Fprintln(out, experiments.RenderTable1(experiments.Table1(profiles)))
	}
	if want("fig2") {
		began := time.Now()
		series, err := experiments.Fig2Session(s, sz)
		if err != nil {
			log.Fatal(err)
		}
		timed("fig2", 0, began)
		fmt.Fprintln(out, experiments.RenderFig2(series))
	}
	if want("tab2") {
		fmt.Fprintln(out, experiments.RenderTable2(experiments.Table2(profiles)))
	}
	if want("tab4") {
		fmt.Fprintln(out, experiments.RenderTable4(experiments.Table4(profiles)))
	}
	if want("tab5") {
		began := time.Now()
		rows, err := experiments.Table5Session(s, sz, 8)
		if err != nil {
			log.Fatal(err)
		}
		timed("tab5", 0, began)
		fmt.Fprintln(out, experiments.RenderTable5(rows))
	}
	if want("tab6") {
		fmt.Fprintln(out, experiments.RenderTable6(experiments.Table6()))
	}
	if want("tab7") {
		fmt.Fprintln(out, experiments.RenderTable7())
	}
	if want("tab8") || want("fig9") {
		log.Printf("timing the six transformed applications at %s on four platforms (j=%d)...", tsz, s.Jobs())
		began := time.Now()
		cells, err := experiments.Table8Session(s, tsz)
		if err != nil {
			log.Fatal(err)
		}
		var insts uint64
		for _, c := range cells {
			insts += c.StatsOrig.Instructions + c.StatsTrans.Instructions
		}
		timed("tab8", insts, began)
		if want("tab8") {
			fmt.Fprintln(out, experiments.RenderTable8(cells))
		}
		if want("fig9") {
			fmt.Fprintln(out, experiments.RenderFig9(experiments.Fig9(cells)))
		}
	}
	if *ablations || *only == "ablations" {
		log.Printf("running ablations on hmmsearch at %s...", tsz)
		began := time.Now()
		if rows, err := experiments.AblateL1Latency(s, "hmmsearch", tsz, []int{1, 2, 3, 4, 5}); err != nil {
			log.Fatal(err)
		} else {
			fmt.Fprintln(out, experiments.RenderAblation("L1 hit latency sweep (Alpha model)", rows))
		}
		if rows, err := experiments.AblatePredictor(s, "hmmsearch", tsz); err != nil {
			log.Fatal(err)
		} else {
			fmt.Fprintln(out, experiments.RenderAblation("branch predictor (Alpha model)", rows))
		}
		if rows, err := experiments.AblatePasses(s, "hmmsearch", tsz); err != nil {
			log.Fatal(err)
		} else {
			fmt.Fprintln(out, experiments.RenderAblation("compiler passes (Alpha model)", rows))
		}
		for _, plat := range []string{"itanium2", "alpha21264"} {
			if rows, err := experiments.AblateRestrict(s, "hmmsearch", plat, tsz); err != nil {
				log.Fatal(err)
			} else {
				fmt.Fprintln(out, experiments.RenderAblation("restrict parameters ("+plat+")", rows))
			}
		}
		timed("ablations", 0, began)
	}

	elapsed := time.Since(start)
	if *benchJSON != "" {
		doc := benchFile{
			Size: sz.String(), Timing: tsz.String(), Jobs: s.Jobs(),
			TotalSeconds: elapsed.Seconds(),
			Session:      s.Stats(),
			Experiments:  bench,
		}
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*benchJSON, append(buf, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", *benchJSON)
	}
	st := s.Stats()
	log.Printf("done in %v (%d compiles, %d compile-cache hits, %d runs, %d shared-run hits)",
		elapsed.Round(time.Millisecond), st.Compiles, st.CompileHits, st.Runs, st.CharacterizeHits)
}
