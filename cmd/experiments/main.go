// Command experiments regenerates every table and figure of the
// paper's evaluation and prints them in order. The -size flag selects
// the characterization input scale and -timing the Table 8/Figure 9
// scale (the paper profiles with class-B inputs and times with
// class-C).
//
//	go run ./cmd/experiments -size classB -timing classB
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"bioperfload/internal/bio"
	"bioperfload/internal/experiments"
)

func parseSize(s string) (bio.Size, error) {
	switch s {
	case "test":
		return bio.SizeTest, nil
	case "classB", "b", "B":
		return bio.SizeB, nil
	case "classC", "c", "C":
		return bio.SizeC, nil
	}
	return 0, fmt.Errorf("unknown size %q (test|classB|classC)", s)
}

func main() {
	log.SetFlags(0)
	sizeFlag := flag.String("size", "classB", "characterization input size (test|classB|classC)")
	timingFlag := flag.String("timing", "classB", "Table 8 / Figure 9 input size")
	only := flag.String("only", "", "run a single experiment (fig1|tab1|fig2|tab2|tab4|tab5|tab6|tab7|tab8|fig9|ablations)")
	ablations := flag.Bool("ablations", false, "also run the causal ablations (L1 latency, predictor, passes, restrict)")
	flag.Parse()

	sz, err := parseSize(*sizeFlag)
	if err != nil {
		log.Fatal(err)
	}
	tsz, err := parseSize(*timingFlag)
	if err != nil {
		log.Fatal(err)
	}

	want := func(name string) bool { return *only == "" || *only == name }
	start := time.Now()

	var profiles []experiments.ProgramProfile
	needProfiles := want("fig1") || want("tab1") || want("tab2") || want("tab4")
	if needProfiles {
		log.Printf("characterizing the nine applications at %s...", sz)
		profiles, err = experiments.Characterize(sz)
		if err != nil {
			log.Fatal(err)
		}
	}

	out := os.Stdout
	if want("fig1") {
		fmt.Fprintln(out, experiments.RenderFig1(experiments.Fig1(profiles)))
	}
	if want("tab1") {
		fmt.Fprintln(out, experiments.RenderTable1(experiments.Table1(profiles)))
	}
	if want("fig2") {
		series, err := experiments.Fig2(sz)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(out, experiments.RenderFig2(series))
	}
	if want("tab2") {
		fmt.Fprintln(out, experiments.RenderTable2(experiments.Table2(profiles)))
	}
	if want("tab4") {
		fmt.Fprintln(out, experiments.RenderTable4(experiments.Table4(profiles)))
	}
	if want("tab5") {
		rows, err := experiments.Table5(sz, 8)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(out, experiments.RenderTable5(rows))
	}
	if want("tab6") {
		fmt.Fprintln(out, experiments.RenderTable6(experiments.Table6()))
	}
	if want("tab7") {
		fmt.Fprintln(out, experiments.RenderTable7())
	}
	if want("tab8") || want("fig9") {
		log.Printf("timing the six transformed applications at %s on four platforms...", tsz)
		cells, err := experiments.Table8(tsz)
		if err != nil {
			log.Fatal(err)
		}
		if want("tab8") {
			fmt.Fprintln(out, experiments.RenderTable8(cells))
		}
		if want("fig9") {
			fmt.Fprintln(out, experiments.RenderFig9(experiments.Fig9(cells)))
		}
	}
	if *ablations || *only == "ablations" {
		log.Printf("running ablations on hmmsearch at %s...", tsz)
		if rows, err := experiments.AblateL1Latency("hmmsearch", tsz, []int{1, 2, 3, 4, 5}); err != nil {
			log.Fatal(err)
		} else {
			fmt.Fprintln(out, experiments.RenderAblation("L1 hit latency sweep (Alpha model)", rows))
		}
		if rows, err := experiments.AblatePredictor("hmmsearch", tsz); err != nil {
			log.Fatal(err)
		} else {
			fmt.Fprintln(out, experiments.RenderAblation("branch predictor (Alpha model)", rows))
		}
		if rows, err := experiments.AblatePasses("hmmsearch", tsz); err != nil {
			log.Fatal(err)
		} else {
			fmt.Fprintln(out, experiments.RenderAblation("compiler passes (Alpha model)", rows))
		}
		for _, plat := range []string{"itanium2", "alpha21264"} {
			if rows, err := experiments.AblateRestrict("hmmsearch", plat, tsz); err != nil {
				log.Fatal(err)
			} else {
				fmt.Fprintln(out, experiments.RenderAblation("restrict parameters ("+plat+")", rows))
			}
		}
	}
	log.Printf("done in %v", time.Since(start).Round(time.Millisecond))
}
