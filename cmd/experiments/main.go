// Command experiments regenerates every table and figure of the
// paper's evaluation and prints them in order. The -size flag selects
// the characterization input scale and -timing the Table 8/Figure 9
// scale (the paper profiles with class-B inputs and times with
// class-C). Timing experiments run on the fast scoreboard tier by
// default; -fidelity full reproduces the exact paper cells on the
// cycle-level model, and -sweep adds the machine-grid sweep the fast
// tier makes affordable. All experiments share one analysis session:
// each kernel is compiled once and functionally simulated once, every
// analyzer reads from that shared run, and independent simulations fan
// out across -j worker goroutines with deterministic output. SIGINT
// and SIGTERM cancel the session's in-flight simulations.
//
// With -bench-json, timing experiments are re-measured -bench-samples
// times (best-of-N wall time, fast tier), and Table 8 is additionally
// timed on the other tier so the record always carries both.
//
//	go run ./cmd/experiments -size classB -timing classB -j 8 \
//	    -fidelity full -sweep -bench-json BENCH_experiments.json
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bioperfload/internal/bio"
	"bioperfload/internal/experiments"
	"bioperfload/internal/pipeline"
	"bioperfload/internal/runner"
)

func parseSize(s string) (bio.Size, error) {
	switch s {
	case "test":
		return bio.SizeTest, nil
	case "classB", "b", "B":
		return bio.SizeB, nil
	case "classC", "c", "C":
		return bio.SizeC, nil
	}
	return 0, fmt.Errorf("unknown size %q (test|classB|classC)", s)
}

// onlyNames are the -only selector values, in output order.
var onlyNames = []string{
	"fig1", "tab1", "fig2", "tab2", "tab4", "tab5", "tab6", "tab7",
	"tab8", "fig9", "sweep", "ablations",
}

// config is one fully validated command line.
type config struct {
	size         bio.Size
	timing       bio.Size
	only         string
	ablations    bool
	sweep        bool
	jobs         int
	benchJSON    string
	benchSamples int
	fidelity     pipeline.Fidelity
	accuracy     runner.Accuracy
}

// parseArgs parses and validates the command line. Unknown flags,
// unknown -size/-timing/-only values, negative -j values, and stray
// positional arguments all return an error (main exits non-zero)
// instead of being silently absorbed.
func parseArgs(args []string, stderr io.Writer) (*config, error) {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	sizeFlag := fs.String("size", "classB", "characterization input size (test|classB|classC)")
	timingFlag := fs.String("timing", "classB", "Table 8 / Figure 9 input size")
	only := fs.String("only", "", "run a single experiment (fig1|tab1|fig2|tab2|tab4|tab5|tab6|tab7|tab8|fig9|sweep|ablations)")
	ablations := fs.Bool("ablations", false, "also run the causal ablations (L1 latency, predictor, passes, restrict)")
	sweep := fs.Bool("sweep", false, "also run the machine-grid sweep (always on the fast tier)")
	jobs := fs.Int("j", 0, "max concurrent simulations (0 = GOMAXPROCS, 1 = sequential)")
	benchJSON := fs.String("bench-json", "", "write per-experiment wall-time and instruction counts to this file")
	benchSamples := fs.Int("bench-samples", 3, "fast-tier timing samples per experiment when -bench-json is set (best-of-N)")
	fidelity := fs.String("fidelity", "fast", "timing tier for Table 8/Figure 9 and ablations (fast|full)")
	accuracy := fs.String("accuracy", "exact", "characterization tier for Figure 1 / Tables 1-4 (exact|sampled)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		return nil, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	cfg := &config{
		only: *only, ablations: *ablations, sweep: *sweep,
		jobs: *jobs, benchJSON: *benchJSON, benchSamples: *benchSamples,
	}
	var err error
	if cfg.size, err = parseSize(*sizeFlag); err != nil {
		return nil, fmt.Errorf("-size: %w", err)
	}
	if cfg.timing, err = parseSize(*timingFlag); err != nil {
		return nil, fmt.Errorf("-timing: %w", err)
	}
	if cfg.fidelity, err = pipeline.ParseFidelity(*fidelity); err != nil {
		return nil, fmt.Errorf("-fidelity: %w", err)
	}
	if cfg.accuracy, err = runner.ParseAccuracy(*accuracy); err != nil {
		return nil, fmt.Errorf("-accuracy: %w", err)
	}
	if cfg.jobs < 0 {
		return nil, fmt.Errorf("-j: invalid worker count %d (must be >= 0; 0 = GOMAXPROCS)", cfg.jobs)
	}
	if cfg.benchSamples < 1 {
		return nil, fmt.Errorf("-bench-samples: invalid sample count %d (must be >= 1)", cfg.benchSamples)
	}
	if cfg.only != "" {
		ok := false
		for _, n := range onlyNames {
			if cfg.only == n {
				ok = true
				break
			}
		}
		if !ok {
			return nil, fmt.Errorf("-only: unknown experiment %q (valid: %v)", cfg.only, onlyNames)
		}
	}
	return cfg, nil
}

// benchEntry is one experiment's perf record in the -bench-json file.
// Timing experiments carry their tier and, when sampled more than
// once, every sample; WallSeconds is the best (minimum) sample.
type benchEntry struct {
	Experiment          string    `json:"experiment"`
	Fidelity            string    `json:"fidelity,omitempty"`
	WallSeconds         float64   `json:"wall_seconds"`
	SamplesSeconds      []float64 `json:"samples_seconds,omitempty"`
	DynamicInstructions uint64    `json:"dynamic_instructions,omitempty"`
}

// minSample returns the best (minimum) wall time of a sample set.
func minSample(samples []float64) float64 {
	best := samples[0]
	for _, s := range samples[1:] {
		if s < best {
			best = s
		}
	}
	return best
}

// benchFile is the -bench-json document: per-experiment wall time and
// dynamic instruction counts plus the session's cache counters, the
// perf trajectory record for future optimization PRs.
type benchFile struct {
	Size         string       `json:"size"`
	Timing       string       `json:"timing"`
	Fidelity     string       `json:"fidelity"`
	Jobs         int          `json:"jobs"`
	TotalSeconds float64      `json:"total_seconds"`
	Session      runner.Stats `json:"session"`
	Experiments  []benchEntry `json:"experiments"`
}

func main() {
	log.SetFlags(0)
	cfg, err := parseArgs(os.Args[1:], os.Stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0)
		}
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, cfg, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(ctx context.Context, cfg *config, out io.Writer) error {
	sz, tsz := cfg.size, cfg.timing
	s := runner.NewSession(cfg.jobs)
	want := func(name string) bool { return cfg.only == "" || cfg.only == name }
	start := time.Now()

	var bench []benchEntry
	timed := func(name string, insts uint64, began time.Time) {
		bench = append(bench, benchEntry{
			Experiment:          name,
			WallSeconds:         time.Since(began).Seconds(),
			DynamicInstructions: insts,
		})
	}

	var profiles []*experiments.ProgramProfile
	needProfiles := want("fig1") || want("tab1") || want("tab2") || want("tab4")
	if needProfiles {
		log.Printf("characterizing the nine applications at %s (%s, j=%d)...", sz, cfg.accuracy, s.Jobs())
		began := time.Now()
		var err error
		profiles, err = experiments.CharacterizeSessionAccuracy(ctx, s, sz, cfg.accuracy)
		if err != nil {
			return err
		}
		var insts uint64
		for _, p := range profiles {
			insts += p.Instructions
		}
		timed("characterize", insts, began)
	}

	if want("fig1") {
		fmt.Fprintln(out, experiments.RenderFig1(experiments.Fig1(profiles)))
	}
	if want("tab1") {
		fmt.Fprintln(out, experiments.RenderTable1(experiments.Table1(profiles)))
	}
	if want("fig2") {
		began := time.Now()
		series, err := experiments.Fig2Session(ctx, s, sz)
		if err != nil {
			return err
		}
		timed("fig2", 0, began)
		fmt.Fprintln(out, experiments.RenderFig2(series))
	}
	if want("tab2") {
		fmt.Fprintln(out, experiments.RenderTable2(experiments.Table2(profiles)))
	}
	if want("tab4") {
		fmt.Fprintln(out, experiments.RenderTable4(experiments.Table4(profiles)))
	}
	if want("tab5") {
		began := time.Now()
		rows, err := experiments.Table5Session(ctx, s, sz, 8)
		if err != nil {
			return err
		}
		timed("tab5", 0, began)
		fmt.Fprintln(out, experiments.RenderTable5(rows))
	}
	if want("tab6") {
		fmt.Fprintln(out, experiments.RenderTable6(experiments.Table6()))
	}
	if want("tab7") {
		fmt.Fprintln(out, experiments.RenderTable7())
	}
	// samplesFor is how many times a timing experiment is re-measured:
	// best-of-N on the fast tier when recording a bench file, one run
	// otherwise (the full model is too slow to sample repeatedly).
	samplesFor := func(f pipeline.Fidelity) int {
		if cfg.benchJSON != "" && f == pipeline.FidelityFast {
			return cfg.benchSamples
		}
		return 1
	}
	runTab8 := func(f pipeline.Fidelity) ([]experiments.Table8Cell, error) {
		n := samplesFor(f)
		var cells []experiments.Table8Cell
		samples := make([]float64, 0, n)
		for i := 0; i < n; i++ {
			began := time.Now()
			var err error
			cells, err = experiments.Table8SessionFidelity(ctx, s, tsz, f)
			if err != nil {
				return nil, err
			}
			samples = append(samples, time.Since(began).Seconds())
		}
		var insts uint64
		for _, c := range cells {
			insts += c.StatsOrig.Instructions + c.StatsTrans.Instructions
		}
		bench = append(bench, benchEntry{
			Experiment:          "tab8",
			Fidelity:            f.String(),
			WallSeconds:         minSample(samples),
			SamplesSeconds:      samples,
			DynamicInstructions: insts,
		})
		return cells, nil
	}
	if want("tab8") || want("fig9") {
		log.Printf("timing the six transformed applications at %s on four platforms (%s tier, j=%d)...",
			tsz, cfg.fidelity, s.Jobs())
		cells, err := runTab8(cfg.fidelity)
		if err != nil {
			return err
		}
		if want("tab8") {
			fmt.Fprintln(out, experiments.RenderTable8(cells))
		}
		if want("fig9") {
			fmt.Fprintln(out, experiments.RenderFig9(experiments.Fig9(cells)))
		}
		if cfg.benchJSON != "" {
			other := pipeline.FidelityFast
			if cfg.fidelity == pipeline.FidelityFast {
				other = pipeline.FidelityFull
			}
			log.Printf("re-timing Table 8 on the %s tier for the bench record...", other)
			if _, err := runTab8(other); err != nil {
				return err
			}
		}
	}
	if cfg.sweep || cfg.only == "sweep" {
		log.Printf("sweeping the machine grid at %s (fast tier)...", tsz)
		n := samplesFor(pipeline.FidelityFast)
		var rows []experiments.SweepRow
		samples := make([]float64, 0, n)
		for i := 0; i < n; i++ {
			began := time.Now()
			var err error
			rows, err = experiments.SweepSession(ctx, s, tsz, nil)
			if err != nil {
				return err
			}
			samples = append(samples, time.Since(began).Seconds())
		}
		bench = append(bench, benchEntry{
			Experiment:     "sweep",
			Fidelity:       pipeline.FidelityFast.String(),
			WallSeconds:    minSample(samples),
			SamplesSeconds: samples,
		})
		fmt.Fprintln(out, experiments.RenderSweep(rows))
	}
	if cfg.ablations || cfg.only == "ablations" {
		log.Printf("running ablations on hmmsearch at %s (%s tier)...", tsz, cfg.fidelity)
		began := time.Now()
		if rows, err := experiments.AblateL1Latency(ctx, s, "hmmsearch", tsz, []int{1, 2, 3, 4, 5}, cfg.fidelity); err != nil {
			return err
		} else {
			fmt.Fprintln(out, experiments.RenderAblation("L1 hit latency sweep (Alpha model)", rows))
		}
		if rows, err := experiments.AblatePredictor(ctx, s, "hmmsearch", tsz, cfg.fidelity); err != nil {
			return err
		} else {
			fmt.Fprintln(out, experiments.RenderAblation("branch predictor (Alpha model)", rows))
		}
		if rows, err := experiments.AblatePasses(ctx, s, "hmmsearch", tsz, cfg.fidelity); err != nil {
			return err
		} else {
			fmt.Fprintln(out, experiments.RenderAblation("compiler passes (Alpha model)", rows))
		}
		for _, plat := range []string{"itanium2", "alpha21264"} {
			if rows, err := experiments.AblateRestrict(ctx, s, "hmmsearch", plat, tsz, cfg.fidelity); err != nil {
				return err
			} else {
				fmt.Fprintln(out, experiments.RenderAblation("restrict parameters ("+plat+")", rows))
			}
		}
		bench = append(bench, benchEntry{
			Experiment:  "ablations",
			Fidelity:    cfg.fidelity.String(),
			WallSeconds: time.Since(began).Seconds(),
		})
	}

	elapsed := time.Since(start)
	if cfg.benchJSON != "" {
		doc := benchFile{
			Size: sz.String(), Timing: tsz.String(),
			Fidelity: cfg.fidelity.String(), Jobs: s.Jobs(),
			TotalSeconds: elapsed.Seconds(),
			Session:      s.Stats(),
			Experiments:  bench,
		}
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.benchJSON, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		log.Printf("wrote %s", cfg.benchJSON)
	}
	st := s.Stats()
	log.Printf("done in %v (%d compiles, %d compile-cache hits, %d runs, %d shared-run hits)",
		elapsed.Round(time.Millisecond), st.Compiles, st.CompileHits, st.Runs, st.CharacterizeHits)
	return nil
}
