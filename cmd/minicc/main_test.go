package main

import (
	"errors"
	"flag"
	"io"
	"strings"
	"testing"
)

func TestParseArgs(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string // substring of the error; "" means success
	}{
		{"plain file", []string{"prog.mc"}, ""},
		{"all flags", []string{"-S", "-O0", "-regs", "8", "-fuel", "100", "prog.mc"}, ""},
		{"missing file", []string{"-S"}, "missing input file"},
		{"no args", nil, "missing input file"},
		{"stray args", []string{"a.mc", "b.mc"}, "unexpected arguments"},
		{"unknown flag", []string{"-frobnicate", "prog.mc"}, "flag provided but not defined"},
		{"negative regs", []string{"-regs", "-3", "prog.mc"}, "invalid register count"},
		{"malformed fuel", []string{"-fuel", "lots", "prog.mc"}, "invalid value"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg, err := parseArgs(tc.args, io.Discard)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("parseArgs(%v): %v", tc.args, err)
				}
				if cfg.path == "" {
					t.Fatalf("parseArgs(%v): empty input path", tc.args)
				}
				return
			}
			if err == nil {
				t.Fatalf("parseArgs(%v) accepted invalid command line: %+v", tc.args, cfg)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("parseArgs(%v) = %q, want substring %q", tc.args, err, tc.wantErr)
			}
		})
	}
}

func TestParseArgsHelp(t *testing.T) {
	_, err := parseArgs([]string{"-h"}, io.Discard)
	if !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("parseArgs(-h) = %v, want flag.ErrHelp", err)
	}
}

func TestParseArgsValues(t *testing.T) {
	cfg, err := parseArgs([]string{"-O0", "-regs", "8", "-fuel", "42", "p.mc"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.o0 || cfg.dump || cfg.regs != 8 || cfg.fuel != 42 || cfg.path != "p.mc" {
		t.Fatalf("parseArgs decoded %+v", cfg)
	}
}
