// Command minicc compiles and runs MiniC source files on the
// simulated machine — the toolchain's standalone driver.
//
//	minicc prog.mc            # compile and run
//	minicc -S prog.mc         # print the generated VRISC64 assembly
//	minicc -O0 -regs 8 prog.mc
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"bioperfload"
)

func main() {
	log.SetFlags(0)
	dump := flag.Bool("S", false, "print the generated assembly instead of running")
	o0 := flag.Bool("O0", false, "disable optimization")
	regs := flag.Int("regs", 0, "restrict the allocatable registers per class (0 = default)")
	fuel := flag.Uint64("fuel", 0, "instruction budget (0 = default)")
	flag.Parse()

	if flag.NArg() != 1 {
		log.Fatal("usage: minicc [-S] [-O0] [-regs n] file.mc")
	}
	path := flag.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	opts := bioperfload.DefaultCompiler()
	if *o0 {
		opts = bioperfload.UnoptimizedCompiler()
	}
	opts.AllocIntRegs = *regs
	opts.AllocFPRegs = *regs

	prog, err := bioperfload.CompileMiniCWith(path, string(src), opts)
	if err != nil {
		log.Fatal(err)
	}

	if *dump {
		for _, f := range prog.Funcs {
			fmt.Printf("%s:\n", f.Name)
			for pc := f.Entry; pc < f.End; pc++ {
				fmt.Printf("  %5d: %s\n", pc, prog.Insts[pc])
			}
		}
		return
	}

	m, err := bioperfload.NewMachine(prog)
	if err != nil {
		log.Fatal(err)
	}
	if *fuel > 0 {
		m.Fuel = *fuel
	}
	res, err := m.Run()
	if err != nil {
		log.Fatal(err)
	}
	for _, v := range res.IntOutput {
		fmt.Println(v)
	}
	for _, v := range res.FPOutput {
		fmt.Println(v)
	}
	fmt.Fprintf(os.Stderr, "[%d instructions, exit %d]\n", res.Instructions, res.ExitCode)
}
