// Command minicc compiles and runs MiniC source files on the
// simulated machine — the toolchain's standalone driver.
//
//	minicc prog.mc            # compile and run
//	minicc -S prog.mc         # print the generated VRISC64 assembly
//	minicc -O0 -regs 8 prog.mc
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"bioperfload"
)

// config is one fully validated command line.
type config struct {
	dump bool
	o0   bool
	regs int
	fuel uint64
	path string
}

// parseArgs parses and validates the command line. Unknown flags,
// negative -regs values, a missing input file argument, and stray
// positional arguments all return an error (main exits non-zero)
// instead of being silently absorbed.
func parseArgs(args []string, stderr io.Writer) (*config, error) {
	fs := flag.NewFlagSet("minicc", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dump := fs.Bool("S", false, "print the generated assembly instead of running")
	o0 := fs.Bool("O0", false, "disable optimization")
	regs := fs.Int("regs", 0, "restrict the allocatable registers per class (0 = default)")
	fuel := fs.Uint64("fuel", 0, "instruction budget (0 = default)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() == 0 {
		return nil, fmt.Errorf("missing input file (usage: minicc [-S] [-O0] [-regs n] file.mc)")
	}
	if fs.NArg() > 1 {
		return nil, fmt.Errorf("unexpected arguments after %s: %v", fs.Arg(0), fs.Args()[1:])
	}
	if *regs < 0 {
		return nil, fmt.Errorf("-regs: invalid register count %d (must be >= 0; 0 = default)", *regs)
	}
	return &config{dump: *dump, o0: *o0, regs: *regs, fuel: *fuel, path: fs.Arg(0)}, nil
}

func main() {
	log.SetFlags(0)
	cfg, err := parseArgs(os.Args[1:], os.Stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0)
		}
		fmt.Fprintf(os.Stderr, "minicc: %v\n", err)
		os.Exit(2)
	}
	if err := run(cfg, os.Stdout, os.Stderr); err != nil {
		log.Fatal(err)
	}
}

func run(cfg *config, out, errOut io.Writer) error {
	src, err := os.ReadFile(cfg.path)
	if err != nil {
		return err
	}
	opts := bioperfload.DefaultCompiler()
	if cfg.o0 {
		opts = bioperfload.UnoptimizedCompiler()
	}
	opts.AllocIntRegs = cfg.regs
	opts.AllocFPRegs = cfg.regs

	prog, err := bioperfload.CompileMiniCWith(cfg.path, string(src), opts)
	if err != nil {
		return err
	}

	if cfg.dump {
		for _, f := range prog.Funcs {
			fmt.Fprintf(out, "%s:\n", f.Name)
			for pc := f.Entry; pc < f.End; pc++ {
				fmt.Fprintf(out, "  %5d: %s\n", pc, prog.Insts[pc])
			}
		}
		return nil
	}

	m, err := bioperfload.NewMachine(prog)
	if err != nil {
		return err
	}
	if cfg.fuel > 0 {
		m.Fuel = cfg.fuel
	}
	res, err := m.Run()
	if err != nil {
		return err
	}
	for _, v := range res.IntOutput {
		fmt.Fprintln(out, v)
	}
	for _, v := range res.FPOutput {
		fmt.Fprintln(out, v)
	}
	fmt.Fprintf(errOut, "[%d instructions, exit %d]\n", res.Instructions, res.ExitCode)
	return nil
}
