// Command bioperfd serves the BioPerf characterization analyses over
// HTTP: jobs are queued, deduplicated, and executed on one shared
// runner.Session, so repeated requests answer from memoized artifacts.
//
//	bioperfd -addr :8080
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/characterize \
//	    -d '{"program":"hmmsearch","size":"classB","wait":true}'
//	curl -s -X POST localhost:8080/v1/evaluate \
//	    -d '{"program":"hmmsearch","platform":"alpha21264","fidelity":"full","wait":true}'
//
// Timing endpoints (/v1/evaluate, evaluate sweeps) default to the
// fast scoreboard tier; pass "fidelity":"full" for the exact
// paper-reproduction model. Per-tier request counters appear on
// /metrics as bioperfd_timing_requests_total.
//
// With -store DIR the session is backed by a persistent artifact
// store: cold characterizations record their event traces, and a
// restarted daemon pointed at the same directory serves them again by
// replay — no recompilation, no re-simulation. Store hit/miss/eviction
// counters appear on /metrics.
//
// With -bench PATH the daemon instead benchmarks itself — cold vs
// cached characterize latency over the loopback API — and writes the
// result as JSON (see BENCH_service.json).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"os/signal"
	"sort"
	"sync"
	"syscall"
	"time"

	"bioperfload/internal/bio"
	"bioperfload/internal/runner"
	"bioperfload/internal/service"
	"bioperfload/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bioperfd: ")
	addr := flag.String("addr", ":8080", "listen address")
	jobs := flag.Int("j", 0, "session simulation workers (0 = GOMAXPROCS)")
	queueDepth := flag.Int("queue", 64, "job queue depth (full queue rejects with 429)")
	workers := flag.Int("workers", 4, "job executor pool width")
	jobTimeout := flag.Duration("job-timeout", 10*time.Minute, "server-wide per-job timeout cap")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown drain budget")
	bench := flag.String("bench", "", "benchmark the service against itself and write JSON to this path instead of serving")
	benchSize := flag.String("bench-size", "classB", "input size for -bench")
	storeDir := flag.String("store", "", "persistent artifact store directory (warm restarts replay recorded traces)")
	storeMax := flag.Int64("store-max", 0, "artifact store size cap in bytes (0 = unlimited, LRU eviction above)")
	flag.Parse()

	var artifacts *store.Store
	if *storeDir != "" {
		var err error
		artifacts, err = store.Open(*storeDir, *storeMax)
		if err != nil {
			log.Fatalf("open store %s: %v", *storeDir, err)
		}
		defer func() {
			if err := artifacts.Close(); err != nil {
				log.Printf("store close: %v", err)
			}
		}()
		st := artifacts.Stats()
		log.Printf("store %s: %d entries, %d bytes", *storeDir, st.Entries, st.BytesOnDisk)
	}

	svc := service.New(service.Config{
		Session:    runner.NewSessionWithStore(*jobs, artifacts),
		QueueDepth: *queueDepth,
		Workers:    *workers,
		JobTimeout: *jobTimeout,
	})

	if *bench != "" {
		if err := runBench(svc, *bench, *benchSize); err != nil {
			log.Fatal(err)
		}
		return
	}

	httpSrv := &http.Server{Addr: *addr, Handler: svc.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("listening on %s (queue=%d workers=%d session-jobs=%d)",
		*addr, *queueDepth, *workers, svc.Session().Jobs())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	log.Printf("draining (budget %s)", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(dctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := svc.Shutdown(dctx); err != nil {
		log.Printf("queue drain: %v", err)
	}
	log.Print("bye")
}

// --- self-benchmark (-bench) ---

// benchPhase summarizes one latency population.
type benchPhase struct {
	Requests  int     `json:"requests"`
	ReqPerSec float64 `json:"req_per_sec"`
	P50MS     float64 `json:"p50_ms"`
	P99MS     float64 `json:"p99_ms"`
	MeanMS    float64 `json:"mean_ms"`
}

type benchFile struct {
	Tool      string       `json:"tool"`
	Size      string       `json:"size"`
	Programs  []string     `json:"programs"`
	Cold      benchPhase   `json:"cold"`
	Cached    benchPhase   `json:"cached"`
	Session   runner.Stats `json:"session"`
	Generated string       `json:"generated"`
}

// runBench measures cold (first-ever, simulation-bound) and cached
// (artifact-hit) characterize latency through the real HTTP stack on
// a loopback listener, then writes the summary JSON to path.
func runBench(svc *service.Server, path, size string) error {
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	progs := bio.All()
	names := make([]string, len(progs))
	for i, p := range progs {
		names[i] = p.Name
	}

	characterize := func(name string) (time.Duration, error) {
		body, _ := json.Marshal(map[string]any{
			"program": name, "size": size, "wait": true,
		})
		start := time.Now()
		resp, err := http.Post(ts.URL+"/v1/characterize", "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		var view struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
			return 0, err
		}
		if resp.StatusCode != http.StatusOK || view.Status != "done" {
			return 0, fmt.Errorf("characterize %s: HTTP %d status=%q error=%q",
				name, resp.StatusCode, view.Status, view.Error)
		}
		return time.Since(start), nil
	}

	// Cold: every program's first characterize pays compile + simulate.
	log.Printf("bench: cold characterize, %d programs at %s", len(progs), size)
	coldStart := time.Now()
	cold := make([]time.Duration, 0, len(progs))
	for _, n := range names {
		d, err := characterize(n)
		if err != nil {
			return err
		}
		log.Printf("bench:   %-12s %8.1f ms", n, d.Seconds()*1e3)
		cold = append(cold, d)
	}
	coldWall := time.Since(coldStart)

	// Cached: the same requests now answer from the Session's
	// memoized artifacts; drive them concurrently for throughput.
	const perProg = 25
	total := perProg * len(names)
	log.Printf("bench: cached characterize, %d requests", total)
	cachedStart := time.Now()
	cached := make([]time.Duration, total)
	var wg sync.WaitGroup
	var firstErr error
	var mu sync.Mutex
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < total; i += 8 {
				d, err := characterize(names[i%len(names)])
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				cached[i] = d
			}
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	cachedWall := time.Since(cachedStart)

	out := benchFile{
		Tool:      "bioperfd -bench",
		Size:      size,
		Programs:  names,
		Cold:      summarize(cold, coldWall),
		Cached:    summarize(cached, cachedWall),
		Session:   svc.Session().Stats(),
		Generated: time.Now().UTC().Format(time.RFC3339),
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	log.Printf("bench: cold   %7.2f req/s  p50 %8.1f ms  p99 %8.1f ms",
		out.Cold.ReqPerSec, out.Cold.P50MS, out.Cold.P99MS)
	log.Printf("bench: cached %7.2f req/s  p50 %8.3f ms  p99 %8.3f ms",
		out.Cached.ReqPerSec, out.Cached.P50MS, out.Cached.P99MS)
	log.Printf("bench: wrote %s", path)
	return nil
}

func summarize(ds []time.Duration, wall time.Duration) benchPhase {
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	pct := func(p float64) float64 {
		i := int(p * float64(len(sorted)-1))
		return sorted[i].Seconds() * 1e3
	}
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	return benchPhase{
		Requests:  len(sorted),
		ReqPerSec: float64(len(sorted)) / wall.Seconds(),
		P50MS:     pct(0.50),
		P99MS:     pct(0.99),
		MeanMS:    sum.Seconds() * 1e3 / float64(len(sorted)),
	}
}
