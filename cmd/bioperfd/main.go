// Command bioperfd serves the BioPerf characterization analyses over
// HTTP: jobs are queued, deduplicated, and executed on one shared
// runner.Session, so repeated requests answer from memoized artifacts.
//
//	bioperfd -addr :8080
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/characterize \
//	    -d '{"program":"hmmsearch","size":"classB","wait":true}'
//	curl -s -X POST localhost:8080/v1/evaluate \
//	    -d '{"program":"hmmsearch","platform":"alpha21264","fidelity":"full","wait":true}'
//
// Timing endpoints (/v1/evaluate, evaluate sweeps) default to the
// fast scoreboard tier; pass "fidelity":"full" for the exact
// paper-reproduction model. Per-tier request counters appear on
// /metrics as bioperfd_timing_requests_total.
//
// With -store DIR the session is backed by a persistent artifact
// store: cold characterizations record their event traces, and a
// restarted daemon pointed at the same directory serves them again by
// replay — no recompilation, no re-simulation. Store hit/miss/eviction
// counters appear on /metrics.
//
// With -peers the daemon joins a fleet: a consistent-hash ring over
// canonical request keys decides which node owns each artifact,
// freshly computed snapshots replicate to -replicas successors, and a
// node missing an artifact pulls it from a peer instead of
// re-simulating (the "peer" serving tier, visible on /metrics as
// bioperfd_serve_source_total). A saturated node walks the
// -shed-policy overload ladder: forward the request to its ring
// primary, then degrade full-fidelity timing work to the fast tier,
// then 429.
//
//	bioperfd -addr :8081 -store /var/a -self http://127.0.0.1:8081 \
//	    -peers http://127.0.0.1:8082,http://127.0.0.1:8083
//
// With -bench PATH the daemon instead benchmarks itself — cold vs
// cached characterize latency over the loopback API, plus a 1-node vs
// 3-node fleet comparison — and writes the result as JSON (see
// BENCH_service.json).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"bioperfload/internal/bio"
	"bioperfload/internal/cluster"
	"bioperfload/internal/runner"
	"bioperfload/internal/service"
	"bioperfload/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bioperfd: ")
	addr := flag.String("addr", ":8080", "listen address")
	jobs := flag.Int("j", 0, "session simulation workers (0 = GOMAXPROCS)")
	queueDepth := flag.Int("queue", 64, "job queue depth (full queue rejects with 429)")
	workers := flag.Int("workers", 4, "job executor pool width")
	jobTimeout := flag.Duration("job-timeout", 10*time.Minute, "server-wide per-job timeout cap")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown drain budget")
	bench := flag.String("bench", "", "benchmark the service against itself and write JSON to this path instead of serving")
	benchSize := flag.String("bench-size", "classB", "input size for -bench")
	storeDir := flag.String("store", "", "persistent artifact store directory (warm restarts replay recorded traces)")
	storeMax := flag.Int64("store-max", 0, "artifact store size cap in bytes (0 = unlimited, LRU eviction above)")
	selfURL := flag.String("self", "", "this node's advertised base URL (required with -peers)")
	peers := flag.String("peers", "", "comma-separated peer base URLs; joins a consistent-hash fleet")
	replicas := flag.Int("replicas", 1, "successors beyond the primary holding each artifact")
	shedPolicy := flag.String("shed-policy", "", "overload ladder rungs: forward,degrade (default), a subset, or none")
	flag.Parse()

	shed, err := service.ParseShedPolicy(*shedPolicy)
	if err != nil {
		log.Fatal(err)
	}
	var fleet *cluster.Cluster
	if *peers != "" {
		if *selfURL == "" {
			log.Fatal("-peers requires -self (this node's advertised base URL)")
		}
		fleet = cluster.New(cluster.Config{
			Self:     *selfURL,
			Peers:    splitComma(*peers),
			Replicas: *replicas,
		})
	}

	var artifacts *store.Store
	if *storeDir != "" {
		var err error
		artifacts, err = store.Open(*storeDir, *storeMax)
		if err != nil {
			log.Fatalf("open store %s: %v", *storeDir, err)
		}
		defer func() {
			if err := artifacts.Close(); err != nil {
				log.Printf("store close: %v", err)
			}
		}()
		st := artifacts.Stats()
		log.Printf("store %s: %d entries, %d bytes", *storeDir, st.Entries, st.BytesOnDisk)
	}

	sess := runner.NewSessionWithStore(*jobs, artifacts)
	switch {
	case fleet != nil && artifacts != nil:
		// The peer tier caches fetched artifacts in the store; without
		// one there is nothing to serve peers or admit from them.
		sess.SetRemote(fleet)
	case fleet != nil:
		log.Print("warning: -peers without -store disables the peer artifact tier (forwarding still works)")
	}
	svc := service.New(service.Config{
		Session:    sess,
		QueueDepth: *queueDepth,
		Workers:    *workers,
		JobTimeout: *jobTimeout,
		Cluster:    fleet,
		Shed:       shed,
	})

	if *bench != "" {
		if err := runBench(svc, *bench, *benchSize); err != nil {
			log.Fatal(err)
		}
		return
	}

	httpSrv := &http.Server{Addr: *addr, Handler: svc.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("listening on %s (queue=%d workers=%d session-jobs=%d)",
		*addr, *queueDepth, *workers, svc.Session().Jobs())
	if fleet != nil {
		log.Printf("fleet: self=%s members=%d replicas=%d shed=%s",
			fleet.Self(), len(fleet.Members()), fleet.Replicas(), shed)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	log.Printf("draining (budget %s)", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(dctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := svc.Shutdown(dctx); err != nil {
		log.Printf("queue drain: %v", err)
	}
	if fleet != nil {
		fleet.Quiesce()
	}
	log.Print("bye")
}

func splitComma(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// --- self-benchmark (-bench) ---

// benchPhase summarizes one latency population.
type benchPhase struct {
	Requests  int     `json:"requests"`
	ReqPerSec float64 `json:"req_per_sec"`
	P50MS     float64 `json:"p50_ms"`
	P99MS     float64 `json:"p99_ms"`
	MeanMS    float64 `json:"mean_ms"`
}

type benchFile struct {
	Tool      string       `json:"tool"`
	Size      string       `json:"size"`
	Programs  []string     `json:"programs"`
	Cold      benchPhase   `json:"cold"`
	Cached    benchPhase   `json:"cached"`
	Session   runner.Stats `json:"session"`
	Fleet     []fleetBench `json:"fleet,omitempty"`
	Generated string       `json:"generated"`
}

// fleetBench summarizes one fleet configuration of the 1-node vs
// 3-node comparison: the cold fill, then the best-of-N mixed phase
// where every node answers requests for every program — on a fleet,
// first touches of remotely computed artifacts are served by peer
// fetch instead of re-simulation.
type fleetBench struct {
	Nodes           int               `json:"nodes"`
	Replicas        int               `json:"replicas"`
	BestOf          int               `json:"best_of"`
	Cold            benchPhase        `json:"cold"`
	Mixed           benchPhase        `json:"mixed"`
	ServeSources    map[string]uint64 `json:"serve_sources"` // fleet-wide totals
	ReplayByVersion map[string]uint64 `json:"replay_by_version,omitempty"`
	ColdSimulations uint64            `json:"cold_simulations"`
	PeerFetchHits   uint64            `json:"peer_fetch_hits"`
}

// runBench measures cold (first-ever, simulation-bound) and cached
// (artifact-hit) characterize latency through the real HTTP stack on
// a loopback listener, then writes the summary JSON to path.
func runBench(svc *service.Server, path, size string) error {
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	progs := bio.All()
	names := make([]string, len(progs))
	for i, p := range progs {
		names[i] = p.Name
	}

	characterize := func(name string) (time.Duration, error) {
		body, _ := json.Marshal(map[string]any{
			"program": name, "size": size, "wait": true,
		})
		start := time.Now()
		resp, err := http.Post(ts.URL+"/v1/characterize", "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		var view struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
			return 0, err
		}
		if resp.StatusCode != http.StatusOK || view.Status != "done" {
			return 0, fmt.Errorf("characterize %s: HTTP %d status=%q error=%q",
				name, resp.StatusCode, view.Status, view.Error)
		}
		return time.Since(start), nil
	}

	// Cold: every program's first characterize pays compile + simulate.
	log.Printf("bench: cold characterize, %d programs at %s", len(progs), size)
	coldStart := time.Now()
	cold := make([]time.Duration, 0, len(progs))
	for _, n := range names {
		d, err := characterize(n)
		if err != nil {
			return err
		}
		log.Printf("bench:   %-12s %8.1f ms", n, d.Seconds()*1e3)
		cold = append(cold, d)
	}
	coldWall := time.Since(coldStart)

	// Cached: the same requests now answer from the Session's
	// memoized artifacts; drive them concurrently for throughput.
	const perProg = 25
	total := perProg * len(names)
	log.Printf("bench: cached characterize, %d requests", total)
	cachedStart := time.Now()
	cached := make([]time.Duration, total)
	var wg sync.WaitGroup
	var firstErr error
	var mu sync.Mutex
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < total; i += 8 {
				d, err := characterize(names[i%len(names)])
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				cached[i] = d
			}
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	cachedWall := time.Since(cachedStart)

	// Fleet comparison: the same workload over 1 node and over a
	// 3-node fleet with peer fetch and replication.
	var fleets []fleetBench
	for _, nodes := range []int{1, 3} {
		fb, err := benchFleet(size, names, nodes, 1, 3)
		if err != nil {
			return err
		}
		fleets = append(fleets, fb)
		log.Printf("bench: fleet nodes=%d  mixed %7.2f req/s  p50 %8.3f ms  cold-sims %d  peer-hits %d",
			fb.Nodes, fb.Mixed.ReqPerSec, fb.Mixed.P50MS, fb.ColdSimulations, fb.PeerFetchHits)
	}

	out := benchFile{
		Tool:      "bioperfd -bench",
		Size:      size,
		Programs:  names,
		Cold:      summarize(cold, coldWall),
		Cached:    summarize(cached, cachedWall),
		Session:   svc.Session().Stats(),
		Fleet:     fleets,
		Generated: time.Now().UTC().Format(time.RFC3339),
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	log.Printf("bench: cold   %7.2f req/s  p50 %8.1f ms  p99 %8.1f ms",
		out.Cold.ReqPerSec, out.Cold.P50MS, out.Cold.P99MS)
	log.Printf("bench: cached %7.2f req/s  p50 %8.3f ms  p99 %8.3f ms",
		out.Cached.ReqPerSec, out.Cached.P50MS, out.Cached.P99MS)
	log.Printf("bench: wrote %s", path)
	return nil
}

// benchFleet boots `nodes` in-process daemons (own store, own
// session, full fleet wiring over loopback HTTP), cold-fills the
// programs round-robin across the fleet, then measures the mixed
// phase — every program requested on every node, repeated — best of
// `bestOf` runs. On a fleet the first touch of a program computed
// elsewhere is answered by peer fetch; cold_simulations staying at
// len(programs) is the point of the exercise.
func benchFleet(size string, programs []string, nodes, replicas, bestOf int) (fleetBench, error) {
	servers := make([]*service.Server, nodes)
	listeners := make([]*httptest.Server, nodes)
	clusters := make([]*cluster.Cluster, nodes)
	sessions := make([]*runner.Session, nodes)
	stores := make([]*store.Store, nodes)
	defer func() {
		for _, c := range clusters {
			if c != nil {
				c.Quiesce()
			}
		}
		for _, ts := range listeners {
			if ts != nil {
				ts.Close()
			}
		}
		for _, st := range stores {
			if st != nil {
				st.Close()
			}
		}
	}()

	// Listener URLs must exist before the cluster configs that
	// reference them, so each listener delegates to a server slot
	// filled in below.
	urls := make([]string, nodes)
	for i := range listeners {
		i := i
		listeners[i] = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			servers[i].Handler().ServeHTTP(w, r)
		}))
		urls[i] = listeners[i].URL
	}
	for i := range servers {
		dir, err := os.MkdirTemp("", "bioperfd-fleet-")
		if err != nil {
			return fleetBench{}, err
		}
		defer os.RemoveAll(dir)
		stores[i], err = store.Open(dir, 0)
		if err != nil {
			return fleetBench{}, err
		}
		sessions[i] = runner.NewSessionWithStore(0, stores[i])
		if nodes > 1 {
			var others []string
			for j, u := range urls {
				if j != i {
					others = append(others, u)
				}
			}
			clusters[i] = cluster.New(cluster.Config{Self: urls[i], Peers: others, Replicas: replicas})
			sessions[i].SetRemote(clusters[i])
		}
		servers[i] = service.New(service.Config{
			Session: sessions[i], QueueDepth: 64, Workers: 4,
			Cluster: clusters[i], Shed: service.ShedPolicy{Forward: true, Degrade: true},
		})
	}

	characterize := func(node int, name string) (time.Duration, error) {
		body, _ := json.Marshal(map[string]any{"program": name, "size": size, "wait": true})
		start := time.Now()
		resp, err := http.Post(urls[node]+"/v1/characterize", "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		var view struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
			return 0, err
		}
		if resp.StatusCode != http.StatusOK || view.Status != "done" {
			return 0, fmt.Errorf("fleet characterize %s on node %d: HTTP %d status=%q error=%q",
				name, node, resp.StatusCode, view.Status, view.Error)
		}
		return time.Since(start), nil
	}

	// Cold fill: each program computed exactly once, scattered across
	// the fleet.
	log.Printf("bench: fleet nodes=%d cold fill, %d programs at %s", nodes, len(programs), size)
	coldStart := time.Now()
	cold := make([]time.Duration, 0, len(programs))
	for i, name := range programs {
		d, err := characterize(i%nodes, name)
		if err != nil {
			return fleetBench{}, err
		}
		cold = append(cold, d)
	}
	coldWall := time.Since(coldStart)
	for _, c := range clusters {
		if c != nil {
			c.Quiesce() // replication settled before the measured phase
		}
	}

	// Mixed phase: every (node, program) pair, several rounds, 8-way
	// concurrent — on a fleet most first touches are peer fetches.
	const rounds = 5
	total := rounds * nodes * len(programs)
	best := fleetBench{Nodes: nodes, Replicas: replicas, BestOf: bestOf, Cold: summarize(cold, coldWall)}
	if nodes == 1 {
		best.Replicas = 0
	}
	for run := 0; run < bestOf; run++ {
		durations := make([]time.Duration, total)
		start := time.Now()
		var wg sync.WaitGroup
		var mu sync.Mutex
		var firstErr error
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < total; i += 8 {
					d, err := characterize(i%nodes, programs[(i/nodes)%len(programs)])
					if err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						return
					}
					durations[i] = d
				}
			}(w)
		}
		wg.Wait()
		if firstErr != nil {
			return fleetBench{}, firstErr
		}
		phase := summarize(durations, time.Since(start))
		if run == 0 || phase.ReqPerSec > best.Mixed.ReqPerSec {
			best.Mixed = phase
		}
	}

	best.ServeSources = map[string]uint64{}
	for i, sess := range sessions {
		st := sess.Stats()
		best.ServeSources["snapshot"] += st.ProfileHits
		best.ServeSources["replay"] += st.ReplayRuns
		best.ServeSources["peer"] += st.PeerHits
		best.ServeSources["cold"] += st.ColdChars
		best.ColdSimulations += st.ColdChars
		for v, n := range st.ReplayRunsByVersion {
			if best.ReplayByVersion == nil {
				best.ReplayByVersion = map[string]uint64{}
			}
			best.ReplayByVersion[v] += n
		}
		if clusters[i] != nil {
			best.PeerFetchHits += clusters[i].Stats().FetchHits
		}
	}
	return best, nil
}

func summarize(ds []time.Duration, wall time.Duration) benchPhase {
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	pct := func(p float64) float64 {
		i := int(p * float64(len(sorted)-1))
		return sorted[i].Seconds() * 1e3
	}
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	return benchPhase{
		Requests:  len(sorted),
		ReqPerSec: float64(len(sorted)) / wall.Seconds(),
		P50MS:     pct(0.50),
		P99MS:     pct(0.99),
		MeanMS:    sum.Seconds() * 1e3 / float64(len(sorted)),
	}
}
