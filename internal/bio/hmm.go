package bio

import (
	"bioperfload/internal/workload"
)

// The three HMMER programs (hmmsearch, hmmpfam, hmmcalibrate) share
// the Plan7 Viterbi inner loop that is the paper's centerpiece. The
// original row kernel below is the paper's Figure 6(a); the
// transformed kernel is Figure 6(c): the IF-condition loads are
// hoisted into temporaries, the three boxes hide each other's load
// latencies, and the loop is shortened by one iteration with the
// box-3-free tail duplicated after the exit.

// hmmNINF mirrors HMMER2's -INFTY score clamp.
const hmmNINF = -987654321

// Capacity limits for the MiniC globals (inputs are bound underneath).
const (
	hmmMaxM    = 64
	hmmMaxSeqs = 256
	hmmMaxLen  = 256
	hmmAl      = 20
)

// hmmDecls declares the model, sequence, and DP-row globals shared by
// the three drivers.
const hmmDecls = `
int M = 0;
int nseq = 0;
int thresh = 0;
int tnb = -20;
int tnn = -2;
int slen[256];
char seqs[65536];
int tpmm[64]; int tpim[64]; int tpdm[64];
int tpmi[64]; int tpii[64];
int tpdd[64]; int tpmd[64];
int mat[1280]; int insv[1280];
int bsc[64]; int esc[64];
int xm0[65]; int xi0[65]; int xd0[65];
int xm1[65]; int xi1[65]; int xd1[65];
int msr[65]; int isr[65];
`

// hmmVrowOriginal is the paper's Figure 6(a) loop, verbatim module
// pointer-parameter spelling (fast_algorithms.c's P7Viterbi core).
const hmmVrowOriginal = `
void vrow(int *mpp, int *ip, int *dpp, int *mc, int *dc, int *ic,
          int *tpmmv, int *tpimv, int *tpdmv, int *tpmiv, int *tpiiv,
          int *tpddv, int *tpmdv, int *bp, int *ms, int *is, int xmb, int m) {
	int k; int sc;
	for (k = 1; k <= m; k++) {
		mc[k] = mpp[k-1] + tpmmv[k-1];
		if ((sc = ip[k-1] + tpimv[k-1]) > mc[k]) mc[k] = sc;
		if ((sc = dpp[k-1] + tpdmv[k-1]) > mc[k]) mc[k] = sc;
		if ((sc = xmb + bp[k]) > mc[k]) mc[k] = sc;
		mc[k] += ms[k];
		if (mc[k] < -987654321) mc[k] = -987654321;

		dc[k] = dc[k-1] + tpddv[k-1];
		if ((sc = mc[k-1] + tpmdv[k-1]) > dc[k]) dc[k] = sc;
		if (dc[k] < -987654321) dc[k] = -987654321;

		if (k < m) {
			ic[k] = mpp[k] + tpmiv[k];
			if ((sc = ip[k] + tpiiv[k]) > ic[k]) ic[k] = sc;
			ic[k] += is[k];
			if (ic[k] < -987654321) ic[k] = -987654321;
		}
	}
}
`

// hmmVrowTransformed is the paper's Figure 6(c): all loads hoisted
// into temp1..temp8 at the top of the body (independent, so the
// out-of-order core overlaps their latencies), the guarded stores
// replaced by guarded register moves (which the compiler if-converts
// to CMOVs), and the final iteration peeled so box 3's guard
// disappears from the loop.
const hmmVrowTransformed = `
void vrow(int *mpp, int *ip, int *dpp, int *mc, int *dc, int *ic,
          int *tpmmv, int *tpimv, int *tpdmv, int *tpmiv, int *tpiiv,
          int *tpddv, int *tpmdv, int *bp, int *ms, int *is, int xmb, int m) {
	int k;
	int temp1; int temp2; int temp3; int temp4;
	int temp5; int temp6; int temp7; int temp8;
	for (k = 1; k <= m - 1; k++) {
		temp1 = mpp[k-1] + tpmmv[k-1];
		temp2 = ip[k-1] + tpimv[k-1];
		temp3 = dpp[k-1] + tpdmv[k-1];
		temp4 = xmb + bp[k];
		temp5 = dc[k-1] + tpddv[k-1];
		temp6 = mc[k-1] + tpmdv[k-1];
		temp7 = mpp[k] + tpmiv[k];
		temp8 = ip[k] + tpiiv[k];

		if (temp2 > temp1) temp1 = temp2;
		if (temp3 > temp1) temp1 = temp3;
		if (temp4 > temp1) temp1 = temp4;
		if (temp6 > temp5) temp5 = temp6;
		if (temp8 > temp7) temp7 = temp8;

		temp1 = ms[k] + temp1;
		if (temp1 < -987654321) temp1 = -987654321;
		mc[k] = temp1;

		if (temp5 < -987654321) temp5 = -987654321;
		dc[k] = temp5;

		temp7 = is[k] + temp7;
		if (temp7 < -987654321) temp7 = -987654321;
		ic[k] = temp7;
	}

	temp1 = mpp[m-1] + tpmmv[m-1];
	temp2 = ip[m-1] + tpimv[m-1];
	temp3 = dpp[m-1] + tpdmv[m-1];
	temp4 = xmb + bp[m];
	temp5 = dc[m-1] + tpddv[m-1];
	temp6 = mc[m-1] + tpmdv[m-1];
	if (temp2 > temp1) temp1 = temp2;
	if (temp3 > temp1) temp1 = temp3;
	if (temp4 > temp1) temp1 = temp4;
	if (temp6 > temp5) temp5 = temp6;
	temp1 = ms[m] + temp1;
	if (temp1 < -987654321) temp1 = -987654321;
	mc[m] = temp1;
	if (temp5 < -987654321) temp5 = -987654321;
	dc[m] = temp5;
}
`

// hmmScoreSeq drives vrow over one sequence, alternating the row
// buffers (MiniC has no pointer variables, so the swap happens at the
// call).
const hmmScoreSeq = `
int score_seq(int off, int len) {
	int i; int k; int best; int xmb; int xme; int t;
	best = -987654321;
	for (k = 0; k <= M; k++) {
		xm0[k] = -987654321; xi0[k] = -987654321; xd0[k] = -987654321;
		xm1[k] = -987654321; xi1[k] = -987654321; xd1[k] = -987654321;
	}
	for (i = 0; i < len; i++) {
		int res = seqs[off + i];
		for (k = 1; k <= M; k++) {
			msr[k] = mat[(k - 1) * 20 + res];
			isr[k] = insv[(k - 1) * 20 + res];
		}
		xmb = tnb + i * tnn;
		xme = -987654321;
		if (i % 2 == 0) {
			xm1[0] = -987654321; xi1[0] = -987654321; xd1[0] = -987654321;
			vrow(xm0, xi0, xd0, xm1, xd1, xi1,
			     tpmm, tpim, tpdm, tpmi, tpii, tpdd, tpmd,
			     bsc, msr, isr, xmb, M);
			for (k = 1; k <= M; k++) {
				t = xm1[k] + esc[k-1];
				if (t > xme) xme = t;
			}
		} else {
			xm0[0] = -987654321; xi0[0] = -987654321; xd0[0] = -987654321;
			vrow(xm1, xi1, xd1, xm0, xd0, xi0,
			     tpmm, tpim, tpdm, tpmi, tpii, tpdd, tpmd,
			     bsc, msr, isr, xmb, M);
			for (k = 1; k <= M; k++) {
				t = xm0[k] + esc[k-1];
				if (t > xme) xme = t;
			}
		}
		if (xme > best) best = xme;
	}
	return best;
}
`

// hmmInputs is one bound dataset.
type hmmInputs struct {
	h      *workload.HMM
	seqs   [][]byte
	thresh int64
}

// hmmSizes returns (M, nseq, L) per size for hmmsearch.
func hmmsearchDims(sz Size) (m, nseq, l int) {
	switch sz {
	case SizeTest:
		return 16, 4, 32
	case SizeB:
		return 40, 32, 120
	default:
		return 48, 200, 160
	}
}

func hmmsearchInputs(sz Size) *hmmInputs {
	m, nseq, l := hmmsearchDims(sz)
	r := workload.NewRNG(0xBEEF01)
	h := workload.NewHMM(r, m, hmmAl)
	cons := h.Consensus()
	seqs := make([][]byte, nseq)
	for i := range seqs {
		s := workload.ProteinSeq(r, l)
		if i%2 == 0 {
			// Half the database contains a noisy copy of the
			// model's consensus: these are the true hits.
			workload.PlantMotif(r, s, cons, r.Intn(maxInt(1, l-m)), hmmAl, 150)
		}
		seqs[i] = s
	}
	return &hmmInputs{h: h, seqs: seqs, thresh: int64(40 * m)}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// bindHMM writes the model and sequences into the machine.
func bindHMM(m Binder, in *hmmInputs) error {
	h := in.h
	steps := []struct {
		name string
		vals []int64
	}{
		{"tpmm", h.TPMM}, {"tpim", h.TPIM}, {"tpdm", h.TPDM},
		{"tpmi", h.TPMI}, {"tpii", h.TPII}, {"tpdd", h.TPDD},
		{"tpmd", h.TPMD}, {"mat", h.Mat}, {"insv", h.Ins},
		// bp is indexed 1..M in the paper's loop (HMMER's bsc is
		// 1-based), so shift it by one element.
		{"bsc", append([]int64{hmmNINF}, h.BSC...)},
		{"esc", h.ESC},
		{"M", []int64{int64(h.M)}},
		{"nseq", []int64{int64(len(in.seqs))}},
		{"thresh", []int64{in.thresh}},
	}
	for _, s := range steps {
		if err := m.WriteSymbolInt64s(s.name, s.vals); err != nil {
			return err
		}
	}
	lens := make([]int64, len(in.seqs))
	buf := make([]byte, len(in.seqs)*hmmMaxLen)
	for i, s := range in.seqs {
		lens[i] = int64(len(s))
		copy(buf[i*hmmMaxLen:], s)
	}
	if err := m.WriteSymbolInt64s("slen", lens); err != nil {
		return err
	}
	return m.WriteSymbol("seqs", buf)
}

// viterbiRef is the Go ground truth for the shared kernel, computing
// the identical arithmetic (including the -INFTY clamps and the xmb
// schedule).
func viterbiRef(h *workload.HMM, seq []byte, tnb, tnn int64) int64 {
	m := h.M
	mpp := make([]int64, m+1)
	ipp := make([]int64, m+1)
	dpp := make([]int64, m+1)
	mc := make([]int64, m+1)
	ic := make([]int64, m+1)
	dc := make([]int64, m+1)
	for k := 0; k <= m; k++ {
		mpp[k], ipp[k], dpp[k] = hmmNINF, hmmNINF, hmmNINF
	}
	best := int64(hmmNINF)
	for i, res := range seq {
		xmb := tnb + int64(i)*tnn
		mc[0], ic[0], dc[0] = hmmNINF, hmmNINF, hmmNINF
		for k := 1; k <= m; k++ {
			ms := h.Mat[(k-1)*h.A+int(res)]
			is := h.Ins[(k-1)*h.A+int(res)]
			v := mpp[k-1] + h.TPMM[k-1]
			if sc := ipp[k-1] + h.TPIM[k-1]; sc > v {
				v = sc
			}
			if sc := dpp[k-1] + h.TPDM[k-1]; sc > v {
				v = sc
			}
			if sc := xmb + h.BSC[k-1]; sc > v {
				v = sc
			}
			v += ms
			if v < hmmNINF {
				v = hmmNINF
			}
			mc[k] = v

			d := dc[k-1] + h.TPDD[k-1]
			if sc := mc[k-1] + h.TPMD[k-1]; sc > d {
				d = sc
			}
			if d < hmmNINF {
				d = hmmNINF
			}
			dc[k] = d

			if k < m {
				c := mpp[k] + h.TPMI[k-1+1]
				if sc := ipp[k] + h.TPII[k-1+1]; sc > c {
					c = sc
				}
				c += is
				if c < hmmNINF {
					c = hmmNINF
				}
				ic[k] = c
			}
		}
		xme := int64(hmmNINF)
		for k := 1; k <= m; k++ {
			if t := mc[k] + h.ESC[k-1]; t > xme {
				xme = t
			}
		}
		if xme > best {
			best = xme
		}
		mpp, mc = mc, mpp
		ipp, ic = ic, ipp
		dpp, dc = dc, dpp
	}
	return best
}

// Hmmsearch builds the hmmsearch program: one profile HMM searched
// against a sequence database, reporting the best score, the number
// of hits above threshold, and a checksum of all scores.
func Hmmsearch() *Program {
	driver := hmmDecls + hmmVrowOriginal + hmmScoreSeq + hmmsearchMain
	driverT := hmmDecls + hmmVrowTransformed + hmmScoreSeq + hmmsearchMain
	return &Program{
		Name:            "hmmsearch",
		Area:            "sequence analysis (profile HMM search)",
		Transformable:   true,
		LoadsConsidered: 19,
		LinesInvolved:   30,
		source:          driver,
		transformed:     driverT,
		Bind: func(m Binder, sz Size) error {
			return bindHMM(m, hmmsearchInputs(sz))
		},
		Reference: func(sz Size) Expected {
			in := hmmsearchInputs(sz)
			best, nhits, chk := int64(hmmNINF), int64(0), int64(0)
			for _, s := range in.seqs {
				sc := viterbiRef(in.h, s, -20, -2)
				if sc > best {
					best = sc
				}
				if sc > in.thresh {
					nhits++
				}
				chk += sc
			}
			return Expected{Ints: []int64{best, nhits, chk}}
		},
	}
}

const hmmsearchMain = `
int main() {
	int s; int sc;
	int best = -987654321;
	int nhits = 0;
	int chk = 0;
	for (s = 0; s < nseq; s++) {
		sc = score_seq(s * 256, slen[s]);
		if (sc > best) best = sc;
		if (sc > thresh) nhits = nhits + 1;
		chk = chk + sc;
	}
	print(best);
	print(nhits);
	print(chk);
	return 0;
}
`
