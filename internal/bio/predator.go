package bio

import (
	"bioperfload/internal/workload"
)

// predator predicts protein secondary structure. Our port has the two
// phases that give the real program its character: a floating-point
// propensity-window pass (predator is 13.85% FP in Table 1) and the
// integer aligned-pair scoring loop from prdfali.c whose load the
// paper hoists in Figure 8. The Figure 8(a)/(b) code appears verbatim
// below, modulo MiniC's index-chained lists replacing the z->NEXT
// pointer walk.

const predatorMaxN = 8192
const predatorMaxAlign = 256
const predatorMaxPairs = 2048

const predatorDecls = `
int N = 0;
int n_align = 0;
int npass = 0;
char seq[16384];
double ph[512]; double ps[512]; double pc2[512];
int struct_[16384];
int rowh[256];
int colz[2048]; int nxt[2048];
int va[256];
`

// predatorPropensity is the FP phase: window-summed propensities and
// an argmax classification per residue.
const predatorPropensity = `
int classify() {
	int i; int w; int res;
	int nh = 0; int ns = 0; int nc = 0;
	double eh; double es; double ec;
	for (i = 8; i < N - 8; i++) {
		eh = 0.0; es = 0.0; ec = 0.0;
		for (w = -8; w <= 8; w++) {
			res = seq[i + w];
			eh = eh + ph[res * 17 + w + 8];
			es = es + ps[res * 17 + w + 8];
			ec = ec + pc2[res * 17 + w + 8];
		}
		if (eh >= es) {
			if (eh >= ec) { struct_[i] = 2; nh = nh + 1; }
			else { struct_[i] = 0; nc = nc + 1; }
		} else {
			if (es >= ec) { struct_[i] = 1; ns = ns + 1; }
			else { struct_[i] = 0; nc = nc + 1; }
		}
	}
	print(nh);
	print(ns);
	print(nc);
	return nh * 3 + ns * 2 + nc;
}
`

// predatorAlignOriginal embeds the paper's Figure 8(a): the load of
// va[j] sits in the shadow of the hard-to-predict tt branch.
const predatorAlignOriginal = `
int align_pass(int n) {
	int i; int j; int c; int tt; int z;
	int ci = 0; int cj = 0; int pi = 0; int pj = 0;
	int k2; int m2; int total = 0;
	for (i = 0; i < n; i++) {
		for (j = 0; j < n; j++) {
			k2 = struct_[i] + 1;
			m2 = struct_[j] - 1;
			c = k2 * m2;
			tt = 1;
			for (z = rowh[i]; z != -1; z = nxt[z]) {
				if (colz[z] == j) { tt = 0; break; }
			}
			if (tt != 0)
				c = va[j];
			if (c <= 0) { c = 0; ci = i; cj = j; }
			else { ci = pi; cj = pj; }
			pi = ci; pj = cj;
			total = total + c + ci - cj;
			va[j] = (va[j] * 13 + i * 7 + j) % 1000 - 300;
		}
	}
	return total;
}
`

// predatorAlignTransformed is Figure 8(b): va[j] is hoisted above the
// list walk (the walk hides its latency) and the guard is inverted so
// the fixup is a register move.
const predatorAlignTransformed = `
int align_pass(int n) {
	int i; int j; int c; int tt; int z;
	int ci = 0; int cj = 0; int pi = 0; int pj = 0;
	int k2; int m2; int temp1; int total = 0;
	for (i = 0; i < n; i++) {
		for (j = 0; j < n; j++) {
			k2 = struct_[i] + 1;
			m2 = struct_[j] - 1;
			temp1 = k2 * m2;
			c = va[j];
			tt = 1;
			for (z = rowh[i]; z != -1; z = nxt[z]) {
				if (colz[z] == j) { tt = 0; break; }
			}
			if (tt == 0)
				c = temp1;
			if (c <= 0) { c = 0; ci = i; cj = j; }
			else { ci = pi; cj = pj; }
			pi = ci; pj = cj;
			total = total + c + ci - cj;
			va[j] = (va[j] * 13 + i * 7 + j) % 1000 - 300;
		}
	}
	return total;
}
`

const predatorMain = `
int main() {
	int chk = classify();
	int p2; int total = 0;
	for (p2 = 0; p2 < npass; p2++) {
		total = total + align_pass(n_align);
	}
	print(chk);
	print(total);
	return 0;
}
`

type predatorInputs struct {
	seq        []byte
	ph, ps, pc []float64
	rowh       []int64
	colz, nxt  []int64
	va         []int64
	nAlign     int
	npass      int
}

func predatorDims(sz Size) (n, nAlign, npass int) {
	switch sz {
	case SizeTest:
		return 80, 20, 2
	case SizeB:
		return 2600, 100, 5
	default:
		return 13000, 250, 10
	}
}

func predatorInputs2(sz Size) *predatorInputs {
	n, nAlign, npass := predatorDims(sz)
	r := workload.NewRNG(0x9BED47)
	in := &predatorInputs{
		seq:    workload.ProteinSeq(r, n),
		nAlign: nAlign,
		npass:  npass,
	}
	mk := func() []float64 {
		t := make([]float64, 20*17)
		for i := range t {
			t[i] = r.Float64()*2 - 1
		}
		return t
	}
	in.ph, in.ps, in.pc = mk(), mk(), mk()
	// Sparse pair lists: each row has 0-5 column entries.
	in.rowh = make([]int64, predatorMaxAlign)
	for i := range in.rowh {
		in.rowh[i] = -1
	}
	var pool int64
	for i := 0; i < nAlign; i++ {
		cnt := r.Intn(6)
		for k := 0; k < cnt && pool < predatorMaxPairs; k++ {
			in.colz = append(in.colz, int64(r.Intn(nAlign)))
			in.nxt = append(in.nxt, in.rowh[i])
			in.rowh[i] = pool
			pool++
		}
	}
	in.va = make([]int64, predatorMaxAlign)
	for i := range in.va {
		in.va[i] = int64(r.Intn(600) - 250)
	}
	return in
}

// predatorRef mirrors the two MiniC phases exactly.
func predatorRef(in *predatorInputs) Expected {
	n := len(in.seq)
	structv := make([]int64, n)
	var nh, ns, nc int64
	for i := 8; i < n-8; i++ {
		eh, es, ec := 0.0, 0.0, 0.0
		for w := -8; w <= 8; w++ {
			res := int(in.seq[i+w])
			eh = eh + in.ph[res*17+w+8]
			es = es + in.ps[res*17+w+8]
			ec = ec + in.pc[res*17+w+8]
		}
		if eh >= es {
			if eh >= ec {
				structv[i] = 2
				nh++
			} else {
				structv[i] = 0
				nc++
			}
		} else {
			if es >= ec {
				structv[i] = 1
				ns++
			} else {
				structv[i] = 0
				nc++
			}
		}
	}
	chk := nh*3 + ns*2 + nc

	va := append([]int64(nil), in.va...)
	var total int64
	var ci, cj, pi, pj int64
	for pass := 0; pass < in.npass; pass++ {
		for i := 0; i < in.nAlign; i++ {
			for j := 0; j < in.nAlign; j++ {
				k2 := structv[i] + 1
				m2 := structv[j] - 1
				c := k2 * m2
				tt := int64(1)
				for z := in.rowh[i]; z != -1; z = in.nxt[z] {
					if in.colz[z] == int64(j) {
						tt = 0
						break
					}
				}
				if tt != 0 {
					c = va[j]
				}
				if c <= 0 {
					c = 0
					ci, cj = int64(i), int64(j)
				} else {
					ci, cj = pi, pj
				}
				pi, pj = ci, cj
				total = total + c + ci - cj
				va[j] = (va[j]*13+int64(i)*7+int64(j))%1000 - 300
			}
		}
	}
	return Expected{Ints: []int64{nh, ns, nc, chk, total}}
}

// Predator builds the predator program.
func Predator() *Program {
	return &Program{
		Name:            "predator",
		Area:            "protein structure (secondary structure prediction)",
		Transformable:   true,
		LoadsConsidered: 1,
		LinesInvolved:   5,
		source:          predatorDecls + predatorPropensity + predatorAlignOriginal + predatorMain,
		transformed:     predatorDecls + predatorPropensity + predatorAlignTransformed + predatorMain,
		Bind: func(m Binder, sz Size) error {
			in := predatorInputs2(sz)
			if err := m.WriteSymbol("seq", in.seq); err != nil {
				return err
			}
			steps := []struct {
				name string
				vals []int64
			}{
				{"N", []int64{int64(len(in.seq))}},
				{"n_align", []int64{int64(in.nAlign)}},
				{"npass", []int64{int64(in.npass)}},
				{"rowh", in.rowh},
				{"colz", in.colz},
				{"nxt", in.nxt},
				{"va", in.va},
			}
			for _, st := range steps {
				if err := m.WriteSymbolInt64s(st.name, st.vals); err != nil {
					return err
				}
			}
			for _, fp := range []struct {
				name string
				vals []float64
			}{{"ph", in.ph}, {"ps", in.ps}, {"pc2", in.pc}} {
				if err := m.WriteSymbolFloat64s(fp.name, fp.vals); err != nil {
					return err
				}
			}
			return nil
		},
		Reference: func(sz Size) Expected {
			return predatorRef(predatorInputs2(sz))
		},
	}
}
