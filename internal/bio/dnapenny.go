package bio

import (
	"bioperfload/internal/workload"
)

// dnapenny searches for most-parsimonious phylogenies by
// branch-and-bound. Our port enumerates leaf assignments of eight taxa
// onto a fixed tree shape recursively, pruning with a cherry-distance
// bound, and scores candidates with Fitch parsimony over bitmask site
// states with an early-exit bound check — the loads of the site
// patterns feed the branchy set-intersection tests, the paper's
// load-to-branch pattern. The transformed variant (Table 6: 3 loads,
// 10 lines) hoists the child-state loads into temporaries and turns
// the intersection test into conditional moves.

const dnapennyMaxSites = 128

const dnapennyDecls = `
int nsites = 0;
char pat[8192];
int used[8];
int perm[8];
int best = 99999999;
int nevals = 0;
int npruned = 0;
int diffs[64];
int stv[15];
`

// dnapennyFitchOriginal: Fitch with guarded stores inside the node
// loop (the intersection-empty branch is data-dependent).
const dnapennyFitchOriginal = `
int fitch_cost(int bound) {
	int cost = 0;
	int s2; int l2; int n2; int a2; int b2; int u2;
	for (s2 = 0; s2 < nsites; s2++) {
		for (l2 = 0; l2 < 8; l2++) {
			stv[7 + l2] = pat[s2 * 8 + perm[l2]];
		}
		for (n2 = 6; n2 >= 0; n2--) {
			a2 = stv[2 * n2 + 1];
			b2 = stv[2 * n2 + 2];
			u2 = a2 & b2;
			if (u2 == 0) {
				cost = cost + 1;
				stv[n2] = a2 | b2;
			} else {
				stv[n2] = u2;
			}
		}
		if (cost >= bound) return cost;
	}
	return cost;
}
`

// dnapennyFitchTransformed: both candidate states and the incremented
// cost are computed unconditionally into temporaries; the guards
// become register selects (CMOVs), and the store is unconditional.
const dnapennyFitchTransformed = `
int fitch_cost(int bound) {
	int cost = 0;
	int s2; int l2; int n2; int a2; int b2; int u2;
	int temp1; int temp2;
	for (s2 = 0; s2 < nsites; s2++) {
		for (l2 = 0; l2 < 8; l2++) {
			stv[7 + l2] = pat[s2 * 8 + perm[l2]];
		}
		for (n2 = 6; n2 >= 0; n2--) {
			a2 = stv[2 * n2 + 1];
			b2 = stv[2 * n2 + 2];
			u2 = a2 & b2;
			temp1 = a2 | b2;
			temp2 = cost + 1;
			if (u2 != 0) temp1 = u2;
			if (u2 == 0) cost = temp2;
			stv[n2] = temp1;
		}
		if (cost >= bound) return cost;
	}
	return cost;
}
`

const dnapennyMain = `
void search(int depth, int partial) {
	int t2; int c2; int p2;
	if (depth == 8) {
		nevals = nevals + 1;
		c2 = fitch_cost(best);
		if (c2 < best) best = c2;
		return;
	}
	for (t2 = 0; t2 < 8; t2++) {
		if (used[t2]) continue;
		if (depth == 0) {
			if (t2 != 0) continue;
		}
		p2 = partial;
		if (depth % 2 == 1) {
			p2 = p2 + diffs[perm[depth-1] * 8 + t2];
		}
		if (p2 >= best) {
			npruned = npruned + 1;
			continue;
		}
		used[t2] = 1;
		perm[depth] = t2;
		search(depth + 1, p2);
		used[t2] = 0;
	}
}

int main() {
	int a; int b; int s2; int d;
	for (a = 0; a < 8; a++) {
		for (b = 0; b < 8; b++) {
			d = 0;
			for (s2 = 0; s2 < nsites; s2++) {
				if (pat[s2 * 8 + a] != pat[s2 * 8 + b]) d = d + 1;
			}
			diffs[a * 8 + b] = d;
		}
	}
	/* Seed the bound with the identity assignment (stepwise-addition
	   starting tree), as dnapenny does. */
	for (a = 0; a < 8; a++) perm[a] = a;
	best = fitch_cost(99999999);
	search(0, 0);
	print(best);
	print(nevals);
	print(npruned);
	return 0;
}
`

func dnapennyDims(sz Size) int {
	switch sz {
	case SizeTest:
		return 12
	case SizeB:
		return 48
	default:
		return 500
	}
}

func dnapennyPatterns(sz Size) []byte {
	nsites := dnapennyDims(sz)
	r := workload.NewRNG(0xD4A9E0)
	raw := workload.SitePatterns(r, 8, nsites)
	// Convert base indices 0..3 to Fitch bitmasks 1,2,4,8, stored
	// site-major to match pat[s*8+t].
	out := make([]byte, len(raw))
	for i, b := range raw {
		out[i] = 1 << b
	}
	return out
}

func dnapennyRef(sz Size) Expected {
	pat := dnapennyPatterns(sz)
	nsites := dnapennyDims(sz)
	var perm [8]int
	var used [8]bool
	best := int64(99999999)
	var nevals, npruned int64

	var diffs [64]int64
	for a := 0; a < 8; a++ {
		for b := 0; b < 8; b++ {
			var d int64
			for s := 0; s < nsites; s++ {
				if pat[s*8+a] != pat[s*8+b] {
					d++
				}
			}
			diffs[a*8+b] = d
		}
	}

	fitch := func(bound int64) int64 {
		var cost int64
		var stv [15]int64
		for s := 0; s < nsites; s++ {
			for l := 0; l < 8; l++ {
				stv[7+l] = int64(pat[s*8+perm[l]])
			}
			for n := 6; n >= 0; n-- {
				a2 := stv[2*n+1]
				b2 := stv[2*n+2]
				u := a2 & b2
				if u == 0 {
					cost++
					stv[n] = a2 | b2
				} else {
					stv[n] = u
				}
			}
			if cost >= bound {
				return cost
			}
		}
		return cost
	}

	for a := 0; a < 8; a++ {
		perm[a] = a
	}
	best = fitch(99999999)
	var search func(depth int, partial int64)
	search = func(depth int, partial int64) {
		if depth == 8 {
			nevals++
			if c := fitch(best); c < best {
				best = c
			}
			return
		}
		for t := 0; t < 8; t++ {
			if used[t] {
				continue
			}
			if depth == 0 && t != 0 {
				continue
			}
			p := partial
			if depth%2 == 1 {
				p += diffs[perm[depth-1]*8+t]
			}
			if p >= best {
				npruned++
				continue
			}
			used[t] = true
			perm[depth] = t
			search(depth+1, p)
			used[t] = false
		}
	}
	search(0, 0)
	return Expected{Ints: []int64{best, nevals, npruned}}
}

// Dnapenny builds the dnapenny program.
func Dnapenny() *Program {
	return &Program{
		Name:            "dnapenny",
		Area:            "molecular phylogeny (branch-and-bound parsimony)",
		Transformable:   true,
		LoadsConsidered: 3,
		LinesInvolved:   10,
		source:          dnapennyDecls + dnapennyFitchOriginal + dnapennyMain,
		transformed:     dnapennyDecls + dnapennyFitchTransformed + dnapennyMain,
		Bind: func(m Binder, sz Size) error {
			if err := m.WriteSymbolInt64s("nsites", []int64{int64(dnapennyDims(sz))}); err != nil {
				return err
			}
			return m.WriteSymbol("pat", dnapennyPatterns(sz))
		},
		Reference: dnapennyRef,
	}
}
