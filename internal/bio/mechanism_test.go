package bio

import (
	"testing"

	"bioperfload/internal/compiler"
	"bioperfload/internal/isa"
	"bioperfload/internal/pipeline"
	"bioperfload/internal/platform"
)

// countInFunc tallies instruction kinds within one compiled function.
func countInFunc(t *testing.T, prog *isa.Program, fn string) (loads, stores, branches, cmovs int) {
	t.Helper()
	for _, f := range prog.Funcs {
		if f.Name != fn {
			continue
		}
		for pc := f.Entry; pc < f.End; pc++ {
			op := prog.Insts[pc].Op
			switch {
			case isa.IsLoad(op):
				loads++
			case isa.IsStore(op):
				stores++
			case isa.IsCondBranch(op):
				branches++
			case isa.IsCmov(op):
				cmovs++
			}
		}
		return
	}
	t.Fatalf("function %s not found", fn)
	return
}

// hotFunc names each transformable program's transformed kernel.
var hotFunc = map[string]string{
	"hmmsearch":    "vrow",
	"hmmpfam":      "vrow",
	"hmmcalibrate": "vrow",
	"predator":     "align_pass",
	"dnapenny":     "fitch_cost",
	"clustalw":     "forward_pass",
}

// TestTransformedKernelsGainCmovs asserts the paper's mechanism for
// every transformed program: the load-transformed kernel contains
// conditional moves and strictly fewer conditional branches than the
// original kernel; the original kernel contains no CMOVs in its
// guarded-store regions beyond what if-conversion legitimately finds.
func TestTransformedKernelsGainCmovs(t *testing.T) {
	for _, p := range Transformed() {
		fn := hotFunc[p.Name]
		orig, err := p.Compile(false, compiler.Default())
		if err != nil {
			t.Fatal(err)
		}
		trans, err := p.Compile(true, compiler.Default())
		if err != nil {
			t.Fatal(err)
		}
		_, _, ob, oc := countInFunc(t, orig, fn)
		_, _, tb, tc := countInFunc(t, trans, fn)
		t.Logf("%s/%s: original %d branches %d cmovs; transformed %d branches %d cmovs",
			p.Name, fn, ob, oc, tb, tc)
		if tc <= oc {
			t.Errorf("%s: transformed kernel gained no CMOVs (%d -> %d)", p.Name, oc, tc)
		}
		if tb >= ob {
			t.Errorf("%s: transformed kernel did not lose branches (%d -> %d)", p.Name, ob, tb)
		}
	}
}

// TestTransformedSpeedupsOnAlpha runs every transformable program on
// the Alpha model at test size: the ones whose transformation the
// paper found effective must show a positive cycle gain (predator's
// single hoisted load is allowed to be neutral, as in the paper's
// smallest results).
func TestTransformedSpeedupsOnAlpha(t *testing.T) {
	if testing.Short() {
		t.Skip("timing")
	}
	plat := platform.Alpha21264()
	for _, p := range Transformed() {
		opts := compiler.Options{Opt: compiler.Default().Opt}
		run := func(tr bool) uint64 {
			model := pipeline.NewModel(plat.Pipeline)
			if _, err := p.Run(tr, SizeTest, opts, model); err != nil {
				t.Fatal(err)
			}
			return model.Stats().Cycles
		}
		o, tr := run(false), run(true)
		speedup := float64(o)/float64(tr) - 1
		t.Logf("%s: %.1f%%", p.Name, 100*speedup)
		if p.Name == "predator" {
			if speedup < -0.15 {
				t.Errorf("predator transformation regressed badly: %.1f%%", 100*speedup)
			}
			continue
		}
		if speedup <= 0 {
			t.Errorf("%s: transformation not profitable on Alpha (%.1f%%)", p.Name, 100*speedup)
		}
	}
}

// TestClassBValidation validates every program's simulated output at
// the class-B scale (the characterization inputs). Slow; skipped with
// -short.
func TestClassBValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("class-B runs")
	}
	for _, p := range All() {
		if _, err := p.Run(false, SizeB, compiler.Default()); err != nil {
			t.Errorf("%s original: %v", p.Name, err)
		}
		if p.Transformable {
			if _, err := p.Run(true, SizeB, compiler.Default()); err != nil {
				t.Errorf("%s transformed: %v", p.Name, err)
			}
		}
	}
}

// TestRestrictKeepsOutputsCorrect: the kernels never actually alias
// their pointer arguments... except hmmsearch's emission arrays are
// both global and parameter views. Compiling the BioPerf programs
// under RestrictParams must keep outputs identical (the restrict
// contract holds for these call sites).
func TestRestrictKeepsOutputsCorrect(t *testing.T) {
	for _, name := range []string{"hmmsearch", "clustalw", "predator"} {
		p, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		opts := compiler.Default()
		opts.Opt.RestrictParams = true
		if _, err := p.Run(false, SizeTest, opts); err != nil {
			t.Errorf("%s under restrict: %v", name, err)
		}
	}
}

// TestSourcesDiffer sanity-checks the registry: transformed sources
// differ from originals exactly for the six transformable programs.
func TestSourcesDiffer(t *testing.T) {
	for _, p := range All() {
		same := p.Source(false) == p.Source(true)
		if p.Transformable && same {
			t.Errorf("%s: transformed source identical to original", p.Name)
		}
		if !p.Transformable && !same {
			t.Errorf("%s: non-transformable program has a distinct transformed source", p.Name)
		}
	}
}

// TestAreaAndMetadata checks registry completeness.
func TestAreaAndMetadata(t *testing.T) {
	for _, p := range All() {
		if p.Area == "" {
			t.Errorf("%s: missing area", p.Name)
		}
		if p.Transformable && (p.LoadsConsidered == 0 || p.LinesInvolved == 0) {
			t.Errorf("%s: missing Table 6 metadata", p.Name)
		}
		if p.Bind == nil || p.Reference == nil {
			t.Errorf("%s: missing Bind/Reference", p.Name)
		}
	}
	if _, err := ByName("nonexistent"); err == nil {
		t.Error("ByName should reject unknown programs")
	}
}
