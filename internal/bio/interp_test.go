package bio

import (
	"math"
	"testing"

	"bioperfload/internal/minic"
)

// TestInterpreterAgreesWithReference runs every BioPerf program's
// MiniC sources (original and transformed) through the AST
// interpreter and compares the output with the pure-Go reference.
// Together with TestProgramsValidate (compiled + simulated vs the
// same reference) this gives three independent implementations of
// each kernel that must agree.
func TestInterpreterAgreesWithReference(t *testing.T) {
	for _, p := range All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			variants := []bool{false}
			if p.Transformable {
				variants = append(variants, true)
			}
			want := p.Reference(SizeTest)
			for _, transformed := range variants {
				f, err := minic.Parse(p.Name+".mc", p.Source(transformed))
				if err != nil {
					t.Fatal(err)
				}
				info, err := minic.Check(f)
				if err != nil {
					t.Fatal(err)
				}
				in := minic.NewInterp(f, info)
				if err := p.Bind(in, SizeTest); err != nil {
					t.Fatal(err)
				}
				if _, err := in.Run(); err != nil {
					t.Fatalf("transformed=%v: %v", transformed, err)
				}
				if len(in.IntOutput) != len(want.Ints) {
					t.Fatalf("transformed=%v: %d int outputs, want %d (%v vs %v)",
						transformed, len(in.IntOutput), len(want.Ints), in.IntOutput, want.Ints)
				}
				for i := range want.Ints {
					if in.IntOutput[i] != want.Ints[i] {
						t.Fatalf("transformed=%v: int[%d] = %d, want %d",
							transformed, i, in.IntOutput[i], want.Ints[i])
					}
				}
				if len(in.FPOutput) != len(want.Floats) {
					t.Fatalf("transformed=%v: %d fp outputs, want %d",
						transformed, len(in.FPOutput), len(want.Floats))
				}
				for i := range want.Floats {
					if math.Abs(in.FPOutput[i]-want.Floats[i]) > 1e-9*(1+math.Abs(want.Floats[i])) {
						t.Fatalf("transformed=%v: fp[%d] = %v, want %v",
							transformed, i, in.FPOutput[i], want.Floats[i])
					}
				}
			}
		})
	}
}
