package bio

import (
	"bioperfload/internal/workload"
)

// clustalw performs progressive multiple sequence alignment. The hot
// code is the affine-gap forward pass (Gotoh recurrence) run over all
// sequence pairs, whose short IF statements load row arrays through
// pointers — the pattern the paper transforms (Table 6: 4 loads, 10
// lines of C). Both variants below compute identical results.

const clustalwMaxSeqs = 16
const clustalwMaxLen = 256

const clustalwDecls = `
int nseq2 = 0;
int go2 = 10;
int ge2 = 1;
int lens[16];
char sq[4096];
int smat[400];
int hh[257];
int ff[257];
int pairsc[256];
`

// clustalwForwardOriginal: the IF conditions load hh/ff through
// pointer parameters and their THEN clauses store, so neither load
// hoisting nor if-conversion is possible for the compiler.
const clustalwForwardOriginal = `
int forward_pass(int *hh2, int *ff2, char *s2, int *sm,
                 int offa, int la, int offb, int lb, int gop, int gep) {
	int i; int j; int t; int e2; int prev; int best; int ai;
	for (j = 0; j <= lb; j++) { hh2[j] = 0; ff2[j] = -10000; }
	best = 0;
	for (i = 1; i <= la; i++) {
		ai = s2[offa + i - 1];
		prev = hh2[0];
		hh2[0] = 0;
		e2 = -10000;
		for (j = 1; j <= lb; j++) {
			e2 = e2 - gep;
			if ((t = hh2[j-1] - gop) > e2) e2 = t;
			ff2[j] = ff2[j] - gep;
			if ((t = hh2[j] - gop) > ff2[j]) ff2[j] = t;
			t = prev + sm[ai * 20 + s2[offb + j - 1]];
			if (e2 > t) t = e2;
			if (ff2[j] > t) t = ff2[j];
			if (t < 0) t = 0;
			prev = hh2[j];
			hh2[j] = t;
			if (t > best) best = t;
		}
	}
	return best;
}
`

// clustalwForwardTransformed hoists the four loads of the recurrence
// into temporaries at the top of the body; the guarded updates become
// register moves the compiler if-converts.
const clustalwForwardTransformed = `
int forward_pass(int *hh2, int *ff2, char *s2, int *sm,
                 int offa, int la, int offb, int lb, int gop, int gep) {
	int i; int j; int t; int e2; int prev; int best; int ai;
	int temp1; int temp2; int temp3; int temp4;
	for (j = 0; j <= lb; j++) { hh2[j] = 0; ff2[j] = -10000; }
	best = 0;
	for (i = 1; i <= la; i++) {
		ai = s2[offa + i - 1];
		prev = hh2[0];
		hh2[0] = 0;
		e2 = -10000;
		for (j = 1; j <= lb; j++) {
			temp1 = hh2[j-1] - gop;
			temp2 = ff2[j] - gep;
			temp3 = hh2[j] - gop;
			temp4 = prev + sm[ai * 20 + s2[offb + j - 1]];
			e2 = e2 - gep;
			if (temp1 > e2) e2 = temp1;
			if (temp3 > temp2) temp2 = temp3;
			ff2[j] = temp2;
			t = temp4;
			if (e2 > t) t = e2;
			if (temp2 > t) t = temp2;
			if (t < 0) t = 0;
			prev = hh2[j];
			hh2[j] = t;
			if (t > best) best = t;
		}
	}
	return best;
}
`

const clustalwMain = `
int main() {
	int a; int b; int np = 0; int total = 0; int best = 0; int sc;
	for (a = 0; a < nseq2; a++) {
		for (b = a + 1; b < nseq2; b++) {
			sc = forward_pass(hh, ff, sq, smat,
			                  a * 256, lens[a], b * 256, lens[b], go2, ge2);
			pairsc[np] = sc;
			np = np + 1;
			total = total + sc;
			if (sc > best) best = sc;
		}
	}
	/* Guide-tree order: selection sort of pair scores (descending),
	   checksummed, standing in for the neighbor-joining stage. */
	int i2; int j2; int m2; int tmp;
	for (i2 = 0; i2 < np; i2++) {
		m2 = i2;
		for (j2 = i2 + 1; j2 < np; j2++) {
			if (pairsc[j2] > pairsc[m2]) m2 = j2;
		}
		tmp = pairsc[i2]; pairsc[i2] = pairsc[m2]; pairsc[m2] = tmp;
	}
	int chk = 0;
	for (i2 = 0; i2 < np; i2++) chk = chk * 31 + pairsc[i2] % 1000;
	/* Progressive stage: re-align everything against the first
	   sequence (profile stand-in). */
	int prog = 0;
	for (a = 1; a < nseq2; a++) {
		prog = prog + forward_pass(hh, ff, sq, smat,
		                           0, lens[0], a * 256, lens[a], go2, ge2);
	}
	print(total);
	print(best);
	print(chk);
	print(prog);
	return 0;
}
`

type clustalwInputs struct {
	seqs [][]byte
	smat []int64
}

func clustalwDims(sz Size) (nseq, l int) {
	switch sz {
	case SizeTest:
		return 3, 24
	case SizeB:
		return 8, 110
	default:
		return 12, 234
	}
}

func clustalwInputs2(sz Size) *clustalwInputs {
	nseq, l := clustalwDims(sz)
	r := workload.NewRNG(0xC1057A)
	in := &clustalwInputs{smat: workload.SubstMatrix(r, 20, 5, -2)}
	base := workload.ProteinSeq(r, l)
	for i := 0; i < nseq; i++ {
		// Related sequences: mutated copies of a common ancestor,
		// which is what clustalw aligns in practice.
		s := workload.MutatedCopy(r, base, 20, 200, 30)
		if len(s) > l {
			s = s[:l]
		}
		in.seqs = append(in.seqs, s)
	}
	return in
}

func clustalwRef(in *clustalwInputs) Expected {
	gop, gep := int64(10), int64(1)
	forward := func(a, b []byte) int64 {
		la, lb := len(a), len(b)
		hh := make([]int64, lb+1)
		ff := make([]int64, lb+1)
		for j := 0; j <= lb; j++ {
			hh[j] = 0
			ff[j] = -10000
		}
		best := int64(0)
		for i := 1; i <= la; i++ {
			ai := int64(a[i-1])
			prev := hh[0]
			hh[0] = 0
			e2 := int64(-10000)
			for j := 1; j <= lb; j++ {
				e2 = e2 - gep
				if t := hh[j-1] - gop; t > e2 {
					e2 = t
				}
				ff[j] = ff[j] - gep
				if t := hh[j] - gop; t > ff[j] {
					ff[j] = t
				}
				t := prev + in.smat[ai*20+int64(b[j-1])]
				if e2 > t {
					t = e2
				}
				if ff[j] > t {
					t = ff[j]
				}
				if t < 0 {
					t = 0
				}
				prev = hh[j]
				hh[j] = t
				if t > best {
					best = t
				}
			}
		}
		return best
	}
	var pairsc []int64
	var total, best int64
	for a := 0; a < len(in.seqs); a++ {
		for b := a + 1; b < len(in.seqs); b++ {
			sc := forward(in.seqs[a], in.seqs[b])
			pairsc = append(pairsc, sc)
			total += sc
			if sc > best {
				best = sc
			}
		}
	}
	for i := 0; i < len(pairsc); i++ {
		m := i
		for j := i + 1; j < len(pairsc); j++ {
			if pairsc[j] > pairsc[m] {
				m = j
			}
		}
		pairsc[i], pairsc[m] = pairsc[m], pairsc[i]
	}
	var chk int64
	for _, v := range pairsc {
		chk = chk*31 + v%1000
	}
	var prog int64
	for a := 1; a < len(in.seqs); a++ {
		prog += forward(in.seqs[0], in.seqs[a])
	}
	return Expected{Ints: []int64{total, best, chk, prog}}
}

// Clustalw builds the clustalw program.
func Clustalw() *Program {
	return &Program{
		Name:            "clustalw",
		Area:            "sequence analysis (progressive multiple alignment)",
		Transformable:   true,
		LoadsConsidered: 4,
		LinesInvolved:   10,
		source:          clustalwDecls + clustalwForwardOriginal + clustalwMain,
		transformed:     clustalwDecls + clustalwForwardTransformed + clustalwMain,
		Bind: func(m Binder, sz Size) error {
			in := clustalwInputs2(sz)
			if err := m.WriteSymbolInt64s("nseq2", []int64{int64(len(in.seqs))}); err != nil {
				return err
			}
			lens := make([]int64, len(in.seqs))
			buf := make([]byte, len(in.seqs)*clustalwMaxLen)
			for i, s := range in.seqs {
				lens[i] = int64(len(s))
				copy(buf[i*clustalwMaxLen:], s)
			}
			if err := m.WriteSymbolInt64s("lens", lens); err != nil {
				return err
			}
			if err := m.WriteSymbol("sq", buf); err != nil {
				return err
			}
			return m.WriteSymbolInt64s("smat", in.smat)
		},
		Reference: func(sz Size) Expected {
			return clustalwRef(clustalwInputs2(sz))
		},
	}
}
