package bio

import (
	"testing"

	"bioperfload/internal/compiler"
	"bioperfload/internal/ir"
)

// implemented returns the programs that are already ported (stubs
// panic); once all nine exist this is All().
func implemented() []*Program { return All() }

// TestProgramsValidate runs every program at test size, original and
// (where available) transformed, across compiler configurations, and
// checks the output against the Go reference.
func TestProgramsValidate(t *testing.T) {
	for _, p := range implemented() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			configs := []compiler.Options{
				{Opt: ir.O2()},
				{Opt: ir.O0()},
				{Opt: ir.O2(), AllocIntRegs: 8, AllocFPRegs: 8},
				{Opt: ir.O2(), AllocIntRegs: 48, AllocFPRegs: 48},
			}
			for ci, opts := range configs {
				if _, err := p.Run(false, SizeTest, opts); err != nil {
					t.Errorf("config %d original: %v", ci, err)
				}
				if p.Transformable {
					if _, err := p.Run(true, SizeTest, opts); err != nil {
						t.Errorf("config %d transformed: %v", ci, err)
					}
				}
			}
		})
	}
}
