// Package bio contains the nine BioPerf benchmark programs the paper
// studies, re-implemented twice each: a pure-Go reference (the ground
// truth the simulated runs are validated against) and MiniC sources
// compiled onto the simulated machine. The six programs the paper
// load-transforms (Section 3.3, Table 6) additionally carry a
// transformed MiniC source whose hot loops apply the paper's
// source-level load scheduling — hmmsearch and hmmcalibrate use the
// paper's Figure 6(c) code verbatim, predator uses Figure 8(b), and
// dnapenny/hmmpfam/clustalw follow the same recipe on their own hot
// loops.
package bio

import (
	"fmt"
	"math"

	"bioperfload/internal/compiler"
	"bioperfload/internal/isa"
	"bioperfload/internal/sim"
)

// Size selects the input scale. The paper profiles with class-B and
// times with class-C inputs; our sizes are scaled-down equivalents
// (millions rather than billions of dynamic instructions), applied
// identically to original and transformed code.
type Size int

// Input sizes.
const (
	// SizeTest is for unit tests (well under a million instructions).
	SizeTest Size = iota
	// SizeB is the characterization input (class-B analog).
	SizeB
	// SizeC is the timing input (class-C analog).
	SizeC
)

func (s Size) String() string {
	switch s {
	case SizeTest:
		return "test"
	case SizeB:
		return "classB"
	default:
		return "classC"
	}
}

// Binder receives a program's input dataset. Both the functional
// simulator's machine and the MiniC AST interpreter implement it, so
// the same Bind function can feed either execution engine.
type Binder interface {
	WriteSymbolInt64s(name string, vals []int64) error
	WriteSymbolFloat64s(name string, vals []float64) error
	WriteSymbol(name string, b []byte) error
}

// Expected is a program's reference output, computed in Go.
type Expected struct {
	Ints   []int64
	Floats []float64
}

// Program describes one BioPerf application.
type Program struct {
	Name string
	// Area is the bioinformatics domain (sequence analysis,
	// molecular phylogeny, protein structure — Section 2).
	Area string
	// Transformable marks the six applications amenable to
	// source-level load scheduling (Section 3.3).
	Transformable bool
	// LoadsConsidered and LinesInvolved reproduce Table 6.
	LoadsConsidered int
	LinesInvolved   int

	// Source holds the MiniC code: Source[false] original,
	// Source[true] load-transformed (empty if !Transformable).
	source      string
	transformed string

	// Bind injects the input dataset for the given size into an
	// execution engine's global symbols.
	Bind func(m Binder, sz Size) error
	// Reference computes the expected printed output in Go.
	Reference func(sz Size) Expected
}

// Source returns the MiniC source; transformed selects the
// load-scheduled variant.
func (p *Program) Source(transformed bool) string {
	if transformed {
		if !p.Transformable {
			return p.source
		}
		return p.transformed
	}
	return p.source
}

// Compile builds the program with the given compiler options.
func (p *Program) Compile(transformed bool, opts compiler.Options) (*isa.Program, error) {
	suffix := ""
	if transformed && p.Transformable {
		suffix = "-lt" // load-transformed
	}
	return compiler.Compile(p.Name+suffix+".mc", p.Source(transformed), opts)
}

// Run compiles, binds inputs, executes, and validates the output
// against the Go reference. Observers are attached before execution.
func (p *Program) Run(transformed bool, sz Size, opts compiler.Options, obs ...sim.Observer) (*sim.Result, error) {
	prog, err := p.Compile(transformed, opts)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", p.Name, err)
	}
	m, err := sim.New(prog)
	if err != nil {
		return nil, err
	}
	if err := p.Bind(m, sz); err != nil {
		return nil, fmt.Errorf("%s: bind: %w", p.Name, err)
	}
	for _, o := range obs {
		m.AddObserver(o)
	}
	res, err := m.Run()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", p.Name, err)
	}
	if err := p.Validate(res, sz); err != nil {
		return nil, err
	}
	return res, nil
}

// Validate compares simulated output with the Go reference.
func (p *Program) Validate(res *sim.Result, sz Size) error {
	want := p.Reference(sz)
	if len(res.IntOutput) != len(want.Ints) {
		return fmt.Errorf("%s/%s: %d int outputs, want %d (%v vs %v)",
			p.Name, sz, len(res.IntOutput), len(want.Ints), res.IntOutput, want.Ints)
	}
	for i := range want.Ints {
		if res.IntOutput[i] != want.Ints[i] {
			return fmt.Errorf("%s/%s: int[%d] = %d, want %d",
				p.Name, sz, i, res.IntOutput[i], want.Ints[i])
		}
	}
	if len(res.FPOutput) != len(want.Floats) {
		return fmt.Errorf("%s/%s: %d fp outputs, want %d",
			p.Name, sz, len(res.FPOutput), len(want.Floats))
	}
	for i := range want.Floats {
		got, exp := res.FPOutput[i], want.Floats[i]
		if math.Abs(got-exp) > 1e-9*(1+math.Abs(exp)) {
			return fmt.Errorf("%s/%s: fp[%d] = %v, want %v", p.Name, sz, i, got, exp)
		}
	}
	return nil
}

// All returns the nine programs in the paper's order (Table 1).
func All() []*Program {
	return []*Program{
		Blast(), Clustalw(), Dnapenny(), Fasta(),
		Hmmcalibrate(), Hmmpfam(), Hmmsearch(),
		Predator(), Promlk(),
	}
}

// ByName returns the named program.
func ByName(name string) (*Program, error) {
	for _, p := range All() {
		if p.Name == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("bio: unknown program %q", name)
}

// Transformed returns the six programs the paper load-transforms.
func Transformed() []*Program {
	var out []*Program
	for _, p := range All() {
		if p.Transformable {
			out = append(out, p)
		}
	}
	return out
}
