package bio

import (
	"bioperfload/internal/workload"
)

// hmmpfam and hmmcalibrate reuse the shared Viterbi row kernel from
// hmm.go with different drivers: hmmpfam scores a few sequences
// against a library of models (plus a floating-point statistics pass,
// which is where its Table 1 FP fraction comes from); hmmcalibrate
// generates random sequences on the simulated machine itself and fits
// an extreme-value distribution to the scores.

const hmmMaxModels = 8

// hmmpfamDecls adds the model-library storage.
const hmmpfamDecls = `
int nmod = 0;
int mlen[8];
int all_tpmm[512]; int all_tpim[512]; int all_tpdm[512];
int all_tpmi[512]; int all_tpii[512];
int all_tpdd[512]; int all_tpmd[512];
int all_mat[10240]; int all_insv[10240];
int all_bsc[512]; int all_esc[512];
`

const hmmpfamMain = `
double expx(double x) {
	if (x < -30.0) return 0.0;
	if (x > 30.0) x = 30.0;
	double term = 1.0;
	double sum2 = 1.0;
	int n;
	for (n = 1; n <= 18; n++) {
		term = term * x / (double)n;
		sum2 = sum2 + term;
	}
	return sum2;
}

int main() {
	int md; int s; int k; int sc;
	int best = -987654321;
	int nhits = 0;
	int chk = 0;
	double facc = 0.0;
	for (md = 0; md < nmod; md++) {
		M = mlen[md];
		for (k = 0; k < M; k++) {
			tpmm[k] = all_tpmm[md*64 + k];
			tpim[k] = all_tpim[md*64 + k];
			tpdm[k] = all_tpdm[md*64 + k];
			tpmi[k] = all_tpmi[md*64 + k];
			tpii[k] = all_tpii[md*64 + k];
			tpdd[k] = all_tpdd[md*64 + k];
			tpmd[k] = all_tpmd[md*64 + k];
			bsc[k+1] = all_bsc[md*64 + k];
			esc[k] = all_esc[md*64 + k];
		}
		for (k = 0; k < M*20; k++) {
			mat[k] = all_mat[md*1280 + k];
			insv[k] = all_insv[md*1280 + k];
		}
		for (s = 0; s < nseq; s++) {
			sc = score_seq(s * 256, slen[s]);
			chk = chk + sc;
			if (sc > best) best = sc;

			/* Forward-lite statistics pass (floating point): a
			   damped accumulation over the emission scores, like
			   hmmpfam's trace-score correction. */
			double acc = 0.0;
			int i2; int kk;
			for (i2 = 0; i2 < slen[s]; i2++) {
				int res2 = seqs[s*256 + i2];
				for (kk = 1; kk <= M; kk += 2) {
					acc = acc * 0.999 + (double)mat[(kk-1)*20 + res2];
				}
			}
			double bits = ((double)sc + acc * 0.001) / 100.0;
			double ev = (double)nmod * expx(0.0 - 0.6931 * bits);
			if (ev < 0.01) nhits = nhits + 1;
			facc = facc + bits;
		}
	}
	print(best);
	print(nhits);
	print(chk);
	print(facc);
	return 0;
}
`

type hmmpfamInputs struct {
	models []*workload.HMM
	seqs   [][]byte
}

func hmmpfamDims(sz Size) (nmod, baseM, nseq, l int) {
	switch sz {
	case SizeTest:
		return 2, 14, 2, 32
	case SizeB:
		return 6, 36, 3, 100
	default:
		return 8, 44, 15, 128
	}
}

func hmmpfamInputs2(sz Size) *hmmpfamInputs {
	nmod, baseM, nseq, l := hmmpfamDims(sz)
	r := workload.NewRNG(0xFA4701)
	in := &hmmpfamInputs{}
	for i := 0; i < nmod; i++ {
		in.models = append(in.models, workload.NewHMM(r, baseM+(i%3)*2, hmmAl))
	}
	for i := 0; i < nseq; i++ {
		s := workload.ProteinSeq(r, l)
		// Each sequence contains the consensus of one model.
		m := in.models[i%nmod]
		workload.PlantMotif(r, s, m.Consensus(), r.Intn(maxInt(1, l-m.M)), hmmAl, 120)
		in.seqs = append(in.seqs, s)
	}
	return in
}

// expxRef mirrors the MiniC series exactly.
func expxRef(x float64) float64 {
	if x < -30.0 {
		return 0.0
	}
	if x > 30.0 {
		x = 30.0
	}
	term, sum2 := 1.0, 1.0
	for n := 1; n <= 18; n++ {
		term = term * x / float64(n)
		sum2 = sum2 + term
	}
	return sum2
}

// Hmmpfam builds the hmmpfam program: a model library searched with a
// few query sequences.
func Hmmpfam() *Program {
	decls := hmmDecls + hmmpfamDecls
	return &Program{
		Name:            "hmmpfam",
		Area:            "sequence analysis (profile HMM library search)",
		Transformable:   true,
		LoadsConsidered: 16,
		LinesInvolved:   25,
		source:          decls + hmmVrowOriginal + hmmScoreSeq + hmmpfamMain,
		transformed:     decls + hmmVrowTransformed + hmmScoreSeq + hmmpfamMain,
		Bind: func(m Binder, sz Size) error {
			in := hmmpfamInputs2(sz)
			nmod := len(in.models)
			pack := func(get func(h *workload.HMM) []int64, stride int) []int64 {
				out := make([]int64, nmod*stride)
				for i, h := range in.models {
					copy(out[i*stride:], get(h))
				}
				return out
			}
			steps := []struct {
				name string
				vals []int64
			}{
				{"nmod", []int64{int64(nmod)}},
				{"nseq", []int64{int64(len(in.seqs))}},
				{"all_tpmm", pack(func(h *workload.HMM) []int64 { return h.TPMM }, 64)},
				{"all_tpim", pack(func(h *workload.HMM) []int64 { return h.TPIM }, 64)},
				{"all_tpdm", pack(func(h *workload.HMM) []int64 { return h.TPDM }, 64)},
				{"all_tpmi", pack(func(h *workload.HMM) []int64 { return h.TPMI }, 64)},
				{"all_tpii", pack(func(h *workload.HMM) []int64 { return h.TPII }, 64)},
				{"all_tpdd", pack(func(h *workload.HMM) []int64 { return h.TPDD }, 64)},
				{"all_tpmd", pack(func(h *workload.HMM) []int64 { return h.TPMD }, 64)},
				{"all_bsc", pack(func(h *workload.HMM) []int64 { return h.BSC }, 64)},
				{"all_esc", pack(func(h *workload.HMM) []int64 { return h.ESC }, 64)},
				{"all_mat", pack(func(h *workload.HMM) []int64 { return h.Mat }, 1280)},
				{"all_insv", pack(func(h *workload.HMM) []int64 { return h.Ins }, 1280)},
			}
			for _, st := range steps {
				if err := m.WriteSymbolInt64s(st.name, st.vals); err != nil {
					return err
				}
			}
			mlens := make([]int64, nmod)
			for i, h := range in.models {
				mlens[i] = int64(h.M)
			}
			if err := m.WriteSymbolInt64s("mlen", mlens); err != nil {
				return err
			}
			lens := make([]int64, len(in.seqs))
			buf := make([]byte, len(in.seqs)*hmmMaxLen)
			for i, s := range in.seqs {
				lens[i] = int64(len(s))
				copy(buf[i*hmmMaxLen:], s)
			}
			if err := m.WriteSymbolInt64s("slen", lens); err != nil {
				return err
			}
			return m.WriteSymbol("seqs", buf)
		},
		Reference: func(sz Size) Expected {
			in := hmmpfamInputs2(sz)
			best, nhits, chk := int64(hmmNINF), int64(0), int64(0)
			facc := 0.0
			for _, h := range in.models {
				for _, s := range in.seqs {
					sc := viterbiRef(h, s, -20, -2)
					chk += sc
					if sc > best {
						best = sc
					}
					acc := 0.0
					for _, res := range s {
						for kk := 1; kk <= h.M; kk += 2 {
							acc = acc*0.999 + float64(h.Mat[(kk-1)*hmmAl+int(res)])
						}
					}
					bits := (float64(sc) + acc*0.001) / 100.0
					ev := float64(len(in.models)) * expxRef(0.0-0.6931*bits)
					if ev < 0.01 {
						nhits++
					}
					facc += bits
				}
			}
			return Expected{Ints: []int64{best, nhits, chk}, Floats: []float64{facc}}
		},
	}
}

// --- hmmcalibrate ---

const hmmcalibrateMain = `
int scores[512];

double msqrt(double x) {
	if (x <= 0.0) return 0.0;
	double g = x;
	if (g > 1.0) g = x / 2.0;
	if (g < 1.0) g = 1.0;
	int it;
	for (it = 0; it < 30; it++) g = 0.5 * (g + x / g);
	return g;
}

int main() {
	int s; int i; int sc;
	int seed = 987643;
	int sum = 0;
	int best = -987654321;
	int len = slen[0];
	for (s = 0; s < nseq; s++) {
		for (i = 0; i < len; i++) {
			seed = seed * 6364136223846793005 + 1442695040888963407;
			seqs[i] = ((seed >> 33) & 65535) % 20;
		}
		sc = score_seq(0, len);
		scores[s] = sc;
		sum = sum + sc;
		if (sc > best) best = sc;
	}
	double mean = (double)sum / (double)nseq;
	double varsum = 0.0;
	for (s = 0; s < nseq; s++) {
		double d = (double)scores[s] - mean;
		varsum = varsum + d * d;
	}
	double variance = varsum / (double)nseq;
	double sd = msqrt(variance);
	double lambda = 1.28255 / sd;
	double mu = mean - 0.57722 / lambda;
	print(best);
	print(sum);
	print(mu);
	print(lambda);
	return 0;
}
`

func hmmcalibrateDims(sz Size) (m, nsample, l int) {
	switch sz {
	case SizeTest:
		return 16, 5, 32
	case SizeB:
		return 40, 36, 110
	default:
		return 48, 220, 150
	}
}

func hmmcalibrateInputs(sz Size) (*workload.HMM, int, int) {
	m, nsample, l := hmmcalibrateDims(sz)
	r := workload.NewRNG(0xCA11B4)
	return workload.NewHMM(r, m, hmmAl), nsample, l
}

// msqrtRef mirrors the MiniC Newton iteration exactly.
func msqrtRef(x float64) float64 {
	if x <= 0.0 {
		return 0.0
	}
	g := x
	if g > 1.0 {
		g = x / 2.0
	}
	if g < 1.0 {
		g = 1.0
	}
	for it := 0; it < 30; it++ {
		g = 0.5 * (g + x/g)
	}
	return g
}

// Hmmcalibrate builds the hmmcalibrate program: score random
// sequences against the model and fit an EVD.
func Hmmcalibrate() *Program {
	return &Program{
		Name:            "hmmcalibrate",
		Area:            "sequence analysis (HMM score calibration)",
		Transformable:   true,
		LoadsConsidered: 14,
		LinesInvolved:   25,
		source:          hmmDecls + hmmVrowOriginal + hmmScoreSeq + hmmcalibrateMain,
		transformed:     hmmDecls + hmmVrowTransformed + hmmScoreSeq + hmmcalibrateMain,
		Bind: func(m Binder, sz Size) error {
			h, nsample, l := hmmcalibrateInputs(sz)
			if err := bindHMM(m, &hmmInputs{h: h, seqs: nil}); err != nil {
				return err
			}
			if err := m.WriteSymbolInt64s("nseq", []int64{int64(nsample)}); err != nil {
				return err
			}
			return m.WriteSymbolInt64s("slen", []int64{int64(l)})
		},
		Reference: func(sz Size) Expected {
			h, nsample, l := hmmcalibrateInputs(sz)
			seed := int64(987643)
			seq := make([]byte, l)
			scores := make([]int64, nsample)
			sum, best := int64(0), int64(hmmNINF)
			for s := 0; s < nsample; s++ {
				for i := 0; i < l; i++ {
					seed = seed*6364136223846793005 + 1442695040888963407
					seq[i] = byte(((seed >> 33) & 65535) % 20)
				}
				sc := viterbiRef(h, seq, -20, -2)
				scores[s] = sc
				sum += sc
				if sc > best {
					best = sc
				}
			}
			mean := float64(sum) / float64(nsample)
			varsum := 0.0
			for s := 0; s < nsample; s++ {
				d := float64(scores[s]) - mean
				varsum = varsum + d*d
			}
			variance := varsum / float64(nsample)
			sd := msqrtRef(variance)
			lambda := 1.28255 / sd
			mu := mean - 0.57722/lambda
			return Expected{Ints: []int64{best, sum}, Floats: []float64{mu, lambda}}
		},
	}
}
