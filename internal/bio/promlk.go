package bio

import (
	"bioperfload/internal/workload"
)

// promlk computes maximum-likelihood phylogenies. Our port evaluates
// the likelihood of a fixed eight-taxon tree under a two-branch-class
// substitution model using Felsenstein's pruning algorithm:
// conditional likelihood vectors propagate bottom-up with
// matrix-vector products per site. The program is 65% floating-point
// (Table 1's outlier) and is characterized but not transformed.

const promlkMaxSites = 4096

const promlkSource = `
int nsites = 0;
int nrounds = 0;
char pat[32768];
double pmat[16];
double pmat2[16];
double freq[4];
double clv[60];

int main() {
	int s; int l; int n2; int x; int rr;
	int scale = 0;
	int chk = 0;
	double prod = 1.0;
	double loglike = 0.0;
	for (rr = 0; rr < nrounds; rr++) {
		for (s = 0; s < nsites; s++) {
			for (l = 0; l < 8; l++) {
				int t2 = pat[s * 8 + l];
				chk = chk * 5 + t2;
				for (x = 0; x < 4; x++) clv[(7 + l) * 4 + x] = 0.05;
				clv[(7 + l) * 4 + t2] = 1.0;
			}
			/* The 4-state inner loops are fully unrolled, as in the
			   original promlk sources. */
			for (n2 = 6; n2 >= 0; n2--) {
				int lb = (2 * n2 + 1) * 4;
				int rb = (2 * n2 + 2) * 4;
				double l0 = clv[lb]; double l1 = clv[lb+1];
				double l2 = clv[lb+2]; double l3 = clv[lb+3];
				double r0 = clv[rb]; double r1 = clv[rb+1];
				double r2 = clv[rb+2]; double r3 = clv[rb+3];
				double sl0 = pmat[0]*l0 + pmat[1]*l1 + pmat[2]*l2 + pmat[3]*l3;
				double sl1 = pmat[4]*l0 + pmat[5]*l1 + pmat[6]*l2 + pmat[7]*l3;
				double sl2 = pmat[8]*l0 + pmat[9]*l1 + pmat[10]*l2 + pmat[11]*l3;
				double sl3 = pmat[12]*l0 + pmat[13]*l1 + pmat[14]*l2 + pmat[15]*l3;
				double sr0 = pmat2[0]*r0 + pmat2[1]*r1 + pmat2[2]*r2 + pmat2[3]*r3;
				double sr1 = pmat2[4]*r0 + pmat2[5]*r1 + pmat2[6]*r2 + pmat2[7]*r3;
				double sr2 = pmat2[8]*r0 + pmat2[9]*r1 + pmat2[10]*r2 + pmat2[11]*r3;
				double sr3 = pmat2[12]*r0 + pmat2[13]*r1 + pmat2[14]*r2 + pmat2[15]*r3;
				clv[n2 * 4] = sl0 * sr0;
				clv[n2 * 4 + 1] = sl1 * sr1;
				clv[n2 * 4 + 2] = sl2 * sr2;
				clv[n2 * 4 + 3] = sl3 * sr3;
			}
			double like = freq[0]*clv[0] + freq[1]*clv[1] + freq[2]*clv[2] + freq[3]*clv[3];
			prod = prod * like;
			if (prod < 0.000000000000000000001) {
				prod = prod * 1000000000000000000000.0;
				scale = scale + 1;
			}
		}
	}
	print(scale);
	print(chk);
	print(prod);
	return 0;
}
`

type promlkInputs struct {
	pat         []byte
	pmat, pmat2 []float64
	freq        []float64
	nsites      int
	nrounds     int
}

func promlkDims(sz Size) (nsites, nrounds int) {
	switch sz {
	case SizeTest:
		return 48, 1
	case SizeB:
		return 2400, 2
	default:
		return 4000, 12
	}
}

func promlkInputs2(sz Size) *promlkInputs {
	nsites, nrounds := promlkDims(sz)
	r := workload.NewRNG(0x98071C)
	in := &promlkInputs{
		pat:     workload.SitePatterns(r, 8, nsites),
		nsites:  nsites,
		nrounds: nrounds,
	}
	mk := func(stay float64) []float64 {
		p := make([]float64, 16)
		for x := 0; x < 4; x++ {
			for y := 0; y < 4; y++ {
				if x == y {
					p[x*4+y] = stay
				} else {
					p[x*4+y] = (1 - stay) / 3
				}
			}
		}
		return p
	}
	in.pmat = mk(0.85)
	in.pmat2 = mk(0.70)
	in.freq = []float64{0.28, 0.22, 0.24, 0.26}
	return in
}

func promlkRef(in *promlkInputs) Expected {
	var scale, chk int64
	prod := 1.0
	clv := make([]float64, 60)
	for rr := 0; rr < in.nrounds; rr++ {
		for s := 0; s < in.nsites; s++ {
			for l := 0; l < 8; l++ {
				t2 := int(in.pat[s*8+l])
				chk = chk*5 + int64(t2)
				for x := 0; x < 4; x++ {
					clv[(7+l)*4+x] = 0.05
				}
				clv[(7+l)*4+t2] = 1.0
			}
			for n2 := 6; n2 >= 0; n2-- {
				lb := (2*n2 + 1) * 4
				rb := (2*n2 + 2) * 4
				l0, l1, l2, l3 := clv[lb], clv[lb+1], clv[lb+2], clv[lb+3]
				r0, r1, r2, r3 := clv[rb], clv[rb+1], clv[rb+2], clv[rb+3]
				pm, pm2 := in.pmat, in.pmat2
				sl0 := pm[0]*l0 + pm[1]*l1 + pm[2]*l2 + pm[3]*l3
				sl1 := pm[4]*l0 + pm[5]*l1 + pm[6]*l2 + pm[7]*l3
				sl2 := pm[8]*l0 + pm[9]*l1 + pm[10]*l2 + pm[11]*l3
				sl3 := pm[12]*l0 + pm[13]*l1 + pm[14]*l2 + pm[15]*l3
				sr0 := pm2[0]*r0 + pm2[1]*r1 + pm2[2]*r2 + pm2[3]*r3
				sr1 := pm2[4]*r0 + pm2[5]*r1 + pm2[6]*r2 + pm2[7]*r3
				sr2 := pm2[8]*r0 + pm2[9]*r1 + pm2[10]*r2 + pm2[11]*r3
				sr3 := pm2[12]*r0 + pm2[13]*r1 + pm2[14]*r2 + pm2[15]*r3
				clv[n2*4] = sl0 * sr0
				clv[n2*4+1] = sl1 * sr1
				clv[n2*4+2] = sl2 * sr2
				clv[n2*4+3] = sl3 * sr3
			}
			like := in.freq[0]*clv[0] + in.freq[1]*clv[1] + in.freq[2]*clv[2] + in.freq[3]*clv[3]
			prod = prod * like
			if prod < 1e-21 {
				prod = prod * 1e21
				scale++
			}
		}
	}
	return Expected{Ints: []int64{scale, chk}, Floats: []float64{prod}}
}

// Promlk builds the promlk program.
func Promlk() *Program {
	return &Program{
		Name:          "promlk",
		Area:          "molecular phylogeny (maximum likelihood)",
		Transformable: false,
		source:        promlkSource,
		Bind: func(m Binder, sz Size) error {
			in := promlkInputs2(sz)
			if err := m.WriteSymbolInt64s("nsites", []int64{int64(in.nsites)}); err != nil {
				return err
			}
			if err := m.WriteSymbolInt64s("nrounds", []int64{int64(in.nrounds)}); err != nil {
				return err
			}
			if err := m.WriteSymbol("pat", in.pat); err != nil {
				return err
			}
			for _, fp := range []struct {
				name string
				vals []float64
			}{{"pmat", in.pmat}, {"pmat2", in.pmat2}, {"freq", in.freq}} {
				if err := m.WriteSymbolFloat64s(fp.name, fp.vals); err != nil {
					return err
				}
			}
			return nil
		},
		Reference: func(sz Size) Expected {
			return promlkRef(promlkInputs2(sz))
		},
	}
}
