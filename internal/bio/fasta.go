package bio

import (
	"bioperfload/internal/workload"
)

// fasta implements the FASTA k-tuple heuristic: hash the query's
// 4-mers into chained lookup tables, scan the database accumulating
// diagonal hit counts (the chain walk is a load-to-branch sequence),
// pick the best diagonal, and rescore it with a banded Smith-Waterman
// pass. fasta is characterized but not load-transformed in the paper.

const (
	fastaMaxQ  = 512
	fastaMaxDB = 1048576
)

const fastaSource = `
int QL = 0;
int DL = 0;
int NQ = 0;
char q[2048];
char db[1048576];
int first2[256];
int nextp[512];
int diag[1050624];
int hh[513];
int smat2[16];

int scan_diagonals(int qoff) {
	int i; int w; int p; int bestd; int bestv;
	for (i = 0; i < DL + QL; i++) diag[i] = 0;
	for (i = 0; i < 256; i++) first2[i] = -1;
	for (i = 0; i + 4 <= QL; i++) {
		w = q[qoff+i] * 64 + q[qoff+i+1] * 16 + q[qoff+i+2] * 4 + q[qoff+i+3];
		nextp[i] = first2[w];
		first2[w] = i;
	}
	for (i = 0; i + 4 <= DL; i++) {
		w = db[i] * 64 + db[i+1] * 16 + db[i+2] * 4 + db[i+3];
		for (p = first2[w]; p != -1; p = nextp[p]) {
			diag[i - p + QL] = diag[i - p + QL] + 1;
		}
	}
	bestd = 0;
	bestv = -1;
	for (i = 0; i < DL + QL; i++) {
		if (diag[i] > bestv) { bestv = diag[i]; bestd = i; }
	}
	print(bestv);
	return bestd;
}

int band_sw(int qoff, int bestd) {
	/* Banded Smith-Waterman of width 2*BW+1 around the diagonal:
	   column j of the band at query row i maps to db position
	   i + (bestd - QL) + (j - BW). */
	int i; int j; int t; int prevdiag; int tmp; int best;
	int d0 = bestd - QL;
	for (j = 0; j <= 16; j++) hh[j] = 0;
	best = 0;
	for (i = 0; i < QL; i++) {
		prevdiag = hh[0];
		hh[0] = 0;
		for (j = 1; j <= 16; j++) {
			int dbpos = i + d0 + j - 8;
			t = 0;
			if (dbpos >= 0) {
				if (dbpos < DL) {
					t = prevdiag + smat2[q[qoff+i] * 4 + db[dbpos]];
				}
			}
			if (hh[j] - 3 > t) t = hh[j] - 3;
			if (hh[j-1] - 3 > t) t = hh[j-1] - 3;
			if (t < 0) t = 0;
			prevdiag = hh[j];
			hh[j] = t;
			if (t > best) best = t;
		}
	}
	return best;
}

int main() {
	int k; int total = 0; int best = 0; int sc; int bd;
	for (k = 0; k < NQ; k++) {
		bd = scan_diagonals(k * 512);
		sc = band_sw(k * 512, bd);
		total = total + sc;
		if (sc > best) best = sc;
		print(sc);
	}
	print(total);
	print(best);
	return 0;
}
`

type fastaInputs struct {
	queries [][]byte
	db      []byte
	smat    []int64
}

func fastaDims(sz Size) (nq, ql, dl int) {
	switch sz {
	case SizeTest:
		return 1, 48, 512
	case SizeB:
		return 3, 200, 90000
	default:
		return 4, 320, 615000
	}
}

func fastaInputs2(sz Size) *fastaInputs {
	nq, ql, dl := fastaDims(sz)
	r := workload.NewRNG(0xFA57A0)
	in := &fastaInputs{db: workload.DNASeq(r, dl)}
	in.smat = []int64{5, -4, -4, -4, -4, 5, -4, -4, -4, -4, 5, -4, -4, -4, -4, 5}
	for i := 0; i < nq; i++ {
		qs := workload.DNASeq(r, ql)
		in.queries = append(in.queries, qs)
		// Plant each query (noisily) into the database so the
		// diagonal scan finds real signals.
		workload.PlantMotif(r, in.db, qs, r.Intn(maxInt(1, dl-ql)), 4, 100)
	}
	return in
}

// Fasta builds the fasta program.
func Fasta() *Program {
	return &Program{
		Name:          "fasta",
		Area:          "sequence analysis (k-tuple heuristic search)",
		Transformable: false,
		source:        fastaSource,
		Bind: func(m Binder, sz Size) error {
			in := fastaInputs2(sz)
			steps := []struct {
				name string
				vals []int64
			}{
				{"NQ", []int64{int64(len(in.queries))}},
				{"QL", []int64{int64(len(in.queries[0]))}},
				{"DL", []int64{int64(len(in.db))}},
				{"smat2", in.smat},
			}
			for _, st := range steps {
				if err := m.WriteSymbolInt64s(st.name, st.vals); err != nil {
					return err
				}
			}
			qbuf := make([]byte, len(in.queries)*512)
			for i, q := range in.queries {
				copy(qbuf[i*512:], q)
			}
			if err := m.WriteSymbol("q", qbuf); err != nil {
				return err
			}
			return m.WriteSymbol("db", in.db)
		},
		Reference: func(sz Size) Expected {
			return fastaRefFull(fastaInputs2(sz))
		},
	}
}

// fastaRefFull mirrors the MiniC main exactly.
func fastaRefFull(in *fastaInputs) Expected {
	var out []int64
	var total, best int64
	QL := len(in.queries[0])
	DL := len(in.db)
	for _, q := range in.queries {
		// scan_diagonals
		diag := make([]int64, DL+QL)
		first := make([]int64, 256)
		for i := range first {
			first[i] = -1
		}
		next := make([]int64, 512)
		for i := 0; i+4 <= QL; i++ {
			w := int64(q[i])*64 + int64(q[i+1])*16 + int64(q[i+2])*4 + int64(q[i+3])
			next[i] = first[w]
			first[w] = int64(i)
		}
		for i := 0; i+4 <= DL; i++ {
			w := int64(in.db[i])*64 + int64(in.db[i+1])*16 + int64(in.db[i+2])*4 + int64(in.db[i+3])
			for p := first[w]; p != -1; p = next[p] {
				diag[int64(i)-p+int64(QL)]++
			}
		}
		bestd, bestv := int64(0), int64(-1)
		for i := 0; i < DL+QL; i++ {
			if diag[i] > bestv {
				bestv = diag[i]
				bestd = int64(i)
			}
		}
		out = append(out, bestv)

		// band_sw
		d0 := bestd - int64(QL)
		hh := make([]int64, 17)
		sc := int64(0)
		for i := 0; i < QL; i++ {
			prevdiag := hh[0]
			hh[0] = 0
			for j := 1; j <= 16; j++ {
				dbpos := int64(i) + d0 + int64(j) - 8
				t := int64(0)
				if dbpos >= 0 {
					if dbpos < int64(DL) {
						t = prevdiag + in.smat[int64(q[i])*4+int64(in.db[dbpos])]
					}
				}
				if hh[j]-3 > t {
					t = hh[j] - 3
				}
				if hh[j-1]-3 > t {
					t = hh[j-1] - 3
				}
				if t < 0 {
					t = 0
				}
				prevdiag = hh[j]
				hh[j] = t
				if t > sc {
					sc = t
				}
			}
		}
		total += sc
		if sc > best {
			best = sc
		}
		out = append(out, sc)
	}
	out = append(out, total, best)
	return Expected{Ints: out}
}
