package bio

import (
	"bioperfload/internal/workload"
)

// blast implements the BLAST seed-and-extend heuristic: protein
// 3-mers of the query populate a chained word table; every database
// word probes it, and hits are extended in both directions under an
// X-drop rule. The extension loop's loads feed the drop-off branch —
// blast has the paper's highest load-to-branch fraction (75.7%, Table
// 4a) and highest overall miss rate. It is characterized but not
// load-transformed.

const (
	blastMaxQ  = 256
	blastMaxDB = 262144
)

const blastSource = `
int QL = 0;
int DL = 0;
int xdrop = 12;
int cutoff2 = 35;
char q[256];
char db[1048576];
int wfirst[8000];
int wnext[256];
int smat[400];

int extend(int qp, int dp) {
	int sc; int best2; int k;
	/* seed word scores */
	sc = smat[q[qp] * 20 + db[dp]]
	   + smat[q[qp+1] * 20 + db[dp+1]]
	   + smat[q[qp+2] * 20 + db[dp+2]];
	best2 = sc;
	/* extend right */
	k = 3;
	while (qp + k < QL) {
		if (dp + k >= DL) break;
		sc = sc + smat[q[qp+k] * 20 + db[dp+k]];
		if (sc > best2) best2 = sc;
		if (best2 - sc > xdrop) break;
		k = k + 1;
	}
	/* extend left */
	k = 1;
	while (qp - k >= 0) {
		if (dp - k < 0) break;
		sc = best2;
		sc = sc + smat[q[qp-k] * 20 + db[dp-k]];
		if (sc > best2) best2 = sc;
		if (best2 - sc > xdrop) break;
		k = k + 1;
	}
	return best2;
}

int main() {
	int i; int w; int p; int sc;
	int nhsp = 0; int total = 0; int best = 0;
	for (i = 0; i < 8000; i++) wfirst[i] = -1;
	for (i = 0; i + 3 <= QL; i++) {
		w = q[i] * 400 + q[i+1] * 20 + q[i+2];
		wnext[i] = wfirst[w];
		wfirst[w] = i;
	}
	for (i = 0; i + 3 <= DL; i++) {
		w = db[i] * 400 + db[i+1] * 20 + db[i+2];
		for (p = wfirst[w]; p != -1; p = wnext[p]) {
			sc = extend(p, i);
			if (sc >= cutoff2) {
				nhsp = nhsp + 1;
				total = total + sc;
				if (sc > best) best = sc;
			}
		}
	}
	print(nhsp);
	print(total);
	print(best);
	return 0;
}
`

type blastInputs struct {
	q, db []byte
	smat  []int64
}

func blastDims(sz Size) (ql, dl int) {
	switch sz {
	case SizeTest:
		return 40, 600
	case SizeB:
		return 150, 140000
	default:
		return 220, 716000
	}
}

func blastInputs2(sz Size) *blastInputs {
	ql, dl := blastDims(sz)
	r := workload.NewRNG(0xB1A570)
	in := &blastInputs{
		q:    workload.ProteinSeq(r, ql),
		db:   workload.ProteinSeq(r, dl),
		smat: workload.SubstMatrix(r, 20, 6, -2),
	}
	// Plant fragments of the query around the database so extensions
	// fire.
	for i := 0; i < dl/800+2; i++ {
		frag := ql / 2
		start := r.Intn(maxInt(1, ql-frag))
		workload.PlantMotif(r, in.db, in.q[start:start+frag],
			r.Intn(maxInt(1, dl-frag)), 20, 120)
	}
	return in
}

func blastRef(in *blastInputs) Expected {
	QL, DL := len(in.q), len(in.db)
	xdrop, cutoff := int64(12), int64(35)
	extend := func(qp, dp int) int64 {
		sc := in.smat[int64(in.q[qp])*20+int64(in.db[dp])] +
			in.smat[int64(in.q[qp+1])*20+int64(in.db[dp+1])] +
			in.smat[int64(in.q[qp+2])*20+int64(in.db[dp+2])]
		best2 := sc
		k := 3
		for qp+k < QL {
			if dp+k >= DL {
				break
			}
			sc = sc + in.smat[int64(in.q[qp+k])*20+int64(in.db[dp+k])]
			if sc > best2 {
				best2 = sc
			}
			if best2-sc > xdrop {
				break
			}
			k++
		}
		k = 1
		for qp-k >= 0 {
			if dp-k < 0 {
				break
			}
			sc = best2
			sc = sc + in.smat[int64(in.q[qp-k])*20+int64(in.db[dp-k])]
			if sc > best2 {
				best2 = sc
			}
			if best2-sc > xdrop {
				break
			}
			k++
		}
		return best2
	}
	wfirst := make([]int64, 8000)
	for i := range wfirst {
		wfirst[i] = -1
	}
	wnext := make([]int64, 256)
	for i := 0; i+3 <= QL; i++ {
		w := int64(in.q[i])*400 + int64(in.q[i+1])*20 + int64(in.q[i+2])
		wnext[i] = wfirst[w]
		wfirst[w] = int64(i)
	}
	var nhsp, total, best int64
	for i := 0; i+3 <= DL; i++ {
		w := int64(in.db[i])*400 + int64(in.db[i+1])*20 + int64(in.db[i+2])
		for p := wfirst[w]; p != -1; p = wnext[p] {
			sc := extend(int(p), i)
			if sc >= cutoff {
				nhsp++
				total += sc
				if sc > best {
					best = sc
				}
			}
		}
	}
	return Expected{Ints: []int64{nhsp, total, best}}
}

// Blast builds the blast program.
func Blast() *Program {
	return &Program{
		Name:          "blast",
		Area:          "sequence analysis (seed-and-extend search)",
		Transformable: false,
		source:        blastSource,
		Bind: func(m Binder, sz Size) error {
			in := blastInputs2(sz)
			steps := []struct {
				name string
				vals []int64
			}{
				{"QL", []int64{int64(len(in.q))}},
				{"DL", []int64{int64(len(in.db))}},
				{"smat", in.smat},
			}
			for _, st := range steps {
				if err := m.WriteSymbolInt64s(st.name, st.vals); err != nil {
					return err
				}
			}
			if err := m.WriteSymbol("q", in.q); err != nil {
				return err
			}
			return m.WriteSymbol("db", in.db)
		},
		Reference: func(sz Size) Expected {
			return blastRef(blastInputs2(sz))
		},
	}
}
