package scoreboard

import (
	"testing"

	"bioperfload/internal/bpred"
)

// TestDenseMatchesHybrid pins the dense predictor's behavior to
// bpred.NewPaperHybrid prediction for prediction: for an identical
// branch stream, every observe() must report exactly the mispredict
// the map-based hybrid would. The stream mixes strongly biased,
// pattern-following, and noisy branches across a dense PC range plus
// sparse high PCs (exercising the slice growth path), driven by a
// fixed-seed xorshift so the test is deterministic.
func TestDenseMatchesHybrid(t *testing.T) {
	d := newDensePredictor(bpred.DefaultHybridConfig())
	h := bpred.NewPaperHybrid()

	rng := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}

	misses := 0
	const events = 200_000
	for i := 0; i < events; i++ {
		r := next()
		pc := int32(r % 211)
		if r&0xff == 0 {
			// Occasional sparse high index: the dense predictor must
			// grow its slice without disturbing existing state.
			pc = int32(5000 + r%37)
		}
		var taken bool
		switch pc % 3 {
		case 0: // strongly biased taken
			taken = (r>>16)&7 != 0
		case 1: // short repeating pattern (local history learns this)
			taken = i%5 < 2
		default: // noisy
			taken = (r>>24)&1 == 0
		}

		wantMiss := h.Predict(pc) != taken
		h.Update(pc, taken)
		gotMiss := d.observe(pc, taken)
		if gotMiss != wantMiss {
			t.Fatalf("event %d (pc=%d taken=%v): dense miss=%v, hybrid miss=%v",
				i, pc, taken, gotMiss, wantMiss)
		}
		if wantMiss {
			misses++
		}
	}
	// Sanity: the stream must actually exercise both outcomes.
	if misses == 0 || misses == events {
		t.Fatalf("degenerate stream: %d/%d mispredicts", misses, events)
	}
}
