package scoreboard

import (
	"testing"

	"bioperfload/internal/cache"
	"bioperfload/internal/isa"
	"bioperfload/internal/pipeline"
	"bioperfload/internal/sim"
)

// newTestModel builds a model on a 4-wide machine with the paper's
// cache latencies and a 20-cycle divide, then applies mut.
func newTestModel(mut func(*pipeline.Config)) *Model {
	cfg := pipeline.Config{
		FetchWidth:        4,
		IssueWidth:        4,
		RetireWidth:       4,
		WindowSize:        64,
		FrontEndDepth:     5,
		MispredictPenalty: 10,
		IntDivLat:         20,
		Cache:             cache.PaperConfig(),
	}
	if mut != nil {
		mut(&cfg)
	}
	return NewModel(cfg)
}

// Synthetic committed-instruction events. The model only looks at
// Inst, Addr, PC, and Taken, so the tests fabricate streams directly
// instead of running the functional simulator.

// addImm is `add rD = r31 + 1`: no sources (r31 is the zero register),
// unit latency.
func addImm(dst uint8) sim.Event {
	return sim.Event{Inst: &isa.Inst{Op: isa.OpAdd, Rd: dst, Ra: isa.RZero, HasImm: true, Imm: 1}}
}

// addReg is `add rD = rS + 1`: one register source.
func addReg(dst, src uint8) sim.Event {
	return sim.Event{Inst: &isa.Inst{Op: isa.OpAdd, Rd: dst, Ra: src, HasImm: true, Imm: 1}}
}

// divImm is `div rD = r31 / 2`: no sources, IntDivLat latency.
func divImm(dst uint8) sim.Event {
	return sim.Event{Inst: &isa.Inst{Op: isa.OpDiv, Rd: dst, Ra: isa.RZero, HasImm: true, Imm: 2}}
}

func loadAt(dst uint8, addr uint64) sim.Event {
	return sim.Event{Inst: &isa.Inst{Op: isa.OpLdq, Rd: dst, Ra: isa.RZero}, Addr: addr}
}

func storeAt(data uint8, addr uint64) sim.Event {
	return sim.Event{Inst: &isa.Inst{Op: isa.OpStq, Ra: isa.RZero, Rb: data}, Addr: addr}
}

func condBranch(pc int32, taken bool) sim.Event {
	return sim.Event{Inst: &isa.Inst{Op: isa.OpBne, Ra: isa.RZero}, PC: pc, Taken: taken}
}

func cycles(m *Model) uint64 { return m.Stats().Cycles }

// An independent stream retires at the machine width: N source-free
// adds on a 4-wide machine take about N/4 cycles.
func TestIndependentStreamThroughput(t *testing.T) {
	m := newTestModel(nil)
	const n = 4096
	evs := make([]sim.Event, 0, n)
	for i := 0; i < n; i++ {
		evs = append(evs, addImm(uint8(1+i%8)))
	}
	m.ObserveBatch(evs)
	got := cycles(m)
	if got < n/4 || got > n/4+8 {
		t.Errorf("independent stream: %d cycles, want about %d", got, n/4)
	}
}

// A single dependence chain serializes completely: N dependent
// unit-latency adds take about N cycles regardless of width.
func TestDependentChainSerializes(t *testing.T) {
	m := newTestModel(nil)
	const n = 4096
	evs := make([]sim.Event, 0, n)
	for i := 0; i < n; i++ {
		evs = append(evs, addReg(1, 1))
	}
	m.ObserveBatch(evs)
	got := cycles(m)
	if got < n || got > n+8 {
		t.Errorf("dependent chain: %d cycles, want about %d", got, n)
	}
}

// The cursor advances at the narrowest of the three machine widths —
// the Pentium 4's retire width 3 is what actually caps its IPC.
func TestWidthIsNarrowestMachineWidth(t *testing.T) {
	cases := []struct {
		fetch, issue, retire, want int
	}{
		{4, 4, 4, 4},
		{3, 4, 3, 3}, // Pentium 4 shape
		{6, 6, 6, 6},
		{4, 2, 4, 2},
		{1, 4, 4, 1},
	}
	for _, c := range cases {
		m := newTestModel(func(cfg *pipeline.Config) {
			cfg.FetchWidth, cfg.IssueWidth, cfg.RetireWidth = c.fetch, c.issue, c.retire
		})
		if m.width != c.want {
			t.Errorf("widths %d/%d/%d: cursor rate %d, want %d",
				c.fetch, c.issue, c.retire, m.width, c.want)
		}
	}
}

// On an in-order core a late operand holds every later instruction
// back; out of order, independent work flows past the stalled one.
// The same stream must therefore cost several times more in order.
func TestInOrderStallsOnLateOperands(t *testing.T) {
	var evs []sim.Event
	for i := 0; i < 64; i++ {
		evs = append(evs, divImm(1))    // 20-cycle producer
		evs = append(evs, addReg(2, 1)) // consumer stalls on it
		for d := uint8(3); d < 7; d++ {
			evs = append(evs, addImm(d)) // independent filler
		}
	}
	ooo := newTestModel(nil)
	ooo.ObserveBatch(evs)
	ino := newTestModel(func(cfg *pipeline.Config) { cfg.InOrder = true })
	ino.ObserveBatch(evs)
	if c1, c2 := cycles(ino), cycles(ooo); c1 < 3*c2 {
		t.Errorf("in-order %d cycles, out-of-order %d: want in-order >= 3x", c1, c2)
	}
}

// A full window stops dispatch: long-latency instructions that overlap
// freely in a large window serialize in a small one.
func TestWindowFullStallsDispatch(t *testing.T) {
	const n = 400
	evs := make([]sim.Event, 0, n)
	for i := 0; i < n; i++ {
		evs = append(evs, divImm(uint8(1+i%8)))
	}
	big := newTestModel(nil) // window 64
	big.ObserveBatch(evs)
	small := newTestModel(func(cfg *pipeline.Config) { cfg.WindowSize = 4 })
	small.ObserveBatch(evs)
	if c1, c2 := cycles(small), cycles(big); c1 < 3*c2 {
		t.Errorf("window 4: %d cycles, window 64: %d: want >= 3x", c1, c2)
	}
}

// A load that hits a recent store's address waits for the store's
// data: if the store's value arrived late, the dependence carries
// through memory into the load's result. Both runs store to and load
// from the same word — identical cache behavior — and differ only in
// when the stored value is ready.
func TestStoreForwardingDelaysDependentLoad(t *testing.T) {
	run := func(producer sim.Event) int64 {
		m := newTestModel(nil)
		m.ObserveBatch([]sim.Event{
			producer,           // defines r1, early or late
			storeAt(1, 0x4008), // store waits for r1
			loadAt(3, 0x4008),  // aliases the store, waits for its data
		})
		return m.regReady[3]
	}
	late := run(divImm(1))  // r1 ready around cycle 20
	early := run(addImm(1)) // r1 ready at cycle 1
	if late < early+15 {
		t.Errorf("load after late store ready at %d, after early store at %d: want the divide's latency to carry through",
			late, early)
	}
	if late < 21 {
		t.Errorf("forwarded load ready at %d, want >= 21 (store completion)", late)
	}
}

// Mispredicted branches stall the front end: each miss jumps the
// cursor past the branch's resolution plus the redirect cost.
func TestMispredictRedirectStalls(t *testing.T) {
	m := newTestModel(nil)
	rng := uint64(12345)
	const n = 2000
	evs := make([]sim.Event, 0, n)
	for i := 0; i < n; i++ {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		evs = append(evs, condBranch(int32(i%17), rng&1 == 0))
	}
	m.ObserveBatch(evs)
	s := m.Stats()
	if s.CondBranches != n {
		t.Fatalf("CondBranches = %d, want %d", s.CondBranches, n)
	}
	// A random stream defeats the predictor on a large fraction of
	// branches; each miss costs MispredictPenalty+FrontEndDepth (15)
	// plus the branch's own resolution.
	if s.Mispredicts < n/5 || s.Mispredicts > 4*n/5 {
		t.Fatalf("Mispredicts = %d on a random stream of %d", s.Mispredicts, n)
	}
	if min := s.Mispredicts * 15; s.Cycles < min {
		t.Errorf("Cycles = %d with %d misses, want >= %d", s.Cycles, s.Mispredicts, min)
	}
}

// Finalize with a larger total extrapolates cycles and event counters
// by total/observed and reports the exact instruction count.
func TestFinalizeExtrapolates(t *testing.T) {
	m := newTestModel(nil)
	var evs []sim.Event
	for i := 0; i < 800; i++ {
		evs = append(evs, addImm(uint8(1+i%8)))
	}
	for i := 0; i < 200; i++ {
		evs = append(evs, loadAt(9, uint64(0x10000+64*i)))
	}
	m.ObserveBatch(evs)
	raw := m.Stats()
	if raw.Instructions != 1000 || raw.Loads != 200 {
		t.Fatalf("raw stats: %d insts, %d loads", raw.Instructions, raw.Loads)
	}

	m.Finalize(10_000)
	s := m.Stats()
	if s.Instructions != 10_000 {
		t.Errorf("Instructions = %d, want 10000", s.Instructions)
	}
	if s.Cycles != raw.Cycles*10 {
		t.Errorf("Cycles = %d, want %d (10x raw)", s.Cycles, raw.Cycles*10)
	}
	if s.Loads != raw.Loads*10 {
		t.Errorf("Loads = %d, want %d", s.Loads, raw.Loads*10)
	}
	if s.L1Hits+s.L2Hits+s.MemHits != s.Loads {
		t.Errorf("cache level counts %d+%d+%d don't sum to %d loads",
			s.L1Hits, s.L2Hits, s.MemHits, s.Loads)
	}
}

// Finalize with the observed count (an unsampled run) changes nothing.
func TestFinalizeExactWhenUnsampled(t *testing.T) {
	m := newTestModel(nil)
	var evs []sim.Event
	for i := 0; i < 500; i++ {
		evs = append(evs, addImm(1))
	}
	m.ObserveBatch(evs)
	raw := m.Stats()
	m.Finalize(500)
	if s := m.Stats(); s != raw {
		t.Errorf("Finalize(observed) changed stats: %+v vs %+v", s, raw)
	}
}
