package scoreboard

import "bioperfload/internal/bpred"

// densePredictor is the scoreboard's default branch predictor: the
// same McFarling-style hybrid as bpred.Hybrid (per-static-branch local
// history and pattern table, shared gshare, per-branch choice
// counter), but with the per-branch state in a PC-indexed slice
// instead of a map. Branch PCs are small static instruction indices,
// so direct indexing removes the map lookup that dominates the hybrid
// predictor's cost at fast-tier event rates. TestDenseMatchesHybrid
// pins prediction-for-prediction equivalence with bpred.NewPaperHybrid.
type densePredictor struct {
	lmask uint64
	gmask uint64
	ghist uint64

	gshare   []uint8
	branches []branchState
}

// branchState is one static branch's local predictor. The pattern
// table is allocated on first execution; a nil pattern marks a branch
// never seen, matching the lazily-created map entries of bpred.Hybrid.
type branchState struct {
	hist    uint64
	pattern []uint8
	choice  uint8 // 0,1 favor global; 2,3 favor local
}

func newDensePredictor(cfg bpred.HybridConfig) *densePredictor {
	return &densePredictor{
		lmask:  (1 << cfg.LocalHistoryBits) - 1,
		gmask:  (1 << cfg.GlobalHistoryBits) - 1,
		gshare: make([]uint8, 1<<cfg.GlobalHistoryBits),
	}
}

// observe predicts, trains, and reports whether the branch was
// mispredicted, with update rules identical to bpred.Hybrid.
func (d *densePredictor) observe(pc int32, taken bool) bool {
	i := int(pc)
	if i >= len(d.branches) {
		grown := make([]branchState, i+i/2+16)
		copy(grown, d.branches)
		d.branches = grown
	}
	b := &d.branches[i]
	if b.pattern == nil {
		b.pattern = make([]uint8, d.lmask+1)
		for j := range b.pattern {
			b.pattern[j] = 2 // weakly taken
		}
		b.choice = 2 // weakly favor local
	}
	li := b.hist & d.lmask
	gi := (uint64(uint32(pc)) ^ d.ghist) & d.gmask
	localPred := b.pattern[li] >= 2
	globalPred := d.gshare[gi] >= 2
	pred := globalPred
	if b.choice >= 2 {
		pred = localPred
	}

	// Train the choice counter toward whichever component was right
	// when they disagree.
	if localPred != globalPred {
		b.choice = train(b.choice, localPred == taken)
	}
	b.pattern[li] = train(b.pattern[li], taken)
	d.gshare[gi] = train(d.gshare[gi], taken)

	var bit uint64
	if taken {
		bit = 1
	}
	b.hist = (b.hist << 1) | bit
	d.ghist = (d.ghist << 1) | bit
	return pred != taken
}

// train advances a saturating 2-bit counter.
func train(c uint8, taken bool) uint8 {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}
