// Package scoreboard is the fast timing tier: a SimpleSim-style
// reg-ready-time model. Where the full model (internal/pipeline)
// searches per-cycle issue slots, tracks window occupancy, load ports,
// and store-to-load forwarding, the scoreboard keeps exactly one
// ready-time per architectural register and a width-adjusted issue
// cursor: per instruction
//
//	issue = max(readyAt[srcs], cursor, redirect floor)
//	readyAt[dst] = issue + execLatency   (cache latency for loads)
//
// with a branch predictor and the two-level cache hierarchy retained,
// because the paper's effect — load latency extending the mispredict
// penalty, and redirects exposing load latency — lives entirely in
// latencies, mispredicts, and cache hits. No window, no ring, no
// per-slot search: the model is a handful of adds and compares per
// instruction, an order of magnitude cheaper than the full tier.
//
// The model implements the same sim.BatchObserver contract as
// pipeline.Model and is sampling-aware: attached to a machine with
// sim.SetSampling, it observes a deterministic subset of the stream
// and Finalize extrapolates cycle and event counts to the full run.
// Absolute cycle counts are approximate by construction; the
// transformed/original speedup ratios the paper's Table 8 and Figure 9
// report are validated against the full tier per program by
// internal/scoreboard/validate, with tolerances recorded there and in
// DESIGN.md §10.
package scoreboard

import (
	"bioperfload/internal/bpred"
	"bioperfload/internal/cache"
	"bioperfload/internal/isa"
	"bioperfload/internal/pipeline"
	"bioperfload/internal/sim"
)

const numRegs = isa.NumIntRegs + isa.NumFPRegs

// stBufSize is the store-forwarding buffer size (power of two).
const stBufSize = 256

// Sampling window for fast-tier runs: observe the first 2^16
// committed instructions of every 2^21-instruction window (1/32 of
// the stream). The observe length matches sim.CancelCheckInterval so
// an observed window is exactly one execution chunk; the skipped 31/32
// run at bare functional speed. Windows are aligned to the committed
// instruction count, so sampled runs are fully deterministic.
const (
	SampleObserve = 1 << 16
	SamplePeriod  = 1 << 21
)

// Model is the scoreboard timing simulator. Create with NewModel,
// attach via sim.Machine.AddBatchObserver, and after the run call
// Finalize with the functional instruction count before reading Stats.
type Model struct {
	cfg    pipeline.Config
	hier   *cache.Hierarchy
	pred   *densePredictor
	custom bpred.Predictor // overrides pred when cfg.Predictor is set

	stats pipeline.Stats

	regReady [numRegs]int64 // completion time of last producer

	// Dispatch cursor: the cycle the front end delivers the next
	// instruction; cursorCnt instructions have been delivered at
	// cursor. The cursor advances at IssueWidth per cycle, breaks on
	// taken branches, and jumps forward on mispredict redirects. On
	// out-of-order cores an instruction whose operands are late does
	// NOT hold the cursor back (infinite-window approximation — the
	// machine keeps dispatching past it); on in-order cores it does.
	cursor    int64
	cursorCnt int

	// Store-to-load forwarding, direct-mapped by 8-byte word: a load
	// that hits a recent store's address waits for the store's data
	// (the same memory dependence the full model tracks in a map).
	// Spill/reload pairs — the Pentium 4's register-starved codegen —
	// are the traffic this matters for.
	stAddr [stBufSize]uint64
	stTime [stBufSize]int64

	// width is the cursor's advance rate: min(IssueWidth, RetireWidth,
	// FetchWidth), the machine's sustainable instructions per cycle.
	width int

	// ring holds the completion times of the last WindowSize
	// instructions: an instruction cannot dispatch before the one
	// WindowSize ahead of it has completed, the ROB-full stall that
	// keeps the "infinite window" honest on long-latency chains.
	ring    []int64
	ringPos int

	maxComplete int64

	observed uint64 // events delivered (≤ total under sampling)
	total    uint64 // set by Finalize; 0 until then
}

// NewModel builds a scoreboard model for cfg. The configuration is
// interpreted identically to pipeline.NewModel where the fields apply
// (widths, latencies, cache geometry, mispredict penalty, predictor);
// window size, load ports, and retire width have no scoreboard
// equivalent and are ignored, and InOrder is moot because scoreboard
// issue is program-ordered by construction.
func NewModel(cfg pipeline.Config) *Model {
	cfg = cfg.Normalized()
	m := &Model{
		cfg:  cfg,
		hier: cache.NewHierarchy(cfg.Cache),
	}
	m.width = cfg.IssueWidth
	if cfg.RetireWidth < m.width {
		m.width = cfg.RetireWidth
	}
	if cfg.FetchWidth < m.width {
		m.width = cfg.FetchWidth
	}
	if m.width < 1 {
		m.width = 1
	}
	m.ring = make([]int64, cfg.WindowSize)
	if cfg.Predictor != nil {
		m.custom = cfg.Predictor()
	} else {
		m.pred = newDensePredictor(bpred.DefaultHybridConfig())
	}
	return m
}

// Config returns the machine configuration.
func (m *Model) Config() pipeline.Config { return m.cfg }

var _ sim.BatchObserver = (*Model)(nil)

// ObserveBatch implements sim.BatchObserver. No event escapes the
// callback (the simulator recycles the slab afterwards).
func (m *Model) ObserveBatch(evs []sim.Event) {
	for i := range evs {
		m.observe(&evs[i])
	}
}

func (m *Model) observe(ev *sim.Event) {
	in := ev.Inst
	m.observed++

	// ---- Dispatch: window-full stall, then the bandwidth cursor.
	if t := m.ring[m.ringPos]; t > m.cursor {
		m.cursor = t
		m.cursorCnt = 0
	}

	// ---- Issue: dispatched no earlier than the cursor, executed no
	// earlier than the operands' ready times.
	issue := m.cursor
	var srcs [3]int16
	n, dst := pipeline.Deps(in, &srcs)
	for i := 0; i < n; i++ {
		if t := m.regReady[srcs[i]]; t > issue {
			issue = t
		}
	}
	isLoad := isa.IsLoad(in.Op)
	isStore := isa.IsStore(in.Op)
	if isLoad {
		si := (ev.Addr >> 3) & (stBufSize - 1)
		if m.stTime[si] > issue && m.stAddr[si] == ev.Addr&^7 {
			issue = m.stTime[si]
		}
	}
	// In-order cores issue in program order: a stalled instruction
	// holds every later one back, so the stall propagates into the
	// cursor. Out-of-order cores dispatch past it.
	if m.cfg.InOrder && issue > m.cursor {
		m.cursor = issue
		m.cursorCnt = 0
	}
	m.cursorCnt++
	if m.cursorCnt >= m.width {
		m.cursor++
		m.cursorCnt = 0
	}

	// ---- Execute: unit latency, or cache latency for loads.
	lat := int64(m.cfg.ExecLatency(in.Op))
	if isLoad || isStore {
		lvl, clat := m.hier.Access(ev.Addr, isStore)
		if isLoad {
			m.stats.Loads++
			m.stats.LoadLatencySum += uint64(clat)
			lat = int64(clat)
			switch lvl {
			case cache.LevelL1:
				m.stats.L1Hits++
			case cache.LevelL2:
				m.stats.L2Hits++
			default:
				m.stats.MemHits++
			}
		} else {
			m.stats.Stores++
			// Stores drain off the critical path once issued.
			lat = 1
		}
	}
	complete := issue + lat
	if isStore {
		si := (ev.Addr >> 3) & (stBufSize - 1)
		m.stAddr[si] = ev.Addr &^ 7
		m.stTime[si] = complete
	}
	if dst >= 0 {
		m.regReady[dst] = complete
	}
	m.ring[m.ringPos] = complete
	m.ringPos++
	if m.ringPos == len(m.ring) {
		m.ringPos = 0
	}
	if complete > m.maxComplete {
		m.maxComplete = complete
	}

	// ---- Branches: a mispredict stalls the front end until the
	// (possibly load-fed, hence late) branch resolves plus the
	// redirect cost — the paper's load-to-branch penalty extension
	// falls out directly, because `complete` already includes the
	// feeding load's cache latency through regReady.
	if isa.IsCondBranch(in.Op) {
		m.stats.CondBranches++
		var miss bool
		if m.custom != nil {
			miss = m.custom.Predict(ev.PC) != ev.Taken
			m.custom.Update(ev.PC, ev.Taken)
		} else {
			miss = m.pred.observe(ev.PC, ev.Taken)
		}
		if miss {
			m.stats.Mispredicts++
			if f := complete + int64(m.cfg.MispredictPenalty+m.cfg.FrontEndDepth); f > m.cursor {
				m.cursor = f
				m.cursorCnt = 0
			}
		}
	}
	// Taken control flow ends the issue group (the fetch-break the
	// full model charges on taken branches, folded into the cursor).
	// On in-order cores the break overlaps with the serialized issue
	// stalls the cursor already carries — charging it again
	// systematically overestimates branchy in-order runs — so it only
	// applies out of order.
	if ev.Taken && !m.cfg.InOrder && isa.IsBranch(in.Op) && m.cursorCnt > 0 {
		m.cursor++
		m.cursorCnt = 0
	}
}

// Finalize records the functional run's total committed instruction
// count. Under sampling the model only observed part of the stream;
// Stats then reports the exact instruction count and scales cycles
// and event counters by total/observed.
func (m *Model) Finalize(totalInstructions uint64) {
	m.total = totalInstructions
}

// Stats returns the accumulated statistics. After Finalize with a
// total above the observed count, Cycles and the event counters are
// extrapolated by total/observed and Instructions is the exact
// functional count; otherwise the raw observed values are returned.
func (m *Model) Stats() pipeline.Stats {
	s := m.stats
	s.Instructions = m.observed
	s.Cycles = uint64(m.maxComplete)
	if m.cursor > m.maxComplete {
		// A trailing mispredict redirect can leave the front end
		// stalled past the last completion.
		s.Cycles = uint64(m.cursor)
	}
	if m.total > m.observed && m.observed > 0 {
		f := float64(m.total) / float64(m.observed)
		s.Instructions = m.total
		s.Cycles = scaleU(s.Cycles, f)
		s.Loads = scaleU(s.Loads, f)
		s.Stores = scaleU(s.Stores, f)
		s.CondBranches = scaleU(s.CondBranches, f)
		s.Mispredicts = scaleU(s.Mispredicts, f)
		s.L1Hits = scaleU(s.L1Hits, f)
		s.L2Hits = scaleU(s.L2Hits, f)
		s.MemHits = scaleU(s.MemHits, f)
		s.LoadLatencySum = scaleU(s.LoadLatencySum, f)
	}
	return s
}

func scaleU(v uint64, f float64) uint64 {
	return uint64(float64(v)*f + 0.5)
}
