// Package validate is the fast-tier acceptance harness: it runs every
// BioPerf program through both timing tiers and asserts the scoreboard
// reproduces the full model's observable conclusions within checked-in
// per-program tolerances.
//
// What "reproduces" means depends on the program:
//
//   - For the six transformable programs the paper's result is the
//     transformed/original speedup per platform (Table 8, Figure 9), so
//     the harness compares speedups tier against tier, in percentage
//     points.
//   - The three non-transformable programs have no second variant, so
//     the harness compares each platform's cycle count relative to the
//     Alpha baseline — the cross-platform discrimination a sweep relies
//     on — as a relative error in percent.
//
// Absolute cycle counts are NOT validated: the scoreboard is an
// infinite-window approximation and reads systematically higher than
// the full model. The ratios are what the paper reports and what the
// fast tier exists to estimate.
package validate

import (
	"context"
	"fmt"
	"strings"

	"bioperfload/internal/bio"
	"bioperfload/internal/pipeline"
	"bioperfload/internal/platform"
	"bioperfload/internal/runner"
)

// TolerancePP is the checked-in per-program error budget, in
// percentage points for transformable programs (speedup error) and in
// percent for non-transformable ones (relative cycle-ratio error).
// The values were set from measured tier disagreement at both test and
// classB sizes (see DESIGN.md §10) with roughly a 25% margin; a model
// regression that widens any program's error past its budget fails
// `make validate-timing`.
var TolerancePP = map[string]float64{
	"clustalw":     9,  // measured max 6.8 (itanium2, classB)
	"dnapenny":     22, // measured max 17.3 (pentium4, classB)
	"hmmcalibrate": 8,  // measured max 6.2 (itanium2, classB)
	"hmmpfam":      27, // measured max 21.8 (pentium4, classB)
	"hmmsearch":    6,  // measured max 2.6 (itanium2, test)
	"predator":     4,  // measured max 2.1 (pentium4, test)
	// Non-transformables: relative error of cycles(platform)/cycles(alpha).
	// fasta's classB run is capacity-miss-bound on the small-L2
	// machines, and 1/32 sampling under-warms those caches, so its
	// ratio error reaches ~21% there — the largest sampling artifact
	// in the suite.
	"blast":  10, // measured max 7.3 (itanium2, test)
	"fasta":  26, // measured max 21.1 (ppcg5, classB)
	"promlk": 9,  // measured max 6.6 (pentium4, classB)
}

// defaultTolerance applies to programs without an explicit entry.
const defaultTolerance = 15

// Row is one (program, platform) validation cell.
type Row struct {
	Program       string
	Platform      string
	Transformable bool
	// Full and Fast are speedups (transformable) or cycle ratios
	// relative to the Alpha platform (non-transformable), per tier.
	Full float64
	Fast float64
	// Err is |Fast-Full| in percentage points (transformable) or
	// 100*|Fast-Full|/Full (non-transformable).
	Err       float64
	Tolerance float64
	OK        bool
}

// Run evaluates every program on every platform through both tiers and
// returns the comparison rows in (program, platform) order.
func Run(ctx context.Context, s *runner.Session, sz bio.Size) ([]Row, error) {
	progs := bio.All()
	plats := platform.All()
	type cell struct{ full, fast pipeline.Stats }
	// cells[prog][plat][variant]; non-transformables use variant 0 only.
	cells := make([][][2]cell, len(progs))
	type unit struct {
		prog, plat  int
		transformed bool
	}
	var units []unit
	for i, p := range progs {
		cells[i] = make([][2]cell, len(plats))
		for j := range plats {
			units = append(units, unit{i, j, false})
			if p.Transformable {
				units = append(units, unit{i, j, true})
			}
		}
	}
	err := s.ForEach(ctx, len(units), func(k int) error {
		u := units[k]
		p, pl := progs[u.prog], plats[u.plat]
		v := 0
		if u.transformed {
			v = 1
		}
		full, err := s.Evaluate(ctx, p, pl.WithFidelity(pipeline.FidelityFull), sz, u.transformed)
		if err != nil {
			return err
		}
		fast, err := s.Evaluate(ctx, p, pl.WithFidelity(pipeline.FidelityFast), sz, u.transformed)
		if err != nil {
			return err
		}
		cells[u.prog][u.plat][v] = cell{full: full, fast: fast}
		return nil
	})
	if err != nil {
		return nil, err
	}

	speedup := func(orig, trans pipeline.Stats) float64 {
		if trans.Cycles == 0 {
			return 0
		}
		return float64(orig.Cycles)/float64(trans.Cycles) - 1
	}
	var rows []Row
	for i, p := range progs {
		tol, ok := TolerancePP[p.Name]
		if !ok {
			tol = defaultTolerance
		}
		for j, pl := range plats {
			r := Row{Program: p.Name, Platform: pl.Name, Transformable: p.Transformable, Tolerance: tol}
			if p.Transformable {
				r.Full = 100 * speedup(cells[i][j][0].full, cells[i][j][1].full)
				r.Fast = 100 * speedup(cells[i][j][0].fast, cells[i][j][1].fast)
				r.Err = r.Fast - r.Full
				if r.Err < 0 {
					r.Err = -r.Err
				}
			} else {
				// Cross-platform ratio against the first (Alpha) platform.
				baseFull := float64(cells[i][0][0].full.Cycles)
				baseFast := float64(cells[i][0][0].fast.Cycles)
				if baseFull == 0 || baseFast == 0 {
					return nil, fmt.Errorf("validate: %s produced zero cycles on %s", p.Name, plats[0].Name)
				}
				r.Full = float64(cells[i][j][0].full.Cycles) / baseFull
				r.Fast = float64(cells[i][j][0].fast.Cycles) / baseFast
				r.Err = 100 * (r.Fast - r.Full) / r.Full
				if r.Err < 0 {
					r.Err = -r.Err
				}
			}
			r.OK = r.Err <= tol
			rows = append(rows, r)
		}
	}
	return rows, nil
}

// Check returns an error naming every out-of-tolerance row.
func Check(rows []Row) error {
	var bad []string
	for _, r := range rows {
		if !r.OK {
			bad = append(bad, fmt.Sprintf("%s/%s err %.1f > tol %.1f", r.Program, r.Platform, r.Err, r.Tolerance))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("validate: %d cells out of tolerance: %s", len(bad), strings.Join(bad, "; "))
	}
	return nil
}

// Render formats the rows as the validate-timing report.
func Render(rows []Row) string {
	var b strings.Builder
	b.WriteString("Timing-tier validation: fast scoreboard vs full model\n")
	fmt.Fprintf(&b, "%-13s %-11s %-9s %9s %9s %7s %7s  %s\n",
		"program", "platform", "metric", "full", "fast", "err", "tol", "ok")
	for _, r := range rows {
		metric, unit := "ratio", "x"
		full, fast := r.Full, r.Fast
		if r.Transformable {
			metric, unit = "speedup", "%"
		}
		status := "ok"
		if !r.OK {
			status = "FAIL"
		}
		fmt.Fprintf(&b, "%-13s %-11s %-9s %8.1f%s %8.1f%s %6.1f %6.1f  %s\n",
			r.Program, r.Platform, metric, full, unit, fast, unit, r.Err, r.Tolerance, status)
	}
	return b.String()
}
