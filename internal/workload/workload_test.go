package workload

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Next() == c.Next() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds collide %d/100 times", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
	if NewRNG(1).Intn(0) != 0 || NewRNG(1).Intn(-3) != 0 {
		t.Error("degenerate limits should return 0")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(9)
	var sum float64
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		sum += v
	}
	if mean := sum / 10000; mean < 0.45 || mean > 0.55 {
		t.Errorf("Float64 mean %.3f, want ~0.5", mean)
	}
}

func TestSequenceAlphabets(t *testing.T) {
	r := NewRNG(3)
	for _, c := range DNASeq(r, 2000) {
		if c >= 4 {
			t.Fatalf("DNA residue %d out of range", c)
		}
	}
	counts := make([]int, 20)
	for _, c := range ProteinSeq(r, 20000) {
		if c >= 20 {
			t.Fatalf("protein residue %d out of range", c)
		}
		counts[c]++
	}
	for a, n := range counts {
		if n == 0 {
			t.Errorf("residue %d never generated", a)
		}
	}
	// The composition bias enriches the first half of the alphabet.
	var lo, hi int
	for a := 0; a < 10; a++ {
		lo += counts[a]
	}
	for a := 10; a < 20; a++ {
		hi += counts[a]
	}
	if lo <= hi {
		t.Errorf("composition bias missing: low half %d, high half %d", lo, hi)
	}
}

func TestMutatedCopy(t *testing.T) {
	r := NewRNG(5)
	base := ProteinSeq(r, 500)
	ident := MutatedCopy(r, base, 20, 0, 0)
	if len(ident) != len(base) {
		t.Fatal("zero-rate copy changed length")
	}
	for i := range base {
		if ident[i] != base[i] {
			t.Fatal("zero-rate copy changed content")
		}
	}
	mut := MutatedCopy(r, base, 20, 500, 0)
	diff := 0
	for i := range base {
		if i < len(mut) && mut[i] != base[i] {
			diff++
		}
	}
	if diff < 100 {
		t.Errorf("50%% mutation changed only %d/500 residues", diff)
	}
	if out := MutatedCopy(r, nil, 20, 0, 0); len(out) != 1 {
		t.Error("empty input should yield the sentinel residue")
	}
}

func TestPlantMotif(t *testing.T) {
	r := NewRNG(8)
	seq := make([]byte, 100)
	motif := []byte{1, 2, 3, 1, 2, 3, 1, 2}
	PlantMotif(r, seq, motif, 50, 4, 0)
	for i, c := range motif {
		if seq[50+i] != c {
			t.Fatalf("motif not planted at %d", 50+i)
		}
	}
	// Planting past the end must not panic.
	PlantMotif(r, seq, motif, 97, 4, 0)
}

func TestHMMShape(t *testing.T) {
	r := NewRNG(11)
	h := NewHMM(r, 32, 20)
	if h.M != 32 || len(h.Mat) != 32*20 || len(h.TPMM) != 32 {
		t.Fatal("dimensions wrong")
	}
	for k := 0; k < h.M; k++ {
		if h.TPMM[k] >= 0 || h.TPMI[k] >= 0 || h.TPDD[k] >= 0 {
			t.Fatal("transition scores must be negative log-odds")
		}
	}
	cons := h.Consensus()
	if len(cons) != h.M {
		t.Fatal("consensus length")
	}
	// The consensus residue scores at least as high as any other.
	for k := 0; k < h.M; k++ {
		best := h.Mat[k*h.A+int(cons[k])]
		for a := 0; a < h.A; a++ {
			if h.Mat[k*h.A+a] > best {
				t.Fatalf("consensus not the argmax at state %d", k)
			}
		}
	}
}

func TestSitePatterns(t *testing.T) {
	r := NewRNG(13)
	pat := SitePatterns(r, 8, 200)
	if len(pat) != 8*200 {
		t.Fatal("size wrong")
	}
	for _, b := range pat {
		if b >= 4 {
			t.Fatalf("state %d out of range", b)
		}
	}
	// Clade structure: taxa in the same clade agree more often than
	// taxa across clades.
	agree := func(a, b int) int {
		n := 0
		for s := 0; s < 200; s++ {
			if pat[s*8+a] == pat[s*8+b] {
				n++
			}
		}
		return n
	}
	within := agree(0, 1) + agree(4, 5)
	across := agree(0, 4) + agree(1, 5)
	if within <= across {
		t.Errorf("no clade signal: within=%d across=%d", within, across)
	}
}

func TestSubstMatrixSymmetry(t *testing.T) {
	r := NewRNG(17)
	m := SubstMatrix(r, 20, 6, -2)
	for i := 0; i < 20; i++ {
		for j := 0; j < 20; j++ {
			if m[i*20+j] != m[j*20+i] {
				t.Fatal("matrix not symmetric")
			}
		}
		if m[i*20+i] < 3 {
			t.Errorf("diagonal %d = %d, want positive match score", i, m[i*20+i])
		}
	}
}

// TestConcurrentDeterminism pins the property the parallel runner
// depends on: workload generation shares no state across goroutines,
// so concurrent same-seed generations are byte-identical. Run with
// -race this also proves the generators touch no shared memory.
func TestConcurrentDeterminism(t *testing.T) {
	generate := func(seed uint64) []byte {
		r := NewRNG(seed)
		var buf bytes.Buffer
		buf.Write(DNASeq(r, 4096))
		buf.Write(ProteinSeq(r, 4096))
		base := ProteinSeq(r, 512)
		buf.Write(MutatedCopy(r, base, 20, 50, 10))
		for _, v := range SubstMatrix(r, 20, 6, -2) {
			buf.WriteByte(byte(v))
		}
		h := NewHMM(r, 64, 20)
		buf.Write(h.Consensus())
		for _, v := range h.Mat {
			buf.WriteByte(byte(v))
		}
		buf.Write(SitePatterns(r, 12, 512))
		return buf.Bytes()
	}
	const workers = 8
	outs := make([][]byte, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i] = generate(1234)
		}(i)
	}
	wg.Wait()
	for i := 1; i < workers; i++ {
		if !bytes.Equal(outs[i], outs[0]) {
			t.Fatalf("goroutine %d produced different bytes for the same seed", i)
		}
	}
}

// Property: Intn(n) is always within range for positive n.
func TestIntnProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		r := NewRNG(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
