// Package workload generates the deterministic synthetic inputs that
// stand in for the BioPerf class-B/class-C datasets: random DNA and
// protein sequences with controllable composition, substitution score
// matrices, profile-HMM parameter sets, and phylogeny site patterns.
// Everything is seeded, so every run of every experiment sees
// identical data.
//
// The package holds no shared state: every generator takes an
// explicit *RNG, and each simulation binds its inputs from a freshly
// seeded generator. Concurrent same-seed generations are therefore
// byte-identical (TestConcurrentDeterminism), which is what lets the
// runner package fan simulations out across goroutines without
// perturbing any workload.
package workload

// RNG is a small splitmix64 generator: fast, deterministic, and
// independent of math/rand's evolution across Go releases.
type RNG struct{ state uint64 }

// NewRNG seeds a generator. Distinct seeds give independent streams.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed*0x9E3779B97F4A7C15 + 1} }

// Next returns the next 64 random bits.
func (r *RNG) Next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.Next() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n).
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		return 0
	}
	return int64(r.Next() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Next()>>11) / (1 << 53)
}

// DNA alphabet used throughout (indices 0..3).
const DNAAlphabet = "ACGT"

// ProteinAlphabet is the 20 amino acids (indices 0..19).
const ProteinAlphabet = "ACDEFGHIKLMNPQRSTVWY"

// DNASeq generates a random DNA sequence of length n as residue
// indices 0..3.
func DNASeq(r *RNG, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = byte(r.Intn(4))
	}
	return s
}

// ProteinSeq generates a random protein sequence of length n as
// residue indices 0..19, with a mildly non-uniform composition
// (hydrophobics slightly enriched, as in real proteins).
func ProteinSeq(r *RNG, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		// Two draws biased toward the first half of the alphabet.
		a := r.Intn(20)
		if r.Intn(4) == 0 {
			a = r.Intn(10)
		}
		s[i] = byte(a)
	}
	return s
}

// MutatedCopy returns a copy of seq where each residue mutates with
// probability pMut/1000 and short indels appear with probability
// pIndel/1000 per position. alphabet is the residue count.
func MutatedCopy(r *RNG, seq []byte, alphabet, pMut, pIndel int) []byte {
	out := make([]byte, 0, len(seq)+8)
	for _, c := range seq {
		roll := r.Intn(1000)
		switch {
		case roll < pIndel/2: // deletion
		case roll < pIndel: // insertion
			out = append(out, byte(r.Intn(alphabet)), c)
		case roll < pIndel+pMut:
			out = append(out, byte(r.Intn(alphabet)))
		default:
			out = append(out, c)
		}
	}
	if len(out) == 0 {
		out = append(out, 0)
	}
	return out
}

// PlantMotif overwrites seq[pos:pos+len(motif)] with a noisy copy of
// motif (per-residue mutation probability pMut/1000).
func PlantMotif(r *RNG, seq, motif []byte, pos, alphabet, pMut int) {
	for i, c := range motif {
		if pos+i >= len(seq) {
			return
		}
		if r.Intn(1000) < pMut {
			c = byte(r.Intn(alphabet))
		}
		seq[pos+i] = c
	}
}

// SubstMatrix builds a symmetric integer substitution matrix over an
// n-letter alphabet: match scores around +matchHi, mismatches around
// mismatchLo, with deterministic jitter (a BLOSUM-flavored shape).
func SubstMatrix(r *RNG, n, matchHi, mismatchLo int) []int64 {
	m := make([]int64, n*n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			var v int64
			if i == j {
				v = int64(matchHi - r.Intn(3))
			} else {
				v = int64(mismatchLo + r.Intn(4) - 1)
			}
			m[i*n+j] = v
			m[j*n+i] = v
		}
	}
	return m
}

// HMM is an integer-scaled profile HMM in the style of HMMER2's Plan7
// (scores are log-odds scaled by 100).
type HMM struct {
	M int // model length
	// Transition scores, indexed 0..M-1.
	TPMM, TPMI, TPMD []int64
	TPIM, TPII       []int64
	TPDM, TPDD       []int64
	// Emission scores: Mat[k*A + residue], Ins[k*A + residue].
	Mat, Ins []int64
	A        int // alphabet size
	// BSC/ESC: begin/end transition scores per state.
	BSC, ESC []int64
}

// NewHMM builds a deterministic random profile HMM with a consensus
// sequence: match states strongly prefer the consensus residue.
func NewHMM(r *RNG, m, alphabet int) *HMM {
	h := &HMM{
		M: m, A: alphabet,
		TPMM: make([]int64, m), TPMI: make([]int64, m), TPMD: make([]int64, m),
		TPIM: make([]int64, m), TPII: make([]int64, m),
		TPDM: make([]int64, m), TPDD: make([]int64, m),
		Mat: make([]int64, m*alphabet), Ins: make([]int64, m*alphabet),
		BSC: make([]int64, m), ESC: make([]int64, m),
	}
	for k := 0; k < m; k++ {
		cons := r.Intn(alphabet)
		for a := 0; a < alphabet; a++ {
			if a == cons {
				h.Mat[k*alphabet+a] = int64(150 + r.Intn(100))
			} else {
				h.Mat[k*alphabet+a] = int64(-80 + r.Intn(60))
			}
			h.Ins[k*alphabet+a] = int64(-25 + r.Intn(20))
		}
		h.TPMM[k] = int64(-10 - r.Intn(10))
		h.TPMI[k] = int64(-300 - r.Intn(200))
		h.TPMD[k] = int64(-350 - r.Intn(200))
		h.TPIM[k] = int64(-100 - r.Intn(100))
		h.TPII[k] = int64(-150 - r.Intn(100))
		h.TPDM[k] = int64(-120 - r.Intn(100))
		h.TPDD[k] = int64(-250 - r.Intn(150))
		h.BSC[k] = int64(-400 - 2*k)
		h.ESC[k] = int64(-50 - r.Intn(30))
	}
	h.BSC[0] = -20
	return h
}

// Consensus emits a sequence sampled from the HMM's match states
// (the highest-scoring residue per state).
func (h *HMM) Consensus() []byte {
	out := make([]byte, h.M)
	for k := 0; k < h.M; k++ {
		best, besta := h.Mat[k*h.A], 0
		for a := 1; a < h.A; a++ {
			if h.Mat[k*h.A+a] > best {
				best, besta = h.Mat[k*h.A+a], a
			}
		}
		out[k] = byte(besta)
	}
	return out
}

// SitePatterns generates aligned DNA site patterns for ntaxa species:
// each site draws an ancestral state and mutates it down two clades.
// Returned as pattern-major: pat[site*ntaxa + taxon] in 0..3.
func SitePatterns(r *RNG, ntaxa, nsites int) []byte {
	out := make([]byte, ntaxa*nsites)
	for s := 0; s < nsites; s++ {
		root := byte(r.Intn(4))
		cladeA := mutate(r, root, 150)
		cladeB := mutate(r, root, 150)
		for t := 0; t < ntaxa; t++ {
			base := cladeA
			if t >= ntaxa/2 {
				base = cladeB
			}
			out[s*ntaxa+t] = mutate(r, base, 100)
		}
	}
	return out
}

func mutate(r *RNG, base byte, p int) byte {
	if r.Intn(1000) < p {
		return byte(r.Intn(4))
	}
	return base
}
