package platform

import "testing"

func TestAllPlatformsWellFormed(t *testing.T) {
	all := All()
	if len(all) != 4 {
		t.Fatalf("want 4 platforms, got %d", len(all))
	}
	for _, p := range all {
		if p.Name == "" || p.Description == "" {
			t.Errorf("platform missing name/description: %+v", p)
		}
		if err := p.Pipeline.Cache.L1.Validate(); err != nil {
			t.Errorf("%s L1: %v", p.Name, err)
		}
		if err := p.Pipeline.Cache.L2.Validate(); err != nil {
			t.Errorf("%s L2: %v", p.Name, err)
		}
		if p.IntRegs < 8 || p.FPRegs < 8 {
			t.Errorf("%s: implausible register budget", p.Name)
		}
		if p.Pipeline.IssueWidth <= 0 || p.Pipeline.WindowSize <= 0 {
			t.Errorf("%s: zero pipeline parameters", p.Name)
		}
	}
}

func TestTable7Parameters(t *testing.T) {
	a := Alpha21264()
	if a.Pipeline.Cache.L1.Size != 64<<10 || a.Pipeline.Cache.L1.Assoc != 2 {
		t.Error("Alpha L1 geometry wrong (Table 7: 64KB 2-way)")
	}
	if a.Pipeline.Cache.Lat.L1 != 3 {
		t.Error("Alpha integer L1 latency must be 3 cycles")
	}
	if a.Pipeline.Cache.L2.Size != 4<<20 || a.Pipeline.Cache.L2.Assoc != 1 {
		t.Error("Alpha L2 geometry wrong (Table 7: 4MB direct-mapped)")
	}

	g5 := PowerPCG5()
	if g5.Pipeline.Cache.L1.Size != 32<<10 || g5.Pipeline.Cache.Lat.L1 != 3 {
		t.Error("G5 L1 wrong (Table 7: 32KB, 3-cycle int)")
	}

	p4 := Pentium4()
	if p4.Pipeline.Cache.L1.Size != 8<<10 || p4.Pipeline.Cache.L1.Assoc != 4 {
		t.Error("P4 L1 wrong (Table 7: 8KB 4-way)")
	}
	if p4.Pipeline.Cache.Lat.L1 != 2 {
		t.Error("P4 integer L1 latency must be 2 cycles")
	}
	if p4.IntRegs != 8 {
		t.Error("P4 must restrict the allocator to 8 integer registers")
	}

	it := Itanium2()
	if !it.Pipeline.InOrder {
		t.Error("Itanium 2 must be in-order")
	}
	if it.Pipeline.Cache.Lat.L1 != 1 {
		t.Error("Itanium integer L1 latency must be 1 cycle")
	}
	if it.Pipeline.IssueWidth != 6 {
		t.Error("Itanium issues 6 per cycle (two bundles)")
	}
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		p, err := ByName(name)
		if err != nil || p.Name != name {
			t.Errorf("ByName(%q) = %v, %v", name, p.Name, err)
		}
	}
	if _, err := ByName("vax"); err == nil {
		t.Error("unknown platform accepted")
	}
}

func TestOrderMatchesPaper(t *testing.T) {
	want := []string{"alpha21264", "ppcg5", "pentium4", "itanium2"}
	got := Names()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}
