// Package platform encodes the paper's four evaluation machines
// (Table 7) as timing-model and compiler configurations: Alpha 21264,
// PowerPC G5, Pentium 4, and Itanium 2. Each platform couples a
// pipeline.Config (widths, window, latencies, cache geometry) with the
// compiler-visible register budget; the Pentium 4's eight logical
// registers are what the paper blames for its small speedups (register
// spills eat the benefit of the added temporaries), and we reproduce
// that by restricting the register allocator on that platform.
package platform

import (
	"fmt"

	"bioperfload/internal/cache"
	"bioperfload/internal/compiler"
	"bioperfload/internal/pipeline"
)

// Platform couples the microarchitectural model with the compilation
// target parameters for one evaluation machine.
type Platform struct {
	Name string
	// Pipeline is the timing-model configuration.
	Pipeline pipeline.Config
	// IntRegs and FPRegs are the Table 7 "Register" row (documentation).
	IntRegs int
	FPRegs  int
	// AllocIntRegs/AllocFPRegs are the compiler's allocatable-register
	// budget on this platform (0 = the toolchain default pool). The
	// Pentium 4 compiles with 8; the Itanium 2 with its large file.
	AllocIntRegs int
	AllocFPRegs  int
	// Description summarizes the Table 7 row.
	Description string
}

// Alpha21264 returns the paper's reference machine: 833 MHz Alpha
// 21264, 64 KB 2-way L1D with 3-cycle integer load-to-use latency,
// 4 MB direct-mapped L2, out-of-order, 32 GPR + 32 FPR.
func Alpha21264() Platform {
	return Platform{
		Name: "alpha21264",
		Pipeline: pipeline.Config{
			Name: "alpha21264", InOrder: false,
			FetchWidth: 4, IssueWidth: 4, RetireWidth: 8,
			WindowSize: 80, LoadPorts: 2,
			FrontEndDepth: 4, MispredictPenalty: 7,
			IntALULat: 1, IntMulLat: 7, IntDivLat: 20,
			FPALULat: 4, FPMulLat: 4, FPDivLat: 15, BranchLat: 1,
			Cache: cache.HierarchyConfig{
				L1:  cache.Config{Name: "L1D", Size: 64 << 10, Assoc: 2, Block: 64, WriteBack: true},
				L2:  cache.Config{Name: "L2", Size: 4 << 20, Assoc: 1, Block: 64, WriteBack: true},
				Lat: cache.Latencies{L1: 3, L2: 5, Mem: 72},
			},
		},
		IntRegs: 32, FPRegs: 32,
		Description: "Alpha 21264, 833 MHz, 64KB 2-way L1D (3-cycle), 4MB DM L2, OoO",
	}
}

// PowerPCG5 returns the 2.7 GHz PowerPC G5 configuration: 32 KB 2-way
// L1D with 3-cycle integer latency, 512 KB 8-way L2, deep out-of-order
// pipeline, 32 GPR + 32 FPR.
func PowerPCG5() Platform {
	return Platform{
		Name: "ppcg5",
		Pipeline: pipeline.Config{
			Name: "ppcg5", InOrder: false,
			FetchWidth: 4, IssueWidth: 4, RetireWidth: 5,
			WindowSize: 100, LoadPorts: 2,
			FrontEndDepth: 8, MispredictPenalty: 13,
			IntALULat: 1, IntMulLat: 7, IntDivLat: 36,
			FPALULat: 6, FPMulLat: 6, FPDivLat: 33, BranchLat: 1,
			Cache: cache.HierarchyConfig{
				L1:  cache.Config{Name: "L1D", Size: 32 << 10, Assoc: 2, Block: 128, WriteBack: true},
				L2:  cache.Config{Name: "L2", Size: 512 << 10, Assoc: 8, Block: 128, WriteBack: true},
				Lat: cache.Latencies{L1: 3, L2: 8, Mem: 200},
			},
		},
		IntRegs: 32, FPRegs: 32,
		Description: "PowerPC G5, 2.7 GHz, 32KB 2-way L1D (3-cycle), 512KB 8-way L2, OoO",
	}
}

// Pentium4 returns the 2.0 GHz Pentium 4 configuration: 8 KB 4-way
// L1D with 2-cycle integer latency, deep pipeline with a large
// misprediction penalty, and — crucially for the paper's analysis —
// only 8 allocatable integer and 8 FP registers.
func Pentium4() Platform {
	return Platform{
		Name: "pentium4",
		Pipeline: pipeline.Config{
			Name: "pentium4", InOrder: false,
			FetchWidth: 3, IssueWidth: 4, RetireWidth: 3,
			WindowSize: 126, LoadPorts: 2,
			FrontEndDepth: 10, MispredictPenalty: 20,
			IntALULat: 1, IntMulLat: 14, IntDivLat: 60,
			FPALULat: 5, FPMulLat: 7, FPDivLat: 38, BranchLat: 1,
			Cache: cache.HierarchyConfig{
				L1:  cache.Config{Name: "L1D", Size: 8 << 10, Assoc: 4, Block: 64, WriteBack: true},
				L2:  cache.Config{Name: "L2", Size: 512 << 10, Assoc: 8, Block: 64, WriteBack: true},
				Lat: cache.Latencies{L1: 2, L2: 16, Mem: 250},
			},
		},
		IntRegs: 8, FPRegs: 8, AllocIntRegs: 8, AllocFPRegs: 8,
		Description: "Pentium 4, 2.0 GHz, 8KB 4-way L1D (2-cycle), 8 GPR/8 FPR, deep OoO",
	}
}

// Itanium2 returns the 1.6 GHz Itanium 2 configuration: in-order
// 6-issue, 16 KB 4-way L1D with single-cycle integer latency, 128
// integer and 128 FP registers.
func Itanium2() Platform {
	return Platform{
		Name: "itanium2",
		Pipeline: pipeline.Config{
			Name: "itanium2", InOrder: true,
			FetchWidth: 6, IssueWidth: 6, RetireWidth: 6,
			WindowSize: 48, LoadPorts: 2,
			FrontEndDepth: 5, MispredictPenalty: 6,
			IntALULat: 1, IntMulLat: 4, IntDivLat: 24,
			FPALULat: 4, FPMulLat: 4, FPDivLat: 24, BranchLat: 1,
			Cache: cache.HierarchyConfig{
				L1:  cache.Config{Name: "L1D", Size: 16 << 10, Assoc: 4, Block: 64, WriteBack: true},
				L2:  cache.Config{Name: "L2", Size: 256 << 10, Assoc: 8, Block: 128, WriteBack: true},
				Lat: cache.Latencies{L1: 1, L2: 5, Mem: 150},
			},
		},
		IntRegs: 128, FPRegs: 128, AllocIntRegs: 48, AllocFPRegs: 48,
		Description: "Itanium 2, 1.6 GHz, 16KB 4-way L1D (1-cycle), in-order 6-issue, 128 GPR/128 FPR",
	}
}

// EvalOptions returns the compiler options a timing evaluation uses
// on this platform: the default optimization level under the
// platform's allocatable-register budget. Platforms with equal
// EvalOptions compile to identical programs, which is what lets the
// fast tier share one functional run across them.
func (p Platform) EvalOptions() compiler.Options {
	return compiler.Options{
		Opt:          compiler.Default().Opt,
		AllocIntRegs: p.AllocIntRegs,
		AllocFPRegs:  p.AllocFPRegs,
	}
}

// WithFidelity returns a copy of the platform with the timing tier
// set — the tier-selection hook callers (service, CLIs) use to route
// a platform's evaluations to the fast scoreboard or the full model.
func (p Platform) WithFidelity(f pipeline.Fidelity) Platform {
	p.Pipeline.Fidelity = f
	return p
}

// All returns the four platforms in the paper's Table 7/8 order.
func All() []Platform {
	return []Platform{Alpha21264(), PowerPCG5(), Pentium4(), Itanium2()}
}

// ByName returns the named platform.
func ByName(name string) (Platform, error) {
	for _, p := range All() {
		if p.Name == name {
			return p, nil
		}
	}
	return Platform{}, fmt.Errorf("platform: unknown machine %q", name)
}

// Names lists the platform names in order.
func Names() []string {
	all := All()
	out := make([]string, len(all))
	for i, p := range all {
		out[i] = p.Name
	}
	return out
}
