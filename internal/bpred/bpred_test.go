package bpred

import (
	"math/rand"
	"testing"
)

func TestCounterSaturation(t *testing.T) {
	c := counter(0)
	if c.dec() != 0 {
		t.Error("dec below 0")
	}
	c = 3
	if c.inc() != 3 {
		t.Error("inc above 3")
	}
	if !counter(2).taken() || counter(1).taken() {
		t.Error("threshold wrong")
	}
}

func TestStatic(t *testing.T) {
	at := &Static{Taken: true}
	ant := &Static{Taken: false}
	if !at.Predict(1) || ant.Predict(1) {
		t.Error("static predictions wrong")
	}
	if at.Name() != "always-taken" || ant.Name() != "always-not-taken" {
		t.Error("names wrong")
	}
}

func TestBimodalLearnsBias(t *testing.T) {
	b := NewBimodal()
	for i := 0; i < 10; i++ {
		b.Update(7, false)
	}
	if b.Predict(7) {
		t.Error("bimodal did not learn not-taken bias")
	}
	for i := 0; i < 10; i++ {
		b.Update(7, true)
	}
	if !b.Predict(7) {
		t.Error("bimodal did not relearn taken bias")
	}
	// Other branches unaffected.
	if !b.Predict(8) {
		t.Error("cold branch should default taken")
	}
}

func TestHybridLearnsLoopPattern(t *testing.T) {
	// A loop branch taken 7 times then not taken, repeating. Local
	// history must learn the exit perfectly after warmup.
	h := NewPaperHybrid()
	tr := NewTracker(h)
	warm := 40
	var missesAfterWarmup uint64
	iter := 0
	for rep := 0; rep < 200; rep++ {
		for i := 0; i < 8; i++ {
			taken := i < 7
			mis := tr.Observe(1, taken)
			if iter >= warm*8 && mis {
				missesAfterWarmup++
			}
			iter++
		}
	}
	if missesAfterWarmup > 0 {
		t.Errorf("hybrid missed %d times on a period-8 loop after warmup", missesAfterWarmup)
	}
}

func TestHybridBiasedBranch(t *testing.T) {
	h := NewPaperHybrid()
	tr := NewTracker(h)
	for i := 0; i < 1000; i++ {
		tr.Observe(5, true)
	}
	if r := tr.Stats(5).MispredictRate(); r > 0.01 {
		t.Errorf("always-taken branch mispredicted at %f", r)
	}
}

func TestHybridRandomBranchIsHard(t *testing.T) {
	h := NewPaperHybrid()
	tr := NewTracker(h)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 20000; i++ {
		tr.Observe(9, rng.Intn(2) == 0)
	}
	r := tr.Stats(9).MispredictRate()
	if r < 0.30 {
		t.Errorf("random branch mispredict rate = %f, want >= 0.30", r)
	}
}

func TestHybridNoAliasing(t *testing.T) {
	// Two branches with opposite fixed behaviour must not disturb
	// each other (per-static-branch state, the paper's requirement).
	h := NewPaperHybrid()
	tr := NewTracker(h)
	for i := 0; i < 2000; i++ {
		tr.Observe(100, true)
		tr.Observe(200, false)
	}
	if r := tr.Stats(100).MispredictRate(); r > 0.02 {
		t.Errorf("branch 100 rate %f", r)
	}
	if r := tr.Stats(200).MispredictRate(); r > 0.02 {
		t.Errorf("branch 200 rate %f", r)
	}
}

func TestHybridCorrelatedBranches(t *testing.T) {
	// Branch B always goes the same way as branch A did: global
	// history must capture it even though B looks random locally.
	h := NewPaperHybrid()
	tr := NewTracker(h)
	rng := rand.New(rand.NewSource(7))
	var mis uint64
	const n = 30000
	for i := 0; i < n; i++ {
		dir := rng.Intn(2) == 0
		tr.Observe(1, dir)
		if tr.Observe(2, dir) && i > n/2 {
			mis++
		}
	}
	rate := float64(mis) / float64(n/2)
	if rate > 0.10 {
		t.Errorf("correlated branch rate after warmup = %f, want < 0.10", rate)
	}
}

func TestTrackerAccounting(t *testing.T) {
	tr := NewTracker(NewBimodal())
	tr.Observe(1, true)
	tr.Observe(1, true)
	tr.Observe(2, false)
	tot := tr.Total()
	if tot.Executed != 3 || tot.Taken != 2 {
		t.Errorf("totals = %+v", tot)
	}
	per := tr.PerBranch()
	if len(per) != 2 || per[1].Executed != 2 || per[2].Executed != 1 {
		t.Errorf("per-branch = %+v", per)
	}
	if s := tr.Stats(99); s.Executed != 0 {
		t.Error("unknown branch should have zero stats")
	}
}

func TestHardToPredict(t *testing.T) {
	tr := NewTracker(NewPaperHybrid())
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		tr.Observe(1, true)             // easy
		tr.Observe(2, rng.Intn(2) == 0) // hard
	}
	tr.Observe(3, false) // cold: executed once only

	hard := tr.HardToPredict(0.05, 100)
	if hard[1] {
		t.Error("easy branch flagged hard")
	}
	if !hard[2] {
		t.Error("random branch not flagged hard")
	}
	if hard[3] {
		t.Error("cold branch flagged despite minExec")
	}
}

func TestMispredictRateZeroExec(t *testing.T) {
	var s BranchStats
	if s.MispredictRate() != 0 {
		t.Error("zero executions should give rate 0")
	}
}

func TestHybridConfigClamping(t *testing.T) {
	h := NewHybrid(HybridConfig{LocalHistoryBits: 0, GlobalHistoryBits: 99})
	// Should fall back to defaults without panicking, and work.
	for i := 0; i < 100; i++ {
		h.Update(1, true)
	}
	if !h.Predict(1) {
		t.Error("clamped hybrid broken")
	}
	if h.Name() != "hybrid" {
		t.Error("name wrong")
	}
}

func BenchmarkHybridObserve(b *testing.B) {
	tr := NewTracker(NewPaperHybrid())
	rng := rand.New(rand.NewSource(1))
	pcs := make([]int32, 64)
	for i := range pcs {
		pcs[i] = int32(rng.Intn(4096))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Observe(pcs[i&63], i&3 != 0)
	}
}
