package bpred

// DenseShard replays the conditional-branch column for one partition
// of static branch PCs, with update rules identical to Hybrid wrapped
// in a Tracker but per-branch state held in PC-indexed slices instead
// of maps.
//
// Sharding is exact because a Hybrid observation touches two kinds of
// state: per-static-branch state (local history, pattern table, choice
// counter, statistics), read and written only by that branch's PC, and
// global state (the gshare table and the global history register),
// advanced by every conditional branch in commit order. A shard that
// sees ALL conditional branches in order — calling Observe for the PCs
// it owns and TrainGlobal for the rest — evolves the global state
// exactly as the serial predictor does, so its owned branches predict,
// train, and count identically to the fused single-lane replay.
// Unioning the per-branch tables of shards with disjoint PC sets (and
// summing their totals) therefore reproduces the serial Tracker
// byte-for-byte.
type DenseShard struct {
	lmask uint64
	gmask uint64
	ghist uint64

	gshare   []uint8
	branches []denseBranch
	total    BranchStats
	seen     int // owned branches with allocated state, sizes PerBranch
}

// denseBranch is one owned static branch's local predictor plus its
// statistics. A nil pattern marks a branch never executed, matching
// the lazily-created map entries of Hybrid.
type denseBranch struct {
	hist    uint64
	pattern []uint8
	choice  uint8 // 0,1 favor global; 2,3 favor local
	stats   BranchStats
}

// NewDenseShard builds a shard with the same configuration clamping as
// NewHybrid, so shards and the reference predictor always agree on
// table geometry.
func NewDenseShard(cfg HybridConfig) *DenseShard {
	if cfg.LocalHistoryBits == 0 || cfg.LocalHistoryBits > 16 {
		cfg.LocalHistoryBits = 10
	}
	if cfg.GlobalHistoryBits == 0 || cfg.GlobalHistoryBits > 24 {
		cfg.GlobalHistoryBits = 12
	}
	return &DenseShard{
		lmask:  (1 << cfg.LocalHistoryBits) - 1,
		gmask:  (1 << cfg.GlobalHistoryBits) - 1,
		gshare: make([]uint8, 1<<cfg.GlobalHistoryBits),
	}
}

// NewPaperDenseShard returns a shard in the paper-reproduction
// configuration (the DefaultHybridConfig geometry).
func NewPaperDenseShard() *DenseShard { return NewDenseShard(DefaultHybridConfig()) }

// Observe processes an owned conditional branch: predict, train both
// components and the choice counter, advance histories, and record
// statistics — the Tracker.Observe/Hybrid.Update sequence. It returns
// true when the branch was mispredicted, for callers joining outcomes
// with other per-branch columns.
func (d *DenseShard) Observe(pc int32, taken bool) bool {
	i := int(pc)
	if i >= len(d.branches) {
		grown := make([]denseBranch, i+i/2+16)
		copy(grown, d.branches)
		d.branches = grown
	}
	b := &d.branches[i]
	if b.pattern == nil {
		b.pattern = make([]uint8, d.lmask+1)
		for j := range b.pattern {
			b.pattern[j] = 2 // weakly taken
		}
		b.choice = 2 // weakly favor local
		d.seen++
	}
	li := b.hist & d.lmask
	gi := (uint64(uint32(pc)) ^ d.ghist) & d.gmask
	localPred := b.pattern[li] >= 2
	globalPred := d.gshare[gi] >= 2
	pred := globalPred
	if b.choice >= 2 {
		pred = localPred
	}

	// Train the choice counter toward whichever component was right
	// when they disagree.
	if localPred != globalPred {
		b.choice = trainCounter(b.choice, localPred == taken)
	}
	b.pattern[li] = trainCounter(b.pattern[li], taken)
	d.gshare[gi] = trainCounter(d.gshare[gi], taken)

	b.hist = (b.hist << 1) | b2u(taken)
	d.ghist = (d.ghist << 1) | b2u(taken)

	b.stats.Executed++
	d.total.Executed++
	if taken {
		b.stats.Taken++
		d.total.Taken++
	}
	if pred != taken {
		b.stats.Mispredicts++
		d.total.Mispredicts++
		return true
	}
	return false
}

// TrainGlobal processes a conditional branch owned by another shard:
// only the global component advances — gshare trains at the index the
// serial predictor would use, and the history register shifts. The
// branch's local state lives in its owning shard.
func (d *DenseShard) TrainGlobal(pc int32, taken bool) {
	gi := (uint64(uint32(pc)) ^ d.ghist) & d.gmask
	d.gshare[gi] = trainCounter(d.gshare[gi], taken)
	d.ghist = (d.ghist << 1) | b2u(taken)
}

// Total returns the shard's aggregate statistics over owned branches.
func (d *DenseShard) Total() BranchStats { return d.total }

// PerBranch returns the shard's per-branch statistics table.
func (d *DenseShard) PerBranch() map[int32]BranchStats {
	out := make(map[int32]BranchStats, d.seen)
	for pc := range d.branches {
		if d.branches[pc].pattern != nil {
			out[int32(pc)] = d.branches[pc].stats
		}
	}
	return out
}

// MergeInto unions the shard's per-branch statistics into per and adds
// its totals into total. Shards own disjoint PC sets, so union never
// collides; callers merging anyway (e.g. a serial shard reused across
// trace segments) get summed entries.
func (d *DenseShard) MergeInto(per map[int32]BranchStats, total *BranchStats) {
	for pc := range d.branches {
		b := &d.branches[pc]
		if b.pattern == nil {
			continue
		}
		s := per[int32(pc)]
		s.Executed += b.stats.Executed
		s.Mispredicts += b.stats.Mispredicts
		s.Taken += b.stats.Taken
		per[int32(pc)] = s
	}
	total.Executed += d.total.Executed
	total.Mispredicts += d.total.Mispredicts
	total.Taken += d.total.Taken
}

// trainCounter advances a saturating 2-bit counter.
func trainCounter(c uint8, taken bool) uint8 {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}
