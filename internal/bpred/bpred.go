// Package bpred implements the branch predictors the paper uses to
// measure branch behaviour. The measurement predictor is "a hybrid
// branch predictor [McFarling-style] with an entry for each static
// branch (i.e., there is no aliasing)" (Section 2.2): a per-branch
// local history predictor and a global gshare predictor arbitrated by
// a per-branch choice counter. Bimodal and static predictors are
// provided as baselines for ablation studies.
package bpred

// Predictor predicts conditional branch outcomes and learns from the
// resolved direction. PC is the static instruction index of the
// branch (unique per static branch, which realizes the paper's
// no-aliasing requirement for per-branch state).
type Predictor interface {
	// Predict returns the predicted direction for the branch at pc.
	Predict(pc int32) bool
	// Update trains the predictor with the actual direction.
	Update(pc int32, taken bool)
	// Name identifies the predictor in reports.
	Name() string
}

// counter is a saturating 2-bit counter: 0,1 predict not-taken; 2,3
// predict taken.
type counter uint8

func (c counter) taken() bool { return c >= 2 }

func (c counter) inc() counter {
	if c < 3 {
		return c + 1
	}
	return c
}

func (c counter) dec() counter {
	if c > 0 {
		return c - 1
	}
	return c
}

func (c counter) train(taken bool) counter {
	if taken {
		return c.inc()
	}
	return c.dec()
}

// Static predicts a fixed direction (ablation baseline).
type Static struct{ Taken bool }

// Predict implements Predictor.
func (s *Static) Predict(int32) bool { return s.Taken }

// Update implements Predictor.
func (s *Static) Update(int32, bool) {}

// Name implements Predictor.
func (s *Static) Name() string {
	if s.Taken {
		return "always-taken"
	}
	return "always-not-taken"
}

// Bimodal keeps one 2-bit counter per static branch.
type Bimodal struct {
	table map[int32]counter
}

// NewBimodal returns an empty bimodal predictor.
func NewBimodal() *Bimodal { return &Bimodal{table: make(map[int32]counter)} }

// Predict implements Predictor. Unseen branches predict taken,
// matching the usual backward-taken loop assumption well enough for a
// cold counter initialized weakly taken.
func (b *Bimodal) Predict(pc int32) bool {
	c, ok := b.table[pc]
	if !ok {
		return true
	}
	return c.taken()
}

// Update implements Predictor.
func (b *Bimodal) Update(pc int32, taken bool) {
	c, ok := b.table[pc]
	if !ok {
		c = 2 // weakly taken
	}
	b.table[pc] = c.train(taken)
}

// Name implements Predictor.
func (b *Bimodal) Name() string { return "bimodal" }

// Hybrid is the paper's measurement predictor: per-static-branch
// local predictor (local history indexing a private pattern table),
// a shared gshare global predictor, and a per-branch choice counter.
type Hybrid struct {
	localBits  uint // local history length
	globalBits uint // global history length / gshare table log2 size

	locals map[int32]*localEntry
	ghist  uint64
	gshare []counter
	gmask  uint64
}

type localEntry struct {
	hist    uint64
	mask    uint64
	pattern []counter
	choice  counter // 0,1 favor global; 2,3 favor local
}

// HybridConfig sizes the hybrid predictor.
type HybridConfig struct {
	LocalHistoryBits  uint // per-branch pattern table has 2^bits counters
	GlobalHistoryBits uint // gshare table has 2^bits counters
}

// DefaultHybridConfig mirrors a 21264-like tournament predictor
// (10-bit local histories, 12-bit global history).
func DefaultHybridConfig() HybridConfig {
	return HybridConfig{LocalHistoryBits: 10, GlobalHistoryBits: 12}
}

// NewHybrid builds the hybrid predictor.
func NewHybrid(cfg HybridConfig) *Hybrid {
	if cfg.LocalHistoryBits == 0 || cfg.LocalHistoryBits > 16 {
		cfg.LocalHistoryBits = 10
	}
	if cfg.GlobalHistoryBits == 0 || cfg.GlobalHistoryBits > 24 {
		cfg.GlobalHistoryBits = 12
	}
	return &Hybrid{
		localBits:  cfg.LocalHistoryBits,
		globalBits: cfg.GlobalHistoryBits,
		locals:     make(map[int32]*localEntry),
		gshare:     make([]counter, 1<<cfg.GlobalHistoryBits),
		gmask:      (1 << cfg.GlobalHistoryBits) - 1,
	}
}

// NewPaperHybrid returns the predictor configuration used for all the
// paper-reproduction measurements.
func NewPaperHybrid() *Hybrid { return NewHybrid(DefaultHybridConfig()) }

func (h *Hybrid) entry(pc int32) *localEntry {
	e := h.locals[pc]
	if e == nil {
		e = &localEntry{
			mask:    (1 << h.localBits) - 1,
			pattern: make([]counter, 1<<h.localBits),
			choice:  2, // weakly favor local
		}
		for i := range e.pattern {
			e.pattern[i] = 2 // weakly taken
		}
		h.locals[pc] = e
	}
	return e
}

func (h *Hybrid) gidx(pc int32) uint64 {
	return (uint64(uint32(pc)) ^ h.ghist) & h.gmask
}

// Predict implements Predictor.
func (h *Hybrid) Predict(pc int32) bool {
	e := h.entry(pc)
	localPred := e.pattern[e.hist&e.mask].taken()
	globalPred := h.gshare[h.gidx(pc)].taken()
	if e.choice.taken() {
		return localPred
	}
	return globalPred
}

// Update implements Predictor.
func (h *Hybrid) Update(pc int32, taken bool) {
	e := h.entry(pc)
	li := e.hist & e.mask
	gi := h.gidx(pc)
	localPred := e.pattern[li].taken()
	globalPred := h.gshare[gi].taken()

	// Train the choice counter toward whichever component was right
	// when they disagree.
	if localPred != globalPred {
		e.choice = e.choice.train(localPred == taken)
	}
	e.pattern[li] = e.pattern[li].train(taken)
	h.gshare[gi] = h.gshare[gi].train(taken)

	e.hist = (e.hist << 1) | b2u(taken)
	h.ghist = (h.ghist << 1) | b2u(taken)
}

// Name implements Predictor.
func (h *Hybrid) Name() string { return "hybrid" }

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// BranchStats tracks per-static-branch prediction accuracy.
type BranchStats struct {
	Executed    uint64
	Mispredicts uint64
	Taken       uint64
}

// MispredictRate returns mispredictions over executions.
func (s BranchStats) MispredictRate() float64 {
	if s.Executed == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.Executed)
}

// Tracker wraps a predictor and records per-branch statistics. It is
// the measurement harness used by the Table 4 analyses: feed it each
// committed conditional branch, then query per-branch or aggregate
// misprediction rates.
type Tracker struct {
	pred  Predictor
	perPC map[int32]*BranchStats
	total BranchStats
}

// NewTracker wraps pred.
func NewTracker(pred Predictor) *Tracker {
	return &Tracker{pred: pred, perPC: make(map[int32]*BranchStats)}
}

// RestoreTracker rebuilds a report-only Tracker from persisted
// per-branch statistics. The predictor state itself is not restored,
// so Observe must not be called on the result; the query methods
// (Stats, Total, PerBranch, HardToPredict) behave as on the original.
func RestoreTracker(per map[int32]BranchStats, total BranchStats) *Tracker {
	t := &Tracker{perPC: make(map[int32]*BranchStats, len(per)), total: total}
	for pc, s := range per {
		c := s
		t.perPC[pc] = &c
	}
	return t
}

// Observe predicts, compares with the actual direction, trains, and
// records statistics. It returns true when the branch was mispredicted.
func (t *Tracker) Observe(pc int32, taken bool) bool {
	pred := t.pred.Predict(pc)
	t.pred.Update(pc, taken)
	s := t.perPC[pc]
	if s == nil {
		s = &BranchStats{}
		t.perPC[pc] = s
	}
	s.Executed++
	t.total.Executed++
	if taken {
		s.Taken++
		t.total.Taken++
	}
	if pred != taken {
		s.Mispredicts++
		t.total.Mispredicts++
		return true
	}
	return false
}

// Stats returns statistics for one static branch.
func (t *Tracker) Stats(pc int32) BranchStats {
	if s := t.perPC[pc]; s != nil {
		return *s
	}
	return BranchStats{}
}

// Total returns aggregate statistics.
func (t *Tracker) Total() BranchStats { return t.total }

// PerBranch returns a copy of the per-branch table.
func (t *Tracker) PerBranch() map[int32]BranchStats {
	out := make(map[int32]BranchStats, len(t.perPC))
	for pc, s := range t.perPC {
		out[pc] = *s
	}
	return out
}

// HardToPredict reports the static branches whose misprediction rate
// is at least threshold (the paper's Table 4(b) uses 5%) and that
// executed at least minExec times (to suppress cold noise).
func (t *Tracker) HardToPredict(threshold float64, minExec uint64) map[int32]bool {
	out := make(map[int32]bool)
	for pc, s := range t.perPC {
		if s.Executed >= minExec && s.MispredictRate() >= threshold {
			out[pc] = true
		}
	}
	return out
}
