package bpred

import (
	"math/rand"
	"reflect"
	"testing"
)

// branchStream generates a correlated random branch trace over nPCs
// static branches: loop-like branches mostly taken, data-dependent
// ones alternating, so both predictor components get exercised.
func branchStream(n, nPCs int, seed int64) ([]int32, []bool) {
	r := rand.New(rand.NewSource(seed))
	pcs := make([]int32, n)
	taken := make([]bool, n)
	for i := range pcs {
		pc := int32(r.Intn(nPCs))
		pcs[i] = pc
		switch pc % 3 {
		case 0:
			taken[i] = r.Intn(10) != 0 // loop back-edge
		case 1:
			taken[i] = i%2 == 0 // alternating
		default:
			taken[i] = r.Intn(2) == 0 // noise
		}
	}
	return pcs, taken
}

// TestDenseShardMatchesTracker pins the exactness argument in the
// DenseShard doc comment: partition the PCs across shards, feed every
// shard the full branch stream (Observe when owned, TrainGlobal when
// not), and require the merged statistics to equal a serial
// Tracker(NewPaperHybrid) byte-for-byte.
func TestDenseShardMatchesTracker(t *testing.T) {
	for _, nShards := range []int{1, 2, 4, 7} {
		pcs, taken := branchStream(20000, 97, int64(nShards))

		ref := NewTracker(NewPaperHybrid())
		for i, pc := range pcs {
			ref.Observe(pc, taken[i])
		}

		shards := make([]*DenseShard, nShards)
		for s := range shards {
			shards[s] = NewPaperDenseShard()
		}
		for i, pc := range pcs {
			owner := int(pc) % nShards
			for s, sh := range shards {
				if s == owner {
					sh.Observe(pc, taken[i])
				} else {
					sh.TrainGlobal(pc, taken[i])
				}
			}
		}

		per := make(map[int32]BranchStats)
		var total BranchStats
		for _, sh := range shards {
			sh.MergeInto(per, &total)
		}
		if total != ref.Total() {
			t.Fatalf("%d shards: total %+v, want %+v", nShards, total, ref.Total())
		}
		if !reflect.DeepEqual(per, ref.PerBranch()) {
			t.Fatalf("%d shards: per-branch tables diverge", nShards)
		}
		if pb := shards[0].PerBranch(); nShards > 1 && len(pb) >= len(per) {
			t.Fatalf("shard 0 owns %d branches of %d total — partition not applied", len(pb), len(per))
		}
	}
}

// TestDenseShardRestores checks the merged statistics round-trip
// through RestoreTracker the way the replay engine rebuilds its final
// Analysis.
func TestDenseShardRestores(t *testing.T) {
	pcs, taken := branchStream(5000, 31, 5)
	sh := NewPaperDenseShard()
	for i, pc := range pcs {
		sh.Observe(pc, taken[i])
	}
	per := make(map[int32]BranchStats)
	var total BranchStats
	sh.MergeInto(per, &total)
	tr := RestoreTracker(per, total)
	if tr.Total() != sh.Total() {
		t.Fatalf("restored total %+v, want %+v", tr.Total(), sh.Total())
	}
	for pc, s := range sh.PerBranch() {
		if tr.Stats(pc) != s {
			t.Fatalf("pc %d: restored %+v, want %+v", pc, tr.Stats(pc), s)
		}
	}
}
