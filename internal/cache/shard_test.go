package cache

import (
	"math/rand"
	"testing"
)

func TestShardCount(t *testing.T) {
	pc := PaperConfig()
	// Paper hierarchy: 512 L1 sets, 65536 L2 sets, equal 64B blocks.
	for _, c := range []struct{ limit, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 2}, {8, 8}, {512, 512}, {1024, 512},
	} {
		if got := ShardCount(pc, c.limit); got != c.want {
			t.Errorf("ShardCount(paper, %d) = %d, want %d", c.limit, got, c.want)
		}
	}
	mixed := pc
	mixed.L2.Block = 128
	if got := ShardCount(mixed, 8); got != 1 {
		t.Errorf("mismatched block sizes: ShardCount = %d, want 1", got)
	}
	bad := pc
	bad.L1.Size = 3000 // not a power-of-two set count
	if got := ShardCount(bad, 8); got != 1 {
		t.Errorf("invalid config: ShardCount = %d, want 1", got)
	}
}

// TestShardedHierarchyMatchesSerial pins the exactness argument in the
// ShardCount doc comment: route each access of a shared-locality
// random trace to its shard's private Hierarchy, and require the
// summed per-level stats (and every per-access result) to match one
// serial Hierarchy.
func TestShardedHierarchyMatchesSerial(t *testing.T) {
	cfg := PaperConfig()
	for _, n := range []int{1, 2, 4, 8} {
		if got := ShardCount(cfg, n); got != n {
			t.Fatalf("ShardCount(paper, %d) = %d", n, got)
		}
		serial := NewHierarchy(cfg)
		shards := make([]*Hierarchy, n)
		for i := range shards {
			shards[i] = NewHierarchy(cfg)
		}
		r := rand.New(rand.NewSource(int64(n)))
		// Mix of hot lines (LRU churn within sets), sequential sweeps
		// (evictions + writebacks), and cold misses.
		hot := make([]uint64, 64)
		for i := range hot {
			hot[i] = uint64(1 + r.Intn(1<<16))
		}
		sweep := uint64(1 << 20)
		for i := 0; i < 200000; i++ {
			var addr uint64
			switch r.Intn(4) {
			case 0, 1:
				addr = hot[r.Intn(len(hot))]
			case 2:
				sweep += cfg.L1.Block
				addr = sweep
			default:
				addr = uint64(1 + r.Intn(1<<28))
			}
			isStore := r.Intn(3) == 0
			wantLvl, wantLat := serial.Access(addr, isStore)
			gotLvl, gotLat := shards[ShardOf(addr, cfg.L1.Block, n)].Access(addr, isStore)
			if gotLvl != wantLvl || gotLat != wantLat {
				t.Fatalf("n=%d access %d (addr %#x store %v): got %v/%d want %v/%d",
					n, i, addr, isStore, gotLvl, gotLat, wantLvl, wantLat)
			}
		}
		var l1, l2 Stats
		for _, sh := range shards {
			l1.Add(sh.L1().Stats())
			l2.Add(sh.L2().Stats())
		}
		if l1 != serial.L1().Stats() {
			t.Fatalf("n=%d: L1 stats %+v, want %+v", n, l1, serial.L1().Stats())
		}
		if l2 != serial.L2().Stats() {
			t.Fatalf("n=%d: L2 stats %+v, want %+v", n, l2, serial.L2().Stats())
		}
	}
}
