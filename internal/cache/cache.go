// Package cache simulates the paper's two-level data-cache hierarchy
// (Table 3): a 64 KB 2-way 64 B-block write-back write-allocate L1
// data cache in front of a 4 MB direct-mapped 64 B-block L2, with the
// 3/5/72-cycle L1/L2/memory latencies used in the paper's AMAT
// arithmetic (Section 2.1).
package cache

import (
	"fmt"
	"math/bits"
)

// Config describes one cache level.
type Config struct {
	Name      string
	Size      uint64 // total bytes
	Assoc     int    // ways; Size/(Assoc*Block) sets
	Block     uint64 // line size in bytes
	WriteBack bool   // write-back + write-allocate when true
}

// Validate checks the geometry is a power-of-two and consistent.
func (c Config) Validate() error {
	if c.Size == 0 || c.Block == 0 || c.Assoc <= 0 {
		return fmt.Errorf("cache %s: zero geometry", c.Name)
	}
	if c.Size&(c.Size-1) != 0 || c.Block&(c.Block-1) != 0 {
		return fmt.Errorf("cache %s: size/block must be powers of two", c.Name)
	}
	sets := c.Size / (uint64(c.Assoc) * c.Block)
	if sets == 0 || sets&(sets-1) != 0 {
		return fmt.Errorf("cache %s: %d sets (must be a power of two >= 1)", c.Name, sets)
	}
	return nil
}

// Stats accumulates per-level access statistics.
type Stats struct {
	Accesses    uint64 // loads + stores presented to this level
	LoadHits    uint64
	LoadMisses  uint64
	StoreHits   uint64
	StoreMisses uint64
	Writebacks  uint64
}

// Misses returns total misses at this level.
func (s Stats) Misses() uint64 { return s.LoadMisses + s.StoreMisses }

// LocalMissRate is misses at this level over accesses to this level.
func (s Stats) LocalMissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses()) / float64(s.Accesses)
}

// LoadMissRate is load misses over load accesses at this level (the
// paper's Table 2 reports load behaviour).
func (s Stats) LoadMissRate() float64 {
	loads := s.LoadHits + s.LoadMisses
	if loads == 0 {
		return 0
	}
	return float64(s.LoadMisses) / float64(loads)
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	// age is the LRU timestamp; the smallest age in a set is the
	// victim.
	age uint64
}

// Cache is one set-associative level. It models tags only (no data).
type Cache struct {
	cfg      Config
	sets     [][]line
	setShift uint
	setMask  uint64
	tick     uint64
	stats    Stats
}

// New builds a cache from cfg; panics on invalid geometry (a
// programming error, since configs are compile-time constants).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	numSets := cfg.Size / (uint64(cfg.Assoc) * cfg.Block)
	sets := make([][]line, numSets)
	backing := make([]line, numSets*uint64(cfg.Assoc))
	for i := range sets {
		sets[i] = backing[uint64(i)*uint64(cfg.Assoc) : (uint64(i)+1)*uint64(cfg.Assoc)]
	}
	return &Cache{
		cfg:      cfg,
		sets:     sets,
		setShift: uint(bits.TrailingZeros64(cfg.Block)),
		setMask:  numSets - 1,
	}
}

// Config returns the geometry.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// SetStats overwrites the counters. It exists to restore persisted
// report state (the cache contents are NOT restored): a cache whose
// stats were set this way reports correctly but must not be accessed
// further.
func (c *Cache) SetStats(s Stats) { c.stats = s }

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for i := range c.sets {
		for j := range c.sets[i] {
			c.sets[i][j] = line{}
		}
	}
	c.stats = Stats{}
	c.tick = 0
}

// AccessResult reports what one access did.
type AccessResult struct {
	Hit        bool
	Evicted    bool   // a valid line was displaced
	Writeback  bool   // the displaced line was dirty
	VictimAddr uint64 // block address of the displaced line
}

// Access presents one load (isStore=false) or store (isStore=true) to
// the cache and updates LRU state. On a miss the block is allocated
// (write-allocate); the displaced victim, if dirty, is reported as a
// writeback for the next level.
func (c *Cache) Access(addr uint64, isStore bool) AccessResult {
	c.tick++
	c.stats.Accesses++
	blockAddr := addr >> c.setShift
	setIdx := blockAddr & c.setMask
	tag := blockAddr >> uint(bits.TrailingZeros64(uint64(len(c.sets))))
	set := c.sets[setIdx]

	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].age = c.tick
			if isStore {
				c.stats.StoreHits++
				if c.cfg.WriteBack {
					set[i].dirty = true
				}
			} else {
				c.stats.LoadHits++
			}
			return AccessResult{Hit: true}
		}
	}

	// Miss: allocate, evicting LRU.
	if isStore {
		c.stats.StoreMisses++
	} else {
		c.stats.LoadMisses++
	}
	victim := -1
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
	}
	if victim < 0 {
		victim = 0
		for i := 1; i < len(set); i++ {
			if set[i].age < set[victim].age {
				victim = i
			}
		}
	}
	res := AccessResult{}
	if set[victim].valid {
		res.Evicted = true
		res.VictimAddr = (set[victim].tag*uint64(len(c.sets)) + setIdx) << c.setShift
		if set[victim].dirty {
			res.Writeback = true
			c.stats.Writebacks++
		}
	}
	set[victim] = line{tag: tag, valid: true, dirty: isStore && c.cfg.WriteBack, age: c.tick}
	return res
}

// Contains reports whether addr's block is resident (no LRU update).
func (c *Cache) Contains(addr uint64) bool {
	blockAddr := addr >> c.setShift
	setIdx := blockAddr & c.setMask
	tag := blockAddr >> uint(bits.TrailingZeros64(uint64(len(c.sets))))
	for _, l := range c.sets[setIdx] {
		if l.valid && l.tag == tag {
			return true
		}
	}
	return false
}
