package cache

// Latencies holds the access latencies (in cycles) the paper uses for
// its average-memory-access-time arithmetic: "our system's L1, L2, and
// main memory latencies of 3, 5, and 72 cycles" (Section 2.1).
type Latencies struct {
	L1  int
	L2  int
	Mem int
}

// HierarchyConfig is a two-level hierarchy plus latencies.
type HierarchyConfig struct {
	L1  Config
	L2  Config
	Lat Latencies
}

// PaperConfig returns the paper's Table 3 cache subsystem: 64 KB 2-way
// 64 B write-back write-allocate L1D, 4 MB direct-mapped 64 B L2, with
// 3/5/72-cycle latencies.
func PaperConfig() HierarchyConfig {
	return HierarchyConfig{
		L1:  Config{Name: "L1D", Size: 64 << 10, Assoc: 2, Block: 64, WriteBack: true},
		L2:  Config{Name: "L2", Size: 4 << 20, Assoc: 1, Block: 64, WriteBack: true},
		Lat: Latencies{L1: 3, L2: 5, Mem: 72},
	}
}

// Level identifies where an access was satisfied.
type Level int

const (
	// LevelL1 means the access hit in the L1 data cache.
	LevelL1 Level = iota
	// LevelL2 means it missed L1 and hit L2.
	LevelL2
	// LevelMem means it missed both caches.
	LevelMem
)

func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	default:
		return "mem"
	}
}

// Hierarchy simulates an L1 backed by an L2 backed by main memory.
type Hierarchy struct {
	cfg HierarchyConfig
	l1  *Cache
	l2  *Cache
}

// NewHierarchy builds the two-level hierarchy.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	return &Hierarchy{cfg: cfg, l1: New(cfg.L1), l2: New(cfg.L2)}
}

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() HierarchyConfig { return h.cfg }

// L1 returns the first-level cache.
func (h *Hierarchy) L1() *Cache { return h.l1 }

// L2 returns the second-level cache.
func (h *Hierarchy) L2() *Cache { return h.l2 }

// Access runs one load or store through the hierarchy and returns the
// level that satisfied it together with its latency in cycles.
//
// Latency accounting follows the paper's AMAT formula: an L1 hit costs
// Lat.L1; an L1 miss adds Lat.L2; an L2 miss adds Lat.Mem on top.
func (h *Hierarchy) Access(addr uint64, isStore bool) (Level, int) {
	r1 := h.l1.Access(addr, isStore)
	lat := h.cfg.Lat.L1
	lvl := LevelL1
	if !r1.Hit {
		// The fill request reads from L2; a write-allocate store
		// also fetches the block first, so the L2 access is a
		// read either way.
		r2 := h.l2.Access(addr, false)
		lat += h.cfg.Lat.L2
		lvl = LevelL2
		if !r2.Hit {
			lat += h.cfg.Lat.Mem
			lvl = LevelMem
		}
	}
	// Dirty victims written back from L1 update (or allocate into)
	// the L2. Writebacks are off the critical path and add no
	// latency to this access.
	if r1.Writeback {
		h.l2.Access(r1.VictimAddr, true)
	}
	return lvl, lat
}

// Reset clears both levels.
func (h *Hierarchy) Reset() {
	h.l1.Reset()
	h.l2.Reset()
}

// Report summarizes hierarchy behaviour for loads the way the paper's
// Table 2 does.
type Report struct {
	// L1Local is the L1 load miss rate (misses/L1 load accesses).
	L1Local float64
	// L2Local is the L2 local miss rate (L2 misses/L2 accesses).
	L2Local float64
	// Overall is the fraction of loads that reach main memory.
	Overall float64
	// AMAT is the paper's formula: L1 + L1local*(L2 + L2local*Mem).
	AMAT float64
}

// LoadReport computes the Table 2 row from the current counters. The
// paper reports load behaviour, so the L1 rate uses load accesses; the
// L2 local rate uses all demand accesses at L2 (which are L1 misses).
func (h *Hierarchy) LoadReport() Report {
	s1 := h.l1.Stats()
	s2 := h.l2.Stats()
	r := Report{
		L1Local: s1.LoadMissRate(),
		L2Local: s2.LocalMissRate(),
	}
	r.Overall = r.L1Local * r.L2Local
	lat := h.cfg.Lat
	r.AMAT = float64(lat.L1) + r.L1Local*(float64(lat.L2)+r.L2Local*float64(lat.Mem))
	return r
}
