package cache

// Add accumulates o into s. Shard hierarchies own disjoint set
// partitions, so summing their per-level stats reproduces the serial
// hierarchy's counters exactly.
func (s *Stats) Add(o Stats) {
	s.Accesses += o.Accesses
	s.LoadHits += o.LoadHits
	s.LoadMisses += o.LoadMisses
	s.StoreHits += o.StoreHits
	s.StoreMisses += o.StoreMisses
	s.Writebacks += o.Writebacks
}

// ShardCount returns the number of address-partition shards (a power
// of two, at most limit) across which replay can simulate hc's
// hierarchy in parallel with results identical to a single serial
// hierarchy.
//
// The partition keys on low block-number bits: shard(addr) =
// (addr/Block) & (n-1). Correctness needs every access that can touch
// a given cache set — including L2 accesses induced by L1 misses and
// dirty-victim writebacks — to land in the set's shard:
//
//   - With n ≤ sets at a level, the shard bits are the low bits of
//     that level's set index, so each shard owns a disjoint group of
//     sets and no line ever migrates between shards.
//   - L1 victims come from the set being filled, hence share its shard;
//     the writeback's L2 access stays in-shard because both levels key
//     the shard off the same block-number bits — which requires equal
//     block sizes at both levels.
//
// Within a shard, accesses keep their relative commit order, so LRU
// decisions per set are unchanged (each Cache's private tick counter
// advances differently than in the serial run, but LRU compares ages
// only within one set, where order is preserved). Hence n =
// min(2^⌊log2(limit)⌋, L1 sets, L2 sets), or 1 when the block sizes
// differ or any configuration is invalid.
func ShardCount(hc HierarchyConfig, limit int) int {
	if limit < 1 {
		return 1
	}
	if hc.L1.Validate() != nil || hc.L2.Validate() != nil || hc.L1.Block != hc.L2.Block {
		return 1
	}
	n := 1
	for n*2 <= limit {
		n *= 2
	}
	if s := int(hc.L1.Size / (uint64(hc.L1.Assoc) * hc.L1.Block)); n > s {
		n = s
	}
	if s := int(hc.L2.Size / (uint64(hc.L2.Assoc) * hc.L2.Block)); n > s {
		n = s
	}
	return n
}

// ShardOf returns the shard owning addr under an n-way partition
// produced by ShardCount for a hierarchy with the given block size.
// n must be a power of two.
func ShardOf(addr uint64, block uint64, n int) int {
	return int((addr / block) & uint64(n-1))
}
