package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func small() Config {
	return Config{Name: "t", Size: 1024, Assoc: 2, Block: 64, WriteBack: true}
}

func TestConfigValidate(t *testing.T) {
	if err := small().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Name: "z"},
		{Name: "np2", Size: 1000, Assoc: 2, Block: 64},
		{Name: "blk", Size: 1024, Assoc: 2, Block: 48},
		{Name: "sets", Size: 1024, Assoc: 3, Block: 64},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %s accepted", c.Name)
		}
	}
	if err := PaperConfig().L1.Validate(); err != nil {
		t.Error(err)
	}
	if err := PaperConfig().L2.Validate(); err != nil {
		t.Error(err)
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := New(small())
	if r := c.Access(0x100, false); r.Hit {
		t.Error("cold access hit")
	}
	if r := c.Access(0x100, false); !r.Hit {
		t.Error("second access missed")
	}
	if r := c.Access(0x13F, false); !r.Hit {
		t.Error("same-block access missed")
	}
	if r := c.Access(0x140, false); r.Hit {
		t.Error("next-block access hit")
	}
	s := c.Stats()
	if s.LoadHits != 2 || s.LoadMisses != 2 {
		t.Errorf("stats = %+v", s)
	}
}

func TestLRUReplacement(t *testing.T) {
	// 2-way, 8 sets (1024/2/64). Three blocks mapping to set 0:
	// block addresses 0, 8, 16 (stride = numSets blocks).
	c := New(small())
	a0, a1, a2 := uint64(0), uint64(8*64), uint64(16*64)
	c.Access(a0, false)
	c.Access(a1, false)
	c.Access(a0, false) // a0 now MRU; a1 is LRU
	if r := c.Access(a2, false); r.Hit {
		t.Fatal("a2 should miss")
	}
	if !c.Contains(a0) {
		t.Error("MRU line a0 evicted")
	}
	if c.Contains(a1) {
		t.Error("LRU line a1 survived")
	}
	if !c.Contains(a2) {
		t.Error("a2 not allocated")
	}
}

func TestWritebackOnDirtyEviction(t *testing.T) {
	c := New(small())
	a0, a1, a2 := uint64(0), uint64(8*64), uint64(16*64)
	c.Access(a0, true) // dirty
	c.Access(a1, false)
	r := c.Access(a2, false) // evicts a0 (LRU, dirty)
	if !r.Evicted || !r.Writeback {
		t.Fatalf("eviction result = %+v", r)
	}
	if r.VictimAddr != a0 {
		t.Errorf("victim addr = %#x, want %#x", r.VictimAddr, a0)
	}
	if c.Stats().Writebacks != 1 {
		t.Errorf("writebacks = %d", c.Stats().Writebacks)
	}
}

func TestCleanEvictionNoWriteback(t *testing.T) {
	c := New(small())
	c.Access(0, false)
	c.Access(8*64, false)
	r := c.Access(16*64, false)
	if !r.Evicted || r.Writeback {
		t.Fatalf("clean eviction result = %+v", r)
	}
}

func TestDirectMapped(t *testing.T) {
	c := New(Config{Name: "dm", Size: 512, Assoc: 1, Block: 64, WriteBack: true})
	// 8 sets. Two conflicting blocks ping-pong.
	a, b := uint64(0), uint64(512)
	for i := 0; i < 4; i++ {
		if r := c.Access(a, false); r.Hit {
			t.Fatal("conflict miss expected for a")
		}
		if r := c.Access(b, false); r.Hit {
			t.Fatal("conflict miss expected for b")
		}
	}
	if c.Stats().LoadMisses != 8 {
		t.Errorf("misses = %d, want 8", c.Stats().LoadMisses)
	}
}

func TestReset(t *testing.T) {
	c := New(small())
	c.Access(0, true)
	c.Reset()
	if c.Stats().Accesses != 0 || c.Contains(0) {
		t.Error("reset incomplete")
	}
}

func TestSmallWorkingSetHitsAfterWarmup(t *testing.T) {
	// The paper's key cache observation: chunked access patterns that
	// fit in L1 produce only compulsory misses.
	h := NewHierarchy(PaperConfig())
	const chunk = 32 << 10 // half the L1
	for pass := 0; pass < 10; pass++ {
		for a := uint64(0); a < chunk; a += 8 {
			h.Access(a, false)
		}
	}
	rep := h.LoadReport()
	// 512 compulsory misses out of 40960 accesses = 1.25% overall;
	// steady state after warmup ~ 0 additional misses.
	s := h.L1().Stats()
	if s.LoadMisses != chunk/64 {
		t.Errorf("L1 misses = %d, want %d compulsory", s.LoadMisses, chunk/64)
	}
	// All 512 misses are compulsory and also miss L2, so
	// AMAT = 3 + 0.0125*(5+72) ~= 3.96; the dominating term is the
	// 3-cycle L1 hit latency, as the paper observes.
	if rep.AMAT < 3.9 || rep.AMAT > 4.0 {
		t.Errorf("AMAT = %f, want ~3.96", rep.AMAT)
	}
	if rep.Overall != rep.L1Local*rep.L2Local {
		t.Error("overall rate inconsistent")
	}
}

func TestHierarchyLevelsAndLatency(t *testing.T) {
	h := NewHierarchy(PaperConfig())
	lvl, lat := h.Access(0x4000, false)
	if lvl != LevelMem || lat != 3+5+72 {
		t.Errorf("cold access: %v %d", lvl, lat)
	}
	lvl, lat = h.Access(0x4000, false)
	if lvl != LevelL1 || lat != 3 {
		t.Errorf("warm access: %v %d", lvl, lat)
	}
	// Evict from L1 but stay in L2: L1 has 512 sets; touch two more
	// blocks in the same L1 set (stride = 512 blocks = 32 KiB).
	h.Access(0x4000+32<<10, false)
	h.Access(0x4000+64<<10, false)
	lvl, lat = h.Access(0x4000, false)
	if lvl != LevelL2 || lat != 8 {
		t.Errorf("L2 hit: %v %d, want L2 8", lvl, lat)
	}
}

func TestPaperAMATFormula(t *testing.T) {
	// Blast's Table 2 row: 1.78% L1, 4.05% L2 -> AMAT 3.14.
	r := Report{L1Local: 0.0178, L2Local: 0.0405}
	lat := PaperConfig().Lat
	amat := float64(lat.L1) + r.L1Local*(float64(lat.L2)+r.L2Local*float64(lat.Mem))
	if amat < 3.13 || amat > 3.15 {
		t.Errorf("paper AMAT formula gives %f, want ~3.14", amat)
	}
}

func TestLevelString(t *testing.T) {
	if LevelL1.String() != "L1" || LevelL2.String() != "L2" || LevelMem.String() != "mem" {
		t.Error("Level strings wrong")
	}
}

// Property: hits + misses == accesses, and a repeated address always
// hits the second time in a row.
func TestAccountingInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New(small())
		for i := 0; i < 500; i++ {
			addr := uint64(rng.Intn(1 << 14))
			c.Access(addr, rng.Intn(2) == 0)
			if !c.Contains(addr) {
				return false // just-accessed block must be resident
			}
		}
		s := c.Stats()
		return s.LoadHits+s.LoadMisses+s.StoreHits+s.StoreMisses == s.Accesses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: a cache never holds more distinct blocks than its capacity.
func TestCapacityInvariant(t *testing.T) {
	c := New(small()) // 16 lines total
	present := 0
	for a := uint64(0); a < 1<<16; a += 64 {
		c.Access(a, false)
	}
	for a := uint64(0); a < 1<<16; a += 64 {
		if c.Contains(a) {
			present++
		}
	}
	if present > 16 {
		t.Errorf("%d blocks resident, capacity 16", present)
	}
}

func BenchmarkHierarchyAccess(b *testing.B) {
	h := NewHierarchy(PaperConfig())
	for i := 0; i < b.N; i++ {
		h.Access(uint64(i*8)&0xFFFFF, i&7 == 0)
	}
}
