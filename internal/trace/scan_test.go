package trace

import (
	"bufio"
	"bytes"
	"context"
	"io"
	"testing"

	"bioperfload/internal/isa"
	"bioperfload/internal/sim"
)

// TestScanPCRunsMatchesRange pins the fast PC-only scan to the full
// decoder: expanding the runs ScanPCRuns reports must reproduce, event
// for event, the PC sequence Range decodes — over the whole file and
// over sub-ranges that start and end mid-stream.
func TestScanPCRunsMatchesRange(t *testing.T) {
	const n, chunk = 10000, 256
	data, evs, prog := writeTestTrace(t, n, chunk)
	ir, err := NewIndexedReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, rng := range [][2]int{
		{0, ir.Chunks()},
		{0, 1},
		{3, 9},
		{ir.Chunks() - 1, ir.Chunks()},
		{5, 5},
	} {
		lo, hi := rng[0], rng[1]
		var got []int32
		err := ir.ScanPCRuns(ctx, prog, lo, hi, func(pc, n int32) {
			if n <= 0 {
				t.Fatalf("ScanPCRuns(%d,%d): empty run at pc %d", lo, hi, pc)
			}
			for i := int32(0); i < n; i++ {
				got = append(got, pc+i)
			}
		})
		if err != nil {
			t.Fatalf("ScanPCRuns(%d,%d): %v", lo, hi, err)
		}
		start, end := int(ir.Base(lo)), n
		if hi < ir.Chunks() {
			end = int(ir.Base(hi))
		}
		if lo == hi {
			end = start
		}
		want := evs[start:end]
		if len(got) != len(want) {
			t.Fatalf("ScanPCRuns(%d,%d): %d events, want %d", lo, hi, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i].PC {
				t.Fatalf("ScanPCRuns(%d,%d): event %d PC=%d, want %d", lo, hi, i, got[i], want[i].PC)
			}
		}
	}
}

// TestScanPCRunsV2BackCompat pins the scan on a format-v2 stream,
// where all four bitmaps precede the PC deltas: today's writer emits
// v3, but stored v2 artifacts must keep scanning correctly.
func TestScanPCRunsV2BackCompat(t *testing.T) {
	const n, chunk = 5000, 256
	data, evs, prog := writeTestTraceVersion(t, n, chunk, 2)
	ir, err := NewIndexedReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if ir.Version() != 2 {
		t.Fatalf("Version=%d, want 2", ir.Version())
	}
	var got []int32
	err = ir.ScanPCRuns(context.Background(), prog, 0, ir.Chunks(), func(pc, n int32) {
		for i := int32(0); i < n; i++ {
			got = append(got, pc+i)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("scanned %d events, want %d", len(got), n)
	}
	for i := range evs {
		if got[i] != evs[i].PC {
			t.Fatalf("event %d: PC=%d, want %d", i, got[i], evs[i].PC)
		}
	}
}

// TestWriterEmitsSplitFrames pins the frame kind the writer produces:
// when compression wins, chunks must use the split encoding (the PC
// column — or, for v4, the token stream — as its own flate stream),
// since that is what lets ScanPCRuns and ScanRunTokens skip
// decompressing the taken/target/address columns. A silent fallback to
// whole-chunk flate would keep every test green but forfeit the scan
// speedup. The recorded stream is loopy, like real kernels, so its
// chunks genuinely compress; tiny high-entropy test chunks
// legitimately store as compressionNone instead.
func TestWriterEmitsSplitFrames(t *testing.T) {
	for _, version := range []int{3, 4} {
		prog := testProgramMixed(256)
		var buf bytes.Buffer
		tw := NewWriterVersion(&buf, Meta{Program: prog.Name, Size: "test"}, prog, version)
		batch := make([]sim.Event, 512)
		seq := uint64(0)
		for rep := 0; rep < 80; rep++ { // ~40k events, 2+ full-size chunks
			for i := range batch {
				pc := int32(i % 128)
				ev := sim.Event{Seq: seq, PC: pc, Inst: &prog.Insts[pc], Target: (pc + 1) % 128}
				switch isa.ClassOf(prog.Insts[pc].Op) {
				case isa.ClassLoad, isa.ClassStore:
					// Strided addresses: per-site deltas repeat, so the
					// address column genuinely compresses.
					ev.Addr = uint64(0x10000 + int(pc)<<4 + (rep%16)<<10)
				case isa.ClassCondBranch:
					ev.Taken = rep%3 == 0
				case isa.ClassUncondBranch:
					ev.Taken = true
				}
				batch[i] = ev
				seq++
			}
			tw.ObserveBatch(batch)
		}
		if err := tw.Close(); err != nil {
			t.Fatal(err)
		}
		data := buf.Bytes()
		ir, err := NewIndexedReader(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			t.Fatal(err)
		}
		var payloadBuf []byte
		split := 0
		for chunk := 0; chunk < ir.Chunks(); chunk++ {
			start := ir.chunks[chunk].offset
			br := bufio.NewReader(io.NewSectionReader(ir.ra, start, ir.rangeEnd(chunk+1)-start))
			f, err := readFrame(br, &payloadBuf)
			if err != nil {
				t.Fatalf("v%d chunk %d: %v", version, chunk, err)
			}
			switch f.kind {
			case compressionSplit:
				split++
			case compressionFlate:
				t.Errorf("v%d chunk %d: writer emitted whole-chunk flate; want split or none", version, chunk)
			}
		}
		if split == 0 {
			t.Errorf("v%d: no chunk of a loopy %d-event trace used split compression", version, seq)
		}
	}
}

// TestScanPCRunsCancellation checks that a cancelled context stops the
// scan with the context's error.
func TestScanPCRunsCancellation(t *testing.T) {
	data, _, prog := writeTestTrace(t, 2000, 64)
	ir, err := NewIndexedReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = ir.ScanPCRuns(ctx, prog, 0, ir.Chunks(), func(pc, n int32) {
		t.Fatal("run delivered after cancellation")
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestScanPCRunsRejectsCorruption flips a bit in every byte position
// of the trace and requires the scan to either fail or produce exactly
// the reference PC stream — corruption must never silently skew a
// phase vector.
func TestScanPCRunsRejectsCorruption(t *testing.T) {
	data, evs, prog := writeTestTrace(t, 600, 64)
	want := make([]int32, len(evs))
	for i := range evs {
		want[i] = evs[i].PC
	}
	ctx := context.Background()
	for pos := 0; pos < len(data); pos += 7 {
		mut := append([]byte(nil), data...)
		mut[pos] ^= 0x10
		ir, err := NewIndexedReader(bytes.NewReader(mut), int64(len(mut)))
		if err != nil {
			continue // corruption caught at open
		}
		var got []int32
		err = ir.ScanPCRuns(ctx, prog, 0, ir.Chunks(), func(pc, n int32) {
			for i := int32(0); i < n; i++ {
				got = append(got, pc+i)
			}
		})
		if err != nil {
			continue // corruption caught during the scan
		}
		if len(got) != len(want) {
			t.Fatalf("byte %d: silent corruption changed event count %d -> %d", pos, len(want), len(got))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("byte %d: silent corruption changed PC[%d] %d -> %d", pos, i, want[i], got[i])
			}
		}
	}
}
