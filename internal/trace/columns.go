package trace

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math/bits"
	"sync"
	"sync/atomic"

	"bioperfload/internal/isa"
	"bioperfload/internal/runstream"
)

// decodeChunkColumns decodes a sparse-layout (v2/v3) chunk payload into
// the column form the block-characterized replay engine consumes: PC
// runs, the taken and address-present bitmaps, and the effective
// addresses of memory-class events — without materializing per-event
// records. isMem marks, per static PC, the load/store instructions.
//
// Structural validation matches decodeChunkEvents — bounds-checked
// varints, bitmap padding, PC-in-program, zero-address, zero-target
// and trailing-byte checks — except that target values are skipped
// rather than range-checked (this path never materializes them; the
// event decoder still rejects out-of-range targets on full decodes).
func decodeChunkColumns(data []byte, version int, isMem []bool, ch *runstream.Chunk) error {
	if version < 2 {
		return fmt.Errorf("trace: column decode requires the sparse layout (v2+), got v%d", version)
	}
	ch.Runs = ch.Runs[:0]
	ch.Addrs = ch.Addrs[:0]
	base, n, pos, err := scanChunkPCRuns(data, version, int64(len(isMem)), func(pc, cnt int32) {
		ch.Runs = append(ch.Runs, runstream.Run{PC: pc, N: cnt})
	})
	if err != nil {
		return err
	}
	ch.Base = base
	ch.N = n
	nb := (n + 7) / 8
	padOK := func(bm []byte) bool { return n%8 == 0 || bm[nb-1]>>(n%8) == 0 }
	var taken, tpresent, present []byte
	if version == 2 {
		// v2 groups all four bitmaps ahead of the varint streams; the
		// run scan already validated the region's bounds.
		off := uvarintLen(base) + uvarintLen(uint64(n)) + nb
		taken = data[off : off+nb]
		tpresent = data[off+nb : off+2*nb]
		present = data[off+2*nb : off+3*nb]
	} else {
		// v3 places them between the PC deltas and the target stream.
		if pos+3*nb > len(data) {
			return fmt.Errorf("trace: chunk truncated at offset %d (need %d bytes)", pos, 3*nb)
		}
		taken = data[pos : pos+nb]
		tpresent = data[pos+nb : pos+2*nb]
		present = data[pos+2*nb : pos+3*nb]
		pos += 3 * nb
	}
	if !padOK(taken) || !padOK(tpresent) || !padOK(present) {
		return fmt.Errorf("trace: nonzero padding bits in chunk bitmap")
	}
	if cap(ch.Taken) < nb {
		ch.Taken = make([]byte, nb, nb+nb/2)
		ch.Present = make([]byte, nb, nb+nb/2)
	}
	ch.Taken = ch.Taken[:nb]
	ch.Present = ch.Present[:nb]
	copy(ch.Taken, taken)
	copy(ch.Present, present)

	// Skip the target stream: one varint per set tpresent bit, each
	// validated as nonzero (a zero delta would mean a fallthrough target
	// marked present, which the writer never emits).
	for _, b := range tpresent {
		for k := bits.OnesCount8(b); k > 0; k-- {
			if uint(pos) >= uint(len(data)) {
				return errTruncatedVarint
			}
			u := uint64(data[pos])
			pos++
			if u >= 0x80 {
				if uint(pos) < uint(len(data)) && data[pos] < 0x80 {
					u = u&0x7f | uint64(data[pos])<<7
					pos++
				} else if u, pos, err = uvarintAt(data, pos-1); err != nil {
					return err
				}
			}
			if u == 0 {
				return fmt.Errorf("trace: fallthrough target marked present in chunk at base %d", base)
			}
		}
	}

	// Address stream: the delta chain covers every set present bit, in
	// event order, but only memory-class events contribute addresses to
	// the column (a present bit on a non-memory event — possible only in
	// a hostile trace — advances the chain and is dropped). Classifying
	// event i needs its PC, recovered by merge-walking the runs.
	runIdx := 0
	runStart := int32(0) // event index where ch.Runs[runIdx] begins
	prevAddr := uint64(0)
	for bi, b := range present {
		for b != 0 {
			i := int32(bi<<3 + bits.TrailingZeros8(b))
			b &= b - 1
			for i >= runStart+ch.Runs[runIdx].N {
				runStart += ch.Runs[runIdx].N
				runIdx++
			}
			if uint(pos) >= uint(len(data)) {
				return errTruncatedVarint
			}
			u := uint64(data[pos])
			pos++
			if u >= 0x80 {
				if uint(pos) < uint(len(data)) && data[pos] < 0x80 {
					u = u&0x7f | uint64(data[pos])<<7
					pos++
				} else if u, pos, err = uvarintAt(data, pos-1); err != nil {
					return err
				}
			}
			a := prevAddr + uint64(unzigzag(u))
			if a == 0 {
				return fmt.Errorf("trace: zero address marked present at record %d", i)
			}
			prevAddr = a
			if isMem[ch.Runs[runIdx].PC+(i-runStart)] {
				ch.Addrs = append(ch.Addrs, a)
			}
		}
	}
	if pos != len(data) {
		return fmt.Errorf("trace: %d trailing bytes after chunk payload", len(data)-pos)
	}
	return nil
}

// parseFrameBytes parses one chunk frame from an in-memory byte span
// (the ReaderAt analogue of readFrame): length prefixes, compression
// kind, CRC over the stored payload, and exact consumption of the
// span.
func parseFrameBytes(buf []byte) (frame, error) {
	pos := 0
	rawLen, pos, err := uvarintAt(buf, pos)
	if err != nil {
		return frame{}, fmt.Errorf("read chunk length: %w", err)
	}
	if rawLen == 0 || rawLen > maxFrameBytes {
		return frame{}, fmt.Errorf("bad chunk raw length %d", rawLen)
	}
	if pos >= len(buf) {
		return frame{}, fmt.Errorf("read compression kind: %w", io.ErrUnexpectedEOF)
	}
	kind := buf[pos]
	pos++
	compLen, pos, err := uvarintAt(buf, pos)
	if err != nil {
		return frame{}, fmt.Errorf("read payload length: %w", err)
	}
	if compLen > maxFrameBytes {
		return frame{}, fmt.Errorf("chunk payload length %d too large", compLen)
	}
	if pos+4+int(compLen) != len(buf) {
		return frame{}, fmt.Errorf("chunk frame spans %d bytes, index records %d", pos+4+int(compLen), len(buf))
	}
	crc := binary.LittleEndian.Uint32(buf[pos:])
	payload := buf[pos+4:]
	if crc != crc32.ChecksumIEEE(payload) {
		return frame{}, fmt.Errorf("chunk checksum mismatch")
	}
	return frame{rawLen: int(rawLen), kind: kind, payload: payload}, nil
}

// columnSource streams decoded column chunks from a work-claiming
// worker pool: each worker atomically claims the next undecoded chunk,
// so a worker that lands on a cheap chunk immediately claims another
// instead of idling behind a fixed stripe (the failure mode of striped
// ownership when chunk decode costs are skewed — exactly the shape a
// v4 trace has, where a loop-dominated chunk is a handful of tokens
// and a branchy one is thousands). Commit order is restored by a slot
// ring: chunk c is delivered through slot (c-lo) mod window, and the
// slot's gate admits a claimant only after the chunk one window
// earlier has been consumed, which simultaneously bounds decoded
// chunks in flight. Decode slabs are recycled through a sync.Pool,
// so steady-state decoding allocates nothing.
type columnSource struct {
	slots []colSlot
	claim atomic.Int64
	pool  sync.Pool // *runstream.Chunk decode slabs
	stop  chan struct{}
	once  sync.Once
	wg    sync.WaitGroup
	lo    int
	hi    int
	next  int
	err   error
}

// colSlot is one position of the delivery ring.
type colSlot struct {
	gate chan struct{} // cap 1, seeded: admits the slot's next claimant
	msg  chan colMsg   // cap 1: the slot's decoded chunk or error
}

type colMsg struct {
	ch  *runstream.Chunk
	err error
}

// chunksPerWorker sizes the delivery ring per worker: how many decoded
// chunks may sit between the claim frontier and the consumer before
// claimants block on their slot gates.
const chunksPerWorker = 3

// Columns returns a column source over chunks [lo, hi), decoded by a
// pool of work-claiming workers (clamped to at least 1). Chunks are
// read directly at their indexed offsets, so workers share nothing but
// the ReaderAt (and, for v4, the immutable bound dictionary);
// per-chunk validation matches Range (frame CRC, base and event-count
// cross-checks against the index). The context is checked once per
// chunk.
func (ir *IndexedReader) Columns(ctx context.Context, prog *isa.Program, lo, hi, workers int) runstream.Source {
	if lo < 0 || hi > len(ir.chunks) || lo > hi {
		panic(fmt.Sprintf("trace: Columns [%d,%d) outside %d chunks", lo, hi, len(ir.chunks)))
	}
	if workers < 1 {
		workers = 1
	}
	if workers > hi-lo {
		workers = hi - lo
	}
	s := &columnSource{stop: make(chan struct{}), lo: lo, hi: hi, next: lo}
	s.claim.Store(int64(lo))
	if workers == 0 {
		return s // empty range: Next returns io.EOF immediately
	}
	var isMem []bool
	if ir.version >= 4 {
		// Bind the dictionary to prog once, up front: workers then
		// share its per-run class offsets read-only.
		if err := ir.dict.bindShared(prog); err != nil {
			s.err = err
			return s
		}
	} else {
		isMem = make([]bool, len(prog.Insts))
		for pc := range prog.Insts {
			cls := isa.ClassOf(prog.Insts[pc].Op)
			isMem[pc] = cls == isa.ClassLoad || cls == isa.ClassStore
		}
	}
	window := workers * chunksPerWorker
	if window > hi-lo {
		window = hi - lo
	}
	s.slots = make([]colSlot, window)
	for i := range s.slots {
		s.slots[i] = colSlot{gate: make(chan struct{}, 1), msg: make(chan colMsg, 1)}
		s.slots[i].gate <- struct{}{}
	}
	for w := 0; w < workers; w++ {
		s.wg.Add(1)
		go s.worker(ctx, ir, isMem)
	}
	return s
}

func (s *columnSource) worker(ctx context.Context, ir *IndexedReader, isMem []bool) {
	defer s.wg.Done()
	dec := &decoder{version: ir.version, dict: ir.dict}
	var buf []byte
	for {
		c := int(s.claim.Add(1)) - 1
		if c >= s.hi {
			return
		}
		slot := &s.slots[(c-s.lo)%len(s.slots)]
		select {
		case <-slot.gate:
		case <-s.stop:
			return
		}
		var msg colMsg
		msg.ch, msg.err = s.decodeChunk(ctx, ir, dec, isMem, &buf, c)
		select {
		case slot.msg <- msg:
		case <-s.stop:
			return
		}
		if msg.err != nil {
			// The consumer sees the error at this chunk's ordered
			// position and closes stop; don't claim past it.
			return
		}
	}
}

// decodeChunk reads, validates, and column-decodes chunk c into a
// pooled chunk.
func (s *columnSource) decodeChunk(ctx context.Context, ir *IndexedReader, dec *decoder, isMem []bool, buf *[]byte, c int) (*runstream.Chunk, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("trace: columns: %w", err)
	}
	off := ir.chunks[c].offset
	flen := ir.rangeEnd(c+1) - off
	if cap(*buf) < int(flen) {
		*buf = make([]byte, flen)
	}
	b := (*buf)[:flen]
	if _, err := ir.ra.ReadAt(b, off); err != nil {
		return nil, fmt.Errorf("trace: chunk %d: read frame: %w", c, err)
	}
	f, err := parseFrameBytes(b)
	if err != nil {
		return nil, fmt.Errorf("trace: chunk %d: %w", c, err)
	}
	raw, err := dec.frameBytes(f)
	if err != nil {
		return nil, err
	}
	ch, _ := s.pool.Get().(*runstream.Chunk)
	if ch == nil {
		ch = &runstream.Chunk{}
	}
	if ir.version >= 4 {
		err = decodeChunkColumnsV4(raw, ir.dict, ch, &dec.sc)
	} else {
		err = decodeChunkColumns(raw, ir.version, isMem, ch)
	}
	if err != nil {
		s.pool.Put(ch)
		return nil, err
	}
	if ch.Base != ir.bases[c] {
		s.pool.Put(ch)
		return nil, fmt.Errorf("trace: chunk %d base %d, expected %d", c, ch.Base, ir.bases[c])
	}
	if uint64(ch.N) != ir.chunks[c].events {
		s.pool.Put(ch)
		return nil, fmt.Errorf("trace: chunk %d decoded %d events, index records %d", c, ch.N, ir.chunks[c].events)
	}
	return ch, nil
}

// Next implements runstream.Source.
func (s *columnSource) Next() (*runstream.Chunk, func(), error) {
	if s.err != nil {
		return nil, nil, s.err
	}
	if s.next >= s.hi {
		return nil, nil, io.EOF
	}
	slot := &s.slots[(s.next-s.lo)%len(s.slots)]
	msg := <-slot.msg
	if msg.err != nil {
		s.err = msg.err
		s.once.Do(func() { close(s.stop) })
		return nil, nil, msg.err
	}
	s.next++
	slot.gate <- struct{}{} // admit the chunk one window later
	ch := msg.ch
	release := func() { s.pool.Put(ch) }
	return ch, release, nil
}

// Close implements runstream.Source, stopping the decode workers. It
// is safe to call at any time; in-flight chunks stay valid until their
// release functions run.
func (s *columnSource) Close() {
	s.once.Do(func() { close(s.stop) })
	s.wg.Wait()
}
