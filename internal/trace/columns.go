package trace

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math/bits"
	"sync"

	"bioperfload/internal/isa"
	"bioperfload/internal/runstream"
)

// decodeChunkColumns decodes a sparse-layout (v2/v3) chunk payload into
// the column form the block-characterized replay engine consumes: PC
// runs, the taken and address-present bitmaps, and the effective
// addresses of memory-class events — without materializing per-event
// records. isMem marks, per static PC, the load/store instructions.
//
// Structural validation matches decodeChunkEvents — bounds-checked
// varints, bitmap padding, PC-in-program, zero-address, zero-target
// and trailing-byte checks — except that target values are skipped
// rather than range-checked (this path never materializes them; the
// event decoder still rejects out-of-range targets on full decodes).
func decodeChunkColumns(data []byte, version int, isMem []bool, ch *runstream.Chunk) error {
	if version < 2 {
		return fmt.Errorf("trace: column decode requires the sparse layout (v2+), got v%d", version)
	}
	ch.Runs = ch.Runs[:0]
	ch.Addrs = ch.Addrs[:0]
	base, n, pos, err := scanChunkPCRuns(data, version, int64(len(isMem)), func(pc, cnt int32) {
		ch.Runs = append(ch.Runs, runstream.Run{PC: pc, N: cnt})
	})
	if err != nil {
		return err
	}
	ch.Base = base
	ch.N = n
	nb := (n + 7) / 8
	padOK := func(bm []byte) bool { return n%8 == 0 || bm[nb-1]>>(n%8) == 0 }
	var taken, tpresent, present []byte
	if version == 2 {
		// v2 groups all four bitmaps ahead of the varint streams; the
		// run scan already validated the region's bounds.
		off := uvarintLen(base) + uvarintLen(uint64(n)) + nb
		taken = data[off : off+nb]
		tpresent = data[off+nb : off+2*nb]
		present = data[off+2*nb : off+3*nb]
	} else {
		// v3 places them between the PC deltas and the target stream.
		if pos+3*nb > len(data) {
			return fmt.Errorf("trace: chunk truncated at offset %d (need %d bytes)", pos, 3*nb)
		}
		taken = data[pos : pos+nb]
		tpresent = data[pos+nb : pos+2*nb]
		present = data[pos+2*nb : pos+3*nb]
		pos += 3 * nb
	}
	if !padOK(taken) || !padOK(tpresent) || !padOK(present) {
		return fmt.Errorf("trace: nonzero padding bits in chunk bitmap")
	}
	if cap(ch.Taken) < nb {
		ch.Taken = make([]byte, nb, nb+nb/2)
		ch.Present = make([]byte, nb, nb+nb/2)
	}
	ch.Taken = ch.Taken[:nb]
	ch.Present = ch.Present[:nb]
	copy(ch.Taken, taken)
	copy(ch.Present, present)

	// Skip the target stream: one varint per set tpresent bit, each
	// validated as nonzero (a zero delta would mean a fallthrough target
	// marked present, which the writer never emits).
	for _, b := range tpresent {
		for k := bits.OnesCount8(b); k > 0; k-- {
			if uint(pos) >= uint(len(data)) {
				return errTruncatedVarint
			}
			u := uint64(data[pos])
			pos++
			if u >= 0x80 {
				if uint(pos) < uint(len(data)) && data[pos] < 0x80 {
					u = u&0x7f | uint64(data[pos])<<7
					pos++
				} else if u, pos, err = uvarintAt(data, pos-1); err != nil {
					return err
				}
			}
			if u == 0 {
				return fmt.Errorf("trace: fallthrough target marked present in chunk at base %d", base)
			}
		}
	}

	// Address stream: the delta chain covers every set present bit, in
	// event order, but only memory-class events contribute addresses to
	// the column (a present bit on a non-memory event — possible only in
	// a hostile trace — advances the chain and is dropped). Classifying
	// event i needs its PC, recovered by merge-walking the runs.
	runIdx := 0
	runStart := int32(0) // event index where ch.Runs[runIdx] begins
	prevAddr := uint64(0)
	for bi, b := range present {
		for b != 0 {
			i := int32(bi<<3 + bits.TrailingZeros8(b))
			b &= b - 1
			for i >= runStart+ch.Runs[runIdx].N {
				runStart += ch.Runs[runIdx].N
				runIdx++
			}
			if uint(pos) >= uint(len(data)) {
				return errTruncatedVarint
			}
			u := uint64(data[pos])
			pos++
			if u >= 0x80 {
				if uint(pos) < uint(len(data)) && data[pos] < 0x80 {
					u = u&0x7f | uint64(data[pos])<<7
					pos++
				} else if u, pos, err = uvarintAt(data, pos-1); err != nil {
					return err
				}
			}
			a := prevAddr + uint64(unzigzag(u))
			if a == 0 {
				return fmt.Errorf("trace: zero address marked present at record %d", i)
			}
			prevAddr = a
			if isMem[ch.Runs[runIdx].PC+(i-runStart)] {
				ch.Addrs = append(ch.Addrs, a)
			}
		}
	}
	if pos != len(data) {
		return fmt.Errorf("trace: %d trailing bytes after chunk payload", len(data)-pos)
	}
	return nil
}

// parseFrameBytes parses one chunk frame from an in-memory byte span
// (the ReaderAt analogue of readFrame): length prefixes, compression
// kind, CRC over the stored payload, and exact consumption of the
// span.
func parseFrameBytes(buf []byte) (frame, error) {
	pos := 0
	rawLen, pos, err := uvarintAt(buf, pos)
	if err != nil {
		return frame{}, fmt.Errorf("read chunk length: %w", err)
	}
	if rawLen == 0 || rawLen > maxFrameBytes {
		return frame{}, fmt.Errorf("bad chunk raw length %d", rawLen)
	}
	if pos >= len(buf) {
		return frame{}, fmt.Errorf("read compression kind: %w", io.ErrUnexpectedEOF)
	}
	kind := buf[pos]
	pos++
	compLen, pos, err := uvarintAt(buf, pos)
	if err != nil {
		return frame{}, fmt.Errorf("read payload length: %w", err)
	}
	if compLen > maxFrameBytes {
		return frame{}, fmt.Errorf("chunk payload length %d too large", compLen)
	}
	if pos+4+int(compLen) != len(buf) {
		return frame{}, fmt.Errorf("chunk frame spans %d bytes, index records %d", pos+4+int(compLen), len(buf))
	}
	crc := binary.LittleEndian.Uint32(buf[pos:])
	payload := buf[pos+4:]
	if crc != crc32.ChecksumIEEE(payload) {
		return frame{}, fmt.Errorf("chunk checksum mismatch")
	}
	return frame{rawLen: int(rawLen), kind: kind, payload: payload}, nil
}

// columnSource streams decoded column chunks from striped decode
// workers: worker w owns chunks lo+w, lo+w+W, ..., each delivering in
// order on its own channel, so the consumer's round-robin receive
// yields chunks in global commit order with no reorder buffer.
type columnSource struct {
	outs []chan colMsg
	free []chan *runstream.Chunk
	stop chan struct{}
	once sync.Once
	wg   sync.WaitGroup
	lo   int
	hi   int
	next int
	err  error
}

type colMsg struct {
	ch  *runstream.Chunk
	err error
}

// chunksPerWorker bounds how many decoded chunks one worker keeps in
// flight (being decoded, queued, or held by the consumer) before it
// blocks waiting for a release.
const chunksPerWorker = 3

// Columns returns a column source over chunks [lo, hi), decoded by the
// given number of striped workers (clamped to at least 1). Chunks are
// read directly at their indexed offsets, so workers share nothing but
// the ReaderAt; per-chunk validation matches Range (frame CRC, base
// and event-count cross-checks against the index). The context is
// checked once per chunk.
func (ir *IndexedReader) Columns(ctx context.Context, prog *isa.Program, lo, hi, workers int) runstream.Source {
	if lo < 0 || hi > len(ir.chunks) || lo > hi {
		panic(fmt.Sprintf("trace: Columns [%d,%d) outside %d chunks", lo, hi, len(ir.chunks)))
	}
	if workers < 1 {
		workers = 1
	}
	if workers > hi-lo {
		workers = hi - lo
	}
	s := &columnSource{stop: make(chan struct{}), lo: lo, hi: hi, next: lo}
	if workers == 0 {
		return s // empty range: Next returns io.EOF immediately
	}
	isMem := make([]bool, len(prog.Insts))
	for pc := range prog.Insts {
		cls := isa.ClassOf(prog.Insts[pc].Op)
		isMem[pc] = cls == isa.ClassLoad || cls == isa.ClassStore
	}
	s.outs = make([]chan colMsg, workers)
	s.free = make([]chan *runstream.Chunk, workers)
	for w := 0; w < workers; w++ {
		s.outs[w] = make(chan colMsg, chunksPerWorker)
		s.free[w] = make(chan *runstream.Chunk, chunksPerWorker)
		for i := 0; i < chunksPerWorker; i++ {
			s.free[w] <- &runstream.Chunk{}
		}
		s.wg.Add(1)
		go s.worker(ctx, ir, isMem, w, workers)
	}
	return s
}

func (s *columnSource) worker(ctx context.Context, ir *IndexedReader, isMem []bool, w, stride int) {
	defer s.wg.Done()
	dec := &decoder{version: ir.version}
	var buf []byte
	fail := func(err error) {
		select {
		case s.outs[w] <- colMsg{err: err}:
		case <-s.stop:
		}
	}
	for c := s.lo + w; c < s.hi; c += stride {
		if err := ctx.Err(); err != nil {
			fail(fmt.Errorf("trace: columns: %w", err))
			return
		}
		var ch *runstream.Chunk
		select {
		case ch = <-s.free[w]:
		case <-s.stop:
			return
		}
		off := ir.chunks[c].offset
		flen := ir.rangeEnd(c+1) - off
		if cap(buf) < int(flen) {
			buf = make([]byte, flen)
		}
		buf = buf[:flen]
		if _, err := ir.ra.ReadAt(buf, off); err != nil {
			fail(fmt.Errorf("trace: chunk %d: read frame: %w", c, err))
			return
		}
		f, err := parseFrameBytes(buf)
		if err != nil {
			fail(fmt.Errorf("trace: chunk %d: %w", c, err))
			return
		}
		raw, err := dec.frameBytes(f)
		if err != nil {
			fail(err)
			return
		}
		if err := decodeChunkColumns(raw, ir.version, isMem, ch); err != nil {
			fail(err)
			return
		}
		if ch.Base != ir.bases[c] {
			fail(fmt.Errorf("trace: chunk %d base %d, expected %d", c, ch.Base, ir.bases[c]))
			return
		}
		if uint64(ch.N) != ir.chunks[c].events {
			fail(fmt.Errorf("trace: chunk %d decoded %d events, index records %d", c, ch.N, ir.chunks[c].events))
			return
		}
		select {
		case s.outs[w] <- colMsg{ch: ch}:
		case <-s.stop:
			return
		}
	}
}

// Next implements runstream.Source.
func (s *columnSource) Next() (*runstream.Chunk, func(), error) {
	if s.err != nil {
		return nil, nil, s.err
	}
	if s.next >= s.hi {
		return nil, nil, io.EOF
	}
	w := (s.next - s.lo) % len(s.outs)
	msg := <-s.outs[w]
	if msg.err != nil {
		s.err = msg.err
		s.once.Do(func() { close(s.stop) })
		return nil, nil, msg.err
	}
	s.next++
	free := s.free[w]
	ch := msg.ch
	release := func() {
		select {
		case free <- ch:
		default:
		}
	}
	return ch, release, nil
}

// Close implements runstream.Source, stopping the decode workers. It
// is safe to call at any time; in-flight chunks stay valid until their
// release functions run.
func (s *columnSource) Close() {
	s.once.Do(func() { close(s.stop) })
	s.wg.Wait()
}
