package trace

import (
	"bytes"
	"context"
	"io"
	"math/rand"
	"testing"

	"bioperfload/internal/isa"
	"bioperfload/internal/sim"
)

// testProgram builds a synthetic program large enough to bind the
// random PCs used by the stream tests.
func testProgram(n int) *isa.Program {
	insts := make([]isa.Inst, n)
	return &isa.Program{Name: "synthetic", Insts: insts}
}

// writeTestTrace records n synthetic events through the BatchObserver
// path with a small chunk size so multiple chunks are exercised, and
// returns the encoded bytes plus the events.
func writeTestTrace(t *testing.T, n, chunk int) ([]byte, []sim.Event, *isa.Program) {
	t.Helper()
	return writeTestTraceVersion(t, n, chunk, FormatVersion)
}

// writeTestTraceVersion is writeTestTrace with a pinned format version,
// so back-compat tests can produce v1 streams with today's writer.
func writeTestTraceVersion(t *testing.T, n, chunk, version int) ([]byte, []sim.Event, *isa.Program) {
	t.Helper()
	prog := testProgram(1 << 12)
	r := rand.New(rand.NewSource(int64(n)))
	evs := make([]sim.Event, n)
	pc := int32(0)
	for i := range evs {
		if r.Intn(16) == 0 {
			pc = int32(r.Intn(len(prog.Insts)))
		} else if int(pc)+1 < len(prog.Insts) {
			pc++
		}
		evs[i] = sim.Event{
			Seq:    uint64(i),
			PC:     pc,
			Inst:   &prog.Insts[pc],
			Target: pc + 1,
		}
		if r.Intn(3) == 0 {
			evs[i].Addr = uint64(1 + r.Intn(1<<20))
		}
		if r.Intn(5) == 0 {
			evs[i].Taken = true
			evs[i].Target = int32(r.Intn(len(prog.Insts)))
		}
	}
	var buf bytes.Buffer
	tw := newWriterVersion(&buf, Meta{Program: prog.Name, Size: "test", ChunkEvents: chunk}, version)
	// Deliver in uneven slabs to exercise partial-chunk accumulation.
	for lo := 0; lo < n; {
		hi := lo + 1 + r.Intn(300)
		if hi > n {
			hi = n
		}
		tw.ObserveBatch(evs[lo:hi])
		lo = hi
	}
	if err := tw.Close(); err != nil {
		t.Fatalf("close writer: %v", err)
	}
	if got := tw.Events(); got != uint64(n) {
		t.Fatalf("writer accepted %d events, want %d", got, n)
	}
	return buf.Bytes(), evs, prog
}

func drain(t *testing.T, src *Source) []sim.Event {
	t.Helper()
	var all []sim.Event
	for {
		evs, release, err := src.Next()
		if err == io.EOF {
			return all
		}
		if err != nil {
			t.Fatalf("source: %v", err)
		}
		all = append(all, evs...)
		release()
	}
}

func checkEvents(t *testing.T, got, want []sim.Event) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("replayed %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestStreamRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 255, 256, 257, 5000} {
		data, evs, prog := writeTestTrace(t, n, 256)
		tr, err := NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if tr.Meta().Program != "synthetic" || tr.Meta().Size != "test" {
			t.Fatalf("n=%d: meta %+v", n, tr.Meta())
		}
		src := tr.Events(prog)
		got := drain(t, src)
		src.Close()
		checkEvents(t, got, evs)
		if tr.TotalEvents() != uint64(n) {
			t.Fatalf("n=%d: TotalEvents=%d", n, tr.TotalEvents())
		}
	}
}

func TestParallelStreamRoundTrip(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		data, evs, prog := writeTestTrace(t, 10000, 128)
		tr, err := NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		src := tr.ParallelEvents(prog, workers)
		got := drain(t, src)
		src.Close()
		checkEvents(t, got, evs)
	}
}

func TestParallelSourceEarlyClose(t *testing.T) {
	data, _, prog := writeTestTrace(t, 20000, 64)
	tr, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	src := tr.ParallelEvents(prog, 4)
	if _, _, err := src.Next(); err != nil {
		t.Fatal(err)
	}
	src.Close() // must not deadlock with most chunks undelivered
}

type collector struct{ evs []sim.Event }

func (c *collector) ObserveBatch(evs []sim.Event) {
	c.evs = append(c.evs, evs...)
}

func TestReplayHelper(t *testing.T) {
	data, evs, prog := writeTestTrace(t, 3000, 512)
	tr, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var c collector
	n, err := tr.Replay(context.Background(), prog, &c)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3000 {
		t.Fatalf("replayed %d events, want 3000", n)
	}
	checkEvents(t, c.evs, evs)
}

func TestReplayCancel(t *testing.T) {
	data, _, prog := writeTestTrace(t, 3000, 64)
	tr, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var c collector
	if _, err := tr.Replay(ctx, prog, &c); err == nil {
		t.Fatal("replay with canceled context succeeded")
	}
}

// replayAll decodes data fully, returning an error instead of failing,
// for the corruption sweeps.
func replayAll(data []byte, prog *isa.Program) error {
	tr, err := NewReader(bytes.NewReader(data))
	if err != nil {
		return err
	}
	src := tr.Events(prog)
	defer src.Close()
	for {
		_, release, err := src.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		release()
	}
}

func TestTruncatedTraceRejected(t *testing.T) {
	data, _, prog := writeTestTrace(t, 2000, 256)
	if err := replayAll(data, prog); err != nil {
		t.Fatalf("pristine trace rejected: %v", err)
	}
	for n := 0; n < len(data); n++ {
		if err := replayAll(data[:n], prog); err == nil {
			t.Fatalf("truncation to %d of %d bytes accepted", n, len(data))
		}
	}
}

func TestBitFlippedTraceRejected(t *testing.T) {
	data, _, prog := writeTestTrace(t, 2000, 256)
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		mut := append([]byte{}, data...)
		mut[r.Intn(len(mut))] ^= 1 << r.Intn(8)
		if bytes.Equal(mut, data) {
			continue
		}
		if err := replayAll(mut, prog); err == nil {
			t.Fatalf("trial %d: bit-flipped trace accepted", trial)
		}
	}
}

func TestDecodeRejectsOutOfRangePC(t *testing.T) {
	data, _, _ := writeTestTrace(t, 100, 64)
	small := testProgram(1) // every PC > 0 is out of range
	if err := replayAll(data, small); err == nil {
		t.Fatal("replay against too-small program accepted")
	}
}

func TestReaderRejectsBadHeader(t *testing.T) {
	hm := headerMagic(FormatVersion)
	for _, data := range [][]byte{
		nil,
		[]byte("BOGUSMAG"),
		[]byte("BPTRACE9"),
		[]byte("BPTRACE0"),
		hm[:],
	} {
		if _, err := NewReader(bytes.NewReader(data)); err == nil {
			t.Fatalf("header %q accepted", data)
		}
	}
}
