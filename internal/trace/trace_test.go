package trace

import (
	"bytes"
	"context"
	"io"
	"math/rand"
	"testing"

	"bioperfload/internal/isa"
	"bioperfload/internal/sim"
)

// testProgram builds a synthetic program large enough to bind the
// random PCs used by the stream tests. Every instruction is class
// Other; the fuzz reference paths use it where classes don't matter.
func testProgram(n int) *isa.Program {
	insts := make([]isa.Inst, n)
	return &isa.Program{Name: "synthetic", Insts: insts}
}

// testProgramMixed builds a program with a deterministic mix of
// instruction classes keyed by PC — loads, stores, conditional and
// unconditional branches among the ALU filler — so recorded streams
// exercise the v4 writer's class-split columns.
func testProgramMixed(n int) *isa.Program {
	insts := make([]isa.Inst, n)
	for pc := range insts {
		switch {
		case pc%7 == 1:
			insts[pc].Op = isa.OpLdq
		case pc%7 == 5:
			insts[pc].Op = isa.OpStq
		case pc%7 == 3:
			insts[pc].Op = isa.OpBeq
		case pc%21 == 6:
			insts[pc].Op = isa.OpBr
		default:
			insts[pc].Op = isa.OpAdd
		}
	}
	return &isa.Program{Name: "synthetic", Insts: insts}
}

// writeTestTrace records n synthetic events through the BatchObserver
// path with a small chunk size so multiple chunks are exercised, and
// returns the encoded bytes plus the events.
func writeTestTrace(t *testing.T, n, chunk int) ([]byte, []sim.Event, *isa.Program) {
	t.Helper()
	return writeTestTraceVersion(t, n, chunk, FormatVersion)
}

// writeTestTraceVersion is writeTestTrace with a pinned format version,
// so back-compat tests can produce v1 streams with today's writer. The
// generated stream is run-representable — targets name the next
// committed PC and the taken and address fields respect each PC's
// class — so the same generator serves every version including v4.
func writeTestTraceVersion(t *testing.T, n, chunk, version int) ([]byte, []sim.Event, *isa.Program) {
	t.Helper()
	prog := testProgramMixed(1 << 12)
	evs := testEventStream(n, prog)
	var buf bytes.Buffer
	r := rand.New(rand.NewSource(int64(n) + 1))
	tw := NewWriterVersion(&buf, Meta{Program: prog.Name, Size: "test", ChunkEvents: chunk}, prog, version)
	// Deliver in uneven slabs to exercise partial-chunk accumulation.
	for lo := 0; lo < n; {
		hi := lo + 1 + r.Intn(300)
		if hi > n {
			hi = n
		}
		tw.ObserveBatch(evs[lo:hi])
		lo = hi
	}
	if err := tw.Close(); err != nil {
		t.Fatalf("close writer: %v", err)
	}
	if got := tw.Events(); got != uint64(n) {
		t.Fatalf("writer accepted %d events, want %d", got, n)
	}
	return buf.Bytes(), evs, prog
}

// testEventStream walks prog pseudo-randomly — mostly fallthrough with
// occasional jumps, loads and stores carrying addresses (sometimes
// zero), conditional branches with mixed outcomes — producing a
// run-representable commit stream.
func testEventStream(n int, prog *isa.Program) []sim.Event {
	r := rand.New(rand.NewSource(int64(n)))
	evs := make([]sim.Event, n)
	pc := int32(0)
	for i := range evs {
		ev := sim.Event{Seq: uint64(i), PC: pc, Inst: &prog.Insts[pc]}
		switch isa.ClassOf(prog.Insts[pc].Op) {
		case isa.ClassLoad, isa.ClassStore:
			if r.Intn(8) != 0 {
				ev.Addr = uint64(1 + r.Intn(1<<20))
			}
		case isa.ClassCondBranch:
			ev.Taken = r.Intn(2) == 0
		case isa.ClassUncondBranch:
			ev.Taken = true
		}
		next := pc + 1
		if r.Intn(16) == 0 || int(next) >= len(prog.Insts) {
			next = int32(r.Intn(len(prog.Insts)))
		}
		ev.Target = next
		evs[i] = ev
		pc = next
	}
	return evs
}

func drain(t *testing.T, src *Source) []sim.Event {
	t.Helper()
	var all []sim.Event
	for {
		evs, release, err := src.Next()
		if err == io.EOF {
			return all
		}
		if err != nil {
			t.Fatalf("source: %v", err)
		}
		all = append(all, evs...)
		release()
	}
}

func checkEvents(t *testing.T, got, want []sim.Event) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("replayed %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestStreamRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 255, 256, 257, 5000} {
		data, evs, prog := writeTestTrace(t, n, 256)
		tr, err := NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if tr.Meta().Program != "synthetic" || tr.Meta().Size != "test" {
			t.Fatalf("n=%d: meta %+v", n, tr.Meta())
		}
		src := tr.Events(prog)
		got := drain(t, src)
		src.Close()
		checkEvents(t, got, evs)
		if tr.TotalEvents() != uint64(n) {
			t.Fatalf("n=%d: TotalEvents=%d", n, tr.TotalEvents())
		}
	}
}

func TestParallelStreamRoundTrip(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		data, evs, prog := writeTestTrace(t, 10000, 128)
		tr, err := NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		src := tr.ParallelEvents(prog, workers)
		got := drain(t, src)
		src.Close()
		checkEvents(t, got, evs)
	}
}

func TestParallelSourceEarlyClose(t *testing.T) {
	data, _, prog := writeTestTrace(t, 20000, 64)
	tr, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	src := tr.ParallelEvents(prog, 4)
	if _, _, err := src.Next(); err != nil {
		t.Fatal(err)
	}
	src.Close() // must not deadlock with most chunks undelivered
}

type collector struct{ evs []sim.Event }

func (c *collector) ObserveBatch(evs []sim.Event) {
	c.evs = append(c.evs, evs...)
}

func TestReplayHelper(t *testing.T) {
	data, evs, prog := writeTestTrace(t, 3000, 512)
	tr, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var c collector
	n, err := tr.Replay(context.Background(), prog, &c)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3000 {
		t.Fatalf("replayed %d events, want 3000", n)
	}
	checkEvents(t, c.evs, evs)
}

func TestReplayCancel(t *testing.T) {
	data, _, prog := writeTestTrace(t, 3000, 64)
	tr, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var c collector
	if _, err := tr.Replay(ctx, prog, &c); err == nil {
		t.Fatal("replay with canceled context succeeded")
	}
}

// replayAll decodes data fully, returning an error instead of failing,
// for the corruption sweeps.
func replayAll(data []byte, prog *isa.Program) error {
	tr, err := NewReader(bytes.NewReader(data))
	if err != nil {
		return err
	}
	src := tr.Events(prog)
	defer src.Close()
	for {
		_, release, err := src.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		release()
	}
}

func TestTruncatedTraceRejected(t *testing.T) {
	data, _, prog := writeTestTrace(t, 2000, 256)
	if err := replayAll(data, prog); err != nil {
		t.Fatalf("pristine trace rejected: %v", err)
	}
	for n := 0; n < len(data); n++ {
		if err := replayAll(data[:n], prog); err == nil {
			t.Fatalf("truncation to %d of %d bytes accepted", n, len(data))
		}
	}
}

func TestBitFlippedTraceRejected(t *testing.T) {
	data, _, prog := writeTestTrace(t, 2000, 256)
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		mut := append([]byte{}, data...)
		mut[r.Intn(len(mut))] ^= 1 << r.Intn(8)
		if bytes.Equal(mut, data) {
			continue
		}
		if err := replayAll(mut, prog); err == nil {
			t.Fatalf("trial %d: bit-flipped trace accepted", trial)
		}
	}
}

func TestDecodeRejectsOutOfRangePC(t *testing.T) {
	data, _, _ := writeTestTrace(t, 100, 64)
	small := testProgram(1) // every PC > 0 is out of range
	if err := replayAll(data, small); err == nil {
		t.Fatal("replay against too-small program accepted")
	}
}

func TestReaderRejectsBadHeader(t *testing.T) {
	hm := headerMagic(FormatVersion)
	for _, data := range [][]byte{
		nil,
		[]byte("BOGUSMAG"),
		[]byte("BPTRACE9"),
		[]byte("BPTRACE0"),
		hm[:],
	} {
		if _, err := NewReader(bytes.NewReader(data)); err == nil {
			t.Fatalf("header %q accepted", data)
		}
	}
}
