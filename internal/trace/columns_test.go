package trace

import (
	"bytes"
	"context"
	"io"
	"math/rand"
	"testing"

	"bioperfload/internal/isa"
	"bioperfload/internal/runstream"
	"bioperfload/internal/sim"
)

// writeMemTestTrace is writeTestTraceVersion with a program that mixes
// memory-class and other instructions, so the Addrs column's
// classification logic is exercised: addresses attach to loads and
// stores, while the test generator also stamps addresses onto
// non-memory events (hostile relative to the simulator, legal per the
// format) which the column decoder must consume and drop.
func writeMemTestTrace(t *testing.T, n, chunk, version int) ([]byte, []sim.Event, *isa.Program) {
	t.Helper()
	prog := testProgram(1 << 12)
	r := rand.New(rand.NewSource(int64(n) + 77))
	for pc := range prog.Insts {
		switch r.Intn(5) {
		case 0:
			prog.Insts[pc].Op = isa.OpLdq
		case 1:
			prog.Insts[pc].Op = isa.OpStq
		case 2:
			prog.Insts[pc].Op = isa.OpBeq
		}
	}
	evs := make([]sim.Event, n)
	pc := int32(0)
	for i := range evs {
		if r.Intn(16) == 0 {
			pc = int32(r.Intn(len(prog.Insts)))
		} else if int(pc)+1 < len(prog.Insts) {
			pc++
		}
		evs[i] = sim.Event{Seq: uint64(i), PC: pc, Inst: &prog.Insts[pc], Target: pc + 1}
		if r.Intn(3) == 0 {
			evs[i].Addr = uint64(1 + r.Intn(1<<20))
		}
		if r.Intn(5) == 0 {
			evs[i].Taken = true
			evs[i].Target = int32(r.Intn(len(prog.Insts)))
		}
	}
	var buf bytes.Buffer
	tw := newWriterVersion(&buf, Meta{Program: prog.Name, Size: "test", ChunkEvents: chunk}, version)
	tw.ObserveBatch(evs)
	if err := tw.Close(); err != nil {
		t.Fatalf("close writer: %v", err)
	}
	return buf.Bytes(), evs, prog
}

// checkColumns drains a column source and verifies every column against
// the original event stream, handling both the legacy and the
// dictionary-backed chunk shapes.
func checkColumns(t *testing.T, src runstream.Source, evs []sim.Event, prog *isa.Program) {
	t.Helper()
	defer src.Close()
	i := 0
	for {
		ch, release, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("columns: %v", err)
		}
		if want := evs[0].Seq + uint64(i); ch.Base != want {
			t.Fatalf("chunk base %d, want %d", ch.Base, want)
		}
		if ch.Dict != nil {
			i = checkChunkV4(t, ch, evs, i, prog)
		} else {
			i = checkChunkLegacy(t, ch, evs, i, prog)
		}
		release()
	}
	if i != len(evs) {
		t.Fatalf("columns covered %d events, want %d", i, len(evs))
	}
}

// checkChunkLegacy verifies one legacy (v2/v3) chunk starting at event
// i and returns the index past it.
func checkChunkLegacy(t *testing.T, ch *runstream.Chunk, evs []sim.Event, i int, prog *isa.Program) int {
	t.Helper()
	var addrs []uint64
	ci := int32(0)
	for _, run := range ch.Runs {
		for k := int32(0); k < run.N; k++ {
			ev := evs[i]
			if run.PC+k != ev.PC {
				t.Fatalf("event %d: pc %d, want %d", i, run.PC+k, ev.PC)
			}
			if ch.TakenAt(ci) != ev.Taken {
				t.Fatalf("event %d: taken %v, want %v", i, ch.TakenAt(ci), ev.Taken)
			}
			if ch.PresentAt(ci) != (ev.Addr != 0) {
				t.Fatalf("event %d: present %v, want %v", i, ch.PresentAt(ci), ev.Addr != 0)
			}
			cls := isa.ClassOf(prog.Insts[ev.PC].Op)
			if (cls == isa.ClassLoad || cls == isa.ClassStore) && ev.Addr != 0 {
				addrs = append(addrs, ev.Addr)
			}
			i++
			ci++
		}
	}
	if int(ci) != ch.N {
		t.Fatalf("chunk runs cover %d events, header says %d", ci, ch.N)
	}
	if len(addrs) != len(ch.Addrs) {
		t.Fatalf("chunk at %d: %d addrs, want %d", ch.Base, len(ch.Addrs), len(addrs))
	}
	for k := range addrs {
		if ch.Addrs[k] != addrs[k] {
			t.Fatalf("chunk at %d: addr %d = %#x, want %#x", ch.Base, k, ch.Addrs[k], addrs[k])
		}
	}
	return i
}

// checkChunkV4 verifies one dictionary-backed chunk starting at event
// i and returns the index past it: tokens expand against the shared
// dictionary, BrTaken carries one bit per conditional branch, and
// Addrs one entry per memory event, zero addresses included.
func checkChunkV4(t *testing.T, ch *runstream.Chunk, evs []sim.Event, i int, prog *isa.Program) int {
	t.Helper()
	n, br, mem := 0, 0, 0
	for _, tok := range ch.Tokens {
		run := ch.Dict.Runs[tok.ID]
		for rep := int32(0); rep < tok.Rep; rep++ {
			for k := int32(0); k < run.N; k++ {
				ev := evs[i]
				if run.PC+k != ev.PC {
					t.Fatalf("event %d: pc %d, want %d", i, run.PC+k, ev.PC)
				}
				switch isa.ClassOf(prog.Insts[ev.PC].Op) {
				case isa.ClassCondBranch:
					if taken := ch.BrTaken[br>>3]&(1<<(br&7)) != 0; taken != ev.Taken {
						t.Fatalf("event %d: taken %v, want %v", i, taken, ev.Taken)
					}
					br++
				case isa.ClassUncondBranch:
					if !ev.Taken {
						t.Fatalf("event %d: unconditional branch recorded not-taken", i)
					}
				case isa.ClassLoad, isa.ClassStore:
					if ch.Addrs[mem] != ev.Addr {
						t.Fatalf("event %d: addr %#x, want %#x", i, ch.Addrs[mem], ev.Addr)
					}
					mem++
				}
				i++
				n++
			}
		}
	}
	if n != ch.N {
		t.Fatalf("chunk tokens cover %d events, header says %d", n, ch.N)
	}
	if mem != len(ch.Addrs) {
		t.Fatalf("chunk at %d: %d addrs, want %d", ch.Base, len(ch.Addrs), mem)
	}
	return i
}

func TestColumnsMatchEvents(t *testing.T) {
	for _, version := range []int{2, 3} {
		for _, workers := range []int{1, 3} {
			data, evs, prog := writeMemTestTrace(t, 5000, 256, version)
			ir, err := NewIndexedReader(bytes.NewReader(data), int64(len(data)))
			if err != nil {
				t.Fatalf("v%d: %v", version, err)
			}
			src := ir.Columns(context.Background(), prog, 0, ir.Chunks(), workers)
			checkColumns(t, src, evs, prog)
		}
	}
	// v4: dictionary-backed chunks, at several worker counts including
	// more workers than the claim scheduler's ring would otherwise see.
	for _, workers := range []int{1, 3, 8} {
		data, evs, prog := writeTestTraceVersion(t, 5000, 256, 4)
		ir, err := NewIndexedReader(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			t.Fatalf("v4: %v", err)
		}
		src := ir.Columns(context.Background(), prog, 0, ir.Chunks(), workers)
		checkColumns(t, src, evs, prog)
	}
}

// TestColumnsHostilePresent feeds a v3 stream where the generator
// stamps addresses on non-memory events (hostile relative to the
// simulator, legal per the sparse format) and checks the decoder
// consumes the delta chain without keeping any.
func TestColumnsHostilePresent(t *testing.T) {
	data, evs, prog := writeMemTestTrace(t, 3000, 256, 3)
	ir, err := NewIndexedReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	src := ir.Columns(context.Background(), prog, 0, ir.Chunks(), 2)
	checkColumns(t, src, evs, prog)
}

func TestColumnsSubrangeAndCancel(t *testing.T) {
	data, evs, prog := writeTestTraceVersion(t, 5000, 256, FormatVersion)
	ir, err := NewIndexedReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	nc := ir.Chunks()
	if nc < 4 {
		t.Fatalf("want ≥4 chunks, got %d", nc)
	}
	lo, hi := 1, nc-1
	src := ir.Columns(context.Background(), prog, lo, hi, 2)
	checkColumns(t, src, evs[ir.Base(lo):ir.Base(hi)], prog)

	// Close before draining must not deadlock or leak workers.
	src = ir.Columns(context.Background(), prog, 0, nc, 4)
	src.Close()

	// A cancelled context surfaces as an error from Next.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	src = ir.Columns(ctx, prog, 0, nc, 2)
	defer src.Close()
	for {
		_, release, err := src.Next()
		if err == io.EOF {
			t.Fatal("cancelled source drained to EOF")
		}
		if err != nil {
			break
		}
		release()
	}
}

// TestColumnsRejectsV1 pins the typed failure on index-less traces.
func TestColumnsRejectsV1(t *testing.T) {
	err := decodeChunkColumns(nil, 1, nil, &runstream.Chunk{})
	if err == nil {
		t.Fatal("v1 column decode succeeded")
	}
}

// TestColumnsCorruptionDetected flips bytes inside chunk frames and
// requires every mutation to either fail or decode to the same columns
// as the pristine trace (CRC collisions aside, a flip must never be
// silently absorbed into different data).
func TestColumnsCorruptionDetected(t *testing.T) {
	data, evs, prog := writeTestTraceVersion(t, 2000, 256, FormatVersion)
	ir, err := NewIndexedReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	start := ir.chunks[0].offset
	end := ir.dataEnd
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		mut := bytes.Clone(data)
		pos := start + int64(r.Intn(int(end-start)))
		mut[pos] ^= 1 << r.Intn(8)
		mir, err := NewIndexedReader(bytes.NewReader(mut), int64(len(mut)))
		if err != nil {
			continue // footer/index validation caught it
		}
		src := mir.Columns(context.Background(), prog, 0, mir.Chunks(), 1)
		failed := false
		func() {
			defer src.Close()
			for {
				_, release, err := src.Next()
				if err == io.EOF {
					return
				}
				if err != nil {
					failed = true
					return
				}
				release()
			}
		}()
		if !failed {
			// Rarely the flip lands in flate padding or round-trips; make
			// sure the decoded columns still match the original events.
			src = mir.Columns(context.Background(), prog, 0, mir.Chunks(), 1)
			checkColumns(t, src, evs, prog)
		}
	}
}
