package trace

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"runtime"

	"bioperfload/internal/isa"
	"bioperfload/internal/sim"
)

// ErrNoIndex reports that a trace has no random-access chunk index
// (a v1 trace): callers fall back to sequential streaming.
var ErrNoIndex = errors.New("trace: format has no chunk index")

// defaultDecodeWorkers sizes decode pools from the machine rather
// than a fixed fan-out.
func defaultDecodeWorkers() int {
	w := runtime.GOMAXPROCS(0)
	if w > 4 {
		w = 4
	}
	if w < 1 {
		w = 1
	}
	return w
}

// IndexedReader opens a v2 trace through an io.ReaderAt and exposes
// its footer chunk index, so disjoint chunk ranges can be decoded
// concurrently by shard workers. It performs three reads up front
// (header, fixed footer tail, index payload) and validates every CRC;
// Range then serves bounds-checked sections of the file.
type IndexedReader struct {
	ra      io.ReaderAt
	meta    Meta
	version int
	chunks  []chunkInfo
	bases   []uint64 // sequence number of each chunk's first event
	total   uint64
	dataEnd int64 // offset one past the last frame (the terminator byte)
	// dict is the footer's run dictionary of a v4 trace (nil below v4).
	// Indexed consumers decode chunks in verify mode against it, so any
	// chunk range can be served without replaying the prefix that grew
	// the dictionary.
	dict *v4Dict
}

// NewIndexedReader parses the header and footer index of a trace of
// the given size. A structurally valid v1 trace returns ErrNoIndex.
func NewIndexedReader(ra io.ReaderAt, size int64) (*IndexedReader, error) {
	hr, err := NewReader(io.NewSectionReader(ra, 0, size))
	if err != nil {
		return nil, err
	}
	if hr.version < 2 {
		return nil, ErrNoIndex
	}
	tl, tfl := tailLen, int64(tailFixedLen)
	if hr.version >= 4 {
		tl, tfl = tailLenV4, int64(tailFixedLenV4)
	}
	if size < hr.off+1+tfl {
		return nil, fmt.Errorf("trace: file size %d too small for a v%d trailer", size, hr.version)
	}
	fixed := make([]byte, tfl)
	if _, err := ra.ReadAt(fixed, size-tfl); err != nil {
		return nil, fmt.Errorf("trace: read footer tail: %w", err)
	}
	var magic [8]byte
	copy(magic[:], fixed[tl+4:])
	if magic != footerMagic(hr.version) {
		return nil, fmt.Errorf("trace: bad footer magic %q", magic[:])
	}
	if binary.LittleEndian.Uint32(fixed[tl:tl+4]) != crc32.ChecksumIEEE(fixed[:tl]) {
		return nil, fmt.Errorf("trace: footer tail checksum mismatch")
	}
	indexLen := binary.LittleEndian.Uint64(fixed[0:8])
	total := binary.LittleEndian.Uint64(fixed[8:16])
	count := binary.LittleEndian.Uint64(fixed[16:24])
	if count > maxIndexChunks {
		return nil, fmt.Errorf("trace: index claims %d chunks (max %d)", count, maxIndexChunks)
	}
	idxStart := size - tfl - 4 - int64(indexLen)
	// The index sits just before its CRC and the fixed tail. In a v4
	// trace the CRC-guarded run dictionary sits between the terminator
	// byte and the index; below v4 the terminator abuts the index.
	dataEnd := idxStart - 1
	var dictLen uint64
	if hr.version >= 4 {
		dictLen = binary.LittleEndian.Uint64(fixed[24:32])
		if dictLen > uint64(size) {
			return nil, fmt.Errorf("trace: dictionary length %d does not fit the file", dictLen)
		}
		dataEnd = idxStart - 4 - int64(dictLen) - 1
	}
	if indexLen > uint64(size) || dataEnd < hr.off {
		return nil, fmt.Errorf("trace: index length %d does not fit the file", indexLen)
	}
	var dict *v4Dict
	if hr.version >= 4 {
		dbuf := make([]byte, dictLen+4)
		if _, err := ra.ReadAt(dbuf, dataEnd+1); err != nil {
			return nil, fmt.Errorf("trace: read run dictionary: %w", err)
		}
		if binary.LittleEndian.Uint32(dbuf[dictLen:]) != crc32.ChecksumIEEE(dbuf[:dictLen]) {
			return nil, fmt.Errorf("trace: dictionary checksum mismatch")
		}
		if dict, err = parseDictPayload(dbuf[:dictLen]); err != nil {
			return nil, err
		}
	}
	// The terminator byte ends the data section. The sequential reader
	// validates it on the way through; check it here too so the indexed
	// path rejects the same corruptions.
	var term [1]byte
	if _, err := ra.ReadAt(term[:], dataEnd); err != nil {
		return nil, fmt.Errorf("trace: read terminator: %w", err)
	}
	if term[0] != 0 {
		return nil, fmt.Errorf("trace: bad terminator byte %#x before footer", term[0])
	}
	buf := make([]byte, indexLen+4)
	if _, err := ra.ReadAt(buf, idxStart); err != nil {
		return nil, fmt.Errorf("trace: read chunk index: %w", err)
	}
	idx := buf[:indexLen]
	if binary.LittleEndian.Uint32(buf[indexLen:]) != crc32.ChecksumIEEE(idx) {
		return nil, fmt.Errorf("trace: index checksum mismatch")
	}
	pos := 0
	uvarint := func() (uint64, error) {
		u, n := binary.Uvarint(idx[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("trace: truncated index varint at offset %d", pos)
		}
		pos += n
		return u, nil
	}
	gotCount, err := uvarint()
	if err != nil {
		return nil, err
	}
	if gotCount != count {
		return nil, fmt.Errorf("trace: index records %d chunks, footer tail %d", gotCount, count)
	}
	chunks := make([]chunkInfo, count)
	bases := make([]uint64, count)
	prevOff := int64(0)
	var events uint64
	for i := range chunks {
		delta, err := uvarint()
		if err != nil {
			return nil, err
		}
		ev, err := uvarint()
		if err != nil {
			return nil, err
		}
		off := prevOff + int64(delta)
		if off < hr.off || off >= dataEnd {
			return nil, fmt.Errorf("trace: index offset %d for chunk %d outside the data section", off, i)
		}
		if i > 0 && off <= chunks[i-1].offset {
			return nil, fmt.Errorf("trace: index offsets not increasing at chunk %d", i)
		}
		if ev == 0 || ev > maxChunkEvents {
			return nil, fmt.Errorf("trace: index records %d events for chunk %d", ev, i)
		}
		chunks[i] = chunkInfo{offset: off, events: ev}
		bases[i] = events
		events += ev
		prevOff = off
	}
	if pos != len(idx) {
		return nil, fmt.Errorf("trace: %d trailing bytes after chunk index", len(idx)-pos)
	}
	if events != total {
		return nil, fmt.Errorf("trace: index sums to %d events, footer records %d", events, total)
	}
	if count > 0 && chunks[0].offset != hr.off {
		return nil, fmt.Errorf("trace: first chunk at offset %d, data section starts at %d", chunks[0].offset, hr.off)
	}
	return &IndexedReader{
		ra:      ra,
		meta:    hr.meta,
		version: hr.version,
		chunks:  chunks,
		bases:   bases,
		total:   total,
		dataEnd: dataEnd,
		dict:    dict,
	}, nil
}

// Meta returns the header document.
func (ir *IndexedReader) Meta() Meta { return ir.meta }

// Version returns the format version found in the header.
func (ir *IndexedReader) Version() int { return ir.version }

// Chunks returns the number of chunks in the trace.
func (ir *IndexedReader) Chunks() int { return len(ir.chunks) }

// TotalEvents returns the footer's event count.
func (ir *IndexedReader) TotalEvents() uint64 { return ir.total }

// Base returns the sequence number of chunk i's first event.
func (ir *IndexedReader) Base(i int) uint64 { return ir.bases[i] }

// rangeEnd returns the file offset one past chunk hi-1's frame.
func (ir *IndexedReader) rangeEnd(hi int) int64 {
	if hi < len(ir.chunks) {
		return ir.chunks[hi].offset
	}
	return ir.dataEnd
}

// Range returns a sequential source over chunks [lo, hi), decoding in
// the caller's goroutine with the same fused hot path as
// Reader.Events. The underlying section reader is created lazily on
// the first Next, so building many shard sources costs nothing until
// their workers start.
func (ir *IndexedReader) Range(prog *isa.Program, lo, hi int) *Source {
	if lo < 0 || hi > len(ir.chunks) || lo > hi {
		panic(fmt.Sprintf("trace: Range [%d,%d) outside %d chunks", lo, hi, len(ir.chunks)))
	}
	dec := &decoder{version: ir.version, dict: ir.dict}
	var (
		pool       slabPool
		br         *bufio.Reader
		payloadBuf []byte
		chunk      = lo
		expect     uint64
	)
	if lo < len(ir.chunks) {
		expect = ir.bases[lo]
	}
	next := func() ([]sim.Event, func(), error) {
		if chunk >= hi {
			return nil, nil, io.EOF
		}
		if br == nil {
			start := ir.chunks[lo].offset
			br = bufio.NewReaderSize(io.NewSectionReader(ir.ra, start, ir.rangeEnd(hi)-start), 1<<16)
		}
		f, err := readFrame(br, &payloadBuf)
		if err != nil {
			return nil, nil, fmt.Errorf("trace: chunk %d: %w", chunk, err)
		}
		base, evs, err := dec.decodeFrameEvents(f, prog, pool.get())
		if err != nil {
			return nil, nil, err
		}
		if base != expect {
			return nil, nil, fmt.Errorf("trace: chunk %d base %d, expected %d", chunk, base, expect)
		}
		if uint64(len(evs)) != ir.chunks[chunk].events {
			return nil, nil, fmt.Errorf("trace: chunk %d decoded %d events, index records %d",
				chunk, len(evs), ir.chunks[chunk].events)
		}
		expect += uint64(len(evs))
		chunk++
		return evs, pool.release(evs), nil
	}
	closeFn := func() {
		dec.release()
		payloadBuf = nil
		br = nil
	}
	return &Source{next: next, close: closeFn}
}

// ScanPCRuns decodes only the program-counter column of chunks
// [lo, hi), reporting the committed stream as maximal straight-line
// runs: run(pc, n) covers n events whose PCs are pc, pc+1, ...,
// pc+n-1, in commit order; concatenated, the runs reproduce exactly
// the PC sequence Range would decode. No slabs are filled and the
// taken/target/address columns are never decoded, which makes a
// phase-vector scan several times cheaper than event decode. Frames
// still pass CRC validation, and the PC column gets the full
// decoder's structural checks. The context is checked once per chunk.
func (ir *IndexedReader) ScanPCRuns(ctx context.Context, prog *isa.Program, lo, hi int, run func(pc, n int32)) error {
	return ir.ScanRunTokens(ctx, prog, lo, hi, func(pc, n int32, rep int64) {
		for ; rep > 0; rep-- {
			run(pc, n)
		}
	})
}

// ScanRunTokens is ScanPCRuns in repeat-compressed form: instead of
// reporting a back-to-back repeated run once per repetition, it
// reports run(pc, n, rep) — rep consecutive executions of the n-event
// straight-line run starting at pc. On a v4 trace the repeats come
// straight off the token stream without expansion, so a tight loop
// that dominates a phase costs one callback; on v2/v3 every run
// reports rep == 1. Expanding each callback rep times reproduces the
// exact ScanPCRuns sequence (adjacent callbacks may still repeat the
// same run: only v4 guarantees token-level merging, and even there
// chunk boundaries can split a repeat).
func (ir *IndexedReader) ScanRunTokens(ctx context.Context, prog *isa.Program, lo, hi int, run func(pc, n int32, rep int64)) error {
	if lo < 0 || hi > len(ir.chunks) || lo > hi {
		panic(fmt.Sprintf("trace: ScanRunTokens [%d,%d) outside %d chunks", lo, hi, len(ir.chunks)))
	}
	if lo == hi {
		return nil
	}
	dec := &decoder{version: ir.version, dict: ir.dict}
	defer dec.release()
	if ir.version >= 4 {
		// Binding validates every dictionary run against prog's
		// instruction count, the same pc+n guarantee the v2/v3 scanner
		// enforces per run.
		if err := ir.dict.bindShared(prog); err != nil {
			return err
		}
	}
	start := ir.chunks[lo].offset
	br := bufio.NewReaderSize(io.NewSectionReader(ir.ra, start, ir.rangeEnd(hi)-start), 1<<16)
	var payloadBuf []byte
	ni := int64(len(prog.Insts))
	expect := ir.bases[lo]
	for chunk := lo; chunk < hi; chunk++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		f, err := readFrame(br, &payloadBuf)
		if err != nil {
			return fmt.Errorf("trace: chunk %d: %w", chunk, err)
		}
		col, err := dec.framePCColumn(f)
		if err != nil {
			return err
		}
		var base uint64
		var n int
		if ir.version >= 4 {
			base, n, err = scanChunkTokensV4(col, ir.dict, &dec.sc, run)
		} else {
			base, n, _, err = scanChunkPCRuns(col, ir.version, ni, func(pc, rn int32) { run(pc, rn, 1) })
		}
		if err != nil {
			return err
		}
		if base != expect {
			return fmt.Errorf("trace: chunk %d base %d, expected %d", chunk, base, expect)
		}
		if uint64(n) != ir.chunks[chunk].events {
			return fmt.Errorf("trace: chunk %d decoded %d events, index records %d",
				chunk, n, ir.chunks[chunk].events)
		}
		expect += uint64(n)
	}
	return nil
}

// Tail decodes the last k events strictly before chunk `before`,
// walking backward over as many chunks as needed (tiny test-sized
// chunks can be smaller than k). It returns fewer than k events only
// when the trace has fewer before that point. The returned slice is
// freshly allocated — shard warm-up windows outlive the decode
// buffers.
func (ir *IndexedReader) Tail(prog *isa.Program, before, k int) ([]sim.Event, error) {
	if before <= 0 || k <= 0 {
		return nil, nil
	}
	lo := before
	var have uint64
	for lo > 0 && have < uint64(k) {
		lo--
		have += ir.chunks[lo].events
	}
	src := ir.Range(prog, lo, before)
	defer src.Close()
	var tail []sim.Event
	for {
		evs, release, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		tail = append(tail, evs...)
		release()
		if len(tail) > k {
			tail = tail[len(tail)-k:]
		}
	}
	out := make([]sim.Event, len(tail))
	copy(out, tail)
	return out, nil
}

// readFrame reads one chunk frame from br into *payloadBuf (grown as
// needed and reused across calls). It is the section-reader analogue
// of Reader.nextFrame; the terminator never appears because Range
// sections end at the last frame boundary.
func readFrame(br *bufio.Reader, payloadBuf *[]byte) (frame, error) {
	rawLen, err := binary.ReadUvarint(br)
	if err != nil {
		return frame{}, fmt.Errorf("read chunk length: %w", err)
	}
	if rawLen == 0 || rawLen > maxFrameBytes {
		return frame{}, fmt.Errorf("bad chunk raw length %d", rawLen)
	}
	kind, err := br.ReadByte()
	if err != nil {
		return frame{}, fmt.Errorf("read compression kind: %w", err)
	}
	compLen, err := binary.ReadUvarint(br)
	if err != nil {
		return frame{}, fmt.Errorf("read payload length: %w", err)
	}
	if compLen > maxFrameBytes {
		return frame{}, fmt.Errorf("chunk payload length %d too large", compLen)
	}
	var crc [4]byte
	if _, err := io.ReadFull(br, crc[:]); err != nil {
		return frame{}, fmt.Errorf("read chunk crc: %w", err)
	}
	if cap(*payloadBuf) < int(compLen) {
		*payloadBuf = make([]byte, compLen)
	}
	payload := (*payloadBuf)[:compLen]
	if _, err := io.ReadFull(br, payload); err != nil {
		return frame{}, fmt.Errorf("read chunk payload: %w", err)
	}
	if binary.LittleEndian.Uint32(crc[:]) != crc32.ChecksumIEEE(payload) {
		return frame{}, fmt.Errorf("chunk checksum mismatch")
	}
	return frame{rawLen: int(rawLen), kind: kind, payload: payload}, nil
}
