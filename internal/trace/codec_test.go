package trace

import (
	"math"
	"math/rand"
	"testing"
)

func randomRecords(r *rand.Rand, n int) []Record {
	recs := make([]Record, n)
	pc := int32(0)
	for i := range recs {
		// Mostly small forward steps with occasional long jumps, like a
		// real committed-instruction stream.
		switch r.Intn(10) {
		case 0:
			pc = int32(r.Intn(1 << 20))
		default:
			pc += int32(r.Intn(8))
		}
		rec := Record{PC: pc, Target: pc + 1}
		if r.Intn(4) == 0 {
			rec.Target = int32(r.Intn(1 << 20))
			rec.Taken = r.Intn(2) == 0
		}
		if r.Intn(3) == 0 {
			rec.Addr = uint64(r.Intn(1 << 30))
		}
		recs[i] = rec
	}
	return recs
}

func TestChunkRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	cases := [][]Record{
		{},
		{{PC: 0, Target: 1}},
		{{PC: 5, Target: 6, Addr: 0x1000, Taken: true}},
		{
			{PC: math.MaxInt32, Target: math.MinInt32, Addr: math.MaxUint64, Taken: true},
			{PC: math.MinInt32, Target: math.MaxInt32, Addr: 1},
		},
		randomRecords(r, 1),
		randomRecords(r, 7),
		randomRecords(r, 8),
		randomRecords(r, 9),
		randomRecords(r, 1000),
		randomRecords(r, ChunkEvents),
	}
	for ci, recs := range cases {
		for version := 1; version <= FormatVersion; version++ {
			for _, base := range []uint64{0, 1, 1 << 40} {
				buf := appendChunk(nil, base, recs, version)
				gotBase, got, err := decodeChunk(buf, nil, version)
				if err != nil {
					t.Fatalf("case %d v%d base %d: decode: %v", ci, version, base, err)
				}
				if gotBase != base {
					t.Fatalf("case %d: base %d, want %d", ci, gotBase, base)
				}
				if len(got) != len(recs) {
					t.Fatalf("case %d: %d records, want %d", ci, len(got), len(recs))
				}
				for i := range recs {
					if got[i] != recs[i] {
						t.Fatalf("case %d record %d: got %+v want %+v", ci, i, got[i], recs[i])
					}
				}
			}
		}
	}
}

func TestChunkDecodeRecyclesBuffer(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	big := randomRecords(r, 500)
	small := randomRecords(r, 20)
	buf := appendChunk(nil, 0, big, FormatVersion)
	_, recs, err := decodeChunk(buf, nil, FormatVersion)
	if err != nil {
		t.Fatal(err)
	}
	buf2 := appendChunk(nil, 500, small, FormatVersion)
	_, recs2, err := decodeChunk(buf2, recs, FormatVersion)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs2) != len(small) {
		t.Fatalf("recycled decode returned %d records, want %d", len(recs2), len(small))
	}
	for i := range small {
		if recs2[i] != small[i] {
			t.Fatalf("record %d: got %+v want %+v", i, recs2[i], small[i])
		}
	}
	if &recs2[0] != &recs[0] {
		t.Error("decode did not reuse the provided buffer")
	}
}

func TestChunkDecodeRejectsCorruption(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	recs := randomRecords(r, 100)
	for version := 1; version <= FormatVersion; version++ {
		buf := appendChunk(nil, 42, recs, version)

		// Truncation at every prefix length must error, never panic.
		for n := 0; n < len(buf); n++ {
			if _, _, err := decodeChunk(buf[:n], nil, version); err == nil {
				// A prefix can occasionally decode as a smaller valid chunk
				// only if every stream happens to terminate; with trailing
				// bytes rejected that means the count shrank, which the
				// varint layout cannot produce from a prefix. Treat any
				// silent success as a bug.
				t.Fatalf("v%d: truncated chunk (%d of %d bytes) decoded without error", version, n, len(buf))
			}
		}

		// Trailing garbage is rejected.
		if _, _, err := decodeChunk(append(append([]byte{}, buf...), 0), nil, version); err == nil {
			t.Errorf("v%d: chunk with trailing byte decoded without error", version)
		}

		// A hostile record count cannot cause a huge allocation.
		hostile := appendChunk(nil, 0, nil, version)
		hostile = hostile[:1] // keep base, drop count
		hostile = append(hostile, 0xff, 0xff, 0xff, 0xff, 0x7f)
		if _, _, err := decodeChunk(hostile, nil, version); err == nil {
			t.Errorf("v%d: hostile record count decoded without error", version)
		}
	}
}
