package trace

import (
	"testing"

	"bioperfload/internal/sim"
)

func BenchmarkDecodeChunkEvents(b *testing.B) {
	prog := testProgram(1 << 12)
	recs := make([]Record, ChunkEvents)
	pc := int32(100)
	for i := range recs {
		recs[i] = Record{PC: pc, Target: pc + 1}
		if i%4 == 0 {
			recs[i].Addr = uint64(0x1000 + i*8)
		}
		if i%7 == 0 {
			recs[i].Taken = true
			recs[i].Target = pc - 50
		}
		pc++
		if pc > 300 {
			pc = 100
		}
	}
	data := appendChunk(nil, 0, recs, FormatVersion)
	evs := make([]sim.Event, 0, ChunkEvents)
	b.SetBytes(int64(len(recs)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, out, err := decodeChunkEvents(data, prog, evs, FormatVersion)
		if err != nil {
			b.Fatal(err)
		}
		evs = out[:0]
	}
}
