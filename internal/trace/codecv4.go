package trace

import (
	"encoding/binary"
	"fmt"
	"sync"

	"bioperfload/internal/isa"
	"bioperfload/internal/runstream"
	"bioperfload/internal/sim"
)

// Format v4 is the run-native encoding: the dynamic stream of a
// simulator run is a small static vocabulary of straight-line PC runs
// repeated, so v4 stores the vocabulary once — a trace-wide run
// dictionary, grown chunk by chunk and repeated verbatim in the footer
// — and each chunk becomes a stream of (run-id, repeat) tokens. The
// per-event columns shrink to exactly the bits the program text cannot
// predict: one taken bit per conditional-branch instance and one
// address varint per memory instance (delta-coded per static load/
// store site, where strides make the deltas self-similar). Everything
// else — PCs, targets, classes, the taken flag of unconditional
// branches — is a dictionary lookup, so the column decode the
// block-characterized replay consumes does zero per-event varint work
// outside the address column.
//
// Chunk payload (after the shared uvarint base / uvarint n header):
//
//	uvarint dictBase       dictionary size before this chunk
//	uvarint newRuns        entries this chunk appends
//	newRuns × {
//	    zigzag pcDelta     run start PC, delta-chained within the group
//	    uvarint len        run length (≥ 1)
//	}
//	uvarint nTokens
//	nTokens × {
//	    uvarint runID      < dictBase + newRuns
//	    uvarint rep        ≥ 1; adjacent tokens never share an ID
//	}
//	zigzag finalTargetDelta   last event's Target minus (lastPC + 1)
//	--- split-compression cut ---
//	⌈nbr/8⌉ bytes          taken bitmap over the chunk's conditional-
//	                       branch instances in commit order, where
//	                       nbr = Σ condCount(run) × rep
//	nmem zigzag varints    address deltas, one per memory-class
//	                       instance in commit order, each delta-chained
//	                       against the previous address of the same
//	                       static PC (chains reset to 0 per chunk)
//
// Every other event field is implied: PCs and intra-run targets come
// from the dictionary, run-final targets are the next instance's start
// PC (the explicit finalTargetDelta covers the chunk's last event),
// conditional branches read the bitmap, unconditional branches are
// always taken, and non-branches never are. A stream is representable
// exactly when it satisfies those invariants — which every
// simulator-produced stream does; the writer verifies them and fails
// sticky rather than emit a lossy chunk.
//
// The footer repeats the full dictionary (same pcDelta/len encoding,
// CRC-guarded) so a random-access reader can decode any chunk without
// replaying the prefix that grew the dictionary; chunks then carry
// dictBase + their own entries purely as cross-checks.

// maxDictRuns caps the run-dictionary allocation a corrupted stream
// can request. Real programs intern a few thousand runs.
const maxDictRuns = 1 << 22

// v4 footer geometry. After the terminator byte the v4 trailer is:
//
//	dict payload:
//	    uvarint runCount
//	    runCount × { zigzag pcDelta, uvarint len }
//	uint32 LE   CRC-32 (IEEE) of the dict payload
//	index payload + uint32 CRC     (exactly the v2 index)
//	fixed tail (tailLenV4 bytes):
//	    uint64 LE indexLen
//	    uint64 LE totalEvents
//	    uint64 LE chunkCount
//	    uint64 LE dictLen      length of the dict payload in bytes
//	uint32 LE   CRC-32 (IEEE) of the fixed tail
//	[8]byte     footer magic "BPTREND4"
const (
	tailLenV4      = 32
	tailFixedLenV4 = tailLenV4 + 4 + 8
)

// dictRun is one run-dictionary entry: the straight-line run
// [pc, pc+n).
type dictRun struct {
	pc int32
	n  int32
}

func dictKey(pc, n int32) uint64 {
	return uint64(uint32(pc))<<32 | uint64(uint32(n))
}

// v4Dict is the reader- and writer-side run dictionary plus the
// class tables derived from the program at bind time. The raw entries
// (runs, ids) are maintained while parsing — growing under the
// sequential reader, loaded whole from the footer by the indexed
// reader — and are structurally validated without a program. The
// bound tables need the program and are built once by bind/bindShared
// before any taken/address column is decoded.
type v4Dict struct {
	runs []dictRun
	ids  map[uint64]int32 // dictKey → id, for duplicate rejection

	// Bound tables. condStart/uncondStart/memStart index the flat
	// offset arrays per run (len(runs)+1 entries); rsDict mirrors runs
	// in the shape runstream consumers share.
	bound       int // runs bound so far
	ni          int32
	isCond      []bool // per PC
	isUncond    []bool
	isMem       []bool
	condStart   []int32
	uncondStart []int32
	memStart    []int32
	condOff     []int32
	uncondOff   []int32
	memOff      []int32
	rsDict      *runstream.Dict

	bindOnce sync.Once
	bindErr  error
}

func newV4Dict() *v4Dict {
	return &v4Dict{ids: make(map[uint64]int32)}
}

// add validates and appends one entry, rejecting malformed or
// duplicate runs. It performs only program-independent checks; the
// pc+n ≤ len(prog.Insts) bound is enforced at bind time.
func (d *v4Dict) add(pc int32, n int64) error {
	if n < 1 || n > maxChunkEvents {
		return fmt.Errorf("trace: dictionary run length %d out of range", n)
	}
	if pc < 0 || int64(pc)+n > 1<<31 {
		return fmt.Errorf("trace: dictionary run [%d,%d) out of PC range", pc, int64(pc)+n)
	}
	if len(d.runs) >= maxDictRuns {
		return fmt.Errorf("trace: run dictionary exceeds %d entries", maxDictRuns)
	}
	key := dictKey(pc, int32(n))
	if _, dup := d.ids[key]; dup {
		return fmt.Errorf("trace: duplicate dictionary run [%d,%d)", pc, int64(pc)+n)
	}
	d.ids[key] = int32(len(d.runs))
	d.runs = append(d.runs, dictRun{pc: pc, n: int32(n)})
	return nil
}

// bind extends the class tables over entries [d.bound, len(d.runs)).
// Not safe for concurrent use; the sequential reader calls it as its
// dictionary grows, the indexed reader exactly once via bindShared.
func (d *v4Dict) bind(prog *isa.Program) error {
	if d.isCond == nil {
		ni := len(prog.Insts)
		d.ni = int32(ni)
		d.isCond = make([]bool, ni)
		d.isUncond = make([]bool, ni)
		d.isMem = make([]bool, ni)
		for pc := range prog.Insts {
			switch isa.ClassOf(prog.Insts[pc].Op) {
			case isa.ClassCondBranch:
				d.isCond[pc] = true
			case isa.ClassUncondBranch:
				d.isUncond[pc] = true
			case isa.ClassLoad, isa.ClassStore:
				d.isMem[pc] = true
			}
		}
		d.condStart = append(d.condStart, 0)
		d.uncondStart = append(d.uncondStart, 0)
		d.memStart = append(d.memStart, 0)
		d.rsDict = &runstream.Dict{}
	}
	for ; d.bound < len(d.runs); d.bound++ {
		r := d.runs[d.bound]
		if int64(r.pc)+int64(r.n) > int64(d.ni) {
			return fmt.Errorf("trace: dictionary run [%d,%d) outside program (%d insts)",
				r.pc, int64(r.pc)+int64(r.n), d.ni)
		}
		for off := int32(0); off < r.n; off++ {
			pc := r.pc + off
			switch {
			case d.isCond[pc]:
				d.condOff = append(d.condOff, off)
			case d.isUncond[pc]:
				d.uncondOff = append(d.uncondOff, off)
			case d.isMem[pc]:
				d.memOff = append(d.memOff, off)
			}
		}
		d.condStart = append(d.condStart, int32(len(d.condOff)))
		d.uncondStart = append(d.uncondStart, int32(len(d.uncondOff)))
		d.memStart = append(d.memStart, int32(len(d.memOff)))
		d.rsDict.Runs = append(d.rsDict.Runs, runstream.Run{PC: r.pc, N: r.n})
	}
	return nil
}

// bindShared is bind for the indexed reader's immutable,
// footer-loaded dictionary: many shard workers may race to the first
// column decode, so the (one-shot) bind runs under a sync.Once.
func (d *v4Dict) bindShared(prog *isa.Program) error {
	d.bindOnce.Do(func() { d.bindErr = d.bind(prog) })
	return d.bindErr
}

func (d *v4Dict) condCount(id int32) int32 {
	return d.condStart[id+1] - d.condStart[id]
}

func (d *v4Dict) memCount(id int32) int32 {
	return d.memStart[id+1] - d.memStart[id]
}

// appendDictPayload encodes the dictionary's footer payload.
func appendDictPayload(dst []byte, runs []dictRun) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(runs)))
	prev := int64(0)
	for _, r := range runs {
		dst = binary.AppendUvarint(dst, zigzag(int64(r.pc)-prev))
		dst = binary.AppendUvarint(dst, uint64(r.n))
		prev = int64(r.pc)
	}
	return dst
}

// parseDictPayload decodes a footer dict payload into a fresh
// dictionary, with the same structural validation chunk-carried
// entries get.
func parseDictPayload(data []byte) (*v4Dict, error) {
	d := newV4Dict()
	pos := 0
	count, pos, err := uvarintAt(data, pos)
	if err != nil {
		return nil, fmt.Errorf("trace: read dictionary count: %w", err)
	}
	if count > maxDictRuns {
		return nil, fmt.Errorf("trace: dictionary claims %d runs (max %d)", count, maxDictRuns)
	}
	prev := int64(0)
	for i := uint64(0); i < count; i++ {
		var u uint64
		if u, pos, err = uvarintAt(data, pos); err != nil {
			return nil, err
		}
		pc := prev + unzigzag(u)
		if u, pos, err = uvarintAt(data, pos); err != nil {
			return nil, err
		}
		if pc < 0 || pc >= 1<<31 {
			return nil, fmt.Errorf("trace: dictionary run PC %d out of range", pc)
		}
		if err := d.add(int32(pc), int64(u)); err != nil {
			return nil, err
		}
		prev = pc
	}
	if pos != len(data) {
		return nil, fmt.Errorf("trace: %d trailing bytes after dictionary", len(data)-pos)
	}
	return d, nil
}

// v4Scratch holds the per-decoder chunk-local address chains: one
// previous-address slot per static PC, epoch-stamped so resetting
// between chunks is a counter bump, not a clear.
type v4Scratch struct {
	prevAddr []uint64
	epoch    []uint32
	cur      uint32
	tokens   []runstream.Token
	newRuns  []dictRun
}

func (sc *v4Scratch) nextEpoch(ni int) {
	if len(sc.prevAddr) < ni {
		sc.prevAddr = make([]uint64, ni)
		sc.epoch = make([]uint32, ni)
		sc.cur = 0
	}
	sc.cur++
	if sc.cur == 0 { // epoch counter wrapped: clear and restart
		for i := range sc.epoch {
			sc.epoch[i] = 0
		}
		sc.cur = 1
	}
}

func (sc *v4Scratch) prev(pc int32) uint64 {
	if sc.epoch[pc] != sc.cur {
		return 0
	}
	return sc.prevAddr[pc]
}

func (sc *v4Scratch) set(pc int32, a uint64) {
	sc.epoch[pc] = sc.cur
	sc.prevAddr[pc] = a
}

// v4Hdr is the parsed token stream of one chunk (everything before
// the split-compression cut).
type v4Hdr struct {
	base       uint64
	n          int
	dictBase   int
	newRuns    int
	tokens     []runstream.Token
	finalDelta int64
	pos        int // offset just past finalTargetDelta
}

// parseChunkV4 parses and validates a chunk's token stream against
// dict. In grow mode (sequential reader, chunks seen in commit order)
// the chunk's dictBase must equal the dictionary size and the new
// entries are appended; in verify mode (indexed reader, dictionary
// loaded whole from the footer) the new entries must match the
// footer's at the same ids. data may be a stream-1 prefix: parsing
// stops at the cut.
func parseChunkV4(data []byte, dict *v4Dict, grow bool, sc *v4Scratch) (v4Hdr, error) {
	var h v4Hdr
	pos := 0
	base, pos, err := uvarintAt(data, pos)
	if err != nil {
		return h, err
	}
	n64, pos, err := uvarintAt(data, pos)
	if err != nil {
		return h, err
	}
	if n64 == 0 || n64 > maxChunkEvents {
		return h, fmt.Errorf("trace: chunk claims %d records (max %d)", n64, maxChunkEvents)
	}
	dictBase64, pos, err := uvarintAt(data, pos)
	if err != nil {
		return h, err
	}
	newRuns64, pos, err := uvarintAt(data, pos)
	if err != nil {
		return h, err
	}
	if dictBase64 > maxDictRuns || newRuns64 > n64 {
		return h, fmt.Errorf("trace: chunk dictionary section out of range (base %d, new %d)", dictBase64, newRuns64)
	}
	dictBase, newRuns := int(dictBase64), int(newRuns64)
	if grow {
		if dictBase != len(dict.runs) {
			return h, fmt.Errorf("trace: chunk dictBase %d, dictionary has %d runs", dictBase, len(dict.runs))
		}
	} else if dictBase+newRuns > len(dict.runs) {
		return h, fmt.Errorf("trace: chunk defines runs %d..%d, footer dictionary has %d",
			dictBase, dictBase+newRuns, len(dict.runs))
	}
	sc.newRuns = sc.newRuns[:0]
	prev := int64(0)
	for i := 0; i < newRuns; i++ {
		var u uint64
		if u, pos, err = uvarintAt(data, pos); err != nil {
			return h, err
		}
		pc := prev + unzigzag(u)
		if u, pos, err = uvarintAt(data, pos); err != nil {
			return h, err
		}
		if pc < 0 || pc >= 1<<31 {
			return h, fmt.Errorf("trace: dictionary run PC %d out of range", pc)
		}
		prev = pc
		if u < 1 || u > maxChunkEvents || int64(pc)+int64(u) > 1<<31 {
			return h, fmt.Errorf("trace: dictionary run [%d,%d) out of range", pc, int64(pc)+int64(u))
		}
		sc.newRuns = append(sc.newRuns, dictRun{pc: int32(pc), n: int32(u)})
	}
	if grow {
		for _, r := range sc.newRuns {
			if err := dict.add(r.pc, int64(r.n)); err != nil {
				return h, err
			}
		}
	} else {
		for i, r := range sc.newRuns {
			if dict.runs[dictBase+i] != r {
				return h, fmt.Errorf("trace: chunk dictionary entry %d ([%d,%d)) disagrees with footer",
					dictBase+i, r.pc, int64(r.pc)+int64(r.n))
			}
		}
	}
	nTok64, pos, err := uvarintAt(data, pos)
	if err != nil {
		return h, err
	}
	if nTok64 > n64 {
		return h, fmt.Errorf("trace: chunk claims %d tokens for %d events", nTok64, n64)
	}
	limit := dictBase + newRuns
	sc.tokens = sc.tokens[:0]
	var sum int64
	prevID := int32(-1)
	for i := 0; i < int(nTok64); i++ {
		var u uint64
		if u, pos, err = uvarintAt(data, pos); err != nil {
			return h, err
		}
		if u >= uint64(limit) {
			return h, fmt.Errorf("trace: token %d references run %d outside dictionary (%d runs)", i, u, limit)
		}
		id := int32(u)
		if id == prevID {
			return h, fmt.Errorf("trace: token %d repeats run %d (non-canonical stream)", i, id)
		}
		prevID = id
		if u, pos, err = uvarintAt(data, pos); err != nil {
			return h, err
		}
		if u < 1 || u > n64 {
			return h, fmt.Errorf("trace: token %d repeat count %d out of range", i, u)
		}
		sum += int64(dict.runs[id].n) * int64(u)
		if sum > int64(n64) {
			return h, fmt.Errorf("trace: token stream spans %d+ events, chunk claims %d", sum, n64)
		}
		sc.tokens = append(sc.tokens, runstream.Token{ID: id, Rep: int32(u)})
	}
	if sum != int64(n64) {
		return h, fmt.Errorf("trace: token stream spans %d events, chunk claims %d", sum, n64)
	}
	var u uint64
	if u, pos, err = uvarintAt(data, pos); err != nil {
		return h, err
	}
	h = v4Hdr{
		base:       base,
		n:          int(n64),
		dictBase:   dictBase,
		newRuns:    newRuns,
		tokens:     sc.tokens,
		finalDelta: unzigzag(u),
		pos:        pos,
	}
	return h, nil
}

// v4ColumnCounts sums the bitmap and address-column geometry of a
// parsed token stream; it needs a bound dictionary.
func v4ColumnCounts(dict *v4Dict, tokens []runstream.Token) (nbr, nmem int) {
	for _, t := range tokens {
		nbr += int(dict.condCount(t.ID)) * int(t.Rep)
		nmem += int(dict.memCount(t.ID)) * int(t.Rep)
	}
	return nbr, nmem
}

// decodeChunkEventsV4 decodes one v4 chunk payload into bound
// simulator events: tokens expand to PC runs via the dictionary,
// targets are the next instance's start PC (finalTargetDelta for the
// chunk's last event), conditional branches read the taken bitmap,
// unconditional branches are always taken, and the address column
// fills memory instances (zero addresses included). dict must be
// bound to prog.
func decodeChunkEventsV4(data []byte, prog *isa.Program, dict *v4Dict, grow bool, evs []sim.Event, sc *v4Scratch) (uint64, []sim.Event, error) {
	h, err := parseChunkV4(data, dict, grow, sc)
	if err != nil {
		return 0, nil, err
	}
	if err := bindFor(dict, prog, grow); err != nil {
		return 0, nil, err
	}
	n := h.n
	if cap(evs) < n {
		evs = make([]sim.Event, n)
	}
	evs = evs[:n]
	insts := prog.Insts

	// PC expansion: every instance gets the fallthrough target; each
	// run-final event's target is patched to the next instance's start
	// PC once that is known.
	i := 0
	pending := -1 // run-final event awaiting its target
	for _, t := range h.tokens {
		r := dict.runs[t.ID]
		for rep := int32(0); rep < t.Rep; rep++ {
			if pending >= 0 {
				evs[pending].Target = r.pc
			}
			for off := int32(0); off < r.n; off++ {
				pc := r.pc + off
				evs[i] = sim.Event{Seq: h.base + uint64(i), PC: pc, Target: pc + 1, Inst: &insts[pc]}
				i++
			}
			pending = i - 1
		}
	}
	last := &evs[n-1]
	ft := int64(last.PC) + 1 + h.finalDelta
	if ft < -(1<<31) || ft >= 1<<31 {
		return 0, nil, fmt.Errorf("trace: target %d out of int32 range", ft)
	}
	last.Target = int32(ft)

	// Taken column: one bit per conditional-branch instance;
	// unconditional branches are implied taken.
	nbr, _ := v4ColumnCounts(dict, h.tokens)
	nbb := (nbr + 7) / 8
	pos := h.pos
	if pos+nbb > len(data) {
		return 0, nil, fmt.Errorf("trace: chunk truncated at offset %d (need %d bytes)", pos, nbb)
	}
	bm := data[pos : pos+nbb]
	pos += nbb
	if nbr%8 != 0 && bm[nbb-1]>>(nbr%8) != 0 {
		return 0, nil, fmt.Errorf("trace: nonzero padding bits in chunk bitmap")
	}
	bit := 0
	i = 0
	for _, t := range h.tokens {
		id := t.ID
		r := dict.runs[id]
		cOffs := dict.condOff[dict.condStart[id]:dict.condStart[id+1]]
		uOffs := dict.uncondOff[dict.uncondStart[id]:dict.uncondStart[id+1]]
		for rep := int32(0); rep < t.Rep; rep++ {
			for _, off := range cOffs {
				if bm[bit>>3]&(1<<(bit&7)) != 0 {
					evs[i+int(off)].Taken = true
				}
				bit++
			}
			for _, off := range uOffs {
				evs[i+int(off)].Taken = true
			}
			i += int(r.n)
		}
	}

	// Address column: one delta per memory instance, chained per
	// static site.
	sc.nextEpoch(int(dict.ni))
	i = 0
	got := 0
	for _, t := range h.tokens {
		id := t.ID
		r := dict.runs[id]
		mOffs := dict.memOff[dict.memStart[id]:dict.memStart[id+1]]
		for rep := int32(0); rep < t.Rep; rep++ {
			for _, off := range mOffs {
				if uint(pos) >= uint(len(data)) {
					return 0, nil, errTruncatedVarint
				}
				u := uint64(data[pos])
				pos++
				if u >= 0x80 {
					if uint(pos) < uint(len(data)) && data[pos] < 0x80 {
						u = u&0x7f | uint64(data[pos])<<7
						pos++
					} else if u, pos, err = uvarintAt(data, pos-1); err != nil {
						return 0, nil, err
					}
				}
				pc := r.pc + off
				a := sc.prev(pc) + uint64(unzigzag(u))
				sc.set(pc, a)
				evs[i+int(off)].Addr = a
				got++
			}
			i += int(r.n)
		}
	}
	if pos != len(data) {
		return 0, nil, fmt.Errorf("trace: %d trailing bytes after chunk payload", len(data)-pos)
	}
	return h.base, evs, nil
}

// bindFor extends (grow mode) or one-shot binds (verify mode) the
// dictionary's class tables.
func bindFor(dict *v4Dict, prog *isa.Program, grow bool) error {
	if grow {
		return dict.bind(prog)
	}
	return dict.bindShared(prog)
}

// decodeChunkColumnsV4 decodes one v4 chunk payload into the
// dictionary-backed column form: tokens stay tokens (the run engine
// multiplies per token, not per event), the taken bitmap is copied
// verbatim, and only the address column is expanded — one value per
// memory instance. dict must be bound.
func decodeChunkColumnsV4(data []byte, dict *v4Dict, ch *runstream.Chunk, sc *v4Scratch) error {
	h, err := parseChunkV4(data, dict, false, sc)
	if err != nil {
		return err
	}
	ch.Base = h.base
	ch.N = h.n
	ch.Runs = ch.Runs[:0]
	ch.Taken = ch.Taken[:0]
	ch.Present = ch.Present[:0]
	ch.Dict = dict.rsDict
	ch.Tokens = append(ch.Tokens[:0], h.tokens...)
	ch.Addrs = ch.Addrs[:0]

	nbr, nmem := v4ColumnCounts(dict, h.tokens)
	nbb := (nbr + 7) / 8
	pos := h.pos
	if pos+nbb > len(data) {
		return fmt.Errorf("trace: chunk truncated at offset %d (need %d bytes)", pos, nbb)
	}
	bm := data[pos : pos+nbb]
	pos += nbb
	if nbr%8 != 0 && bm[nbb-1]>>(nbr%8) != 0 {
		return fmt.Errorf("trace: nonzero padding bits in chunk bitmap")
	}
	ch.BrTaken = append(ch.BrTaken[:0], bm...)

	if cap(ch.Addrs) < nmem {
		ch.Addrs = make([]uint64, 0, nmem+nmem/4)
	}
	sc.nextEpoch(int(dict.ni))
	for _, t := range h.tokens {
		id := t.ID
		mOffs := dict.memOff[dict.memStart[id]:dict.memStart[id+1]]
		pcBase := dict.runs[id].pc
		for rep := int32(0); rep < t.Rep; rep++ {
			for _, off := range mOffs {
				if uint(pos) >= uint(len(data)) {
					return errTruncatedVarint
				}
				u := uint64(data[pos])
				pos++
				if u >= 0x80 {
					if uint(pos) < uint(len(data)) && data[pos] < 0x80 {
						u = u&0x7f | uint64(data[pos])<<7
						pos++
					} else if u, pos, err = uvarintAt(data, pos-1); err != nil {
						return err
					}
				}
				pc := pcBase + off
				a := sc.prev(pc) + uint64(unzigzag(u))
				sc.set(pc, a)
				ch.Addrs = append(ch.Addrs, a)
			}
		}
	}
	if pos != len(data) {
		return fmt.Errorf("trace: %d trailing bytes after chunk payload", len(data)-pos)
	}
	return nil
}

// scanChunkTokensV4 parses only the token stream of a v4 chunk
// (structural and dictionary validation included) and reports it
// through fn. data may be a stream-1 prefix (framePCColumn's
// contract); trailing-byte validation of the full payload is the
// column/event decoders' job.
func scanChunkTokensV4(data []byte, dict *v4Dict, sc *v4Scratch, fn func(pc, n int32, rep int64)) (uint64, int, error) {
	h, err := parseChunkV4(data, dict, false, sc)
	if err != nil {
		return 0, 0, err
	}
	for _, t := range h.tokens {
		r := dict.runs[t.ID]
		fn(r.pc, r.n, int64(t.Rep))
	}
	return h.base, h.n, nil
}

// v4Writer is the writer-side encoder state: the growing dictionary,
// the program class tables the representability checks need, and the
// per-chunk address chains.
type v4Writer struct {
	prog *isa.Program
	dict *v4Dict
	ni   int32

	cls []byte // per PC: 0 other, 1 cond branch, 2 uncond branch, 3 mem

	tokens  []runstream.Token
	newRuns []dictRun
	sc      v4Scratch
}

func newV4Writer(prog *isa.Program) *v4Writer {
	vw := &v4Writer{prog: prog, dict: newV4Dict(), ni: int32(len(prog.Insts))}
	vw.cls = make([]byte, len(prog.Insts))
	for pc := range prog.Insts {
		switch isa.ClassOf(prog.Insts[pc].Op) {
		case isa.ClassCondBranch:
			vw.cls[pc] = 1
		case isa.ClassUncondBranch:
			vw.cls[pc] = 2
		case isa.ClassLoad, isa.ClassStore:
			vw.cls[pc] = 3
		}
	}
	return vw
}

// appendChunk encodes recs as a v4 chunk onto dst, growing the
// dictionary, and returns the extended slice plus the
// split-compression cut (the end of the token stream). It fails —
// and the Writer sticks the error — if the stream is not
// run-representable: every non-final event's target must be the next
// event's PC, unconditional branches must be taken, non-branches must
// not be, and only memory-class events may carry addresses.
func (vw *v4Writer) appendChunk(dst []byte, base uint64, recs []Record) ([]byte, int, error) {
	var tmp [binary.MaxVarintLen64]byte
	put := func(u uint64) {
		n := binary.PutUvarint(tmp[:], u)
		dst = append(dst, tmp[:n]...)
	}
	n := len(recs)
	dictBase := len(vw.dict.runs)
	vw.tokens = vw.tokens[:0]
	vw.newRuns = vw.newRuns[:0]
	nbr := 0
	start := 0
	for i := 0; i < n; i++ {
		r := &recs[i]
		if r.PC < 0 || r.PC >= vw.ni {
			return dst, 0, fmt.Errorf("trace: record %d: pc %d outside program %s (%d insts)",
				base+uint64(i), r.PC, vw.prog.Name, vw.ni)
		}
		switch vw.cls[r.PC] {
		case 1:
			nbr++
		case 2:
			if !r.Taken {
				return dst, 0, fmt.Errorf("trace: record %d: unconditional branch at pc %d not taken — stream is not run-representable", base+uint64(i), r.PC)
			}
		default:
			if r.Taken {
				return dst, 0, fmt.Errorf("trace: record %d: non-branch at pc %d marked taken — stream is not run-representable", base+uint64(i), r.PC)
			}
		}
		if vw.cls[r.PC] != 3 && r.Addr != 0 {
			return dst, 0, fmt.Errorf("trace: record %d: non-memory instruction at pc %d carries address %#x — stream is not run-representable", base+uint64(i), r.PC, r.Addr)
		}
		if i+1 < n {
			if r.Target != recs[i+1].PC {
				return dst, 0, fmt.Errorf("trace: record %d: target %d is not the next PC %d — stream is not run-representable",
					base+uint64(i), r.Target, recs[i+1].PC)
			}
			if recs[i+1].PC == r.PC+1 {
				continue // run extends
			}
		}
		// Run [start, i] ends here.
		pc, rn := recs[start].PC, int32(i-start+1)
		key := dictKey(pc, rn)
		id, ok := vw.dict.ids[key]
		if !ok {
			if len(vw.dict.runs) >= maxDictRuns {
				return dst, 0, fmt.Errorf("trace: run dictionary exceeds %d entries", maxDictRuns)
			}
			id = int32(len(vw.dict.runs))
			vw.dict.ids[key] = id
			vw.dict.runs = append(vw.dict.runs, dictRun{pc: pc, n: rn})
			vw.newRuns = append(vw.newRuns, dictRun{pc: pc, n: rn})
		}
		if k := len(vw.tokens); k > 0 && vw.tokens[k-1].ID == id {
			vw.tokens[k-1].Rep++
		} else {
			vw.tokens = append(vw.tokens, runstream.Token{ID: id, Rep: 1})
		}
		start = i + 1
	}

	put(base)
	put(uint64(n))
	put(uint64(dictBase))
	put(uint64(len(vw.newRuns)))
	prev := int64(0)
	for _, e := range vw.newRuns {
		put(zigzag(int64(e.pc) - prev))
		put(uint64(e.n))
		prev = int64(e.pc)
	}
	put(uint64(len(vw.tokens)))
	for _, t := range vw.tokens {
		put(uint64(t.ID))
		put(uint64(t.Rep))
	}
	last := &recs[n-1]
	put(zigzag(int64(last.Target) - int64(last.PC) - 1))
	cut := len(dst)

	nbb := (nbr + 7) / 8
	off := len(dst)
	dst = append(dst, make([]byte, nbb)...)
	bit := 0
	for i := range recs {
		if vw.cls[recs[i].PC] == 1 {
			if recs[i].Taken {
				dst[off+bit/8] |= 1 << (bit % 8)
			}
			bit++
		}
	}
	vw.sc.nextEpoch(int(vw.ni))
	for i := range recs {
		if vw.cls[recs[i].PC] != 3 {
			continue
		}
		pc := recs[i].PC
		a := recs[i].Addr
		put(zigzag(int64(a - vw.sc.prev(pc))))
		vw.sc.set(pc, a)
	}
	return dst, cut, nil
}
