package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// TestIndexedReaderRoundTrip opens a multi-chunk v2 trace through the
// footer index and checks that every chunk range decodes to exactly the
// events the index promises, including single-chunk and full-file
// ranges.
func TestIndexedReaderRoundTrip(t *testing.T) {
	const n, chunk = 10000, 256
	data, evs, prog := writeTestTrace(t, n, chunk)
	ir, err := NewIndexedReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if ir.Version() != FormatVersion {
		t.Fatalf("Version=%d, want %d", ir.Version(), FormatVersion)
	}
	if ir.Meta().Program != "synthetic" {
		t.Fatalf("meta %+v", ir.Meta())
	}
	if ir.TotalEvents() != n {
		t.Fatalf("TotalEvents=%d, want %d", ir.TotalEvents(), n)
	}
	wantChunks := (n + chunk - 1) / chunk
	if ir.Chunks() != wantChunks {
		t.Fatalf("Chunks=%d, want %d", ir.Chunks(), wantChunks)
	}
	// Full-file range reproduces the stream.
	src := ir.Range(prog, 0, ir.Chunks())
	got := drain(t, src)
	src.Close()
	checkEvents(t, got, evs)
	// Disjoint sub-ranges cover the trace without overlap or gaps.
	for _, split := range []int{1, 7, ir.Chunks() - 1} {
		lo := ir.Base(split)
		s1 := ir.Range(prog, 0, split)
		s2 := ir.Range(prog, split, ir.Chunks())
		g1 := drain(t, s1)
		g2 := drain(t, s2)
		s1.Close()
		s2.Close()
		checkEvents(t, g1, evs[:lo])
		checkEvents(t, g2, evs[lo:])
	}
}

// TestIndexedReaderTail checks the backward warm-up window decode,
// including windows larger than one chunk and larger than the prefix.
func TestIndexedReaderTail(t *testing.T) {
	data, evs, prog := writeTestTrace(t, 1000, 64)
	ir, err := NewIndexedReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ before, k int }{
		{0, 8},           // nothing before chunk 0
		{1, 8},           // within one chunk
		{3, 200},         // window spans multiple chunks, capped at the prefix
		{ir.Chunks(), 5}, // from the very end
	} {
		tail, err := ir.Tail(prog, tc.before, tc.k)
		if err != nil {
			t.Fatalf("Tail(%d,%d): %v", tc.before, tc.k, err)
		}
		end := len(evs)
		if tc.before < ir.Chunks() {
			end = int(ir.Base(tc.before))
		}
		if tc.before <= 0 {
			end = 0
		}
		wantLen := tc.k
		if end < wantLen {
			wantLen = end
		}
		if len(tail) != wantLen {
			t.Fatalf("Tail(%d,%d) returned %d events, want %d", tc.before, tc.k, len(tail), wantLen)
		}
		checkEvents(t, tail, evs[end-wantLen:end])
	}
}

// TestIndexedReaderRejectsCorruptFooter flips bits across the footer
// region and truncates the file; every mutation must be detected at
// open or at decode, never silently accepted.
func TestIndexedReaderRejectsCorruptFooter(t *testing.T) {
	data, _, prog := writeTestTrace(t, 2000, 256)
	openAndDrain := func(b []byte) error {
		ir, err := NewIndexedReader(bytes.NewReader(b), int64(len(b)))
		if err != nil {
			return err
		}
		src := ir.Range(prog, 0, ir.Chunks())
		defer src.Close()
		total := uint64(0)
		for {
			evs, release, err := src.Next()
			if err == io.EOF {
				if total != ir.TotalEvents() {
					t.Fatalf("drained %d events, index records %d", total, ir.TotalEvents())
				}
				return nil
			}
			if err != nil {
				return err
			}
			total += uint64(len(evs))
			release()
		}
	}
	if err := openAndDrain(data); err != nil {
		t.Fatalf("pristine trace rejected: %v", err)
	}
	// The footer (terminator + index + tail) is everything after the
	// last frame; flipping any single bit in it must fail validation.
	footerStart := len(data) - tailFixedLen - 80
	if footerStart < 0 {
		footerStart = 0
	}
	for off := footerStart; off < len(data); off++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte{}, data...)
			mut[off] ^= 1 << bit
			if err := openAndDrain(mut); err == nil {
				t.Fatalf("bit flip at offset %d bit %d accepted", off, bit)
			}
		}
	}
	for cut := 1; cut <= tailFixedLen+8; cut++ {
		if err := openAndDrain(data[:len(data)-cut]); err == nil {
			t.Fatalf("truncation by %d bytes accepted", cut)
		}
	}
}

// TestIndexedReaderV1ErrNoIndex: a v1 trace has no footer index — the
// indexed open must fail with ErrNoIndex so callers take the
// sequential fallback, and the sequential reader must still decode it.
func TestIndexedReaderV1ErrNoIndex(t *testing.T) {
	data, evs, prog := writeTestTraceVersion(t, 3000, 256, 1)
	if _, err := NewIndexedReader(bytes.NewReader(data), int64(len(data))); !errors.Is(err, ErrNoIndex) {
		t.Fatalf("indexed open of v1 trace: err=%v, want ErrNoIndex", err)
	}
	tr, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Version() != 1 {
		t.Fatalf("Version=%d, want 1", tr.Version())
	}
	src := tr.Events(prog)
	got := drain(t, src)
	src.Close()
	checkEvents(t, got, evs)
}

// TestChunkBoundaryGoldens pins the writer/reader behavior at the
// awkward sizes: an event count that is an exact multiple of the chunk
// capacity (no partial final chunk), a single full chunk, and the
// empty trace.
func TestChunkBoundaryGoldens(t *testing.T) {
	for _, tc := range []struct {
		n, chunk   int
		wantChunks int
	}{
		{256, 256, 1},  // exactly one full chunk
		{1024, 256, 4}, // exact multiple, no partial tail chunk
		{0, 256, 0},    // empty trace: header + footer only
	} {
		data, evs, prog := writeTestTrace(t, tc.n, tc.chunk)
		tr, err := NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("n=%d: %v", tc.n, err)
		}
		src := tr.Events(prog)
		got := drain(t, src)
		src.Close()
		checkEvents(t, got, evs)
		if tr.TotalEvents() != uint64(tc.n) {
			t.Fatalf("n=%d: TotalEvents=%d", tc.n, tr.TotalEvents())
		}
		ir, err := NewIndexedReader(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			t.Fatalf("n=%d: indexed open: %v", tc.n, err)
		}
		if ir.Chunks() != tc.wantChunks {
			t.Fatalf("n=%d chunk=%d: Chunks=%d, want %d", tc.n, tc.chunk, ir.Chunks(), tc.wantChunks)
		}
		isrc := ir.Range(prog, 0, ir.Chunks())
		igot := drain(t, isrc)
		isrc.Close()
		checkEvents(t, igot, evs)
		tail, err := ir.Tail(prog, ir.Chunks(), 8)
		if err != nil {
			t.Fatalf("n=%d: Tail: %v", tc.n, err)
		}
		wantTail := 8
		if tc.n < wantTail {
			wantTail = tc.n
		}
		if len(tail) != wantTail {
			t.Fatalf("n=%d: Tail returned %d events, want %d", tc.n, len(tail), wantTail)
		}
	}
}

// TestSourceCloseMidStream: Close with chunks still undelivered must
// make every later Next fail with ErrClosed — sticky, for both the
// sequential and the parallel source — rather than read through a
// released reader or recycled buffers.
func TestSourceCloseMidStream(t *testing.T) {
	data, _, prog := writeTestTrace(t, 5000, 64)
	sources := map[string]func(*Reader) *Source{
		"sequential": func(tr *Reader) *Source { return tr.Events(prog) },
		"parallel":   func(tr *Reader) *Source { return tr.ParallelEvents(prog, 2) },
	}
	for name, open := range sources {
		tr, err := NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		src := open(tr)
		if _, _, err := src.Next(); err != nil {
			t.Fatalf("%s: first Next: %v", name, err)
		}
		src.Close()
		for i := 0; i < 3; i++ {
			if _, _, err := src.Next(); !errors.Is(err, ErrClosed) {
				t.Fatalf("%s: Next after Close (call %d): err=%v, want ErrClosed", name, i, err)
			}
		}
		src.Close() // double Close must be safe
	}
}
