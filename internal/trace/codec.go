// Package trace is the durable form of the simulator's
// committed-instruction event stream: the same record-once /
// analyze-many discipline ATOM gave the paper, persisted to disk. A
// Writer rides the sim.BatchObserver slab path and encodes events into
// self-contained chunks (delta+varint program counters and effective
// addresses, bitmap-packed branch outcomes, per-chunk compression,
// CRC-protected length-prefixed framing); a Reader streams the chunks
// back — sequentially or decoded ahead by a worker pool — and rebinds
// them to a compiled program so any BatchObserver (loadchar, cache,
// bpred, pipeline) can replay the run without re-simulating it.
package trace

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// Record is the on-disk form of one committed instruction. It carries
// exactly the event fields the simulator produces that cannot be
// re-derived from the program text: the sequence number is implicit
// (chunk base + index) and the instruction itself is rebound from the
// program by PC at replay time.
type Record struct {
	PC     int32
	Target int32
	Addr   uint64
	Taken  bool
}

// ChunkEvents is the default number of records per chunk. A chunk is
// the unit of compression, CRC protection, and parallel decode; 64Ki
// events strike a balance between per-chunk framing overhead and
// replay-pipeline granularity.
const ChunkEvents = 1 << 16

// maxChunkEvents caps the decoded-record allocation a chunk header can
// request, so a corrupted or hostile count cannot trigger a huge
// allocation before the payload bounds checks reject it.
const maxChunkEvents = 1 << 22

// zigzag folds signed deltas into unsigned varint space.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// unzigzag is the inverse of zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// appendChunk encodes recs (whose first record has sequence number
// base) onto dst and returns the extended slice. The layout is
// columnar so each stream stays self-similar for the compressor:
//
//	uvarint base          sequence number of recs[0]
//	uvarint n             record count
//	n  zigzag varints     PC deltas (previous PC starts at 0)
//	n  zigzag varints     Target deltas relative to PC+1 (0 = fallthrough)
//	⌈n/8⌉ bytes           Taken bitmap
//	⌈n/8⌉ bytes           Addr-present bitmap (bit set ⇔ Addr != 0)
//	k  zigzag varints     Addr deltas for the k present addresses
//	                      (previous address starts at 0)
//
// Every stream is chunk-local, so chunks decode independently.
func appendChunk(dst []byte, base uint64, recs []Record) []byte {
	var tmp [binary.MaxVarintLen64]byte
	put := func(u uint64) {
		n := binary.PutUvarint(tmp[:], u)
		dst = append(dst, tmp[:n]...)
	}
	put(base)
	put(uint64(len(recs)))
	prevPC := int64(0)
	for i := range recs {
		pc := int64(recs[i].PC)
		put(zigzag(pc - prevPC))
		prevPC = pc
	}
	for i := range recs {
		put(zigzag(int64(recs[i].Target) - int64(recs[i].PC) - 1))
	}
	nb := (len(recs) + 7) / 8
	off := len(dst)
	dst = append(dst, make([]byte, nb)...)
	for i := range recs {
		if recs[i].Taken {
			dst[off+i/8] |= 1 << (i % 8)
		}
	}
	off = len(dst)
	dst = append(dst, make([]byte, nb)...)
	for i := range recs {
		if recs[i].Addr != 0 {
			dst[off+i/8] |= 1 << (i % 8)
		}
	}
	prevAddr := uint64(0)
	for i := range recs {
		if a := recs[i].Addr; a != 0 {
			put(zigzag(int64(a - prevAddr)))
			prevAddr = a
		}
	}
	return dst
}

// chunkDecoder walks an encoded chunk payload with strict bounds
// checking: every read is validated so arbitrary bytes produce an
// error, never a panic.
type chunkDecoder struct {
	data []byte
	pos  int
}

func (d *chunkDecoder) uvarint() (uint64, error) {
	u, n := binary.Uvarint(d.data[d.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("trace: truncated or overlong varint at offset %d", d.pos)
	}
	d.pos += n
	return u, nil
}

func (d *chunkDecoder) bytes(n int) ([]byte, error) {
	if n < 0 || d.pos+n > len(d.data) {
		return nil, fmt.Errorf("trace: chunk truncated at offset %d (need %d bytes)", d.pos, n)
	}
	b := d.data[d.pos : d.pos+n]
	d.pos += n
	return b, nil
}

// decodeChunk decodes one chunk payload, appending into recs (which
// may be nil or recycled) and returning the base sequence number and
// the decoded records. It rejects malformed input with an error.
func decodeChunk(data []byte, recs []Record) (uint64, []Record, error) {
	d := &chunkDecoder{data: data}
	base, err := d.uvarint()
	if err != nil {
		return 0, nil, err
	}
	n64, err := d.uvarint()
	if err != nil {
		return 0, nil, err
	}
	if n64 > maxChunkEvents {
		return 0, nil, fmt.Errorf("trace: chunk claims %d records (max %d)", n64, maxChunkEvents)
	}
	n := int(n64)
	if cap(recs) < n {
		recs = make([]Record, n)
	}
	recs = recs[:n]
	prevPC := int64(0)
	for i := 0; i < n; i++ {
		u, err := d.uvarint()
		if err != nil {
			return 0, nil, err
		}
		pc := prevPC + unzigzag(u)
		if pc < -(1<<31) || pc >= 1<<31 {
			return 0, nil, fmt.Errorf("trace: PC %d out of int32 range", pc)
		}
		recs[i] = Record{PC: int32(pc)}
		prevPC = pc
	}
	for i := 0; i < n; i++ {
		u, err := d.uvarint()
		if err != nil {
			return 0, nil, err
		}
		t := int64(recs[i].PC) + 1 + unzigzag(u)
		if t < -(1<<31) || t >= 1<<31 {
			return 0, nil, fmt.Errorf("trace: target %d out of int32 range", t)
		}
		recs[i].Target = int32(t)
	}
	nb := (n + 7) / 8
	taken, err := d.bytes(nb)
	if err != nil {
		return 0, nil, err
	}
	for i := 0; i < n; i++ {
		recs[i].Taken = taken[i/8]&(1<<(i%8)) != 0
	}
	present, err := d.bytes(nb)
	if err != nil {
		return 0, nil, err
	}
	// Trailing padding bits of the final bitmap byte must be zero, so
	// the addr-count below is trustworthy.
	if n%8 != 0 {
		if present[nb-1]>>(n%8) != 0 || taken[nb-1]>>(n%8) != 0 {
			return 0, nil, fmt.Errorf("trace: nonzero padding bits in chunk bitmap")
		}
	}
	k := 0
	for _, b := range present {
		k += bits.OnesCount8(b)
	}
	prevAddr := uint64(0)
	got := 0
	for i := 0; i < n && got < k; i++ {
		if present[i/8]&(1<<(i%8)) == 0 {
			continue
		}
		u, err := d.uvarint()
		if err != nil {
			return 0, nil, err
		}
		a := prevAddr + uint64(unzigzag(u))
		if a == 0 {
			return 0, nil, fmt.Errorf("trace: zero address marked present at record %d", i)
		}
		recs[i].Addr = a
		prevAddr = a
		got++
	}
	if d.pos != len(data) {
		return 0, nil, fmt.Errorf("trace: %d trailing bytes after chunk payload", len(data)-d.pos)
	}
	return base, recs, nil
}
