// Package trace is the durable form of the simulator's
// committed-instruction event stream: the same record-once /
// analyze-many discipline ATOM gave the paper, persisted to disk. A
// Writer rides the sim.BatchObserver slab path and encodes events into
// self-contained chunks (delta+varint program counters and effective
// addresses, bitmap-packed branch outcomes, per-chunk compression,
// CRC-protected length-prefixed framing); a Reader streams the chunks
// back — sequentially, decoded ahead by a worker pool, or (format v2)
// by random access through the footer's chunk index — and rebinds them
// to a compiled program so any BatchObserver (loadchar, cache, bpred,
// pipeline) can replay the run without re-simulating it.
package trace

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"math/bits"

	"bioperfload/internal/isa"
	"bioperfload/internal/sim"
)

// Record is the on-disk form of one committed instruction. It carries
// exactly the event fields the simulator produces that cannot be
// re-derived from the program text: the sequence number is implicit
// (chunk base + index) and the instruction itself is rebound from the
// program by PC at replay time.
type Record struct {
	PC     int32
	Target int32
	Addr   uint64
	Taken  bool
}

// ChunkEvents is the default number of records per chunk. A chunk is
// the unit of compression, CRC protection, and parallel decode; 16Ki
// events keep the decoded event slab (~640KB) inside the L2 cache the
// decode and analysis passes re-stream it through, while still
// amortizing per-chunk framing overhead.
const ChunkEvents = 1 << 14

// maxChunkEvents caps the decoded-record allocation a chunk header can
// request, so a corrupted or hostile count cannot trigger a huge
// allocation before the payload bounds checks reject it.
const maxChunkEvents = 1 << 22

// zigzag folds signed deltas into unsigned varint space.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// unzigzag is the inverse of zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// appendChunk encodes recs (whose first record has sequence number
// base) onto dst and returns the extended slice. The layout is
// columnar so each stream stays self-similar for the compressor.
//
// Format v1 (sparse=false):
//
//	uvarint base          sequence number of recs[0]
//	uvarint n             record count
//	n  zigzag varints     PC deltas (previous PC starts at 0)
//	n  zigzag varints     Target deltas relative to PC+1 (0 = fallthrough)
//	⌈n/8⌉ bytes           Taken bitmap
//	⌈n/8⌉ bytes           Addr-present bitmap (bit set ⇔ Addr != 0)
//	k  zigzag varints     Addr deltas for the k present addresses
//	                      (previous address starts at 0)
//
// Format v2 (sparse=true) stores the PC and target columns sparsely:
// most events fall through (PC == prev PC + 1, Target == PC+1), so the
// dense columns are long runs of one-byte varints that still cost a
// decompress-and-decode step per event. v2 replaces both with
// exception bitmaps plus deltas for the exceptions only, and moves
// every bitmap ahead of the varint streams so a decoder knows the run
// structure before it touches a varint:
//
//	uvarint base          sequence number of recs[0]
//	uvarint n             record count
//	⌈n/8⌉ bytes           PC-exception bitmap (bit set ⇔ PC != prev PC + 1;
//	                      the previous PC starts at 0)
//	⌈n/8⌉ bytes           Taken bitmap
//	⌈n/8⌉ bytes           Target-present bitmap (bit set ⇔ Target != PC+1)
//	⌈n/8⌉ bytes           Addr-present bitmap (bit set ⇔ Addr != 0)
//	k₀ zigzag varints     PC deltas relative to prev PC + 1 for the
//	                      exceptional PCs (never zero)
//	k₁ zigzag varints     Target deltas relative to PC+1 for the
//	                      present targets (never zero)
//	k₂ zigzag varints     Addr deltas for the present addresses
//	                      (previous address starts at 0)
//
// Every stream is chunk-local, so chunks decode independently.
func appendChunk(dst []byte, base uint64, recs []Record, sparse bool) []byte {
	var tmp [binary.MaxVarintLen64]byte
	put := func(u uint64) {
		n := binary.PutUvarint(tmp[:], u)
		dst = append(dst, tmp[:n]...)
	}
	put(base)
	put(uint64(len(recs)))
	nb := (len(recs) + 7) / 8
	if !sparse {
		prevPC := int64(0)
		for i := range recs {
			pc := int64(recs[i].PC)
			put(zigzag(pc - prevPC))
			prevPC = pc
		}
		for i := range recs {
			put(zigzag(int64(recs[i].Target) - int64(recs[i].PC) - 1))
		}
		off := len(dst)
		dst = append(dst, make([]byte, nb)...)
		for i := range recs {
			if recs[i].Taken {
				dst[off+i/8] |= 1 << (i % 8)
			}
		}
		off = len(dst)
		dst = append(dst, make([]byte, nb)...)
		for i := range recs {
			if recs[i].Addr != 0 {
				dst[off+i/8] |= 1 << (i % 8)
			}
		}
	} else {
		off := len(dst)
		dst = append(dst, make([]byte, 4*nb)...)
		pcex, taken := dst[off:off+nb], dst[off+nb:off+2*nb]
		tpresent, present := dst[off+2*nb:off+3*nb], dst[off+3*nb:off+4*nb]
		prevPC := int64(0)
		for i := range recs {
			pc := int64(recs[i].PC)
			if pc != prevPC+1 {
				pcex[i/8] |= 1 << (i % 8)
			}
			prevPC = pc
			if recs[i].Taken {
				taken[i/8] |= 1 << (i % 8)
			}
			if int64(recs[i].Target) != pc+1 {
				tpresent[i/8] |= 1 << (i % 8)
			}
			if recs[i].Addr != 0 {
				present[i/8] |= 1 << (i % 8)
			}
		}
		prevPC = 0
		for i := range recs {
			pc := int64(recs[i].PC)
			if pc != prevPC+1 {
				put(zigzag(pc - prevPC - 1))
			}
			prevPC = pc
		}
		for i := range recs {
			if d := int64(recs[i].Target) - int64(recs[i].PC) - 1; d != 0 {
				put(zigzag(d))
			}
		}
	}
	prevAddr := uint64(0)
	for i := range recs {
		if a := recs[i].Addr; a != 0 {
			put(zigzag(int64(a - prevAddr)))
			prevAddr = a
		}
	}
	return dst
}

// errTruncatedVarint is the shared truncation error for the inlined
// varint fast path; the offset detail is folded in by the caller's
// wrapper when decoding fails.
var errTruncatedVarint = fmt.Errorf("trace: truncated or overlong varint in chunk")

// uvarintAt decodes a uvarint from data at pos, returning the value
// and the new position. It is the slow path behind the inlined
// single-byte fast path in the decode loops.
func uvarintAt(data []byte, pos int) (uint64, int, error) {
	u, n := binary.Uvarint(data[pos:])
	if n <= 0 {
		return 0, pos, errTruncatedVarint
	}
	return u, pos + n, nil
}

// chunkDecoder walks an encoded chunk payload with strict bounds
// checking: every read is validated so arbitrary bytes produce an
// error, never a panic.
type chunkDecoder struct {
	data []byte
	pos  int
}

func (d *chunkDecoder) uvarint() (uint64, error) {
	u, n := binary.Uvarint(d.data[d.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("trace: truncated or overlong varint at offset %d", d.pos)
	}
	d.pos += n
	return u, nil
}

func (d *chunkDecoder) bytes(n int) ([]byte, error) {
	if n < 0 || d.pos+n > len(d.data) {
		return nil, fmt.Errorf("trace: chunk truncated at offset %d (need %d bytes)", d.pos, n)
	}
	b := d.data[d.pos : d.pos+n]
	d.pos += n
	return b, nil
}

// decodeChunk decodes one chunk payload, appending into recs (which
// may be nil or recycled) and returning the base sequence number and
// the decoded records. It rejects malformed input with an error.
//
// This is the reference decoder, kept for the fuzzer and round-trip
// tests; the replay hot path uses decodeChunkEvents, which binds
// events in the same pass.
func decodeChunk(data []byte, recs []Record, sparse bool) (uint64, []Record, error) {
	d := &chunkDecoder{data: data}
	base, err := d.uvarint()
	if err != nil {
		return 0, nil, err
	}
	n64, err := d.uvarint()
	if err != nil {
		return 0, nil, err
	}
	if n64 > maxChunkEvents {
		return 0, nil, fmt.Errorf("trace: chunk claims %d records (max %d)", n64, maxChunkEvents)
	}
	n := int(n64)
	if cap(recs) < n {
		recs = make([]Record, n)
	}
	recs = recs[:n]
	nb := (n + 7) / 8
	var pcex, taken, tpresent, present []byte
	if !sparse {
		prevPC := int64(0)
		for i := 0; i < n; i++ {
			u, err := d.uvarint()
			if err != nil {
				return 0, nil, err
			}
			pc := prevPC + unzigzag(u)
			if pc < -(1<<31) || pc >= 1<<31 {
				return 0, nil, fmt.Errorf("trace: PC %d out of int32 range", pc)
			}
			recs[i] = Record{PC: int32(pc)}
			prevPC = pc
		}
		for i := 0; i < n; i++ {
			u, err := d.uvarint()
			if err != nil {
				return 0, nil, err
			}
			t := int64(recs[i].PC) + 1 + unzigzag(u)
			if t < -(1<<31) || t >= 1<<31 {
				return 0, nil, fmt.Errorf("trace: target %d out of int32 range", t)
			}
			recs[i].Target = int32(t)
		}
		if taken, err = d.bytes(nb); err != nil {
			return 0, nil, err
		}
		if present, err = d.bytes(nb); err != nil {
			return 0, nil, err
		}
	} else {
		if pcex, err = d.bytes(nb); err != nil {
			return 0, nil, err
		}
		if taken, err = d.bytes(nb); err != nil {
			return 0, nil, err
		}
		if tpresent, err = d.bytes(nb); err != nil {
			return 0, nil, err
		}
		if present, err = d.bytes(nb); err != nil {
			return 0, nil, err
		}
	}
	// Trailing padding bits of the final bitmap bytes must be zero, so
	// the presence counts below are trustworthy.
	if n%8 != 0 {
		if present[nb-1]>>(n%8) != 0 || taken[nb-1]>>(n%8) != 0 {
			return 0, nil, fmt.Errorf("trace: nonzero padding bits in chunk bitmap")
		}
		if sparse && (pcex[nb-1]>>(n%8) != 0 || tpresent[nb-1]>>(n%8) != 0) {
			return 0, nil, fmt.Errorf("trace: nonzero padding bits in chunk bitmap")
		}
	}
	if sparse {
		prevPC := int64(0)
		for i := 0; i < n; i++ {
			pc := prevPC + 1
			if pcex[i/8]&(1<<(i%8)) != 0 {
				u, err := d.uvarint()
				if err != nil {
					return 0, nil, err
				}
				if u == 0 {
					return 0, nil, fmt.Errorf("trace: sequential PC marked exceptional at record %d", i)
				}
				pc += unzigzag(u)
			}
			if pc < -(1<<31) || pc >= 1<<31 {
				return 0, nil, fmt.Errorf("trace: PC %d out of int32 range", pc)
			}
			recs[i] = Record{PC: int32(pc)}
			prevPC = pc
		}
		for i := 0; i < n; i++ {
			t := int64(recs[i].PC) + 1
			if tpresent[i/8]&(1<<(i%8)) != 0 {
				u, err := d.uvarint()
				if err != nil {
					return 0, nil, err
				}
				if u == 0 {
					return 0, nil, fmt.Errorf("trace: fallthrough target marked present at record %d", i)
				}
				t += unzigzag(u)
			}
			if t < -(1<<31) || t >= 1<<31 {
				return 0, nil, fmt.Errorf("trace: target %d out of int32 range", t)
			}
			recs[i].Target = int32(t)
		}
	}
	for i := 0; i < n; i++ {
		recs[i].Taken = taken[i/8]&(1<<(i%8)) != 0
	}
	k := 0
	for _, b := range present {
		k += bits.OnesCount8(b)
	}
	prevAddr := uint64(0)
	got := 0
	for i := 0; i < n && got < k; i++ {
		if present[i/8]&(1<<(i%8)) == 0 {
			continue
		}
		u, err := d.uvarint()
		if err != nil {
			return 0, nil, err
		}
		a := prevAddr + uint64(unzigzag(u))
		if a == 0 {
			return 0, nil, fmt.Errorf("trace: zero address marked present at record %d", i)
		}
		recs[i].Addr = a
		prevAddr = a
		got++
	}
	if d.pos != len(data) {
		return 0, nil, fmt.Errorf("trace: %d trailing bytes after chunk payload", len(data)-d.pos)
	}
	return base, recs, nil
}

// decodeChunkEvents decodes one chunk payload straight into simulator
// events bound to prog, fusing what used to be two passes (decode to
// Record, then rebind to Event) into one. The slab evs is recycled
// when its capacity suffices. Every validation of the reference
// decoder is preserved — bounds-checked varints, bitmap padding,
// zero-address and trailing-byte checks — plus the PC-in-program
// check the old bind step performed.
func decodeChunkEvents(data []byte, prog *isa.Program, evs []sim.Event, sparse bool) (uint64, []sim.Event, error) {
	pos := 0
	base, pos, err := uvarintAt(data, pos)
	if err != nil {
		return 0, nil, err
	}
	n64, pos, err := uvarintAt(data, pos)
	if err != nil {
		return 0, nil, err
	}
	if n64 > maxChunkEvents {
		return 0, nil, fmt.Errorf("trace: chunk claims %d records (max %d)", n64, maxChunkEvents)
	}
	n := int(n64)
	if cap(evs) < n {
		evs = make([]sim.Event, n)
	}
	evs = evs[:n]
	insts := prog.Insts
	ni := int64(len(insts))
	nb := (n + 7) / 8
	var pcex, taken, tpresent, present []byte
	if !sparse {
		prevPC := int64(0)
		for i := 0; i < n; i++ {
			// Inlined uvarint fast paths: PC deltas are almost always
			// one byte (straight-line code) and two cover every
			// realistic branch span, so the slow path is effectively
			// never taken.
			if uint(pos) >= uint(len(data)) {
				return 0, nil, errTruncatedVarint
			}
			u := uint64(data[pos])
			pos++
			if u >= 0x80 {
				if uint(pos) < uint(len(data)) && data[pos] < 0x80 {
					u = u&0x7f | uint64(data[pos])<<7
					pos++
				} else if u, pos, err = uvarintAt(data, pos-1); err != nil {
					return 0, nil, err
				}
			}
			pc := prevPC + unzigzag(u)
			if pc < 0 || pc >= ni {
				return 0, nil, fmt.Errorf("trace: record %d: pc %d outside program %s (%d insts)",
					base+uint64(i), pc, prog.Name, len(insts))
			}
			prevPC = pc
			// The whole-struct write zeroes Addr/Taken in a recycled
			// slab; the dense target pass below overwrites Target for
			// every event.
			evs[i] = sim.Event{Seq: base + uint64(i), PC: int32(pc), Target: int32(pc) + 1, Inst: &insts[pc]}
		}
		for i := 0; i < n; i++ {
			if uint(pos) >= uint(len(data)) {
				return 0, nil, errTruncatedVarint
			}
			u := uint64(data[pos])
			pos++
			if u >= 0x80 {
				if uint(pos) < uint(len(data)) && data[pos] < 0x80 {
					u = u&0x7f | uint64(data[pos])<<7
					pos++
				} else if u, pos, err = uvarintAt(data, pos-1); err != nil {
					return 0, nil, err
				}
			}
			t := int64(evs[i].PC) + 1 + unzigzag(u)
			if t < -(1<<31) || t >= 1<<31 {
				return 0, nil, fmt.Errorf("trace: target %d out of int32 range", t)
			}
			evs[i].Target = int32(t)
		}
		if pos+2*nb > len(data) {
			return 0, nil, fmt.Errorf("trace: chunk truncated at offset %d (need %d bytes)", pos, 2*nb)
		}
		taken = data[pos : pos+nb]
		present = data[pos+nb : pos+2*nb]
		pos += 2 * nb
	} else {
		if pos+4*nb > len(data) {
			return 0, nil, fmt.Errorf("trace: chunk truncated at offset %d (need %d bytes)", pos, 4*nb)
		}
		pcex = data[pos : pos+nb]
		taken = data[pos+nb : pos+2*nb]
		tpresent = data[pos+2*nb : pos+3*nb]
		present = data[pos+3*nb : pos+4*nb]
		pos += 4 * nb
	}
	// Padding bits must be rejected before the bit-scan loops below:
	// a set padding bit would otherwise index past evs[:n].
	if n%8 != 0 {
		if present[nb-1]>>(n%8) != 0 || taken[nb-1]>>(n%8) != 0 {
			return 0, nil, fmt.Errorf("trace: nonzero padding bits in chunk bitmap")
		}
		if sparse && (pcex[nb-1]>>(n%8) != 0 || tpresent[nb-1]>>(n%8) != 0) {
			return 0, nil, fmt.Errorf("trace: nonzero padding bits in chunk bitmap")
		}
	}
	if sparse {
		// PC column: between exception bits the stream is straight-line
		// code, so whole runs need one bounds check and then only the
		// struct write per event — no varint, no per-event range test.
		// The whole-struct write zeroes Addr/Taken in a recycled slab
		// and plants the fallthrough target; the sparse columns below
		// fill in the exceptions.
		pc := int64(0)
		i := 0
		for bi, b := range pcex {
			for b != 0 {
				j := bi<<3 + bits.TrailingZeros8(b)
				b &= b - 1
				if pc+int64(j-i) >= ni {
					return 0, nil, fmt.Errorf("trace: record %d: pc %d outside program %s (%d insts)",
						base+uint64(j), pc+int64(j-i), prog.Name, len(insts))
				}
				for ; i < j; i++ {
					pc++
					evs[i] = sim.Event{Seq: base + uint64(i), PC: int32(pc), Target: int32(pc) + 1, Inst: &insts[pc]}
				}
				if uint(pos) >= uint(len(data)) {
					return 0, nil, errTruncatedVarint
				}
				u := uint64(data[pos])
				pos++
				if u >= 0x80 {
					if uint(pos) < uint(len(data)) && data[pos] < 0x80 {
						u = u&0x7f | uint64(data[pos])<<7
						pos++
					} else if u, pos, err = uvarintAt(data, pos-1); err != nil {
						return 0, nil, err
					}
				}
				if u == 0 {
					return 0, nil, fmt.Errorf("trace: sequential PC marked exceptional at record %d", i)
				}
				pc += 1 + unzigzag(u)
				if pc < 0 || pc >= ni {
					return 0, nil, fmt.Errorf("trace: record %d: pc %d outside program %s (%d insts)",
						base+uint64(i), pc, prog.Name, len(insts))
				}
				evs[i] = sim.Event{Seq: base + uint64(i), PC: int32(pc), Target: int32(pc) + 1, Inst: &insts[pc]}
				i++
			}
		}
		if i < n {
			if pc+int64(n-i) >= ni {
				return 0, nil, fmt.Errorf("trace: record %d: pc %d outside program %s (%d insts)",
					base+uint64(n-1), pc+int64(n-i), prog.Name, len(insts))
			}
			for ; i < n; i++ {
				pc++
				evs[i] = sim.Event{Seq: base + uint64(i), PC: int32(pc), Target: int32(pc) + 1, Inst: &insts[pc]}
			}
		}
	}
	// Bit-scan the sparse bitmaps instead of testing every event: with
	// taken branches a small fraction of the stream, iterating set bits
	// replaces n predictable-but-paid tests with popcount work.
	for bi, b := range taken {
		for b != 0 {
			evs[bi<<3+bits.TrailingZeros8(b)].Taken = true
			b &= b - 1
		}
	}
	for bi, b := range tpresent {
		for b != 0 {
			i := bi<<3 + bits.TrailingZeros8(b)
			b &= b - 1
			if uint(pos) >= uint(len(data)) {
				return 0, nil, errTruncatedVarint
			}
			u := uint64(data[pos])
			pos++
			if u >= 0x80 {
				if uint(pos) < uint(len(data)) && data[pos] < 0x80 {
					u = u&0x7f | uint64(data[pos])<<7
					pos++
				} else if u, pos, err = uvarintAt(data, pos-1); err != nil {
					return 0, nil, err
				}
			}
			if u == 0 {
				return 0, nil, fmt.Errorf("trace: fallthrough target marked present at record %d", i)
			}
			t := int64(evs[i].PC) + 1 + unzigzag(u)
			if t < -(1<<31) || t >= 1<<31 {
				return 0, nil, fmt.Errorf("trace: target %d out of int32 range", t)
			}
			evs[i].Target = int32(t)
		}
	}
	prevAddr := uint64(0)
	for bi, b := range present {
		for b != 0 {
			i := bi<<3 + bits.TrailingZeros8(b)
			b &= b - 1
			if uint(pos) >= uint(len(data)) {
				return 0, nil, errTruncatedVarint
			}
			u := uint64(data[pos])
			pos++
			if u >= 0x80 {
				if uint(pos) < uint(len(data)) && data[pos] < 0x80 {
					u = u&0x7f | uint64(data[pos])<<7
					pos++
				} else if u, pos, err = uvarintAt(data, pos-1); err != nil {
					return 0, nil, err
				}
			}
			a := prevAddr + uint64(unzigzag(u))
			if a == 0 {
				return 0, nil, fmt.Errorf("trace: zero address marked present at record %d", i)
			}
			evs[i].Addr = a
			prevAddr = a
		}
	}
	if pos != len(data) {
		return 0, nil, fmt.Errorf("trace: %d trailing bytes after chunk payload", len(data)-pos)
	}
	return base, evs, nil
}

// decoder owns the reusable buffers of one decode stream: the flate
// reader (reset per frame instead of reallocating its window), the
// decompression buffer, and a bytes.Reader over the frame payload.
// Each sequential source, parallel worker, and shard owns exactly one.
type decoder struct {
	br  bytes.Reader
	fr  io.ReadCloser
	raw []byte
	// sparse selects the chunk layout (true for format v2's sparse
	// target column); set once at construction from the trace version.
	sparse bool
}

// frameBytes returns the decompressed chunk payload of f, valid until
// the next call on this decoder.
func (d *decoder) frameBytes(f frame) ([]byte, error) {
	switch f.kind {
	case compressionNone:
		if len(f.payload) != f.rawLen {
			return nil, fmt.Errorf("trace: frame length %d does not match raw length %d", len(f.payload), f.rawLen)
		}
		return f.payload, nil
	case compressionFlate:
		d.br.Reset(f.payload)
		if d.fr == nil {
			d.fr = flate.NewReader(&d.br)
		} else if err := d.fr.(flate.Resetter).Reset(&d.br, nil); err != nil {
			return nil, fmt.Errorf("trace: reset flate reader: %w", err)
		}
		if cap(d.raw) < f.rawLen {
			d.raw = make([]byte, f.rawLen)
		}
		buf := d.raw[:f.rawLen]
		if _, err := io.ReadFull(d.fr, buf); err != nil {
			return nil, fmt.Errorf("trace: decompress chunk: %w", err)
		}
		// The compressed stream must end exactly at rawLen bytes.
		var extra [1]byte
		if n, _ := d.fr.Read(extra[:]); n != 0 {
			return nil, fmt.Errorf("trace: chunk decompresses past its declared length %d", f.rawLen)
		}
		return buf, nil
	default:
		return nil, fmt.Errorf("trace: unknown compression kind %d", f.kind)
	}
}

// release drops the decoder's buffers so a closed source does not pin
// them.
func (d *decoder) release() {
	d.fr = nil
	d.raw = nil
	d.br.Reset(nil)
}

// decodeFrameEvents decompresses one frame and decodes it directly
// into bound simulator events using the decoder's recycled buffers.
func (d *decoder) decodeFrameEvents(f frame, prog *isa.Program, evs []sim.Event) (uint64, []sim.Event, error) {
	raw, err := d.frameBytes(f)
	if err != nil {
		return 0, nil, err
	}
	return decodeChunkEvents(raw, prog, evs, d.sparse)
}

// decodeFrame decompresses and decodes one frame into records. It is
// the reference path used by the fuzzer; it allocates per call and is
// safe from multiple goroutines on distinct frames.
func decodeFrame(f frame, recs []Record, sparse bool) (uint64, []Record, error) {
	d := decoder{sparse: sparse}
	raw, err := d.frameBytes(f)
	if err != nil {
		return 0, nil, err
	}
	return decodeChunk(raw, recs, d.sparse)
}
