// Package trace is the durable form of the simulator's
// committed-instruction event stream: the same record-once /
// analyze-many discipline ATOM gave the paper, persisted to disk. A
// Writer rides the sim.BatchObserver slab path and encodes events into
// self-contained chunks (delta+varint program counters and effective
// addresses, bitmap-packed branch outcomes, per-chunk compression,
// CRC-protected length-prefixed framing); a Reader streams the chunks
// back — sequentially, decoded ahead by a worker pool, or (format v2)
// by random access through the footer's chunk index — and rebinds them
// to a compiled program so any BatchObserver (loadchar, cache, bpred,
// pipeline) can replay the run without re-simulating it.
package trace

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"math/bits"

	"bioperfload/internal/isa"
	"bioperfload/internal/sim"
)

// Record is the on-disk form of one committed instruction. It carries
// exactly the event fields the simulator produces that cannot be
// re-derived from the program text: the sequence number is implicit
// (chunk base + index) and the instruction itself is rebound from the
// program by PC at replay time.
type Record struct {
	PC     int32
	Target int32
	Addr   uint64
	Taken  bool
}

// ChunkEvents is the default number of records per chunk. A chunk is
// the unit of compression, CRC protection, and parallel decode; 16Ki
// events keep the decoded event slab (~640KB) inside the L2 cache the
// decode and analysis passes re-stream it through, while still
// amortizing per-chunk framing overhead.
const ChunkEvents = 1 << 14

// maxChunkEvents caps the decoded-record allocation a chunk header can
// request, so a corrupted or hostile count cannot trigger a huge
// allocation before the payload bounds checks reject it.
const maxChunkEvents = 1 << 22

// zigzag folds signed deltas into unsigned varint space.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// unzigzag is the inverse of zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// appendChunk encodes recs (whose first record has sequence number
// base) onto dst and returns the extended slice. The layout is
// columnar so each stream stays self-similar for the compressor.
//
// Format v1 (sparse=false):
//
//	uvarint base          sequence number of recs[0]
//	uvarint n             record count
//	n  zigzag varints     PC deltas (previous PC starts at 0)
//	n  zigzag varints     Target deltas relative to PC+1 (0 = fallthrough)
//	⌈n/8⌉ bytes           Taken bitmap
//	⌈n/8⌉ bytes           Addr-present bitmap (bit set ⇔ Addr != 0)
//	k  zigzag varints     Addr deltas for the k present addresses
//	                      (previous address starts at 0)
//
// Format v2 (sparse=true) stores the PC and target columns sparsely:
// most events fall through (PC == prev PC + 1, Target == PC+1), so the
// dense columns are long runs of one-byte varints that still cost a
// decompress-and-decode step per event. v2 replaces both with
// exception bitmaps plus deltas for the exceptions only, and moves
// every bitmap ahead of the varint streams so a decoder knows the run
// structure before it touches a varint:
//
//	uvarint base          sequence number of recs[0]
//	uvarint n             record count
//	⌈n/8⌉ bytes           PC-exception bitmap (bit set ⇔ PC != prev PC + 1;
//	                      the previous PC starts at 0)
//	⌈n/8⌉ bytes           Taken bitmap
//	⌈n/8⌉ bytes           Target-present bitmap (bit set ⇔ Target != PC+1)
//	⌈n/8⌉ bytes           Addr-present bitmap (bit set ⇔ Addr != 0)
//	k₀ zigzag varints     PC deltas relative to prev PC + 1 for the
//	                      exceptional PCs (never zero)
//	k₁ zigzag varints     Target deltas relative to PC+1 for the
//	                      present targets (never zero)
//	k₂ zigzag varints     Addr deltas for the present addresses
//	                      (previous address starts at 0)
//
// Format v3 keeps v2's sparse encodings but front-loads the PC
// column: only the PC-exception bitmap precedes the PC deltas, and
// the remaining bitmaps move between the PC and target streams:
//
//	uvarint base          sequence number of recs[0]
//	uvarint n             record count
//	⌈n/8⌉ bytes           PC-exception bitmap
//	k₀ zigzag varints     PC deltas for the exceptional PCs
//	⌈n/8⌉ bytes           Taken bitmap
//	⌈n/8⌉ bytes           Target-present bitmap
//	⌈n/8⌉ bytes           Addr-present bitmap
//	k₁ zigzag varints     Target deltas for the present targets
//	k₂ zigzag varints     Addr deltas for the present addresses
//
// A PC-only consumer (the phase-analysis scan) can therefore stop
// decompressing a chunk right after the PC deltas — a few percent of
// the payload — instead of inflating the whole thing.
//
// Every stream is chunk-local, so chunks decode independently.
func appendChunk(dst []byte, base uint64, recs []Record, version int) []byte {
	var tmp [binary.MaxVarintLen64]byte
	put := func(u uint64) {
		n := binary.PutUvarint(tmp[:], u)
		dst = append(dst, tmp[:n]...)
	}
	put(base)
	put(uint64(len(recs)))
	nb := (len(recs) + 7) / 8
	if version < 2 {
		prevPC := int64(0)
		for i := range recs {
			pc := int64(recs[i].PC)
			put(zigzag(pc - prevPC))
			prevPC = pc
		}
		for i := range recs {
			put(zigzag(int64(recs[i].Target) - int64(recs[i].PC) - 1))
		}
		off := len(dst)
		dst = append(dst, make([]byte, nb)...)
		for i := range recs {
			if recs[i].Taken {
				dst[off+i/8] |= 1 << (i % 8)
			}
		}
		off = len(dst)
		dst = append(dst, make([]byte, nb)...)
		for i := range recs {
			if recs[i].Addr != 0 {
				dst[off+i/8] |= 1 << (i % 8)
			}
		}
	} else if version == 2 {
		off := len(dst)
		dst = append(dst, make([]byte, 4*nb)...)
		pcex, taken := dst[off:off+nb], dst[off+nb:off+2*nb]
		tpresent, present := dst[off+2*nb:off+3*nb], dst[off+3*nb:off+4*nb]
		prevPC := int64(0)
		for i := range recs {
			pc := int64(recs[i].PC)
			if pc != prevPC+1 {
				pcex[i/8] |= 1 << (i % 8)
			}
			prevPC = pc
			if recs[i].Taken {
				taken[i/8] |= 1 << (i % 8)
			}
			if int64(recs[i].Target) != pc+1 {
				tpresent[i/8] |= 1 << (i % 8)
			}
			if recs[i].Addr != 0 {
				present[i/8] |= 1 << (i % 8)
			}
		}
		prevPC = 0
		for i := range recs {
			pc := int64(recs[i].PC)
			if pc != prevPC+1 {
				put(zigzag(pc - prevPC - 1))
			}
			prevPC = pc
		}
		for i := range recs {
			if d := int64(recs[i].Target) - int64(recs[i].PC) - 1; d != 0 {
				put(zigzag(d))
			}
		}
	} else {
		// v3: PC column first. Each bitmap area must be fully written
		// before the next varint append can grow (and so move) dst.
		off := len(dst)
		dst = append(dst, make([]byte, nb)...)
		pcex := dst[off : off+nb]
		prevPC := int64(0)
		for i := range recs {
			if int64(recs[i].PC) != prevPC+1 {
				pcex[i/8] |= 1 << (i % 8)
			}
			prevPC = int64(recs[i].PC)
		}
		prevPC = 0
		for i := range recs {
			pc := int64(recs[i].PC)
			if pc != prevPC+1 {
				put(zigzag(pc - prevPC - 1))
			}
			prevPC = pc
		}
		off = len(dst)
		dst = append(dst, make([]byte, 3*nb)...)
		taken, tpresent := dst[off:off+nb], dst[off+nb:off+2*nb]
		present := dst[off+2*nb : off+3*nb]
		for i := range recs {
			pc := int64(recs[i].PC)
			if recs[i].Taken {
				taken[i/8] |= 1 << (i % 8)
			}
			if int64(recs[i].Target) != pc+1 {
				tpresent[i/8] |= 1 << (i % 8)
			}
			if recs[i].Addr != 0 {
				present[i/8] |= 1 << (i % 8)
			}
		}
		for i := range recs {
			if d := int64(recs[i].Target) - int64(recs[i].PC) - 1; d != 0 {
				put(zigzag(d))
			}
		}
	}
	prevAddr := uint64(0)
	for i := range recs {
		if a := recs[i].Addr; a != 0 {
			put(zigzag(int64(a - prevAddr)))
			prevAddr = a
		}
	}
	return dst
}

// errTruncatedVarint is the shared truncation error for the inlined
// varint fast path; the offset detail is folded in by the caller's
// wrapper when decoding fails.
var errTruncatedVarint = fmt.Errorf("trace: truncated or overlong varint in chunk")

// uvarintAt decodes a uvarint from data at pos, returning the value
// and the new position. It is the slow path behind the inlined
// single-byte fast path in the decode loops.
func uvarintAt(data []byte, pos int) (uint64, int, error) {
	u, n := binary.Uvarint(data[pos:])
	if n <= 0 {
		return 0, pos, errTruncatedVarint
	}
	return u, pos + n, nil
}

// chunkDecoder walks an encoded chunk payload with strict bounds
// checking: every read is validated so arbitrary bytes produce an
// error, never a panic.
type chunkDecoder struct {
	data []byte
	pos  int
}

func (d *chunkDecoder) uvarint() (uint64, error) {
	u, n := binary.Uvarint(d.data[d.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("trace: truncated or overlong varint at offset %d", d.pos)
	}
	d.pos += n
	return u, nil
}

func (d *chunkDecoder) bytes(n int) ([]byte, error) {
	if n < 0 || d.pos+n > len(d.data) {
		return nil, fmt.Errorf("trace: chunk truncated at offset %d (need %d bytes)", d.pos, n)
	}
	b := d.data[d.pos : d.pos+n]
	d.pos += n
	return b, nil
}

// decodeChunk decodes one chunk payload, appending into recs (which
// may be nil or recycled) and returning the base sequence number and
// the decoded records. It rejects malformed input with an error.
//
// This is the reference decoder, kept for the fuzzer and round-trip
// tests; the replay hot path uses decodeChunkEvents, which binds
// events in the same pass.
func decodeChunk(data []byte, recs []Record, version int) (uint64, []Record, error) {
	d := &chunkDecoder{data: data}
	base, err := d.uvarint()
	if err != nil {
		return 0, nil, err
	}
	n64, err := d.uvarint()
	if err != nil {
		return 0, nil, err
	}
	if n64 > maxChunkEvents {
		return 0, nil, fmt.Errorf("trace: chunk claims %d records (max %d)", n64, maxChunkEvents)
	}
	n := int(n64)
	if cap(recs) < n {
		recs = make([]Record, n)
	}
	recs = recs[:n]
	nb := (n + 7) / 8
	// Trailing padding bits of every bitmap must be zero before its
	// bit-scan, so the presence counts below are trustworthy.
	padOK := func(bm []byte) bool { return n%8 == 0 || bm[nb-1]>>(n%8) == 0 }
	// decodePCs consumes the sparse PC column (v2 and v3 layouts).
	decodePCs := func(pcex []byte) error {
		prevPC := int64(0)
		for i := 0; i < n; i++ {
			pc := prevPC + 1
			if pcex[i/8]&(1<<(i%8)) != 0 {
				u, err := d.uvarint()
				if err != nil {
					return err
				}
				if u == 0 {
					return fmt.Errorf("trace: sequential PC marked exceptional at record %d", i)
				}
				pc += unzigzag(u)
			}
			if pc < -(1<<31) || pc >= 1<<31 {
				return fmt.Errorf("trace: PC %d out of int32 range", pc)
			}
			recs[i] = Record{PC: int32(pc)}
			prevPC = pc
		}
		return nil
	}
	var pcex, taken, tpresent, present []byte
	if version < 2 {
		prevPC := int64(0)
		for i := 0; i < n; i++ {
			u, err := d.uvarint()
			if err != nil {
				return 0, nil, err
			}
			pc := prevPC + unzigzag(u)
			if pc < -(1<<31) || pc >= 1<<31 {
				return 0, nil, fmt.Errorf("trace: PC %d out of int32 range", pc)
			}
			recs[i] = Record{PC: int32(pc)}
			prevPC = pc
		}
		for i := 0; i < n; i++ {
			u, err := d.uvarint()
			if err != nil {
				return 0, nil, err
			}
			t := int64(recs[i].PC) + 1 + unzigzag(u)
			if t < -(1<<31) || t >= 1<<31 {
				return 0, nil, fmt.Errorf("trace: target %d out of int32 range", t)
			}
			recs[i].Target = int32(t)
		}
		if taken, err = d.bytes(nb); err != nil {
			return 0, nil, err
		}
		if present, err = d.bytes(nb); err != nil {
			return 0, nil, err
		}
	} else if version == 2 {
		if pcex, err = d.bytes(nb); err != nil {
			return 0, nil, err
		}
		if taken, err = d.bytes(nb); err != nil {
			return 0, nil, err
		}
		if tpresent, err = d.bytes(nb); err != nil {
			return 0, nil, err
		}
		if present, err = d.bytes(nb); err != nil {
			return 0, nil, err
		}
		if !padOK(pcex) {
			return 0, nil, fmt.Errorf("trace: nonzero padding bits in chunk bitmap")
		}
		if err := decodePCs(pcex); err != nil {
			return 0, nil, err
		}
	} else {
		// v3: the PC column comes first, then the remaining bitmaps.
		if pcex, err = d.bytes(nb); err != nil {
			return 0, nil, err
		}
		if !padOK(pcex) {
			return 0, nil, fmt.Errorf("trace: nonzero padding bits in chunk bitmap")
		}
		if err := decodePCs(pcex); err != nil {
			return 0, nil, err
		}
		if taken, err = d.bytes(nb); err != nil {
			return 0, nil, err
		}
		if tpresent, err = d.bytes(nb); err != nil {
			return 0, nil, err
		}
		if present, err = d.bytes(nb); err != nil {
			return 0, nil, err
		}
	}
	if !padOK(taken) || !padOK(present) || (version >= 2 && !padOK(tpresent)) {
		return 0, nil, fmt.Errorf("trace: nonzero padding bits in chunk bitmap")
	}
	if version >= 2 {
		for i := 0; i < n; i++ {
			t := int64(recs[i].PC) + 1
			if tpresent[i/8]&(1<<(i%8)) != 0 {
				u, err := d.uvarint()
				if err != nil {
					return 0, nil, err
				}
				if u == 0 {
					return 0, nil, fmt.Errorf("trace: fallthrough target marked present at record %d", i)
				}
				t += unzigzag(u)
			}
			if t < -(1<<31) || t >= 1<<31 {
				return 0, nil, fmt.Errorf("trace: target %d out of int32 range", t)
			}
			recs[i].Target = int32(t)
		}
	}
	for i := 0; i < n; i++ {
		recs[i].Taken = taken[i/8]&(1<<(i%8)) != 0
	}
	k := 0
	for _, b := range present {
		k += bits.OnesCount8(b)
	}
	prevAddr := uint64(0)
	got := 0
	for i := 0; i < n && got < k; i++ {
		if present[i/8]&(1<<(i%8)) == 0 {
			continue
		}
		u, err := d.uvarint()
		if err != nil {
			return 0, nil, err
		}
		a := prevAddr + uint64(unzigzag(u))
		if a == 0 {
			return 0, nil, fmt.Errorf("trace: zero address marked present at record %d", i)
		}
		recs[i].Addr = a
		prevAddr = a
		got++
	}
	if d.pos != len(data) {
		return 0, nil, fmt.Errorf("trace: %d trailing bytes after chunk payload", len(data)-d.pos)
	}
	return base, recs, nil
}

// decodeChunkEvents decodes one chunk payload straight into simulator
// events bound to prog, fusing what used to be two passes (decode to
// Record, then rebind to Event) into one. The slab evs is recycled
// when its capacity suffices. Every validation of the reference
// decoder is preserved — bounds-checked varints, bitmap padding,
// zero-address and trailing-byte checks — plus the PC-in-program
// check the old bind step performed.
func decodeChunkEvents(data []byte, prog *isa.Program, evs []sim.Event, version int) (uint64, []sim.Event, error) {
	pos := 0
	base, pos, err := uvarintAt(data, pos)
	if err != nil {
		return 0, nil, err
	}
	n64, pos, err := uvarintAt(data, pos)
	if err != nil {
		return 0, nil, err
	}
	if n64 > maxChunkEvents {
		return 0, nil, fmt.Errorf("trace: chunk claims %d records (max %d)", n64, maxChunkEvents)
	}
	n := int(n64)
	if cap(evs) < n {
		evs = make([]sim.Event, n)
	}
	evs = evs[:n]
	insts := prog.Insts
	ni := int64(len(insts))
	nb := (n + 7) / 8
	// A set padding bit in any bitmap would index past evs[:n] in the
	// bit-scan loops, so each bitmap is checked as soon as it is sliced.
	padOK := func(bm []byte) bool { return n%8 == 0 || bm[nb-1]>>(n%8) == 0 }
	var pcex, taken, tpresent, present []byte
	if version < 2 {
		prevPC := int64(0)
		for i := 0; i < n; i++ {
			// Inlined uvarint fast paths: PC deltas are almost always
			// one byte (straight-line code) and two cover every
			// realistic branch span, so the slow path is effectively
			// never taken.
			if uint(pos) >= uint(len(data)) {
				return 0, nil, errTruncatedVarint
			}
			u := uint64(data[pos])
			pos++
			if u >= 0x80 {
				if uint(pos) < uint(len(data)) && data[pos] < 0x80 {
					u = u&0x7f | uint64(data[pos])<<7
					pos++
				} else if u, pos, err = uvarintAt(data, pos-1); err != nil {
					return 0, nil, err
				}
			}
			pc := prevPC + unzigzag(u)
			if pc < 0 || pc >= ni {
				return 0, nil, fmt.Errorf("trace: record %d: pc %d outside program %s (%d insts)",
					base+uint64(i), pc, prog.Name, len(insts))
			}
			prevPC = pc
			// The whole-struct write zeroes Addr/Taken in a recycled
			// slab; the dense target pass below overwrites Target for
			// every event.
			evs[i] = sim.Event{Seq: base + uint64(i), PC: int32(pc), Target: int32(pc) + 1, Inst: &insts[pc]}
		}
		for i := 0; i < n; i++ {
			if uint(pos) >= uint(len(data)) {
				return 0, nil, errTruncatedVarint
			}
			u := uint64(data[pos])
			pos++
			if u >= 0x80 {
				if uint(pos) < uint(len(data)) && data[pos] < 0x80 {
					u = u&0x7f | uint64(data[pos])<<7
					pos++
				} else if u, pos, err = uvarintAt(data, pos-1); err != nil {
					return 0, nil, err
				}
			}
			t := int64(evs[i].PC) + 1 + unzigzag(u)
			if t < -(1<<31) || t >= 1<<31 {
				return 0, nil, fmt.Errorf("trace: target %d out of int32 range", t)
			}
			evs[i].Target = int32(t)
		}
		if pos+2*nb > len(data) {
			return 0, nil, fmt.Errorf("trace: chunk truncated at offset %d (need %d bytes)", pos, 2*nb)
		}
		taken = data[pos : pos+nb]
		present = data[pos+nb : pos+2*nb]
		pos += 2 * nb
		if !padOK(taken) || !padOK(present) {
			return 0, nil, fmt.Errorf("trace: nonzero padding bits in chunk bitmap")
		}
	} else if version == 2 {
		if pos+4*nb > len(data) {
			return 0, nil, fmt.Errorf("trace: chunk truncated at offset %d (need %d bytes)", pos, 4*nb)
		}
		pcex = data[pos : pos+nb]
		taken = data[pos+nb : pos+2*nb]
		tpresent = data[pos+2*nb : pos+3*nb]
		present = data[pos+3*nb : pos+4*nb]
		pos += 4 * nb
		if !padOK(pcex) || !padOK(taken) || !padOK(tpresent) || !padOK(present) {
			return 0, nil, fmt.Errorf("trace: nonzero padding bits in chunk bitmap")
		}
	} else {
		// v3 front-loads the PC column: only its exception bitmap
		// precedes the PC deltas; the remaining bitmaps follow them.
		if pos+nb > len(data) {
			return 0, nil, fmt.Errorf("trace: chunk truncated at offset %d (need %d bytes)", pos, nb)
		}
		pcex = data[pos : pos+nb]
		pos += nb
		if !padOK(pcex) {
			return 0, nil, fmt.Errorf("trace: nonzero padding bits in chunk bitmap")
		}
	}
	if version >= 2 {
		// PC column: between exception bits the stream is straight-line
		// code, so whole runs need one bounds check and then only the
		// struct write per event — no varint, no per-event range test.
		// The whole-struct write zeroes Addr/Taken in a recycled slab
		// and plants the fallthrough target; the sparse columns below
		// fill in the exceptions.
		pc := int64(0)
		i := 0
		for bi, b := range pcex {
			for b != 0 {
				j := bi<<3 + bits.TrailingZeros8(b)
				b &= b - 1
				if pc+int64(j-i) >= ni {
					return 0, nil, fmt.Errorf("trace: record %d: pc %d outside program %s (%d insts)",
						base+uint64(j), pc+int64(j-i), prog.Name, len(insts))
				}
				for ; i < j; i++ {
					pc++
					evs[i] = sim.Event{Seq: base + uint64(i), PC: int32(pc), Target: int32(pc) + 1, Inst: &insts[pc]}
				}
				if uint(pos) >= uint(len(data)) {
					return 0, nil, errTruncatedVarint
				}
				u := uint64(data[pos])
				pos++
				if u >= 0x80 {
					if uint(pos) < uint(len(data)) && data[pos] < 0x80 {
						u = u&0x7f | uint64(data[pos])<<7
						pos++
					} else if u, pos, err = uvarintAt(data, pos-1); err != nil {
						return 0, nil, err
					}
				}
				if u == 0 {
					return 0, nil, fmt.Errorf("trace: sequential PC marked exceptional at record %d", i)
				}
				pc += 1 + unzigzag(u)
				if pc < 0 || pc >= ni {
					return 0, nil, fmt.Errorf("trace: record %d: pc %d outside program %s (%d insts)",
						base+uint64(i), pc, prog.Name, len(insts))
				}
				evs[i] = sim.Event{Seq: base + uint64(i), PC: int32(pc), Target: int32(pc) + 1, Inst: &insts[pc]}
				i++
			}
		}
		if i < n {
			if pc+int64(n-i) >= ni {
				return 0, nil, fmt.Errorf("trace: record %d: pc %d outside program %s (%d insts)",
					base+uint64(n-1), pc+int64(n-i), prog.Name, len(insts))
			}
			for ; i < n; i++ {
				pc++
				evs[i] = sim.Event{Seq: base + uint64(i), PC: int32(pc), Target: int32(pc) + 1, Inst: &insts[pc]}
			}
		}
	}
	if version >= 3 {
		if pos+3*nb > len(data) {
			return 0, nil, fmt.Errorf("trace: chunk truncated at offset %d (need %d bytes)", pos, 3*nb)
		}
		taken = data[pos : pos+nb]
		tpresent = data[pos+nb : pos+2*nb]
		present = data[pos+2*nb : pos+3*nb]
		pos += 3 * nb
		if !padOK(taken) || !padOK(tpresent) || !padOK(present) {
			return 0, nil, fmt.Errorf("trace: nonzero padding bits in chunk bitmap")
		}
	}
	// Bit-scan the sparse bitmaps instead of testing every event: with
	// taken branches a small fraction of the stream, iterating set bits
	// replaces n predictable-but-paid tests with popcount work.
	for bi, b := range taken {
		for b != 0 {
			evs[bi<<3+bits.TrailingZeros8(b)].Taken = true
			b &= b - 1
		}
	}
	for bi, b := range tpresent {
		for b != 0 {
			i := bi<<3 + bits.TrailingZeros8(b)
			b &= b - 1
			if uint(pos) >= uint(len(data)) {
				return 0, nil, errTruncatedVarint
			}
			u := uint64(data[pos])
			pos++
			if u >= 0x80 {
				if uint(pos) < uint(len(data)) && data[pos] < 0x80 {
					u = u&0x7f | uint64(data[pos])<<7
					pos++
				} else if u, pos, err = uvarintAt(data, pos-1); err != nil {
					return 0, nil, err
				}
			}
			if u == 0 {
				return 0, nil, fmt.Errorf("trace: fallthrough target marked present at record %d", i)
			}
			t := int64(evs[i].PC) + 1 + unzigzag(u)
			if t < -(1<<31) || t >= 1<<31 {
				return 0, nil, fmt.Errorf("trace: target %d out of int32 range", t)
			}
			evs[i].Target = int32(t)
		}
	}
	prevAddr := uint64(0)
	for bi, b := range present {
		for b != 0 {
			i := bi<<3 + bits.TrailingZeros8(b)
			b &= b - 1
			if uint(pos) >= uint(len(data)) {
				return 0, nil, errTruncatedVarint
			}
			u := uint64(data[pos])
			pos++
			if u >= 0x80 {
				if uint(pos) < uint(len(data)) && data[pos] < 0x80 {
					u = u&0x7f | uint64(data[pos])<<7
					pos++
				} else if u, pos, err = uvarintAt(data, pos-1); err != nil {
					return 0, nil, err
				}
			}
			a := prevAddr + uint64(unzigzag(u))
			if a == 0 {
				return 0, nil, fmt.Errorf("trace: zero address marked present at record %d", i)
			}
			evs[i].Addr = a
			prevAddr = a
		}
	}
	if pos != len(data) {
		return 0, nil, fmt.Errorf("trace: %d trailing bytes after chunk payload", len(data)-pos)
	}
	return base, evs, nil
}

// scanChunkPCRuns decodes only the program-counter column of a
// sparse-layout chunk, reporting the committed stream as maximal
// straight-line runs: run(pc, n) covers n events whose PCs are pc,
// pc+1, ..., pc+n-1, in commit order. The header, bitmap, and PC
// column checks match decodeChunkEvents; the taken, target, and
// address columns are never touched — and with a split-compressed
// frame, never even decompressed. Skipping their varint work and the
// per-event struct writes is the point. data need only extend through
// the PC column (framePCColumn's contract). Returns the chunk's base
// sequence number, event count, and the offset just past the PC
// deltas (where the remaining columns start in a fully inflated v3
// payload — the column decoder resumes there).
func scanChunkPCRuns(data []byte, version int, ni int64, run func(pc, n int32)) (uint64, int, int, error) {
	pos := 0
	base, pos, err := uvarintAt(data, pos)
	if err != nil {
		return 0, 0, 0, err
	}
	n64, pos, err := uvarintAt(data, pos)
	if err != nil {
		return 0, 0, 0, err
	}
	if n64 > maxChunkEvents {
		return 0, 0, 0, fmt.Errorf("trace: chunk claims %d records (max %d)", n64, maxChunkEvents)
	}
	n := int(n64)
	nb := (n + 7) / 8
	// v3 places only the PC-exception bitmap ahead of the PC deltas;
	// v2 interleaves all four bitmaps there, so its scan must inflate
	// through them.
	ahead := nb
	if version < 3 {
		ahead = 4 * nb
	}
	if pos+ahead > len(data) {
		return 0, 0, 0, fmt.Errorf("trace: chunk truncated at offset %d (need %d bytes)", pos, ahead)
	}
	pcex := data[pos : pos+nb]
	pos += ahead
	if n%8 != 0 && pcex[nb-1]>>(n%8) != 0 {
		return 0, 0, 0, fmt.Errorf("trace: nonzero padding bits in chunk bitmap")
	}
	pc := int64(0)
	i := 0
	runStart := int64(0)
	runLen := int32(0)
	for bi, b := range pcex {
		for b != 0 {
			j := bi<<3 + bits.TrailingZeros8(b)
			b &= b - 1
			if j > i {
				// Straight-line events i..j-1 extend the current run.
				if pc+int64(j-i) >= ni {
					return 0, 0, 0, fmt.Errorf("trace: record %d: pc %d outside program (%d insts)",
						base+uint64(j-1), pc+int64(j-i), ni)
				}
				if runLen == 0 {
					runStart = pc + 1
				}
				runLen += int32(j - i)
				pc += int64(j - i)
				i = j
			}
			if uint(pos) >= uint(len(data)) {
				return 0, 0, 0, errTruncatedVarint
			}
			u := uint64(data[pos])
			pos++
			if u >= 0x80 {
				if uint(pos) < uint(len(data)) && data[pos] < 0x80 {
					u = u&0x7f | uint64(data[pos])<<7
					pos++
				} else if u, pos, err = uvarintAt(data, pos-1); err != nil {
					return 0, 0, 0, err
				}
			}
			if u == 0 {
				return 0, 0, 0, fmt.Errorf("trace: sequential PC marked exceptional at record %d", i)
			}
			if runLen > 0 {
				run(int32(runStart), runLen)
			}
			pc += 1 + unzigzag(u)
			if pc < 0 || pc >= ni {
				return 0, 0, 0, fmt.Errorf("trace: record %d: pc %d outside program (%d insts)",
					base+uint64(i), pc, ni)
			}
			runStart = pc
			runLen = 1
			i++
		}
	}
	if i < n {
		if pc+int64(n-i) >= ni {
			return 0, 0, 0, fmt.Errorf("trace: record %d: pc %d outside program (%d insts)",
				base+uint64(n-1), pc+int64(n-i), ni)
		}
		if runLen == 0 {
			runStart = pc + 1
		}
		runLen += int32(n - i)
	}
	if runLen > 0 {
		run(int32(runStart), runLen)
	}
	return base, n, pos, nil
}

// decoder owns the reusable buffers of one decode stream: the flate
// reader (reset per frame instead of reallocating its window), the
// decompression buffer, and a bytes.Reader over the frame payload.
// Each sequential source, parallel worker, and shard owns exactly one.
type decoder struct {
	br  bytes.Reader
	fr  io.ReadCloser
	raw []byte
	// version selects the chunk layout (dense v1, sparse v2,
	// front-loaded-PC v3, run-native v4); set once at construction
	// from the trace header.
	version int
	// v4 state: the run dictionary (shared with the reader that owns
	// it), whether this decoder grows it (sequential, commit order) or
	// verifies chunks against a footer-loaded copy, and the private
	// per-chunk scratch.
	dict *v4Dict
	grow bool
	sc   v4Scratch
}

// frameBytes returns the decompressed chunk payload of f, valid until
// the next call on this decoder.
func (d *decoder) frameBytes(f frame) ([]byte, error) {
	switch f.kind {
	case compressionNone:
		if len(f.payload) != f.rawLen {
			return nil, fmt.Errorf("trace: frame length %d does not match raw length %d", len(f.payload), f.rawLen)
		}
		return f.payload, nil
	case compressionFlate:
		if cap(d.raw) < f.rawLen {
			d.raw = make([]byte, f.rawLen)
		}
		buf := d.raw[:f.rawLen]
		if err := d.inflateExact(f.payload, buf); err != nil {
			return nil, err
		}
		return buf, nil
	case compressionSplit:
		raw1, s1, s2, err := splitParts(f)
		if err != nil {
			return nil, err
		}
		if cap(d.raw) < f.rawLen {
			d.raw = make([]byte, f.rawLen)
		}
		buf := d.raw[:f.rawLen]
		if err := d.inflateExact(s1, buf[:raw1]); err != nil {
			return nil, err
		}
		if err := d.inflateExact(s2, buf[raw1:]); err != nil {
			return nil, err
		}
		return buf, nil
	default:
		return nil, fmt.Errorf("trace: unknown compression kind %d", f.kind)
	}
}

// inflateExact decompresses src into dst, reusing the decoder's flate
// state, and requires the stream to end exactly at len(dst) bytes.
func (d *decoder) inflateExact(src, dst []byte) error {
	d.br.Reset(src)
	if d.fr == nil {
		d.fr = flate.NewReader(&d.br)
	} else if err := d.fr.(flate.Resetter).Reset(&d.br, nil); err != nil {
		return fmt.Errorf("trace: reset flate reader: %w", err)
	}
	if _, err := io.ReadFull(d.fr, dst); err != nil {
		return fmt.Errorf("trace: decompress chunk: %w", err)
	}
	var extra [1]byte
	if n, _ := d.fr.Read(extra[:]); n != 0 {
		return fmt.Errorf("trace: chunk decompresses past its declared length %d", len(dst))
	}
	return nil
}

// splitParts parses a compressionSplit payload: uvarint raw length of
// the first (PC-column) stream, uvarint stored length of that stream,
// then the two flate streams back to back.
func splitParts(f frame) (raw1 int, s1, s2 []byte, err error) {
	u1, k1 := binary.Uvarint(f.payload)
	if k1 <= 0 {
		return 0, nil, nil, fmt.Errorf("trace: bad split chunk header")
	}
	u2, k2 := binary.Uvarint(f.payload[k1:])
	if k2 <= 0 {
		return 0, nil, nil, fmt.Errorf("trace: bad split chunk header")
	}
	rest := f.payload[k1+k2:]
	if u1 == 0 || u1 > uint64(f.rawLen) || u2 > uint64(len(rest)) {
		return 0, nil, nil, fmt.Errorf("trace: split chunk lengths out of range")
	}
	return int(u1), rest[:u2], rest[u2:], nil
}

// pcColumnEnd returns the offset just past the v3 PC column — chunk
// header, exception bitmap, and PC-delta varints — in an encoded v3
// chunk. The writer splits compression here so scans inflate the PC
// column alone.
func pcColumnEnd(data []byte) (int, error) {
	_, k0 := binary.Uvarint(data)
	if k0 <= 0 {
		return 0, fmt.Errorf("trace: bad chunk header")
	}
	n64, k1 := binary.Uvarint(data[k0:])
	if k1 <= 0 || n64 > maxChunkEvents {
		return 0, fmt.Errorf("trace: bad chunk header")
	}
	pos := k0 + k1
	nb := (int(n64) + 7) / 8
	if pos+nb > len(data) {
		return 0, fmt.Errorf("trace: chunk truncated in bitmap")
	}
	exc := 0
	for _, b := range data[pos : pos+nb] {
		exc += bits.OnesCount8(b)
	}
	pos += nb
	for i := 0; i < exc; i++ {
		_, k := binary.Uvarint(data[pos:])
		if k <= 0 {
			return 0, fmt.Errorf("trace: chunk truncated in PC column")
		}
		pos += k
	}
	return pos, nil
}

// framePCColumn returns a decoded prefix of f's payload that covers
// at least the full PC column of a v2/v3 chunk, reusing the decoder's
// buffers. For split-compressed frames only the first stream — the PC
// column itself — is inflated; the taken, target, and address
// streams, the bulk of the payload, stay compressed. Other kinds
// decode fully (Go's inflater decodes whole 32KiB windows, so a
// partial read of a single stream saves nothing). Frame integrity is
// guaranteed by the CRC over the stored payload, which readFrame
// verified before any of it is decoded.
func (d *decoder) framePCColumn(f frame) ([]byte, error) {
	if f.kind != compressionSplit {
		return d.frameBytes(f)
	}
	raw1, s1, _, err := splitParts(f)
	if err != nil {
		return nil, err
	}
	if cap(d.raw) < raw1 {
		d.raw = make([]byte, raw1)
	}
	buf := d.raw[:raw1]
	if err := d.inflateExact(s1, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// release drops the decoder's buffers so a closed source does not pin
// them.
func (d *decoder) release() {
	d.fr = nil
	d.raw = nil
	d.br.Reset(nil)
}

// decodeFrameEvents decompresses one frame and decodes it directly
// into bound simulator events using the decoder's recycled buffers.
func (d *decoder) decodeFrameEvents(f frame, prog *isa.Program, evs []sim.Event) (uint64, []sim.Event, error) {
	raw, err := d.frameBytes(f)
	if err != nil {
		return 0, nil, err
	}
	if d.version >= 4 {
		return decodeChunkEventsV4(raw, prog, d.dict, d.grow, evs, &d.sc)
	}
	return decodeChunkEvents(raw, prog, evs, d.version)
}

// decodeFrame decompresses and decodes one frame into records. It is
// the reference path used by the fuzzer; it allocates per call and is
// safe from multiple goroutines on distinct frames.
func decodeFrame(f frame, recs []Record, version int) (uint64, []Record, error) {
	d := decoder{version: version}
	raw, err := d.frameBytes(f)
	if err != nil {
		return 0, nil, err
	}
	return decodeChunk(raw, recs, d.version)
}
