package trace

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"

	"bioperfload/internal/isa"
	"bioperfload/internal/sim"
)

// FormatVersion is bumped whenever the on-disk layout changes; it is
// baked into both the header magic and artifact-store fingerprints so
// stale traces read as misses rather than garbage.
const FormatVersion = 1

var (
	headerMagic = [8]byte{'B', 'P', 'T', 'R', 'A', 'C', 'E', '0' + FormatVersion}
	footerMagic = [8]byte{'B', 'P', 'T', 'R', 'E', 'N', 'D', '0' + FormatVersion}
)

// Compression kinds recorded per chunk frame.
const (
	compressionNone  = 0
	compressionFlate = 1
)

// maxFrameBytes caps the compressed-frame allocation a corrupted
// length prefix can request.
const maxFrameBytes = 64 << 20

// Meta is the trace header document: enough identity to rebind the
// stream to the program that produced it, and to reject a replay
// against the wrong binary.
type Meta struct {
	// Program is the program name the trace was recorded from.
	Program string `json:"program"`
	// Fingerprint identifies the exact compiled artifact + input
	// configuration (see runner.Fingerprint); replaying against a
	// program with a different fingerprint is refused.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Size is the input-size label the run was bound with.
	Size string `json:"size,omitempty"`
	// ChunkEvents is the writer's chunk capacity.
	ChunkEvents int `json:"chunk_events"`
	// Compression names the per-chunk codec ("flate" or "none").
	Compression string `json:"compression"`
}

// Writer encodes a committed-instruction stream to w. It implements
// sim.BatchObserver, so recording a trace is one AddBatchObserver call
// on the machine: events accumulate into chunks which are encoded,
// compressed, CRC-stamped, and framed as they fill. Close flushes the
// final partial chunk and the footer; it does not close w.
//
// I/O and encoding errors inside ObserveBatch are sticky: the first
// one is retained, further batches are dropped, and Close returns it.
type Writer struct {
	w      io.Writer
	meta   Meta
	flate  bool
	recs   []Record
	base   uint64
	total  uint64
	chunks uint64
	raw    []byte
	comp   bytes.Buffer
	fw     *flate.Writer
	err    error
	header bool
	closed bool
}

// NewWriter creates a trace writer. Zero-valued meta fields are
// defaulted (ChunkEvents, Compression); the header is written lazily
// with the first chunk so an aborted recording can leave nothing
// behind.
func NewWriter(w io.Writer, meta Meta) *Writer {
	if meta.ChunkEvents <= 0 {
		meta.ChunkEvents = ChunkEvents
	}
	if meta.Compression == "" {
		meta.Compression = "flate"
	}
	return &Writer{
		w:     w,
		meta:  meta,
		flate: meta.Compression == "flate",
		recs:  make([]Record, 0, meta.ChunkEvents),
	}
}

var _ sim.BatchObserver = (*Writer)(nil)

// ObserveBatch implements sim.BatchObserver: the slab is copied into
// the writer's chunk buffer immediately (the simulator recycles it the
// moment this returns) and full chunks are flushed inline.
func (tw *Writer) ObserveBatch(evs []sim.Event) {
	if tw.err != nil || tw.closed {
		return
	}
	for i := range evs {
		tw.recs = append(tw.recs, Record{
			PC:     evs[i].PC,
			Target: evs[i].Target,
			Addr:   evs[i].Addr,
			Taken:  evs[i].Taken,
		})
		if len(tw.recs) == cap(tw.recs) {
			tw.flush()
		}
	}
}

// Err returns the writer's sticky error.
func (tw *Writer) Err() error { return tw.err }

// Events returns how many events have been accepted so far.
func (tw *Writer) Events() uint64 { return tw.total + uint64(len(tw.recs)) }

func (tw *Writer) writeHeader() {
	if tw.header {
		return
	}
	tw.header = true
	meta, err := json.Marshal(tw.meta)
	if err != nil {
		tw.err = fmt.Errorf("trace: encode meta: %w", err)
		return
	}
	var buf []byte
	buf = append(buf, headerMagic[:]...)
	buf = binary.AppendUvarint(buf, uint64(len(meta)))
	buf = append(buf, meta...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(meta))
	if _, err := tw.w.Write(buf); err != nil {
		tw.err = fmt.Errorf("trace: write header: %w", err)
	}
}

// flush encodes, compresses, and frames the pending chunk.
func (tw *Writer) flush() {
	if tw.err != nil || len(tw.recs) == 0 {
		return
	}
	tw.writeHeader()
	if tw.err != nil {
		return
	}
	tw.raw = appendChunk(tw.raw[:0], tw.base, tw.recs)
	payload := tw.raw
	kind := byte(compressionNone)
	if tw.flate {
		tw.comp.Reset()
		if tw.fw == nil {
			tw.fw, _ = flate.NewWriter(&tw.comp, flate.BestSpeed)
		} else {
			tw.fw.Reset(&tw.comp)
		}
		if _, err := tw.fw.Write(tw.raw); err == nil {
			if err := tw.fw.Close(); err == nil && tw.comp.Len() < len(tw.raw) {
				payload = tw.comp.Bytes()
				kind = compressionFlate
			}
		}
	}
	var frame []byte
	frame = binary.AppendUvarint(frame, uint64(len(tw.raw)))
	frame = append(frame, kind)
	frame = binary.AppendUvarint(frame, uint64(len(payload)))
	frame = binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(payload))
	if _, err := tw.w.Write(frame); err != nil {
		tw.err = fmt.Errorf("trace: write frame: %w", err)
		return
	}
	if _, err := tw.w.Write(payload); err != nil {
		tw.err = fmt.Errorf("trace: write chunk: %w", err)
		return
	}
	tw.base += uint64(len(tw.recs))
	tw.total = tw.base
	tw.chunks++
	tw.recs = tw.recs[:0]
}

// Close flushes the final partial chunk and writes the terminator and
// footer (total event and chunk counts, CRC-protected). It returns the
// writer's sticky error, and does not close the underlying writer.
func (tw *Writer) Close() error {
	if tw.closed {
		return tw.err
	}
	tw.closed = true
	tw.flush()
	tw.writeHeader() // empty trace still gets a valid header
	if tw.err != nil {
		return tw.err
	}
	var buf []byte
	buf = binary.AppendUvarint(buf, 0) // terminator: rawLen 0
	var counts []byte
	counts = binary.AppendUvarint(counts, tw.total)
	counts = binary.AppendUvarint(counts, tw.chunks)
	buf = append(buf, counts...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(counts))
	buf = append(buf, footerMagic[:]...)
	if _, err := tw.w.Write(buf); err != nil {
		tw.err = fmt.Errorf("trace: write footer: %w", err)
	}
	return tw.err
}

// frame is one undecoded chunk as read from the stream.
type frame struct {
	rawLen  int
	kind    byte
	payload []byte
}

// decodeFrame decompresses and decodes one frame. It is safe to call
// from multiple goroutines on distinct frames (parallel replay).
func decodeFrame(f frame, recs []Record) (uint64, []Record, error) {
	raw := f.payload
	switch f.kind {
	case compressionNone:
		if len(raw) != f.rawLen {
			return 0, nil, fmt.Errorf("trace: frame length %d does not match raw length %d", len(raw), f.rawLen)
		}
	case compressionFlate:
		fr := flate.NewReader(bytes.NewReader(f.payload))
		buf := make([]byte, f.rawLen)
		if _, err := io.ReadFull(fr, buf); err != nil {
			return 0, nil, fmt.Errorf("trace: decompress chunk: %w", err)
		}
		// The compressed stream must end exactly at rawLen bytes.
		var extra [1]byte
		if n, _ := fr.Read(extra[:]); n != 0 {
			return 0, nil, fmt.Errorf("trace: chunk decompresses past its declared length %d", f.rawLen)
		}
		raw = buf
	default:
		return 0, nil, fmt.Errorf("trace: unknown compression kind %d", f.kind)
	}
	return decodeChunk(raw, recs)
}

// Reader decodes a trace stream. NewReader consumes and validates the
// header; chunks are then read with next/nextFrame until the footer,
// whose counts are cross-checked against what was actually decoded.
type Reader struct {
	br           *bufio.Reader
	meta         Meta
	chunks       uint64
	footerEvents uint64
	done         bool
}

// NewReader wraps r and reads the trace header.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: read magic: %w", err)
	}
	if magic != headerMagic {
		return nil, fmt.Errorf("trace: bad magic %q (want %q)", magic[:], headerMagic[:])
	}
	metaLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: read meta length: %w", err)
	}
	if metaLen > 1<<20 {
		return nil, fmt.Errorf("trace: meta length %d too large", metaLen)
	}
	metaBuf := make([]byte, metaLen)
	if _, err := io.ReadFull(br, metaBuf); err != nil {
		return nil, fmt.Errorf("trace: read meta: %w", err)
	}
	var crc [4]byte
	if _, err := io.ReadFull(br, crc[:]); err != nil {
		return nil, fmt.Errorf("trace: read meta crc: %w", err)
	}
	if binary.LittleEndian.Uint32(crc[:]) != crc32.ChecksumIEEE(metaBuf) {
		return nil, fmt.Errorf("trace: meta checksum mismatch")
	}
	var meta Meta
	if err := json.Unmarshal(metaBuf, &meta); err != nil {
		return nil, fmt.Errorf("trace: decode meta: %w", err)
	}
	return &Reader{br: br, meta: meta}, nil
}

// Meta returns the header document.
func (tr *Reader) Meta() Meta { return tr.meta }

// TotalEvents returns the footer's recorded event count; it is valid
// once the stream has been fully read (the sources return io.EOF).
func (tr *Reader) TotalEvents() uint64 { return tr.footerEvents }

// nextFrame reads the next chunk frame, or io.EOF after validating the
// terminator and footer.
func (tr *Reader) nextFrame() (frame, error) {
	if tr.done {
		return frame{}, io.EOF
	}
	rawLen, err := binary.ReadUvarint(tr.br)
	if err != nil {
		return frame{}, fmt.Errorf("trace: read chunk length (truncated trace?): %w", err)
	}
	if rawLen == 0 {
		return frame{}, tr.readFooter()
	}
	if rawLen > maxFrameBytes {
		return frame{}, fmt.Errorf("trace: chunk raw length %d too large", rawLen)
	}
	kind, err := tr.br.ReadByte()
	if err != nil {
		return frame{}, fmt.Errorf("trace: read compression kind: %w", err)
	}
	compLen, err := binary.ReadUvarint(tr.br)
	if err != nil {
		return frame{}, fmt.Errorf("trace: read payload length: %w", err)
	}
	if compLen > maxFrameBytes {
		return frame{}, fmt.Errorf("trace: chunk payload length %d too large", compLen)
	}
	var crc [4]byte
	if _, err := io.ReadFull(tr.br, crc[:]); err != nil {
		return frame{}, fmt.Errorf("trace: read chunk crc: %w", err)
	}
	payload := make([]byte, compLen)
	if _, err := io.ReadFull(tr.br, payload); err != nil {
		return frame{}, fmt.Errorf("trace: read chunk payload: %w", err)
	}
	if binary.LittleEndian.Uint32(crc[:]) != crc32.ChecksumIEEE(payload) {
		return frame{}, fmt.Errorf("trace: chunk %d checksum mismatch", tr.chunks)
	}
	tr.chunks++
	return frame{rawLen: int(rawLen), kind: kind, payload: payload}, nil
}

// readFooter validates the trailer and returns io.EOF on success.
func (tr *Reader) readFooter() error {
	totalBuf := make([]byte, 0, 2*binary.MaxVarintLen64)
	total, err := tr.readCountedUvarint(&totalBuf)
	if err != nil {
		return fmt.Errorf("trace: read footer events: %w", err)
	}
	chunks, err := tr.readCountedUvarint(&totalBuf)
	if err != nil {
		return fmt.Errorf("trace: read footer chunks: %w", err)
	}
	var crc [4]byte
	if _, err := io.ReadFull(tr.br, crc[:]); err != nil {
		return fmt.Errorf("trace: read footer crc: %w", err)
	}
	if binary.LittleEndian.Uint32(crc[:]) != crc32.ChecksumIEEE(totalBuf) {
		return fmt.Errorf("trace: footer checksum mismatch")
	}
	var magic [8]byte
	if _, err := io.ReadFull(tr.br, magic[:]); err != nil {
		return fmt.Errorf("trace: read footer magic: %w", err)
	}
	if magic != footerMagic {
		return fmt.Errorf("trace: bad footer magic %q", magic[:])
	}
	if chunks != tr.chunks {
		return fmt.Errorf("trace: footer records %d chunks, decoded %d", chunks, tr.chunks)
	}
	tr.footerEvents = total
	tr.done = true
	return io.EOF
}

// readCountedUvarint reads a uvarint while appending its raw bytes to
// buf (for the footer CRC).
func (tr *Reader) readCountedUvarint(buf *[]byte) (uint64, error) {
	var u uint64
	for shift := 0; ; shift += 7 {
		b, err := tr.br.ReadByte()
		if err != nil {
			return 0, err
		}
		*buf = append(*buf, b)
		if shift >= 64 {
			return 0, fmt.Errorf("uvarint overflow")
		}
		u |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return u, nil
		}
	}
}

// bind converts decoded records into simulator events attached to
// prog, validating every PC against the program bounds.
func bind(prog *isa.Program, base uint64, recs []Record, evs []sim.Event) ([]sim.Event, error) {
	n := len(recs)
	if cap(evs) < n {
		evs = make([]sim.Event, n)
	}
	evs = evs[:n]
	insts := prog.Insts
	for i := range recs {
		pc := recs[i].PC
		if pc < 0 || int(pc) >= len(insts) {
			return nil, fmt.Errorf("trace: record %d: pc %d outside program %s (%d insts)",
				base+uint64(i), pc, prog.Name, len(insts))
		}
		evs[i] = sim.Event{
			Seq:    base + uint64(i),
			PC:     pc,
			Inst:   &insts[pc],
			Addr:   recs[i].Addr,
			Taken:  recs[i].Taken,
			Target: recs[i].Target,
		}
	}
	return evs, nil
}
