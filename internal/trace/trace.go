package trace

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"

	"bioperfload/internal/isa"
	"bioperfload/internal/sim"
)

// FormatVersion is bumped whenever the on-disk layout changes; it is
// baked into both the header magic and artifact-store fingerprints so
// stale traces read as misses rather than garbage.
//
// Version history:
//
//	1  chunked columnar stream, counts-only footer
//	2  adds a per-chunk offset index to the footer so a reader with
//	   random access (io.ReaderAt) can hand disjoint chunk ranges to
//	   shard workers, and switches the chunk PC and target columns to
//	   sparse encodings (exception bitmaps + deltas for non-sequential
//	   PCs and non-fallthrough targets only) — see appendChunk
//	3  front-loads the PC column inside each chunk (exception bitmap +
//	   deltas before everything else) and compresses it as its own
//	   flate stream (compressionSplit) so a PC-only scan — the phase
//	   analysis BBV pass — decompresses only a few percent of each
//	   chunk's payload
//	4  run-native encoding: a trace-wide dictionary of straight-line
//	   PC runs (grown chunk by chunk, repeated CRC-guarded in the
//	   footer) turns each chunk into a stream of (run-id, repeat)
//	   tokens plus a conditional-branch taken bitmap and a per-static-
//	   site delta-coded address column — see codecv4.go. Requires the
//	   program at write time (NewWriter's prog) so the encoder can
//	   verify the stream is run-representable.
//
// Readers accept every listed version; writers emit the current one
// unless a test pins an older version.
const FormatVersion = 4

// minFormatVersion is the oldest version readers still accept.
const minFormatVersion = 1

// headerMagic returns the header magic for a format version.
func headerMagic(version int) [8]byte {
	return [8]byte{'B', 'P', 'T', 'R', 'A', 'C', 'E', '0' + byte(version)}
}

// footerMagic returns the footer magic for a format version.
func footerMagic(version int) [8]byte {
	return [8]byte{'B', 'P', 'T', 'R', 'E', 'N', 'D', '0' + byte(version)}
}

// Compression kinds recorded per chunk frame.
const (
	compressionNone  = 0
	compressionFlate = 1
	// compressionSplit compresses the chunk as two independent flate
	// streams cut at the end of the v3 PC column, so a PC-only scan
	// inflates just the first. (Go's inflater decodes a whole 32KiB
	// window before returning any byte, so a partial read of a single
	// stream cannot skip work — only a separate stream can.)
	compressionSplit = 2
)

// maxFrameBytes caps the compressed-frame allocation a corrupted
// length prefix can request.
const maxFrameBytes = 64 << 20

// maxIndexChunks caps the chunk-index allocation a corrupted footer
// can request (a real trace at the default chunk size would need
// ~275G events to hit it).
const maxIndexChunks = 1 << 22

// v2 footer geometry. After the terminator byte the v2 trailer is:
//
//	index payload:
//	    uvarint chunkCount
//	    chunkCount × { uvarint offsetDelta, uvarint events }
//	        offsetDelta: frame-start file offset, delta-coded against
//	        the previous frame start (first entry is absolute)
//	uint32 LE   CRC-32 (IEEE) of the index payload
//	fixed tail (tailLen bytes):
//	    uint64 LE indexLen     length of the index payload in bytes
//	    uint64 LE totalEvents
//	    uint64 LE chunkCount
//	uint32 LE   CRC-32 (IEEE) of the fixed tail
//	[8]byte     footer magic "BPTREND2"
//
// The fixed-size suffix (tail + tailCRC + magic = tailFixedLen bytes)
// lets an io.ReaderAt locate the index from the end of the file, while
// a sequential reader parses the same trailer forward.
const (
	tailLen      = 24
	tailFixedLen = tailLen + 4 + 8
)

// Meta is the trace header document: enough identity to rebind the
// stream to the program that produced it, and to reject a replay
// against the wrong binary.
type Meta struct {
	// Program is the program name the trace was recorded from.
	Program string `json:"program"`
	// Fingerprint identifies the exact compiled artifact + input
	// configuration (see runner.Fingerprint); replaying against a
	// program with a different fingerprint is refused.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Size is the input-size label the run was bound with.
	Size string `json:"size,omitempty"`
	// ChunkEvents is the writer's chunk capacity.
	ChunkEvents int `json:"chunk_events"`
	// Compression names the per-chunk codec ("flate" or "none").
	Compression string `json:"compression"`
}

// chunkInfo is one entry of the v2 footer index: where a chunk's frame
// starts and how many events it decodes to. Base sequence numbers are
// recovered by prefix-summing the event counts.
type chunkInfo struct {
	offset int64
	events uint64
}

// Writer encodes a committed-instruction stream to w. It implements
// sim.BatchObserver, so recording a trace is one AddBatchObserver call
// on the machine: events accumulate into chunks which are encoded,
// compressed, CRC-stamped, and framed as they fill. Close flushes the
// final partial chunk and the footer; it does not close w.
//
// I/O and encoding errors inside ObserveBatch are sticky: the first
// one is retained, further batches are dropped, and Close returns it.
type Writer struct {
	w       io.Writer
	meta    Meta
	version int
	flate   bool
	recs    []Record
	base    uint64
	total   uint64
	off     int64 // bytes written so far; next frame starts here
	index   []chunkInfo
	raw     []byte
	comp    bytes.Buffer
	split   []byte
	fw      *flate.Writer
	v4      *v4Writer // run-native encoder state (format v4 only)
	err     error
	header  bool
	closed  bool
}

// NewWriter creates a trace writer. Zero-valued meta fields are
// defaulted (ChunkEvents, Compression); the header is written lazily
// with the first chunk so an aborted recording can leave nothing
// behind.
//
// prog is the program the stream is recorded from; the v4 run-native
// encoder needs it to build the run dictionary and verify the stream
// is run-representable. A nil prog falls back to format v3, which
// encodes any event stream — synthetic test streams whose targets are
// not the next committed PC, for example, have no v4 form.
func NewWriter(w io.Writer, meta Meta, prog *isa.Program) *Writer {
	if prog == nil {
		return newWriterVersion(w, meta, 3)
	}
	return NewWriterVersion(w, meta, prog, FormatVersion)
}

// NewWriterVersion pins the output format version — the trace CLI's
// -trace-version flag and the cross-version compatibility tests use
// it. Version 4 requires prog (the run-native encoding cannot be
// produced without the program text); earlier versions ignore it.
func NewWriterVersion(w io.Writer, meta Meta, prog *isa.Program, version int) *Writer {
	if version < minFormatVersion || version > FormatVersion {
		panic(fmt.Sprintf("trace: unsupported format version %d", version))
	}
	tw := newWriterVersion(w, meta, version)
	if version >= 4 {
		if prog == nil {
			panic("trace: format v4 requires the program")
		}
		tw.v4 = newV4Writer(prog)
	}
	return tw
}

// newWriterVersion pins the output format version without the v4
// encoder; tests use it to produce v1–v3 traces for back-compat
// coverage.
func newWriterVersion(w io.Writer, meta Meta, version int) *Writer {
	if meta.ChunkEvents <= 0 {
		meta.ChunkEvents = ChunkEvents
	}
	if meta.Compression == "" {
		meta.Compression = "flate"
	}
	return &Writer{
		w:       w,
		meta:    meta,
		version: version,
		flate:   meta.Compression == "flate",
		recs:    make([]Record, 0, meta.ChunkEvents),
	}
}

var _ sim.BatchObserver = (*Writer)(nil)

// ObserveBatch implements sim.BatchObserver: the slab is copied into
// the writer's chunk buffer immediately (the simulator recycles it the
// moment this returns) and full chunks are flushed inline.
func (tw *Writer) ObserveBatch(evs []sim.Event) {
	if tw.err != nil || tw.closed {
		return
	}
	for i := range evs {
		tw.recs = append(tw.recs, Record{
			PC:     evs[i].PC,
			Target: evs[i].Target,
			Addr:   evs[i].Addr,
			Taken:  evs[i].Taken,
		})
		if len(tw.recs) == cap(tw.recs) {
			tw.flush()
		}
	}
}

// Err returns the writer's sticky error.
func (tw *Writer) Err() error { return tw.err }

// Events returns how many events have been accepted so far.
func (tw *Writer) Events() uint64 { return tw.total + uint64(len(tw.recs)) }

func (tw *Writer) writeHeader() {
	if tw.header {
		return
	}
	tw.header = true
	meta, err := json.Marshal(tw.meta)
	if err != nil {
		tw.err = fmt.Errorf("trace: encode meta: %w", err)
		return
	}
	var buf []byte
	magic := headerMagic(tw.version)
	buf = append(buf, magic[:]...)
	buf = binary.AppendUvarint(buf, uint64(len(meta)))
	buf = append(buf, meta...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(meta))
	if _, err := tw.w.Write(buf); err != nil {
		tw.err = fmt.Errorf("trace: write header: %w", err)
		return
	}
	tw.off += int64(len(buf))
}

// flush encodes, compresses, and frames the pending chunk.
func (tw *Writer) flush() {
	if tw.err != nil || len(tw.recs) == 0 {
		return
	}
	tw.writeHeader()
	if tw.err != nil {
		return
	}
	v4cut := 0
	if tw.version >= 4 {
		if tw.v4 == nil {
			tw.err = fmt.Errorf("trace: v4 writer constructed without a program")
			return
		}
		var err error
		tw.raw, v4cut, err = tw.v4.appendChunk(tw.raw[:0], tw.base, tw.recs)
		if err != nil {
			tw.err = err
			return
		}
	} else {
		tw.raw = appendChunk(tw.raw[:0], tw.base, tw.recs, tw.version)
	}
	payload := tw.raw
	kind := byte(compressionNone)
	if tw.flate {
		tw.comp.Reset()
		if tw.fw == nil {
			tw.fw, _ = flate.NewWriter(&tw.comp, flate.BestSpeed)
		} else {
			tw.fw.Reset(&tw.comp)
		}
		cut := v4cut
		if tw.version == 3 {
			cut, _ = pcColumnEnd(tw.raw) // 0 (whole-chunk stream) if unparseable
		}
		if cut > 0 && cut < len(tw.raw) {
			// Two streams: [0,cut) is the PC column, [cut,len) the rest.
			len1 := -1
			if _, err := tw.fw.Write(tw.raw[:cut]); err == nil && tw.fw.Close() == nil {
				len1 = tw.comp.Len()
				tw.fw.Reset(&tw.comp)
				if _, err := tw.fw.Write(tw.raw[cut:]); err != nil || tw.fw.Close() != nil {
					len1 = -1
				}
			}
			if len1 >= 0 {
				tw.split = binary.AppendUvarint(tw.split[:0], uint64(cut))
				tw.split = binary.AppendUvarint(tw.split, uint64(len1))
				tw.split = append(tw.split, tw.comp.Bytes()...)
				if len(tw.split) < len(tw.raw) {
					payload = tw.split
					kind = compressionSplit
				}
			}
		} else if _, err := tw.fw.Write(tw.raw); err == nil {
			if err := tw.fw.Close(); err == nil && tw.comp.Len() < len(tw.raw) {
				payload = tw.comp.Bytes()
				kind = compressionFlate
			}
		}
	}
	var frame []byte
	frame = binary.AppendUvarint(frame, uint64(len(tw.raw)))
	frame = append(frame, kind)
	frame = binary.AppendUvarint(frame, uint64(len(payload)))
	frame = binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(payload))
	if _, err := tw.w.Write(frame); err != nil {
		tw.err = fmt.Errorf("trace: write frame: %w", err)
		return
	}
	if _, err := tw.w.Write(payload); err != nil {
		tw.err = fmt.Errorf("trace: write chunk: %w", err)
		return
	}
	tw.index = append(tw.index, chunkInfo{offset: tw.off, events: uint64(len(tw.recs))})
	tw.off += int64(len(frame)) + int64(len(payload))
	tw.base += uint64(len(tw.recs))
	tw.total = tw.base
	tw.recs = tw.recs[:0]
}

// Close flushes the final partial chunk and writes the terminator and
// footer. A v2 footer carries the CRC-protected per-chunk offset index
// plus a fixed-size tail so both sequential readers and io.ReaderAt
// consumers can validate it; a v1 footer carries counts only. Close
// returns the writer's sticky error, and does not close the underlying
// writer.
func (tw *Writer) Close() error {
	if tw.closed {
		return tw.err
	}
	tw.closed = true
	tw.flush()
	tw.writeHeader() // empty trace still gets a valid header
	if tw.err != nil {
		return tw.err
	}
	var buf []byte
	buf = binary.AppendUvarint(buf, 0) // terminator: rawLen 0
	magic := footerMagic(tw.version)
	if tw.version == 1 {
		var counts []byte
		counts = binary.AppendUvarint(counts, tw.total)
		counts = binary.AppendUvarint(counts, uint64(len(tw.index)))
		buf = append(buf, counts...)
		buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(counts))
		buf = append(buf, magic[:]...)
	} else {
		dictLen := 0
		if tw.version >= 4 {
			// The full run dictionary precedes the index so a random-
			// access reader can decode any chunk without replaying the
			// prefix that grew it.
			dict := appendDictPayload(nil, tw.v4.dict.runs)
			dictLen = len(dict)
			buf = append(buf, dict...)
			buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(dict))
		}
		var idx []byte
		idx = binary.AppendUvarint(idx, uint64(len(tw.index)))
		prev := int64(0)
		for _, ci := range tw.index {
			idx = binary.AppendUvarint(idx, uint64(ci.offset-prev))
			idx = binary.AppendUvarint(idx, ci.events)
			prev = ci.offset
		}
		buf = append(buf, idx...)
		buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(idx))
		if tw.version >= 4 {
			var tail [tailLenV4]byte
			binary.LittleEndian.PutUint64(tail[0:8], uint64(len(idx)))
			binary.LittleEndian.PutUint64(tail[8:16], tw.total)
			binary.LittleEndian.PutUint64(tail[16:24], uint64(len(tw.index)))
			binary.LittleEndian.PutUint64(tail[24:32], uint64(dictLen))
			buf = append(buf, tail[:]...)
			buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(tail[:]))
		} else {
			var tail [tailLen]byte
			binary.LittleEndian.PutUint64(tail[0:8], uint64(len(idx)))
			binary.LittleEndian.PutUint64(tail[8:16], tw.total)
			binary.LittleEndian.PutUint64(tail[16:24], uint64(len(tw.index)))
			buf = append(buf, tail[:]...)
			buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(tail[:]))
		}
		buf = append(buf, magic[:]...)
	}
	if _, err := tw.w.Write(buf); err != nil {
		tw.err = fmt.Errorf("trace: write footer: %w", err)
	}
	return tw.err
}

// frame is one undecoded chunk as read from the stream.
type frame struct {
	rawLen  int
	kind    byte
	payload []byte
}

// Reader decodes a trace stream. NewReader consumes and validates the
// header; chunks are then read with nextFrame until the footer, whose
// counts — and, for v2, chunk offsets — are cross-checked against what
// was actually decoded.
type Reader struct {
	br           *bufio.Reader
	meta         Meta
	version      int
	chunks       uint64
	off          int64 // stream offset of the next frame
	offsets      []int64
	payloadBuf   []byte
	footerEvents uint64
	done         bool
	// dict is the v4 run dictionary, grown in commit order as chunks
	// are decoded and cross-checked against the footer's copy. Decode
	// order is the dictionary's consistency invariant, which is why
	// ParallelEvents clamps v4 to one decode worker.
	dict        *v4Dict
	footerDict  []dictRun // the footer's dictionary copy, checked at EOF
	dictPayload int       // bytes of the footer dictionary payload (v4)
}

// NewReader wraps r and reads the trace header. Both current and v1
// traces are accepted; Version reports which was found.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: read magic: %w", err)
	}
	version := 0
	for v := minFormatVersion; v <= FormatVersion; v++ {
		if magic == headerMagic(v) {
			version = v
			break
		}
	}
	if version == 0 {
		return nil, fmt.Errorf("trace: bad magic %q (want %q..%q)",
			magic[:], headerMagic(minFormatVersion), headerMagic(FormatVersion))
	}
	metaLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: read meta length: %w", err)
	}
	if metaLen > 1<<20 {
		return nil, fmt.Errorf("trace: meta length %d too large", metaLen)
	}
	metaBuf := make([]byte, metaLen)
	if _, err := io.ReadFull(br, metaBuf); err != nil {
		return nil, fmt.Errorf("trace: read meta: %w", err)
	}
	var crc [4]byte
	if _, err := io.ReadFull(br, crc[:]); err != nil {
		return nil, fmt.Errorf("trace: read meta crc: %w", err)
	}
	if binary.LittleEndian.Uint32(crc[:]) != crc32.ChecksumIEEE(metaBuf) {
		return nil, fmt.Errorf("trace: meta checksum mismatch")
	}
	var meta Meta
	if err := json.Unmarshal(metaBuf, &meta); err != nil {
		return nil, fmt.Errorf("trace: decode meta: %w", err)
	}
	off := int64(8) + int64(uvarintLen(metaLen)) + int64(metaLen) + 4
	tr := &Reader{br: br, meta: meta, version: version, off: off}
	if version >= 4 {
		tr.dict = newV4Dict()
	}
	return tr, nil
}

// uvarintLen returns the encoded size of u.
func uvarintLen(u uint64) int {
	n := 1
	for u >= 0x80 {
		u >>= 7
		n++
	}
	return n
}

// Meta returns the header document.
func (tr *Reader) Meta() Meta { return tr.meta }

// Version returns the format version found in the header.
func (tr *Reader) Version() int { return tr.version }

// TotalEvents returns the footer's recorded event count; it is valid
// once the stream has been fully read (the sources return io.EOF).
func (tr *Reader) TotalEvents() uint64 { return tr.footerEvents }

// nextFrame reads the next chunk frame, or io.EOF after validating the
// terminator and footer. If reuse is true the payload is read into a
// buffer owned by the Reader and is only valid until the next call —
// the sequential source uses this to avoid a per-chunk allocation,
// while the parallel source keeps distinct payloads in flight.
func (tr *Reader) nextFrame(reuse bool) (frame, error) {
	if tr.done {
		return frame{}, io.EOF
	}
	frameOff := tr.off
	rawLen, err := binary.ReadUvarint(tr.br)
	if err != nil {
		return frame{}, fmt.Errorf("trace: read chunk length (truncated trace?): %w", err)
	}
	if rawLen == 0 {
		return frame{}, tr.readFooter()
	}
	if rawLen > maxFrameBytes {
		return frame{}, fmt.Errorf("trace: chunk raw length %d too large", rawLen)
	}
	kind, err := tr.br.ReadByte()
	if err != nil {
		return frame{}, fmt.Errorf("trace: read compression kind: %w", err)
	}
	compLen, err := binary.ReadUvarint(tr.br)
	if err != nil {
		return frame{}, fmt.Errorf("trace: read payload length: %w", err)
	}
	if compLen > maxFrameBytes {
		return frame{}, fmt.Errorf("trace: chunk payload length %d too large", compLen)
	}
	var crc [4]byte
	if _, err := io.ReadFull(tr.br, crc[:]); err != nil {
		return frame{}, fmt.Errorf("trace: read chunk crc: %w", err)
	}
	var payload []byte
	if reuse {
		if cap(tr.payloadBuf) < int(compLen) {
			tr.payloadBuf = make([]byte, compLen)
		}
		payload = tr.payloadBuf[:compLen]
	} else {
		payload = make([]byte, compLen)
	}
	if _, err := io.ReadFull(tr.br, payload); err != nil {
		return frame{}, fmt.Errorf("trace: read chunk payload: %w", err)
	}
	if binary.LittleEndian.Uint32(crc[:]) != crc32.ChecksumIEEE(payload) {
		return frame{}, fmt.Errorf("trace: chunk %d checksum mismatch", tr.chunks)
	}
	tr.chunks++
	tr.offsets = append(tr.offsets, frameOff)
	tr.off += int64(uvarintLen(rawLen)) + 1 + int64(uvarintLen(compLen)) + 4 + int64(compLen)
	return frame{rawLen: int(rawLen), kind: kind, payload: payload}, nil
}

// readFooter validates the trailer and returns io.EOF on success.
func (tr *Reader) readFooter() error {
	if tr.version == 1 {
		return tr.readFooterV1()
	}
	if tr.version >= 4 {
		if err := tr.readFooterDict(); err != nil {
			return err
		}
	}
	return tr.readFooterV2()
}

// readFooterDict parses the v4 footer's run-dictionary payload and
// cross-checks it against the dictionary the reader grew while
// decoding chunks (skipped when no chunk was decoded through this
// reader — frame-level consumers validate structure only).
func (tr *Reader) readFooterDict() error {
	var dictBuf []byte
	count, err := tr.readCountedUvarint(&dictBuf)
	if err != nil {
		return fmt.Errorf("trace: read footer dictionary count: %w", err)
	}
	if count > maxDictRuns {
		return fmt.Errorf("trace: dictionary claims %d runs (max %d)", count, maxDictRuns)
	}
	footer := newV4Dict()
	prev := int64(0)
	for i := uint64(0); i < count; i++ {
		u, err := tr.readCountedUvarint(&dictBuf)
		if err != nil {
			return fmt.Errorf("trace: read footer dictionary entry %d: %w", i, err)
		}
		pc := prev + unzigzag(u)
		n, err := tr.readCountedUvarint(&dictBuf)
		if err != nil {
			return fmt.Errorf("trace: read footer dictionary entry %d: %w", i, err)
		}
		if pc < 0 || pc >= 1<<31 {
			return fmt.Errorf("trace: dictionary run PC %d out of range", pc)
		}
		if err := footer.add(int32(pc), int64(n)); err != nil {
			return err
		}
		prev = pc
	}
	var crc [4]byte
	if _, err := io.ReadFull(tr.br, crc[:]); err != nil {
		return fmt.Errorf("trace: read footer dictionary crc: %w", err)
	}
	if binary.LittleEndian.Uint32(crc[:]) != crc32.ChecksumIEEE(dictBuf) {
		return fmt.Errorf("trace: footer dictionary checksum mismatch")
	}
	tr.dictPayload = len(dictBuf)
	tr.footerDict = footer.runs
	return nil
}

// verifyFooterDict cross-checks the dictionary the chunks grew against
// the footer's copy. It runs at EOF — not when the footer is parsed —
// because a parallel consumer's reader goroutine reaches the footer
// while chunks are still being decoded; the EOF delivery orders after
// the last chunk's decode, so the grown dictionary is complete (and
// safe to read) exactly there.
func (tr *Reader) verifyFooterDict() error {
	if tr.version < 4 {
		return nil
	}
	if len(tr.dict.runs) != len(tr.footerDict) {
		return fmt.Errorf("trace: footer dictionary has %d runs, chunks defined %d", len(tr.footerDict), len(tr.dict.runs))
	}
	for i, r := range tr.footerDict {
		if tr.dict.runs[i] != r {
			return fmt.Errorf("trace: footer dictionary run %d disagrees with chunk stream", i)
		}
	}
	return nil
}

// readFooterV1 parses the counts-only v1 trailer.
func (tr *Reader) readFooterV1() error {
	countsBuf := make([]byte, 0, 2*binary.MaxVarintLen64)
	total, err := tr.readCountedUvarint(&countsBuf)
	if err != nil {
		return fmt.Errorf("trace: read footer events: %w", err)
	}
	chunks, err := tr.readCountedUvarint(&countsBuf)
	if err != nil {
		return fmt.Errorf("trace: read footer chunks: %w", err)
	}
	var crc [4]byte
	if _, err := io.ReadFull(tr.br, crc[:]); err != nil {
		return fmt.Errorf("trace: read footer crc: %w", err)
	}
	if binary.LittleEndian.Uint32(crc[:]) != crc32.ChecksumIEEE(countsBuf) {
		return fmt.Errorf("trace: footer checksum mismatch")
	}
	var magic [8]byte
	if _, err := io.ReadFull(tr.br, magic[:]); err != nil {
		return fmt.Errorf("trace: read footer magic: %w", err)
	}
	if magic != footerMagic(1) {
		return fmt.Errorf("trace: bad footer magic %q", magic[:])
	}
	if chunks != tr.chunks {
		return fmt.Errorf("trace: footer records %d chunks, decoded %d", chunks, tr.chunks)
	}
	tr.footerEvents = total
	tr.done = true
	return io.EOF
}

// readFooterV2 parses the indexed v2 trailer forward, cross-checking
// the chunk offsets it recorded while streaming against the index.
func (tr *Reader) readFooterV2() error {
	var idxBuf []byte
	count, err := tr.readCountedUvarint(&idxBuf)
	if err != nil {
		return fmt.Errorf("trace: read index chunk count: %w", err)
	}
	if count > maxIndexChunks {
		return fmt.Errorf("trace: index claims %d chunks (max %d)", count, maxIndexChunks)
	}
	if count != tr.chunks {
		return fmt.Errorf("trace: index records %d chunks, decoded %d", count, tr.chunks)
	}
	prev := int64(0)
	var events uint64
	for i := uint64(0); i < count; i++ {
		delta, err := tr.readCountedUvarint(&idxBuf)
		if err != nil {
			return fmt.Errorf("trace: read index entry %d: %w", i, err)
		}
		ev, err := tr.readCountedUvarint(&idxBuf)
		if err != nil {
			return fmt.Errorf("trace: read index entry %d: %w", i, err)
		}
		off := prev + int64(delta)
		if off != tr.offsets[i] {
			return fmt.Errorf("trace: index offset %d for chunk %d, frame was at %d", off, i, tr.offsets[i])
		}
		prev = off
		events += ev
	}
	var crc [4]byte
	if _, err := io.ReadFull(tr.br, crc[:]); err != nil {
		return fmt.Errorf("trace: read index crc: %w", err)
	}
	if binary.LittleEndian.Uint32(crc[:]) != crc32.ChecksumIEEE(idxBuf) {
		return fmt.Errorf("trace: index checksum mismatch")
	}
	tl := tailLen
	if tr.version >= 4 {
		tl = tailLenV4 // v4 appends the dictionary payload length
	}
	tail := make([]byte, tl)
	if _, err := io.ReadFull(tr.br, tail); err != nil {
		return fmt.Errorf("trace: read footer tail: %w", err)
	}
	var tailCRC [4]byte
	if _, err := io.ReadFull(tr.br, tailCRC[:]); err != nil {
		return fmt.Errorf("trace: read footer tail crc: %w", err)
	}
	if binary.LittleEndian.Uint32(tailCRC[:]) != crc32.ChecksumIEEE(tail) {
		return fmt.Errorf("trace: footer tail checksum mismatch")
	}
	var magic [8]byte
	if _, err := io.ReadFull(tr.br, magic[:]); err != nil {
		return fmt.Errorf("trace: read footer magic: %w", err)
	}
	if magic != footerMagic(tr.version) {
		return fmt.Errorf("trace: bad footer magic %q", magic[:])
	}
	indexLen := binary.LittleEndian.Uint64(tail[0:8])
	total := binary.LittleEndian.Uint64(tail[8:16])
	tailChunks := binary.LittleEndian.Uint64(tail[16:24])
	if indexLen != uint64(len(idxBuf)) {
		return fmt.Errorf("trace: footer tail records index length %d, parsed %d", indexLen, len(idxBuf))
	}
	if tr.version >= 4 {
		if dictLen := binary.LittleEndian.Uint64(tail[24:32]); dictLen != uint64(tr.dictPayload) {
			return fmt.Errorf("trace: footer tail records dictionary length %d, parsed %d", dictLen, tr.dictPayload)
		}
	}
	if tailChunks != tr.chunks {
		return fmt.Errorf("trace: footer records %d chunks, decoded %d", tailChunks, tr.chunks)
	}
	if events != total {
		return fmt.Errorf("trace: index sums to %d events, footer records %d", events, total)
	}
	tr.footerEvents = total
	tr.done = true
	return io.EOF
}

// readCountedUvarint reads a uvarint while appending its raw bytes to
// buf (for the footer CRC).
func (tr *Reader) readCountedUvarint(buf *[]byte) (uint64, error) {
	var u uint64
	for shift := 0; ; shift += 7 {
		b, err := tr.br.ReadByte()
		if err != nil {
			return 0, err
		}
		*buf = append(*buf, b)
		if shift >= 64 {
			return 0, fmt.Errorf("uvarint overflow")
		}
		u |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return u, nil
		}
	}
}
