package trace_test

import (
	"bytes"
	"context"
	"testing"

	"bioperfload/internal/bio"
	"bioperfload/internal/compiler"
	"bioperfload/internal/isa"
	"bioperfload/internal/loadchar"
	"bioperfload/internal/sim"
	"bioperfload/internal/trace"
)

// recordRun simulates one program at test size with a live analysis
// and a trace writer attached to the same machine, returning the
// program, the live profile text, the encoded trace, and the
// instruction count.
func recordRun(t *testing.T, name string) (*isa.Program, string, []byte, uint64) {
	t.Helper()
	p, err := bio.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := p.Compile(false, compiler.Default())
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.New(prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Bind(m, bio.SizeTest); err != nil {
		t.Fatal(err)
	}
	live := loadchar.New(prog)
	m.AddObserver(live)
	var buf bytes.Buffer
	tw := trace.NewWriter(&buf, trace.Meta{Program: name, Size: "test"}, prog)
	m.AddBatchObserver(tw)
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(res, bio.SizeTest); err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	if tw.Events() != res.Instructions {
		t.Fatalf("%s: trace recorded %d events, run committed %d", name, tw.Events(), res.Instructions)
	}
	return prog, loadchar.RenderProfile(name, "test", live, 10), buf.Bytes(), res.Instructions
}

// TestReplayProfileGolden is the replay-fidelity golden test: a
// characterization computed from a recorded trace — sequentially or
// with the component-parallel analysis — renders byte-identical to one
// computed live during simulation.
func TestReplayProfileGolden(t *testing.T) {
	for _, name := range []string{"hmmsearch", "predator"} {
		prog, want, data, insts := recordRun(t, name)

		// Sequential replay through the BatchObserver contract.
		tr, err := trace.NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if tr.Meta().Program != name {
			t.Fatalf("%s: trace meta names %q", name, tr.Meta().Program)
		}
		seq := loadchar.New(prog)
		n, err := tr.Replay(context.Background(), prog, seq)
		if err != nil {
			t.Fatalf("%s: replay: %v", name, err)
		}
		if n != insts {
			t.Fatalf("%s: replayed %d events, want %d", name, n, insts)
		}
		if got := loadchar.RenderProfile(name, "test", seq, 10); got != want {
			t.Errorf("%s: sequential replay profile differs from live:\n--- live ---\n%s\n--- replay ---\n%s", name, want, got)
		}

		// Component-parallel replay with parallel chunk decode.
		tr2, err := trace.NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		src := tr2.ParallelEvents(prog, 2)
		par, err := loadchar.AnalyzeParallel(context.Background(), prog, src)
		src.Close()
		if err != nil {
			t.Fatalf("%s: parallel replay: %v", name, err)
		}
		if got := loadchar.RenderProfile(name, "test", par, 10); got != want {
			t.Errorf("%s: parallel replay profile differs from live:\n--- live ---\n%s\n--- replay ---\n%s", name, want, got)
		}
	}
}
