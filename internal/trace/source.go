package trace

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"

	"bioperfload/internal/isa"
	"bioperfload/internal/sim"
)

// ErrClosed is returned by Source.Next after Close: a closed source is
// sticky-dead rather than reading from a released reader or recycled
// buffers.
var ErrClosed = errors.New("trace: source closed")

// Source streams a trace as slabs of simulator events in commit
// order. Next returns a slab plus a release function; the slab is
// recycled only after release is called, mirroring the sim.Event slab
// contract, so a consumer may hold several outstanding slabs (e.g. a
// pass fan-out) as long as each is eventually released. Next returns
// io.EOF after the last chunk, once the footer has been validated
// against the decoded event count.
//
// It structurally satisfies loadchar.EventSource.
type Source struct {
	next  func() ([]sim.Event, func(), error)
	close func()

	mu     sync.Mutex
	closed bool
}

// Next returns the next event slab in commit order. After Close it
// returns ErrClosed.
func (s *Source) Next() ([]sim.Event, func(), error) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return nil, nil, ErrClosed
	}
	return s.next()
}

// Close releases the source's resources (decode workers, buffers) and
// makes further Next calls fail with ErrClosed. It is safe to call
// after an error, mid-stream, or more than once.
func (s *Source) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.close()
}

// slabPool recycles event slabs between release and the next decode.
type slabPool struct{ p sync.Pool }

func (sp *slabPool) get() []sim.Event {
	if e, ok := sp.p.Get().(*[]sim.Event); ok {
		return *e
	}
	return nil
}

func (sp *slabPool) release(evs []sim.Event) func() {
	return func() { sp.p.Put(&evs) }
}

// Events returns a sequential source: chunks are decoded in the
// caller's goroutine as Next is called, straight into recycled event
// slabs through the fused decoder (no intermediate Record pass), with
// the frame payload and decompression buffers reused across chunks.
func (tr *Reader) Events(prog *isa.Program) *Source {
	dec := &decoder{version: tr.version, dict: tr.dict, grow: true}
	var pool slabPool
	var decoded uint64
	next := func() ([]sim.Event, func(), error) {
		f, err := tr.nextFrame(true)
		if err == io.EOF {
			if decoded != tr.footerEvents {
				return nil, nil, fmt.Errorf("trace: decoded %d events, footer records %d", decoded, tr.footerEvents)
			}
			if err := tr.verifyFooterDict(); err != nil {
				return nil, nil, err
			}
			return nil, nil, io.EOF
		}
		if err != nil {
			return nil, nil, err
		}
		base, evs, err := dec.decodeFrameEvents(f, prog, pool.get())
		if err != nil {
			return nil, nil, err
		}
		if base != decoded {
			return nil, nil, fmt.Errorf("trace: chunk base %d, expected %d", base, decoded)
		}
		decoded += uint64(len(evs))
		return evs, pool.release(evs), nil
	}
	closeFn := func() {
		dec.release()
		tr.payloadBuf = nil
	}
	return &Source{next: next, close: closeFn}
}

// parallelResult is one decoded chunk delivered from a decode worker.
type parallelResult struct {
	evs     []sim.Event
	release func()
	base    uint64
	err     error
}

// parallelJob pairs a frame with the channel its decoded result must
// be delivered on; pushing the channels through an ordered queue keeps
// delivery in commit order while decode itself runs out of order.
type parallelJob struct {
	f   frame
	out chan parallelResult
}

// ParallelEvents returns a source whose chunks are decompressed and
// decoded ahead by a pool of workers, while delivery stays in commit
// order. workers <= 0 sizes the pool from GOMAXPROCS (capped at 4:
// decode-ahead only needs to hide the decode cost behind the consumer,
// not saturate the machine).
func (tr *Reader) ParallelEvents(prog *isa.Program, workers int) *Source {
	if workers <= 0 {
		workers = defaultDecodeWorkers()
	}
	if tr.version >= 4 {
		// The v4 run dictionary grows in commit order; out-of-order
		// chunk decode would race it. One worker still decodes ahead
		// of the consumer.
		workers = 1
	}
	var (
		pool    slabPool
		jobs    = make(chan parallelJob, workers)
		order   = make(chan chan parallelResult, 2*workers)
		stop    = make(chan struct{})
		stopped sync.Once
		wg      sync.WaitGroup
	)

	// Reader goroutine: pull frames off the stream in order, handing
	// each to the worker pool with a per-chunk result channel.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(jobs)
		defer close(order)
		for {
			f, err := tr.nextFrame(false)
			out := make(chan parallelResult, 1)
			if err != nil {
				// io.EOF (footer validated) or a framing error: either
				// way it terminates the ordered stream.
				out <- parallelResult{err: err}
				select {
				case order <- out:
				case <-stop:
				}
				return
			}
			select {
			case order <- out:
			case <-stop:
				return
			}
			select {
			case jobs <- parallelJob{f: f, out: out}:
			case <-stop:
				return
			}
		}
	}()

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dec := &decoder{version: tr.version, dict: tr.dict, grow: true}
			for job := range jobs {
				base, evs, err := dec.decodeFrameEvents(job.f, prog, pool.get())
				if err != nil {
					job.out <- parallelResult{err: err}
					continue
				}
				job.out <- parallelResult{evs: evs, release: pool.release(evs), base: base}
			}
		}()
	}

	var decoded uint64
	next := func() ([]sim.Event, func(), error) {
		out, ok := <-order
		if !ok {
			return nil, nil, io.EOF
		}
		res := <-out
		if res.err == io.EOF {
			if decoded != tr.footerEvents {
				return nil, nil, fmt.Errorf("trace: decoded %d events, footer records %d", decoded, tr.footerEvents)
			}
			if err := tr.verifyFooterDict(); err != nil {
				return nil, nil, err
			}
			return nil, nil, io.EOF
		}
		if res.err != nil {
			return nil, nil, res.err
		}
		if res.base != decoded {
			return nil, nil, fmt.Errorf("trace: chunk base %d, expected %d", res.base, decoded)
		}
		decoded += uint64(len(res.evs))
		return res.evs, res.release, nil
	}
	closeFn := func() {
		stopped.Do(func() { close(stop) })
		// Drain the ordered queue so the reader goroutine is never
		// blocked sending, then wait the pool out.
		go func() {
			for out := range order {
				select {
				case <-out:
				default:
				}
			}
		}()
		wg.Wait()
	}
	return &Source{next: next, close: closeFn}
}

// Replay streams every event of the trace into bo in commit order,
// checking ctx between chunks. It returns the number of events
// replayed.
func (tr *Reader) Replay(ctx context.Context, prog *isa.Program, bo sim.BatchObserver) (uint64, error) {
	src := tr.Events(prog)
	defer src.Close()
	var n uint64
	for {
		if err := ctx.Err(); err != nil {
			return n, fmt.Errorf("trace: replay %s: %w", prog.Name, err)
		}
		evs, release, err := src.Next()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		bo.ObserveBatch(evs)
		n += uint64(len(evs))
		release()
	}
}
