package trace

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"

	"bioperfload/internal/sim"
)

// FuzzCodec drives both directions of the codec from one input:
//
//  1. The raw bytes are decoded as a chunk and as a full trace stream.
//     Arbitrary input must produce an error or a clean decode — never a
//     panic, and never an oversized allocation.
//  2. The bytes are also deterministically reinterpreted as an event
//     slab, encoded, and decoded again; the round trip must be
//     lossless.
func FuzzCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0})
	f.Add(appendChunk(nil, 0, []Record{{PC: 1, Target: 2, Addr: 64, Taken: true}}, 1))
	f.Add(appendChunk(nil, 9, []Record{{PC: 3, Target: 4}, {PC: 4, Target: 5, Addr: 8}}, 2))
	f.Add(appendChunk(nil, 9, []Record{{PC: 3, Target: 4}, {PC: 4, Target: 5, Addr: 8}}, 3))
	var full bytes.Buffer
	tw := NewWriter(&full, Meta{Program: "fuzz", ChunkEvents: 2})
	tw.ObserveBatch(eventsFromBytes([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}))
	if err := tw.Close(); err != nil {
		f.Fatal(err)
	}
	f.Add(full.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		// Direction 1a: arbitrary bytes as a chunk payload under both
		// encodings, decoded by both the reference decoder and the fused
		// event decoder; the fused path must accept exactly the chunks
		// the reference does (minus PCs outside the binding program) and
		// agree on every field.
		prog := testProgram(1 << 12)
		for version := 1; version <= FormatVersion; version++ {
			base, recs, err := decodeChunk(data, nil, version)
			baseE, evsE, errE := decodeChunkEvents(data, prog, nil, version)
			if err == nil {
				// A clean decode must re-encode to an equivalent chunk.
				re := appendChunk(nil, base, recs, version)
				base2, recs2, err := decodeChunk(re, nil, version)
				if err != nil {
					t.Fatalf("v%d: re-decode of re-encoded chunk failed: %v", version, err)
				}
				if base2 != base || len(recs2) != len(recs) {
					t.Fatalf("v%d: re-encode changed shape: base %d->%d, n %d->%d", version, base, base2, len(recs), len(recs2))
				}
				for i := range recs {
					if recs[i] != recs2[i] {
						t.Fatalf("v%d: re-encode changed record %d: %+v -> %+v", version, i, recs[i], recs2[i])
					}
				}
				if errE != nil {
					// The fused decoder may only add the PC-in-program check.
					inRange := true
					for _, r := range recs {
						if r.PC < 0 || int(r.PC) >= len(prog.Insts) {
							inRange = false
							break
						}
					}
					if inRange {
						t.Fatalf("v%d: fused decoder rejected a reference-valid chunk: %v", version, errE)
					}
				} else {
					if baseE != base || len(evsE) != len(recs) {
						t.Fatalf("v%d: fused decode shape: base %d->%d, n %d->%d", version, base, baseE, len(recs), len(evsE))
					}
					for i := range recs {
						ev := evsE[i]
						if ev.PC != recs[i].PC || ev.Target != recs[i].Target ||
							ev.Addr != recs[i].Addr || ev.Taken != recs[i].Taken {
							t.Fatalf("v%d: fused decode record %d: got %+v want %+v", version, i, ev, recs[i])
						}
						if ev.Seq != base+uint64(i) || ev.Inst != &prog.Insts[ev.PC] {
							t.Fatalf("v%d: fused decode record %d: bad binding %+v", version, i, ev)
						}
					}
				}
			} else if errE == nil {
				t.Fatalf("v%d: fused decoder accepted a chunk the reference rejects: %v", version, err)
			}
		}

		// Direction 1b: arbitrary bytes as a full trace stream.
		if tr, err := NewReader(bytes.NewReader(data)); err == nil {
			for {
				fr, err := tr.nextFrame(false)
				if err != nil {
					break
				}
				if _, _, err := decodeFrame(fr, nil, tr.version); err != nil {
					break
				}
			}
		}

		// Direction 2: bytes -> synthetic slab -> encode -> decode.
		evs := eventsFromBytes(data)
		var buf bytes.Buffer
		w := NewWriter(&buf, Meta{Program: "fuzz", ChunkEvents: 16})
		w.ObserveBatch(evs)
		if err := w.Close(); err != nil {
			t.Fatalf("write synthetic trace: %v", err)
		}
		tr, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("read synthetic trace: %v", err)
		}
		i := 0
		for {
			fr, err := tr.nextFrame(false)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("synthetic trace frame: %v", err)
			}
			_, recs, err := decodeFrame(fr, nil, tr.version)
			if err != nil {
				t.Fatalf("synthetic trace chunk: %v", err)
			}
			for _, rec := range recs {
				want := evs[i]
				if rec.PC != want.PC || rec.Target != want.Target || rec.Addr != want.Addr || rec.Taken != want.Taken {
					t.Fatalf("event %d: got %+v want %+v", i, rec, want)
				}
				i++
			}
		}
		if i != len(evs) {
			t.Fatalf("decoded %d events, wrote %d", i, len(evs))
		}
	})
}

// eventsFromBytes deterministically shreds bytes into an event slab so
// the fuzzer explores the encoder's value space.
func eventsFromBytes(data []byte) []sim.Event {
	var evs []sim.Event
	for len(data) >= 12 {
		pc := int32(binary.LittleEndian.Uint32(data))
		target := int32(binary.LittleEndian.Uint32(data[4:]))
		addr := uint64(binary.LittleEndian.Uint32(data[8:]))
		evs = append(evs, sim.Event{
			PC:     pc,
			Target: target,
			Addr:   addr,
			Taken:  data[8]&1 == 1,
		})
		data = data[12:]
	}
	return evs
}
