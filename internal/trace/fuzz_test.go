package trace

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"

	"bioperfload/internal/isa"
	"bioperfload/internal/sim"
)

// FuzzCodec drives both directions of the codec from one input:
//
//  1. The raw bytes are decoded as a chunk and as a full trace stream.
//     Arbitrary input must produce an error or a clean decode — never a
//     panic, and never an oversized allocation.
//  2. The bytes are also deterministically reinterpreted as an event
//     slab, encoded, and decoded again; the round trip must be
//     lossless.
func FuzzCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0})
	f.Add(appendChunk(nil, 0, []Record{{PC: 1, Target: 2, Addr: 64, Taken: true}}, 1))
	f.Add(appendChunk(nil, 9, []Record{{PC: 3, Target: 4}, {PC: 4, Target: 5, Addr: 8}}, 2))
	f.Add(appendChunk(nil, 9, []Record{{PC: 3, Target: 4}, {PC: 4, Target: 5, Addr: 8}}, 3))
	var full bytes.Buffer
	tw := NewWriter(&full, Meta{Program: "fuzz", ChunkEvents: 2}, nil)
	tw.ObserveBatch(eventsFromBytes([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}))
	if err := tw.Close(); err != nil {
		f.Fatal(err)
	}
	f.Add(full.Bytes())
	// v4 seeds: a full run-native trace (footer dictionary included)
	// and one bare v4 chunk payload, so the fuzzer starts with valid
	// dictionary structure to mutate.
	progMix := testProgramMixed(1 << 12)
	seedEvs := simEventsFromBytes(progMix, seedStreamBytes())
	var fullV4 bytes.Buffer
	twV4 := NewWriterVersion(&fullV4, Meta{Program: "fuzz", ChunkEvents: 8}, progMix, 4)
	twV4.ObserveBatch(seedEvs)
	if err := twV4.Close(); err != nil {
		f.Fatal(err)
	}
	f.Add(fullV4.Bytes())
	{
		vw := newV4Writer(progMix)
		chunk, _, err := vw.appendChunk(nil, 0, recordsOf(seedEvs))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(chunk)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		// Direction 1a: arbitrary bytes as a chunk payload under both
		// sparse encodings, decoded by both the reference decoder and the
		// fused event decoder; the fused path must accept exactly the
		// chunks the reference does (minus PCs outside the binding
		// program) and agree on every field.
		prog := testProgram(1 << 12)
		for version := 1; version <= 3; version++ {
			base, recs, err := decodeChunk(data, nil, version)
			baseE, evsE, errE := decodeChunkEvents(data, prog, nil, version)
			if err == nil {
				// A clean decode must re-encode to an equivalent chunk.
				re := appendChunk(nil, base, recs, version)
				base2, recs2, err := decodeChunk(re, nil, version)
				if err != nil {
					t.Fatalf("v%d: re-decode of re-encoded chunk failed: %v", version, err)
				}
				if base2 != base || len(recs2) != len(recs) {
					t.Fatalf("v%d: re-encode changed shape: base %d->%d, n %d->%d", version, base, base2, len(recs), len(recs2))
				}
				for i := range recs {
					if recs[i] != recs2[i] {
						t.Fatalf("v%d: re-encode changed record %d: %+v -> %+v", version, i, recs[i], recs2[i])
					}
				}
				if errE != nil {
					// The fused decoder may only add the PC-in-program check.
					inRange := true
					for _, r := range recs {
						if r.PC < 0 || int(r.PC) >= len(prog.Insts) {
							inRange = false
							break
						}
					}
					if inRange {
						t.Fatalf("v%d: fused decoder rejected a reference-valid chunk: %v", version, errE)
					}
				} else {
					if baseE != base || len(evsE) != len(recs) {
						t.Fatalf("v%d: fused decode shape: base %d->%d, n %d->%d", version, base, baseE, len(recs), len(evsE))
					}
					for i := range recs {
						ev := evsE[i]
						if ev.PC != recs[i].PC || ev.Target != recs[i].Target ||
							ev.Addr != recs[i].Addr || ev.Taken != recs[i].Taken {
							t.Fatalf("v%d: fused decode record %d: got %+v want %+v", version, i, ev, recs[i])
						}
						if ev.Seq != base+uint64(i) || ev.Inst != &prog.Insts[ev.PC] {
							t.Fatalf("v%d: fused decode record %d: bad binding %+v", version, i, ev)
						}
					}
				}
			} else if errE == nil {
				t.Fatalf("v%d: fused decoder accepted a chunk the reference rejects: %v", version, err)
			}
		}

		// Direction 1c: arbitrary bytes as a v4 chunk payload, decoded
		// against a fresh growing dictionary, must error or decode
		// cleanly — never panic. A clean decode must re-encode (with a
		// fresh dictionary) and decode back to the same events.
		{
			dict := newV4Dict()
			var sc v4Scratch
			base4, evs4, err := decodeChunkEventsV4(data, progMix, dict, true, nil, &sc)
			if err == nil {
				vw := newV4Writer(progMix)
				re, _, err := vw.appendChunk(nil, base4, recordsOf(evs4))
				if err != nil {
					t.Fatalf("v4: re-encode of decoded chunk failed: %v", err)
				}
				dict2 := newV4Dict()
				var sc2 v4Scratch
				base2, evs2, err := decodeChunkEventsV4(re, progMix, dict2, true, nil, &sc2)
				if err != nil {
					t.Fatalf("v4: re-decode of re-encoded chunk failed: %v", err)
				}
				if base2 != base4 || len(evs2) != len(evs4) {
					t.Fatalf("v4: re-encode changed shape: base %d->%d, n %d->%d", base4, base2, len(evs4), len(evs2))
				}
				for i := range evs4 {
					if evs4[i] != evs2[i] {
						t.Fatalf("v4: re-encode changed event %d: %+v -> %+v", i, evs4[i], evs2[i])
					}
				}
			}
		}

		// Direction 1b: arbitrary bytes as a full trace stream. A v4
		// stream threads the reader's growing dictionary through the
		// fused decoder; older versions use the reference decoder.
		if tr, err := NewReader(bytes.NewReader(data)); err == nil {
			dec := &decoder{version: tr.version, dict: tr.dict, grow: true}
			for {
				fr, err := tr.nextFrame(false)
				if err != nil {
					break
				}
				if tr.version >= 4 {
					if _, _, err := dec.decodeFrameEvents(fr, progMix, nil); err != nil {
						break
					}
				} else if _, _, err := decodeFrame(fr, nil, tr.version); err != nil {
					break
				}
			}
		}

		// Direction 2: bytes -> synthetic slab -> encode -> decode.
		evs := eventsFromBytes(data)
		var buf bytes.Buffer
		w := NewWriter(&buf, Meta{Program: "fuzz", ChunkEvents: 16}, nil)
		w.ObserveBatch(evs)
		if err := w.Close(); err != nil {
			t.Fatalf("write synthetic trace: %v", err)
		}
		tr, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("read synthetic trace: %v", err)
		}
		i := 0
		for {
			fr, err := tr.nextFrame(false)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("synthetic trace frame: %v", err)
			}
			_, recs, err := decodeFrame(fr, nil, tr.version)
			if err != nil {
				t.Fatalf("synthetic trace chunk: %v", err)
			}
			for _, rec := range recs {
				want := evs[i]
				if rec.PC != want.PC || rec.Target != want.Target || rec.Addr != want.Addr || rec.Taken != want.Taken {
					t.Fatalf("event %d: got %+v want %+v", i, rec, want)
				}
				i++
			}
		}
		if i != len(evs) {
			t.Fatalf("decoded %d events, wrote %d", i, len(evs))
		}

		// Direction 2b: bytes -> run-representable slab -> v4 encode ->
		// decode; the round trip must be lossless.
		evsR := simEventsFromBytes(progMix, data)
		var bufV4 bytes.Buffer
		w4 := NewWriterVersion(&bufV4, Meta{Program: "fuzz", ChunkEvents: 16}, progMix, 4)
		w4.ObserveBatch(evsR)
		if err := w4.Close(); err != nil {
			t.Fatalf("write v4 trace: %v", err)
		}
		tr4, err := NewReader(bytes.NewReader(bufV4.Bytes()))
		if err != nil {
			t.Fatalf("read v4 trace: %v", err)
		}
		src := tr4.Events(progMix)
		j := 0
		for {
			got, release, err := src.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("v4 trace chunk: %v", err)
			}
			for _, ev := range got {
				if ev != evsR[j] {
					t.Fatalf("v4 event %d: got %+v want %+v", j, ev, evsR[j])
				}
				j++
			}
			release()
		}
		src.Close()
		if j != len(evsR) {
			t.Fatalf("v4 decoded %d events, wrote %d", j, len(evsR))
		}
	})
}

// seedStreamBytes is a fixed byte string long enough for
// simEventsFromBytes to cross several chunk boundaries in the v4 fuzz
// seeds.
func seedStreamBytes() []byte {
	b := make([]byte, 120)
	for i := range b {
		b[i] = byte(i*37 + 11)
	}
	return b
}

// recordsOf converts decoded events back to writer records.
func recordsOf(evs []sim.Event) []Record {
	recs := make([]Record, len(evs))
	for i, ev := range evs {
		recs[i] = Record{PC: ev.PC, Target: ev.Target, Addr: ev.Addr, Taken: ev.Taken}
	}
	return recs
}

// simEventsFromBytes deterministically shreds bytes into a
// run-representable event stream bound to prog: every non-final target
// names the next committed PC, and the taken and address fields
// respect each PC's class, so the slab is encodable at every format
// version including v4.
func simEventsFromBytes(prog *isa.Program, data []byte) []sim.Event {
	var evs []sim.Event
	ni := int32(len(prog.Insts))
	pc := int32(0)
	for i := 0; len(data) >= 3; i++ {
		b0, b1, b2 := data[0], data[1], data[2]
		data = data[3:]
		ev := sim.Event{Seq: uint64(i), PC: pc, Inst: &prog.Insts[pc]}
		switch isa.ClassOf(prog.Insts[pc].Op) {
		case isa.ClassLoad, isa.ClassStore:
			ev.Addr = uint64(b1)<<8 | uint64(b2)
		case isa.ClassCondBranch:
			ev.Taken = b1&1 == 1
		case isa.ClassUncondBranch:
			ev.Taken = true
		}
		next := pc + 1
		if b0&7 == 0 || next >= ni {
			next = int32(uint32(b1)<<8|uint32(b2)) % ni
		}
		ev.Target = next
		evs = append(evs, ev)
		pc = next
	}
	return evs
}

// eventsFromBytes deterministically shreds bytes into an event slab so
// the fuzzer explores the encoder's value space.
func eventsFromBytes(data []byte) []sim.Event {
	var evs []sim.Event
	for len(data) >= 12 {
		pc := int32(binary.LittleEndian.Uint32(data))
		target := int32(binary.LittleEndian.Uint32(data[4:]))
		addr := uint64(binary.LittleEndian.Uint32(data[8:]))
		evs = append(evs, sim.Event{
			PC:     pc,
			Target: target,
			Addr:   addr,
			Taken:  data[8]&1 == 1,
		})
		data = data[12:]
	}
	return evs
}
