package trace

import (
	"bytes"
	"context"
	"encoding/binary"
	"testing"

	"bioperfload/internal/isa"
	"bioperfload/internal/runstream"
	"bioperfload/internal/sim"
)

// buildV4Chunk assembles a v4 chunk payload from explicit parts so the
// corruption sweep can lie about any field. The reference layout (for
// testProgramMixed(64), run [0,8) twice): classes inside the run are
// pc1 load, pc3 cond branch, pc5 store, pc6 uncond branch, so nbr=1
// and nmem=2 per repetition.
type v4parts struct {
	base     uint64
	n        uint64
	dictBase uint64
	newRuns  [][2]int64 // {pc, len}; pc is delta-chained at encode
	tokens   [][2]uint64
	final    int64
	bitmap   []byte
	addrs    []int64 // zigzag deltas
	trailing []byte
}

func (p *v4parts) encode() []byte {
	var b []byte
	u := func(v uint64) { b = binary.AppendUvarint(b, v) }
	u(p.base)
	u(p.n)
	u(p.dictBase)
	u(uint64(len(p.newRuns)))
	prev := int64(0)
	for _, r := range p.newRuns {
		u(zigzag(r[0] - prev))
		u(uint64(r[1]))
		prev = r[0]
	}
	u(uint64(len(p.tokens)))
	for _, t := range p.tokens {
		u(t[0])
		u(t[1])
	}
	u(zigzag(p.final))
	b = append(b, p.bitmap...)
	for _, d := range p.addrs {
		u(zigzag(d))
	}
	return append(b, p.trailing...)
}

// validV4Parts is the pristine reference chunk: 16 events, run [0,8)
// repeated twice, all addresses zero, both conditional branches not
// taken, final target 0.
func validV4Parts() v4parts {
	return v4parts{
		n:       16,
		newRuns: [][2]int64{{0, 8}},
		tokens:  [][2]uint64{{0, 2}},
		final:   -8, // last PC 7, target 0
		bitmap:  []byte{0x00},
		addrs:   []int64{0, 0, 0, 0},
	}
}

// TestV4ChunkCorruptionSweep feeds structurally corrupted dictionary
// chunks to both v4 decoders: every lie — out-of-range run ids,
// wrong dictBase, duplicate or overlapping dictionary entries, run
// lengths that disagree with the chunk's event count, runs outside
// the program, truncated or over-long columns — must be rejected with
// an error, never a panic or a silent mis-decode.
func TestV4ChunkCorruptionSweep(t *testing.T) {
	prog := testProgramMixed(64)

	decodeGrow := func(payload []byte) error {
		var sc v4Scratch
		_, _, err := decodeChunkEventsV4(payload, prog, newV4Dict(), true, nil, &sc)
		return err
	}
	// Sanity: the pristine chunk decodes.
	base := validV4Parts()
	if err := decodeGrow(base.encode()); err != nil {
		t.Fatalf("pristine reference chunk rejected: %v", err)
	}

	cases := []struct {
		name string
		mut  func(p *v4parts)
	}{
		{"token id out of dictionary range", func(p *v4parts) { p.tokens = [][2]uint64{{1, 2}} }},
		{"adjacent tokens share an id", func(p *v4parts) { p.tokens = [][2]uint64{{0, 1}, {0, 1}} }},
		{"zero repeat count", func(p *v4parts) { p.tokens = [][2]uint64{{0, 0}} }},
		{"token stream overruns event count", func(p *v4parts) { p.tokens = [][2]uint64{{0, 3}} }},
		{"token stream undershoots event count", func(p *v4parts) { p.tokens = [][2]uint64{{0, 1}} }},
		{"dictBase ahead of grown dictionary", func(p *v4parts) { p.dictBase = 1 }},
		{"duplicate dictionary entry", func(p *v4parts) {
			p.newRuns = [][2]int64{{0, 8}, {0, 8}}
		}},
		{"zero-length dictionary run", func(p *v4parts) { p.newRuns = [][2]int64{{0, 8}, {9, 0}} }},
		{"run outside the program", func(p *v4parts) {
			// Structurally fine (60+8 < 2^31) but past the 64-inst
			// program: the bind step must reject it.
			p.newRuns = [][2]int64{{60, 8}}
		}},
		{"truncated taken bitmap", func(p *v4parts) { p.bitmap, p.addrs = nil, nil }},
		{"nonzero bitmap padding", func(p *v4parts) { p.bitmap = []byte{0xF0} }},
		{"truncated address column", func(p *v4parts) { p.addrs = p.addrs[:2] }},
		{"trailing bytes", func(p *v4parts) { p.trailing = []byte{0} }},
		{"event count zero", func(p *v4parts) { p.n = 0 }},
		{"newRuns exceeds event count", func(p *v4parts) {
			p.dictBase = 0
			p.n = 1
			p.newRuns = [][2]int64{{0, 1}, {2, 1}}
			p.tokens = [][2]uint64{{0, 1}}
			p.final = 0
			p.bitmap, p.addrs = nil, nil
		}},
	}
	for _, tc := range cases {
		p := validV4Parts()
		tc.mut(&p)
		payload := p.encode()
		if err := decodeGrow(payload); err == nil {
			t.Errorf("%s: grow-mode event decode accepted the corruption", tc.name)
		}
	}

	// Verify mode: the same chunk against a footer dictionary that
	// disagrees, or that is too small for the chunk's claimed entries.
	footer, err := parseDictPayload(appendDictPayload(nil, []dictRun{{pc: 0, n: 8}}))
	if err != nil {
		t.Fatal(err)
	}
	if err := footer.bindShared(prog); err != nil {
		t.Fatal(err)
	}
	var sc v4Scratch
	ch := new(runstream.Chunk)
	if err := decodeChunkColumnsV4(base.encode(), footer, ch, &sc); err != nil {
		t.Fatalf("pristine chunk rejected in verify mode: %v", err)
	}
	lie := validV4Parts()
	lie.newRuns = [][2]int64{{0, 7}} // disagrees with the footer's [0,8)
	lie.tokens = [][2]uint64{{0, 2}}
	lie.n = 14
	lie.final = -7
	lie.addrs = lie.addrs[:2] // wrong either way; entry check fires first
	if err := decodeChunkColumnsV4(lie.encode(), footer, ch, &sc); err == nil {
		t.Error("verify mode accepted a chunk entry disagreeing with the footer dictionary")
	}
	over := validV4Parts()
	over.dictBase = 1 // chunk claims runs the footer doesn't have
	if err := decodeChunkColumnsV4(over.encode(), footer, ch, &sc); err == nil {
		t.Error("verify mode accepted a dictBase past the footer dictionary")
	}
}

// TestV4RoundTripByteIdentity decodes a v4 trace at several worker
// counts and re-encodes the decoded stream: the decoded events must
// match the originals exactly and the re-encoded file must be
// byte-identical, at every worker count.
func TestV4RoundTripByteIdentity(t *testing.T) {
	const n, chunk = 20000, 512
	data, evs, prog := writeTestTraceVersion(t, n, chunk, 4)
	for _, workers := range []int{1, 4, 8} {
		tr, err := NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		src := tr.ParallelEvents(prog, workers)
		got := drain(t, src)
		src.Close()
		checkEvents(t, got, evs)

		var buf bytes.Buffer
		tw := NewWriterVersion(&buf, Meta{Program: prog.Name, Size: "test", ChunkEvents: chunk}, prog, 4)
		tw.ObserveBatch(got)
		if err := tw.Close(); err != nil {
			t.Fatalf("workers=%d: re-encode: %v", workers, err)
		}
		if !bytes.Equal(buf.Bytes(), data) {
			t.Fatalf("workers=%d: re-encoded trace is not byte-identical (%d vs %d bytes)",
				workers, buf.Len(), len(data))
		}
	}
}

// TestCrossVersionEventsIdentical is the cross-version golden matrix
// at the event level: one stream written at every format version must
// decode — through both the sequential and the indexed reader — to
// exactly the same events.
func TestCrossVersionEventsIdentical(t *testing.T) {
	prog := testProgramMixed(1 << 12)
	evs := testEventStream(12000, prog)
	for version := 1; version <= FormatVersion; version++ {
		var buf bytes.Buffer
		tw := NewWriterVersion(&buf, Meta{Program: prog.Name, ChunkEvents: 256}, prog, version)
		tw.ObserveBatch(evs)
		if err := tw.Close(); err != nil {
			t.Fatalf("v%d: %v", version, err)
		}
		data := buf.Bytes()

		tr, err := NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("v%d: %v", version, err)
		}
		if tr.Version() != version {
			t.Fatalf("v%d: reader reports version %d", version, tr.Version())
		}
		src := tr.Events(prog)
		got := drain(t, src)
		src.Close()
		checkEvents(t, got, evs)

		if version >= 2 {
			ir, err := NewIndexedReader(bytes.NewReader(data), int64(len(data)))
			if err != nil {
				t.Fatalf("v%d: indexed: %v", version, err)
			}
			rsrc := ir.Range(prog, 0, ir.Chunks())
			got := drain(t, rsrc)
			rsrc.Close()
			checkEvents(t, got, evs)
		}
	}
}

// TestScanRunTokensCompresses pins the point of the token scan: on a
// loop-dominated v4 trace the repeats come off the token stream, so
// the scan reports far fewer callbacks than run instances while still
// spanning every event; and on v2/v3 traces every callback reports
// rep == 1, matching ScanPCRuns exactly.
func TestScanRunTokensCompresses(t *testing.T) {
	prog := testProgramMixed(256)
	// A tight 16-instruction loop: one run, thousands of repeats.
	n := 16 * 2000
	evs := make([]sim.Event, n)
	for i := range evs {
		pc := int32(i % 16)
		evs[i] = sim.Event{Seq: uint64(i), PC: pc, Inst: &prog.Insts[pc], Target: (pc + 1) % 16}
		switch isa.ClassOf(prog.Insts[pc].Op) {
		case isa.ClassLoad, isa.ClassStore:
			evs[i].Addr = uint64(0x100 + i)
		case isa.ClassCondBranch:
			evs[i].Taken = i%3 == 0
		case isa.ClassUncondBranch:
			evs[i].Taken = true
		}
	}
	var buf bytes.Buffer
	tw := NewWriterVersion(&buf, Meta{Program: prog.Name, ChunkEvents: 4096}, prog, 4)
	tw.ObserveBatch(evs)
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	ir, err := NewIndexedReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	calls, span, maxRep := 0, int64(0), int64(0)
	err = ir.ScanRunTokens(context.Background(), prog, 0, ir.Chunks(), func(pc, rn int32, rep int64) {
		calls++
		span += int64(rn) * rep
		if rep > maxRep {
			maxRep = rep
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if span != int64(n) {
		t.Fatalf("token scan spans %d events, want %d", span, n)
	}
	if maxRep < 2 {
		t.Fatalf("loop-dominated trace scanned with max repeat %d; token compression is not engaging", maxRep)
	}
	if calls*16 >= n {
		t.Fatalf("token scan made %d callbacks for %d events; repeats are being expanded", calls, n)
	}
}
