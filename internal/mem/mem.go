// Package mem provides the sparse, byte-addressable memory used by the
// VRISC64 functional simulator. Pages are allocated on first touch so
// the data segment and the stack can live gigabytes apart without
// cost, mirroring a real 64-bit address space.
package mem

import (
	"encoding/binary"
	"math"
)

const (
	pageShift = 12
	// PageSize is the allocation granule in bytes.
	PageSize = 1 << pageShift
	pageMask = PageSize - 1
)

type page [PageSize]byte

// Memory is a sparse little-endian byte-addressable memory. The zero
// value is ready to use. Memory is not safe for concurrent use.
type Memory struct {
	pages map[uint64]*page

	// One-entry translation cache: simulated programs overwhelmingly
	// touch the same page repeatedly (the paper's chunked-access
	// observation), so this removes most map lookups.
	lastBase uint64
	lastPage *page
}

// New returns an empty memory.
func New() *Memory {
	return &Memory{pages: make(map[uint64]*page)}
}

func (m *Memory) pageFor(addr uint64) *page {
	base := addr &^ pageMask
	if m.lastPage != nil && m.lastBase == base {
		return m.lastPage
	}
	if m.pages == nil {
		m.pages = make(map[uint64]*page)
	}
	p := m.pages[base]
	if p == nil {
		p = new(page)
		m.pages[base] = p
	}
	m.lastBase = base
	m.lastPage = p
	return p
}

// LoadByte returns the byte at addr.
func (m *Memory) LoadByte(addr uint64) byte {
	return m.pageFor(addr)[addr&pageMask]
}

// StoreByte stores b at addr.
func (m *Memory) StoreByte(addr uint64, b byte) {
	m.pageFor(addr)[addr&pageMask] = b
}

// ReadUint64 returns the little-endian 64-bit word at addr. Accesses
// may straddle a page boundary.
func (m *Memory) ReadUint64(addr uint64) uint64 {
	off := addr & pageMask
	p := m.pageFor(addr)
	if off <= PageSize-8 {
		return binary.LittleEndian.Uint64(p[off:])
	}
	var v uint64
	for i := uint64(0); i < 8; i++ {
		v |= uint64(m.LoadByte(addr+i)) << (8 * i)
	}
	return v
}

// WriteUint64 stores v at addr in little-endian order.
func (m *Memory) WriteUint64(addr uint64, v uint64) {
	off := addr & pageMask
	p := m.pageFor(addr)
	if off <= PageSize-8 {
		binary.LittleEndian.PutUint64(p[off:], v)
		return
	}
	for i := uint64(0); i < 8; i++ {
		m.StoreByte(addr+i, byte(v>>(8*i)))
	}
}

// ReadInt64 returns the two's-complement 64-bit integer at addr.
func (m *Memory) ReadInt64(addr uint64) int64 { return int64(m.ReadUint64(addr)) }

// WriteInt64 stores v at addr.
func (m *Memory) WriteInt64(addr uint64, v int64) { m.WriteUint64(addr, uint64(v)) }

// ReadFloat64 returns the IEEE-754 float64 at addr.
func (m *Memory) ReadFloat64(addr uint64) float64 {
	return math.Float64frombits(m.ReadUint64(addr))
}

// WriteFloat64 stores v at addr.
func (m *Memory) WriteFloat64(addr uint64, v float64) {
	m.WriteUint64(addr, math.Float64bits(v))
}

// StoreBytes copies b into memory starting at addr.
func (m *Memory) StoreBytes(addr uint64, b []byte) {
	for len(b) > 0 {
		off := addr & pageMask
		p := m.pageFor(addr)
		n := copy(p[off:], b)
		b = b[n:]
		addr += uint64(n)
	}
}

// LoadBytes copies n bytes starting at addr into a fresh slice.
func (m *Memory) LoadBytes(addr uint64, n int) []byte {
	out := make([]byte, n)
	for i := 0; i < n; {
		off := addr & pageMask
		p := m.pageFor(addr)
		c := copy(out[i:], p[off:])
		i += c
		addr += uint64(c)
	}
	return out
}

// Pages returns the number of resident pages (for tests and stats).
func (m *Memory) Pages() int { return len(m.pages) }

// Reset drops all contents.
func (m *Memory) Reset() {
	m.pages = make(map[uint64]*page)
	m.lastPage = nil
	m.lastBase = 0
}
