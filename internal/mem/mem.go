// Package mem provides the sparse, byte-addressable memory used by the
// VRISC64 functional simulator. Pages are allocated on first touch so
// the data segment and the stack can live gigabytes apart without
// cost, mirroring a real 64-bit address space.
package mem

import (
	"encoding/binary"
	"math"
)

const (
	pageShift = 12
	// PageSize is the allocation granule in bytes.
	PageSize = 1 << pageShift
	pageMask = PageSize - 1
)

type page [PageSize]byte

// tlbSize is the number of direct-mapped translation-cache entries.
// The kernels walk several arrays at once (score matrix, sequence,
// transition tables), so a single-entry cache thrashes between their
// pages; 64 entries indexed by page number cover every hot array of
// the BioPerf kernels and drop the map lookup from ~30% of simulation
// time to noise. Must be a power of two.
const tlbSize = 64

// Memory is a sparse little-endian byte-addressable memory. The zero
// value is ready to use. Memory is not safe for concurrent use.
type Memory struct {
	pages map[uint64]*page

	// Direct-mapped translation cache, indexed by page number. An
	// entry is valid when tlbPage is non-nil and tlbBase matches the
	// requested page base (page 0 is a legal page, so nil-ness, not
	// the base, is the valid bit).
	tlbBase [tlbSize]uint64
	tlbPage [tlbSize]*page
}

// New returns an empty memory.
func New() *Memory {
	return &Memory{pages: make(map[uint64]*page)}
}

// pageFor is the hot path: a TLB probe small enough for the compiler
// to inline into every load/store. Misses take the map path in
// pageMiss.
func (m *Memory) pageFor(addr uint64) *page {
	base := addr &^ pageMask
	i := (addr >> pageShift) & (tlbSize - 1)
	if p := m.tlbPage[i]; p != nil && m.tlbBase[i] == base {
		return p
	}
	return m.pageMiss(base, i)
}

// go:noinline keeps the miss path out of pageFor so pageFor itself
// stays under the inlining budget.
//
//go:noinline
func (m *Memory) pageMiss(base, i uint64) *page {
	if m.pages == nil {
		m.pages = make(map[uint64]*page)
	}
	p := m.pages[base]
	if p == nil {
		p = new(page)
		m.pages[base] = p
	}
	m.tlbBase[i] = base
	m.tlbPage[i] = p
	return p
}

// LoadByte returns the byte at addr.
func (m *Memory) LoadByte(addr uint64) byte {
	return m.pageFor(addr)[addr&pageMask]
}

// StoreByte stores b at addr.
func (m *Memory) StoreByte(addr uint64, b byte) {
	m.pageFor(addr)[addr&pageMask] = b
}

// ReadUint64 returns the little-endian 64-bit word at addr. Accesses
// may straddle a page boundary.
func (m *Memory) ReadUint64(addr uint64) uint64 {
	off := addr & pageMask
	p := m.pageFor(addr)
	if off <= PageSize-8 {
		return binary.LittleEndian.Uint64(p[off:])
	}
	var v uint64
	for i := uint64(0); i < 8; i++ {
		v |= uint64(m.LoadByte(addr+i)) << (8 * i)
	}
	return v
}

// WriteUint64 stores v at addr in little-endian order.
func (m *Memory) WriteUint64(addr uint64, v uint64) {
	off := addr & pageMask
	p := m.pageFor(addr)
	if off <= PageSize-8 {
		binary.LittleEndian.PutUint64(p[off:], v)
		return
	}
	for i := uint64(0); i < 8; i++ {
		m.StoreByte(addr+i, byte(v>>(8*i)))
	}
}

// ReadInt64 returns the two's-complement 64-bit integer at addr.
func (m *Memory) ReadInt64(addr uint64) int64 { return int64(m.ReadUint64(addr)) }

// WriteInt64 stores v at addr.
func (m *Memory) WriteInt64(addr uint64, v int64) { m.WriteUint64(addr, uint64(v)) }

// ReadFloat64 returns the IEEE-754 float64 at addr.
func (m *Memory) ReadFloat64(addr uint64) float64 {
	return math.Float64frombits(m.ReadUint64(addr))
}

// WriteFloat64 stores v at addr.
func (m *Memory) WriteFloat64(addr uint64, v float64) {
	m.WriteUint64(addr, math.Float64bits(v))
}

// StoreBytes copies b into memory starting at addr.
func (m *Memory) StoreBytes(addr uint64, b []byte) {
	for len(b) > 0 {
		off := addr & pageMask
		p := m.pageFor(addr)
		n := copy(p[off:], b)
		b = b[n:]
		addr += uint64(n)
	}
}

// LoadBytes copies n bytes starting at addr into a fresh slice.
func (m *Memory) LoadBytes(addr uint64, n int) []byte {
	out := make([]byte, n)
	for i := 0; i < n; {
		off := addr & pageMask
		p := m.pageFor(addr)
		c := copy(out[i:], p[off:])
		i += c
		addr += uint64(c)
	}
	return out
}

// Pages returns the number of resident pages (for tests and stats).
func (m *Memory) Pages() int { return len(m.pages) }

// Reset drops all contents.
func (m *Memory) Reset() {
	m.pages = make(map[uint64]*page)
	m.tlbBase = [tlbSize]uint64{}
	m.tlbPage = [tlbSize]*page{}
}
