package mem

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestByteRoundTrip(t *testing.T) {
	m := New()
	m.StoreByte(0, 0xAB)
	m.StoreByte(PageSize-1, 0xCD)
	m.StoreByte(1<<40, 0xEF)
	if m.LoadByte(0) != 0xAB || m.LoadByte(PageSize-1) != 0xCD || m.LoadByte(1<<40) != 0xEF {
		t.Error("byte round trip failed")
	}
	if m.LoadByte(12345) != 0 {
		t.Error("untouched memory not zero")
	}
}

func TestUint64RoundTrip(t *testing.T) {
	m := New()
	m.WriteUint64(64, 0x0102030405060708)
	if got := m.ReadUint64(64); got != 0x0102030405060708 {
		t.Errorf("got %#x", got)
	}
	// Little-endian byte order.
	if m.LoadByte(64) != 0x08 || m.LoadByte(71) != 0x01 {
		t.Error("not little-endian")
	}
}

func TestUint64StraddlesPage(t *testing.T) {
	m := New()
	addr := uint64(PageSize - 3)
	m.WriteUint64(addr, 0xDEADBEEFCAFEBABE)
	if got := m.ReadUint64(addr); got != 0xDEADBEEFCAFEBABE {
		t.Errorf("straddle got %#x", got)
	}
	if m.Pages() != 2 {
		t.Errorf("pages = %d, want 2", m.Pages())
	}
}

func TestInt64Negative(t *testing.T) {
	m := New()
	m.WriteInt64(8, -42)
	if got := m.ReadInt64(8); got != -42 {
		t.Errorf("got %d", got)
	}
}

func TestFloat64RoundTrip(t *testing.T) {
	m := New()
	for _, v := range []float64{0, 1.5, -math.Pi, math.Inf(1), math.SmallestNonzeroFloat64} {
		m.WriteFloat64(128, v)
		if got := m.ReadFloat64(128); got != v {
			t.Errorf("float64 %v round-tripped to %v", v, got)
		}
	}
	m.WriteFloat64(128, math.NaN())
	if !math.IsNaN(m.ReadFloat64(128)) {
		t.Error("NaN lost")
	}
}

func TestBulkCopy(t *testing.T) {
	m := New()
	data := make([]byte, 3*PageSize+17)
	for i := range data {
		data[i] = byte(i * 7)
	}
	addr := uint64(PageSize - 100) // force page straddles
	m.StoreBytes(addr, data)
	got := m.LoadBytes(addr, len(data))
	if !bytes.Equal(got, data) {
		t.Error("bulk copy mismatch")
	}
}

func TestReset(t *testing.T) {
	m := New()
	m.WriteUint64(0, 1)
	m.Reset()
	if m.ReadUint64(0) != 0 || m.Pages() != 1 {
		t.Error("reset did not clear")
	}
}

func TestZeroValueUsable(t *testing.T) {
	var m Memory
	m.WriteUint64(16, 77)
	if m.ReadUint64(16) != 77 {
		t.Error("zero-value Memory not usable")
	}
}

// Property: distinct word-aligned writes never interfere.
func TestWordIsolation(t *testing.T) {
	f := func(a, b uint32, va, vb uint64) bool {
		addrA := uint64(a) * 8
		addrB := uint64(b) * 8
		if addrA == addrB {
			return true
		}
		m := New()
		m.WriteUint64(addrA, va)
		m.WriteUint64(addrB, vb)
		return m.ReadUint64(addrA) == va && m.ReadUint64(addrB) == vb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: last write wins at any address.
func TestLastWriteWins(t *testing.T) {
	f := func(addr uint64, v1, v2 uint64) bool {
		addr &= (1 << 48) - 1
		m := New()
		m.WriteUint64(addr, v1)
		m.WriteUint64(addr, v2)
		return m.ReadUint64(addr) == v2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkWriteReadUint64(b *testing.B) {
	m := New()
	for i := 0; i < b.N; i++ {
		addr := uint64(i%8192) * 8
		m.WriteUint64(addr, uint64(i))
		if m.ReadUint64(addr) != uint64(i) {
			b.Fatal("mismatch")
		}
	}
}
