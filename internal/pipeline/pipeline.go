// Package pipeline provides the timing models that turn a committed
// instruction stream into cycle counts. The out-of-order model
// implements exactly the mechanism the paper describes in Section 2.2:
// a branch cannot resolve before its (load-fed) operands are ready, so
// the L1 hit latency of a load-to-branch sequence extends the
// misprediction penalty; and after a misprediction redirect the window
// is empty, so the L1 hit latency of branch-to-load sequences is fully
// exposed to the dependent instructions. An in-order issue mode models
// the Itanium 2 platform.
//
// The model is a dynamic dependence-graph (trace-driven) simulator: it
// consumes the committed instruction stream from the functional
// simulator, computes per-instruction dispatch/issue/complete/retire
// times subject to fetch width, window (ROB) occupancy, issue width,
// load ports, operand readiness, cache-determined load latencies,
// store-to-load forwarding, and branch-resolution-driven fetch
// redirects. Wrong-path instructions are not simulated; their
// first-order cost (an empty window after the redirect) is inherent in
// the redirect mechanism.
package pipeline

import (
	"fmt"

	"bioperfload/internal/bpred"
	"bioperfload/internal/cache"
	"bioperfload/internal/isa"
	"bioperfload/internal/sim"
)

// Fidelity selects the timing backend tier for a Config. The zero
// value is the full cycle-level model, so existing configurations keep
// their meaning; FidelityFast routes to the scoreboard latency model
// (internal/scoreboard), which trades per-slot resource modeling for
// an order-of-magnitude lower cost per instruction.
type Fidelity uint8

const (
	// FidelityFull is the out-of-order dependence-graph Model in this
	// package: per-slot issue search, window occupancy, load ports,
	// store-to-load forwarding. The paper-reproduction tier.
	FidelityFull Fidelity = iota
	// FidelityFast is the reg-ready-time scoreboard tier: one ready
	// time per register, width-adjusted issue cursor, branch predictor
	// and cache hierarchy, sampled observation. Validated against the
	// full tier by internal/scoreboard/validate.
	FidelityFast
)

// String returns the flag spelling ("full" or "fast").
func (f Fidelity) String() string {
	if f == FidelityFast {
		return "fast"
	}
	return "full"
}

// ParseFidelity parses a tier name. The empty string means full, so
// absent JSON/flag values keep the paper-exact behavior unless the
// caller chooses a different default.
func ParseFidelity(s string) (Fidelity, error) {
	switch s {
	case "", "full":
		return FidelityFull, nil
	case "fast":
		return FidelityFast, nil
	}
	return FidelityFull, fmt.Errorf("pipeline: unknown fidelity %q (full|fast)", s)
}

// Config parameterizes one modeled machine.
type Config struct {
	Name string

	// Fidelity selects the timing backend tier; the zero value is the
	// full model. Routing happens in runner.Session — NewModel in this
	// package always builds the full model.
	Fidelity Fidelity

	// InOrder selects in-order issue (Itanium-style). Out-of-order
	// issue otherwise.
	InOrder bool

	FetchWidth  int // instructions entering the window per cycle
	IssueWidth  int // instructions issued per cycle
	RetireWidth int // instructions retired per cycle
	WindowSize  int // ROB entries (in-flight instruction limit)
	LoadPorts   int // loads issued per cycle

	// FrontEndDepth is the fetch-to-dispatch depth in cycles; it is
	// the refill delay a redirect pays on top of MispredictPenalty.
	FrontEndDepth int
	// MispredictPenalty is the fixed redirect cost added after the
	// mispredicted branch resolves.
	MispredictPenalty int

	// Execution latencies in cycles.
	IntALULat int
	IntMulLat int
	IntDivLat int
	FPALULat  int // add/sub/compare/convert
	FPMulLat  int
	FPDivLat  int
	BranchLat int // compare-resolved-to-branch-resolved

	// Cache is the data-cache hierarchy configuration, including the
	// L1/L2/memory load-to-use latencies.
	Cache cache.HierarchyConfig

	// Predictor constructs the branch predictor; nil means the
	// paper's hybrid predictor.
	Predictor func() bpred.Predictor
}

// Stats is the outcome of a timing run.
type Stats struct {
	Instructions uint64
	Cycles       uint64

	Loads        uint64
	Stores       uint64
	CondBranches uint64
	Mispredicts  uint64

	L1Hits  uint64
	L2Hits  uint64
	MemHits uint64

	// LoadLatencySum accumulates the cache latency of every load, so
	// LoadLatencySum/Loads is the achieved AMAT.
	LoadLatencySum uint64
}

// IPC returns retired instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

// MispredictRate returns mispredictions per conditional branch.
func (s Stats) MispredictRate() float64 {
	if s.CondBranches == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.CondBranches)
}

// AMAT returns the measured average memory (load) access time.
func (s Stats) AMAT() float64 {
	if s.Loads == 0 {
		return 0
	}
	return float64(s.LoadLatencySum) / float64(s.Loads)
}

const (
	numRegs  = isa.NumIntRegs + isa.NumFPRegs
	fpBase   = isa.NumIntRegs
	slotBits = 16
	slotSize = 1 << slotBits // per-cycle bookkeeping ring capacity
	slotMask = slotSize - 1
)

// Model is a timing simulator fed with committed instructions via
// Observe. It implements sim.Observer so it can be attached directly
// to a functional machine.
type Model struct {
	cfg  Config
	hier *cache.Hierarchy
	bp   *bpred.Tracker

	stats Stats

	regReady [numRegs]int64 // completion time of last producer

	// Per-cycle resource rings. ringBase tracks the oldest cycle
	// whose slots are still meaningful; slots are cleared lazily as
	// the dispatch frontier advances.
	issueUsed [slotSize]uint16
	loadUsed  [slotSize]uint16
	ringFloor int64 // all cycles below this have been cleared/passed

	// Front end.
	fetchCycle int64 // cycle in which the next instruction dispatches
	fetchCount int   // instructions already dispatched in fetchCycle
	fetchFloor int64 // earliest dispatch after the last redirect

	// Window occupancy: retire times of the last WindowSize
	// instructions (circular).
	retireRing []int64
	retirePos  int
	lastRetire int64
	retireCnt  int // retires in lastRetire cycle

	// In-order issue state.
	lastIssue    int64
	lastIssueCnt int

	// Store-to-load forwarding: 8-byte-aligned address -> completion
	// time of the last store. Bounded by periodic clearing.
	storeReady map[uint64]int64

	maxComplete int64
}

// Normalized returns cfg with unset structural and latency fields
// replaced by the defaults NewModel has always applied, so both timing
// tiers (and any code reading ExecLatency) see the same machine.
func (c Config) Normalized() Config {
	if c.FetchWidth <= 0 {
		c.FetchWidth = 4
	}
	if c.IssueWidth <= 0 {
		c.IssueWidth = 4
	}
	if c.RetireWidth <= 0 {
		c.RetireWidth = c.FetchWidth
	}
	if c.WindowSize <= 0 {
		c.WindowSize = 64
	}
	if c.LoadPorts <= 0 {
		c.LoadPorts = 2
	}
	if c.BranchLat <= 0 {
		c.BranchLat = 1
	}
	if c.IntALULat <= 0 {
		c.IntALULat = 1
	}
	return c
}

// NewModel builds a timing model for cfg.
func NewModel(cfg Config) *Model {
	cfg = cfg.Normalized()
	newPred := cfg.Predictor
	if newPred == nil {
		newPred = func() bpred.Predictor { return bpred.NewPaperHybrid() }
	}
	return &Model{
		cfg:        cfg,
		hier:       cache.NewHierarchy(cfg.Cache),
		bp:         bpred.NewTracker(newPred()),
		retireRing: make([]int64, cfg.WindowSize),
		storeReady: make(map[uint64]int64, 1<<12),
		fetchCycle: int64(cfg.FrontEndDepth),
	}
}

// Config returns the machine configuration.
func (m *Model) Config() Config { return m.cfg }

// Stats returns the statistics accumulated so far. Cycles is the
// completion time of the latest instruction.
func (m *Model) Stats() Stats {
	s := m.stats
	s.Cycles = uint64(m.maxComplete)
	return s
}

// Branches exposes the per-branch predictor statistics (Table 4 uses
// the same predictor state the timing run trained).
func (m *Model) Branches() *bpred.Tracker { return m.bp }

// Hierarchy exposes the cache state.
func (m *Model) Hierarchy() *cache.Hierarchy { return m.hier }

var (
	_ sim.Observer      = (*Model)(nil)
	_ sim.BatchObserver = (*Model)(nil)
)

// ObserveBatch implements sim.BatchObserver: each slab advances the
// timing model with direct calls, avoiding per-instruction interface
// dispatch. No event escapes the callback (the simulator recycles the
// slab afterwards).
func (m *Model) ObserveBatch(evs []sim.Event) {
	for i := range evs {
		m.Observe(&evs[i])
	}
}

// Observe implements sim.Observer: it advances the timing model by one
// committed instruction.
func (m *Model) Observe(ev *sim.Event) {
	in := ev.Inst
	m.stats.Instructions++

	// ---- Front end: dispatch subject to width, redirects, window.
	dispatch := m.fetchCycle
	if dispatch < m.fetchFloor {
		dispatch = m.fetchFloor
		m.fetchCount = 0
	}
	// Window occupancy: cannot dispatch until the instruction
	// WindowSize back has retired.
	oldestRetire := m.retireRing[m.retirePos]
	if dispatch <= oldestRetire {
		dispatch = oldestRetire + 1
		m.fetchCount = 0
	}
	if dispatch > m.fetchCycle {
		m.fetchCycle = dispatch
		m.fetchCount = 0
	}
	m.fetchCount++
	if m.fetchCount >= m.cfg.FetchWidth {
		m.fetchCycle++
		m.fetchCount = 0
	}
	m.advanceRing(dispatch)

	// ---- Operand readiness.
	ready := dispatch
	var srcs [3]int16
	n, dst := Deps(in, &srcs)
	for i := 0; i < n; i++ {
		if t := m.regReady[srcs[i]]; t > ready {
			ready = t
		}
	}

	isLoad := isa.IsLoad(in.Op)
	isStore := isa.IsStore(in.Op)
	if isLoad {
		if t, ok := m.storeReady[ev.Addr&^7]; ok && t > ready {
			// Store-to-load forwarding: data available one cycle
			// after the store completes.
			ready = t
		}
	}

	// ---- Issue: find a cycle >= ready with a free issue slot (and
	// load port for loads). In-order mode additionally serializes
	// issue in program order.
	issue := ready
	if m.cfg.InOrder {
		if issue < m.lastIssue {
			issue = m.lastIssue
		}
		if issue == m.lastIssue && m.lastIssueCnt >= m.cfg.IssueWidth {
			issue++
		}
	}
	issue = m.findIssueSlot(issue, isLoad)
	if m.cfg.InOrder {
		if issue > m.lastIssue {
			m.lastIssue = issue
			m.lastIssueCnt = 1
		} else {
			m.lastIssueCnt++
		}
	}

	// ---- Execute.
	lat := int64(m.cfg.ExecLatency(in.Op))
	if isLoad || isStore {
		lvl, clat := m.hier.Access(ev.Addr, isStore)
		if isLoad {
			m.stats.Loads++
			m.stats.LoadLatencySum += uint64(clat)
			lat = int64(clat)
			switch lvl {
			case cache.LevelL1:
				m.stats.L1Hits++
			case cache.LevelL2:
				m.stats.L2Hits++
			default:
				m.stats.MemHits++
			}
		} else {
			m.stats.Stores++
			// Stores complete when address+data are ready; the
			// write drains from the store queue off the critical
			// path.
			lat = 1
		}
	}
	complete := issue + lat
	if isStore {
		m.storeReady[ev.Addr&^7] = complete
		if len(m.storeReady) > 1<<16 {
			clear(m.storeReady)
		}
	}
	if dst >= 0 {
		m.regReady[dst] = complete
	}

	// ---- Branch resolution and misprediction redirect.
	if isa.IsCondBranch(in.Op) {
		m.stats.CondBranches++
		if m.bp.Observe(ev.PC, ev.Taken) {
			m.stats.Mispredicts++
			floor := complete + int64(m.cfg.MispredictPenalty+m.cfg.FrontEndDepth)
			if floor > m.fetchFloor {
				m.fetchFloor = floor
			}
		}
	}
	// Taken control flow ends the fetch group: even a correctly
	// predicted taken branch redirects the fetch PC, so no further
	// instructions enter the pipe this cycle. Branchy code therefore
	// loses fetch bandwidth that straight-line (if-converted) code
	// keeps — a first-order effect of the paper's transformation.
	if ev.Taken && isa.IsBranch(in.Op) {
		if m.fetchCycle <= dispatch {
			m.fetchCycle = dispatch + 1
		}
		m.fetchCount = 0
	}

	// ---- Retire in order, RetireWidth per cycle.
	retire := complete
	if retire < m.lastRetire {
		retire = m.lastRetire
	}
	if retire == m.lastRetire {
		m.retireCnt++
		if m.retireCnt > m.cfg.RetireWidth {
			retire++
			m.retireCnt = 1
		}
	} else {
		m.retireCnt = 1
	}
	m.lastRetire = retire
	m.retireRing[m.retirePos] = retire
	m.retirePos++
	if m.retirePos == len(m.retireRing) {
		m.retirePos = 0
	}

	if complete > m.maxComplete {
		m.maxComplete = complete
	}
}

// findIssueSlot returns the first cycle >= want with a free issue slot
// (and, for loads, a free load port), and consumes the slot.
func (m *Model) findIssueSlot(want int64, isLoad bool) int64 {
	if want < m.ringFloor {
		want = m.ringFloor
	}
	for {
		idx := want & slotMask
		if int(m.issueUsed[idx]) < m.cfg.IssueWidth &&
			(!isLoad || int(m.loadUsed[idx]) < m.cfg.LoadPorts) {
			m.issueUsed[idx]++
			if isLoad {
				m.loadUsed[idx]++
			}
			return want
		}
		want++
	}
}

// advanceRing clears per-cycle slot state that the dispatch frontier
// has passed, keeping the ring coherent. Issue cycles can run ahead of
// dispatch by at most WindowSize * worst-case-latency, far below the
// ring capacity.
func (m *Model) advanceRing(dispatch int64) {
	// Keep a full window of history; clear everything older.
	target := dispatch - 1
	if target <= m.ringFloor {
		return
	}
	if target-m.ringFloor > slotSize {
		m.ringFloor = target - slotSize
	}
	for c := m.ringFloor; c < target; c++ {
		idx := c & slotMask
		m.issueUsed[idx] = 0
		m.loadUsed[idx] = 0
	}
	m.ringFloor = target
}

// ExecLatency returns the functional-unit latency for op under this
// configuration. Both timing tiers read latencies through here; call
// it on a Normalized config, or unset latency fields come back 0.
func (c *Config) ExecLatency(op isa.Op) int {
	switch op {
	case isa.OpMul:
		return c.IntMulLat
	case isa.OpDiv, isa.OpRem:
		return c.IntDivLat
	case isa.OpAddt, isa.OpSubt, isa.OpCmpTeq, isa.OpCmpTlt, isa.OpCmpTle,
		isa.OpCvtQT, isa.OpCvtTQ, isa.OpFMov, isa.OpFNeg:
		return c.FPALULat
	case isa.OpMult:
		return c.FPMulLat
	case isa.OpDivt:
		return c.FPDivLat
	case isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBle, isa.OpBgt, isa.OpBge:
		return c.BranchLat
	default:
		return c.IntALULat
	}
}

// Deps fills srcs with the register-file indices (int regs 0..31, FP
// regs 32..63) the instruction reads, and returns the count and the
// destination index (-1 if none). The hard-wired zero registers are
// never reported: they are always ready and never written. Both timing
// tiers share this dependence extraction.
func Deps(in *isa.Inst, srcs *[3]int16) (n int, dst int) {
	dst = -1
	addSrc := func(r int16) {
		if r == isa.RZero || r == fpBase+isa.FZero {
			return
		}
		srcs[n] = r
		n++
	}
	setDst := func(r int16) {
		if r == isa.RZero || r == fpBase+isa.FZero {
			return
		}
		dst = int(r)
	}
	op := in.Op
	switch {
	case op == isa.OpNop || op == isa.OpHalt || op == isa.OpBr:
	case op == isa.OpLdiq:
		setDst(int16(in.Rd))
	case op == isa.OpLda:
		addSrc(int16(in.Ra))
		setDst(int16(in.Rd))
	case isa.IsCmov(op):
		addSrc(int16(in.Ra))
		addSrc(int16(in.Rb))
		addSrc(int16(in.Rd)) // old value of the destination
		setDst(int16(in.Rd))
	case op == isa.OpLdq || op == isa.OpLdbu:
		addSrc(int16(in.Ra))
		setDst(int16(in.Rd))
	case op == isa.OpLdt:
		addSrc(int16(in.Ra))
		setDst(fpBase + int16(in.Rd))
	case op == isa.OpStq || op == isa.OpStb:
		addSrc(int16(in.Ra))
		addSrc(int16(in.Rb))
	case op == isa.OpStt:
		addSrc(int16(in.Ra))
		addSrc(fpBase + int16(in.Rb))
	case op == isa.OpAddt || op == isa.OpSubt || op == isa.OpMult || op == isa.OpDivt:
		addSrc(fpBase + int16(in.Ra))
		addSrc(fpBase + int16(in.Rb))
		setDst(fpBase + int16(in.Rd))
	case op == isa.OpCmpTeq || op == isa.OpCmpTlt || op == isa.OpCmpTle:
		addSrc(fpBase + int16(in.Ra))
		addSrc(fpBase + int16(in.Rb))
		setDst(int16(in.Rd))
	case op == isa.OpCvtQT:
		addSrc(int16(in.Ra))
		setDst(fpBase + int16(in.Rd))
	case op == isa.OpCvtTQ:
		addSrc(fpBase + int16(in.Ra))
		setDst(int16(in.Rd))
	case op == isa.OpFMov || op == isa.OpFNeg:
		addSrc(fpBase + int16(in.Ra))
		setDst(fpBase + int16(in.Rd))
	case isa.IsCondBranch(op):
		addSrc(int16(in.Ra))
	case op == isa.OpJsr:
		setDst(int16(in.Rd))
	case op == isa.OpRet:
		addSrc(int16(in.Ra))
	case op == isa.OpPrint:
		addSrc(int16(in.Ra))
	case op == isa.OpPrintF:
		addSrc(fpBase + int16(in.Ra))
	default: // integer ALU
		addSrc(int16(in.Ra))
		if !in.HasImm {
			addSrc(int16(in.Rb))
		}
		setDst(int16(in.Rd))
	}
	return n, dst
}
