package pipeline

import (
	"testing"

	"bioperfload/internal/bpred"
	"bioperfload/internal/cache"
	"bioperfload/internal/isa"
	"bioperfload/internal/sim"
)

// testConfig is a simple 4-wide OoO machine with the paper's cache.
func testConfig() Config {
	return Config{
		Name: "test", FetchWidth: 4, IssueWidth: 4, RetireWidth: 4,
		WindowSize: 64, LoadPorts: 2, FrontEndDepth: 5, MispredictPenalty: 5,
		IntALULat: 1, IntMulLat: 7, IntDivLat: 20,
		FPALULat: 4, FPMulLat: 4, FPDivLat: 15, BranchLat: 1,
		Cache: cache.PaperConfig(),
	}
}

// run executes prog on the functional simulator with a model attached.
func run(t testing.TB, cfg Config, prog *isa.Program) Stats {
	t.Helper()
	m, err := sim.New(prog)
	if err != nil {
		t.Fatal(err)
	}
	model := NewModel(cfg)
	m.AddObserver(model)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return model.Stats()
}

// independentAdds builds a loop executing n fully independent adds
// per iteration across distinct registers.
func independentAdds(iters int64) *isa.Program {
	b := isa.NewBuilder("indep")
	b.Ldiq(1, iters)
	b.Label("loop")
	// 8 independent adds on registers 2..9.
	for r := uint8(2); r <= 9; r++ {
		b.OpI(isa.OpAdd, r, r, 1)
	}
	b.OpI(isa.OpSub, 1, 1, 1)
	b.Branch(isa.OpBgt, 1, "loop")
	b.Halt()
	return b.MustProgram()
}

// chainedAdds builds a loop whose body is one long dependence chain.
func chainedAdds(iters int64) *isa.Program {
	b := isa.NewBuilder("chain")
	b.Ldiq(1, iters)
	b.Label("loop")
	for i := 0; i < 8; i++ {
		b.OpI(isa.OpAdd, 2, 2, 1) // serial chain on r2
	}
	b.OpI(isa.OpSub, 1, 1, 1)
	b.Branch(isa.OpBgt, 1, "loop")
	b.Halt()
	return b.MustProgram()
}

func TestIndependentWorkApproachesIssueWidth(t *testing.T) {
	s := run(t, testConfig(), independentAdds(2000))
	ipc := s.IPC()
	if ipc < 2.5 {
		t.Errorf("independent adds IPC = %.2f, want >= 2.5 on a 4-wide machine", ipc)
	}
	if ipc > 4.01 {
		t.Errorf("IPC %.2f exceeds issue width", ipc)
	}
}

func TestDependenceChainSerializes(t *testing.T) {
	indep := run(t, testConfig(), independentAdds(2000))
	chain := run(t, testConfig(), chainedAdds(2000))
	if chain.Cycles < indep.Cycles*2 {
		t.Errorf("chained adds (%d cyc) should be much slower than independent (%d cyc)",
			chain.Cycles, indep.Cycles)
	}
	// The chain bounds IPC near 8 adds + overhead per 8 cycles.
	if ipc := chain.IPC(); ipc > 1.6 {
		t.Errorf("chained IPC = %.2f, want ~1.25", ipc)
	}
}

// pointerChase builds a serial load chain: r2 = mem[r2] repeatedly,
// where the cell points to itself so every load hits the same line.
func pointerChase(iters int64) *isa.Program {
	b := isa.NewBuilder("chase")
	addr := b.Global("cell", 8, 8, false)
	b.Ldiq(2, int64(addr))
	b.Store(isa.OpStq, 2, 2, 0) // cell = &cell
	b.Ldiq(1, iters)
	b.Label("loop")
	b.Load(isa.OpLdq, 2, 2, 0)
	b.Load(isa.OpLdq, 2, 2, 0)
	b.Load(isa.OpLdq, 2, 2, 0)
	b.Load(isa.OpLdq, 2, 2, 0)
	b.OpI(isa.OpSub, 1, 1, 1)
	b.Branch(isa.OpBgt, 1, "loop")
	b.Halt()
	return b.MustProgram()
}

func TestLoadToUseLatencyExposedBySerialLoads(t *testing.T) {
	const iters = 1000
	s := run(t, testConfig(), pointerChase(iters))
	// 4 serial L1-hit loads per iteration at 3 cycles each = 12
	// cycles per iteration minimum.
	minCycles := uint64(iters * 4 * 3)
	if s.Cycles < minCycles {
		t.Errorf("cycles = %d, want >= %d (serial 3-cycle loads)", s.Cycles, minCycles)
	}
	if s.Cycles > minCycles*13/10 {
		t.Errorf("cycles = %d, want close to %d", s.Cycles, minCycles)
	}
	if s.AMAT() < 2.9 || s.AMAT() > 3.2 {
		t.Errorf("AMAT = %.2f, want ~3 for L1 hits", s.AMAT())
	}
}

// dataBranchProgram builds the paper's Section 2.2 pattern: a loop
// over a data array where a load feeds a comparison feeding a
// conditional branch; with random data the branch is hard to predict.
// When cmov is true the branch is replaced by a conditional move (the
// paper's transformed code shape).
func dataBranchProgram(n int64, cmov bool, data []int64) (*isa.Program, error) {
	b := isa.NewBuilder("databranch")
	addr := b.Global("data", uint64(n)*8, 8, false)
	b.Ldiq(1, n)           // counter
	b.Ldiq(2, int64(addr)) // pointer
	b.Ldiq(3, 0)           // accumulator
	b.Label("loop")
	b.Load(isa.OpLdq, 4, 2, 0) // load -> feeds branch (load-to-branch)
	if cmov {
		b.Op3(isa.OpCmovGt, 3, 4, 4) // if r4 > 0: acc = r4
	} else {
		b.Branch(isa.OpBle, 4, "skip")
		b.Op3(isa.OpAdd, 3, 4, isa.RZero) // acc = r4
		b.Label("skip")
	}
	b.OpI(isa.OpAdd, 2, 2, 8)
	b.OpI(isa.OpSub, 1, 1, 1)
	b.Branch(isa.OpBgt, 1, "loop")
	b.Halt()
	p, err := b.Program()
	if err != nil {
		return nil, err
	}
	sym, _ := p.Symbol("data")
	buf := make([]byte, n*8)
	for i, v := range data {
		for k := 0; k < 8; k++ {
			buf[i*8+k] = byte(uint64(v) >> (8 * k))
		}
	}
	p.Init = append(p.Init, isa.DataInit{Addr: sym.Addr, Bytes: buf})
	return p, nil
}

func lcg(seed uint64, n int64) []int64 {
	out := make([]int64, n)
	x := seed
	for i := range out {
		x = x*6364136223846793005 + 1442695040888963407
		out[i] = int64(x>>33)%100 - 50 // roughly half positive
	}
	return out
}

func TestHardBranchesCostCycles(t *testing.T) {
	const n = 5000
	random := lcg(1, n)
	branchy, err := dataBranchProgram(n, false, random)
	if err != nil {
		t.Fatal(err)
	}
	cmovy, err := dataBranchProgram(n, true, random)
	if err != nil {
		t.Fatal(err)
	}
	sb := run(t, testConfig(), branchy)
	sc := run(t, testConfig(), cmovy)

	if sb.MispredictRate() < 0.10 {
		t.Errorf("random-data branch mispredict rate = %.3f, want substantial", sb.MispredictRate())
	}
	if sc.Mispredicts > sb.Mispredicts/4 {
		t.Errorf("cmov version still mispredicts a lot: %d vs %d", sc.Mispredicts, sb.Mispredicts)
	}
	// This is the paper's headline effect: eliminating the
	// load-fed hard branch saves real cycles.
	if sc.Cycles >= sb.Cycles {
		t.Errorf("cmov version (%d cyc) not faster than branchy (%d cyc)", sc.Cycles, sb.Cycles)
	}
	speedup := float64(sb.Cycles)/float64(sc.Cycles) - 1
	if speedup < 0.15 {
		t.Errorf("speedup = %.1f%%, want >= 15%%", speedup*100)
	}
}

func TestPredictableBranchesAreCheap(t *testing.T) {
	const n = 5000
	allPos := make([]int64, n)
	for i := range allPos {
		allPos[i] = 1
	}
	branchy, err := dataBranchProgram(n, false, allPos)
	if err != nil {
		t.Fatal(err)
	}
	s := run(t, testConfig(), branchy)
	if s.MispredictRate() > 0.01 {
		t.Errorf("always-taken data branch mispredicts at %.3f", s.MispredictRate())
	}
}

func TestLoadToBranchExtendsMispredictCost(t *testing.T) {
	// Two variants with identical branch behaviour (random) and
	// identical instruction counts, but in one the branch condition
	// comes from a load (3-cycle latency), in the other from an ALU
	// chain computed far ahead. The load-fed variant must pay more
	// per misprediction (the Section 2.2 mechanism).
	const n = 4000
	random := lcg(9, n)

	build := func(loadFed bool) *isa.Program {
		b := isa.NewBuilder("mp")
		addr := b.Global("data", n*8, 8, false)
		b.Ldiq(1, n)
		b.Ldiq(2, int64(addr))
		b.Label("loop")
		b.Load(isa.OpLdq, 4, 2, 0)
		if loadFed {
			// Branch tests the just-loaded value: resolution
			// waits for the load.
			b.Branch(isa.OpBle, 4, "skip")
		} else {
			// Branch tests a value loaded in the *previous*
			// iteration (r5), already long ready.
			b.Branch(isa.OpBle, 5, "skip")
		}
		b.OpI(isa.OpAdd, 3, 3, 1)
		b.Label("skip")
		b.Op3(isa.OpAdd, 5, 4, isa.RZero) // carry value to next iter
		b.OpI(isa.OpAdd, 2, 2, 8)
		b.OpI(isa.OpSub, 1, 1, 1)
		b.Branch(isa.OpBgt, 1, "loop")
		b.Halt()
		p := b.MustProgram()
		sym, _ := p.Symbol("data")
		buf := make([]byte, n*8)
		for i, v := range random {
			for k := 0; k < 8; k++ {
				buf[i*8+k] = byte(uint64(v) >> (8 * k))
			}
		}
		p.Init = append(p.Init, isa.DataInit{Addr: sym.Addr, Bytes: buf})
		return p
	}

	sLoad := run(t, testConfig(), build(true))
	sAhead := run(t, testConfig(), build(false))

	// Both versions see essentially the same mispredict counts
	// (same random condition stream, one iteration shifted).
	if sLoad.Mispredicts == 0 || sAhead.Mispredicts == 0 {
		t.Fatal("expected mispredictions in both variants")
	}
	perLoad := float64(sLoad.Cycles) / float64(sLoad.Mispredicts)
	perAhead := float64(sAhead.Cycles) / float64(sAhead.Mispredicts)
	if perLoad <= perAhead {
		t.Errorf("load-fed branch cost %.2f cyc/mispredict, early-resolved %.2f: load latency not added to penalty",
			perLoad, perAhead)
	}
}

func TestInOrderExposesLoadUseStalls(t *testing.T) {
	// In-order: load followed immediately by its use stalls the whole
	// machine; OoO hides it with the independent adds that follow.
	build := func() *isa.Program {
		b := isa.NewBuilder("inorder")
		addr := b.Global("buf", 4096, 8, false)
		b.Ldiq(1, 2000)
		b.Ldiq(2, int64(addr))
		b.Label("loop")
		b.Load(isa.OpLdq, 4, 2, 0)
		b.OpI(isa.OpAdd, 5, 4, 1) // immediate use
		// Independent filler an OoO core can overlap with the load.
		b.OpI(isa.OpAdd, 6, 6, 1)
		b.OpI(isa.OpAdd, 7, 7, 1)
		b.OpI(isa.OpAdd, 8, 8, 1)
		b.OpI(isa.OpSub, 1, 1, 1)
		b.Branch(isa.OpBgt, 1, "loop")
		b.Halt()
		return b.MustProgram()
	}
	ooo := testConfig()
	ino := testConfig()
	ino.InOrder = true
	sOoo := run(t, ooo, build())
	sIno := run(t, ino, build())
	if sIno.Cycles <= sOoo.Cycles {
		t.Errorf("in-order (%d) should be slower than OoO (%d)", sIno.Cycles, sOoo.Cycles)
	}
}

func TestStoreToLoadForwarding(t *testing.T) {
	// A load that reads the address just stored must not complete
	// before the store's data was ready.
	b := isa.NewBuilder("fwd")
	addr := b.Global("x", 8, 8, false)
	b.Ldiq(1, int64(addr))
	b.Ldiq(2, 5)
	// Long dependence chain delays the store data.
	for i := 0; i < 20; i++ {
		b.OpI(isa.OpAdd, 2, 2, 1)
	}
	b.Store(isa.OpStq, 2, 1, 0)
	b.Load(isa.OpLdq, 3, 1, 0)
	b.OpI(isa.OpAdd, 4, 3, 1)
	b.Halt()
	s := run(t, testConfig(), b.MustProgram())
	// The chain alone is 20+ cycles; the load cannot finish earlier.
	if s.Cycles < 22 {
		t.Errorf("cycles = %d: load overtook the forwarding store", s.Cycles)
	}
}

func TestWindowLimitsRunahead(t *testing.T) {
	// With a tiny window, a long-latency instruction blocks retire
	// and stalls dispatch; a big window rides over it.
	build := func() *isa.Program {
		b := isa.NewBuilder("win")
		b.Ldiq(1, 500)
		b.Label("loop")
		b.Op3(isa.OpMul, 9, 9, 9) // 7-cycle op, independent chain head
		for r := uint8(2); r <= 8; r++ {
			b.OpI(isa.OpAdd, r, r, 1)
		}
		b.OpI(isa.OpSub, 1, 1, 1)
		b.Branch(isa.OpBgt, 1, "loop")
		b.Halt()
		return b.MustProgram()
	}
	small := testConfig()
	small.WindowSize = 4
	big := testConfig()
	big.WindowSize = 256
	sSmall := run(t, small, build())
	sBig := run(t, big, build())
	if sSmall.Cycles <= sBig.Cycles {
		t.Errorf("window 4 (%d cyc) should be slower than window 256 (%d cyc)",
			sSmall.Cycles, sBig.Cycles)
	}
}

func TestStatsAccounting(t *testing.T) {
	const n = 100
	p, err := dataBranchProgram(n, false, lcg(2, n))
	if err != nil {
		t.Fatal(err)
	}
	s := run(t, testConfig(), p)
	if s.Loads != n {
		t.Errorf("loads = %d, want %d", s.Loads, n)
	}
	if s.L1Hits+s.L2Hits+s.MemHits != s.Loads {
		t.Error("load level counts do not sum")
	}
	if s.CondBranches == 0 || s.Instructions == 0 || s.Cycles == 0 {
		t.Error("zero counters")
	}
	if s.IPC() <= 0 {
		t.Error("IPC should be positive")
	}
}

func TestCustomPredictorInjection(t *testing.T) {
	cfg := testConfig()
	cfg.Predictor = func() bpred.Predictor { return &bpred.Static{Taken: false} }
	const n = 500
	allPos := make([]int64, n)
	for i := range allPos {
		allPos[i] = 1
	}
	p, err := dataBranchProgram(n, false, allPos)
	if err != nil {
		t.Fatal(err)
	}
	s := run(t, cfg, p)
	// Every loop back-edge (taken) is mispredicted by always-not-taken.
	if s.MispredictRate() < 0.4 {
		t.Errorf("static not-taken should mispredict loop branches: rate %.2f", s.MispredictRate())
	}
}

func TestZeroValueStatsHelpers(t *testing.T) {
	var s Stats
	if s.IPC() != 0 || s.MispredictRate() != 0 || s.AMAT() != 0 {
		t.Error("zero stats helpers should be 0")
	}
	// Each helper guards its own denominator independently: a numerator
	// without its denominator must not divide by zero, and the other
	// helpers must be unaffected.
	s = Stats{Instructions: 100, Mispredicts: 5, LoadLatencySum: 300}
	if s.IPC() != 0 || s.MispredictRate() != 0 || s.AMAT() != 0 {
		t.Errorf("numerators without denominators: IPC %v, rate %v, AMAT %v, want 0",
			s.IPC(), s.MispredictRate(), s.AMAT())
	}
	s = Stats{Instructions: 100, Cycles: 50, CondBranches: 20, Mispredicts: 5,
		Loads: 10, LoadLatencySum: 30}
	if got := s.IPC(); got != 2 {
		t.Errorf("IPC = %v, want 2", got)
	}
	if got := s.MispredictRate(); got != 0.25 {
		t.Errorf("MispredictRate = %v, want 0.25", got)
	}
	if got := s.AMAT(); got != 3 {
		t.Errorf("AMAT = %v, want 3", got)
	}
}

func BenchmarkModelThroughput(b *testing.B) {
	p := independentAdds(int64(b.N/10 + 1))
	m, err := sim.New(p)
	if err != nil {
		b.Fatal(err)
	}
	model := NewModel(testConfig())
	m.AddObserver(model)
	b.ResetTimer()
	if _, err := m.Run(); err != nil {
		b.Fatal(err)
	}
}

func TestLoadPortsLimitThroughput(t *testing.T) {
	// Eight independent loads per iteration: with 1 load port the
	// loop needs >= 8 cycles/iteration; with 4 ports it can do better.
	build := func() *isa.Program {
		b := isa.NewBuilder("ports")
		addr := b.Global("buf", 4096, 8, false)
		b.Ldiq(2, int64(addr))
		b.Ldiq(1, 1000)
		b.Label("loop")
		for r := uint8(4); r < 12; r++ {
			b.Load(isa.OpLdq, r, 2, int64(r)*8)
		}
		b.OpI(isa.OpSub, 1, 1, 1)
		b.Branch(isa.OpBgt, 1, "loop")
		b.Halt()
		return b.MustProgram()
	}
	one := testConfig()
	one.LoadPorts = 1
	four := testConfig()
	four.LoadPorts = 4
	four.IssueWidth = 8
	four.FetchWidth = 8
	s1 := run(t, one, build())
	s4 := run(t, four, build())
	if s1.Cycles <= s4.Cycles {
		t.Errorf("1 load port (%d cyc) should be slower than 4 (%d cyc)", s1.Cycles, s4.Cycles)
	}
	if s1.Cycles < 8000 {
		t.Errorf("1 port: %d cycles for 8000 loads, impossible", s1.Cycles)
	}
}

func TestRetireWidthBoundsIPC(t *testing.T) {
	cfg := testConfig()
	cfg.RetireWidth = 1
	s := run(t, cfg, independentAdds(2000))
	if s.IPC() > 1.01 {
		t.Errorf("retire width 1 allows IPC %.2f", s.IPC())
	}
}

func TestTakenBranchFetchBreak(t *testing.T) {
	// A loop of N straight-line instructions vs the same work split
	// by taken branches every 2 instructions: the branchy version
	// must lose fetch bandwidth even though every branch predicts
	// perfectly.
	straight := func() *isa.Program {
		b := isa.NewBuilder("st")
		b.Ldiq(1, 2000)
		b.Label("loop")
		for r := uint8(2); r <= 9; r++ {
			b.OpI(isa.OpAdd, r, r, 1)
		}
		b.OpI(isa.OpSub, 1, 1, 1)
		b.Branch(isa.OpBgt, 1, "loop")
		b.Halt()
		return b.MustProgram()
	}
	hoppy := func() *isa.Program {
		b := isa.NewBuilder("hop")
		b.Ldiq(1, 2000)
		b.Label("loop")
		for r := uint8(2); r <= 9; r += 2 {
			b.OpI(isa.OpAdd, r, r, 1)
			b.OpI(isa.OpAdd, r+1, r+1, 1)
			b.Branch(isa.OpBr, 0, labelOf(r)) // unconditional hop
			b.Label(labelOf(r))
		}
		b.OpI(isa.OpSub, 1, 1, 1)
		b.Branch(isa.OpBgt, 1, "loop")
		b.Halt()
		return b.MustProgram()
	}
	ss := run(t, testConfig(), straight())
	sh := run(t, testConfig(), hoppy())
	// Per useful work done (same adds), the hoppy version needs more
	// cycles.
	if sh.Cycles <= ss.Cycles {
		t.Errorf("taken branches should break fetch groups: straight %d, hoppy %d",
			ss.Cycles, sh.Cycles)
	}
}

func labelOf(r uint8) string { return "hop" + string(rune('a'+r)) }

func TestModelAccessors(t *testing.T) {
	m := NewModel(testConfig())
	if m.Config().Name != "test" {
		t.Error("Config accessor broken")
	}
	if m.Hierarchy() == nil || m.Branches() == nil {
		t.Error("accessors returned nil")
	}
}

func TestDefaultsApplied(t *testing.T) {
	m := NewModel(Config{Cache: cache.PaperConfig()})
	cfg := m.Config()
	if cfg.FetchWidth <= 0 || cfg.IssueWidth <= 0 || cfg.RetireWidth <= 0 ||
		cfg.WindowSize <= 0 || cfg.LoadPorts <= 0 || cfg.BranchLat <= 0 {
		t.Errorf("defaults not applied: %+v", cfg)
	}
}
