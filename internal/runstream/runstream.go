// Package runstream defines the column-oriented chunk stream the
// block-characterized replay engine consumes: straight-line PC runs
// plus the taken and address columns of one trace chunk, without the
// per-event record materialization of a full decode. The trace package
// produces it (trace.IndexedReader.Columns) and loadchar consumes it
// (loadchar.AnalyzeRuns); keeping the types here breaks what would
// otherwise be an import cycle between the two.
package runstream

// Run is one maximal straight-line PC run: N events whose PCs are
// PC, PC+1, ..., PC+N-1, in commit order.
type Run struct {
	PC int32
	N  int32
}

// Chunk is the column view of one trace chunk. Concatenating the runs
// reproduces exactly the PC sequence a full event decode yields.
type Chunk struct {
	// Base is the sequence number of the chunk's first event.
	Base uint64
	// N is the event count.
	N int
	// Runs is the chunk's PC sequence as maximal straight-line runs.
	Runs []Run
	// Taken is the branch-outcome bitmap, one bit per event
	// (bit i set ⇔ event i's Taken flag was set).
	Taken []byte
	// Present is the address-present bitmap, one bit per event
	// (bit i set ⇔ event i recorded a nonzero effective address).
	Present []byte
	// Addrs holds the effective addresses of the chunk's memory-class
	// (load/store) events in commit order, one entry per memory event
	// whose Present bit is set. Present bits on non-memory events (which
	// a hostile trace may contain) only advanced the decoder's delta
	// chain; their values are not memory references and are dropped. A
	// memory event with a clear Present bit has address 0, matching the
	// event-decode semantics.
	Addrs []uint64
}

// TakenAt reports event i's taken bit.
func (c *Chunk) TakenAt(i int32) bool {
	return c.Taken[i>>3]&(1<<(i&7)) != 0
}

// PresentAt reports event i's address-present bit.
func (c *Chunk) PresentAt(i int32) bool {
	return c.Present[i>>3]&(1<<(i&7)) != 0
}

// Source streams Chunks in commit order. Next returns the next chunk
// and a release function that recycles its buffers; it returns io.EOF
// after the final chunk. Close releases underlying resources and may
// be called at any time, including before EOF.
type Source interface {
	Next() (*Chunk, func(), error)
	Close()
}
