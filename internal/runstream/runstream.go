// Package runstream defines the column-oriented chunk stream the
// block-characterized replay engine consumes: straight-line PC runs
// plus the taken and address columns of one trace chunk, without the
// per-event record materialization of a full decode. The trace package
// produces it (trace.IndexedReader.Columns) and loadchar consumes it
// (loadchar.AnalyzeRuns); keeping the types here breaks what would
// otherwise be an import cycle between the two.
package runstream

// Run is one maximal straight-line PC run: N events whose PCs are
// PC, PC+1, ..., PC+N-1, in commit order.
type Run struct {
	PC int32
	N  int32
}

// Token is one run-dictionary reference in a v4 chunk's token stream:
// the run Dict.Runs[ID] executed Rep times back to back. Adjacent
// tokens never share an ID (the encoder merges them), so Rep > 1 is
// exactly the tight-loop case the block-characterized engine turns
// into counter multiplies.
type Token struct {
	ID  int32
	Rep int32
}

// Dict is the static run dictionary of a v4 trace: the deduplicated
// vocabulary of straight-line PC runs its token streams reference. It
// is immutable once published and shared by every chunk of one trace.
type Dict struct {
	Runs []Run
}

// Chunk is the column view of one trace chunk. Concatenating the runs
// (or, for a dictionary-backed chunk, expanding the tokens against the
// dictionary) reproduces exactly the PC sequence a full event decode
// yields.
//
// A chunk comes in one of two shapes:
//
//   - legacy (trace v2/v3): Runs, Taken, Present, and Addrs are set;
//     Dict, Tokens, and BrTaken are nil.
//   - dictionary-backed (trace v4): Dict, Tokens, BrTaken, and Addrs
//     are set; Runs, Taken, and Present are nil. Addrs then holds one
//     entry per memory-class event (including zero addresses), and
//     BrTaken one bit per conditional-branch event.
type Chunk struct {
	// Base is the sequence number of the chunk's first event.
	Base uint64
	// N is the event count.
	N int
	// Runs is the chunk's PC sequence as maximal straight-line runs.
	Runs []Run
	// Dict is the trace-wide run dictionary of a dictionary-backed
	// chunk (nil for legacy chunks). It is shared across chunks and
	// must not be mutated.
	Dict *Dict
	// Tokens is the chunk's PC sequence as dictionary references;
	// expanding each token Rep times reproduces the Runs view.
	Tokens []Token
	// BrTaken is the dictionary-backed chunk's branch-outcome bitmap:
	// one bit per conditional-branch event, in commit order (bit i set
	// ⇔ the chunk's i-th dynamic conditional branch was taken).
	BrTaken []byte
	// Taken is the branch-outcome bitmap, one bit per event
	// (bit i set ⇔ event i's Taken flag was set).
	Taken []byte
	// Present is the address-present bitmap, one bit per event
	// (bit i set ⇔ event i recorded a nonzero effective address).
	Present []byte
	// Addrs holds the effective addresses of the chunk's memory-class
	// (load/store) events in commit order. In a legacy chunk there is
	// one entry per memory event whose Present bit is set (Present bits
	// on non-memory events — possible only in a hostile trace — only
	// advanced the decoder's delta chain; their values are dropped, and
	// a memory event with a clear Present bit has address 0). In a
	// dictionary-backed chunk there is one entry per memory event,
	// zero addresses included, so a cursor advances once per ri.mems
	// offset with no bitmap test.
	Addrs []uint64
}

// TakenAt reports event i's taken bit.
func (c *Chunk) TakenAt(i int32) bool {
	return c.Taken[i>>3]&(1<<(i&7)) != 0
}

// PresentAt reports event i's address-present bit.
func (c *Chunk) PresentAt(i int32) bool {
	return c.Present[i>>3]&(1<<(i&7)) != 0
}

// Source streams Chunks in commit order. Next returns the next chunk
// and a release function that recycles its buffers; it returns io.EOF
// after the final chunk. Close releases underlying resources and may
// be called at any time, including before EOF.
type Source interface {
	Next() (*Chunk, func(), error)
	Close()
}
