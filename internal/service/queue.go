package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Queue admission errors, mapped to HTTP status codes by the
// handlers (429 and 503 respectively).
var (
	ErrQueueFull    = errors.New("service: job queue full")
	ErrShuttingDown = errors.New("service: shutting down")
)

// queue is the bounded job queue and worker pool. Admission is
// non-blocking: when the channel is full, submit fails immediately
// with ErrQueueFull and the client sees 429 — backpressure instead of
// unbounded buffering. Identical in-flight requests (same canonical
// key) are deduplicated onto one job, and the Session below that
// deduplicates the underlying simulation artifacts, so N concurrent
// identical characterize requests cost one compile and one run.
type queue struct {
	jobs    chan *Job
	wg      sync.WaitGroup
	baseCtx context.Context
	cancel  context.CancelFunc
	timeout time.Duration // server-wide per-job cap (0 = none)
	limit   int           // normal admission cap (queued jobs)
	reserve int           // extra slots only shed-degraded jobs may use

	// exec runs one job's work; swapped in tests to control timing.
	exec func(ctx context.Context, j *Job) (any, error)
	// onDone observes finished jobs (metrics).
	onDone func(j *Job)

	mu       sync.Mutex
	closed   bool
	queued   int // admitted but not yet started
	byID     map[string]*Job
	inflight map[string]*Job // key -> queued or running job
	nextID   uint64
}

func newQueue(depth, reserve, workers int, timeout time.Duration,
	exec func(ctx context.Context, j *Job) (any, error), onDone func(j *Job)) *queue {
	ctx, cancel := context.WithCancel(context.Background())
	q := &queue{
		jobs:     make(chan *Job, depth+reserve),
		baseCtx:  ctx,
		cancel:   cancel,
		timeout:  timeout,
		limit:    depth,
		reserve:  reserve,
		exec:     exec,
		onDone:   onDone,
		byID:     make(map[string]*Job),
		inflight: make(map[string]*Job),
	}
	q.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go q.worker()
	}
	return q
}

// submit enqueues a job for (kind, key, spec), or joins the existing
// in-flight job with the same key (singleflight; deduped=true). The
// per-request timeout rides on the job; when requests dedupe, the
// first request's timeout governs the shared run.
//
// Normal admissions stop at the queue depth. shed=true admissions —
// fast-tier jobs the overload ladder degraded to — may additionally
// use the reserve slots: a saturated queue full of slow full-fidelity
// work still leaves room to serve cheap degraded answers instead of
// 429ing.
func (q *queue) submit(kind, key string, spec any, timeout time.Duration, shed bool) (j *Job, deduped bool, err error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil, false, ErrShuttingDown
	}
	if exist := q.inflight[key]; exist != nil {
		return exist, true, nil
	}
	limit := q.limit
	if shed {
		limit += q.reserve
	}
	if q.queued >= limit {
		return nil, false, ErrQueueFull
	}
	q.nextID++
	j = newJob(fmt.Sprintf("j%06d", q.nextID), kind, key, spec, timeout)
	select {
	case q.jobs <- j:
	default:
		// The channel holds limit+reserve slots, so this only trips if
		// accounting and capacity disagree — treat it as full.
		return nil, false, ErrQueueFull
	}
	q.queued++
	q.byID[j.ID] = j
	q.inflight[key] = j
	return j, false, nil
}

// get returns a job by ID (nil if unknown).
func (q *queue) get(id string) *Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.byID[id]
}

// depth returns the number of queued-but-not-started jobs.
func (q *queue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.queued
}

// subscribers returns the number of live event-stream consumers
// across all jobs.
func (q *queue) subscribers() int {
	q.mu.Lock()
	jobs := make([]*Job, 0, len(q.byID))
	for _, j := range q.byID {
		jobs = append(jobs, j)
	}
	q.mu.Unlock()
	n := 0
	for _, j := range jobs {
		n += j.Subscribers()
	}
	return n
}

func (q *queue) worker() {
	defer q.wg.Done()
	for j := range q.jobs {
		q.runJob(j)
	}
}

func (q *queue) runJob(j *Job) {
	q.mu.Lock()
	q.queued--
	q.mu.Unlock()
	ctx := q.baseCtx
	timeout := j.timeout
	if q.timeout > 0 && (timeout <= 0 || timeout > q.timeout) {
		timeout = q.timeout
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	j.setRunning()
	result, err := q.exec(ctx, j)
	j.finish(result, err)
	q.mu.Lock()
	if q.inflight[j.Key] == j {
		delete(q.inflight, j.Key)
	}
	q.mu.Unlock()
	if q.onDone != nil {
		q.onDone(j)
	}
}

// shutdown stops admission and drains: already-queued jobs still run
// to completion. If ctx expires first, the base context is canceled —
// in-flight simulations abort at their next cancellation check and
// still-queued jobs fail instantly — and shutdown waits for the
// workers before returning ctx's error.
func (q *queue) shutdown(ctx context.Context) error {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return nil
	}
	q.closed = true
	q.mu.Unlock()
	close(q.jobs)
	done := make(chan struct{})
	go func() {
		q.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		q.cancel()
		return nil
	case <-ctx.Done():
		q.cancel()
		<-done
		return ctx.Err()
	}
}
