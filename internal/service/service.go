// Package service is the characterization-as-a-service layer behind
// cmd/bioperfd: an HTTP JSON API that turns the paper's analyses —
// load characterization, timing evaluation, cross-program/platform
// sweeps — into queued jobs executed over one shared runner.Session.
//
// The paper's apparatus instrumented each binary once and derived
// every analysis from that single run; the Session preserved that
// discipline for batch experiments, and this package extends it to
// serving: every request is admitted to a bounded queue (full queue →
// 429), deduplicated against identical in-flight requests
// (singleflight), executed by a worker pool under a per-job timeout,
// and answered from the Session's memoized artifacts — so a cached
// characterize request costs microseconds, not a re-simulation.
// Shutdown drains queued jobs and cancels in-flight simulations
// through the context threaded down to the simulator's commit loop.
//
// Endpoints:
//
//	POST /v1/characterize   {program, size, hot?, timeout_ms?, wait?}
//	POST /v1/evaluate       {program, platform, size, transformed?, fidelity?, timeout_ms?, wait?}
//	POST /v1/sweep          {kind, programs?, platforms?, size, hot?, fidelity?, timeout_ms?, wait?}
//
// Timing requests (evaluate, evaluate sweeps) accept a fidelity tier:
// "fast" (default) answers from the validated scoreboard model,
// "full" from the exact paper-reproduction pipeline model.
//
//	GET  /v1/jobs/{id}      job status + result
//	GET  /v1/jobs/{id}/events   NDJSON progress stream
//	GET  /healthz           liveness + queue/session snapshot
//	GET  /metrics           Prometheus text format
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"bioperfload/internal/bio"
	"bioperfload/internal/cluster"
	"bioperfload/internal/loadchar"
	"bioperfload/internal/pipeline"
	"bioperfload/internal/platform"
	"bioperfload/internal/runner"
)

// Config configures a Server.
type Config struct {
	// Session is the shared-artifact engine every job runs over. nil
	// creates a fresh GOMAXPROCS-wide session.
	Session *runner.Session
	// QueueDepth bounds the number of admitted-but-not-started jobs;
	// a full queue engages the overload ladder (forward, degrade,
	// then 429). Default 64.
	QueueDepth int
	// ShedReserve is the extra queue capacity only shed-degraded
	// fast-tier jobs may use. Default QueueDepth/4 (min 1).
	ShedReserve int
	// Workers is the job-executor pool width. Jobs themselves fan out
	// further through the Session's simulation pool. Default 4.
	Workers int
	// JobTimeout caps any single job's run time; requests may ask for
	// less via timeout_ms but never more. 0 = no server-wide cap.
	JobTimeout time.Duration
	// Cluster is this node's fleet view (nil = single node). Wiring
	// the same cluster into the Session (SetRemote) is the caller's
	// job; the service only uses it for forwarding, peer health, and
	// metrics.
	Cluster *cluster.Cluster
	// Shed selects the active overload-ladder rungs. The zero value
	// disables both (plain 429 on saturation); cmd/bioperfd parses
	// -shed-policy and defaults to the full ladder.
	Shed ShedPolicy
}

// Server owns the queue, the metrics registry, and the HTTP routes.
// Create with New, serve via Handler, stop with Shutdown.
type Server struct {
	cfg           Config
	session       *runner.Session
	queue         *queue
	metrics       *Metrics
	mux           *http.ServeMux
	started       time.Time
	forwardClient *http.Client
}

// New creates a Server and starts its worker pool.
func New(cfg Config) *Server {
	if cfg.Session == nil {
		cfg.Session = runner.NewSession(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.ShedReserve <= 0 {
		cfg.ShedReserve = cfg.QueueDepth / 4
		if cfg.ShedReserve < 1 {
			cfg.ShedReserve = 1
		}
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	s := &Server{
		cfg:     cfg,
		session: cfg.Session,
		metrics: NewMetrics(),
		mux:     http.NewServeMux(),
		started: time.Now(),
		// Forwarded requests may legitimately wait on a cold
		// simulation; the caller's request context, not a client
		// timeout, bounds them.
		forwardClient: &http.Client{},
	}
	s.queue = newQueue(cfg.QueueDepth, cfg.ShedReserve, cfg.Workers, cfg.JobTimeout, s.exec, s.jobDone)

	if s.session.Store() != nil {
		s.registerPeerRoutes()
	}
	s.mux.Handle("POST /v1/characterize", s.instrument("characterize", s.handleCharacterize))
	s.mux.Handle("POST /v1/evaluate", s.instrument("evaluate", s.handleEvaluate))
	s.mux.Handle("POST /v1/sweep", s.instrument("sweep", s.handleSweep))
	s.mux.Handle("GET /v1/jobs/{id}", s.instrument("job", s.handleJob))
	s.mux.Handle("GET /v1/jobs/{id}/events", s.instrument("events", s.handleJobEvents))
	s.mux.Handle("GET /healthz", s.instrument("healthz", s.handleHealthz))
	s.mux.Handle("GET /metrics", http.HandlerFunc(s.handleMetrics))
	return s
}

// Handler returns the HTTP handler for the API.
func (s *Server) Handler() http.Handler { return s.mux }

// Session exposes the underlying shared-artifact engine (tests read
// its cache counters to prove deduplication).
func (s *Server) Session() *runner.Session { return s.session }

// Metrics exposes the telemetry registry.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Shutdown stops admitting jobs and drains the queue; when ctx
// expires first, in-flight simulations are canceled. It does not stop
// an enclosing http.Server — callers shut that down alongside.
func (s *Server) Shutdown(ctx context.Context) error { return s.queue.shutdown(ctx) }

func (s *Server) jobDone(j *Job) {
	s.metrics.ObserveJob(j.Kind, j.Status(), j.Duration())
}

// --- request / result documents ---

// CharacterizeRequest is the POST /v1/characterize body.
type CharacterizeRequest struct {
	Program string `json:"program"`
	Size    string `json:"size,omitempty"` // test|classB|classC (default classB)
	Hot     int    `json:"hot,omitempty"`  // hot loads in the report (default 6)
	// Accuracy selects the characterization tier: "exact" (default —
	// the full committed stream) or "sampled" (SimPoint-style phase
	// analysis: cluster fixed-size intervals, simulate one
	// representative per phase, extrapolate by cluster weight).
	Accuracy  string `json:"accuracy,omitempty"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"` // per-job timeout
	Wait      bool   `json:"wait,omitempty"`       // block until the job finishes
}

// EvaluateRequest is the POST /v1/evaluate body.
type EvaluateRequest struct {
	Program     string `json:"program"`
	Platform    string `json:"platform"`
	Size        string `json:"size,omitempty"`
	Transformed bool   `json:"transformed,omitempty"`
	// Fidelity selects the timing tier: "fast" (default — the
	// validated scoreboard approximation) or "full" (the exact
	// paper-reproduction pipeline model, about 10x slower).
	Fidelity  string `json:"fidelity,omitempty"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
	Wait      bool   `json:"wait,omitempty"`
}

// SweepRequest is the POST /v1/sweep body: one job that fans a
// characterize or evaluate request across programs (and platforms)
// on the Session's simulation pool.
type SweepRequest struct {
	Kind      string   `json:"kind"`                // characterize|evaluate
	Programs  []string `json:"programs,omitempty"`  // default: all nine (characterize) / the six transformed (evaluate)
	Platforms []string `json:"platforms,omitempty"` // evaluate only; default: all four
	Size      string   `json:"size,omitempty"`
	Hot       int      `json:"hot,omitempty"`
	Fidelity  string   `json:"fidelity,omitempty"` // evaluate only; fast (default) | full
	Accuracy  string   `json:"accuracy,omitempty"` // characterize only; exact (default) | sampled
	TimeoutMS int64    `json:"timeout_ms,omitempty"`
	Wait      bool     `json:"wait,omitempty"`
}

// SubmitResponse acknowledges an async job submission (202).
type SubmitResponse struct {
	JobID   string `json:"job_id"`
	Status  Status `json:"status"`
	Deduped bool   `json:"deduped"` // joined an identical in-flight job
}

// MixView is the instruction-mix slice of a characterize result.
type MixView struct {
	LoadPct       float64 `json:"load_pct"`
	StorePct      float64 `json:"store_pct"`
	CondBranchPct float64 `json:"cond_branch_pct"`
	OtherPct      float64 `json:"other_pct"`
	FPPct         float64 `json:"fp_pct"`
}

// CacheView is the Table 2 slice of a characterize result (load miss
// rates through the modeled hierarchy).
type CacheView struct {
	L1LocalPct float64 `json:"l1_local_miss_pct"`
	L2LocalPct float64 `json:"l2_local_miss_pct"`
	OverallPct float64 `json:"overall_miss_pct"`
	AMAT       float64 `json:"amat_cycles"`
}

// SequencesView is the Table 4 slice of a characterize result.
type SequencesView struct {
	LoadToBranchPct        float64 `json:"load_to_branch_pct"`
	FedBranchMispredictPct float64 `json:"fed_branch_mispredict_pct"`
	LoadAfterHardBranchPct float64 `json:"load_after_hard_branch_pct"`
	OverallMispredictPct   float64 `json:"overall_mispredict_pct"`
}

// HotLoadView is one Table 5-style row of a characterize result.
type HotLoadView struct {
	PC               int32   `json:"pc"`
	FrequencyPct     float64 `json:"frequency_pct"`
	L1MissPct        float64 `json:"l1_miss_pct"`
	BranchMispredPct float64 `json:"branch_mispredict_pct"`
	Func             string  `json:"func"`
	File             string  `json:"file"`
	Line             int32   `json:"line"`
}

// CharacterizeResult is one program's full characterization payload.
// Report is the canonical profile text, byte-equivalent to
// `cmd/bioperf -profile` (both render through loadchar.RenderProfile).
type CharacterizeResult struct {
	Program       string        `json:"program"`
	Size          string        `json:"size"`
	Accuracy      string        `json:"accuracy,omitempty"` // exact | sampled
	Source        string        `json:"source,omitempty"`   // serving tier (cold|snapshot|replay|peer|sampled)
	Instructions  uint64        `json:"instructions"`
	Mix           MixView       `json:"mix"`
	StaticLoads   int           `json:"static_loads"`
	CoverageTop80 float64       `json:"coverage_top80_pct"`
	Cache         CacheView     `json:"cache"`
	Sequences     SequencesView `json:"sequences"`
	HotLoads      []HotLoadView `json:"hot_loads"`
	Report        string        `json:"report"`
}

// EvaluateResult is one timing run's payload.
type EvaluateResult struct {
	Program       string  `json:"program"`
	Platform      string  `json:"platform"`
	Size          string  `json:"size"`
	Transformed   bool    `json:"transformed"`
	Fidelity      string  `json:"fidelity"`
	Instructions  uint64  `json:"instructions"`
	Cycles        uint64  `json:"cycles"`
	IPC           float64 `json:"ipc"`
	CondBranches  uint64  `json:"cond_branches"`
	MispredictPct float64 `json:"mispredict_pct"`
	Loads         uint64  `json:"loads"`
	AMAT          float64 `json:"amat_cycles"`
	L1Hits        uint64  `json:"l1_hits"`
	L2Hits        uint64  `json:"l2_hits"`
	MemHits       uint64  `json:"mem_hits"`
}

// SweepEvaluateItem is one program x platform cell of an evaluate
// sweep: both variants plus the speedup, like a Table 8 cell.
type SweepEvaluateItem struct {
	Program     string  `json:"program"`
	Platform    string  `json:"platform"`
	CyclesOrig  uint64  `json:"cycles_original"`
	CyclesTrans uint64  `json:"cycles_transformed"`
	SpeedupPct  float64 `json:"speedup_pct"`
}

// SweepResult is a sweep job's payload.
type SweepResult struct {
	Kind         string               `json:"kind"`
	Size         string               `json:"size"`
	Fidelity     string               `json:"fidelity,omitempty"` // evaluate sweeps only
	Accuracy     string               `json:"accuracy,omitempty"` // characterize sweeps only
	Characterize []CharacterizeResult `json:"characterize,omitempty"`
	Evaluate     []SweepEvaluateItem  `json:"evaluate,omitempty"`
}

// --- resolved job specs ---

type charSpec struct {
	prog *bio.Program
	sz   bio.Size
	hot  int
	acc  runner.Accuracy
}

type evalSpec struct {
	prog        *bio.Program
	plat        platform.Platform
	sz          bio.Size
	transformed bool
	fid         pipeline.Fidelity
}

type sweepSpec struct {
	kind  string
	progs []*bio.Program
	plats []platform.Platform
	sz    bio.Size
	hot   int
	fid   pipeline.Fidelity
	acc   runner.Accuracy
}

func parseSizeDefault(s string) (bio.Size, error) {
	switch s {
	case "", "classB", "b", "B":
		return bio.SizeB, nil
	case "test":
		return bio.SizeTest, nil
	case "classC", "c", "C":
		return bio.SizeC, nil
	}
	return 0, fmt.Errorf("unknown size %q (test|classB|classC)", s)
}

// parseFidelityDefault resolves a request's fidelity field. Unlike
// pipeline.ParseFidelity (where empty means the zero value, full), an
// absent field here selects the FAST tier: the service exists to
// answer interactively, and the scoreboard's validated ratios are the
// product it serves; callers wanting the exact paper numbers opt in
// with "full".
func parseFidelityDefault(s string) (pipeline.Fidelity, error) {
	if s == "" {
		return pipeline.FidelityFast, nil
	}
	return pipeline.ParseFidelity(s)
}

// --- executors ---

func (s *Server) exec(ctx context.Context, j *Job) (any, error) {
	switch spec := j.spec.(type) {
	case charSpec:
		return s.runCharacterize(ctx, j, spec)
	case evalSpec:
		return s.runEvaluate(ctx, j, spec)
	case sweepSpec:
		return s.runSweep(ctx, j, spec)
	}
	return nil, fmt.Errorf("service: unknown job spec %T", j.spec)
}

func (s *Server) runCharacterize(ctx context.Context, j *Job, spec charSpec) (any, error) {
	j.Event("characterizing %s at %s (%s)", spec.prog.Name, spec.sz, spec.acc)
	prof, err := s.session.CharacterizeAccuracy(ctx, spec.prog, spec.sz, spec.acc)
	if err != nil {
		return nil, err
	}
	j.Event("simulated %d instructions", prof.Instructions)
	s.metrics.ObserveServe(canonicalCharKey(spec.prog.Name, spec.sz, spec.acc), prof.Source)
	return characterizeResult(prof, spec.sz, spec.hot, spec.acc), nil
}

// canonicalCharKey names one characterization independent of report
// options (hot count, wait, timeout) — the identity the hot-key
// tracker aggregates serves under.
func canonicalCharKey(prog string, sz bio.Size, acc runner.Accuracy) string {
	return fmt.Sprintf("%s|%s|%s", prog, sz, acc)
}

func characterizeResult(prof *runner.Profile, sz bio.Size, hot int, acc runner.Accuracy) CharacterizeResult {
	a := prof.Analysis
	m := a.Mix()
	c := a.CacheReport()
	sq := a.Sequences()
	res := CharacterizeResult{
		Program:      prof.Name,
		Size:         sz.String(),
		Accuracy:     string(acc),
		Source:       prof.Source,
		Instructions: prof.Instructions,
		Mix: MixView{
			LoadPct: m.LoadPct, StorePct: m.StorePct,
			CondBranchPct: m.BranchPct, OtherPct: m.OtherPct,
			FPPct: 100 * m.FPFraction,
		},
		StaticLoads:   a.StaticLoadCount(),
		CoverageTop80: 100 * a.CoverageAt(80),
		Cache: CacheView{
			L1LocalPct: 100 * c.L1Local, L2LocalPct: 100 * c.L2Local,
			OverallPct: 100 * c.Overall, AMAT: c.AMAT,
		},
		Sequences: SequencesView{
			LoadToBranchPct:        sq.LoadToBranchPct,
			FedBranchMispredictPct: 100 * sq.FedBranchMispredictRate,
			LoadAfterHardBranchPct: sq.LoadAfterHardBranchPct,
			OverallMispredictPct:   100 * sq.OverallMispredictRate,
		},
		Report: loadchar.RenderProfile(prof.Name, sz.String(), a, hot),
	}
	for _, h := range a.HotLoads(hot) {
		res.HotLoads = append(res.HotLoads, HotLoadView{
			PC: h.PC, FrequencyPct: 100 * h.Frequency,
			L1MissPct: 100 * h.L1MissRate, BranchMispredPct: 100 * h.BranchMispred,
			Func: h.Func, File: h.File, Line: h.Line,
		})
	}
	return res
}

func (s *Server) runEvaluate(ctx context.Context, j *Job, spec evalSpec) (any, error) {
	j.Event("timing %s (transformed=%v) on %s at %s, %s tier",
		spec.prog.Name, spec.transformed, spec.plat.Name, spec.sz, spec.fid)
	st, err := s.session.Evaluate(ctx, spec.prog, spec.plat.WithFidelity(spec.fid), spec.sz, spec.transformed)
	if err != nil {
		return nil, err
	}
	j.Event("retired %d instructions in %d cycles", st.Instructions, st.Cycles)
	return evaluateResult(spec, st), nil
}

func evaluateResult(spec evalSpec, st pipeline.Stats) EvaluateResult {
	return EvaluateResult{
		Program: spec.prog.Name, Platform: spec.plat.Name,
		Size: spec.sz.String(), Transformed: spec.transformed,
		Fidelity:     spec.fid.String(),
		Instructions: st.Instructions, Cycles: st.Cycles, IPC: st.IPC(),
		CondBranches: st.CondBranches, MispredictPct: 100 * st.MispredictRate(),
		Loads: st.Loads, AMAT: st.AMAT(),
		L1Hits: st.L1Hits, L2Hits: st.L2Hits, MemHits: st.MemHits,
	}
}

func (s *Server) runSweep(ctx context.Context, j *Job, spec sweepSpec) (any, error) {
	out := SweepResult{Kind: spec.kind, Size: spec.sz.String()}
	if spec.kind == "characterize" {
		out.Accuracy = string(spec.acc)
	}
	var completed atomic.Int64
	switch spec.kind {
	case "characterize":
		j.Event("sweeping characterization across %d programs at %s (%s)", len(spec.progs), spec.sz, spec.acc)
		results := make([]CharacterizeResult, len(spec.progs))
		err := s.session.ForEach(ctx, len(spec.progs), func(i int) error {
			prof, err := s.session.CharacterizeAccuracy(ctx, spec.progs[i], spec.sz, spec.acc)
			if err != nil {
				return err
			}
			s.metrics.ObserveServe(canonicalCharKey(prof.Name, spec.sz, spec.acc), prof.Source)
			results[i] = characterizeResult(prof, spec.sz, spec.hot, spec.acc)
			j.Event("%d/%d: %s done", completed.Add(1), len(spec.progs), prof.Name)
			return nil
		})
		if err != nil {
			return nil, err
		}
		out.Characterize = results
	case "evaluate":
		out.Fidelity = spec.fid.String()
		nCells := len(spec.progs) * len(spec.plats)
		j.Event("sweeping %d programs x %d platforms (original and transformed) at %s, %s tier",
			len(spec.progs), len(spec.plats), spec.sz, spec.fid)
		orig := make([]uint64, nCells)
		trans := make([]uint64, nCells)
		err := s.session.ForEach(ctx, nCells*2, func(k int) error {
			i, transformed := k/2, k%2 == 1
			p := spec.progs[i/len(spec.plats)]
			plat := spec.plats[i%len(spec.plats)]
			st, err := s.session.Evaluate(ctx, p, plat.WithFidelity(spec.fid), spec.sz, transformed)
			if err != nil {
				return err
			}
			if transformed {
				trans[i] = st.Cycles
			} else {
				orig[i] = st.Cycles
			}
			j.Event("%d/%d: %s on %s (transformed=%v) done",
				completed.Add(1), nCells*2, p.Name, plat.Name, transformed)
			return nil
		})
		if err != nil {
			return nil, err
		}
		for i := 0; i < nCells; i++ {
			item := SweepEvaluateItem{
				Program:    spec.progs[i/len(spec.plats)].Name,
				Platform:   spec.plats[i%len(spec.plats)].Name,
				CyclesOrig: orig[i], CyclesTrans: trans[i],
			}
			if trans[i] > 0 {
				item.SpeedupPct = 100 * (float64(orig[i])/float64(trans[i]) - 1)
			}
			out.Evaluate = append(out.Evaluate, item)
		}
	default:
		return nil, fmt.Errorf("service: unknown sweep kind %q", spec.kind)
	}
	return out, nil
}

// --- HTTP handlers ---

type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("invalid request body: %w", err)
	}
	// One JSON document per request: trailing data is a malformed
	// request (a concatenated second document would silently be
	// ignored otherwise).
	if dec.More() {
		return fmt.Errorf("invalid request body: unexpected data after JSON document")
	}
	return nil
}

// submission carries everything the admission path needs: the job
// itself, the original request document (re-marshaled when the
// overload ladder forwards to the key's primary), and an optional
// degrade rewrite producing the fast-tier equivalent of a
// full-fidelity timing job.
type submission struct {
	kind      string
	key       string
	spec      any
	timeoutMS int64
	wait      bool
	body      any                  // original request document, for forwarding
	degrade   func() (string, any) // fast-tier (key, spec); nil = not degradable
}

// submit runs the shared admission path: enqueue (or dedupe), then
// either acknowledge with 202 or, for wait=true, block until the job
// finishes and return its full document. A saturated queue walks the
// overload ladder (forward to primary, degrade to the fast tier on
// the shed reserve, then 429) instead of rejecting outright.
func (s *Server) submit(w http.ResponseWriter, r *http.Request, sub submission) {
	var timeout time.Duration
	if sub.timeoutMS > 0 {
		timeout = time.Duration(sub.timeoutMS) * time.Millisecond
	}
	job, deduped, err := s.queue.submit(sub.kind, sub.key, sub.spec, timeout, false)
	if errors.Is(err, ErrQueueFull) {
		job, deduped, err = s.shed(w, r, sub, timeout)
		if job == nil && err == nil {
			return // forwarded; response already written
		}
	}
	switch {
	case errors.Is(err, ErrQueueFull):
		s.metrics.ObserveShed("reject")
		writeJSON(w, http.StatusTooManyRequests, apiError{Error: err.Error()})
		return
	case errors.Is(err, ErrShuttingDown):
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: err.Error()})
		return
	case err != nil:
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
		return
	}
	wait := sub.wait
	if !wait {
		writeJSON(w, http.StatusAccepted, SubmitResponse{JobID: job.ID, Status: job.Status(), Deduped: deduped})
		return
	}
	select {
	case <-job.Done():
		writeJSON(w, http.StatusOK, job.View())
	case <-r.Context().Done():
		// Client went away; the job keeps running for other waiters.
	}
}

// shed walks the overload ladder for a submission the queue refused.
// Rung 1 proxies to the key's primary (a nil job with nil error means
// the forward answered and the response is already written). Rung 2
// re-admits a degraded fast-tier variant using the shed reserve,
// marking the response with HeaderDegraded. Falling off the ladder
// returns ErrQueueFull and the caller 429s.
func (s *Server) shed(w http.ResponseWriter, r *http.Request, sub submission, timeout time.Duration) (*Job, bool, error) {
	if sub.body != nil {
		if body, err := json.Marshal(sub.body); err == nil {
			if s.shedForward(w, r, sub.key, body) {
				return nil, false, nil
			}
		}
	}
	if s.cfg.Shed.Degrade && sub.degrade != nil {
		key, spec := sub.degrade()
		job, deduped, err := s.queue.submit(sub.kind, key, spec, timeout, true)
		if err == nil {
			s.metrics.ObserveShed("degrade")
			w.Header().Set(HeaderDegraded, "fast")
			return job, deduped, nil
		}
	}
	return nil, false, ErrQueueFull
}

func (s *Server) handleCharacterize(w http.ResponseWriter, r *http.Request) {
	var req CharacterizeRequest
	if err := decodeBody(r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	prog, err := bio.ByName(req.Program)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	sz, err := parseSizeDefault(req.Size)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	acc, err := runner.ParseAccuracy(req.Accuracy)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	hot := req.Hot
	if hot <= 0 {
		hot = 6
	}
	s.metrics.ObserveAccuracy("characterize", string(acc))
	key := fmt.Sprintf("characterize|%s|%s|hot=%d|acc=%s", prog.Name, sz, hot, acc)
	s.submit(w, r, submission{
		kind: "characterize", key: key,
		spec:      charSpec{prog: prog, sz: sz, hot: hot, acc: acc},
		timeoutMS: req.TimeoutMS, wait: req.Wait, body: req,
	})
}

func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	var req EvaluateRequest
	if err := decodeBody(r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	prog, err := bio.ByName(req.Program)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	plat, err := platform.ByName(req.Platform)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	sz, err := parseSizeDefault(req.Size)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	fid, err := parseFidelityDefault(req.Fidelity)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	s.metrics.ObserveTiming("evaluate", fid.String())
	spec := evalSpec{prog: prog, plat: plat, sz: sz, transformed: req.Transformed, fid: fid}
	sub := submission{
		kind: "evaluate", key: evalKey(spec), spec: spec,
		timeoutMS: req.TimeoutMS, wait: req.Wait, body: req,
	}
	if spec.fid == pipeline.FidelityFull {
		sub.degrade = func() (string, any) {
			fast := spec
			fast.fid = pipeline.FidelityFast
			return evalKey(fast), fast
		}
	}
	s.submit(w, r, sub)
}

// evalKey is the canonical singleflight key for a resolved evaluate
// spec — also the key the cluster ring hashes when picking a primary.
func evalKey(spec evalSpec) string {
	return fmt.Sprintf("evaluate|%s|%s|%s|transformed=%v|fid=%s",
		spec.prog.Name, spec.plat.Name, spec.sz, spec.transformed, spec.fid)
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := decodeBody(r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	sz, err := parseSizeDefault(req.Size)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	spec := sweepSpec{kind: req.Kind, sz: sz, hot: req.Hot}
	if spec.hot <= 0 {
		spec.hot = 6
	}
	switch req.Kind {
	case "characterize":
		if req.Fidelity != "" {
			err = fmt.Errorf("fidelity applies to evaluate sweeps only")
			break
		}
		spec.acc, err = runner.ParseAccuracy(req.Accuracy)
		if err == nil {
			spec.progs, err = resolvePrograms(req.Programs, bio.All())
		}
	case "evaluate":
		if req.Accuracy != "" {
			err = fmt.Errorf("accuracy applies to characterize sweeps only")
			break
		}
		spec.fid, err = parseFidelityDefault(req.Fidelity)
		if err == nil {
			spec.progs, err = resolvePrograms(req.Programs, bio.Transformed())
		}
		if err == nil {
			spec.plats, err = resolvePlatforms(req.Platforms)
		}
	default:
		err = fmt.Errorf("unknown sweep kind %q (characterize|evaluate)", req.Kind)
	}
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	if req.Kind == "evaluate" {
		s.metrics.ObserveTiming("sweep", spec.fid.String())
	} else {
		s.metrics.ObserveAccuracy("sweep", string(spec.acc))
	}
	sub := submission{
		kind: "sweep", key: sweepKey(spec), spec: spec,
		timeoutMS: req.TimeoutMS, wait: req.Wait, body: req,
	}
	if req.Kind == "evaluate" && spec.fid == pipeline.FidelityFull {
		sub.degrade = func() (string, any) {
			fast := spec
			fast.fid = pipeline.FidelityFast
			return sweepKey(fast), fast
		}
	}
	s.submit(w, r, sub)
}

// sweepKey is the canonical singleflight key for a resolved sweep
// spec — also the key the cluster ring hashes when picking a primary.
func sweepKey(spec sweepSpec) string {
	names := make([]string, len(spec.progs))
	for i, p := range spec.progs {
		names[i] = p.Name
	}
	platNames := make([]string, len(spec.plats))
	for i, p := range spec.plats {
		platNames[i] = p.Name
	}
	return fmt.Sprintf("sweep|%s|%s|hot=%d|fid=%s|acc=%s|progs=%s|plats=%s",
		spec.kind, spec.sz, spec.hot, spec.fid, spec.acc, strings.Join(names, ","), strings.Join(platNames, ","))
}

// resolvePrograms maps names to programs, defaulting to def and
// keeping the paper's canonical order for named subsets.
func resolvePrograms(names []string, def []*bio.Program) ([]*bio.Program, error) {
	if len(names) == 0 {
		return def, nil
	}
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	out := make([]*bio.Program, 0, len(sorted))
	for _, n := range sorted {
		p, err := bio.ByName(n)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

func resolvePlatforms(names []string) ([]platform.Platform, error) {
	if len(names) == 0 {
		return platform.All(), nil
	}
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	out := make([]platform.Platform, 0, len(sorted))
	for _, n := range sorted {
		p, err := platform.ByName(n)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j := s.queue.get(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown job " + r.PathValue("id")})
		return
	}
	writeJSON(w, http.StatusOK, j.View())
}

// handleJobEvents streams the job's progress log as NDJSON, one Event
// per line, ending after the terminal event once the job finishes.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j := s.queue.get(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown job " + r.PathValue("id")})
		return
	}
	j.Subscribe()
	defer j.Unsubscribe()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	next := 0
	for {
		// A hung-up client must unsubscribe promptly even when events
		// keep flowing (the select below only runs while waiting).
		if r.Context().Err() != nil {
			return
		}
		evs, terminal, changed := j.EventsSince(next)
		for _, ev := range evs {
			if err := enc.Encode(ev); err != nil {
				return
			}
		}
		next += len(evs)
		if flusher != nil {
			flusher.Flush()
		}
		if terminal && len(evs) == 0 {
			return
		}
		if terminal {
			// Drain any events appended after the terminal one on the
			// next loop iteration, then exit.
			continue
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}

// HealthResponse is the GET /healthz document.
type HealthResponse struct {
	Status        string            `json:"status"`
	UptimeSeconds float64           `json:"uptime_seconds"`
	QueueDepth    int               `json:"queue_depth"`
	Session       runner.Stats      `json:"session"`
	ServeSources  map[string]uint64 `json:"serve_sources"`
	HotKeys       []HotKeyView      `json:"hot_keys,omitempty"` // top-10 most-served characterizations
	Cluster       *ClusterHealth    `json:"cluster,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:        "ok",
		UptimeSeconds: time.Since(s.started).Seconds(),
		QueueDepth:    s.queue.depth(),
		Session:       s.session.Stats(),
		ServeSources:  s.serveSources(),
		HotKeys:       s.metrics.HotKeys(10),
		Cluster:       s.clusterHealth(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.WritePrometheus(w)
	st := s.session.Stats()
	fmt.Fprintln(w, "# HELP bioperfd_queue_depth Jobs admitted but not yet started.")
	fmt.Fprintln(w, "# TYPE bioperfd_queue_depth gauge")
	fmt.Fprintf(w, "bioperfd_queue_depth %d\n", s.queue.depth())
	fmt.Fprintln(w, "# HELP bioperfd_event_subscribers Live NDJSON event-stream consumers.")
	fmt.Fprintln(w, "# TYPE bioperfd_event_subscribers gauge")
	fmt.Fprintf(w, "bioperfd_event_subscribers %d\n", s.queue.subscribers())
	fmt.Fprintln(w, "# HELP bioperfd_session_counters Shared-artifact session cache counters.")
	fmt.Fprintln(w, "# TYPE bioperfd_session_compiles counter")
	fmt.Fprintf(w, "bioperfd_session_compiles %d\n", st.Compiles)
	fmt.Fprintln(w, "# TYPE bioperfd_session_compile_hits counter")
	fmt.Fprintf(w, "bioperfd_session_compile_hits %d\n", st.CompileHits)
	fmt.Fprintln(w, "# TYPE bioperfd_session_runs counter")
	fmt.Fprintf(w, "bioperfd_session_runs %d\n", st.Runs)
	fmt.Fprintln(w, "# TYPE bioperfd_session_characterize_hits counter")
	fmt.Fprintf(w, "bioperfd_session_characterize_hits %d\n", st.CharacterizeHits)
	fmt.Fprintln(w, "# TYPE bioperfd_session_replay_runs counter")
	fmt.Fprintf(w, "bioperfd_session_replay_runs %d\n", st.ReplayRuns)
	fmt.Fprintln(w, "# TYPE bioperfd_session_replay_serial_fallbacks counter")
	fmt.Fprintf(w, "bioperfd_session_replay_serial_fallbacks %d\n", st.ReplaySerialFallbacks)
	if len(st.ReplayRunsByVersion) > 0 {
		fmt.Fprintln(w, "# HELP bioperfd_session_replay_runs_by_version Replay serves split by on-disk trace format version.")
		fmt.Fprintln(w, "# TYPE bioperfd_session_replay_runs_by_version counter")
		versions := make([]string, 0, len(st.ReplayRunsByVersion))
		for v := range st.ReplayRunsByVersion {
			versions = append(versions, v)
		}
		sort.Strings(versions)
		for _, v := range versions {
			fmt.Fprintf(w, "bioperfd_session_replay_runs_by_version{version=%q} %d\n", v, st.ReplayRunsByVersion[v])
		}
	}
	fmt.Fprintln(w, "# TYPE bioperfd_session_profile_hits counter")
	fmt.Fprintf(w, "bioperfd_session_profile_hits %d\n", st.ProfileHits)
	fmt.Fprintln(w, "# TYPE bioperfd_session_peer_hits counter")
	fmt.Fprintf(w, "bioperfd_session_peer_hits %d\n", st.PeerHits)
	fmt.Fprintln(w, "# TYPE bioperfd_session_sampled_chars counter")
	fmt.Fprintf(w, "bioperfd_session_sampled_chars %d\n", st.SampledChars)
	fmt.Fprintln(w, "# TYPE bioperfd_session_sampled_hits counter")
	fmt.Fprintf(w, "bioperfd_session_sampled_hits %d\n", st.SampledHits)
	fmt.Fprintln(w, "# TYPE bioperfd_session_sampled_degrades counter")
	fmt.Fprintf(w, "bioperfd_session_sampled_degrades %d\n", st.SampledDegrades)
	sources := s.serveSources()
	fmt.Fprintln(w, "# HELP bioperfd_serve_source_total Characterizations answered, by serving tier.")
	fmt.Fprintln(w, "# TYPE bioperfd_serve_source_total counter")
	for _, src := range []string{"cold", "peer", "replay", "sampled", "snapshot"} {
		fmt.Fprintf(w, "bioperfd_serve_source_total{source=%q} %d\n", src, sources[src])
	}
	if c := s.cfg.Cluster; c != nil {
		cs := c.Stats()
		fmt.Fprintln(w, "# HELP bioperfd_peer_fetch_total Peer artifact fetch attempts by outcome.")
		fmt.Fprintln(w, "# TYPE bioperfd_peer_fetch_total counter")
		fmt.Fprintf(w, "bioperfd_peer_fetch_total{result=\"hit\"} %d\n", cs.FetchHits)
		fmt.Fprintf(w, "bioperfd_peer_fetch_total{result=\"miss\"} %d\n", cs.FetchMisses)
		fmt.Fprintf(w, "bioperfd_peer_fetch_total{result=\"error\"} %d\n", cs.FetchErrors)
		fmt.Fprintf(w, "bioperfd_peer_fetch_total{result=\"corrupt\"} %d\n", cs.FetchCorrupt)
		fmt.Fprintln(w, "# HELP bioperfd_replicate_total Write-through replication pushes by outcome.")
		fmt.Fprintln(w, "# TYPE bioperfd_replicate_total counter")
		fmt.Fprintf(w, "bioperfd_replicate_total{result=\"ok\"} %d\n", cs.Replicated)
		fmt.Fprintf(w, "bioperfd_replicate_total{result=\"error\"} %d\n", cs.ReplicateError)
	}
	if as := s.session.Store(); as != nil {
		ss := as.Stats()
		fmt.Fprintln(w, "# HELP bioperfd_store_counters Persistent artifact store statistics.")
		fmt.Fprintln(w, "# TYPE bioperfd_store_hits counter")
		fmt.Fprintf(w, "bioperfd_store_hits %d\n", ss.Hits)
		fmt.Fprintln(w, "# TYPE bioperfd_store_misses counter")
		fmt.Fprintf(w, "bioperfd_store_misses %d\n", ss.Misses)
		fmt.Fprintln(w, "# TYPE bioperfd_store_evictions counter")
		fmt.Fprintf(w, "bioperfd_store_evictions %d\n", ss.Evictions)
		fmt.Fprintln(w, "# TYPE bioperfd_store_entries gauge")
		fmt.Fprintf(w, "bioperfd_store_entries %d\n", ss.Entries)
		fmt.Fprintln(w, "# TYPE bioperfd_store_bytes_on_disk gauge")
		fmt.Fprintf(w, "bioperfd_store_bytes_on_disk %d\n", ss.BytesOnDisk)
	}
}

// statusWriter captures the status code for metrics and forwards
// Flush for streaming handlers.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.code = code
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (s *Server) instrument(route string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		s.metrics.ObserveRequest(route, sw.code, time.Since(start))
	})
}
