package service

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"bioperfload/internal/runner"
	"bioperfload/internal/simpoint"
)

// testSimPoint shrinks phase intervals so test-size runs span enough of
// them to cluster instead of degrading to exact.
var testSimPoint = simpoint.Config{IntervalSize: 16384, WarmupEvents: 4096}

func getBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: HTTP %d: %s", url, resp.StatusCode, body)
	}
	return body
}

// TestAccuracyValidation: malformed accuracy values are rejected with
// 400 before any job is admitted, and evaluate sweeps refuse the field
// outright (it only shapes characterizations).
func TestAccuracyValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Session: runner.NewSession(1)})
	cases := []struct {
		url  string
		req  map[string]any
		want string
	}{
		{"/v1/characterize", map[string]any{"program": "hmmsearch", "size": "test", "accuracy": "turbo"}, "unknown accuracy"},
		{"/v1/sweep", map[string]any{"kind": "characterize", "size": "test", "accuracy": "turbo"}, "unknown accuracy"},
		{"/v1/sweep", map[string]any{"kind": "evaluate", "size": "test", "accuracy": "sampled"}, "accuracy applies to characterize sweeps only"},
	}
	for _, c := range cases {
		resp, body := postJSON(t, ts.URL+c.url, c.req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s %v: HTTP %d, want 400: %s", c.url, c.req, resp.StatusCode, body)
		}
		if !strings.Contains(string(body), c.want) {
			t.Errorf("%s %v: body %s missing %q", c.url, c.req, body, c.want)
		}
	}
}

// TestSampledCharacterizeServes drives a sampled characterization
// end-to-end through the HTTP surface and checks every observability
// hook it is supposed to trip: the result document carries the
// accuracy and serving tier, /healthz lists the key among the hottest,
// and /metrics exports the accuracy, hot-key, and sampled-tier
// counters.
func TestSampledCharacterizeServes(t *testing.T) {
	sess := runner.NewSession(2)
	sess.SetSimPoint(testSimPoint)
	_, ts := newTestServer(t, Config{Session: sess, QueueDepth: 8, Workers: 2})

	var v struct {
		Status Status             `json:"status"`
		Result CharacterizeResult `json:"result"`
	}
	for i := 0; i < 2; i++ { // second request serves from the session memo
		resp, body := postJSON(t, ts.URL+"/v1/characterize",
			map[string]any{"program": "hmmsearch", "size": "test", "accuracy": "sampled", "wait": true})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("HTTP %d: %s", resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatal(err)
		}
		if v.Status != StatusDone {
			t.Fatalf("status %s: %s", v.Status, body)
		}
	}
	if v.Result.Accuracy != "sampled" || v.Result.Source != "sampled" {
		t.Errorf("result accuracy=%q source=%q, want sampled/sampled", v.Result.Accuracy, v.Result.Source)
	}
	// An exact request for contrast: defaults to accuracy=exact.
	resp, body := postJSON(t, ts.URL+"/v1/characterize",
		map[string]any{"program": "hmmsearch", "size": "test", "wait": true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, body)
	}
	var ev struct {
		Result CharacterizeResult `json:"result"`
	}
	if err := json.Unmarshal(body, &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Result.Accuracy != "exact" || ev.Result.Source != "cold" {
		t.Errorf("exact result accuracy=%q source=%q, want exact/cold", ev.Result.Accuracy, ev.Result.Source)
	}

	var health HealthResponse
	if err := json.Unmarshal(getBody(t, ts.URL+"/healthz"), &health); err != nil {
		t.Fatal(err)
	}
	// One sampled computation; the repeat was a session-memo hit, which
	// counts as a characterize hit rather than a store-snapshot load.
	if health.Session.SampledChars != 1 || health.Session.CharacterizeHits != 1 {
		t.Errorf("session sampled counters %+v", health.Session)
	}
	if len(health.HotKeys) != 2 {
		t.Fatalf("hot keys = %+v, want 2 entries", health.HotKeys)
	}
	top := health.HotKeys[0]
	if top.Key != "hmmsearch|test|sampled" || top.Serves != 2 || top.LastSource != "sampled" {
		t.Errorf("hottest key %+v, want hmmsearch|test|sampled served twice from sampled", top)
	}
	if health.ServeSources["sampled"] != 1 {
		t.Errorf("serve_sources = %v, want sampled=1", health.ServeSources)
	}

	metrics := string(getBody(t, ts.URL+"/metrics"))
	for _, want := range []string{
		`bioperfd_accuracy_requests_total{kind="characterize",accuracy="sampled"} 2`,
		`bioperfd_accuracy_requests_total{kind="characterize",accuracy="exact"} 1`,
		`bioperfd_hot_key_serves_total{key="hmmsearch|test|sampled"} 2`,
		`bioperfd_hot_key_serves_total{key="hmmsearch|test|exact"} 1`,
		`bioperfd_serve_source_total{source="sampled"} 1`,
		"bioperfd_session_sampled_chars 1",
		"bioperfd_session_sampled_hits 0",
		"bioperfd_session_sampled_degrades 0",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestSampledSweepAccuracy runs a two-program characterize sweep at
// accuracy=sampled and verifies the per-program results carry the tier
// through, plus the sweep-kind accuracy counter.
func TestSampledSweepAccuracy(t *testing.T) {
	sess := runner.NewSession(2)
	sess.SetSimPoint(testSimPoint)
	_, ts := newTestServer(t, Config{Session: sess, QueueDepth: 8, Workers: 2})

	resp, body := postJSON(t, ts.URL+"/v1/sweep", map[string]any{
		"kind": "characterize", "size": "test", "accuracy": "sampled",
		"programs": []string{"hmmsearch", "predator"}, "wait": true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, body)
	}
	var v struct {
		Status Status      `json:"status"`
		Result SweepResult `json:"result"`
	}
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if v.Status != StatusDone {
		t.Fatalf("status %s: %s", v.Status, body)
	}
	if v.Result.Accuracy != "sampled" || len(v.Result.Characterize) != 2 {
		t.Fatalf("sweep result accuracy=%q with %d programs: %s", v.Result.Accuracy, len(v.Result.Characterize), body)
	}
	for _, r := range v.Result.Characterize {
		if r.Accuracy != "sampled" || r.Source != "sampled" {
			t.Errorf("%s: accuracy=%q source=%q, want sampled/sampled", r.Program, r.Accuracy, r.Source)
		}
	}
	metrics := string(getBody(t, ts.URL+"/metrics"))
	if want := `bioperfd_accuracy_requests_total{kind="sweep",accuracy="sampled"} 1`; !strings.Contains(metrics, want) {
		t.Errorf("metrics missing %q", want)
	}
}
