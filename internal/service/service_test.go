package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"bioperfload/internal/bio"
	"bioperfload/internal/loadchar"
	"bioperfload/internal/runner"
)

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// newTestServer builds a Server plus loopback HTTP listener. The
// returned Server's queue executor can be swapped before any request
// is submitted (tests that fake the executor do so immediately).
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// TestBackpressure429 fills one worker and a depth-1 queue with
// blocking jobs; the next submission must be rejected with 429, and
// releasing the worker must let everything finish.
func TestBackpressure429(t *testing.T) {
	s, ts := newTestServer(t, Config{Session: runner.NewSession(1), QueueDepth: 1, Workers: 1})
	release := make(chan struct{})
	started := make(chan struct{}, 4)
	s.queue.exec = func(ctx context.Context, j *Job) (any, error) {
		started <- struct{}{}
		<-release
		return "ok", nil
	}

	progs := bio.All()
	var ids []string
	submit := func(i int) {
		t.Helper()
		resp, body := postJSON(t, ts.URL+"/v1/characterize",
			map[string]any{"program": progs[i].Name, "size": "test"})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("job %d: got HTTP %d, want 202: %s", i, resp.StatusCode, body)
		}
		var sub SubmitResponse
		if err := json.Unmarshal(body, &sub); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, sub.JobID)
	}
	// Occupy the worker, wait until it is provably running, then fill
	// the single queue slot: the next submission must overflow.
	submit(0)
	<-started
	submit(1)

	resp, body := postJSON(t, ts.URL+"/v1/characterize",
		map[string]any{"program": progs[2].Name, "size": "test"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow: got HTTP %d, want 429: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "queue full") {
		t.Fatalf("429 body missing reason: %s", body)
	}

	close(release)
	for _, id := range ids {
		waitStatus(t, ts, id, StatusDone)
	}
}

func waitStatus(t *testing.T, ts *httptest.Server, id string, want Status) JobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var v JobView
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if v.Status == want {
			return v
		}
		if v.Status == StatusDone || v.Status == StatusFailed {
			t.Fatalf("job %s reached %s, want %s (error=%q)", id, v.Status, want, v.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck at %s, want %s", id, v.Status, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSingleflightDedup fires N concurrent identical characterize
// requests and proves — via the Session's cache counters — that they
// cost one compile and one simulation run between them.
func TestSingleflightDedup(t *testing.T) {
	sess := runner.NewSession(2)
	_, ts := newTestServer(t, Config{Session: sess, QueueDepth: 16, Workers: 4})

	const n = 8
	reports := make([]string, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := postJSON(t, ts.URL+"/v1/characterize",
				map[string]any{"program": "hmmsearch", "size": "test", "wait": true})
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("HTTP %d: %s", resp.StatusCode, body)
				return
			}
			var v struct {
				Status Status `json:"status"`
				Result struct {
					Report string `json:"report"`
				} `json:"result"`
			}
			if err := json.Unmarshal(body, &v); err != nil {
				errs[i] = err
				return
			}
			if v.Status != StatusDone {
				errs[i] = fmt.Errorf("status %s: %s", v.Status, body)
				return
			}
			reports[i] = v.Result.Report
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	for i := 1; i < n; i++ {
		if reports[i] != reports[0] {
			t.Fatalf("request %d returned a different report", i)
		}
	}
	st := sess.Stats()
	if st.Compiles != 1 {
		t.Fatalf("session compiled %d times for %d identical requests, want 1", st.Compiles, n)
	}
	if st.Runs != 1 {
		t.Fatalf("session simulated %d times for %d identical requests, want 1", st.Runs, n)
	}
}

// TestGracefulShutdownDrain verifies Shutdown lets queued jobs finish
// and that post-shutdown submissions get 503.
func TestGracefulShutdownDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{Session: runner.NewSession(1), QueueDepth: 8, Workers: 1})
	started := make(chan struct{})
	s.queue.exec = func(ctx context.Context, j *Job) (any, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		time.Sleep(20 * time.Millisecond)
		return "drained", nil
	}

	progs := bio.All()
	var ids []string
	for i := 0; i < 3; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/characterize",
			map[string]any{"program": progs[i].Name, "size": "test"})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("HTTP %d: %s", resp.StatusCode, body)
		}
		var sub SubmitResponse
		if err := json.Unmarshal(body, &sub); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, sub.JobID)
	}
	<-started // at least one job is running when we start draining

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	for _, id := range ids {
		v := waitStatus(t, ts, id, StatusDone)
		if v.Result != "drained" {
			t.Fatalf("job %s result %v after drain", id, v.Result)
		}
	}

	resp, body := postJSON(t, ts.URL+"/v1/characterize",
		map[string]any{"program": "hmmsearch", "size": "test"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown submit: got HTTP %d, want 503: %s", resp.StatusCode, body)
	}
}

// TestShutdownCancelsInflight verifies that when the drain budget
// expires, the base context is canceled and a blocked job fails
// instead of wedging shutdown forever.
func TestShutdownCancelsInflight(t *testing.T) {
	s, ts := newTestServer(t, Config{Session: runner.NewSession(1), QueueDepth: 8, Workers: 1})
	started := make(chan struct{})
	s.queue.exec = func(ctx context.Context, j *Job) (any, error) {
		close(started)
		<-ctx.Done() // hold until canceled
		return nil, ctx.Err()
	}
	resp, body := postJSON(t, ts.URL+"/v1/characterize",
		map[string]any{"program": "hmmsearch", "size": "test"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, body)
	}
	var sub SubmitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("shutdown error = %v, want deadline exceeded", err)
	}
	v := waitStatus(t, ts, sub.JobID, StatusFailed)
	if !strings.Contains(v.Error, "context canceled") {
		t.Fatalf("canceled job error = %q", v.Error)
	}
}

// TestJobTimeout runs a real class-B characterization under a timeout
// far below its simulation time and expects a failed job carrying the
// deadline error — proving cancellation reaches the simulator loop.
func TestJobTimeout(t *testing.T) {
	_, ts := newTestServer(t, Config{Session: runner.NewSession(1), QueueDepth: 4, Workers: 1})
	resp, body := postJSON(t, ts.URL+"/v1/characterize",
		map[string]any{"program": "hmmsearch", "size": "classB", "timeout_ms": 1, "wait": true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, body)
	}
	var v JobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if v.Status != StatusFailed {
		t.Fatalf("status %s, want failed: %s", v.Status, body)
	}
	if !strings.Contains(v.Error, "deadline exceeded") {
		t.Fatalf("error %q does not mention the deadline", v.Error)
	}
}

// TestGoldenReportMatchesCLI asserts the API's report field is
// byte-equivalent to the CLI -profile rendering for the same
// (program, size) — both paths share loadchar.RenderProfile over the
// same deterministic simulation.
func TestGoldenReportMatchesCLI(t *testing.T) {
	p, err := bio.ByName("hmmsearch")
	if err != nil {
		t.Fatal(err)
	}
	prof, err := runner.NewSession(1).Characterize(context.Background(), p, bio.SizeTest)
	if err != nil {
		t.Fatal(err)
	}
	want := loadchar.RenderProfile(p.Name, bio.SizeTest.String(), prof.Analysis, 6)

	_, ts := newTestServer(t, Config{Session: runner.NewSession(1)})
	resp, body := postJSON(t, ts.URL+"/v1/characterize",
		map[string]any{"program": "hmmsearch", "size": "test", "wait": true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, body)
	}
	var v struct {
		Status Status `json:"status"`
		Result struct {
			Report       string `json:"report"`
			Instructions uint64 `json:"instructions"`
		} `json:"result"`
	}
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if v.Status != StatusDone {
		t.Fatalf("status %s: %s", v.Status, body)
	}
	if v.Result.Report != want {
		t.Fatalf("API report differs from CLI rendering:\n--- API ---\n%s\n--- CLI ---\n%s",
			v.Result.Report, want)
	}
	if v.Result.Instructions != prof.Instructions {
		t.Fatalf("API instructions %d != CLI %d", v.Result.Instructions, prof.Instructions)
	}
}

// TestEventsStream reads the NDJSON progress stream of a finished job
// end to end.
func TestEventsStream(t *testing.T) {
	_, ts := newTestServer(t, Config{Session: runner.NewSession(1)})
	resp, body := postJSON(t, ts.URL+"/v1/characterize",
		map[string]any{"program": "hmmsearch", "size": "test", "wait": true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, body)
	}
	// The job ID is not in the waited view; list is not exposed, so
	// submit again (dedup or cache hit) without wait to learn an ID.
	resp, body = postJSON(t, ts.URL+"/v1/characterize",
		map[string]any{"program": "hmmsearch", "size": "test"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, body)
	}
	var sub SubmitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	waitStatus(t, ts, sub.JobID, StatusDone)

	evResp, err := http.Get(ts.URL + "/v1/jobs/" + sub.JobID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer evResp.Body.Close()
	if ct := evResp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	raw, err := io.ReadAll(evResp.Body)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) < 2 {
		t.Fatalf("expected at least running+done events, got %d lines: %s", len(lines), raw)
	}
	var last Event
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if last.Message != "done" {
		t.Fatalf("terminal event %q, want done", last.Message)
	}
}

// TestValidationAndRouting covers the 400/404 paths and the metrics
// and health endpoints.
func TestValidationAndRouting(t *testing.T) {
	_, ts := newTestServer(t, Config{Session: runner.NewSession(1)})

	resp, body := postJSON(t, ts.URL+"/v1/characterize",
		map[string]any{"program": "nonesuch"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown program: HTTP %d: %s", resp.StatusCode, body)
	}
	resp, body = postJSON(t, ts.URL+"/v1/characterize",
		map[string]any{"program": "hmmsearch", "size": "classZ"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown size: HTTP %d: %s", resp.StatusCode, body)
	}
	resp, body = postJSON(t, ts.URL+"/v1/evaluate",
		map[string]any{"program": "hmmsearch", "platform": "vax11"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown platform: HTTP %d: %s", resp.StatusCode, body)
	}
	resp, body = postJSON(t, ts.URL+"/v1/sweep", map[string]any{"kind": "everything"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown sweep kind: HTTP %d: %s", resp.StatusCode, body)
	}
	resp, body = postJSON(t, ts.URL+"/v1/characterize",
		map[string]any{"program": "hmmsearch", "bogus_field": 1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: HTTP %d: %s", resp.StatusCode, body)
	}

	getResp, err := http.Get(ts.URL + "/v1/jobs/j999999")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: HTTP %d", getResp.StatusCode)
	}

	getResp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health HealthResponse
	err = json.NewDecoder(getResp.Body).Decode(&health)
	getResp.Body.Close()
	if err != nil || health.Status != "ok" {
		t.Fatalf("healthz: %v %+v", err, health)
	}

	getResp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, err := io.ReadAll(getResp.Body)
	getResp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"bioperfd_http_requests_total",
		`route="characterize",code="400"`,
		"bioperfd_queue_depth",
		"bioperfd_session_compiles",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, metrics)
		}
	}
}

// TestEvaluateAndSweep exercises the evaluate and sweep kinds end to
// end at test size on a narrowed program/platform set.
func TestEvaluateAndSweep(t *testing.T) {
	_, ts := newTestServer(t, Config{Session: runner.NewSession(2)})

	resp, body := postJSON(t, ts.URL+"/v1/evaluate", map[string]any{
		"program": "hmmsearch", "platform": "alpha21264", "size": "test", "wait": true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("evaluate: HTTP %d: %s", resp.StatusCode, body)
	}
	var ev struct {
		Status Status         `json:"status"`
		Result EvaluateResult `json:"result"`
	}
	if err := json.Unmarshal(body, &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Status != StatusDone || ev.Result.Cycles == 0 || ev.Result.IPC <= 0 {
		t.Fatalf("evaluate result: %s", body)
	}

	resp, body = postJSON(t, ts.URL+"/v1/sweep", map[string]any{
		"kind": "evaluate", "programs": []string{"hmmsearch"},
		"platforms": []string{"alpha21264"}, "size": "test", "wait": true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: HTTP %d: %s", resp.StatusCode, body)
	}
	var sw struct {
		Status Status      `json:"status"`
		Result SweepResult `json:"result"`
	}
	if err := json.Unmarshal(body, &sw); err != nil {
		t.Fatal(err)
	}
	if sw.Status != StatusDone || len(sw.Result.Evaluate) != 1 {
		t.Fatalf("sweep result: %s", body)
	}
	cell := sw.Result.Evaluate[0]
	if cell.CyclesOrig == 0 || cell.CyclesTrans == 0 {
		t.Fatalf("sweep cell missing cycles: %+v", cell)
	}
	if cell.CyclesOrig != ev.Result.Cycles {
		t.Fatalf("sweep original cycles %d != evaluate cycles %d", cell.CyclesOrig, ev.Result.Cycles)
	}
}

// TestEventsSubscriberDrainOnDisconnect: NDJSON streaming clients that
// hang up mid-job must release their subscription promptly — while the
// job is still running — not when the terminal event finally arrives.
func TestEventsSubscriberDrainOnDisconnect(t *testing.T) {
	s, ts := newTestServer(t, Config{Session: runner.NewSession(1), Workers: 1, QueueDepth: 4})
	release := make(chan struct{})
	s.queue.exec = func(ctx context.Context, j *Job) (any, error) {
		// Keep the job alive and chatty so the streaming loop is
		// actively delivering events when clients disconnect.
		for i := 0; ; i++ {
			select {
			case <-release:
				return "ok", nil
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(2 * time.Millisecond):
				j.Event("tick %d", i)
			}
		}
	}
	resp, body := postJSON(t, ts.URL+"/v1/characterize",
		map[string]any{"program": "hmmsearch", "size": "test"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, body)
	}
	var sub SubmitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	j := s.queue.get(sub.JobID)
	if j == nil {
		t.Fatal("submitted job not found")
	}

	for i := 0; i < 3; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/jobs/"+sub.JobID+"/events", nil)
		if err != nil {
			t.Fatal(err)
		}
		evResp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		// Read at least one event so the stream is known-established,
		// then hang up.
		if _, err := bufio.NewReader(evResp.Body).ReadString('\n'); err != nil {
			t.Fatal(err)
		}
		cancel()
		evResp.Body.Close()
	}

	deadline := time.Now().Add(5 * time.Second)
	for s.queue.subscribers() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d subscribers still registered after all clients disconnected", s.queue.subscribers())
		}
		time.Sleep(2 * time.Millisecond)
	}
	// The drain happened while the job was still running — proving the
	// handler noticed the disconnect rather than waiting for "done".
	if st := j.Status(); st != StatusRunning {
		t.Fatalf("job reached %s before subscribers drained", st)
	}
	close(release)
	waitStatus(t, ts, sub.JobID, StatusDone)
	if n := s.queue.subscribers(); n != 0 {
		t.Fatalf("%d subscribers after job completion", n)
	}
}

// TestFidelityRoutingAndStrictDecode covers the timing-tier plumbing:
// the fidelity field routes to the right model (default fast), bad
// tiers and misplaced fields are rejected, a request body with
// trailing data is rejected, and the per-tier counter shows up in
// /metrics.
func TestFidelityRoutingAndStrictDecode(t *testing.T) {
	_, ts := newTestServer(t, Config{Session: runner.NewSession(1)})

	eval := func(extra map[string]any) EvaluateResult {
		t.Helper()
		req := map[string]any{
			"program": "hmmsearch", "platform": "alpha21264", "size": "test", "wait": true,
		}
		for k, v := range extra {
			req[k] = v
		}
		resp, body := postJSON(t, ts.URL+"/v1/evaluate", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("evaluate %v: HTTP %d: %s", extra, resp.StatusCode, body)
		}
		var ev struct {
			Status Status         `json:"status"`
			Result EvaluateResult `json:"result"`
		}
		if err := json.Unmarshal(body, &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Status != StatusDone {
			t.Fatalf("evaluate %v: %s", extra, body)
		}
		return ev.Result
	}

	def := eval(nil)
	if def.Fidelity != "fast" {
		t.Errorf("default fidelity = %q, want fast", def.Fidelity)
	}
	fast := eval(map[string]any{"fidelity": "fast"})
	full := eval(map[string]any{"fidelity": "full"})
	if fast.Fidelity != "fast" || full.Fidelity != "full" {
		t.Errorf("fidelity echoes: fast=%q full=%q", fast.Fidelity, full.Fidelity)
	}
	if fast.Cycles != def.Cycles {
		t.Errorf("explicit fast (%d cycles) differs from default (%d)", fast.Cycles, def.Cycles)
	}
	// Both tiers ride the same functional run: identical instruction
	// counts, different cycle estimates.
	if fast.Instructions != full.Instructions {
		t.Errorf("fast counted %d instructions, full %d", fast.Instructions, full.Instructions)
	}
	if fast.Cycles == full.Cycles {
		t.Errorf("fast and full both report %d cycles; tiers are not being routed", fast.Cycles)
	}

	// Rejection table: every malformed timing request must 400.
	rejects := []struct {
		name string
		url  string
		req  map[string]any
	}{
		{"bad evaluate fidelity", "/v1/evaluate",
			map[string]any{"program": "hmmsearch", "platform": "alpha21264", "fidelity": "approximate"}},
		{"bad sweep fidelity", "/v1/sweep",
			map[string]any{"kind": "evaluate", "fidelity": "approximate"}},
		{"fidelity on characterize sweep", "/v1/sweep",
			map[string]any{"kind": "characterize", "fidelity": "fast"}},
		{"unknown evaluate field", "/v1/evaluate",
			map[string]any{"program": "hmmsearch", "platform": "alpha21264", "fidelty": "fast"}},
	}
	for _, rc := range rejects {
		resp, body := postJSON(t, ts.URL+rc.url, rc.req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d: %s", rc.name, resp.StatusCode, body)
		}
	}

	// Trailing data after the JSON document is malformed.
	resp, err := http.Post(ts.URL+"/v1/evaluate", "application/json",
		strings.NewReader(`{"program":"hmmsearch","platform":"alpha21264"}{"again":true}`))
	if err != nil {
		t.Fatal(err)
	}
	trailBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("trailing JSON: HTTP %d: %s", resp.StatusCode, trailBody)
	}

	// The per-tier counters must appear in /metrics.
	mResp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(mResp.Body)
	mResp.Body.Close()
	for _, want := range []string{
		`bioperfd_timing_requests_total{kind="evaluate",fidelity="fast"} 2`,
		`bioperfd_timing_requests_total{kind="evaluate",fidelity="full"} 1`,
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
