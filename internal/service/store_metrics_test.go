package service

import (
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"

	"bioperfload/internal/runner"
	"bioperfload/internal/store"
)

// TestMetricsStoreCounters proves /metrics surfaces the artifact-store
// statistics next to the session cache counters, and that serving a
// characterization from a warm store moves the hit counter.
func TestMetricsStoreCounters(t *testing.T) {
	dir := t.TempDir()

	// Session 1: characterize cold, populating the store.
	st1, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	sess1 := runner.NewSessionWithStore(1, st1)
	_, ts1 := newTestServer(t, Config{Session: sess1, QueueDepth: 4, Workers: 1})
	resp, body := postJSON(t, ts1.URL+"/v1/characterize",
		map[string]any{"program": "hmmsearch", "size": "test", "wait": true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("characterize: HTTP %d: %s", resp.StatusCode, body)
	}
	ts1.Close()
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	// Session 2: same store directory — the request must be served warm
	// (from the persisted snapshot) and counted as store hits.
	st2, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	sess2 := runner.NewSessionWithStore(1, st2)
	_, ts2 := newTestServer(t, Config{Session: sess2, QueueDepth: 4, Workers: 1})
	defer ts2.Close()
	resp, body = postJSON(t, ts2.URL+"/v1/characterize",
		map[string]any{"program": "hmmsearch", "size": "test", "wait": true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm characterize: HTTP %d: %s", resp.StatusCode, body)
	}

	getResp, err := http.Get(ts2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, err := io.ReadAll(getResp.Body)
	getResp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(metrics)
	for _, want := range []string{
		"bioperfd_store_hits",
		"bioperfd_store_misses",
		"bioperfd_store_evictions",
		"bioperfd_store_entries",
		"bioperfd_store_bytes_on_disk",
		"bioperfd_session_profile_hits 1",
		"bioperfd_session_replay_runs 0",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}
	if regexp.MustCompile(`(?m)^bioperfd_store_hits 0$`).MatchString(text) {
		t.Fatalf("store hits not counted on warm serve:\n%s", text)
	}
	if st := sess2.Stats(); st.Runs != 0 {
		t.Fatalf("warm serve simulated: %+v", st)
	}
}

// TestMetricsWithoutStore keeps the no-store configuration clean: no
// bioperfd_store_* series are exported when no store is attached.
func TestMetricsWithoutStore(t *testing.T) {
	_, ts := newTestServer(t, Config{Session: runner.NewSession(1)})
	defer ts.Close()
	getResp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, err := io.ReadAll(getResp.Body)
	getResp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(metrics), "bioperfd_store_") {
		t.Fatalf("store series exported without a store:\n%s", metrics)
	}
	for _, want := range []string{"bioperfd_session_replay_runs", "bioperfd_session_profile_hits"} {
		if !strings.Contains(string(metrics), want) {
			t.Fatalf("%s counter missing:\n%s", want, metrics)
		}
	}
}
