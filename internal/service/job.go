package service

import (
	"fmt"
	"sync"
	"time"
)

// Status is a job's lifecycle state.
type Status string

// Job lifecycle states. A job moves queued → running → done|failed;
// there is no separate canceled state — a canceled or timed-out job
// fails with the context error in its Error field.
const (
	StatusQueued  Status = "queued"
	StatusRunning Status = "running"
	StatusDone    Status = "done"
	StatusFailed  Status = "failed"
)

// Event is one line of a job's progress log, streamed by
// GET /v1/jobs/{id}/events.
type Event struct {
	Seq     int       `json:"seq"`
	Time    time.Time `json:"time"`
	Message string    `json:"message"`
}

// Job is one queued unit of work. All fields behind mu; readers use
// View/EventsSince. The done channel closes exactly once on finish,
// and changed is swapped on every mutation so streamers can wait for
// news without polling.
type Job struct {
	ID   string
	Kind string
	Key  string // canonical request key (singleflight identity)

	// spec is the resolved, validated request the executor runs.
	spec any
	// timeout is the request's per-job limit (0 = server default).
	timeout time.Duration

	mu       sync.Mutex
	status   Status
	events   []Event
	result   any
	errMsg   string
	created  time.Time
	started  time.Time
	finished time.Time
	done     chan struct{}
	changed  chan struct{}
	subs     int
}

func newJob(id, kind, key string, spec any, timeout time.Duration) *Job {
	j := &Job{
		ID: id, Kind: kind, Key: key,
		spec:    spec,
		timeout: timeout,
		status:  StatusQueued,
		created: time.Now(),
		done:    make(chan struct{}),
		changed: make(chan struct{}),
	}
	return j
}

// signal wakes every waiter. Callers hold j.mu.
func (j *Job) signal() {
	close(j.changed)
	j.changed = make(chan struct{})
}

// Event appends a progress message and wakes streamers.
func (j *Job) Event(format string, args ...any) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.events = append(j.events, Event{
		Seq: len(j.events), Time: time.Now(), Message: fmt.Sprintf(format, args...),
	})
	j.signal()
}

func (j *Job) setRunning() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.status = StatusRunning
	j.started = time.Now()
	j.events = append(j.events, Event{Seq: len(j.events), Time: j.started, Message: "running"})
	j.signal()
}

func (j *Job) finish(result any, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.finished = time.Now()
	if err != nil {
		j.status = StatusFailed
		j.errMsg = err.Error()
		j.events = append(j.events, Event{Seq: len(j.events), Time: j.finished, Message: "failed: " + err.Error()})
	} else {
		j.status = StatusDone
		j.result = result
		j.events = append(j.events, Event{Seq: len(j.events), Time: j.finished, Message: "done"})
	}
	j.signal()
	close(j.done)
}

// Done closes when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Status returns the current lifecycle state.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// Subscribe registers an event-stream consumer. Every Subscribe must
// be paired with exactly one Unsubscribe — deferred in the streaming
// handler, so a client hanging up early releases its slot promptly
// rather than at the terminal event.
func (j *Job) Subscribe() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.subs++
}

// Unsubscribe releases a Subscribe registration.
func (j *Job) Unsubscribe() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.subs--
}

// Subscribers returns the number of live event-stream consumers; the
// service exposes the total as a gauge and tests assert it drains to
// zero after client disconnects.
func (j *Job) Subscribers() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.subs
}

// EventsSince returns events[from:], the job's terminal-ness, and a
// channel that closes on the next mutation — the building blocks of
// the /events streaming loop.
func (j *Job) EventsSince(from int) (evs []Event, terminal bool, changed <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if from < len(j.events) {
		evs = append(evs, j.events[from:]...)
	}
	return evs, j.status == StatusDone || j.status == StatusFailed, j.changed
}

// JobView is the GET /v1/jobs/{id} document.
type JobView struct {
	JobID      string     `json:"job_id"`
	Kind       string     `json:"kind"`
	Status     Status     `json:"status"`
	CreatedAt  time.Time  `json:"created_at"`
	StartedAt  *time.Time `json:"started_at,omitempty"`
	FinishedAt *time.Time `json:"finished_at,omitempty"`
	Error      string     `json:"error,omitempty"`
	Result     any        `json:"result,omitempty"`
}

// View snapshots the job for JSON serving.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		JobID: j.ID, Kind: j.Kind, Status: j.status,
		CreatedAt: j.created, Error: j.errMsg, Result: j.result,
	}
	if !j.started.IsZero() {
		t := j.started
		v.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.FinishedAt = &t
	}
	return v
}

// Duration returns queue-to-finish wall time (0 if unfinished).
func (j *Job) Duration() time.Duration {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.finished.IsZero() {
		return 0
	}
	return j.finished.Sub(j.created)
}
