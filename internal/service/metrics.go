package service

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// latencyBuckets are the histogram upper bounds in seconds. The span
// covers sub-millisecond cache hits through multi-minute class-C
// simulations.
var latencyBuckets = []float64{
	0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30, 60, 300,
}

// histogram is a fixed-bucket cumulative histogram (Prometheus
// convention: counts[i] counts observations <= bucket[i]).
type histogram struct {
	counts []uint64
	count  uint64
	sum    float64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]uint64, len(latencyBuckets))}
}

func (h *histogram) observe(seconds float64) {
	h.count++
	h.sum += seconds
	for i, ub := range latencyBuckets {
		if seconds <= ub {
			h.counts[i]++
		}
	}
}

// Metrics aggregates request and job telemetry for GET /metrics.
// All methods are safe for concurrent use.
type Metrics struct {
	mu       sync.Mutex
	requests map[string]uint64     // "route|code" -> count
	jobs     map[string]uint64     // "kind|status" -> count
	timing   map[string]uint64     // "kind|fidelity" -> count
	accuracy map[string]uint64     // "kind|accuracy" -> count
	shed     map[string]uint64     // overload-ladder action -> count
	hot      map[string]*hotEntry  // canonical characterize key -> serve stats
	latency  map[string]*histogram // route -> request latency
	jobTime  map[string]*histogram // kind -> job queue-to-finish time
}

// NewMetrics creates an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		requests: make(map[string]uint64),
		jobs:     make(map[string]uint64),
		timing:   make(map[string]uint64),
		accuracy: make(map[string]uint64),
		shed:     make(map[string]uint64),
		hot:      make(map[string]*hotEntry),
		latency:  make(map[string]*histogram),
		jobTime:  make(map[string]*histogram),
	}
}

// ObserveShed records one overload-ladder step: "forward" (request
// proxied to the key's primary), "degrade" (answered from the fast
// tier via the shed reserve), or "reject" (429, the last resort).
func (m *Metrics) ObserveShed(action string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.shed[action]++
}

// ObserveRequest records one HTTP request's route, status code, and
// handler latency.
func (m *Metrics) ObserveRequest(route string, code int, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[fmt.Sprintf("%s|%d", route, code)]++
	h := m.latency[route]
	if h == nil {
		h = newHistogram()
		m.latency[route] = h
	}
	h.observe(d.Seconds())
}

// ObserveTiming records one admitted timing job's kind and fidelity
// tier, so operators can see which tier (fast scoreboard vs full
// pipeline model) is actually serving traffic.
func (m *Metrics) ObserveTiming(kind, fidelity string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.timing[kind+"|"+fidelity]++
}

// ObserveAccuracy records one admitted characterization's kind and
// accuracy tier (exact full-stream vs sampled phase analysis), the
// characterization twin of ObserveTiming.
func (m *Metrics) ObserveAccuracy(kind, accuracy string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.accuracy[kind+"|"+accuracy]++
}

// hotEntry tracks one canonical characterization key's serve count and
// the tier that answered it most recently.
type hotEntry struct {
	serves     uint64
	lastSource string
}

// HotKeyView is one row of the /healthz hot-key report.
type HotKeyView struct {
	Key        string `json:"key"`
	Serves     uint64 `json:"serves"`
	LastSource string `json:"last_source"`
}

// ObserveServe records one successfully served characterization under
// its canonical key, remembering which tier (cold, snapshot, replay,
// peer, sampled) produced the answer.
func (m *Metrics) ObserveServe(key, source string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.hot[key]
	if e == nil {
		e = &hotEntry{}
		m.hot[key] = e
	}
	e.serves++
	e.lastSource = source
}

// HotKeys returns the k most-served canonical keys, most popular
// first; ties break on key order so the report is deterministic.
func (m *Metrics) HotKeys(k int) []HotKeyView {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]HotKeyView, 0, len(m.hot))
	for key, e := range m.hot {
		out = append(out, HotKeyView{Key: key, Serves: e.serves, LastSource: e.lastSource})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Serves != out[j].Serves {
			return out[i].Serves > out[j].Serves
		}
		return out[i].Key < out[j].Key
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// ObserveJob records one finished job's kind, terminal status, and
// queue-to-finish duration.
func (m *Metrics) ObserveJob(kind string, status Status, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.jobs[kind+"|"+string(status)]++
	h := m.jobTime[kind]
	if h == nil {
		h = newHistogram()
		m.jobTime[kind] = h
	}
	h.observe(d.Seconds())
}

// WritePrometheus renders the registry in Prometheus text exposition
// format, with deterministic (sorted) series order.
func (m *Metrics) WritePrometheus(w io.Writer) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintln(w, "# HELP bioperfd_http_requests_total HTTP requests by route and status code.")
	fmt.Fprintln(w, "# TYPE bioperfd_http_requests_total counter")
	for _, k := range sortedKeys(m.requests) {
		route, code := splitKey(k)
		fmt.Fprintf(w, "bioperfd_http_requests_total{route=%q,code=%q} %d\n", route, code, m.requests[k])
	}

	fmt.Fprintln(w, "# HELP bioperfd_http_request_duration_seconds HTTP handler latency.")
	fmt.Fprintln(w, "# TYPE bioperfd_http_request_duration_seconds histogram")
	writeHistograms(w, "bioperfd_http_request_duration_seconds", "route", m.latency)

	fmt.Fprintln(w, "# HELP bioperfd_jobs_total Finished jobs by kind and terminal status.")
	fmt.Fprintln(w, "# TYPE bioperfd_jobs_total counter")
	for _, k := range sortedKeys(m.jobs) {
		kind, status := splitKey(k)
		fmt.Fprintf(w, "bioperfd_jobs_total{kind=%q,status=%q} %d\n", kind, status, m.jobs[k])
	}

	fmt.Fprintln(w, "# HELP bioperfd_timing_requests_total Admitted timing jobs by kind and fidelity tier.")
	fmt.Fprintln(w, "# TYPE bioperfd_timing_requests_total counter")
	for _, k := range sortedKeys(m.timing) {
		kind, fid := splitKey(k)
		fmt.Fprintf(w, "bioperfd_timing_requests_total{kind=%q,fidelity=%q} %d\n", kind, fid, m.timing[k])
	}

	fmt.Fprintln(w, "# HELP bioperfd_accuracy_requests_total Admitted characterizations by kind and accuracy tier.")
	fmt.Fprintln(w, "# TYPE bioperfd_accuracy_requests_total counter")
	for _, k := range sortedKeys(m.accuracy) {
		kind, acc := splitKey(k)
		fmt.Fprintf(w, "bioperfd_accuracy_requests_total{kind=%q,accuracy=%q} %d\n", kind, acc, m.accuracy[k])
	}

	hotKeys := make([]string, 0, len(m.hot))
	for k := range m.hot {
		hotKeys = append(hotKeys, k)
	}
	sort.Strings(hotKeys)
	fmt.Fprintln(w, "# HELP bioperfd_hot_key_serves_total Characterizations served per canonical key.")
	fmt.Fprintln(w, "# TYPE bioperfd_hot_key_serves_total counter")
	for _, k := range hotKeys {
		fmt.Fprintf(w, "bioperfd_hot_key_serves_total{key=%q} %d\n", k, m.hot[k].serves)
	}

	fmt.Fprintln(w, "# HELP bioperfd_shed_total Overload-ladder actions (forward to primary, degrade to fast tier, reject 429).")
	fmt.Fprintln(w, "# TYPE bioperfd_shed_total counter")
	for _, k := range sortedKeys(m.shed) {
		fmt.Fprintf(w, "bioperfd_shed_total{action=%q} %d\n", k, m.shed[k])
	}

	fmt.Fprintln(w, "# HELP bioperfd_job_duration_seconds Job queue-to-finish time.")
	fmt.Fprintln(w, "# TYPE bioperfd_job_duration_seconds histogram")
	writeHistograms(w, "bioperfd_job_duration_seconds", "kind", m.jobTime)
}

func writeHistograms(w io.Writer, name, label string, hs map[string]*histogram) {
	keys := make([]string, 0, len(hs))
	for k := range hs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		h := hs[k]
		for i, ub := range latencyBuckets {
			fmt.Fprintf(w, "%s_bucket{%s=%q,le=\"%g\"} %d\n", name, label, k, ub, h.counts[i])
		}
		fmt.Fprintf(w, "%s_bucket{%s=%q,le=\"+Inf\"} %d\n", name, label, k, h.count)
		fmt.Fprintf(w, "%s_sum{%s=%q} %g\n", name, label, k, h.sum)
		fmt.Fprintf(w, "%s_count{%s=%q} %d\n", name, label, k, h.count)
	}
}

func sortedKeys(m map[string]uint64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func splitKey(k string) (string, string) {
	for i := 0; i < len(k); i++ {
		if k[i] == '|' {
			return k[:i], k[i+1:]
		}
	}
	return k, ""
}
