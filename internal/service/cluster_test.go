package service

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"hash/crc32"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"testing"

	"bioperfload/internal/bio"
	"bioperfload/internal/cluster"
	"bioperfload/internal/pipeline"
	"bioperfload/internal/platform"
	"bioperfload/internal/runner"
	"bioperfload/internal/store"
)

// delegatingServer starts an httptest listener whose URL is known
// before the Server behind it exists — cluster configs need peer URLs
// up front, but the Servers need the cluster configs. The *Server
// pointer is filled in after construction; no request arrives before
// that because the test drives all traffic.
func delegatingServer(t *testing.T, target **Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		(*target).Handler().ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	return ts
}

func scrapeMetrics(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func mustContain(t *testing.T, haystack, needle string) {
	t.Helper()
	if !strings.Contains(haystack, needle) {
		t.Fatalf("missing %q in:\n%s", needle, haystack)
	}
}

// TestFleetPeerServing is the cluster acceptance test at httptest
// scale: node A computes a characterization cold; node B — a separate
// server with a separate empty store, knowing A only through its
// cluster config — answers the same request from the peer tier with
// zero cold simulations and a byte-identical report, and its
// /metrics and /healthz expose the serve-source breakdown.
func TestFleetPeerServing(t *testing.T) {
	// Node A: plain single node with a store.
	stA, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer stA.Close()
	sessA := runner.NewSessionWithStore(1, stA)
	_, tsA := newTestServer(t, Config{Session: sessA, QueueDepth: 8, Workers: 1})

	// Node B: empty store, fleet view containing A.
	var srvB *Server
	tsB := delegatingServer(t, &srvB)
	clB := cluster.New(cluster.Config{Self: tsB.URL, Peers: []string{tsA.URL}})
	stB, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer stB.Close()
	sessB := runner.NewSessionWithStore(1, stB)
	sessB.SetRemote(clB)
	srvB = New(Config{Session: sessB, QueueDepth: 8, Workers: 1, Cluster: clB})

	req := map[string]any{"program": "hmmsearch", "size": "test", "wait": true}
	resp, body := postJSON(t, tsA.URL+"/v1/characterize", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("node A characterize: HTTP %d: %s", resp.StatusCode, body)
	}
	reportA := reportFromJobView(t, body)

	resp, body = postJSON(t, tsB.URL+"/v1/characterize", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("node B characterize: HTTP %d: %s", resp.StatusCode, body)
	}
	reportB := reportFromJobView(t, body)
	if reportA != reportB {
		t.Fatalf("peer-served report differs from locally computed one:\n--- A\n%s\n--- B\n%s", reportA, reportB)
	}

	st := sessB.Stats()
	if st.PeerHits != 1 || st.ColdChars != 0 || st.Runs != 0 {
		t.Fatalf("node B session stats %+v (want peer-served, zero simulation)", st)
	}

	metrics := scrapeMetrics(t, tsB.URL)
	mustContain(t, metrics, `bioperfd_serve_source_total{source="peer"} 1`)
	mustContain(t, metrics, `bioperfd_serve_source_total{source="cold"} 0`)
	mustContain(t, metrics, `bioperfd_peer_fetch_total{result="hit"} 1`)

	hresp, err := http.Get(tsB.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health HealthResponse
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if health.ServeSources["peer"] != 1 {
		t.Fatalf("healthz serve_sources = %v", health.ServeSources)
	}
	if health.Cluster == nil || health.Cluster.Self != tsB.URL || len(health.Cluster.Members) != 2 {
		t.Fatalf("healthz cluster section = %+v", health.Cluster)
	}
	if health.Cluster.Stats.FetchHits != 1 {
		t.Fatalf("healthz cluster stats = %+v", health.Cluster.Stats)
	}
}

func reportFromJobView(t *testing.T, body []byte) string {
	t.Helper()
	var view struct {
		Result struct {
			Report string `json:"report"`
		} `json:"result"`
	}
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatal(err)
	}
	if view.Result.Report == "" {
		t.Fatalf("job view has no report: %s", body)
	}
	return view.Result.Report
}

// TestPeerWireProtocol exercises the artifact routes directly: PUT
// with honest checksums is admitted and served back byte-identical
// (snapshot and object routes both), PUT with lying checksums is
// rejected before it can touch the store, unknown keys 404.
func TestPeerWireProtocol(t *testing.T) {
	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	sess := runner.NewSessionWithStore(1, st)
	_, ts := newTestServer(t, Config{Session: sess, QueueDepth: 4, Workers: 1})

	key := "prof|deadbeef|test"
	payload := []byte("artifact payload for the wire protocol test")
	sum := sha256.Sum256(payload)
	wantSHA := hex.EncodeToString(sum[:])
	wantCRC := strconv.FormatUint(uint64(crc32.ChecksumIEEE(payload)), 10)

	put := func(key string, body []byte, sha, crc string) int {
		t.Helper()
		req, err := http.NewRequest(http.MethodPut,
			ts.URL+"/v1/snapshots/"+url.PathEscape(key), bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if sha != "" {
			req.Header.Set(cluster.HeaderSHA256, sha)
		}
		if crc != "" {
			req.Header.Set(cluster.HeaderCRC32, crc)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := put(key, payload, wantSHA, wantCRC); code != http.StatusNoContent {
		t.Fatalf("honest PUT: HTTP %d", code)
	}

	get := func(path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, body
	}

	resp, body := get("/v1/snapshots/" + url.PathEscape(key))
	if resp.StatusCode != http.StatusOK || !bytes.Equal(body, payload) {
		t.Fatalf("snapshot GET: HTTP %d, %d bytes", resp.StatusCode, len(body))
	}
	if got := resp.Header.Get(cluster.HeaderSHA256); got != wantSHA {
		t.Fatalf("snapshot GET sha header %q, want %q", got, wantSHA)
	}
	if got := resp.Header.Get(cluster.HeaderCRC32); got != wantCRC {
		t.Fatalf("snapshot GET crc header %q, want %q", got, wantCRC)
	}

	resp, body = get("/v1/objects/" + wantSHA)
	if resp.StatusCode != http.StatusOK || !bytes.Equal(body, payload) {
		t.Fatalf("object GET: HTTP %d, %d bytes", resp.StatusCode, len(body))
	}

	resp, _ = get("/v1/snapshots/" + url.PathEscape("prof|unknown|test"))
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown snapshot: HTTP %d", resp.StatusCode)
	}
	resp, _ = get("/v1/objects/" + strings.Repeat("0", 64))
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown object: HTTP %d", resp.StatusCode)
	}

	// Lying pushes must be rejected and must not be admitted.
	badKey := "prof|feedface|test"
	if code := put(badKey, payload, strings.Repeat("a", 64), wantCRC); code != http.StatusBadRequest {
		t.Fatalf("wrong-sha PUT: HTTP %d", code)
	}
	if code := put(badKey, payload, wantSHA, "12345"); code != http.StatusBadRequest {
		t.Fatalf("wrong-crc PUT: HTTP %d", code)
	}
	if code := put(badKey, payload, "", ""); code != http.StatusBadRequest {
		t.Fatalf("headerless PUT: HTTP %d", code)
	}
	if _, ok := st.Lookup(badKey); ok {
		t.Fatal("corrupt push was admitted to the store")
	}
}

// TestShedLadder drives the three overload rungs in their fixed
// order. A saturated node S with peer P must (1) forward a request
// whose ring primary is P, marking the response; (2) degrade a
// full-fidelity request it owns itself to the fast tier on the shed
// reserve, marking the response; and (3) 429 only when the reserve is
// exhausted too.
func TestShedLadder(t *testing.T) {
	var srvP, srvS *Server
	tsP := delegatingServer(t, &srvP)
	tsS := delegatingServer(t, &srvS)

	clS := cluster.New(cluster.Config{Self: tsS.URL, Peers: []string{tsP.URL}})
	srvP = New(Config{Session: runner.NewSession(1), QueueDepth: 8, Workers: 1})
	srvS = New(Config{
		Session: runner.NewSession(1), QueueDepth: 1, ShedReserve: 1, Workers: 1,
		Cluster: clS, Shed: ShedPolicy{Forward: true, Degrade: true},
	})

	// P answers instantly; S's workers block until released.
	srvP.queue.exec = func(ctx context.Context, j *Job) (any, error) {
		return map[string]string{"answered_by": "P"}, nil
	}
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	srvS.queue.exec = func(ctx context.Context, j *Job) (any, error) {
		started <- struct{}{}
		<-release
		return nil, ctx.Err()
	}
	defer close(release)

	// Find full-fidelity evaluate keys on each side of the ring: one
	// owned by P (exercises forwarding) and two owned by S (exercise
	// degrade, then reject — forwarding never applies to S's own keys).
	var ownedByP, ownedByS []EvaluateRequest
	for _, p := range bio.All() {
		for _, plat := range platform.All() {
			spec := evalSpec{prog: p, plat: plat, sz: bio.SizeTest, fid: pipeline.FidelityFull}
			req := EvaluateRequest{Program: p.Name, Platform: plat.Name, Size: "test", Fidelity: "full"}
			if clS.Primary(evalKey(spec)) == tsP.URL {
				ownedByP = append(ownedByP, req)
			} else {
				ownedByS = append(ownedByS, req)
			}
		}
	}
	if len(ownedByP) < 1 || len(ownedByS) < 2 {
		t.Fatalf("ring split unusable: %d keys on P, %d on S", len(ownedByP), len(ownedByS))
	}

	// Saturate S: one job running (occupying the only worker), one
	// queued (filling QueueDepth=1).
	for i, prog := range []string{"hmmsearch", "fasta"} {
		resp, body := postJSON(t, tsS.URL+"/v1/characterize",
			map[string]any{"program": prog, "size": "test"})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("saturation job %d: HTTP %d: %s", i, resp.StatusCode, body)
		}
	}
	<-started // worker picked up job 1; job 2 sits queued

	// Rung 1: forward. The request's primary is P, so S proxies it and
	// relays P's answer with the forwarded-to marker.
	fwd := ownedByP[0]
	fwd.Wait = true
	resp, body := postJSON(t, tsS.URL+"/v1/evaluate", fwd)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded evaluate: HTTP %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(HeaderForwardedTo); got != tsP.URL {
		t.Fatalf("forwarded response lacks marker: %q (want %q)", got, tsP.URL)
	}
	if !strings.Contains(string(body), "answered_by") {
		t.Fatalf("forwarded response did not relay P's answer: %s", body)
	}

	// Rung 2: degrade. S owns this key, so forwarding is skipped; the
	// full-fidelity request is rewritten to the fast tier and admitted
	// on the shed reserve, with the degraded marker on the response.
	resp, body = postJSON(t, tsS.URL+"/v1/evaluate", ownedByS[0])
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("degraded evaluate: HTTP %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(HeaderDegraded); got != "fast" {
		t.Fatalf("degraded response lacks marker: %q (want \"fast\")", got)
	}

	// Rung 3: reject. Reserve slot is now occupied; the ladder has
	// nowhere left to go and the last resort is 429.
	resp, body = postJSON(t, tsS.URL+"/v1/evaluate", ownedByS[1])
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("exhausted ladder: HTTP %d: %s (want 429)", resp.StatusCode, body)
	}

	metrics := scrapeMetrics(t, tsS.URL)
	mustContain(t, metrics, `bioperfd_shed_total{action="forward"} 1`)
	mustContain(t, metrics, `bioperfd_shed_total{action="degrade"} 1`)
	mustContain(t, metrics, `bioperfd_shed_total{action="reject"} 1`)
}

// TestShedPolicyNoneKeeps429 pins the pre-fleet behavior: with the
// ladder disabled, a saturated queue rejects immediately even when a
// cluster is configured.
func TestShedPolicyNoneKeeps429(t *testing.T) {
	var srvP, srvS *Server
	tsP := delegatingServer(t, &srvP)
	tsS := delegatingServer(t, &srvS)
	clS := cluster.New(cluster.Config{Self: tsS.URL, Peers: []string{tsP.URL}})
	srvP = New(Config{Session: runner.NewSession(1), QueueDepth: 8, Workers: 1})
	srvS = New(Config{
		Session: runner.NewSession(1), QueueDepth: 1, Workers: 1,
		Cluster: clS, Shed: ShedPolicy{},
	})
	release := make(chan struct{})
	started := make(chan struct{}, 4)
	srvS.queue.exec = func(ctx context.Context, j *Job) (any, error) {
		started <- struct{}{}
		<-release
		return nil, ctx.Err()
	}
	defer close(release)

	for _, prog := range []string{"hmmsearch", "fasta"} {
		if resp, body := postJSON(t, tsS.URL+"/v1/characterize",
			map[string]any{"program": prog, "size": "test"}); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("saturation: HTTP %d: %s", resp.StatusCode, body)
		}
	}
	<-started

	resp, _ := postJSON(t, tsS.URL+"/v1/evaluate",
		EvaluateRequest{Program: "clustalw", Platform: platform.All()[0].Name, Size: "test", Fidelity: "full"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed policy none: HTTP %d (want 429)", resp.StatusCode)
	}
}

func TestParseShedPolicy(t *testing.T) {
	cases := []struct {
		in   string
		want ShedPolicy
		err  bool
	}{
		{"", ShedPolicy{Forward: true, Degrade: true}, false},
		{"none", ShedPolicy{}, false},
		{"forward", ShedPolicy{Forward: true}, false},
		{"degrade", ShedPolicy{Degrade: true}, false},
		{"forward,degrade", ShedPolicy{Forward: true, Degrade: true}, false},
		{"degrade, forward", ShedPolicy{Forward: true, Degrade: true}, false},
		{"drop-everything", ShedPolicy{}, true},
	}
	for _, c := range cases {
		got, err := ParseShedPolicy(c.in)
		if c.err != (err != nil) {
			t.Fatalf("ParseShedPolicy(%q) error = %v", c.in, err)
		}
		if !c.err && got != c.want {
			t.Fatalf("ParseShedPolicy(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
	if got := (ShedPolicy{Forward: true}).String(); got != "forward" {
		t.Fatalf("String() = %q", got)
	}
	if got := (ShedPolicy{}).String(); got != "none" {
		t.Fatalf("String() = %q", got)
	}
}
