package service

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"strconv"
	"strings"

	"bioperfload/internal/cluster"
)

// Fleet HTTP headers. Forwarded marks a request already proxied once
// (so an overloaded primary never proxies it again); ForwardedTo and
// Degraded mark the response so clients and tests can see which rung
// of the overload ladder answered.
const (
	HeaderForwarded   = "X-Bioperfd-Forwarded"
	HeaderForwardedTo = "X-Bioperfd-Forwarded-To"
	HeaderDegraded    = "X-Bioperfd-Degraded"
)

// maxPeerArtifact bounds a replication push's body: characterization
// snapshots are tens of kilobytes; anything near this limit is not
// one of ours.
const maxPeerArtifact = 256 << 20

// ShedPolicy selects which rungs of the overload ladder are active
// when the local queue is saturated. The order is fixed: forward to
// the key's primary, then degrade full-fidelity timing work to the
// fast tier on the shed reserve, then 429.
type ShedPolicy struct {
	Forward bool
	Degrade bool
}

// ParseShedPolicy parses the -shed-policy flag: a comma-separated
// subset of "forward" and "degrade", or "none". The empty string
// enables the full ladder.
func ParseShedPolicy(s string) (ShedPolicy, error) {
	switch s {
	case "":
		return ShedPolicy{Forward: true, Degrade: true}, nil
	case "none":
		return ShedPolicy{}, nil
	}
	var p ShedPolicy
	for _, part := range strings.Split(s, ",") {
		switch strings.TrimSpace(part) {
		case "forward":
			p.Forward = true
		case "degrade":
			p.Degrade = true
		default:
			return ShedPolicy{}, fmt.Errorf("unknown shed policy %q (forward|degrade|none)", part)
		}
	}
	return p, nil
}

func (p ShedPolicy) String() string {
	switch {
	case p.Forward && p.Degrade:
		return "forward,degrade"
	case p.Forward:
		return "forward"
	case p.Degrade:
		return "degrade"
	}
	return "none"
}

// --- peer artifact protocol ---

// registerPeerRoutes installs the artifact wire protocol. The routes
// exist whenever the session has a store — a storeless node has
// nothing to serve and nothing to admit.
func (s *Server) registerPeerRoutes() {
	s.mux.Handle("GET /v1/objects/{hash}", s.instrument("objects", s.handlePeerObject))
	s.mux.Handle("GET /v1/snapshots/{key}", s.instrument("snapshots", s.handlePeerSnapshot))
	s.mux.Handle("PUT /v1/snapshots/{key}", s.instrument("snapshots", s.handlePeerPut))
}

// writeObject streams one stored object to a peer with the transfer
// headers the receiving side verifies against.
func (s *Server) writeObject(w http.ResponseWriter, hash string) {
	st := s.session.Store()
	rc, info, ok := st.OpenObject(hash)
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown object " + hash})
		return
	}
	defer rc.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.FormatInt(info.Size, 10))
	w.Header().Set(cluster.HeaderSHA256, info.Hash)
	w.Header().Set(cluster.HeaderCRC32, strconv.FormatUint(uint64(info.CRC), 10))
	io.Copy(w, rc)
}

// handlePeerObject serves GET /v1/objects/{hash}: the raw
// content-addressed object, streaming from disk.
func (s *Server) handlePeerObject(w http.ResponseWriter, r *http.Request) {
	if s.session.Store() == nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no artifact store attached"})
		return
	}
	s.writeObject(w, r.PathValue("hash"))
}

// handlePeerSnapshot serves GET /v1/snapshots/{key}: the artifact a
// store key points at (the key travels path-escaped; PathValue
// decodes it).
func (s *Server) handlePeerSnapshot(w http.ResponseWriter, r *http.Request) {
	st := s.session.Store()
	if st == nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no artifact store attached"})
		return
	}
	key := r.PathValue("key")
	info, ok := st.Lookup(key)
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown artifact key"})
		return
	}
	s.writeObject(w, info.Hash)
}

// handlePeerPut admits a replicated artifact: PUT /v1/snapshots/{key}
// with the body verified against its transfer headers before it may
// touch the store. A push whose checksums disagree is rejected with
// 400 — the sender counts it and gives up; nothing corrupt is
// admitted.
func (s *Server) handlePeerPut(w http.ResponseWriter, r *http.Request) {
	st := s.session.Store()
	if st == nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no artifact store attached"})
		return
	}
	key := r.PathValue("key")
	body, err := io.ReadAll(io.LimitReader(r.Body, maxPeerArtifact+1))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "read body: " + err.Error()})
		return
	}
	if len(body) > maxPeerArtifact {
		writeJSON(w, http.StatusRequestEntityTooLarge, apiError{Error: "artifact exceeds size limit"})
		return
	}
	sum := sha256.Sum256(body)
	if got, want := hex.EncodeToString(sum[:]), r.Header.Get(cluster.HeaderSHA256); want == "" || got != want {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "sha256 mismatch on replicated artifact"})
		return
	}
	crc, err := strconv.ParseUint(r.Header.Get(cluster.HeaderCRC32), 10, 32)
	if err != nil || crc32.ChecksumIEEE(body) != uint32(crc) {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "crc mismatch on replicated artifact"})
		return
	}
	if err := st.PutBytes(key, body); err != nil {
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// --- overload ladder ---

// shedForward proxies the original request to the key's primary node.
// It reports true only when the primary produced a usable answer
// (anything but a 5xx/429/transport failure), in which case the
// response has already been written. Requests that were themselves
// forwarded are never forwarded again.
func (s *Server) shedForward(w http.ResponseWriter, r *http.Request, key string, body []byte) bool {
	c := s.cfg.Cluster
	if c == nil || !s.cfg.Shed.Forward || r.Header.Get(HeaderForwarded) != "" {
		return false
	}
	primary := c.Primary(key)
	if primary == "" || primary == c.Self() || !c.Client().Available(primary) {
		return false
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, primary+r.URL.Path, bytes.NewReader(body))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(HeaderForwarded, c.Self())
	resp, err := s.forwardClient.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500 {
		// The primary is as hot as we are; fall down the ladder.
		io.Copy(io.Discard, resp.Body)
		return false
	}
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return false
	}
	s.metrics.ObserveShed("forward")
	w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
	w.Header().Set(HeaderForwardedTo, primary)
	if d := resp.Header.Get(HeaderDegraded); d != "" {
		w.Header().Set(HeaderDegraded, d)
	}
	w.WriteHeader(resp.StatusCode)
	w.Write(out)
	return true
}

// ClusterHealth is the fleet slice of the /healthz document.
type ClusterHealth struct {
	Self     string              `json:"self"`
	Members  []string            `json:"members"`
	Replicas int                 `json:"replicas"`
	Shed     string              `json:"shed_policy"`
	Peers    []cluster.PeerState `json:"peers,omitempty"`
	Stats    cluster.Stats       `json:"stats"`
}

func (s *Server) clusterHealth() *ClusterHealth {
	c := s.cfg.Cluster
	if c == nil {
		return nil
	}
	return &ClusterHealth{
		Self:     c.Self(),
		Members:  c.Members(),
		Replicas: c.Replicas(),
		Shed:     s.cfg.Shed.String(),
		Peers:    c.Client().Peers(),
		Stats:    c.Stats(),
	}
}

// serveSources maps the session's tier counters onto the canonical
// serve-source breakdown: snapshot | replay | peer | cold | sampled.
func (s *Server) serveSources() map[string]uint64 {
	st := s.session.Stats()
	return map[string]uint64{
		"snapshot": st.ProfileHits,
		"replay":   st.ReplayRuns,
		"peer":     st.PeerHits,
		"cold":     st.ColdChars,
		"sampled":  st.SampledChars + st.SampledHits,
	}
}
