package minic

import "fmt"

// Parser builds an AST from MiniC source. It pre-lexes the whole file
// so it can look arbitrarily far ahead (needed to distinguish casts
// from parenthesized expressions).
type Parser struct {
	file string
	toks []Token
	pos  int
}

// Parse parses one MiniC source file.
func Parse(file, src string) (*File, error) {
	toks, err := LexAll(file, src)
	if err != nil {
		return nil, err
	}
	p := &Parser{file: file, toks: toks}
	return p.parseFile()
}

func (p *Parser) cur() Token { return p.toks[p.pos] }
func (p *Parser) peek() Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *Parser) next() Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *Parser) errf(format string, args ...any) error {
	return &SyntaxError{File: p.file, Line: p.cur().Line, Msg: fmt.Sprintf(format, args...)}
}

func (p *Parser) expect(k Kind) (Token, error) {
	if p.cur().Kind != k {
		return Token{}, p.errf("expected %s, found %s", k, p.cur())
	}
	return p.next(), nil
}

func (p *Parser) accept(k Kind) bool {
	if p.cur().Kind == k {
		p.next()
		return true
	}
	return false
}

func isTypeKw(k Kind) bool {
	return k == KwInt || k == KwChar || k == KwDouble || k == KwVoid
}

func baseOf(k Kind) BaseType {
	switch k {
	case KwInt:
		return TypeInt
	case KwChar:
		return TypeChar
	case KwDouble:
		return TypeDouble
	default:
		return TypeVoid
	}
}

func (p *Parser) parseFile() (*File, error) {
	f := &File{Name: p.file}
	for p.cur().Kind != EOF {
		if !isTypeKw(p.cur().Kind) {
			return nil, p.errf("expected declaration, found %s", p.cur())
		}
		base := baseOf(p.next().Kind)
		// Optional * makes no sense at file scope (no pointer
		// globals), so only functions and variables here.
		nameTok, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		if p.cur().Kind == LParen {
			fn, err := p.parseFuncRest(base, nameTok)
			if err != nil {
				return nil, err
			}
			f.Funcs = append(f.Funcs, fn)
			continue
		}
		g, err := p.parseGlobalRest(base, nameTok)
		if err != nil {
			return nil, err
		}
		f.Globals = append(f.Globals, g)
	}
	return f, nil
}

func (p *Parser) parseGlobalRest(base BaseType, name Token) (*GlobalDecl, error) {
	if base == TypeVoid {
		return nil, p.errf("void variable %q", name.Text)
	}
	g := &GlobalDecl{Name: name.Text, Ty: Scalar(base), Line: name.Line}
	if p.accept(LBrack) {
		sz, err := p.expect(INTLIT)
		if err != nil {
			return nil, err
		}
		if sz.Int <= 0 {
			return nil, p.errf("array %q has non-positive size %d", name.Text, sz.Int)
		}
		if _, err := p.expect(RBrack); err != nil {
			return nil, err
		}
		g.Ty = ArrayOf(base, sz.Int)
	}
	if p.accept(Assign) {
		if g.Ty.IsArray {
			return nil, p.errf("array initializers are not supported; bind data from the host instead")
		}
		neg := p.accept(Minus)
		switch p.cur().Kind {
		case INTLIT, CHARLIT:
			t := p.next()
			g.HasInit = true
			g.InitInt = t.Int
			if neg {
				g.InitInt = -g.InitInt
			}
			if base == TypeDouble {
				g.InitFloat = float64(g.InitInt)
				g.InitInt = 0
			}
		case FLOATLIT:
			t := p.next()
			if base != TypeDouble {
				return nil, p.errf("float initializer for %s global", base)
			}
			g.HasInit = true
			g.InitFloat = t.F
			if neg {
				g.InitFloat = -g.InitFloat
			}
		default:
			return nil, p.errf("global initializers must be constants")
		}
	}
	if _, err := p.expect(Semi); err != nil {
		return nil, err
	}
	return g, nil
}

func (p *Parser) parseFuncRest(ret BaseType, name Token) (*FuncDecl, error) {
	fn := &FuncDecl{Name: name.Text, Ret: ret, Line: name.Line}
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	if !p.accept(RParen) {
		for {
			if !isTypeKw(p.cur().Kind) {
				return nil, p.errf("expected parameter type, found %s", p.cur())
			}
			base := baseOf(p.next().Kind)
			if base == TypeVoid {
				return nil, p.errf("void parameter")
			}
			isPtr := p.accept(Star)
			pn, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			if p.accept(LBrack) { // T name[] is a pointer parameter
				if _, err := p.expect(RBrack); err != nil {
					return nil, err
				}
				isPtr = true
			}
			ty := Scalar(base)
			if isPtr {
				ty = PtrTo(base)
			}
			fn.Params = append(fn.Params, Param{Name: pn.Text, Ty: ty, Line: pn.Line})
			if p.accept(RParen) {
				break
			}
			if _, err := p.expect(Comma); err != nil {
				return nil, err
			}
		}
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *Parser) parseBlock() (*Block, error) {
	start, err := p.expect(LBrace)
	if err != nil {
		return nil, err
	}
	b := &Block{Line: start.Line}
	for p.cur().Kind != RBrace {
		if p.cur().Kind == EOF {
			return nil, p.errf("unexpected EOF in block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.next() // consume }
	return b, nil
}

func (p *Parser) parseStmt() (Stmt, error) {
	tok := p.cur()
	switch tok.Kind {
	case LBrace:
		return p.parseBlock()
	case KwIf:
		p.next()
		if _, err := p.expect(LParen); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		then, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		var els Stmt
		if p.accept(KwElse) {
			els, err = p.parseStmt()
			if err != nil {
				return nil, err
			}
		}
		return &If{Cond: cond, Then: then, Else: els, Line: tok.Line}, nil
	case KwWhile:
		p.next()
		if _, err := p.expect(LParen); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &While{Cond: cond, Body: body, Line: tok.Line}, nil
	case KwFor:
		return p.parseFor()
	case KwReturn:
		p.next()
		r := &Return{Line: tok.Line}
		if p.cur().Kind != Semi {
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			r.X = x
		}
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return r, nil
	case KwBreak:
		p.next()
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return &Break{Line: tok.Line}, nil
	case KwContinue:
		p.next()
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return &Continue{Line: tok.Line}, nil
	case KwInt, KwChar, KwDouble:
		return p.parseDecl()
	case KwVoid:
		return nil, p.errf("void local variable")
	case Semi:
		p.next()
		return &Block{Line: tok.Line}, nil // empty statement
	default:
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return &ExprStmt{X: x, Line: tok.Line}, nil
	}
}

func (p *Parser) parseDecl() (Stmt, error) {
	tok := p.next()
	base := baseOf(tok.Kind)
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	d := &DeclStmt{Name: name.Text, Ty: Scalar(base), Line: name.Line}
	if p.accept(LBrack) {
		sz, err := p.expect(INTLIT)
		if err != nil {
			return nil, err
		}
		if sz.Int <= 0 {
			return nil, p.errf("array %q has non-positive size", name.Text)
		}
		if _, err := p.expect(RBrack); err != nil {
			return nil, err
		}
		d.Ty = ArrayOf(base, sz.Int)
	}
	if p.accept(Assign) {
		if d.Ty.IsArray {
			return nil, p.errf("array initializers are not supported")
		}
		x, err := p.parseAssignExpr()
		if err != nil {
			return nil, err
		}
		d.Init = x
	}
	if _, err := p.expect(Semi); err != nil {
		return nil, err
	}
	return d, nil
}

func (p *Parser) parseFor() (Stmt, error) {
	tok := p.next() // for
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	f := &For{Line: tok.Line}
	if !p.accept(Semi) {
		if isTypeKw(p.cur().Kind) {
			init, err := p.parseDecl() // consumes ;
			if err != nil {
				return nil, err
			}
			f.Init = init
		} else {
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			f.Init = &ExprStmt{X: x, Line: tok.Line}
			if _, err := p.expect(Semi); err != nil {
				return nil, err
			}
		}
	}
	if !p.accept(Semi) {
		c, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		f.Cond = c
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
	}
	if !p.accept(RParen) {
		post, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		f.Post = post
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	f.Body = body
	return f, nil
}

// --- Expressions (precedence climbing) ---

// parseExpr parses a comma-free expression (MiniC has no comma
// operator; for-post uses a single expression).
func (p *Parser) parseExpr() (Expr, error) { return p.parseAssignExpr() }

func (p *Parser) parseAssignExpr() (Expr, error) {
	lhs, err := p.parseCondExpr()
	if err != nil {
		return nil, err
	}
	switch k := p.cur().Kind; k {
	case Assign, PlusEq, MinusEq, StarEq, SlashEq, PercentEq:
		tok := p.next()
		if !isLvalue(lhs) {
			return nil, &SyntaxError{File: p.file, Line: tok.Line, Msg: "assignment to non-lvalue"}
		}
		rhs, err := p.parseAssignExpr() // right-associative
		if err != nil {
			return nil, err
		}
		return &Assign2{Op: k, Lhs: lhs, Rhs: rhs, Line: tok.Line}, nil
	}
	return lhs, nil
}

func isLvalue(e Expr) bool {
	switch e.(type) {
	case *VarRef, *Index:
		return true
	}
	return false
}

func (p *Parser) parseCondExpr() (Expr, error) {
	c, err := p.parseBinary(0)
	if err != nil {
		return nil, err
	}
	if p.cur().Kind != Question {
		return c, nil
	}
	tok := p.next()
	a, err := p.parseAssignExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(Colon); err != nil {
		return nil, err
	}
	b, err := p.parseCondExpr()
	if err != nil {
		return nil, err
	}
	return &Cond{C: c, A: a, B: b, Line: tok.Line}, nil
}

// binary operator precedence (C-like, higher binds tighter).
var binPrec = map[Kind]int{
	OrOr: 1, AndAnd: 2, Or: 3, Xor: 4, And: 5,
	EqEq: 6, NotEq: 6,
	Lt: 7, Le: 7, Gt: 7, Ge: 7,
	Shl: 8, Shr: 8,
	Plus: 9, Minus: 9,
	Star: 10, Slash: 10, Percent: 10,
}

func (p *Parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		k := p.cur().Kind
		prec, ok := binPrec[k]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		tok := p.next()
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		if k == OrOr || k == AndAnd {
			lhs = &Logical{Op: k, X: lhs, Y: rhs, Line: tok.Line}
		} else {
			lhs = &Binary{Op: k, X: lhs, Y: rhs, Line: tok.Line}
		}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	tok := p.cur()
	switch tok.Kind {
	case Minus, Not, Tilde:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold -literal immediately for readable constants.
		if tok.Kind == Minus {
			if il, ok := x.(*IntLit); ok {
				return &IntLit{Val: -il.Val, Line: tok.Line}, nil
			}
			if fl, ok := x.(*FloatLit); ok {
				return &FloatLit{Val: -fl.Val, Line: tok.Line}, nil
			}
		}
		return &Unary{Op: tok.Kind, X: x, Line: tok.Line}, nil
	case Inc, Dec:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if !isLvalue(x) {
			return nil, &SyntaxError{File: p.file, Line: tok.Line, Msg: "++/-- of non-lvalue"}
		}
		return &IncDec{Op: tok.Kind, X: x, Line: tok.Line}, nil
	case LParen:
		// Cast: "(" type ")" unary.
		if isTypeKw(p.peek().Kind) && p.peek().Kind != KwVoid {
			p.next()
			base := baseOf(p.next().Kind)
			if _, err := p.expect(RParen); err != nil {
				return nil, err
			}
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &Cast{To: base, X: x, Line: tok.Line}, nil
		}
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		tok := p.cur()
		switch tok.Kind {
		case LBrack:
			vr, ok := x.(*VarRef)
			if !ok {
				return nil, &SyntaxError{File: p.file, Line: tok.Line,
					Msg: "only named arrays can be indexed"}
			}
			p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RBrack); err != nil {
				return nil, err
			}
			x = &Index{Arr: vr, Idx: idx, Line: tok.Line}
		case Inc, Dec:
			if !isLvalue(x) {
				return nil, &SyntaxError{File: p.file, Line: tok.Line, Msg: "++/-- of non-lvalue"}
			}
			p.next()
			x = &IncDec{Op: tok.Kind, Postfix: true, X: x, Line: tok.Line}
		default:
			return x, nil
		}
	}
}

func (p *Parser) parsePrimary() (Expr, error) {
	tok := p.cur()
	switch tok.Kind {
	case INTLIT, CHARLIT:
		p.next()
		return &IntLit{Val: tok.Int, Line: tok.Line}, nil
	case FLOATLIT:
		p.next()
		return &FloatLit{Val: tok.F, Line: tok.Line}, nil
	case IDENT:
		p.next()
		if p.cur().Kind == LParen {
			p.next()
			call := &Call{Name: tok.Text, Line: tok.Line}
			if !p.accept(RParen) {
				for {
					a, err := p.parseAssignExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if p.accept(RParen) {
						break
					}
					if _, err := p.expect(Comma); err != nil {
						return nil, err
					}
				}
			}
			return call, nil
		}
		return &VarRef{Name: tok.Text, Line: tok.Line}, nil
	case LParen:
		p.next()
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		return x, nil
	}
	return nil, p.errf("expected expression, found %s", tok)
}
