package minic

import (
	"fmt"
	"strconv"
)

// SyntaxError reports a lexical or parse error with its source line.
type SyntaxError struct {
	File string
	Line int32
	Msg  string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("%s:%d: %s", e.File, e.Line, e.Msg)
}

// Lexer tokenizes MiniC source.
type Lexer struct {
	file string
	src  string
	pos  int
	line int32
}

// NewLexer returns a lexer over src; file is used in error messages.
func NewLexer(file, src string) *Lexer {
	return &Lexer{file: file, src: src, line: 1}
}

func (l *Lexer) errf(format string, args ...any) error {
	return &SyntaxError{File: l.file, Line: l.line, Msg: fmt.Sprintf(format, args...)}
}

func (l *Lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peekByte2() byte {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdent(c byte) bool { return isIdentStart(c) || isDigit(c) }

func (l *Lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.peekByte2() == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.peekByte2() == '*':
			l.pos += 2
			for {
				if l.pos+1 >= len(l.src) {
					return l.errf("unterminated block comment")
				}
				if l.src[l.pos] == '*' && l.src[l.pos+1] == '/' {
					l.pos += 2
					break
				}
				if l.src[l.pos] == '\n' {
					l.line++
				}
				l.pos++
			}
		default:
			return nil
		}
	}
	return nil
}

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	tok := Token{Line: l.line}
	if l.pos >= len(l.src) {
		tok.Kind = EOF
		return tok, nil
	}
	c := l.src[l.pos]

	switch {
	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && isIdent(l.src[l.pos]) {
			l.pos++
		}
		text := l.src[start:l.pos]
		if kw, ok := keywords[text]; ok {
			tok.Kind = kw
		} else {
			tok.Kind = IDENT
			tok.Text = text
		}
		return tok, nil

	case isDigit(c):
		start := l.pos
		isFloat := false
		for l.pos < len(l.src) && (isDigit(l.src[l.pos]) ||
			l.src[l.pos] == '.' || l.src[l.pos] == 'x' || l.src[l.pos] == 'X' ||
			(l.src[l.pos] >= 'a' && l.src[l.pos] <= 'f') ||
			(l.src[l.pos] >= 'A' && l.src[l.pos] <= 'F') ||
			l.src[l.pos] == 'e' || l.src[l.pos] == 'E' ||
			((l.src[l.pos] == '+' || l.src[l.pos] == '-') && l.pos > start &&
				(l.src[l.pos-1] == 'e' || l.src[l.pos-1] == 'E') &&
				!isHexLiteral(l.src[start:l.pos]))) {
			if l.src[l.pos] == '.' {
				isFloat = true
			}
			l.pos++
		}
		text := l.src[start:l.pos]
		if isFloat || (hasExponent(text) && !isHexLiteral(text)) {
			f, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return Token{}, l.errf("bad float literal %q", text)
			}
			tok.Kind = FLOATLIT
			tok.F = f
			return tok, nil
		}
		v, err := strconv.ParseInt(text, 0, 64)
		if err != nil {
			return Token{}, l.errf("bad integer literal %q", text)
		}
		tok.Kind = INTLIT
		tok.Int = v
		return tok, nil

	case c == '\'':
		l.pos++
		if l.pos >= len(l.src) {
			return Token{}, l.errf("unterminated char literal")
		}
		var v int64
		if l.src[l.pos] == '\\' {
			l.pos++
			if l.pos >= len(l.src) {
				return Token{}, l.errf("unterminated char literal")
			}
			switch l.src[l.pos] {
			case 'n':
				v = '\n'
			case 't':
				v = '\t'
			case '0':
				v = 0
			case '\\':
				v = '\\'
			case '\'':
				v = '\''
			default:
				return Token{}, l.errf("unknown escape \\%c", l.src[l.pos])
			}
		} else {
			v = int64(l.src[l.pos])
		}
		l.pos++
		if l.pos >= len(l.src) || l.src[l.pos] != '\'' {
			return Token{}, l.errf("unterminated char literal")
		}
		l.pos++
		tok.Kind = CHARLIT
		tok.Int = v
		return tok, nil
	}

	// Operators and punctuation: longest match first.
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	twoKinds := map[string]Kind{
		"+=": PlusEq, "-=": MinusEq, "*=": StarEq, "/=": SlashEq,
		"%=": PercentEq, "||": OrOr, "&&": AndAnd, "==": EqEq,
		"!=": NotEq, "<=": Le, ">=": Ge, "<<": Shl, ">>": Shr,
		"++": Inc, "--": Dec,
	}
	if k, ok := twoKinds[two]; ok {
		l.pos += 2
		tok.Kind = k
		return tok, nil
	}
	oneKinds := map[byte]Kind{
		'(': LParen, ')': RParen, '{': LBrace, '}': RBrace,
		'[': LBrack, ']': RBrack, ',': Comma, ';': Semi,
		'?': Question, ':': Colon, '=': Assign, '|': Or, '^': Xor,
		'&': And, '<': Lt, '>': Gt, '+': Plus, '-': Minus,
		'*': Star, '/': Slash, '%': Percent, '!': Not, '~': Tilde,
	}
	if k, ok := oneKinds[c]; ok {
		l.pos++
		tok.Kind = k
		return tok, nil
	}
	return Token{}, l.errf("unexpected character %q", c)
}

func hasExponent(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] == 'e' || s[i] == 'E' {
			return true
		}
	}
	return false
}

func isHexLiteral(s string) bool {
	return len(s) > 1 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')
}

// LexAll tokenizes the whole input (testing convenience).
func LexAll(file, src string) ([]Token, error) {
	l := NewLexer(file, src)
	var out []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == EOF {
			return out, nil
		}
	}
}
