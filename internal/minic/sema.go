package minic

import "fmt"

// SymKind classifies resolved names.
type SymKind uint8

// Symbol kinds.
const (
	SymGlobal SymKind = iota
	SymLocal
	SymParam
)

// Sym is a resolved variable.
type Sym struct {
	Name string
	Kind SymKind
	Ty   Type
	// Index is the global index (SymGlobal), parameter position
	// (SymParam), or local slot id unique within the function
	// (SymLocal).
	Index int
}

// FuncSig is a function signature for call checking.
type FuncSig struct {
	Name   string
	Ret    BaseType
	Params []Param
	Decl   *FuncDecl
}

// Info carries the results of semantic analysis: every expression's
// type and every name's resolution, in side tables keyed by AST node.
type Info struct {
	Types map[Expr]Type
	Refs  map[*VarRef]*Sym
	Calls map[*Call]*FuncSig
	// Funcs maps function name to signature, including "main".
	Funcs map[string]*FuncSig
	// GlobalList is the declared order of globals.
	GlobalList []*GlobalDecl
	// LocalCount maps function name to number of local symbols.
	LocalCount map[string]int
}

type checker struct {
	file   string
	info   *Info
	scopes []map[string]*Sym
	fn     *FuncDecl
	nlocal int
	errs   []error
	loop   int
}

// Check performs semantic analysis on the file.
func Check(f *File) (*Info, error) {
	c := &checker{
		file: f.Name,
		info: &Info{
			Types:      make(map[Expr]Type),
			Refs:       make(map[*VarRef]*Sym),
			Calls:      make(map[*Call]*FuncSig),
			Funcs:      make(map[string]*FuncSig),
			LocalCount: make(map[string]int),
		},
	}
	// Globals first.
	c.pushScope()
	for i, g := range f.Globals {
		if c.lookupShallow(g.Name) != nil {
			c.errf(g.Line, "redefinition of global %q", g.Name)
			continue
		}
		c.define(&Sym{Name: g.Name, Kind: SymGlobal, Ty: g.Ty, Index: i})
		c.info.GlobalList = append(c.info.GlobalList, g)
	}
	// Function signatures (allow forward calls and recursion).
	for _, fn := range f.Funcs {
		if _, dup := c.info.Funcs[fn.Name]; dup {
			c.errf(fn.Line, "redefinition of function %q", fn.Name)
			continue
		}
		if fn.Name == "print" {
			c.errf(fn.Line, "cannot redefine builtin print")
			continue
		}
		c.info.Funcs[fn.Name] = &FuncSig{Name: fn.Name, Ret: fn.Ret, Params: fn.Params, Decl: fn}
	}
	if main, ok := c.info.Funcs["main"]; !ok {
		c.errs = append(c.errs, fmt.Errorf("%s: no main function", f.Name))
	} else if len(main.Params) != 0 || main.Ret != TypeInt {
		c.errf(main.Decl.Line, "main must be int main()")
	}
	// Bodies.
	for _, fn := range f.Funcs {
		c.checkFunc(fn)
	}
	c.popScope()
	if len(c.errs) > 0 {
		return nil, c.errs[0]
	}
	return c.info, nil
}

func (c *checker) errf(line int32, format string, args ...any) {
	c.errs = append(c.errs, &SyntaxError{File: c.file, Line: line, Msg: fmt.Sprintf(format, args...)})
}

func (c *checker) pushScope() { c.scopes = append(c.scopes, make(map[string]*Sym)) }
func (c *checker) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) define(s *Sym) { c.scopes[len(c.scopes)-1][s.Name] = s }

func (c *checker) lookupShallow(name string) *Sym {
	return c.scopes[len(c.scopes)-1][name]
}

func (c *checker) lookup(name string) *Sym {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s, ok := c.scopes[i][name]; ok {
			return s
		}
	}
	return nil
}

func (c *checker) checkFunc(fn *FuncDecl) {
	c.fn = fn
	c.nlocal = 0
	c.pushScope()
	for i, p := range fn.Params {
		if c.lookupShallow(p.Name) != nil {
			c.errf(p.Line, "duplicate parameter %q", p.Name)
			continue
		}
		c.define(&Sym{Name: p.Name, Kind: SymParam, Ty: p.Ty, Index: i})
	}
	c.checkBlock(fn.Body)
	c.popScope()
	c.info.LocalCount[fn.Name] = c.nlocal
}

func (c *checker) checkBlock(b *Block) {
	c.pushScope()
	for _, s := range b.Stmts {
		c.checkStmt(s)
	}
	c.popScope()
}

func (c *checker) checkStmt(s Stmt) {
	switch st := s.(type) {
	case *DeclStmt:
		if c.lookupShallow(st.Name) != nil {
			c.errf(st.Line, "redefinition of %q in this scope", st.Name)
			return
		}
		sym := &Sym{Name: st.Name, Kind: SymLocal, Ty: st.Ty, Index: c.nlocal}
		c.nlocal++
		if st.Init != nil {
			if st.Ty.IsArray {
				c.errf(st.Line, "array initializer")
			} else {
				t := c.checkExpr(st.Init)
				c.requireScalarConvertible(st.Line, t, st.Ty.Base)
			}
		}
		c.define(sym)
	case *ExprStmt:
		c.checkExpr(st.X)
	case *Block:
		c.checkBlock(st)
	case *If:
		c.requireScalarCond(st.Line, c.checkExpr(st.Cond))
		c.checkStmt(st.Then)
		if st.Else != nil {
			c.checkStmt(st.Else)
		}
	case *While:
		c.requireScalarCond(st.Line, c.checkExpr(st.Cond))
		c.loop++
		c.checkStmt(st.Body)
		c.loop--
	case *For:
		c.pushScope() // for-init scope
		if st.Init != nil {
			c.checkStmt(st.Init)
		}
		if st.Cond != nil {
			c.requireScalarCond(st.Line, c.checkExpr(st.Cond))
		}
		if st.Post != nil {
			c.checkExpr(st.Post)
		}
		c.loop++
		c.checkStmt(st.Body)
		c.loop--
		c.popScope()
	case *Return:
		if st.X == nil {
			if c.fn.Ret != TypeVoid {
				c.errf(st.Line, "return without value in %s function", c.fn.Ret)
			}
			return
		}
		if c.fn.Ret == TypeVoid {
			c.errf(st.Line, "return with value in void function")
			return
		}
		t := c.checkExpr(st.X)
		c.requireScalarConvertible(st.Line, t, c.fn.Ret)
	case *Break:
		if c.loop == 0 {
			c.errf(st.Line, "break outside loop")
		}
	case *Continue:
		if c.loop == 0 {
			c.errf(st.Line, "continue outside loop")
		}
	}
}

func (c *checker) requireScalarCond(line int32, t Type) {
	if t.IsMemory() {
		c.errf(line, "array used as condition")
	}
}

func (c *checker) requireScalarConvertible(line int32, from Type, to BaseType) {
	if from.IsMemory() {
		c.errf(line, "array used as scalar value")
		return
	}
	// int <-> double convert implicitly; char behaves as int.
	_ = to
}

// numeric returns the value category of a scalar type for arithmetic:
// double, or int (char promotes to int).
func numeric(t Type) BaseType {
	if t.Base == TypeDouble {
		return TypeDouble
	}
	return TypeInt
}

func (c *checker) checkExpr(e Expr) Type {
	t := c.checkExprInner(e)
	c.info.Types[e] = t
	return t
}

func (c *checker) checkExprInner(e Expr) Type {
	switch ex := e.(type) {
	case *IntLit:
		return Scalar(TypeInt)
	case *FloatLit:
		return Scalar(TypeDouble)
	case *VarRef:
		sym := c.lookup(ex.Name)
		if sym == nil {
			c.errf(ex.Line, "undefined variable %q", ex.Name)
			return Scalar(TypeInt)
		}
		c.info.Refs[ex] = sym
		return sym.Ty
	case *Index:
		at := c.checkExpr(exprOf(ex.Arr))
		if !at.IsMemory() {
			c.errf(ex.Line, "indexing non-array %q", ex.Arr.Name)
			return Scalar(TypeInt)
		}
		it := c.checkExpr(ex.Idx)
		if numeric(it) != TypeInt {
			c.errf(ex.Line, "array index must be an integer")
		}
		if it.IsMemory() {
			c.errf(ex.Line, "array used as index")
		}
		return Scalar(at.Base)
	case *Unary:
		t := c.checkExpr(ex.X)
		if t.IsMemory() {
			c.errf(ex.Line, "array operand of unary %s", ex.Op)
			return Scalar(TypeInt)
		}
		switch ex.Op {
		case Not:
			return Scalar(TypeInt)
		case Tilde:
			if numeric(t) == TypeDouble {
				c.errf(ex.Line, "~ of double")
			}
			return Scalar(TypeInt)
		default: // Minus
			return Scalar(numeric(t))
		}
	case *Cast:
		t := c.checkExpr(ex.X)
		if t.IsMemory() {
			c.errf(ex.Line, "cast of array")
		}
		if ex.To == TypeChar || ex.To == TypeVoid {
			c.errf(ex.Line, "cast to %s not supported", ex.To)
			return Scalar(TypeInt)
		}
		return Scalar(ex.To)
	case *Binary:
		xt := c.checkExpr(ex.X)
		yt := c.checkExpr(ex.Y)
		if xt.IsMemory() || yt.IsMemory() {
			c.errf(ex.Line, "array operand of %s", ex.Op)
			return Scalar(TypeInt)
		}
		isCmp := ex.Op == EqEq || ex.Op == NotEq || ex.Op == Lt ||
			ex.Op == Le || ex.Op == Gt || ex.Op == Ge
		resBase := TypeInt
		if numeric(xt) == TypeDouble || numeric(yt) == TypeDouble {
			resBase = TypeDouble
			switch ex.Op {
			case Percent, And, Or, Xor, Shl, Shr:
				c.errf(ex.Line, "%s requires integer operands", ex.Op)
				resBase = TypeInt
			}
		}
		if isCmp {
			return Scalar(TypeInt)
		}
		return Scalar(resBase)
	case *Logical:
		xt := c.checkExpr(ex.X)
		yt := c.checkExpr(ex.Y)
		if xt.IsMemory() || yt.IsMemory() {
			c.errf(ex.Line, "array operand of %s", ex.Op)
		}
		return Scalar(TypeInt)
	case *Cond:
		ct := c.checkExpr(ex.C)
		if ct.IsMemory() {
			c.errf(ex.Line, "array used as condition")
		}
		at := c.checkExpr(ex.A)
		bt := c.checkExpr(ex.B)
		if at.IsMemory() || bt.IsMemory() {
			c.errf(ex.Line, "array arm of ?:")
			return Scalar(TypeInt)
		}
		if numeric(at) == TypeDouble || numeric(bt) == TypeDouble {
			return Scalar(TypeDouble)
		}
		return Scalar(TypeInt)
	case *Assign2:
		lt := c.checkExpr(ex.Lhs)
		rt := c.checkExpr(ex.Rhs)
		if lt.IsMemory() {
			c.errf(ex.Line, "assignment to array")
			return Scalar(TypeInt)
		}
		if rt.IsMemory() {
			c.errf(ex.Line, "array used as assigned value")
		}
		if ex.Op == PercentEq && (numeric(lt) == TypeDouble || numeric(rt) == TypeDouble) {
			c.errf(ex.Line, "%%= requires integer operands")
		}
		if vr, ok := ex.Lhs.(*VarRef); ok {
			if sym := c.info.Refs[vr]; sym != nil && sym.Kind == SymParam && sym.Ty.IsPtr {
				c.errf(ex.Line, "assignment to pointer parameter %q", vr.Name)
			}
		}
		return Scalar(lt.Base)
	case *IncDec:
		t := c.checkExpr(ex.X)
		if t.IsMemory() {
			c.errf(ex.Line, "++/-- of array")
			return Scalar(TypeInt)
		}
		if numeric(t) == TypeDouble {
			c.errf(ex.Line, "++/-- of double")
		}
		return Scalar(TypeInt)
	case *Call:
		if ex.Name == "print" {
			if len(ex.Args) != 1 {
				c.errf(ex.Line, "print takes exactly one argument")
			}
			for _, a := range ex.Args {
				at := c.checkExpr(a)
				if at.IsMemory() {
					c.errf(ex.Line, "print of array")
				}
			}
			return Scalar(TypeVoid)
		}
		sig, ok := c.info.Funcs[ex.Name]
		if !ok {
			c.errf(ex.Line, "call to undefined function %q", ex.Name)
			for _, a := range ex.Args {
				c.checkExpr(a)
			}
			return Scalar(TypeInt)
		}
		c.info.Calls[ex] = sig
		if len(ex.Args) != len(sig.Params) {
			c.errf(ex.Line, "%s expects %d arguments, got %d", ex.Name, len(sig.Params), len(ex.Args))
		}
		for i, a := range ex.Args {
			at := c.checkExpr(a)
			if i >= len(sig.Params) {
				continue
			}
			pt := sig.Params[i].Ty
			if pt.IsPtr {
				if !at.IsMemory() {
					c.errf(ex.Line, "argument %d of %s must be an array", i+1, ex.Name)
				} else if at.Base != pt.Base {
					c.errf(ex.Line, "argument %d of %s: %s array passed to %s pointer",
						i+1, ex.Name, at.Base, pt.Base)
				}
			} else if at.IsMemory() {
				c.errf(ex.Line, "array passed to scalar parameter %d of %s", i+1, ex.Name)
			}
		}
		return Scalar(sig.Ret)
	}
	return Scalar(TypeInt)
}

// exprOf exists because checkExpr takes an Expr; VarRef is one.
func exprOf(v *VarRef) Expr { return v }
