package minic

// BaseType is a MiniC scalar type.
type BaseType uint8

// Scalar types.
const (
	TypeVoid BaseType = iota
	TypeInt           // 64-bit signed
	TypeChar          // 8-bit unsigned storage, int when loaded
	TypeDouble
)

func (t BaseType) String() string {
	switch t {
	case TypeVoid:
		return "void"
	case TypeInt:
		return "int"
	case TypeChar:
		return "char"
	case TypeDouble:
		return "double"
	}
	return "?"
}

// ElemSize returns the in-memory element size in bytes.
func (t BaseType) ElemSize() int {
	if t == TypeChar {
		return 1
	}
	return 8
}

// Type is a MiniC type: a scalar, an array of a scalar, or a pointer
// to a scalar (parameters only).
type Type struct {
	Base    BaseType
	IsArray bool
	IsPtr   bool
	ArrayN  int64 // elements, for IsArray
}

// Scalar returns a plain scalar type.
func Scalar(b BaseType) Type { return Type{Base: b} }

// ArrayOf returns an array type of n elements.
func ArrayOf(b BaseType, n int64) Type { return Type{Base: b, IsArray: true, ArrayN: n} }

// PtrTo returns a pointer-to-scalar type.
func PtrTo(b BaseType) Type { return Type{Base: b, IsPtr: true} }

// IsMemory reports whether the value lives in memory and is indexed
// (arrays and pointers).
func (t Type) IsMemory() bool { return t.IsArray || t.IsPtr }

func (t Type) String() string {
	switch {
	case t.IsArray:
		return t.Base.String() + "[]"
	case t.IsPtr:
		return t.Base.String() + "*"
	default:
		return t.Base.String()
	}
}

// --- Expressions ---

// Expr is a MiniC expression node.
type Expr interface{ exprNode() }

// IntLit is an integer (or char) literal.
type IntLit struct {
	Val  int64
	Line int32
}

// FloatLit is a double literal.
type FloatLit struct {
	Val  float64
	Line int32
}

// VarRef names a variable (global, local, or parameter).
type VarRef struct {
	Name string
	Line int32
}

// Index is arr[idx].
type Index struct {
	Arr  *VarRef
	Idx  Expr
	Line int32
}

// Unary is -x, !x, ~x.
type Unary struct {
	Op   Kind
	X    Expr
	Line int32
}

// Cast is (int)x or (double)x.
type Cast struct {
	To   BaseType
	X    Expr
	Line int32
}

// Binary is x op y for arithmetic/comparison/bitwise operators.
type Binary struct {
	Op   Kind
	X, Y Expr
	Line int32
}

// Logical is x && y or x || y (short-circuit).
type Logical struct {
	Op   Kind
	X, Y Expr
	Line int32
}

// Cond is c ? a : b.
type Cond struct {
	C, A, B Expr
	Line    int32
}

// Assign2 is lhs = rhs or compound lhs op= rhs. Lhs is a VarRef or
// Index.
type Assign2 struct {
	Op   Kind // Assign, PlusEq, ...
	Lhs  Expr
	Rhs  Expr
	Line int32
}

// IncDec is ++x, --x, x++, x--.
type IncDec struct {
	Op      Kind // Inc or Dec
	Postfix bool
	X       Expr // VarRef or Index
	Line    int32
}

// Call is f(args). The builtin print is represented as a Call with
// Name "print".
type Call struct {
	Name string
	Args []Expr
	Line int32
}

func (*IntLit) exprNode()   {}
func (*FloatLit) exprNode() {}
func (*VarRef) exprNode()   {}
func (*Index) exprNode()    {}
func (*Unary) exprNode()    {}
func (*Cast) exprNode()     {}
func (*Binary) exprNode()   {}
func (*Logical) exprNode()  {}
func (*Cond) exprNode()     {}
func (*Assign2) exprNode()  {}
func (*IncDec) exprNode()   {}
func (*Call) exprNode()     {}

// --- Statements ---

// Stmt is a MiniC statement node.
type Stmt interface{ stmtNode() }

// DeclStmt declares a local variable or array, optionally initialized.
type DeclStmt struct {
	Name string
	Ty   Type
	Init Expr // nil if none; scalars only
	Line int32
}

// ExprStmt evaluates an expression for side effects.
type ExprStmt struct {
	X    Expr
	Line int32
}

// Block is { stmts }.
type Block struct {
	Stmts []Stmt
	Line  int32
}

// If is if (c) then else els.
type If struct {
	Cond Expr
	Then Stmt
	Else Stmt // nil if absent
	Line int32
}

// While is while (c) body.
type While struct {
	Cond Expr
	Body Stmt
	Line int32
}

// For is for (init; cond; post) body. Init/Cond/Post may be nil; Init
// may be a DeclStmt or ExprStmt.
type For struct {
	Init Stmt
	Cond Expr
	Post Expr
	Body Stmt
	Line int32
}

// Return is return [x].
type Return struct {
	X    Expr // nil for void
	Line int32
}

// Break exits the innermost loop.
type Break struct{ Line int32 }

// Continue jumps to the innermost loop's post/condition.
type Continue struct{ Line int32 }

func (*DeclStmt) stmtNode() {}
func (*ExprStmt) stmtNode() {}
func (*Block) stmtNode()    {}
func (*If) stmtNode()       {}
func (*While) stmtNode()    {}
func (*For) stmtNode()      {}
func (*Return) stmtNode()   {}
func (*Break) stmtNode()    {}
func (*Continue) stmtNode() {}

// --- Declarations ---

// Param is one function parameter.
type Param struct {
	Name string
	Ty   Type
	Line int32
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Name   string
	Ret    BaseType
	Params []Param
	Body   *Block
	Line   int32
}

// GlobalDecl is a global variable or array.
type GlobalDecl struct {
	Name string
	Ty   Type
	// InitInt/InitFloat hold a constant scalar initializer.
	HasInit   bool
	InitInt   int64
	InitFloat float64
	Line      int32
}

// File is one parsed source file.
type File struct {
	Name    string
	Globals []*GlobalDecl
	Funcs   []*FuncDecl
}
