package minic

import "fmt"

// eval evaluates one expression.
func (in *Interp) eval(e Expr, fr *frame) (value, error) {
	if err := in.tick(lineOfExpr(e)); err != nil {
		return value{}, err
	}
	switch ex := e.(type) {
	case *IntLit:
		return intVal(ex.Val), nil
	case *FloatLit:
		return fpVal(ex.Val), nil

	case *VarRef:
		sym := in.info.Refs[ex]
		if sym == nil {
			return value{}, &RuntimeError{Line: ex.Line, Msg: "unresolved " + ex.Name}
		}
		if sym.Ty.IsMemory() {
			return value{}, &RuntimeError{Line: ex.Line, Msg: "array read as scalar: " + ex.Name}
		}
		if sym.Kind == SymParam {
			return *fr.params[sym.Index], nil
		}
		st, err := in.storageFor(sym, fr)
		if err != nil {
			return value{}, err
		}
		if st.ty.Base == TypeDouble {
			return fpVal(st.fps[0]), nil
		}
		return intVal(st.ints[0]), nil

	case *Index:
		st, idx, err := in.element(ex, fr)
		if err != nil {
			return value{}, err
		}
		if st.ty.Base == TypeDouble {
			return fpVal(st.fps[idx]), nil
		}
		return intVal(st.ints[idx]), nil

	case *Unary:
		v, err := in.eval(ex.X, fr)
		if err != nil {
			return value{}, err
		}
		switch ex.Op {
		case Minus:
			if v.fp {
				return fpVal(-v.f), nil
			}
			return intVal(-v.i), nil
		case Not:
			if v.truthy() {
				return intVal(0), nil
			}
			return intVal(1), nil
		case Tilde:
			return intVal(^v.asInt()), nil
		}
		return value{}, &RuntimeError{Line: ex.Line, Msg: "bad unary"}

	case *Cast:
		v, err := in.eval(ex.X, fr)
		if err != nil {
			return value{}, err
		}
		if ex.To == TypeDouble {
			return fpVal(v.asFP()), nil
		}
		return intVal(v.asInt()), nil

	case *Binary:
		x, err := in.eval(ex.X, fr)
		if err != nil {
			return value{}, err
		}
		y, err := in.eval(ex.Y, fr)
		if err != nil {
			return value{}, err
		}
		return in.binop(ex.Op, x, y, ex.Line)

	case *Logical:
		x, err := in.eval(ex.X, fr)
		if err != nil {
			return value{}, err
		}
		if ex.Op == AndAnd {
			if !x.truthy() {
				return intVal(0), nil
			}
		} else if x.truthy() {
			return intVal(1), nil
		}
		y, err := in.eval(ex.Y, fr)
		if err != nil {
			return value{}, err
		}
		if y.truthy() {
			return intVal(1), nil
		}
		return intVal(0), nil

	case *Cond:
		c, err := in.eval(ex.C, fr)
		if err != nil {
			return value{}, err
		}
		isFP := in.info.Types[ex.A].Base == TypeDouble || in.info.Types[ex.B].Base == TypeDouble
		var v value
		if c.truthy() {
			v, err = in.eval(ex.A, fr)
		} else {
			v, err = in.eval(ex.B, fr)
		}
		if err != nil {
			return value{}, err
		}
		if isFP {
			return fpVal(v.asFP()), nil
		}
		return intVal(v.asInt()), nil

	case *Assign2:
		return in.assign(ex, fr)

	case *IncDec:
		return in.incdec(ex, fr)

	case *Call:
		return in.callExpr(ex, fr)
	}
	return value{}, &RuntimeError{Msg: fmt.Sprintf("unknown expression %T", e)}
}

func (in *Interp) binop(op Kind, x, y value, line int32) (value, error) {
	if x.fp || y.fp {
		a, b := x.asFP(), y.asFP()
		switch op {
		case Plus:
			return fpVal(a + b), nil
		case Minus:
			return fpVal(a - b), nil
		case Star:
			return fpVal(a * b), nil
		case Slash:
			return fpVal(a / b), nil
		case EqEq:
			return boolVal(a == b), nil
		case NotEq:
			return boolVal(a != b), nil
		case Lt:
			return boolVal(a < b), nil
		case Le:
			return boolVal(a <= b), nil
		case Gt:
			return boolVal(a > b), nil
		case Ge:
			return boolVal(a >= b), nil
		}
		return value{}, &RuntimeError{Line: line, Msg: "float operands for " + op.String()}
	}
	a, b := x.i, y.i
	switch op {
	case Plus:
		return intVal(a + b), nil
	case Minus:
		return intVal(a - b), nil
	case Star:
		return intVal(a * b), nil
	case Slash:
		if b == 0 {
			return value{}, &RuntimeError{Line: line, Msg: "integer divide by zero"}
		}
		return intVal(a / b), nil
	case Percent:
		if b == 0 {
			return value{}, &RuntimeError{Line: line, Msg: "integer remainder by zero"}
		}
		return intVal(a % b), nil
	case And:
		return intVal(a & b), nil
	case Or:
		return intVal(a | b), nil
	case Xor:
		return intVal(a ^ b), nil
	case Shl:
		return intVal(a << (uint64(b) & 63)), nil
	case Shr:
		return intVal(a >> (uint64(b) & 63)), nil
	case EqEq:
		return boolVal(a == b), nil
	case NotEq:
		return boolVal(a != b), nil
	case Lt:
		return boolVal(a < b), nil
	case Le:
		return boolVal(a <= b), nil
	case Gt:
		return boolVal(a > b), nil
	case Ge:
		return boolVal(a >= b), nil
	}
	return value{}, &RuntimeError{Line: line, Msg: "bad operator " + op.String()}
}

func boolVal(b bool) value {
	if b {
		return intVal(1)
	}
	return intVal(0)
}

// element resolves arr[idx] to (storage, index).
func (in *Interp) element(ex *Index, fr *frame) (*storage, int64, error) {
	sym := in.info.Refs[ex.Arr]
	if sym == nil {
		return nil, 0, &RuntimeError{Line: ex.Line, Msg: "unresolved array " + ex.Arr.Name}
	}
	st, err := in.storageFor(sym, fr)
	if err != nil {
		return nil, 0, err
	}
	if st == nil {
		return nil, 0, &RuntimeError{Line: ex.Line, Msg: "nil storage for " + ex.Arr.Name}
	}
	iv, err := in.eval(ex.Idx, fr)
	if err != nil {
		return nil, 0, err
	}
	idx := iv.asInt()
	n := int64(len(st.ints))
	if st.ty.Base == TypeDouble {
		n = int64(len(st.fps))
	}
	if idx < 0 || idx >= n {
		return nil, 0, &RuntimeError{Line: ex.Line,
			Msg: fmt.Sprintf("index %d out of range [0,%d) for %s", idx, n, ex.Arr.Name)}
	}
	return st, idx, nil
}

// storeElem writes v into st[idx] honoring the element type.
func storeElem(st *storage, idx int64, v value) {
	switch st.ty.Base {
	case TypeDouble:
		st.fps[idx] = v.asFP()
	case TypeChar:
		st.ints[idx] = v.asInt() & 0xFF
	default:
		st.ints[idx] = v.asInt()
	}
}

func loadElem(st *storage, idx int64) value {
	if st.ty.Base == TypeDouble {
		return fpVal(st.fps[idx])
	}
	return intVal(st.ints[idx])
}

func (in *Interp) assign(ex *Assign2, fr *frame) (value, error) {
	// Evaluate the target location first, then the RHS — matching
	// the compiler's lowering order.
	switch lhs := ex.Lhs.(type) {
	case *VarRef:
		sym := in.info.Refs[lhs]
		if sym == nil {
			return value{}, &RuntimeError{Line: ex.Line, Msg: "unresolved " + lhs.Name}
		}
		cur, err := in.readScalar(sym, fr)
		if err != nil {
			return value{}, err
		}
		rhs, err := in.eval(ex.Rhs, fr)
		if err != nil {
			return value{}, err
		}
		nv, err := in.combine(ex.Op, cur, rhs, sym.Ty.Base, ex.Line)
		if err != nil {
			return value{}, err
		}
		if err := in.writeScalar(sym, fr, nv); err != nil {
			return value{}, err
		}
		return nv, nil

	case *Index:
		st, idx, err := in.element(lhs, fr)
		if err != nil {
			return value{}, err
		}
		cur := loadElem(st, idx)
		rhs, err := in.eval(ex.Rhs, fr)
		if err != nil {
			return value{}, err
		}
		nv, err := in.combine(ex.Op, cur, rhs, st.ty.Base, ex.Line)
		if err != nil {
			return value{}, err
		}
		storeElem(st, idx, nv)
		return nv, nil
	}
	return value{}, &RuntimeError{Line: ex.Line, Msg: "bad assignment target"}
}

// combine applies a (possibly compound) assignment operator.
func (in *Interp) combine(op Kind, cur, rhs value, base BaseType, line int32) (value, error) {
	var v value
	if op == Assign {
		v = rhs
	} else {
		var err error
		v, err = in.binop(binKindOf(op), cur, rhs, line)
		if err != nil {
			return value{}, err
		}
	}
	if base == TypeDouble {
		return fpVal(v.asFP()), nil
	}
	return intVal(v.asInt()), nil
}

func binKindOf(op Kind) Kind {
	switch op {
	case PlusEq:
		return Plus
	case MinusEq:
		return Minus
	case StarEq:
		return Star
	case SlashEq:
		return Slash
	case PercentEq:
		return Percent
	}
	return op
}

func (in *Interp) readScalar(sym *Sym, fr *frame) (value, error) {
	if sym.Kind == SymParam {
		return *fr.params[sym.Index], nil
	}
	st, err := in.storageFor(sym, fr)
	if err != nil {
		return value{}, err
	}
	if st.ty.Base == TypeDouble {
		return fpVal(st.fps[0]), nil
	}
	return intVal(st.ints[0]), nil
}

func (in *Interp) writeScalar(sym *Sym, fr *frame, v value) error {
	if sym.Kind == SymParam {
		*fr.params[sym.Index] = v
		return nil
	}
	st, err := in.storageFor(sym, fr)
	if err != nil {
		return err
	}
	if st.ty.Base == TypeDouble {
		st.fps[0] = v.asFP()
	} else if st.ty.Base == TypeChar && sym.Kind == SymGlobal && !st.ty.IsArray {
		st.ints[0] = v.asInt() & 0xFF
	} else {
		st.ints[0] = v.asInt()
	}
	return nil
}

func (in *Interp) incdec(ex *IncDec, fr *frame) (value, error) {
	delta := int64(1)
	if ex.Op == Dec {
		delta = -1
	}
	switch lhs := ex.X.(type) {
	case *VarRef:
		sym := in.info.Refs[lhs]
		cur, err := in.readScalar(sym, fr)
		if err != nil {
			return value{}, err
		}
		nv := intVal(cur.asInt() + delta)
		if sym.Ty.Base == TypeChar && sym.Kind == SymGlobal {
			nv = intVal(nv.i & 0xFF)
		}
		if err := in.writeScalar(sym, fr, nv); err != nil {
			return value{}, err
		}
		if ex.Postfix {
			return cur, nil
		}
		return nv, nil
	case *Index:
		st, idx, err := in.element(lhs, fr)
		if err != nil {
			return value{}, err
		}
		cur := loadElem(st, idx)
		nv := intVal(cur.asInt() + delta)
		storeElem(st, idx, nv)
		if ex.Postfix {
			return cur, nil
		}
		return loadElem(st, idx), nil
	}
	return value{}, &RuntimeError{Line: ex.Line, Msg: "bad ++/-- target"}
}

func (in *Interp) callExpr(ex *Call, fr *frame) (value, error) {
	if ex.Name == "print" {
		v, err := in.eval(ex.Args[0], fr)
		if err != nil {
			return value{}, err
		}
		if v.fp {
			in.FPOutput = append(in.FPOutput, v.f)
		} else {
			in.IntOutput = append(in.IntOutput, v.i)
		}
		return intVal(0), nil
	}
	fn := in.funcs[ex.Name]
	if fn == nil {
		return value{}, &RuntimeError{Line: ex.Line, Msg: "unknown function " + ex.Name}
	}
	args := make([]callArg, len(ex.Args))
	for i, a := range ex.Args {
		if i < len(fn.Params) && fn.Params[i].Ty.IsPtr {
			vr, ok := a.(*VarRef)
			if !ok {
				return value{}, &RuntimeError{Line: ex.Line, Msg: "array argument must be a name"}
			}
			sym := in.info.Refs[vr]
			st, err := in.storageFor(sym, fr)
			if err != nil {
				return value{}, err
			}
			args[i] = callArg{arr: st}
			continue
		}
		v, err := in.eval(a, fr)
		if err != nil {
			return value{}, err
		}
		args[i] = callArg{val: v}
	}
	return in.call(fn, args)
}

func lineOfExpr(e Expr) int32 {
	switch x := e.(type) {
	case *IntLit:
		return x.Line
	case *FloatLit:
		return x.Line
	case *VarRef:
		return x.Line
	case *Index:
		return x.Line
	case *Unary:
		return x.Line
	case *Cast:
		return x.Line
	case *Binary:
		return x.Line
	case *Logical:
		return x.Line
	case *Cond:
		return x.Line
	case *Assign2:
		return x.Line
	case *IncDec:
		return x.Line
	case *Call:
		return x.Line
	}
	return 0
}
