package minic

import (
	"strings"
	"testing"
)

func interpRun(t *testing.T, src string) *Interp {
	t.Helper()
	f, err := Parse("t.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := Check(f)
	if err != nil {
		t.Fatal(err)
	}
	in := NewInterp(f, info)
	if _, err := in.Run(); err != nil {
		t.Fatalf("interp: %v", err)
	}
	return in
}

func TestInterpBasics(t *testing.T) {
	in := interpRun(t, `
int g = 5;
int a[4];
int add(int x, int y) { return x + y; }
int main() {
	int i;
	for (i = 0; i < 4; i++) a[i] = i * i;
	print(add(g, a[3]));
	print(a[0] - 7);
	double d = 2.5 * 2.0;
	print(d);
	return 0;
}`)
	if len(in.IntOutput) != 2 || in.IntOutput[0] != 14 || in.IntOutput[1] != -7 {
		t.Fatalf("int output = %v", in.IntOutput)
	}
	if len(in.FPOutput) != 1 || in.FPOutput[0] != 5.0 {
		t.Fatalf("fp output = %v", in.FPOutput)
	}
}

func TestInterpControlFlow(t *testing.T) {
	in := interpRun(t, `
int main() {
	int s = 0; int i;
	for (i = 0; i < 10; i++) {
		if (i == 3) continue;
		if (i == 8) break;
		s += i;
	}
	print(s);
	while (s > 20) s -= 7;
	print(s);
	print(s > 10 ? 1 : 2);
	print(s > 10 && s < 20 ? 3 : 4);
	return 0;
}`)
	want := []int64{0 + 1 + 2 + 4 + 5 + 6 + 7, 25 - 7, 1, 3}
	for i, w := range want {
		if in.IntOutput[i] != w {
			t.Fatalf("output = %v, want %v", in.IntOutput, want)
		}
	}
}

func TestInterpPointerParams(t *testing.T) {
	in := interpRun(t, `
int data[8];
void fill(int *p, int n) {
	int i;
	for (i = 0; i < n; i++) p[i] = i * 10;
}
int total(int *p, int n) {
	int s = 0; int i;
	for (i = 0; i < n; i++) s += p[i];
	return s;
}
int main() {
	fill(data, 8);
	print(total(data, 8));
	int local[4];
	fill(local, 4);
	print(total(local, 4));
	return 0;
}`)
	if in.IntOutput[0] != 280 || in.IntOutput[1] != 60 {
		t.Fatalf("output = %v", in.IntOutput)
	}
}

func TestInterpRecursion(t *testing.T) {
	in := interpRun(t, `
int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
int main() { print(fib(12)); return 0; }`)
	if in.IntOutput[0] != 144 {
		t.Fatalf("fib(12) = %v", in.IntOutput)
	}
}

func TestInterpCharSemantics(t *testing.T) {
	in := interpRun(t, `
char buf[4];
int main() {
	buf[0] = 300;
	print(buf[0]);
	buf[1] = 'A';
	buf[1]++;
	print(buf[1]);
	return 0;
}`)
	if in.IntOutput[0] != 300&0xFF || in.IntOutput[1] != 'B' {
		t.Fatalf("output = %v", in.IntOutput)
	}
}

func TestInterpTraps(t *testing.T) {
	run := func(src string) error {
		f, err := Parse("t.mc", src)
		if err != nil {
			t.Fatal(err)
		}
		info, err := Check(f)
		if err != nil {
			t.Fatal(err)
		}
		in := NewInterp(f, info)
		_, err = in.Run()
		return err
	}
	if err := run(`int main() { int z = 0; return 5 / z; }`); err == nil {
		t.Error("divide by zero not trapped")
	}
	if err := run(`int a[4]; int main() { int i = 9; return a[i]; }`); err == nil {
		t.Error("out-of-bounds index not trapped")
	}
	if err := run(`int main() { while (1) {} return 0; }`); err == nil ||
		!strings.Contains(err.Error(), ErrFuel) {
		t.Errorf("fuel not enforced: %v", err)
	}
}

func TestInterpGlobalInjection(t *testing.T) {
	f, err := Parse("t.mc", `
int n = 0;
int vals[8];
double w[2];
int main() {
	int s = 0; int i;
	for (i = 0; i < n; i++) s += vals[i];
	print(s);
	print(w[0] + w[1]);
	return 0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	info, err := Check(f)
	if err != nil {
		t.Fatal(err)
	}
	in := NewInterp(f, info)
	if err := in.SetGlobalInts("n", []int64{3}); err != nil {
		t.Fatal(err)
	}
	if err := in.SetGlobalInts("vals", []int64{10, 20, 30}); err != nil {
		t.Fatal(err)
	}
	if err := in.SetGlobalFloats("w", []float64{1.25, 2.5}); err != nil {
		t.Fatal(err)
	}
	if _, err := in.Run(); err != nil {
		t.Fatal(err)
	}
	if in.IntOutput[0] != 60 || in.FPOutput[0] != 3.75 {
		t.Fatalf("output = %v %v", in.IntOutput, in.FPOutput)
	}
	if err := in.SetGlobalInts("nope", nil); err == nil {
		t.Error("missing global accepted")
	}
	if err := in.SetGlobalFloats("vals", nil); err == nil {
		t.Error("type mismatch accepted")
	}
}

func TestInterpLocalArrayPersistence(t *testing.T) {
	// A local array declared in a loop keeps its storage across
	// iterations (matching the compiled frame slot).
	in := interpRun(t, `
int main() {
	int i; int s = 0;
	for (i = 0; i < 3; i++) {
		int buf[2];
		buf[i % 2] = buf[i % 2] + 1;
		s = s * 10 + buf[0] + buf[1];
	}
	print(s);
	return 0;
}`)
	// iter0: buf[0]=1 -> s=1; iter1: buf[1]=1 -> s=12; iter2: buf[0]=2 -> s=123.
	if in.IntOutput[0] != 123 {
		t.Fatalf("output = %v, want [123]", in.IntOutput)
	}
}
