// Package minic implements the front end of MiniC, the small C-like
// language the reproduction's benchmark kernels are written in. MiniC
// exists so that the paper's *source-level* load-scheduling
// transformations can be expressed exactly as the paper writes them
// (Figures 6 and 8): the original and load-transformed kernels are two
// MiniC sources compiled by the same optimizing compiler, just as the
// paper compiles two C sources with the same DEC C flags.
//
// The language: int (64-bit), char (8-bit array element), double
// (float64), void; global and local variables and one-dimensional
// arrays; pointer parameters (int *p / int p[]); functions with
// recursion; if/else, while, for, break, continue, return; the usual C
// expression operators including ?:, short-circuit && and ||,
// compound assignment, and prefix/postfix ++/--; explicit (int)/
// (double) casts; and a builtin print(x).
package minic

import "fmt"

// Kind enumerates token kinds.
type Kind uint8

// Token kinds.
const (
	EOF Kind = iota
	IDENT
	INTLIT
	FLOATLIT
	CHARLIT

	// Keywords.
	KwInt
	KwChar
	KwDouble
	KwVoid
	KwIf
	KwElse
	KwWhile
	KwFor
	KwReturn
	KwBreak
	KwContinue

	// Punctuation and operators.
	LParen
	RParen
	LBrace
	RBrace
	LBrack
	RBrack
	Comma
	Semi
	Question
	Colon

	Assign    // =
	PlusEq    // +=
	MinusEq   // -=
	StarEq    // *=
	SlashEq   // /=
	PercentEq // %=

	OrOr    // ||
	AndAnd  // &&
	Or      // |
	Xor     // ^
	And     // &
	EqEq    // ==
	NotEq   // !=
	Lt      // <
	Le      // <=
	Gt      // >
	Ge      // >=
	Shl     // <<
	Shr     // >>
	Plus    // +
	Minus   // -
	Star    // *
	Slash   // /
	Percent // %
	Not     // !
	Tilde   // ~
	Inc     // ++
	Dec     // --
)

var kindNames = map[Kind]string{
	EOF: "EOF", IDENT: "identifier", INTLIT: "integer literal",
	FLOATLIT: "float literal", CHARLIT: "char literal",
	KwInt: "int", KwChar: "char", KwDouble: "double", KwVoid: "void",
	KwIf: "if", KwElse: "else", KwWhile: "while", KwFor: "for",
	KwReturn: "return", KwBreak: "break", KwContinue: "continue",
	LParen: "(", RParen: ")", LBrace: "{", RBrace: "}",
	LBrack: "[", RBrack: "]", Comma: ",", Semi: ";",
	Question: "?", Colon: ":",
	Assign: "=", PlusEq: "+=", MinusEq: "-=", StarEq: "*=",
	SlashEq: "/=", PercentEq: "%=",
	OrOr: "||", AndAnd: "&&", Or: "|", Xor: "^", And: "&",
	EqEq: "==", NotEq: "!=", Lt: "<", Le: "<=", Gt: ">", Ge: ">=",
	Shl: "<<", Shr: ">>", Plus: "+", Minus: "-", Star: "*",
	Slash: "/", Percent: "%", Not: "!", Tilde: "~", Inc: "++", Dec: "--",
}

// String returns a human-readable token kind name.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

var keywords = map[string]Kind{
	"int": KwInt, "char": KwChar, "double": KwDouble, "void": KwVoid,
	"if": KwIf, "else": KwElse, "while": KwWhile, "for": KwFor,
	"return": KwReturn, "break": KwBreak, "continue": KwContinue,
}

// Token is one lexical token.
type Token struct {
	Kind Kind
	Text string  // identifier spelling
	Int  int64   // INTLIT / CHARLIT value
	F    float64 // FLOATLIT value
	Line int32
}

func (t Token) String() string {
	switch t.Kind {
	case IDENT:
		return t.Text
	case INTLIT:
		return fmt.Sprintf("%d", t.Int)
	case FLOATLIT:
		return fmt.Sprintf("%g", t.F)
	default:
		return t.Kind.String()
	}
}
