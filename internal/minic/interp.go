package minic

import "fmt"

// Interp is a direct AST interpreter for MiniC: a second, independent
// implementation of the language semantics. The toolchain tests run
// programs through the interpreter AND through the compiler +
// simulator at several optimization levels and require identical
// output, so a divergence pinpoints a bug in one of the three
// implementations.
//
// Semantics mirror the compiled code exactly: int is a wrapping
// 64-bit two's-complement integer, shifts mask their count to 6 bits,
// division truncates toward zero and traps on a zero divisor, char
// array elements store the low byte, and scalar locals are
// zero-initialized at their declaration.
type Interp struct {
	file  *File
	info  *Info
	funcs map[string]*FuncDecl
	// declIdx mirrors the checker's per-function local numbering.
	declIdx map[*DeclStmt]int

	globals map[string]*storage

	// IntOutput and FPOutput collect print() results.
	IntOutput []int64
	FPOutput  []float64

	// Steps bounds execution; a RuntimeError with ErrFuel is
	// returned when exhausted.
	Steps int64
}

// storage is one variable's backing store. Scalars use len-1 slices.
type storage struct {
	ty   Type
	ints []int64
	fps  []float64
}

func newStorage(ty Type) *storage {
	n := int64(1)
	if ty.IsArray {
		n = ty.ArrayN
	}
	s := &storage{ty: ty}
	if ty.Base == TypeDouble {
		s.fps = make([]float64, n)
	} else {
		s.ints = make([]int64, n)
	}
	return s
}

// RuntimeError reports a trap during interpretation.
type RuntimeError struct {
	Line int32
	Msg  string
}

func (e *RuntimeError) Error() string {
	return fmt.Sprintf("minic interp: line %d: %s", e.Line, e.Msg)
}

// ErrFuel is the step-budget trap message.
const ErrFuel = "step budget exhausted"

// NewInterp prepares an interpreter for a checked file.
func NewInterp(f *File, info *Info) *Interp {
	in := &Interp{
		file:    f,
		info:    info,
		funcs:   make(map[string]*FuncDecl),
		declIdx: make(map[*DeclStmt]int),
		globals: make(map[string]*storage),
		Steps:   500_000_000,
	}
	for _, fn := range f.Funcs {
		in.funcs[fn.Name] = fn
		n := 0
		in.assignLocals(fn.Body, &n)
	}
	for _, g := range f.Globals {
		st := newStorage(g.Ty)
		if g.HasInit {
			if g.Ty.Base == TypeDouble {
				st.fps[0] = g.InitFloat
			} else {
				st.ints[0] = g.InitInt
				if g.Ty.Base == TypeChar {
					st.ints[0] &= 0xFF
				}
			}
		}
		in.globals[g.Name] = st
	}
	return in
}

// assignLocals numbers DeclStmts in the checker's traversal order
// (source order), so sym.Index matches.
func (in *Interp) assignLocals(s Stmt, n *int) {
	switch st := s.(type) {
	case *DeclStmt:
		in.declIdx[st] = *n
		*n++
	case *Block:
		for _, x := range st.Stmts {
			in.assignLocals(x, n)
		}
	case *If:
		in.assignLocals(st.Then, n)
		if st.Else != nil {
			in.assignLocals(st.Else, n)
		}
	case *While:
		in.assignLocals(st.Body, n)
	case *For:
		if st.Init != nil {
			in.assignLocals(st.Init, n)
		}
		in.assignLocals(st.Body, n)
	}
}

// SetGlobalInts fills an int/char global's storage (test-input
// injection, mirroring sim.Machine's symbol writes).
func (in *Interp) SetGlobalInts(name string, vals []int64) error {
	st, ok := in.globals[name]
	if !ok || st.ints == nil {
		return fmt.Errorf("minic interp: no int global %q", name)
	}
	copy(st.ints, vals)
	if st.ty.Base == TypeChar {
		for i := range st.ints {
			st.ints[i] &= 0xFF
		}
	}
	return nil
}

// SetGlobalFloats fills a double global's storage.
func (in *Interp) SetGlobalFloats(name string, vals []float64) error {
	st, ok := in.globals[name]
	if !ok || st.fps == nil {
		return fmt.Errorf("minic interp: no double global %q", name)
	}
	copy(st.fps, vals)
	return nil
}

// value is a runtime scalar.
type value struct {
	i  int64
	f  float64
	fp bool
}

func intVal(v int64) value  { return value{i: v} }
func fpVal(v float64) value { return value{f: v, fp: true} }

func (v value) asInt() int64 {
	if v.fp {
		return int64(v.f)
	}
	return v.i
}

func (v value) asFP() float64 {
	if v.fp {
		return v.f
	}
	return float64(v.i)
}

func (v value) truthy() bool {
	if v.fp {
		return v.f != 0
	}
	return v.i != 0
}

// frame is one function activation.
type frame struct {
	fn     *FuncDecl
	locals []*storage       // by checker local index
	params map[int]*value   // scalar params by position
	ptrs   map[int]*storage // pointer params by position
}

// control is the statement-level control-flow signal.
type control int

const (
	ctlNormal control = iota
	ctlBreak
	ctlContinue
	ctlReturn
)

// Run executes main and returns the exit code.
func (in *Interp) Run() (int64, error) {
	main, ok := in.funcs["main"]
	if !ok {
		return 0, &RuntimeError{Msg: "no main"}
	}
	v, err := in.call(main, nil)
	if err != nil {
		return 0, err
	}
	return v.asInt(), nil
}

func (in *Interp) tick(line int32) error {
	in.Steps--
	if in.Steps < 0 {
		return &RuntimeError{Line: line, Msg: ErrFuel}
	}
	return nil
}

// callArg is an evaluated argument: a scalar or an array reference.
type callArg struct {
	val value
	arr *storage
}

func (in *Interp) call(fn *FuncDecl, args []callArg) (value, error) {
	nloc := in.info.LocalCount[fn.Name]
	fr := &frame{
		fn:     fn,
		locals: make([]*storage, nloc),
		params: make(map[int]*value),
		ptrs:   make(map[int]*storage),
	}
	for i, p := range fn.Params {
		switch {
		case p.Ty.IsPtr:
			fr.ptrs[i] = args[i].arr
		case p.Ty.Base == TypeDouble:
			v := fpVal(args[i].val.asFP())
			fr.params[i] = &v
		default:
			v := intVal(args[i].val.asInt())
			fr.params[i] = &v
		}
	}
	ret, ctl, err := in.execBlock(fn.Body, fr)
	if err != nil {
		return value{}, err
	}
	if ctl != ctlReturn {
		ret = intVal(0)
	}
	switch fn.Ret {
	case TypeDouble:
		return fpVal(ret.asFP()), nil
	case TypeVoid:
		return intVal(0), nil
	default:
		return intVal(ret.asInt()), nil
	}
}

func (in *Interp) execBlock(b *Block, fr *frame) (value, control, error) {
	for _, s := range b.Stmts {
		v, ctl, err := in.execStmt(s, fr)
		if err != nil || ctl != ctlNormal {
			return v, ctl, err
		}
	}
	return value{}, ctlNormal, nil
}

func (in *Interp) execStmt(s Stmt, fr *frame) (value, control, error) {
	switch st := s.(type) {
	case *DeclStmt:
		if err := in.tick(st.Line); err != nil {
			return value{}, ctlNormal, err
		}
		idx := in.declIdx[st]
		// Arrays keep their storage across re-executions (compiled
		// code reuses the frame slot); scalars are re-initialized.
		if st.Ty.IsArray {
			if fr.locals[idx] == nil {
				fr.locals[idx] = newStorage(st.Ty)
			}
			return value{}, ctlNormal, nil
		}
		store := fr.locals[idx]
		if store == nil {
			store = newStorage(st.Ty)
			fr.locals[idx] = store
		}
		if st.Init != nil {
			v, err := in.eval(st.Init, fr)
			if err != nil {
				return value{}, ctlNormal, err
			}
			if st.Ty.Base == TypeDouble {
				store.fps[0] = v.asFP()
			} else {
				store.ints[0] = v.asInt()
			}
		} else if st.Ty.Base == TypeDouble {
			store.fps[0] = 0
		} else {
			store.ints[0] = 0
		}
		return value{}, ctlNormal, nil

	case *ExprStmt:
		_, err := in.eval(st.X, fr)
		return value{}, ctlNormal, err
	case *Block:
		return in.execBlock(st, fr)
	case *If:
		c, err := in.eval(st.Cond, fr)
		if err != nil {
			return value{}, ctlNormal, err
		}
		if c.truthy() {
			return in.execStmt(st.Then, fr)
		}
		if st.Else != nil {
			return in.execStmt(st.Else, fr)
		}
		return value{}, ctlNormal, nil
	case *While:
		for {
			if err := in.tick(st.Line); err != nil {
				return value{}, ctlNormal, err
			}
			c, err := in.eval(st.Cond, fr)
			if err != nil {
				return value{}, ctlNormal, err
			}
			if !c.truthy() {
				return value{}, ctlNormal, nil
			}
			v, ctl, err := in.execStmt(st.Body, fr)
			if err != nil {
				return value{}, ctlNormal, err
			}
			if ctl == ctlReturn {
				return v, ctl, nil
			}
			if ctl == ctlBreak {
				return value{}, ctlNormal, nil
			}
		}
	case *For:
		if st.Init != nil {
			if v, ctl, err := in.execStmt(st.Init, fr); err != nil || ctl == ctlReturn {
				return v, ctl, err
			}
		}
		for {
			if err := in.tick(st.Line); err != nil {
				return value{}, ctlNormal, err
			}
			if st.Cond != nil {
				c, err := in.eval(st.Cond, fr)
				if err != nil {
					return value{}, ctlNormal, err
				}
				if !c.truthy() {
					return value{}, ctlNormal, nil
				}
			}
			v, ctl, err := in.execStmt(st.Body, fr)
			if err != nil {
				return value{}, ctlNormal, err
			}
			if ctl == ctlReturn {
				return v, ctl, nil
			}
			if ctl == ctlBreak {
				return value{}, ctlNormal, nil
			}
			if st.Post != nil {
				if _, err := in.eval(st.Post, fr); err != nil {
					return value{}, ctlNormal, err
				}
			}
		}
	case *Return:
		if st.X == nil {
			return value{}, ctlReturn, nil
		}
		v, err := in.eval(st.X, fr)
		return v, ctlReturn, err
	case *Break:
		return value{}, ctlBreak, nil
	case *Continue:
		return value{}, ctlContinue, nil
	}
	return value{}, ctlNormal, &RuntimeError{Msg: fmt.Sprintf("unknown statement %T", s)}
}

// storageFor resolves a variable symbol to its backing store.
func (in *Interp) storageFor(sym *Sym, fr *frame) (*storage, error) {
	switch sym.Kind {
	case SymGlobal:
		return in.globals[sym.Name], nil
	case SymParam:
		if st, ok := fr.ptrs[sym.Index]; ok {
			return st, nil
		}
		return nil, &RuntimeError{Msg: "scalar parameter used as array: " + sym.Name}
	default:
		st := fr.locals[sym.Index]
		if st == nil {
			// A use before the declaration executed cannot happen in
			// checked code, but be defensive.
			st = newStorage(sym.Ty)
			fr.locals[sym.Index] = st
		}
		return st, nil
	}
}

// WriteSymbolInt64s makes Interp satisfy the same input-binding
// interface as the functional simulator's machine.
func (in *Interp) WriteSymbolInt64s(name string, vals []int64) error {
	return in.SetGlobalInts(name, vals)
}

// WriteSymbolFloat64s mirrors the simulator's binding method.
func (in *Interp) WriteSymbolFloat64s(name string, vals []float64) error {
	return in.SetGlobalFloats(name, vals)
}

// WriteSymbol fills a char array from raw bytes.
func (in *Interp) WriteSymbol(name string, b []byte) error {
	st, ok := in.globals[name]
	if !ok || st.ints == nil || st.ty.Base != TypeChar {
		return fmt.Errorf("minic interp: no char global %q", name)
	}
	if len(b) > len(st.ints) {
		return fmt.Errorf("minic interp: %d bytes exceed %q size %d", len(b), name, len(st.ints))
	}
	for i, c := range b {
		st.ints[i] = int64(c)
	}
	return nil
}
