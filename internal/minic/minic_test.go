package minic

import (
	"strings"
	"testing"
)

func TestLexBasics(t *testing.T) {
	toks, err := LexAll("t.mc", `int x = 42; // comment
double d = 3.5; /* block
comment */ char c;`)
	if err != nil {
		t.Fatal(err)
	}
	kinds := []Kind{KwInt, IDENT, Assign, INTLIT, Semi, KwDouble, IDENT,
		Assign, FLOATLIT, Semi, KwChar, IDENT, Semi, EOF}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Errorf("token %d = %s, want %s", i, toks[i].Kind, k)
		}
	}
	if toks[3].Int != 42 || toks[8].F != 3.5 {
		t.Error("literal values wrong")
	}
	if toks[10].Line != 3 {
		t.Errorf("line tracking wrong: %d", toks[10].Line)
	}
}

func TestLexOperators(t *testing.T) {
	toks, err := LexAll("t.mc", "a += b && c || d == e != f <= g >= h << i >> j ++ -- ? : % ^ ~")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []Kind
	for _, tk := range toks {
		if tk.Kind != IDENT && tk.Kind != EOF {
			kinds = append(kinds, tk.Kind)
		}
	}
	want := []Kind{PlusEq, AndAnd, OrOr, EqEq, NotEq, Le, Ge, Shl, Shr,
		Inc, Dec, Question, Colon, Percent, Xor, Tilde}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("op %d = %s, want %s", i, kinds[i], want[i])
		}
	}
}

func TestLexLiterals(t *testing.T) {
	toks, err := LexAll("t.mc", "0x1F 'a' '\\n' '\\0' 1e3 2.5e-2 077")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Int != 31 {
		t.Errorf("hex = %d", toks[0].Int)
	}
	if toks[1].Int != 'a' || toks[2].Int != '\n' || toks[3].Int != 0 {
		t.Error("char literals wrong")
	}
	if toks[4].Kind != FLOATLIT || toks[4].F != 1000 {
		t.Errorf("1e3 = %v", toks[4])
	}
	if toks[5].F != 0.025 {
		t.Errorf("2.5e-2 = %v", toks[5].F)
	}
	if toks[6].Int != 63 { // octal via strconv base 0
		t.Errorf("077 = %d", toks[6].Int)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"@", "'x", "/* unterminated", "'\\q'"} {
		if _, err := LexAll("t.mc", src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

const goodProgram = `
int n = 10;
int table[100];
char seq[256];
double weights[32];

int max2(int a, int b) {
	if (a > b) return a;
	return b;
}

int sum(int *arr, int len) {
	int s = 0;
	int i;
	for (i = 0; i < len; i++) s += arr[i];
	return s;
}

double scale(double x) {
	return x * 2.5 + (double)n;
}

int main() {
	int i;
	int acc = 0;
	for (i = 0; i < n; i++) {
		table[i] = i * i;
		seq[i] = 'A' + i % 4;
	}
	while (acc < 100) {
		acc += max2(3, 4);
		if (acc == 50) continue;
		if (acc > 90) break;
	}
	acc = acc > 10 ? acc : -acc;
	print(sum(table, n));
	print(acc);
	print((int)scale(2.0));
	return 0;
}
`

func TestParseAndCheckGoodProgram(t *testing.T) {
	f, err := Parse("good.mc", goodProgram)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Globals) != 4 || len(f.Funcs) != 4 {
		t.Fatalf("globals=%d funcs=%d", len(f.Globals), len(f.Funcs))
	}
	if f.Globals[1].Ty.ArrayN != 100 || f.Globals[2].Ty.Base != TypeChar {
		t.Error("global types wrong")
	}
	info, err := Check(f)
	if err != nil {
		t.Fatal(err)
	}
	if info.Funcs["sum"].Params[0].Ty != PtrTo(TypeInt) {
		t.Error("pointer parameter type wrong")
	}
	if info.LocalCount["main"] < 2 {
		t.Errorf("main locals = %d", info.LocalCount["main"])
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"int main() { return 0 }",          // missing semi
		"int main() { if (1) }",            // missing stmt
		"int x[0]; int main() {return 0;}", // zero-size array
		"int main() { 3 = x; return 0; }",  // non-lvalue assign
		"int main() { int a[3] = 1; return 0; }",
		"void x; int main() { return 0; }",
		"int main() { for (;; }",
		"int f(void v) { return 0; }",
		"int main() { return (1; }",
	}
	for _, src := range bad {
		if _, err := Parse("bad.mc", src); err == nil {
			t.Errorf("parse accepted %q", src)
		}
	}
}

func TestCheckErrors(t *testing.T) {
	bad := map[string]string{
		"undefined var":      "int main() { return x; }",
		"undefined func":     "int main() { return f(); }",
		"no main":            "int f() { return 0; }",
		"bad main sig":       "int main(int x) { return 0; }",
		"dup global":         "int x; int x; int main() { return 0; }",
		"dup func":           "int f() {return 0;} int f() {return 0;} int main() { return 0; }",
		"dup param":          "int f(int a, int a) { return 0; } int main() { return f(1,1); }",
		"index non-array":    "int main() { int x; return x[0]; }",
		"array as scalar":    "int a[4]; int main() { return a + 1; }",
		"arg count":          "int f(int a) { return a; } int main() { return f(); }",
		"scalar to ptr":      "int f(int *p) { return p[0]; } int main() { return f(3); }",
		"array to scalar":    "int a[4]; int f(int x) { return x; } int main() { return f(a); }",
		"ptr elem mismatch":  "char a[4]; int f(int *p) { return p[0]; } int main() { return f(a); }",
		"break outside loop": "int main() { break; return 0; }",
		"cont outside loop":  "int main() { continue; return 0; }",
		"void return value":  "void f() { return 3; } int main() { f(); return 0; }",
		"missing return val": "int f() { return; } int main() { return f(); }",
		"mod double":         "int main() { double d; d = 1.0 % 2.0; return 0; }",
		"shift double":       "int main() { double d = 1.0 << 2; return 0; }",
		"incdec double":      "int main() { double d; d++; return 0; }",
		"assign ptr param":   "int f(int *p) { p = p; return 0; } int main() { int a[2]; return f(a); }",
		"print arity":        "int main() { print(1, 2); return 0; }",
		"redefine print":     "int print(int x) { return x; } int main() { return 0; }",
		"redecl in scope":    "int main() { int x; int x; return 0; }",
		"float init for int": "int g = 2.5; int main() { return 0; }",
		"array initializer":  "int a[3] = 5; int main() { return 0; }",
	}
	for name, src := range bad {
		f, err := Parse("bad.mc", src)
		if err != nil {
			continue // some are parse errors; also fine
		}
		if _, err := Check(f); err == nil {
			t.Errorf("%s: checker accepted %q", name, src)
		}
	}
}

func TestScopes(t *testing.T) {
	src := `
int x = 1;
int main() {
	int x = 2;
	{
		int x = 3;
		print(x);
	}
	print(x);
	for (int x = 0; x < 1; x++) print(x);
	return x;
}`
	f, err := Parse("scope.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Check(f); err != nil {
		t.Fatal(err)
	}
}

func TestTypePromotion(t *testing.T) {
	src := `
double d;
int main() {
	int i = 3;
	d = i * 2.5;
	i = (int)(d + 0.5);
	if (d > 1) return 1;
	return i;
}`
	f, err := Parse("promo.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := Check(f)
	if err != nil {
		t.Fatal(err)
	}
	// Find the Binary i * 2.5 and confirm it typed as double.
	found := false
	for e, ty := range info.Types {
		if b, ok := e.(*Binary); ok && b.Op == Star {
			if ty.Base != TypeDouble {
				t.Errorf("i * 2.5 typed as %s", ty)
			}
			found = true
		}
	}
	if !found {
		t.Error("multiply expression not found in type table")
	}
}

func TestGlobalInitializers(t *testing.T) {
	src := `
int a = -5;
double pi = 3.25;
double negint = -2;
char c = 'x';
int main() { return a; }`
	f, err := Parse("init.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	if f.Globals[0].InitInt != -5 {
		t.Error("negative int init")
	}
	if f.Globals[1].InitFloat != 3.25 {
		t.Error("float init")
	}
	if f.Globals[2].InitFloat != -2 {
		t.Error("int literal into double global")
	}
	if f.Globals[3].InitInt != 'x' {
		t.Error("char init")
	}
	if _, err := Check(f); err != nil {
		t.Fatal(err)
	}
}

func TestSyntaxErrorFormat(t *testing.T) {
	_, err := Parse("file.mc", "int main() { $ }")
	if err == nil || !strings.Contains(err.Error(), "file.mc:1") {
		t.Errorf("error %v lacks position", err)
	}
}

func TestPrecedence(t *testing.T) {
	// 2+3*4 parses as 2+(3*4); check shape.
	f, err := Parse("prec.mc", "int main() { return 2 + 3 * 4 == 14 && 1; }")
	if err != nil {
		t.Fatal(err)
	}
	ret := f.Funcs[0].Body.Stmts[0].(*Return)
	log, ok := ret.X.(*Logical)
	if !ok || log.Op != AndAnd {
		t.Fatalf("top is %T, want &&", ret.X)
	}
	cmp, ok := log.X.(*Binary)
	if !ok || cmp.Op != EqEq {
		t.Fatalf("lhs is %T/%v, want ==", log.X, cmp)
	}
	add, ok := cmp.X.(*Binary)
	if !ok || add.Op != Plus {
		t.Fatalf("cmp lhs not +")
	}
	if mul, ok := add.Y.(*Binary); !ok || mul.Op != Star {
		t.Fatal("* not nested under +")
	}
}

func TestTernaryRightAssoc(t *testing.T) {
	f, err := Parse("tern.mc", "int main() { return 1 ? 2 : 3 ? 4 : 5; }")
	if err != nil {
		t.Fatal(err)
	}
	ret := f.Funcs[0].Body.Stmts[0].(*Return)
	c := ret.X.(*Cond)
	if _, ok := c.B.(*Cond); !ok {
		t.Error("?: should nest in the else arm")
	}
}

func TestCastVsParen(t *testing.T) {
	f, err := Parse("cast.mc", "int main() { double d; d = (double)3; return (int)(d) + (1); }")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Check(f); err != nil {
		t.Fatal(err)
	}
}

func TestPostfixIncDec(t *testing.T) {
	src := `int a[4]; int main() { int i = 0; a[i++] = 5; a[2]--; ++i; return i; }`
	f, err := Parse("inc.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Check(f); err != nil {
		t.Fatal(err)
	}
}
