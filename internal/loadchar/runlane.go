package loadchar

import (
	"encoding/binary"

	"bioperfload/internal/isa"
	"bioperfload/internal/runstream"
	"bioperfload/internal/sim"
)

// The run lane is the spine of the block-characterized replay: it
// consumes the PC-run stream in commit order and drives the dependence
// and sequence state machines — the only two passes whose per-event
// state survives across events. Instead of stepping them per event, it
// memoizes (state, run) → (deltas, next state): both machines are
// oblivious to branch outcomes and addresses (depPass reads only
// PC/Inst; the mispredict join happens in the predictor lane via the
// recorded fed flags; seqPass reads only PC/Inst/Seq with sequence
// numbers entering solely as bounded ages), so identical machine state
// at the start of an identical run yields identical deltas and
// identical next state. Hot runs — the overwhelming majority in loop
// programs — reduce to one hash probe and a handful of counter
// increments.

// nDepRegs is the register-file footprint of the dep/seq machines.
const nDepRegs = isa.NumIntRegs + isa.NumFPRegs

// evalBase is the synthetic sequence number of a memo evaluation's
// first event. It exceeds proximity so seeded ages never underflow.
const evalBase = uint64(proximity) + 2

// savedPending is the canonical form of one pending-load slot: age is
// the distance from its arming to the next run's first event, 1..
// proximity; 0 marks an inactive (or expired, which is behaviorally
// identical) slot.
type savedPending struct {
	loadPC      int32
	afterBranch int32
	age         uint8
}

// savedState is the canonical dep+seq machine state between runs.
// Canonicalization collapses behaviorally identical raw states:
// depth<0 register slots normalize their sources to -1, and pending
// loads or branches older than proximity normalize to absent.
type savedState struct {
	deps          [nDepRegs]regDep
	pending       [nDepRegs]savedPending
	lastBranchPC  int32
	lastBranchAge uint8 // 0 = none within proximity
}

// credit is one (load, branch) attribution with its multiplicity
// within a single run evaluation.
type credit struct {
	loadPC   int32
	branchPC int32
	n        uint32
}

// transition is the memoized effect of one run on one starting state.
type transition struct {
	next       uint32   // next state ID
	fedMask    []uint64 // fed flags over the run's cond-branch ordinals; nil if none fed
	fedCount   uint32   // fed branch instances per execution
	depCredits []credit
	seqCredits []credit
	occ        uint64 // times this (state, run) pair occurred
}

// runTok is one token of a chunk's run stream as the shard lanes see
// it: the interned run plus its repeat count (always 1 for legacy
// chunks, taken from the dictionary token stream for v4).
type runTok struct {
	ri  *runInfo
	rep int32
}

// chunkAnn is the run lane's per-chunk annotation for the shard lanes:
// the interned (run, repeat) token of every PC run in the chunk, and
// the fed-flag bitmap over the chunk's conditional-branch ordinals
// (bit i set ⇔ the chunk's i-th dynamic conditional branch consumed a
// load-derived value, joining with the predictor lane's mispredict
// outcomes to produce fedBranchMiss). Immutable once the run lane
// publishes it.
type chunkAnn struct {
	toks []runTok
	fed  []uint64
	nBr  int
}

func (a *chunkAnn) fedAt(i int) bool { return a.fed[i>>6]&(1<<(i&63)) != 0 }

// memoTable is an open-addressing hash from (state, pc, n) to
// transition index+1 (0 = empty). Bounded: past maxMemoEntries,
// lookups keep working and misses evaluate without inserting.
type memoTable struct {
	keys []memoKey
	vals []uint32
	used int
}

type memoKey struct {
	state uint32
	pc    int32
	n     int32
}

const maxMemoEntries = 1 << 20

func mixKey(k memoKey) uint64 {
	h := uint64(k.state)*0x9e3779b97f4a7c15 ^
		uint64(uint32(k.pc))*0xc2b2ae3d27d4eb4f ^
		uint64(uint32(k.n))*0x165667b19e3779f9
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	return h
}

func newMemoTable() *memoTable {
	const initSize = 1 << 14
	return &memoTable{keys: make([]memoKey, initSize), vals: make([]uint32, initSize)}
}

// lookup returns the stored transition index+1, or 0 on miss.
func (m *memoTable) lookup(k memoKey) uint32 {
	mask := uint64(len(m.keys) - 1)
	for i := mixKey(k) & mask; ; i = (i + 1) & mask {
		v := m.vals[i]
		if v == 0 {
			return 0
		}
		if m.keys[i] == k {
			return v
		}
	}
}

// insert stores k → transIdx+1 unless the table is at its entry cap.
func (m *memoTable) insert(k memoKey, val uint32) {
	if m.used >= maxMemoEntries {
		return
	}
	if (m.used+1)*10 > len(m.keys)*7 {
		m.grow()
	}
	mask := uint64(len(m.keys) - 1)
	for i := mixKey(k) & mask; ; i = (i + 1) & mask {
		if m.vals[i] == 0 {
			m.keys[i] = k
			m.vals[i] = val
			m.used++
			return
		}
	}
}

func (m *memoTable) grow() {
	old := *m
	m.keys = make([]memoKey, len(old.keys)*2)
	m.vals = make([]uint32, len(old.vals)*2)
	mask := uint64(len(m.keys) - 1)
	for i, v := range old.vals {
		if v == 0 {
			continue
		}
		k := old.keys[i]
		for j := mixKey(k) & mask; ; j = (j + 1) & mask {
			if m.vals[j] == 0 {
				m.keys[j] = k
				m.vals[j] = v
				break
			}
		}
	}
}

// runEngine is the run lane's full state: interned runs and machine
// states, the transition memo, and the private eval machines.
type runEngine struct {
	prog *isa.Program
	bt   *blockTable

	runs     map[uint64]*runInfo
	stateIDs map[string]uint32
	states   []savedState
	scratch  []byte

	memo  *memoTable
	trans []transition
	cur   uint32 // current state ID; chains across runs and chunks

	// dictRuns maps dictionary run ids to interned runs for v4
	// dictionary-backed chunks; dict pins the dictionary the mapping
	// was built against (the shared dictionary only ever grows, so ids
	// stay stable and the sync is an append).
	dictRuns []*runInfo
	dict     *runstream.Dict

	evalDep depPass
	evalSeq seqPass
	evalEvs []sim.Event

	capFed    []uint64
	capBrOrd  int32
	capFedCnt uint32
	capDep    []credit
	capSeq    []credit
}

func newRunEngine(prog *isa.Program) *runEngine {
	e := &runEngine{
		prog:     prog,
		bt:       newBlockTable(prog),
		runs:     make(map[uint64]*runInfo),
		stateIDs: make(map[string]uint32),
		memo:     newMemoTable(),
	}
	// State 0 is the canonical empty state (fresh machines).
	var empty savedState
	for i := range empty.deps {
		empty.deps[i] = regDep{depth: -1, srcA: -1, srcB: -1}
	}
	e.states = append(e.states, empty)
	e.stateIDs[string(e.stateKey(&empty))] = 0

	// The eval machines run in recording mode only. evalDep skips
	// depPass.init on purpose: credit() is never reached, so the
	// toBranch/fedBranch tables stay nil and untouched.
	for i := range e.evalDep.deps {
		e.evalDep.deps[i].depth = -1
	}
	e.evalDep.rec = func(branchPC int32, fed bool, srcA, srcB int32) {
		k := e.capBrOrd
		e.capBrOrd++
		if !fed {
			return
		}
		e.capFed[k>>6] |= 1 << (k & 63)
		e.capFedCnt++
		e.addDepCredit(srcA, branchPC)
		if srcB >= 0 && srcB != srcA {
			e.addDepCredit(srcB, branchPC)
		}
	}
	e.evalSeq.rec = func(loadPC, branchPC int32) {
		e.capSeq = addCredit(e.capSeq, loadPC, branchPC)
	}
	return e
}

func (e *runEngine) addDepCredit(loadPC, branchPC int32) {
	e.capDep = addCredit(e.capDep, loadPC, branchPC)
}

// addCredit bumps the matching (load, branch) pair or appends a new
// one; runs are short, so the linear scan beats a map.
func addCredit(cs []credit, loadPC, branchPC int32) []credit {
	for i := range cs {
		if cs[i].loadPC == loadPC && cs[i].branchPC == branchPC {
			cs[i].n++
			return cs
		}
	}
	return append(cs, credit{loadPC: loadPC, branchPC: branchPC, n: 1})
}

// stateKey serializes st's canonical sparse form into the engine's
// scratch buffer. Register indices (< nDepRegs = 128) never collide
// with the 0xff section separators.
func (e *runEngine) stateKey(st *savedState) []byte {
	b := e.scratch[:0]
	for i := range st.deps {
		d := &st.deps[i]
		if d.depth >= 0 {
			b = append(b, byte(i), byte(d.depth))
			b = binary.LittleEndian.AppendUint32(b, uint32(d.srcA))
			b = binary.LittleEndian.AppendUint32(b, uint32(d.srcB))
		}
	}
	b = append(b, 0xff)
	for i := range st.pending {
		p := &st.pending[i]
		if p.age != 0 {
			b = append(b, byte(i), p.age)
			b = binary.LittleEndian.AppendUint32(b, uint32(p.loadPC))
			b = binary.LittleEndian.AppendUint32(b, uint32(p.afterBranch))
		}
	}
	b = append(b, 0xff, st.lastBranchAge)
	if st.lastBranchAge != 0 {
		b = binary.LittleEndian.AppendUint32(b, uint32(st.lastBranchPC))
	}
	e.scratch = b
	return b
}

func (e *runEngine) internState(st *savedState) uint32 {
	key := e.stateKey(st)
	if id, ok := e.stateIDs[string(key)]; ok {
		return id
	}
	id := uint32(len(e.states))
	e.states = append(e.states, *st)
	e.stateIDs[string(key)] = id
	return id
}

// runFor interns the static characterization of run (pc, n).
func (e *runEngine) runFor(pc, n int32) *runInfo {
	key := uint64(uint32(pc))<<32 | uint64(uint32(n))
	if ri := e.runs[key]; ri != nil {
		return ri
	}
	ri := e.bt.makeRun(pc, n)
	e.runs[key] = ri
	return ri
}

// eval runs the dep and seq machines over run ri from state stateID,
// capturing deltas via the recording hooks, and returns the index of
// the freshly appended transition.
func (e *runEngine) eval(stateID uint32, ri *runInfo) uint32 {
	st := &e.states[stateID]

	// Seed the machines from the canonical state.
	e.evalDep.deps = st.deps
	for i := range st.pending {
		sp := &st.pending[i]
		if sp.age != 0 {
			e.evalSeq.pending[i] = pendingLoad{
				active: true, loadPC: sp.loadPC,
				afterBranch: sp.afterBranch, seq: evalBase - uint64(sp.age),
			}
		} else {
			e.evalSeq.pending[i] = pendingLoad{}
		}
	}
	e.evalSeq.haveBranch = st.lastBranchAge != 0
	e.evalSeq.lastBranchPC = st.lastBranchPC
	e.evalSeq.lastBranchSeq = evalBase - uint64(st.lastBranchAge)

	// Synthetic events: only PC/Seq/Inst are read in recording mode
	// (branch outcomes and addresses join in the shard lanes).
	n := int(ri.n)
	if cap(e.evalEvs) < n {
		e.evalEvs = make([]sim.Event, n+n/2+16)
	}
	evs := e.evalEvs[:n]
	for t := 0; t < n; t++ {
		pc := ri.pc + int32(t)
		evs[t] = sim.Event{PC: pc, Seq: evalBase + uint64(t), Inst: &e.prog.Insts[pc]}
	}

	// Reset capture buffers.
	nbrWords := (len(ri.brs) + 63) / 64
	if cap(e.capFed) < nbrWords {
		e.capFed = make([]uint64, nbrWords+4)
	}
	for i := 0; i < nbrWords; i++ {
		e.capFed[i] = 0
	}
	e.capBrOrd = 0
	e.capFedCnt = 0
	e.capDep = e.capDep[:0]
	e.capSeq = e.capSeq[:0]

	e.evalDep.observe(evs, nil)
	e.evalSeq.observe(evs)

	// Capture and canonicalize the resulting state.
	var next savedState
	next.deps = e.evalDep.deps
	for i := range next.deps {
		if next.deps[i].depth < 0 {
			next.deps[i] = regDep{depth: -1, srcA: -1, srcB: -1}
		}
	}
	endSeq := evalBase + uint64(n)
	for i := range e.evalSeq.pending {
		pd := &e.evalSeq.pending[i]
		if pd.active {
			if age := endSeq - pd.seq; age <= proximity {
				next.pending[i] = savedPending{loadPC: pd.loadPC, afterBranch: pd.afterBranch, age: uint8(age)}
			}
		}
	}
	if e.evalSeq.haveBranch {
		if age := endSeq - e.evalSeq.lastBranchSeq; age <= proximity {
			next.lastBranchAge = uint8(age)
			next.lastBranchPC = e.evalSeq.lastBranchPC
		}
	}

	tr := transition{next: e.internState(&next), fedCount: e.capFedCnt}
	if e.capFedCnt != 0 {
		tr.fedMask = append([]uint64(nil), e.capFed[:nbrWords]...)
	}
	if len(e.capDep) != 0 {
		tr.depCredits = append([]credit(nil), e.capDep...)
	}
	if len(e.capSeq) != 0 {
		tr.seqCredits = append([]credit(nil), e.capSeq...)
	}
	e.trans = append(e.trans, tr)
	return uint32(len(e.trans) - 1)
}

// orBitsAt ORs the low nbits of src into dst starting at bit offset
// off. dst must already span off+nbits bits.
func orBitsAt(dst []uint64, off int, src []uint64, nbits int) {
	w, s := off>>6, uint(off&63)
	for i := 0; nbits > 0; i++ {
		v := src[i]
		dst[w+i] |= v << s
		if s != 0 && nbits > int(64-s) {
			dst[w+i+1] |= v >> (64 - s)
		}
		nbits -= 64
	}
}

// processChunk advances the engine over one chunk's run stream and
// fills ann for the shard lanes. Legacy chunks carry one run per
// entry; v4 dictionary-backed chunks carry (run-id, repeat) tokens,
// where a state fixed point (the run maps the machine state to
// itself — every steady loop iteration after the first) collapses the
// remaining repeats into counter adds without further memo probes.
func (e *runEngine) processChunk(ch *runstream.Chunk, ann *chunkAnn) {
	ann.toks = ann.toks[:0]
	nWords := (ch.N + 63) / 64 // upper bound on cond-branch count
	if cap(ann.fed) < nWords {
		ann.fed = make([]uint64, nWords)
	}
	ann.fed = ann.fed[:nWords]
	for i := range ann.fed {
		ann.fed[i] = 0
	}
	brOff := 0
	if ch.Dict != nil {
		e.syncDict(ch.Dict)
		for _, tok := range ch.Tokens {
			ri := e.dictRuns[tok.ID]
			brOff = e.step(ann, ri, tok.Rep, brOff)
			ann.toks = append(ann.toks, runTok{ri: ri, rep: tok.Rep})
		}
	} else {
		for _, r := range ch.Runs {
			ri := e.runFor(r.PC, r.N)
			brOff = e.step(ann, ri, 1, brOff)
			ann.toks = append(ann.toks, runTok{ri: ri, rep: 1})
		}
	}
	ann.nBr = brOff
}

// syncDict extends dictRuns to cover dict, interning any new runs.
func (e *runEngine) syncDict(dict *runstream.Dict) {
	if e.dict != dict {
		e.dictRuns = e.dictRuns[:0]
		e.dict = dict
	}
	for len(e.dictRuns) < len(dict.Runs) {
		r := dict.Runs[len(e.dictRuns)]
		e.dictRuns = append(e.dictRuns, e.runFor(r.PC, r.N))
	}
}

// step advances the machine state over rep executions of ri starting
// at brOff in the chunk's cond-branch ordinal space, and returns the
// new brOff.
func (e *runEngine) step(ann *chunkAnn, ri *runInfo, rep int32, brOff int) int {
	for rep > 0 {
		ri.occ++
		key := memoKey{state: e.cur, pc: ri.pc, n: ri.n}
		ti := e.memo.lookup(key)
		if ti == 0 {
			ti = e.eval(e.cur, ri) + 1
			e.memo.insert(key, ti)
		}
		tr := &e.trans[ti-1]
		tr.occ++
		if tr.fedMask != nil {
			orBitsAt(ann.fed, brOff, tr.fedMask, len(ri.brs))
		}
		brOff += len(ri.brs)
		e.cur = tr.next
		rep--
		if rep > 0 && tr.next == key.state {
			// Fixed point: the remaining repeats all take this same
			// transition. Fed bits still land at distinct ordinals.
			tr.occ += uint64(rep)
			ri.occ += uint64(rep)
			if tr.fedMask != nil {
				for ; rep > 0; rep-- {
					orBitsAt(ann.fed, brOff, tr.fedMask, len(ri.brs))
					brOff += len(ri.brs)
				}
			} else {
				brOff += int(rep) * len(ri.brs)
				rep = 0
			}
		}
	}
	return brOff
}

// finish multiplies the interned characterizations by their occurrence
// counts into a's mix, dependence, and sequence tables. a must have
// mix/dep/seq initialized for the engine's program.
func (e *runEngine) finish(a *Analysis) {
	for _, ri := range e.runs {
		occ := ri.occ
		if occ == 0 {
			continue
		}
		a.mix.total += uint64(ri.n) * occ
		for c := range ri.classCounts {
			a.mix.classCounts[c] += uint64(ri.classCounts[c]) * occ
		}
		a.mix.fpCount += uint64(ri.fp) * occ
		a.mix.fpLoads += uint64(ri.fpLoads) * occ
		for _, off := range ri.loads {
			a.mix.counts[ri.pc+off] += occ
		}
	}
	for i := range e.trans {
		tr := &e.trans[i]
		if tr.occ == 0 {
			continue
		}
		a.dep.fedBranchExec += uint64(tr.fedCount) * tr.occ
		for _, c := range tr.depCredits {
			n := uint64(c.n) * tr.occ
			a.dep.toBranch[c.loadPC] += n
			fb := a.dep.fedBranch[c.loadPC]
			if fb == nil {
				fb = make(map[int32]uint64)
				a.dep.fedBranch[c.loadPC] = fb
			}
			fb[c.branchPC] += n
		}
		for _, c := range tr.seqCredits {
			ab := a.seq.afterBranch[c.loadPC]
			if ab == nil {
				ab = make(map[int32]uint64)
				a.seq.afterBranch[c.loadPC] = ab
			}
			ab[c.branchPC] += uint64(c.n) * tr.occ
		}
	}
}
