// Package loadchar is the paper's analysis framework: in one
// instrumented pass over a program's committed instruction stream it
// gathers everything Sections 2 and 3 measure — the instruction mix
// (Figure 1, Table 1), the static-load coverage curve (Figure 2),
// data-cache behaviour per level and per static load (Tables 2/5),
// per-branch prediction accuracy with the hybrid per-static-branch
// predictor (Tables 4/5), dynamic load-to-branch dependence sequences
// and branch-to-load sequences (Table 4), source-line attribution of
// hot loads (Table 5), and the Section 3 optimization-candidate
// selection.
package loadchar

import (
	"bioperfload/internal/bpred"
	"bioperfload/internal/cache"
	"bioperfload/internal/isa"
	"bioperfload/internal/sim"
)

// chainDepth bounds how many register-to-register operations a load's
// value may flow through while still counting as "feeding" a branch
// (the paper's tight dependence chains are 1-3 operations).
const chainDepth = 4

// proximity bounds, in dynamic instructions, how soon after a branch
// a load must execute (and how soon its value must be consumed) to
// count as a branch-to-load sequence.
const proximity = 4

// regDep tracks which loads a register's current value derives from.
type regDep struct {
	depth int8  // -1: not load-derived
	srcA  int32 // static PC of contributing load
	srcB  int32 // second contributing load or -1
}

// loadStats accumulates per-static-load counters.
type loadStats struct {
	Count    uint64 // dynamic executions
	L1Miss   uint64
	ToBranch uint64 // dynamic instances feeding a conditional branch
	// fedBranch counts, per branch PC, how often this load fed it.
	fedBranch map[int32]uint64
	// afterBranch counts, per branch PC, how often this load (with a
	// tight consumer) executed right after it.
	afterBranch map[int32]uint64
}

// Analysis is a sim.Observer that performs the full characterization
// in a single pass. Create with New, attach to a machine, Run, then
// query the report methods.
type Analysis struct {
	prog *isa.Program

	// Instruction mix.
	classCounts [isa.NumClasses]uint64
	fpCount     uint64
	fpLoads     uint64
	total       uint64

	// Memory hierarchy.
	hier *cache.Hierarchy

	// Branch prediction.
	bp *bpred.Tracker

	// Per-static-load stats, indexed by PC.
	loads map[int32]*loadStats

	// Dependence state.
	deps [isa.NumIntRegs + isa.NumFPRegs]regDep

	// Load-to-branch accounting.
	fedBranchExec uint64
	fedBranchMiss uint64

	// Branch-to-load: the most recent conditional branch.
	lastBranchPC  int32
	lastBranchSeq uint64
	haveBranch    bool

	// Pending tight-consumer checks for just-executed loads.
	pending [isa.NumIntRegs + isa.NumFPRegs]pendingLoad
}

type pendingLoad struct {
	active      bool
	loadPC      int32
	afterBranch int32 // -1 when not right after a branch
	seq         uint64
}

// New creates an analysis for the given program, using the paper's
// cache configuration and hybrid predictor.
func New(p *isa.Program) *Analysis {
	return NewWithConfig(p, cache.PaperConfig(), bpred.NewPaperHybrid())
}

// NewWithConfig creates an analysis with explicit cache and predictor
// configurations (for ablations).
func NewWithConfig(p *isa.Program, hc cache.HierarchyConfig, pred bpred.Predictor) *Analysis {
	a := &Analysis{
		prog:  p,
		hier:  cache.NewHierarchy(hc),
		bp:    bpred.NewTracker(pred),
		loads: make(map[int32]*loadStats),
	}
	for i := range a.deps {
		a.deps[i].depth = -1
	}
	return a
}

var (
	_ sim.Observer      = (*Analysis)(nil)
	_ sim.BatchObserver = (*Analysis)(nil)
)

// ObserveBatch implements sim.BatchObserver: the whole slab is
// processed with direct (non-interface) calls, so the per-instruction
// dispatch cost of the legacy Observer path is paid once per slab.
// The slab is recycled by the simulator after this returns; nothing
// here retains events, as required by the sim.Event contract.
func (a *Analysis) ObserveBatch(evs []sim.Event) {
	for i := range evs {
		a.Observe(&evs[i])
	}
}

func (a *Analysis) loadStatsFor(pc int32) *loadStats {
	ls := a.loads[pc]
	if ls == nil {
		ls = &loadStats{
			fedBranch:   make(map[int32]uint64),
			afterBranch: make(map[int32]uint64),
		}
		a.loads[pc] = ls
	}
	return ls
}

// regIndex maps an instruction register operand to the dependence
// table; FP registers live above the integer file.
func fpIdx(r uint8) int { return isa.NumIntRegs + int(r) }

// Observe implements sim.Observer.
func (a *Analysis) Observe(ev *sim.Event) {
	in := ev.Inst
	op := in.Op
	a.total++
	cls := isa.ClassOf(op)
	a.classCounts[cls]++
	if isa.IsFloat(op) {
		a.fpCount++
		if cls == isa.ClassLoad {
			a.fpLoads++
		}
	}

	// --- consumption checks for pending tight loads ---
	a.consume(in, ev.Seq)

	switch {
	case cls == isa.ClassLoad:
		ls := a.loadStatsFor(ev.PC)
		ls.Count++
		lvl, _ := a.hier.Access(ev.Addr, false)
		if lvl != cache.LevelL1 {
			ls.L1Miss++
		}
		// Dependence: the loaded register now derives from this load.
		dst := int(in.Rd)
		if op == isa.OpLdt {
			dst = fpIdx(in.Rd)
		}
		if !isZeroReg(in.Rd, op == isa.OpLdt) {
			a.deps[dst] = regDep{depth: 0, srcA: ev.PC, srcB: -1}
			after := int32(-1)
			if a.haveBranch && ev.Seq-a.lastBranchSeq <= proximity {
				after = a.lastBranchPC
			}
			a.pending[dst] = pendingLoad{active: true, loadPC: ev.PC, afterBranch: after, seq: ev.Seq}
		}

	case cls == isa.ClassStore:
		a.hier.Access(ev.Addr, true)

	case cls == isa.ClassCondBranch:
		mis := a.bp.Observe(ev.PC, ev.Taken)
		// Which loads feed the branch condition?
		d := a.deps[in.Ra]
		if in.Ra != isa.RZero && d.depth >= 0 {
			a.fedBranchExec++
			if mis {
				a.fedBranchMiss++
			}
			a.creditLoadToBranch(d.srcA, ev.PC)
			if d.srcB >= 0 && d.srcB != d.srcA {
				a.creditLoadToBranch(d.srcB, ev.PC)
			}
		}
		a.lastBranchPC = ev.PC
		a.lastBranchSeq = ev.Seq
		a.haveBranch = true

	default:
		a.propagate(in)
	}
}

func (a *Analysis) creditLoadToBranch(loadPC, branchPC int32) {
	ls := a.loadStatsFor(loadPC)
	ls.ToBranch++
	ls.fedBranch[branchPC]++
}

func isZeroReg(r uint8, isFP bool) bool {
	if isFP {
		return r == isa.FZero
	}
	return r == isa.RZero
}

// consume checks whether this instruction reads a register holding a
// pending just-loaded value within the proximity window, completing a
// branch-to-load sequence record.
func (a *Analysis) consume(in *isa.Inst, seq uint64) {
	check := func(idx int) {
		p := &a.pending[idx]
		if !p.active {
			return
		}
		if seq-p.seq > proximity {
			p.active = false
			return
		}
		if p.afterBranch >= 0 {
			ls := a.loadStatsFor(p.loadPC)
			ls.afterBranch[p.afterBranch]++
		}
		p.active = false
	}
	op := in.Op
	switch {
	case op == isa.OpNop || op == isa.OpHalt || op == isa.OpLdiq || op == isa.OpBr || op == isa.OpJsr:
	case op == isa.OpLdt || op == isa.OpLdq || op == isa.OpLdbu || op == isa.OpLda:
		check(int(in.Ra))
	case op == isa.OpStq || op == isa.OpStb:
		check(int(in.Ra))
		check(int(in.Rb))
	case op == isa.OpStt:
		check(int(in.Ra))
		check(fpIdx(in.Rb))
	case op == isa.OpAddt || op == isa.OpSubt || op == isa.OpMult || op == isa.OpDivt ||
		op == isa.OpCmpTeq || op == isa.OpCmpTlt || op == isa.OpCmpTle:
		check(fpIdx(in.Ra))
		check(fpIdx(in.Rb))
	case op == isa.OpCvtQT:
		check(int(in.Ra))
	case op == isa.OpCvtTQ, op == isa.OpFMov, op == isa.OpFNeg, op == isa.OpPrintF:
		check(fpIdx(in.Ra))
	case isa.IsCondBranch(op) || op == isa.OpRet || op == isa.OpPrint:
		check(int(in.Ra))
	case isa.IsCmov(op):
		check(int(in.Ra))
		check(int(in.Rb))
		check(int(in.Rd))
	default: // integer ALU
		check(int(in.Ra))
		if !in.HasImm {
			check(int(in.Rb))
		}
	}
}

// propagate advances the register dependence state for non-memory,
// non-branch instructions.
func (a *Analysis) propagate(in *isa.Inst) {
	op := in.Op
	clearDst := func(idx int) { a.deps[idx] = regDep{depth: -1}; a.pending[idx].active = false }

	merge := func(dst int, srcs ...int) {
		nd := regDep{depth: -1, srcA: -1, srcB: -1}
		for _, s := range srcs {
			d := a.deps[s]
			if d.depth < 0 || d.depth >= chainDepth {
				continue
			}
			if nd.depth < 0 {
				nd = regDep{depth: d.depth + 1, srcA: d.srcA, srcB: d.srcB}
				continue
			}
			if d.depth+1 > nd.depth {
				nd.depth = d.depth + 1
			}
			if nd.srcB < 0 && d.srcA != nd.srcA {
				nd.srcB = d.srcA
			}
		}
		a.deps[dst] = nd
		a.pending[dst].active = false
	}

	switch {
	case op == isa.OpLdiq || op == isa.OpLda:
		if !isZeroReg(in.Rd, false) {
			if op == isa.OpLda {
				merge(int(in.Rd), int(in.Ra))
			} else {
				clearDst(int(in.Rd))
			}
		}
	case isa.IsCmov(op):
		if !isZeroReg(in.Rd, false) {
			merge(int(in.Rd), int(in.Ra), int(in.Rb), int(in.Rd))
		}
	case op == isa.OpCmpTeq || op == isa.OpCmpTlt || op == isa.OpCmpTle:
		if !isZeroReg(in.Rd, false) {
			merge(int(in.Rd), fpIdx(in.Ra), fpIdx(in.Rb))
		}
	case op == isa.OpCvtQT:
		if !isZeroReg(in.Rd, true) {
			merge(fpIdx(in.Rd), int(in.Ra))
		}
	case op == isa.OpCvtTQ:
		if !isZeroReg(in.Rd, false) {
			merge(int(in.Rd), fpIdx(in.Ra))
		}
	case op == isa.OpFMov || op == isa.OpFNeg:
		if !isZeroReg(in.Rd, true) {
			merge(fpIdx(in.Rd), fpIdx(in.Ra))
		}
	case op == isa.OpAddt || op == isa.OpSubt || op == isa.OpMult || op == isa.OpDivt:
		if !isZeroReg(in.Rd, true) {
			merge(fpIdx(in.Rd), fpIdx(in.Ra), fpIdx(in.Rb))
		}
	case op == isa.OpPrint || op == isa.OpPrintF || op == isa.OpHalt || op == isa.OpNop:
	case op == isa.OpJsr:
		if !isZeroReg(in.Rd, false) {
			clearDst(int(in.Rd))
		}
	case op == isa.OpRet:
	default: // integer ALU
		if isZeroReg(in.Rd, false) {
			return
		}
		if in.HasImm {
			merge(int(in.Rd), int(in.Ra))
		} else {
			merge(int(in.Rd), int(in.Ra), int(in.Rb))
		}
	}
}
