// Package loadchar is the paper's analysis framework: in one
// instrumented pass over a program's committed instruction stream it
// gathers everything Sections 2 and 3 measure — the instruction mix
// (Figure 1, Table 1), the static-load coverage curve (Figure 2),
// data-cache behaviour per level and per static load (Tables 2/5),
// per-branch prediction accuracy with the hybrid per-static-branch
// predictor (Tables 4/5), dynamic load-to-branch dependence sequences
// and branch-to-load sequences (Table 4), source-line attribution of
// hot loads (Table 5), and the Section 3 optimization-candidate
// selection.
//
// The characterization is factored into five component passes — mix,
// cache, branch prediction, dependence chains, and branch-to-load
// sequences — each a self-contained state machine over the committed
// stream. Live analysis (Observe/ObserveBatch) runs the passes back to
// back over every slab; AnalyzeParallel runs each pass on its own
// goroutine over a recorded trace, which is exact (not sampled) because
// the passes share no state beyond the per-branch mispredict bits the
// predictor pass hands to the dependence pass.
package loadchar

import (
	"bioperfload/internal/bpred"
	"bioperfload/internal/cache"
	"bioperfload/internal/isa"
	"bioperfload/internal/sim"
)

// chainDepth bounds how many register-to-register operations a load's
// value may flow through while still counting as "feeding" a branch
// (the paper's tight dependence chains are 1-3 operations).
const chainDepth = 4

// proximity bounds, in dynamic instructions, how soon after a branch
// a load must execute (and how soon its value must be consumed) to
// count as a branch-to-load sequence.
const proximity = 4

// regDep tracks which loads a register's current value derives from.
type regDep struct {
	depth int8  // -1: not load-derived
	srcA  int32 // static PC of contributing load
	srcB  int32 // second contributing load or -1
}

// Analysis performs the full characterization. Create with New, attach
// to a machine (or replay a trace into it), then query the report
// methods. It implements both sim.Observer and sim.BatchObserver.
type Analysis struct {
	prog *isa.Program

	mix   mixPass
	cache cachePass
	bp    bpredPass
	dep   depPass
	seq   seqPass

	// bits carries the predictor pass's per-conditional-branch
	// mispredict outcomes to the dependence pass within one slab.
	bits misBits
	// one backs the legacy single-event Observe path.
	one [1]sim.Event
	// restored marks an analysis rebuilt from a Snapshot: reports work,
	// observation does not (the transient pass state is gone).
	restored bool

	// Exec records how a replay analysis actually ran (worker count and
	// any serial-collapse reason). Zero for live analyses.
	Exec Execution
}

// New creates an analysis for the given program, using the paper's
// cache configuration and hybrid predictor.
func New(p *isa.Program) *Analysis {
	return NewWithConfig(p, cache.PaperConfig(), bpred.NewPaperHybrid())
}

// NewWithConfig creates an analysis with explicit cache and predictor
// configurations (for ablations).
func NewWithConfig(p *isa.Program, hc cache.HierarchyConfig, pred bpred.Predictor) *Analysis {
	a := &Analysis{prog: p}
	a.mix.init(len(p.Insts))
	a.cache.init(hc, len(p.Insts))
	a.bp.init(pred)
	a.dep.init(len(p.Insts))
	a.seq.init()
	return a
}

var (
	_ sim.Observer      = (*Analysis)(nil)
	_ sim.BatchObserver = (*Analysis)(nil)
)

// ObserveBatch implements sim.BatchObserver: each component pass sweeps
// the whole slab in turn, so per-instruction dispatch is paid once per
// slab per pass and each pass's state stays hot in cache. The slab is
// recycled by the simulator after this returns; nothing here retains
// events, as required by the sim.Event contract.
func (a *Analysis) ObserveBatch(evs []sim.Event) {
	if a.restored {
		panic("loadchar: analysis restored from a snapshot cannot observe events")
	}
	a.mix.observe(evs)
	a.cache.observe(evs)
	a.bits.reset()
	a.bp.observe(evs, &a.bits)
	a.dep.observe(evs, &a.bits)
	a.seq.observe(evs)
}

// Observe implements sim.Observer (the legacy per-event path) by
// wrapping the event in a one-element slab.
func (a *Analysis) Observe(ev *sim.Event) {
	a.one[0] = *ev
	a.ObserveBatch(a.one[:])
}

// regIndex maps an instruction register operand to the dependence
// table; FP registers live above the integer file.
func fpIdx(r uint8) int { return isa.NumIntRegs + int(r) }

func isZeroReg(r uint8, isFP bool) bool {
	if isFP {
		return r == isa.FZero
	}
	return r == isa.RZero
}
