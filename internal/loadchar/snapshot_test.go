package loadchar

import (
	"bytes"
	"encoding/gob"
	"testing"
)

// TestSnapshotRoundTrip proves a snapshot — including a gob
// encode/decode cycle, the form the artifact store persists — renders
// byte-identical reports to the live analysis it was taken from.
func TestSnapshotRoundTrip(t *testing.T) {
	for _, name := range []string{"hmmsearch", "predator"} {
		t.Run(name, func(t *testing.T) {
			prog, live, _ := captureSlabs(t, name)
			want := RenderProfile(name, "test", live, 10)

			snap := live.Snapshot()
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
				t.Fatal(err)
			}
			var decoded Snapshot
			if err := gob.NewDecoder(&buf).Decode(&decoded); err != nil {
				t.Fatal(err)
			}
			restored, err := FromSnapshot(prog, &decoded)
			if err != nil {
				t.Fatal(err)
			}
			got := RenderProfile(name, "test", restored, 10)
			if got != want {
				t.Errorf("restored profile differs:\n--- live ---\n%s\n--- restored ---\n%s", want, got)
			}
			// The candidate selection walks different report paths than
			// RenderProfile; check it agrees too.
			lc := live.Candidates(0.01, 0.05, 0.2)
			rc := restored.Candidates(0.01, 0.05, 0.2)
			if len(lc) != len(rc) {
				t.Fatalf("candidate counts differ: %d vs %d", len(lc), len(rc))
			}
			for i := range lc {
				if lc[i] != rc[i] {
					t.Errorf("candidate %d differs: %+v vs %+v", i, lc[i], rc[i])
				}
			}
		})
	}
}

// TestSnapshotVersionRejected: a snapshot from a different layout
// version must be refused, not misinterpreted.
func TestSnapshotVersionRejected(t *testing.T) {
	prog, live, _ := captureSlabs(t, "predator")
	snap := live.Snapshot()
	snap.Version++
	if _, err := FromSnapshot(prog, snap); err == nil {
		t.Fatal("version mismatch accepted")
	}
}

// TestRestoredAnalysisCannotObserve: feeding events into a restored
// analysis is a programming error and must fail loudly.
func TestRestoredAnalysisCannotObserve(t *testing.T) {
	prog, live, slabs := captureSlabs(t, "predator")
	restored, err := FromSnapshot(prog, live.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ObserveBatch on a restored analysis did not panic")
		}
	}()
	restored.ObserveBatch(slabs[0])
}
