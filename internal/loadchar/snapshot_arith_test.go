package loadchar

import (
	"testing"

	"bioperfload/internal/isa"
	"bioperfload/internal/sim"
)

// replaySlabs feeds a fresh analysis the given slabs and returns it.
func replaySlabs(prog *isa.Program, slabs [][]sim.Event) *Analysis {
	a := New(prog)
	for _, s := range slabs {
		a.ObserveBatch(s)
	}
	return a
}

// renderSnap renders the profile a snapshot restores to, the same
// comparison surface the artifact store trusts.
func renderSnap(t *testing.T, prog *isa.Program, s *Snapshot) string {
	t.Helper()
	a, err := FromSnapshot(prog, s)
	if err != nil {
		t.Fatal(err)
	}
	return RenderProfile(prog.Name, "test", a, 10)
}

// TestSnapshotSubMergeRoundTrip pins the arithmetic the sampled
// characterization path depends on: (full − prefix) merged back onto
// the prefix reproduces the full snapshot's reports exactly. The
// prefix analysis is a genuine prefix — same events, same order — so
// Sub must succeed and the round trip must be byte-identical.
func TestSnapshotSubMergeRoundTrip(t *testing.T) {
	prog, live, slabs := captureSlabs(t, "predator")
	want := RenderProfile(prog.Name, "test", live, 10)
	k := len(slabs) / 2

	full := replaySlabs(prog, slabs).Snapshot()
	prefix := replaySlabs(prog, slabs[:k]).Snapshot()

	delta := replaySlabs(prog, slabs).Snapshot()
	if err := delta.Sub(prefix); err != nil {
		t.Fatalf("Sub: %v", err)
	}
	merged := replaySlabs(prog, slabs[:k]).Snapshot()
	if err := merged.Merge(delta); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if got := renderSnap(t, prog, merged); got != want {
		t.Errorf("prefix+delta differs from full:\n--- merged ---\n%s\n--- full ---\n%s", got, want)
	}
	if got := renderSnap(t, prog, full); got != want {
		t.Errorf("full snapshot differs from live render")
	}
}

// TestSnapshotSubRejectsNonPrefix: subtracting a larger run from a
// smaller one must error, not wrap around.
func TestSnapshotSubRejectsNonPrefix(t *testing.T) {
	prog, _, slabs := captureSlabs(t, "predator")
	full := replaySlabs(prog, slabs).Snapshot()
	prefix := replaySlabs(prog, slabs[:len(slabs)/2]).Snapshot()
	if err := prefix.Sub(full); err == nil {
		t.Fatal("subtracting a superset succeeded")
	}
}

// TestSnapshotScaleMatchesRepeatedMerge: Scale(w) must equal merging w
// copies — the definition of weighted extrapolation.
func TestSnapshotScaleMatchesRepeatedMerge(t *testing.T) {
	prog, _, slabs := captureSlabs(t, "predator")
	scaled := replaySlabs(prog, slabs).Snapshot()
	scaled.Scale(3)

	tripled := replaySlabs(prog, slabs).Snapshot()
	for i := 0; i < 2; i++ {
		if err := tripled.Merge(replaySlabs(prog, slabs).Snapshot()); err != nil {
			t.Fatalf("Merge: %v", err)
		}
	}
	if got, want := renderSnap(t, prog, scaled), renderSnap(t, prog, tripled); got != want {
		t.Errorf("Scale(3) differs from 3x merge:\n--- scaled ---\n%s\n--- merged ---\n%s", got, want)
	}
	// Rates are ratios of counts, so a uniformly scaled snapshot
	// renders the same percentages as the original.
	one := replaySlabs(prog, slabs).Snapshot()
	a1, err := FromSnapshot(prog, one)
	if err != nil {
		t.Fatal(err)
	}
	a3, err := FromSnapshot(prog, scaled)
	if err != nil {
		t.Fatal(err)
	}
	if m1, m3 := a1.Mix(), a3.Mix(); m1.LoadPct != m3.LoadPct || m1.BranchPct != m3.BranchPct {
		t.Errorf("scaling changed rates: %+v vs %+v", m1, m3)
	}
	if c1, c3 := a1.CacheReport(), a3.CacheReport(); c1 != c3 {
		t.Errorf("scaling changed cache report: %+v vs %+v", c1, c3)
	}
}

// TestSnapshotMergeRejectsMismatch: merging across snapshot versions
// or cache geometries is refused.
func TestSnapshotMergeRejectsMismatch(t *testing.T) {
	prog, _, slabs := captureSlabs(t, "predator")
	a := replaySlabs(prog, slabs).Snapshot()
	b := replaySlabs(prog, slabs).Snapshot()
	b.Version++
	if err := a.Merge(b); err == nil {
		t.Fatal("version mismatch merged")
	}
	c := replaySlabs(prog, slabs).Snapshot()
	c.CacheConfig.L1.Size *= 2
	if err := a.Merge(c); err == nil {
		t.Fatal("cache-config mismatch merged")
	}
}
