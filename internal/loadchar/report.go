package loadchar

import (
	"sort"

	"bioperfload/internal/cache"
	"bioperfload/internal/isa"
)

// Mix is one Figure 1 / Table 1 row.
type Mix struct {
	Total        uint64
	Loads        uint64
	Stores       uint64
	CondBranches uint64
	Other        uint64
	FPFraction   float64 // of all instructions (Table 1)
	LoadPct      float64
	StorePct     float64
	BranchPct    float64
	OtherPct     float64
}

// Mix returns the instruction-mix report.
func (a *Analysis) Mix() Mix {
	m := Mix{
		Total:        a.mix.total,
		Loads:        a.mix.classCounts[isa.ClassLoad],
		Stores:       a.mix.classCounts[isa.ClassStore],
		CondBranches: a.mix.classCounts[isa.ClassCondBranch],
	}
	m.Other = m.Total - m.Loads - m.Stores - m.CondBranches
	if m.Total > 0 {
		t := float64(m.Total)
		m.FPFraction = float64(a.mix.fpCount) / t
		m.LoadPct = 100 * float64(m.Loads) / t
		m.StorePct = 100 * float64(m.Stores) / t
		m.BranchPct = 100 * float64(m.CondBranches) / t
		m.OtherPct = 100 * float64(m.Other) / t
	}
	return m
}

// TotalLoads returns the dynamic load count.
func (a *Analysis) TotalLoads() uint64 { return a.mix.classCounts[isa.ClassLoad] }

// Coverage returns the cumulative fraction of dynamic loads covered
// by the top-k static loads for every k (Figure 2): Coverage()[0] is
// the hottest load's share, and the curve is non-decreasing to 1.
func (a *Analysis) Coverage() []float64 {
	var counts []uint64
	var total uint64
	for _, c := range a.mix.counts {
		if c == 0 {
			continue
		}
		counts = append(counts, c)
		total += c
	}
	sort.Slice(counts, func(i, j int) bool { return counts[i] > counts[j] })
	out := make([]float64, len(counts))
	var cum uint64
	for i, c := range counts {
		cum += c
		out[i] = float64(cum) / float64(total)
	}
	return out
}

// CoverageAt returns the fraction of dynamic loads covered by the top
// n static loads.
func (a *Analysis) CoverageAt(n int) float64 {
	cov := a.Coverage()
	if len(cov) == 0 {
		return 0
	}
	if n > len(cov) {
		n = len(cov)
	}
	if n <= 0 {
		return 0
	}
	return cov[n-1]
}

// StaticLoadCount returns how many distinct static loads executed.
func (a *Analysis) StaticLoadCount() int {
	n := 0
	for _, c := range a.mix.counts {
		if c != 0 {
			n++
		}
	}
	return n
}

// CacheReport returns the Table 2 row.
func (a *Analysis) CacheReport() cache.Report { return a.cache.hier.LoadReport() }

// Sequences is one Table 4 row pair.
type Sequences struct {
	// LoadToBranchPct is the percentage of executed loads that feed
	// a conditional branch through a tight dependence chain (4a).
	LoadToBranchPct float64
	// FedBranchMispredictRate is the average misprediction rate of
	// those branches, weighted by dynamic execution (4a).
	FedBranchMispredictRate float64
	// LoadAfterHardBranchPct is the percentage of executed loads
	// with tight consumers appearing right after a branch whose
	// misprediction rate is at least 5% (4b).
	LoadAfterHardBranchPct float64
	// OverallMispredictRate is the program's total conditional
	// branch misprediction rate.
	OverallMispredictRate float64
}

// Sequences computes the Table 4 metrics.
func (a *Analysis) Sequences() Sequences {
	var s Sequences
	totalLoads := a.TotalLoads()
	if totalLoads == 0 {
		return s
	}
	var toBranch uint64
	var afterHard uint64
	hard := a.bp.bp.HardToPredict(0.05, 16)
	for _, n := range a.dep.toBranch {
		toBranch += n
	}
	for _, ab := range a.seq.afterBranch {
		for brPC, n := range ab {
			if hard[brPC] {
				afterHard += n
			}
		}
	}
	// A load can feed several branches; clamp to the load count so
	// the metric stays a percentage of loads, like the paper's.
	if toBranch > totalLoads {
		toBranch = totalLoads
	}
	s.LoadToBranchPct = 100 * float64(toBranch) / float64(totalLoads)
	s.LoadAfterHardBranchPct = 100 * float64(afterHard) / float64(totalLoads)
	if a.dep.fedBranchExec > 0 {
		s.FedBranchMispredictRate = float64(a.dep.fedBranchMiss) / float64(a.dep.fedBranchExec)
	}
	s.OverallMispredictRate = a.bp.bp.Total().MispredictRate()
	return s
}

// HotLoad is one Table 5 row: a frequently executed static load with
// its behaviour and source attribution.
type HotLoad struct {
	PC             int32
	Frequency      float64 // share of all dynamic loads
	L1MissRate     float64
	BranchMispred  float64 // misprediction rate of the branches it feeds
	FeedsBranchPct float64 // share of its executions that feed a branch
	Func           string
	File           string
	Line           int32
}

// HotLoads returns the n most frequently executed static loads with
// their profile, the paper's Table 5.
func (a *Analysis) HotLoads(n int) []HotLoad {
	type kv struct {
		pc    int32
		count uint64
	}
	var all []kv
	for pc, c := range a.mix.counts {
		if c != 0 {
			all = append(all, kv{int32(pc), c})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].count != all[j].count {
			return all[i].count > all[j].count
		}
		return all[i].pc < all[j].pc
	})
	if n > len(all) {
		n = len(all)
	}
	total := a.TotalLoads()
	out := make([]HotLoad, 0, n)
	perBranch := a.bp.bp.PerBranch()
	for _, e := range all[:n] {
		h := HotLoad{PC: e.pc, Line: a.prog.Insts[e.pc].Pos.Line}
		if total > 0 {
			h.Frequency = float64(e.count) / float64(total)
		}
		if e.count > 0 {
			h.L1MissRate = float64(a.cache.l1miss[e.pc]) / float64(e.count)
			h.FeedsBranchPct = 100 * float64(a.dep.toBranch[e.pc]) / float64(e.count)
		}
		// Weighted misprediction rate of the branches this load feeds.
		var exec, mis float64
		for brPC, cnt := range a.dep.fedBranch[e.pc] {
			bs := perBranch[brPC]
			if bs.Executed == 0 {
				continue
			}
			exec += float64(cnt)
			mis += float64(cnt) * bs.MispredictRate()
		}
		if exec > 0 {
			h.BranchMispred = mis / exec
		}
		if f := a.prog.FuncAt(e.pc); f != nil {
			h.Func = f.Name
		}
		h.File = a.prog.FileName(a.prog.Insts[e.pc].Pos.File)
		out = append(out, h)
	}
	return out
}

// Candidate is a Section 3 optimization candidate: a frequently
// executed static load that leads to or follows a hard-to-predict
// branch and almost always hits in L1 (so the opportunity is hit
// latency, not misses).
type Candidate struct {
	HotLoad
	Reason string
}

// Candidates applies the paper's Section 3 selection: loads covering
// at least minFreq of dynamic loads whose fed branches mispredict at
// least minMispred of the time (or that follow such branches), with
// an L1 miss rate below maxMiss.
func (a *Analysis) Candidates(minFreq, minMispred, maxMiss float64) []Candidate {
	var out []Candidate
	hard := a.bp.bp.HardToPredict(minMispred, 16)
	for _, h := range a.HotLoads(len(a.mix.counts)) {
		if h.Frequency < minFreq || h.L1MissRate > maxMiss {
			continue
		}
		switch {
		case h.BranchMispred >= minMispred && h.FeedsBranchPct > 10:
			out = append(out, Candidate{HotLoad: h, Reason: "load-to-branch with hard branch"})
		default:
			for brPC := range a.seq.afterBranch[h.PC] {
				if hard[brPC] {
					out = append(out, Candidate{HotLoad: h, Reason: "load after hard-to-predict branch"})
					break
				}
			}
		}
	}
	return out
}

// Branches exposes the underlying per-branch statistics.
func (a *Analysis) Branches() map[int32]struct {
	Executed    uint64
	Mispredicts uint64
} {
	out := make(map[int32]struct {
		Executed    uint64
		Mispredicts uint64
	})
	for pc, s := range a.bp.bp.PerBranch() {
		out[pc] = struct {
			Executed    uint64
			Mispredicts uint64
		}{s.Executed, s.Mispredicts}
	}
	return out
}
