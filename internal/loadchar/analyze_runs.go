package loadchar

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"bioperfload/internal/bpred"
	"bioperfload/internal/cache"
	"bioperfload/internal/isa"
	"bioperfload/internal/runstream"
)

// Execution records how a replay analysis actually ran, so callers can
// distinguish "parallel requested, ran parallel" from the silent
// serial collapses that previously hid behind identical results.
type Execution struct {
	// RequestedWorkers is what the caller asked for.
	RequestedWorkers int `json:"requested_workers"`
	// Workers is the worker count the analysis actually used.
	Workers int `json:"workers"`
	// SerialReason is empty when the analysis ran parallel as
	// requested; otherwise one of the SerialReason* constants naming
	// why it ran with fewer workers.
	SerialReason string `json:"serial_reason,omitempty"`
}

// Parallel reports whether more than one analysis worker ran.
func (e Execution) Parallel() bool { return e.Workers > 1 }

// Serial-collapse reasons. Empty means the requested parallelism ran.
const (
	// SerialReasonRequested: the caller asked for at most one worker.
	SerialReasonRequested = "requested"
	// SerialReasonNoIndex: the trace predates the chunk index (format
	// v1), so the column engine cannot seek and replay fell back to the
	// fused in-order event loop.
	SerialReasonNoIndex = "no-index"
	// SerialReasonGOMAXPROCS: worker count clamped to schedulable CPUs.
	SerialReasonGOMAXPROCS = "gomaxprocs"
	// SerialReasonSingleChunk: the trace has too few chunks to split.
	SerialReasonSingleChunk = "single-chunk"
)

// bpLane replays the conditional-branch column for one partition of
// static branch PCs (pc mod nShards == mine), joining mispredict
// outcomes with the run lane's fed flags.
type bpLane struct {
	sh      *bpred.DenseShard
	nShards int
	mine    int
	fedMiss uint64
}

func newBpLane(nShards, mine int) *bpLane {
	return &bpLane{sh: bpred.NewPaperDenseShard(), nShards: nShards, mine: mine}
}

func (l *bpLane) chunk(ch *runstream.Chunk, ann *chunkAnn) {
	if ch.Dict != nil {
		// Dictionary-backed chunk: BrTaken carries one bit per dynamic
		// conditional branch, in the same ordinal space as the fed
		// bitmap, so a single cursor serves both.
		br := 0
		for _, tk := range ann.toks {
			for rep := int32(0); rep < tk.rep; rep++ {
				for _, off := range tk.ri.brs {
					pc := tk.ri.pc + off
					taken := ch.BrTaken[br>>3]&(1<<(br&7)) != 0
					if l.nShards == 1 || int(pc)%l.nShards == l.mine {
						if l.sh.Observe(pc, taken) && ann.fedAt(br) {
							l.fedMiss++
						}
					} else {
						l.sh.TrainGlobal(pc, taken)
					}
					br++
				}
			}
		}
		return
	}
	evBase := int32(0)
	ord := 0
	for _, tk := range ann.toks {
		ri := tk.ri
		for _, off := range ri.brs {
			pc := ri.pc + off
			taken := ch.TakenAt(evBase + off)
			if l.nShards == 1 || int(pc)%l.nShards == l.mine {
				if l.sh.Observe(pc, taken) && ann.fedAt(ord) {
					l.fedMiss++
				}
			} else {
				l.sh.TrainGlobal(pc, taken)
			}
			ord++
		}
		evBase += ri.n
	}
}

// memLane replays the memory column for one partition of cache sets
// (cache.ShardOf on the block address). Every lane walks all memory
// events to keep the shared address-column cursor aligned; only owned
// addresses touch its private hierarchy.
type memLane struct {
	hier    *cache.Hierarchy
	l1miss  []uint64
	block   uint64
	nShards int
	mine    int
}

func newMemLane(hcfg cache.HierarchyConfig, nInsts, nShards, mine int) *memLane {
	return &memLane{
		hier:    cache.NewHierarchy(hcfg),
		l1miss:  make([]uint64, nInsts),
		block:   hcfg.L1.Block,
		nShards: nShards,
		mine:    mine,
	}
}

func (l *memLane) chunk(ch *runstream.Chunk, ann *chunkAnn) {
	if ch.Dict != nil {
		// Dictionary-backed chunk: Addrs carries one entry per memory
		// instance (zeros included), so the column is a flat cursor with
		// no per-event presence bitmap to consult.
		cur := 0
		for _, tk := range ann.toks {
			for rep := int32(0); rep < tk.rep; rep++ {
				for _, m := range tk.ri.mems {
					addr := ch.Addrs[cur]
					cur++
					if l.nShards != 1 && cache.ShardOf(addr, l.block, l.nShards) != l.mine {
						continue
					}
					if m&storeBit != 0 {
						l.hier.Access(addr, true)
					} else if lvl, _ := l.hier.Access(addr, false); lvl != cache.LevelL1 {
						l.l1miss[tk.ri.pc+(m&^storeBit)]++
					}
				}
			}
		}
		return
	}
	evBase := int32(0)
	cur := 0
	for _, tk := range ann.toks {
		ri := tk.ri
		for _, m := range ri.mems {
			off := m &^ storeBit
			idx := evBase + off
			var addr uint64
			if ch.PresentAt(idx) {
				addr = ch.Addrs[cur]
				cur++
			}
			if l.nShards != 1 && cache.ShardOf(addr, l.block, l.nShards) != l.mine {
				continue
			}
			if m&storeBit != 0 {
				l.hier.Access(addr, true)
			} else if lvl, _ := l.hier.Access(addr, false); lvl != cache.LevelL1 {
				l.l1miss[ri.pc+off]++
			}
		}
		evBase += ri.n
	}
}

// bundle is one chunk plus its run-lane annotation, reference-counted
// across the shard lanes.
type bundle struct {
	ch      *runstream.Chunk
	ann     *chunkAnn
	release func()
	refs    atomic.Int32
}

// AnalyzeRuns runs the block-characterized replay over a column
// stream: the run lane memoizes the dependence and sequence machines
// over (state, run) pairs, the predictor lane replays the taken column
// with the paper hybrid, and the memory lane replays the address
// column through the paper hierarchy. With workers > 1 the predictor
// and memory lanes split into exact shards (by branch PC and by cache
// set partition) running on their own goroutines. The resulting
// profile is byte-identical to the live five-pass analysis, pinned by
// golden tests; the analysis is report-only (restored), like one
// rebuilt from a Snapshot.
//
// The configuration is pinned to the paper's (cache.PaperConfig,
// bpred.NewPaperHybrid): the shard lanes' exactness proofs are tied to
// that geometry, and it is the only configuration replay serves.
func AnalyzeRuns(ctx context.Context, prog *isa.Program, src runstream.Source, workers int) (*Analysis, error) {
	eng := newRunEngine(prog)
	hcfg := cache.PaperConfig()
	exec := Execution{RequestedWorkers: workers, Workers: workers}
	if workers <= 1 {
		exec.Workers = 1
		exec.SerialReason = SerialReasonRequested
	}

	if exec.Workers == 1 {
		bp := newBpLane(1, 0)
		mem := newMemLane(hcfg, len(prog.Insts), 1, 0)
		ann := &chunkAnn{}
		for {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("loadchar: run analysis: %w", err)
			}
			ch, release, err := src.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return nil, err
			}
			eng.processChunk(ch, ann)
			bp.chunk(ch, ann)
			mem.chunk(ch, ann)
			if release != nil {
				release()
			}
		}
		return assembleAnalysis(prog, hcfg, eng, []*bpLane{bp}, []*memLane{mem}, exec), nil
	}

	// Lane topology: the run lane runs here (it is the ordering spine);
	// the remaining workers split between predictor shards and memory
	// shards, memory-heavy because the cache walk dominates. The memory
	// shard count must be a power of two within the set-partition limit.
	w := exec.Workers
	nb := (w - 1) / 3
	if nb < 1 {
		nb = 1
	}
	nm := w - 1 - nb
	if nm < 1 {
		nm = 1
	}
	nm = cache.ShardCount(hcfg, nm)

	bps := make([]*bpLane, nb)
	mems := make([]*memLane, nm)
	nLanes := nb + nm
	chans := make([]chan *bundle, nLanes)
	work := make([]func(*bundle), nLanes)
	for i := 0; i < nb; i++ {
		l := newBpLane(nb, i)
		bps[i] = l
		work[i] = func(b *bundle) { l.chunk(b.ch, b.ann) }
	}
	for i := 0; i < nm; i++ {
		l := newMemLane(hcfg, len(prog.Insts), nm, i)
		mems[i] = l
		work[nb+i] = func(b *bundle) { l.chunk(b.ch, b.ann) }
	}

	annPool := sync.Pool{New: func() any { return &chunkAnn{} }}
	var wg sync.WaitGroup
	for i := range chans {
		chans[i] = make(chan *bundle, 4)
		wg.Add(1)
		go func(in chan *bundle, f func(*bundle)) {
			defer wg.Done()
			for b := range in {
				f(b)
				if b.refs.Add(-1) == 0 {
					if b.release != nil {
						b.release()
					}
					annPool.Put(b.ann)
				}
			}
		}(chans[i], work[i])
	}

	feed := func() error {
		for {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("loadchar: run analysis: %w", err)
			}
			ch, release, err := src.Next()
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
			ann := annPool.Get().(*chunkAnn)
			eng.processChunk(ch, ann)
			b := &bundle{ch: ch, ann: ann, release: release}
			b.refs.Store(int32(nLanes))
			for _, c := range chans {
				c <- b
			}
		}
	}
	err := feed()
	for _, c := range chans {
		close(c)
	}
	wg.Wait()
	if err != nil {
		return nil, err
	}
	return assembleAnalysis(prog, hcfg, eng, bps, mems, exec), nil
}

// assembleAnalysis multiplies out the engine's characterization tables
// and merges the shard lanes into a report-only Analysis, mirroring
// FromSnapshot's construction.
func assembleAnalysis(prog *isa.Program, hcfg cache.HierarchyConfig, eng *runEngine, bps []*bpLane, mems []*memLane, exec Execution) *Analysis {
	a := &Analysis{prog: prog, restored: true, Exec: exec}
	a.mix.init(len(prog.Insts))
	a.dep.init(len(prog.Insts))
	a.seq.init()
	eng.finish(a)

	per := make(map[int32]bpred.BranchStats)
	var totalB bpred.BranchStats
	for _, l := range bps {
		l.sh.MergeInto(per, &totalB)
		a.dep.fedBranchMiss += l.fedMiss
	}
	a.bp.bp = bpred.RestoreTracker(per, totalB)

	a.cache.hier = cache.NewHierarchy(hcfg)
	var l1, l2 cache.Stats
	a.cache.l1miss = make([]uint64, len(prog.Insts))
	for _, l := range mems {
		l1.Add(l.hier.L1().Stats())
		l2.Add(l.hier.L2().Stats())
		for pc, v := range l.l1miss {
			if v != 0 {
				a.cache.l1miss[pc] += v
			}
		}
	}
	a.cache.hier.L1().SetStats(l1)
	a.cache.hier.L2().SetStats(l2)
	return a
}
