package loadchar

import (
	"bioperfload/internal/basicblock"
	"bioperfload/internal/isa"
)

// storeBit marks a store in a mems offset entry (offsets are chunk-run
// offsets, far below 2^30).
const storeBit = int32(1) << 30

// blockInfo is the static characterization of one basic block: the
// per-class instruction counts and the block-relative offsets of the
// instructions each replay lane dispatches on. Computed once per block
// on first execution, then every straight-line run over the block
// reduces to counter adds and offset rebasing — the per-block multiply
// structure the block-characterized replay is built on.
type blockInfo struct {
	classCounts [isa.NumClasses]uint32
	fp          uint32
	fpLoads     uint32
	loads       []int32 // offsets of loads (mix pass load counts)
	mems        []int32 // offsets of loads/stores, storeBit marks stores
	brs         []int32 // offsets of conditional branches
	built       bool
}

// runInfo is the static characterization of one straight-line PC run
// (PC, PC+1, ..., PC+n-1) as it appears in the trace's run stream,
// assembled from block vectors, plus the run's total occurrence count.
// All offsets are run-relative. runInfo pointers are shared across
// chunks and read concurrently by shard lanes; they are immutable
// after construction except for occ, which only the run lane touches.
type runInfo struct {
	pc int32
	n  int32

	classCounts [isa.NumClasses]uint32
	fp          uint32
	fpLoads     uint32
	loads       []int32
	mems        []int32
	brs         []int32

	occ uint64
}

// blockTable lazily builds blockInfo vectors over the program's static
// basic-block map and assembles runInfo entries from them.
type blockTable struct {
	prog   *isa.Program
	blocks *basicblock.Blocks
	info   []blockInfo
}

func newBlockTable(prog *isa.Program) *blockTable {
	b := basicblock.Map(prog)
	return &blockTable{prog: prog, blocks: b, info: make([]blockInfo, b.NumBlocks())}
}

// isLeader reports whether pc starts a basic block.
func (t *blockTable) isLeader(pc int32) bool {
	return pc == 0 || t.blocks.Of(pc-1) != t.blocks.Of(pc)
}

// accumRange classifies insts [lo, hi) directly into ri, with offsets
// relative to ri.pc. Used for the partial blocks at run edges (runs
// split mid-block only at chunk boundaries).
func accumRange(ri *runInfo, prog *isa.Program, lo, hi int32) {
	for pc := lo; pc < hi; pc++ {
		op := prog.Insts[pc].Op
		cls := isa.ClassOf(op)
		ri.classCounts[cls]++
		if isa.IsFloat(op) {
			ri.fp++
			if cls == isa.ClassLoad {
				ri.fpLoads++
			}
		}
		off := pc - ri.pc
		switch cls {
		case isa.ClassLoad:
			ri.loads = append(ri.loads, off)
			ri.mems = append(ri.mems, off)
		case isa.ClassStore:
			ri.mems = append(ri.mems, off|storeBit)
		case isa.ClassCondBranch:
			ri.brs = append(ri.brs, off)
		}
	}
}

// block returns pc's block vector, building it on first use. pc must
// be a block leader.
func (t *blockTable) block(pc int32) *blockInfo {
	bi := &t.info[t.blocks.Of(pc)]
	if !bi.built {
		var tmp runInfo // reuse the classifier with run-start == block-start
		tmp.pc = pc
		accumRange(&tmp, t.prog, pc, t.blocks.NextLeader(pc))
		bi.classCounts = tmp.classCounts
		bi.fp = tmp.fp
		bi.fpLoads = tmp.fpLoads
		bi.loads = tmp.loads
		bi.mems = tmp.mems
		bi.brs = tmp.brs
		bi.built = true
	}
	return bi
}

// makeRun assembles the runInfo for the straight-line run [pc, pc+n):
// whole blocks contribute their cached vectors (counter adds plus
// offset rebasing), partial blocks at the edges are scanned directly.
func (t *blockTable) makeRun(pc, n int32) *runInfo {
	ri := &runInfo{pc: pc, n: n}
	cur, end := pc, pc+n
	if !t.isLeader(cur) {
		// Leading partial block: the run was split mid-block by a chunk
		// boundary.
		hi := t.blocks.NextLeader(cur)
		if hi > end {
			hi = end
		}
		accumRange(ri, t.prog, cur, hi)
		cur = hi
	}
	for cur < end {
		hi := t.blocks.NextLeader(cur)
		if hi > end {
			accumRange(ri, t.prog, cur, end)
			break
		}
		bi := t.block(cur)
		for c := range bi.classCounts {
			ri.classCounts[c] += bi.classCounts[c]
		}
		ri.fp += bi.fp
		ri.fpLoads += bi.fpLoads
		rebase := cur - pc
		for _, off := range bi.loads {
			ri.loads = append(ri.loads, off+rebase)
		}
		for _, m := range bi.mems {
			ri.mems = append(ri.mems, (m&^storeBit)+rebase|m&storeBit)
		}
		for _, off := range bi.brs {
			ri.brs = append(ri.brs, off+rebase)
		}
		cur = hi
	}
	return ri
}
