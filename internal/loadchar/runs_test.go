package loadchar

import (
	"bytes"
	"context"
	"math/rand"
	"reflect"
	"testing"

	"bioperfload/internal/isa"
	"bioperfload/internal/sim"
	"bioperfload/internal/trace"
)

// recordTrace writes captured slabs into an in-memory trace and opens
// it indexed, mirroring the runner's record-then-replay path.
func recordTrace(t *testing.T, name string, prog *isa.Program, slabs [][]sim.Event, chunkEvents int) *trace.IndexedReader {
	t.Helper()
	var buf bytes.Buffer
	tw := trace.NewWriter(&buf, trace.Meta{Program: name, Size: "test", ChunkEvents: chunkEvents}, prog)
	for _, evs := range slabs {
		tw.ObserveBatch(evs)
	}
	if err := tw.Close(); err != nil {
		t.Fatalf("close trace writer: %v", err)
	}
	ir, err := trace.NewIndexedReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatalf("open indexed trace: %v", err)
	}
	return ir
}

// TestAnalyzeRunsMatchesLive pins the block-characterized replay's core
// invariant: the run-table engine plus sharded predictor/memory lanes
// produce a profile byte-identical to the live five-pass analysis —
// compared through both the full Snapshot (every counter) and the
// rendered profile — at one worker (fused) and at enough workers to
// shard both lanes.
func TestAnalyzeRunsMatchesLive(t *testing.T) {
	for _, name := range []string{"hmmsearch", "predator", "promlk"} {
		prog, live, slabs := captureSlabs(t, name)
		want := live.Snapshot()
		wantProf := RenderProfile(name, "test", live, 10)
		ir := recordTrace(t, name, prog, slabs, 1<<12)

		for _, workers := range []int{1, 4, 8} {
			src := ir.Columns(context.Background(), prog, 0, ir.Chunks(), 2)
			a, err := AnalyzeRuns(context.Background(), prog, src, workers)
			src.Close()
			if err != nil {
				t.Fatalf("%s workers=%d: AnalyzeRuns: %v", name, workers, err)
			}
			if got := a.Snapshot(); !reflect.DeepEqual(got, want) {
				t.Errorf("%s workers=%d: snapshot differs from live", name, workers)
			}
			if got := RenderProfile(name, "test", a, 10); got != wantProf {
				t.Errorf("%s workers=%d: profile differs from live:\n--- live ---\n%s\n--- runs ---\n%s", name, workers, wantProf, got)
			}
			if workers == 1 {
				if a.Exec.Parallel() || a.Exec.SerialReason != SerialReasonRequested {
					t.Errorf("%s: serial run tagged %+v", name, a.Exec)
				}
			} else {
				if !a.Exec.Parallel() || a.Exec.SerialReason != "" {
					t.Errorf("%s workers=%d: parallel run tagged %+v", name, workers, a.Exec)
				}
			}
		}
	}
}

// TestAnalyzeRunsCancel checks a canceled context aborts both the fused
// and the sharded orchestration without deadlocking.
func TestAnalyzeRunsCancel(t *testing.T) {
	prog, _, slabs := captureSlabs(t, "hmmsearch")
	ir := recordTrace(t, "hmmsearch", prog, slabs, 1<<12)
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		src := ir.Columns(context.Background(), prog, 0, ir.Chunks(), 1)
		_, err := AnalyzeRuns(ctx, prog, src, workers)
		src.Close()
		if err == nil {
			t.Fatalf("workers=%d: AnalyzeRuns with canceled context succeeded", workers)
		}
	}
}

// TestSnapshotMergePermutationInvariant is the shard-merge property
// test: folding shard snapshots in any order yields a byte-identical
// merged snapshot, so the parallel lanes' merge step cannot introduce
// order dependence. Shards here are independent analyses over disjoint
// slab ranges — the same shape the sharded replay merges.
func TestSnapshotMergePermutationInvariant(t *testing.T) {
	prog, _, slabs := captureSlabs(t, "predator")
	const parts = 5
	snaps := make([]*Snapshot, parts)
	for i := range snaps {
		a := New(prog)
		lo, hi := i*len(slabs)/parts, (i+1)*len(slabs)/parts
		for _, evs := range slabs[lo:hi] {
			a.ObserveBatch(evs)
		}
		snaps[i] = a.Snapshot()
	}

	merge := func(order []int) *Snapshot {
		base := New(prog).Snapshot() // empty
		for _, i := range order {
			if err := base.Merge(snaps[i]); err != nil {
				t.Fatalf("merge: %v", err)
			}
		}
		return base
	}

	want := merge([]int{0, 1, 2, 3, 4})
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 8; trial++ {
		order := r.Perm(parts)
		if got := merge(order); !reflect.DeepEqual(got, want) {
			t.Fatalf("merge order %v produced a different snapshot", order)
		}
	}
}
