package loadchar

import (
	"testing"

	"bioperfload/internal/bio"
	"bioperfload/internal/compiler"
	"bioperfload/internal/isa"
	"bioperfload/internal/sim"
)

// analyze runs one bio program at test size under the analysis.
func analyze(t *testing.T, name string) *Analysis {
	t.Helper()
	p, err := bio.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := p.Compile(false, compiler.Default())
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.New(prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Bind(m, bio.SizeTest); err != nil {
		t.Fatal(err)
	}
	a := New(prog)
	m.AddObserver(a)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return a
}

func TestMixConsistency(t *testing.T) {
	a := analyze(t, "hmmsearch")
	m := a.Mix()
	if m.Total == 0 {
		t.Fatal("no instructions observed")
	}
	if m.Loads+m.Stores+m.CondBranches+m.Other != m.Total {
		t.Error("class counts do not sum to total")
	}
	sum := m.LoadPct + m.StorePct + m.BranchPct + m.OtherPct
	if sum < 99.9 || sum > 100.1 {
		t.Errorf("percentages sum to %f", sum)
	}
	// The paper: loads are ~30% of instructions in these codes.
	if m.LoadPct < 15 || m.LoadPct > 50 {
		t.Errorf("hmmsearch load%% = %.1f, expected a load-heavy mix", m.LoadPct)
	}
}

func TestFPFractionShape(t *testing.T) {
	// Table 1's shape: promlk >> predator > hmmpfam > hmmsearch.
	fp := func(name string) float64 { return analyze(t, name).Mix().FPFraction }
	promlk := fp("promlk")
	predator := fp("predator")
	hmmpfam := fp("hmmpfam")
	hmmsearch := fp("hmmsearch")
	if !(promlk > predator && predator > hmmpfam && hmmpfam > hmmsearch) {
		t.Errorf("FP fractions out of order: promlk=%.3f predator=%.3f hmmpfam=%.3f hmmsearch=%.3f",
			promlk, predator, hmmpfam, hmmsearch)
	}
	if promlk < 0.4 {
		t.Errorf("promlk FP fraction = %.3f, want dominant (paper: 65%%)", promlk)
	}
}

func TestCoverageCurve(t *testing.T) {
	a := analyze(t, "hmmsearch")
	cov := a.Coverage()
	if len(cov) == 0 {
		t.Fatal("no static loads")
	}
	for i := 1; i < len(cov); i++ {
		if cov[i] < cov[i-1] {
			t.Fatal("coverage curve not monotone")
		}
	}
	if last := cov[len(cov)-1]; last < 0.999 || last > 1.001 {
		t.Errorf("coverage curve ends at %f", last)
	}
	// The paper's headline: ~80 static loads cover >90% of dynamic
	// loads in the BioPerf codes.
	if c := a.CoverageAt(80); c < 0.9 {
		t.Errorf("top-80 coverage = %.3f, want > 0.9", c)
	}
	if a.CoverageAt(0) != 0 {
		t.Error("CoverageAt(0) should be 0")
	}
	if a.CoverageAt(1<<20) <= 0.999 {
		t.Error("CoverageAt beyond curve should be ~1")
	}
}

func TestCacheReportMostlyL1Hits(t *testing.T) {
	// Table 2: these programs almost always hit in L1.
	for _, name := range []string{"hmmsearch", "clustalw", "promlk"} {
		a := analyze(t, name)
		r := a.CacheReport()
		if r.L1Local > 0.05 {
			t.Errorf("%s L1 miss rate = %.4f, want tiny", name, r.L1Local)
		}
		if r.AMAT < 3.0 || r.AMAT > 4.0 {
			t.Errorf("%s AMAT = %.2f, want dominated by the 3-cycle hit latency", name, r.AMAT)
		}
	}
}

func TestSequencesShape(t *testing.T) {
	// Table 4a: the hmm programs have the highest load-to-branch
	// fractions; promlk the lowest.
	lb := func(name string) float64 { return analyze(t, name).Sequences().LoadToBranchPct }
	hmm := lb("hmmsearch")
	prom := lb("promlk")
	if hmm <= prom {
		t.Errorf("load-to-branch: hmmsearch %.1f%% should exceed promlk %.1f%%", hmm, prom)
	}
	if hmm < 20 {
		t.Errorf("hmmsearch load-to-branch = %.1f%%, expected large (paper: 93.5%%)", hmm)
	}
	s := analyze(t, "hmmsearch").Sequences()
	if s.FedBranchMispredictRate <= 0 || s.FedBranchMispredictRate > 1 {
		t.Errorf("fed-branch mispredict rate = %f", s.FedBranchMispredictRate)
	}
	if s.LoadAfterHardBranchPct < 0 || s.LoadAfterHardBranchPct > 100 {
		t.Errorf("after-hard-branch pct = %f", s.LoadAfterHardBranchPct)
	}
}

func TestHotLoadsAttribution(t *testing.T) {
	a := analyze(t, "hmmsearch")
	hot := a.HotLoads(10)
	if len(hot) != 10 {
		t.Fatalf("got %d hot loads", len(hot))
	}
	for i := 1; i < len(hot); i++ {
		if hot[i].Frequency > hot[i-1].Frequency {
			t.Error("hot loads not sorted by frequency")
		}
	}
	// Table 5's pattern: the hot loads live in the Viterbi kernel and
	// carry source lines.
	foundVrow := false
	for _, h := range hot {
		if h.Func == "vrow" {
			foundVrow = true
			if h.Line <= 0 {
				t.Errorf("vrow hot load without source line: %+v", h)
			}
			if h.L1MissRate > 0.05 {
				t.Errorf("vrow load misses too much: %+v", h)
			}
		}
	}
	if !foundVrow {
		t.Errorf("no hot load attributed to vrow: %+v", hot)
	}
}

func TestCandidatesFindViterbiLoads(t *testing.T) {
	a := analyze(t, "hmmsearch")
	cands := a.Candidates(0.005, 0.05, 0.05)
	if len(cands) == 0 {
		t.Fatal("no optimization candidates found in hmmsearch")
	}
	inVrow := 0
	for _, c := range cands {
		if c.Func == "vrow" {
			inVrow++
		}
	}
	if inVrow == 0 {
		t.Errorf("candidates missed the Viterbi kernel: %+v", cands)
	}
}

func TestAnalysisOnHandBuiltProgram(t *testing.T) {
	// A tiny deterministic program: a load feeding a branch must be
	// detected as a load-to-branch sequence.
	b := isa.NewBuilder("micro")
	addr := b.Global("data", 80, 8, false)
	b.Ldiq(1, int64(addr))
	b.Ldiq(2, 10) // counter
	b.Label("loop")
	b.Load(isa.OpLdq, 3, 1, 0)     // load
	b.Branch(isa.OpBeq, 3, "skip") // branch on loaded value
	b.OpI(isa.OpAdd, 4, 4, 1)
	b.Label("skip")
	b.OpI(isa.OpAdd, 1, 1, 8)
	b.OpI(isa.OpSub, 2, 2, 1)
	b.Branch(isa.OpBgt, 2, "loop")
	b.Halt()
	prog := b.MustProgram()
	m, err := sim.New(prog)
	if err != nil {
		t.Fatal(err)
	}
	a := New(prog)
	m.AddObserver(a)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := a.TotalLoads(); got != 10 {
		t.Fatalf("loads = %d", got)
	}
	s := a.Sequences()
	// All 10 loads feed the BEQ directly.
	if s.LoadToBranchPct < 99 {
		t.Errorf("load-to-branch = %.1f%%, want 100%%", s.LoadToBranchPct)
	}
	if a.StaticLoadCount() != 1 {
		t.Errorf("static loads = %d, want 1", a.StaticLoadCount())
	}
	if c := a.CoverageAt(1); c < 0.999 {
		t.Errorf("single static load should cover everything, got %f", c)
	}
}

func TestChainDepthLimit(t *testing.T) {
	// A load whose value passes through more than chainDepth ALU ops
	// before the branch must NOT count as load-to-branch.
	b := isa.NewBuilder("deep")
	addr := b.Global("data", 8, 8, false)
	b.Ldiq(1, int64(addr))
	b.Load(isa.OpLdq, 3, 1, 0)
	for i := 0; i < chainDepth+2; i++ {
		b.OpI(isa.OpAdd, 3, 3, 0)
	}
	b.Branch(isa.OpBeq, 3, "end")
	b.Label("end")
	b.Halt()
	prog := b.MustProgram()
	m, _ := sim.New(prog)
	a := New(prog)
	m.AddObserver(a)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if s := a.Sequences(); s.LoadToBranchPct != 0 {
		t.Errorf("deep chain counted as load-to-branch: %.1f%%", s.LoadToBranchPct)
	}
}

func TestBranchToLoadDetection(t *testing.T) {
	// A hard-to-predict branch immediately followed by a load with a
	// tight consumer: Table 4(b)'s pattern.
	b := isa.NewBuilder("b2l")
	addr := b.Global("data", 4096, 8, false)
	flags := b.Global("flags", 4096, 8, false)
	b.Ldiq(1, int64(addr))
	b.Ldiq(5, int64(flags))
	b.Ldiq(2, 400)
	b.Label("loop")
	b.Load(isa.OpLdq, 6, 5, 0)     // flag (alternating data)
	b.Branch(isa.OpBeq, 6, "skip") // hard branch (alternates)
	b.Load(isa.OpLdq, 3, 1, 0)     // load right after the branch
	b.OpI(isa.OpAdd, 4, 3, 1)      // tight consumer
	b.Label("skip")
	b.OpI(isa.OpAdd, 1, 1, 8)
	b.OpI(isa.OpAdd, 5, 5, 8)
	b.OpI(isa.OpSub, 2, 2, 1)
	b.Branch(isa.OpBgt, 2, "loop")
	b.Halt()
	prog := b.MustProgram()
	// Pseudo-random flags so the branch is genuinely hard.
	fl := make([]byte, 400*8)
	x := uint64(0x1234567)
	for i := 0; i < 400; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		fl[i*8] = byte((x >> 40) & 1)
	}
	sym, _ := prog.Symbol("flags")
	prog.Init = append(prog.Init, isa.DataInit{Addr: sym.Addr, Bytes: fl})

	m, _ := sim.New(prog)
	a := New(prog)
	m.AddObserver(a)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	s := a.Sequences()
	if s.LoadAfterHardBranchPct < 10 {
		t.Errorf("after-hard-branch = %.1f%%, want substantial", s.LoadAfterHardBranchPct)
	}
}

func TestBranchesAccessor(t *testing.T) {
	a := analyze(t, "dnapenny")
	br := a.Branches()
	if len(br) == 0 {
		t.Fatal("no branch statistics")
	}
	var exec uint64
	for _, s := range br {
		if s.Mispredicts > s.Executed {
			t.Fatal("mispredicts exceed executions")
		}
		exec += s.Executed
	}
	if exec != a.Mix().CondBranches {
		t.Errorf("per-branch executions %d != total cond branches %d",
			exec, a.Mix().CondBranches)
	}
}
