package loadchar

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"

	"bioperfload/internal/isa"
	"bioperfload/internal/sim"
)

// WarmupEvents is how many trailing events a shard needs from before
// its range to prime the sequence pass exactly. A consumption counted
// at sequence t reads a load armed at s ≥ t−proximity, whose
// after-branch attribution depends on the most recent branch at
// b ≥ s−proximity — so state within 2·proximity events of the shard
// boundary fully determines every in-range count.
const WarmupEvents = 2 * proximity

// Shard describes one worker's slice of a sharded replay: a source
// over its chunk range plus the warm-up window that makes the
// order-insensitive passes exact at the boundary.
type Shard struct {
	// Source streams the shard's chunk range in commit order.
	Source EventSource
	// Start is the sequence number of the shard's first event;
	// consumptions before it are muted during warm-up.
	Start uint64
	// Warmup returns at least the last WarmupEvents events preceding
	// the range (fewer only if the trace has fewer); nil for the first
	// shard. It is called on the shard worker's goroutine, so tail
	// decodes overlap with other shards' work.
	Warmup func() ([]sim.Event, error)
}

// shardState is the per-shard private state of the mergeable passes.
type shardState struct {
	mix mixPass
	seq seqPass
}

// AnalyzeSharded runs the characterization over a chunk-indexed trace
// with the mergeable passes sharded. The inherently sequential passes
// — cache hierarchy, branch predictor, and the dependence pass that
// consumes the predictor's mispredict bits — keep pipelined lanes fed
// by the dedicated in-order source, while the mix and sequence passes
// run on shard workers over disjoint chunk ranges and their partial
// states fold together afterwards. The merged result is exactly — not
// approximately — the sequential analysis (pinned by golden tests).
//
// With no shards (or one), everything collapses into a single fused
// loop over inorder: all five passes per chunk, one decode, no
// goroutines — the fastest shape on a single-core host.
func AnalyzeSharded(ctx context.Context, prog *isa.Program, inorder EventSource, shards []Shard) (*Analysis, error) {
	a := New(prog)
	a.Exec = Execution{RequestedWorkers: len(shards), Workers: len(shards)}
	if len(shards) <= 1 {
		a.Exec.Workers = 1
		a.Exec.SerialReason = SerialReasonRequested
		for {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("loadchar: sharded analysis: %w", err)
			}
			evs, release, err := inorder.Next()
			if err == io.EOF {
				return a, nil
			}
			if err != nil {
				return nil, err
			}
			a.ObserveBatch(evs)
			if release != nil {
				release()
			}
		}
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// In-order lanes for the sequential passes, wired exactly like
	// AnalyzeParallel: the predictor lane forwards per-chunk mispredict
	// bitmaps to the dependence lane.
	const depth = 4
	cacheC := make(chan chunkMsg, depth)
	bpC := make(chan chunkMsg, depth)
	depC := make(chan chunkMsg, depth)
	chans := []chan chunkMsg{cacheC, bpC, depC}
	bitsC := make(chan *misBits, depth+2)

	var laneWG sync.WaitGroup
	lane := func(ch chan chunkMsg, f func(chunkMsg)) {
		laneWG.Add(1)
		go func() {
			defer laneWG.Done()
			for msg := range ch {
				f(msg)
				msg.done()
			}
		}()
	}
	lane(cacheC, func(m chunkMsg) { a.cache.observe(m.evs) })
	lane(bpC, func(m chunkMsg) {
		bits := &misBits{}
		a.bp.observe(m.evs, bits)
		bitsC <- bits
	})
	lane(depC, func(m chunkMsg) {
		bits := <-bitsC
		a.dep.observe(m.evs, bits)
	})

	// Shard workers: each owns a private mix+seq state over its range.
	states := make([]*shardState, len(shards))
	shardErrs := make([]error, len(shards))
	var shardWG sync.WaitGroup
	for i := range shards {
		shardWG.Add(1)
		go func(i int) {
			defer shardWG.Done()
			st := &shardState{}
			st.mix.init(len(prog.Insts))
			st.seq.init()
			st.seq.minSeq = shards[i].Start
			states[i] = st
			run := func() error {
				if shards[i].Warmup != nil {
					warm, err := shards[i].Warmup()
					if err != nil {
						return err
					}
					// Warm-up rebuilds branch/pending state only; its
					// consumptions are muted by minSeq and the mix pass
					// never sees it.
					st.seq.observe(warm)
				}
				for {
					if err := cctx.Err(); err != nil {
						return fmt.Errorf("loadchar: shard %d: %w", i, err)
					}
					evs, release, err := shards[i].Source.Next()
					if err == io.EOF {
						return nil
					}
					if err != nil {
						return err
					}
					st.mix.observe(evs)
					st.seq.observe(evs)
					if release != nil {
						release()
					}
				}
			}
			if err := run(); err != nil {
				shardErrs[i] = err
				cancel()
			}
		}(i)
	}

	// Feed the in-order lanes from this goroutine, refcounting slab
	// release across the fan-out.
	feed := func() error {
		for {
			if err := cctx.Err(); err != nil {
				return fmt.Errorf("loadchar: sharded analysis: %w", err)
			}
			evs, release, err := inorder.Next()
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
			if release == nil {
				release = func() {}
			}
			refs := int32(len(chans))
			msg := newChunkMsg(evs, &refs, release)
			// Every lane must receive every chunk unconditionally: the
			// bitmap handoff pairs the predictor and dependence lanes
			// by chunk ordinal.
			for _, ch := range chans {
				ch <- msg
			}
		}
	}
	feedErr := feed()
	if feedErr != nil {
		cancel() // stop shard workers; their ranges no longer matter
	}
	for _, ch := range chans {
		close(ch)
	}
	laneWG.Wait()
	shardWG.Wait()

	// Error priority: an external cancellation, then any real decode or
	// source error, then the cancellation echoes the cancel() above
	// produced in whichever goroutines lost the race.
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("loadchar: sharded analysis: %w", err)
	}
	firstErr := feedErr
	if firstErr == nil || errors.Is(firstErr, context.Canceled) {
		for _, err := range shardErrs {
			if err != nil && !errors.Is(err, context.Canceled) {
				firstErr = err
				break
			}
		}
	}
	if firstErr == nil {
		for _, err := range shardErrs {
			if err != nil {
				firstErr = err
				break
			}
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}

	// Fold shard states in shard order. The merges are pure sums, so
	// the order does not affect the result; fixed order keeps map
	// iteration the only source of nondeterminism, and the report
	// methods sort before rendering.
	for _, st := range states {
		a.mix.merge(&st.mix)
		a.seq.merge(&st.seq)
	}
	return a, nil
}
