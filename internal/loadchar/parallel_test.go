package loadchar

import (
	"context"
	"io"
	"testing"

	"bioperfload/internal/bio"
	"bioperfload/internal/compiler"
	"bioperfload/internal/isa"
	"bioperfload/internal/sim"
)

// sliceSource feeds pre-captured slabs, satisfying EventSource.
type sliceSource struct {
	slabs [][]sim.Event
	i     int
}

func (s *sliceSource) Next() ([]sim.Event, func(), error) {
	if s.i >= len(s.slabs) {
		return nil, nil, io.EOF
	}
	evs := s.slabs[s.i]
	s.i++
	return evs, func() {}, nil
}

// captureSlabs runs the program live, capturing the committed stream
// into owned slabs and the reference analysis at once.
func captureSlabs(t *testing.T, name string) (*isa.Program, *Analysis, [][]sim.Event) {
	t.Helper()
	p, err := bio.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := p.Compile(false, compiler.Default())
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.New(prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Bind(m, bio.SizeTest); err != nil {
		t.Fatal(err)
	}
	live := New(prog)
	m.AddObserver(live)
	var slabs [][]sim.Event
	m.AddBatchObserver(batchFunc(func(evs []sim.Event) {
		slabs = append(slabs, append([]sim.Event(nil), evs...))
	}))
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return prog, live, slabs
}

type batchFunc func([]sim.Event)

func (f batchFunc) ObserveBatch(evs []sim.Event) { f(evs) }

// TestAnalyzeParallelMatchesLive pins the tentpole invariant: the
// component-parallel analysis over a replayed stream is exactly the
// live single-goroutine analysis, compared through the full rendered
// profile (every report the CLI and service expose).
func TestAnalyzeParallelMatchesLive(t *testing.T) {
	for _, name := range []string{"hmmsearch", "predator", "promlk"} {
		prog, live, slabs := captureSlabs(t, name)

		par, err := AnalyzeParallel(context.Background(), prog, &sliceSource{slabs: slabs})
		if err != nil {
			t.Fatalf("%s: AnalyzeParallel: %v", name, err)
		}
		want := RenderProfile(name, "test", live, 10)
		got := RenderProfile(name, "test", par, 10)
		if got != want {
			t.Errorf("%s: parallel profile differs from live:\n--- live ---\n%s\n--- parallel ---\n%s", name, want, got)
		}

		// A second sequential Analysis fed the same slabs must also
		// match: ObserveBatch and the pass split are one code path.
		seq := New(prog)
		for _, evs := range slabs {
			seq.ObserveBatch(evs)
		}
		if got := RenderProfile(name, "test", seq, 10); got != want {
			t.Errorf("%s: sequential slab replay differs from live", name)
		}
	}
}

// TestAnalyzeParallelCancel checks a canceled context aborts the
// fan-out without deadlocking.
func TestAnalyzeParallelCancel(t *testing.T) {
	prog, _, slabs := captureSlabs(t, "hmmsearch")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := AnalyzeParallel(ctx, prog, &sliceSource{slabs: slabs}); err == nil {
		t.Fatal("AnalyzeParallel with canceled context succeeded")
	}
}

// TestObserveLegacyPathMatchesBatch checks the per-event Observer path
// (used by older call sites) agrees with the batch path.
func TestObserveLegacyPathMatchesBatch(t *testing.T) {
	prog, live, slabs := captureSlabs(t, "promlk")
	one := New(prog)
	for _, evs := range slabs {
		for i := range evs {
			one.Observe(&evs[i])
		}
	}
	want := RenderProfile("promlk", "test", live, 10)
	if got := RenderProfile("promlk", "test", one, 10); got != want {
		t.Errorf("per-event path differs from batch path")
	}
}
