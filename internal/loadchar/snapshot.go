package loadchar

import (
	"fmt"

	"bioperfload/internal/bpred"
	"bioperfload/internal/cache"
	"bioperfload/internal/isa"
)

// SnapshotVersion guards the serialized snapshot layout; bump it when
// Snapshot's shape or the meaning of any field changes.
const SnapshotVersion = 1

// Snapshot is the portable, serializable form of a finished Analysis:
// every counter and table the report methods read, and nothing of the
// transient pass machinery (predictor tables, cache contents, register
// dependence state). A snapshot restored with FromSnapshot renders
// byte-identical reports because the report code paths are shared; it
// cannot observe further events.
type Snapshot struct {
	Version int

	// Mix pass.
	ClassCounts [isa.NumClasses]uint64
	FPCount     uint64
	FPLoads     uint64
	Total       uint64
	LoadCounts  map[int32]uint64

	// Cache pass. The hierarchy config travels along because AMAT
	// depends on the configured latencies.
	CacheConfig cache.HierarchyConfig
	L1Stats     cache.Stats
	L2Stats     cache.Stats
	L1Miss      map[int32]uint64

	// Predictor pass.
	Branches    map[int32]bpred.BranchStats
	BranchTotal bpred.BranchStats

	// Dependence pass.
	ToBranch      map[int32]uint64
	FedBranch     map[int32]map[int32]uint64
	FedBranchExec uint64
	FedBranchMiss uint64

	// Sequence pass.
	AfterBranch map[int32]map[int32]uint64
}

func copyNested(src map[int32]map[int32]uint64) map[int32]map[int32]uint64 {
	out := make(map[int32]map[int32]uint64, len(src))
	for k, inner := range src {
		m := make(map[int32]uint64, len(inner))
		for k2, v := range inner {
			m[k2] = v
		}
		out[k] = m
	}
	return out
}

// denseToMap converts a dense per-PC counter slice to the snapshot's
// sparse map form (the gob wire shape is unchanged from version 1).
func denseToMap(src []uint64) map[int32]uint64 {
	out := make(map[int32]uint64)
	for pc, v := range src {
		if v != 0 {
			out[int32(pc)] = v
		}
	}
	return out
}

// mapToDense rebuilds a dense per-PC counter slice from the snapshot's
// map form, rejecting PCs outside the program.
func mapToDense(src map[int32]uint64, nInsts int) ([]uint64, error) {
	out := make([]uint64, nInsts)
	for pc, v := range src {
		if pc < 0 || int(pc) >= nInsts {
			return nil, fmt.Errorf("loadchar: snapshot PC %d outside program (%d insts)", pc, nInsts)
		}
		out[pc] = v
	}
	return out, nil
}

// Snapshot captures the analysis's report state. The analysis can keep
// observing afterwards; the snapshot is an independent copy.
func (a *Analysis) Snapshot() *Snapshot {
	return &Snapshot{
		Version:       SnapshotVersion,
		ClassCounts:   a.mix.classCounts,
		FPCount:       a.mix.fpCount,
		FPLoads:       a.mix.fpLoads,
		Total:         a.mix.total,
		LoadCounts:    denseToMap(a.mix.counts),
		CacheConfig:   a.cache.hier.Config(),
		L1Stats:       a.cache.hier.L1().Stats(),
		L2Stats:       a.cache.hier.L2().Stats(),
		L1Miss:        denseToMap(a.cache.l1miss),
		Branches:      a.bp.bp.PerBranch(),
		BranchTotal:   a.bp.bp.Total(),
		ToBranch:      denseToMap(a.dep.toBranch),
		FedBranch:     copyNested(a.dep.fedBranch),
		FedBranchExec: a.dep.fedBranchExec,
		FedBranchMiss: a.dep.fedBranchMiss,
		AfterBranch:   copyNested(a.seq.afterBranch),
	}
}

// Scale multiplies every count in the snapshot by w, in place. Every
// snapshot field is a pure sum over observed events, so scaling is
// exact arithmetic: a snapshot of one interval scaled by its cluster
// weight stands for the whole cluster in a merged extrapolation.
// Scale(0) empties the snapshot; the cache configuration is preserved.
func (s *Snapshot) Scale(w uint64) {
	for i := range s.ClassCounts {
		s.ClassCounts[i] *= w
	}
	s.FPCount *= w
	s.FPLoads *= w
	s.Total *= w
	scaleMap(s.LoadCounts, w)
	s.L1Stats = scaleStats(s.L1Stats, w)
	s.L2Stats = scaleStats(s.L2Stats, w)
	scaleMap(s.L1Miss, w)
	for pc, b := range s.Branches {
		s.Branches[pc] = scaleBranch(b, w)
	}
	s.BranchTotal = scaleBranch(s.BranchTotal, w)
	scaleMap(s.ToBranch, w)
	scaleNested(s.FedBranch, w)
	s.FedBranchExec *= w
	s.FedBranchMiss *= w
	scaleNested(s.AfterBranch, w)
}

// Merge adds o's counts into s, in place. Both snapshots must have
// been taken under the same cache configuration (AMAT depends on the
// latencies) and the same version; mismatches are an error rather than
// a silent blend of incomparable counters.
func (s *Snapshot) Merge(o *Snapshot) error {
	if s.Version != o.Version {
		return fmt.Errorf("loadchar: merge snapshot version %d into %d", o.Version, s.Version)
	}
	if s.CacheConfig != o.CacheConfig {
		return fmt.Errorf("loadchar: merge snapshots with different cache configurations")
	}
	for i := range s.ClassCounts {
		s.ClassCounts[i] += o.ClassCounts[i]
	}
	s.FPCount += o.FPCount
	s.FPLoads += o.FPLoads
	s.Total += o.Total
	addMap(s.LoadCounts, o.LoadCounts)
	s.L1Stats = addStats(s.L1Stats, o.L1Stats)
	s.L2Stats = addStats(s.L2Stats, o.L2Stats)
	addMap(s.L1Miss, o.L1Miss)
	for pc, b := range o.Branches {
		cur := s.Branches[pc]
		cur.Executed += b.Executed
		cur.Mispredicts += b.Mispredicts
		cur.Taken += b.Taken
		s.Branches[pc] = cur
	}
	s.BranchTotal.Executed += o.BranchTotal.Executed
	s.BranchTotal.Mispredicts += o.BranchTotal.Mispredicts
	s.BranchTotal.Taken += o.BranchTotal.Taken
	addMap(s.ToBranch, o.ToBranch)
	addNested(s.FedBranch, o.FedBranch)
	s.FedBranchExec += o.FedBranchExec
	s.FedBranchMiss += o.FedBranchMiss
	addNested(s.AfterBranch, o.AfterBranch)
	return nil
}

// Sub subtracts o's counts from s, in place. It is only meaningful
// when o is a prefix of s — a snapshot taken earlier on the same
// analysis — in which case every field of o is bounded by s and the
// difference is exactly the counts attributed to the events between
// the two snapshots. Entries that reach zero are dropped from the
// sparse maps so a difference snapshot round-trips like a fresh one.
func (s *Snapshot) Sub(o *Snapshot) error {
	if s.Version != o.Version {
		return fmt.Errorf("loadchar: subtract snapshot version %d from %d", o.Version, s.Version)
	}
	if s.CacheConfig != o.CacheConfig {
		return fmt.Errorf("loadchar: subtract snapshots with different cache configurations")
	}
	for i := range s.ClassCounts {
		if s.ClassCounts[i] < o.ClassCounts[i] {
			return fmt.Errorf("loadchar: subtrahend is not a prefix (class %d)", i)
		}
		s.ClassCounts[i] -= o.ClassCounts[i]
	}
	s.FPCount -= o.FPCount
	s.FPLoads -= o.FPLoads
	s.Total -= o.Total
	subMap(s.LoadCounts, o.LoadCounts)
	s.L1Stats = subStats(s.L1Stats, o.L1Stats)
	s.L2Stats = subStats(s.L2Stats, o.L2Stats)
	subMap(s.L1Miss, o.L1Miss)
	for pc, b := range o.Branches {
		cur := s.Branches[pc]
		cur.Executed -= b.Executed
		cur.Mispredicts -= b.Mispredicts
		cur.Taken -= b.Taken
		if cur == (bpred.BranchStats{}) {
			delete(s.Branches, pc)
		} else {
			s.Branches[pc] = cur
		}
	}
	s.BranchTotal.Executed -= o.BranchTotal.Executed
	s.BranchTotal.Mispredicts -= o.BranchTotal.Mispredicts
	s.BranchTotal.Taken -= o.BranchTotal.Taken
	subMap(s.ToBranch, o.ToBranch)
	subNested(s.FedBranch, o.FedBranch)
	s.FedBranchExec -= o.FedBranchExec
	s.FedBranchMiss -= o.FedBranchMiss
	subNested(s.AfterBranch, o.AfterBranch)
	return nil
}

func scaleMap(m map[int32]uint64, w uint64) {
	for k, v := range m {
		m[k] = v * w
	}
}

func addMap(dst, src map[int32]uint64) {
	for k, v := range src {
		dst[k] += v
	}
}

func subMap(dst, src map[int32]uint64) {
	for k, v := range src {
		if dst[k] == v {
			delete(dst, k)
		} else {
			dst[k] -= v
		}
	}
}

func scaleNested(m map[int32]map[int32]uint64, w uint64) {
	for _, inner := range m {
		scaleMap(inner, w)
	}
}

func addNested(dst, src map[int32]map[int32]uint64) {
	for k, inner := range src {
		d := dst[k]
		if d == nil {
			d = make(map[int32]uint64, len(inner))
			dst[k] = d
		}
		addMap(d, inner)
	}
}

func subNested(dst, src map[int32]map[int32]uint64) {
	for k, inner := range src {
		d := dst[k]
		if d == nil {
			continue
		}
		subMap(d, inner)
		if len(d) == 0 {
			delete(dst, k)
		}
	}
}

func scaleStats(s cache.Stats, w uint64) cache.Stats {
	return cache.Stats{
		Accesses: s.Accesses * w, LoadHits: s.LoadHits * w,
		LoadMisses: s.LoadMisses * w, StoreHits: s.StoreHits * w,
		StoreMisses: s.StoreMisses * w, Writebacks: s.Writebacks * w,
	}
}

func addStats(a, b cache.Stats) cache.Stats {
	return cache.Stats{
		Accesses: a.Accesses + b.Accesses, LoadHits: a.LoadHits + b.LoadHits,
		LoadMisses: a.LoadMisses + b.LoadMisses, StoreHits: a.StoreHits + b.StoreHits,
		StoreMisses: a.StoreMisses + b.StoreMisses, Writebacks: a.Writebacks + b.Writebacks,
	}
}

func subStats(a, b cache.Stats) cache.Stats {
	return cache.Stats{
		Accesses: a.Accesses - b.Accesses, LoadHits: a.LoadHits - b.LoadHits,
		LoadMisses: a.LoadMisses - b.LoadMisses, StoreHits: a.StoreHits - b.StoreHits,
		StoreMisses: a.StoreMisses - b.StoreMisses, Writebacks: a.Writebacks - b.Writebacks,
	}
}

func scaleBranch(b bpred.BranchStats, w uint64) bpred.BranchStats {
	return bpred.BranchStats{Executed: b.Executed * w, Mispredicts: b.Mispredicts * w, Taken: b.Taken * w}
}

// FromSnapshot rebuilds a report-only Analysis over prog from a
// snapshot. The report methods are byte-for-byte equivalent to the
// analysis the snapshot was taken from; Observe/ObserveBatch panic,
// because the transient pass state needed to continue is not part of
// a snapshot.
func FromSnapshot(prog *isa.Program, s *Snapshot) (*Analysis, error) {
	if s.Version != SnapshotVersion {
		return nil, fmt.Errorf("loadchar: snapshot version %d, want %d", s.Version, SnapshotVersion)
	}
	a := &Analysis{prog: prog, restored: true}
	a.mix.classCounts = s.ClassCounts
	a.mix.fpCount = s.FPCount
	a.mix.fpLoads = s.FPLoads
	a.mix.total = s.Total
	var err error
	if a.mix.counts, err = mapToDense(s.LoadCounts, len(prog.Insts)); err != nil {
		return nil, err
	}
	a.cache.hier = cache.NewHierarchy(s.CacheConfig)
	a.cache.hier.L1().SetStats(s.L1Stats)
	a.cache.hier.L2().SetStats(s.L2Stats)
	if a.cache.l1miss, err = mapToDense(s.L1Miss, len(prog.Insts)); err != nil {
		return nil, err
	}
	a.bp.bp = bpred.RestoreTracker(s.Branches, s.BranchTotal)
	a.dep.init(len(prog.Insts))
	if a.dep.toBranch, err = mapToDense(s.ToBranch, len(prog.Insts)); err != nil {
		return nil, err
	}
	a.dep.fedBranch = copyNested(s.FedBranch)
	a.dep.fedBranchExec = s.FedBranchExec
	a.dep.fedBranchMiss = s.FedBranchMiss
	a.seq.init()
	a.seq.afterBranch = copyNested(s.AfterBranch)
	return a, nil
}
