package loadchar

import (
	"fmt"

	"bioperfload/internal/bpred"
	"bioperfload/internal/cache"
	"bioperfload/internal/isa"
)

// SnapshotVersion guards the serialized snapshot layout; bump it when
// Snapshot's shape or the meaning of any field changes.
const SnapshotVersion = 1

// Snapshot is the portable, serializable form of a finished Analysis:
// every counter and table the report methods read, and nothing of the
// transient pass machinery (predictor tables, cache contents, register
// dependence state). A snapshot restored with FromSnapshot renders
// byte-identical reports because the report code paths are shared; it
// cannot observe further events.
type Snapshot struct {
	Version int

	// Mix pass.
	ClassCounts [isa.NumClasses]uint64
	FPCount     uint64
	FPLoads     uint64
	Total       uint64
	LoadCounts  map[int32]uint64

	// Cache pass. The hierarchy config travels along because AMAT
	// depends on the configured latencies.
	CacheConfig cache.HierarchyConfig
	L1Stats     cache.Stats
	L2Stats     cache.Stats
	L1Miss      map[int32]uint64

	// Predictor pass.
	Branches    map[int32]bpred.BranchStats
	BranchTotal bpred.BranchStats

	// Dependence pass.
	ToBranch      map[int32]uint64
	FedBranch     map[int32]map[int32]uint64
	FedBranchExec uint64
	FedBranchMiss uint64

	// Sequence pass.
	AfterBranch map[int32]map[int32]uint64
}

func copyNested(src map[int32]map[int32]uint64) map[int32]map[int32]uint64 {
	out := make(map[int32]map[int32]uint64, len(src))
	for k, inner := range src {
		m := make(map[int32]uint64, len(inner))
		for k2, v := range inner {
			m[k2] = v
		}
		out[k] = m
	}
	return out
}

// denseToMap converts a dense per-PC counter slice to the snapshot's
// sparse map form (the gob wire shape is unchanged from version 1).
func denseToMap(src []uint64) map[int32]uint64 {
	out := make(map[int32]uint64)
	for pc, v := range src {
		if v != 0 {
			out[int32(pc)] = v
		}
	}
	return out
}

// mapToDense rebuilds a dense per-PC counter slice from the snapshot's
// map form, rejecting PCs outside the program.
func mapToDense(src map[int32]uint64, nInsts int) ([]uint64, error) {
	out := make([]uint64, nInsts)
	for pc, v := range src {
		if pc < 0 || int(pc) >= nInsts {
			return nil, fmt.Errorf("loadchar: snapshot PC %d outside program (%d insts)", pc, nInsts)
		}
		out[pc] = v
	}
	return out, nil
}

// Snapshot captures the analysis's report state. The analysis can keep
// observing afterwards; the snapshot is an independent copy.
func (a *Analysis) Snapshot() *Snapshot {
	return &Snapshot{
		Version:       SnapshotVersion,
		ClassCounts:   a.mix.classCounts,
		FPCount:       a.mix.fpCount,
		FPLoads:       a.mix.fpLoads,
		Total:         a.mix.total,
		LoadCounts:    denseToMap(a.mix.counts),
		CacheConfig:   a.cache.hier.Config(),
		L1Stats:       a.cache.hier.L1().Stats(),
		L2Stats:       a.cache.hier.L2().Stats(),
		L1Miss:        denseToMap(a.cache.l1miss),
		Branches:      a.bp.bp.PerBranch(),
		BranchTotal:   a.bp.bp.Total(),
		ToBranch:      denseToMap(a.dep.toBranch),
		FedBranch:     copyNested(a.dep.fedBranch),
		FedBranchExec: a.dep.fedBranchExec,
		FedBranchMiss: a.dep.fedBranchMiss,
		AfterBranch:   copyNested(a.seq.afterBranch),
	}
}

// FromSnapshot rebuilds a report-only Analysis over prog from a
// snapshot. The report methods are byte-for-byte equivalent to the
// analysis the snapshot was taken from; Observe/ObserveBatch panic,
// because the transient pass state needed to continue is not part of
// a snapshot.
func FromSnapshot(prog *isa.Program, s *Snapshot) (*Analysis, error) {
	if s.Version != SnapshotVersion {
		return nil, fmt.Errorf("loadchar: snapshot version %d, want %d", s.Version, SnapshotVersion)
	}
	a := &Analysis{prog: prog, restored: true}
	a.mix.classCounts = s.ClassCounts
	a.mix.fpCount = s.FPCount
	a.mix.fpLoads = s.FPLoads
	a.mix.total = s.Total
	var err error
	if a.mix.counts, err = mapToDense(s.LoadCounts, len(prog.Insts)); err != nil {
		return nil, err
	}
	a.cache.hier = cache.NewHierarchy(s.CacheConfig)
	a.cache.hier.L1().SetStats(s.L1Stats)
	a.cache.hier.L2().SetStats(s.L2Stats)
	if a.cache.l1miss, err = mapToDense(s.L1Miss, len(prog.Insts)); err != nil {
		return nil, err
	}
	a.bp.bp = bpred.RestoreTracker(s.Branches, s.BranchTotal)
	a.dep.init(len(prog.Insts))
	if a.dep.toBranch, err = mapToDense(s.ToBranch, len(prog.Insts)); err != nil {
		return nil, err
	}
	a.dep.fedBranch = copyNested(s.FedBranch)
	a.dep.fedBranchExec = s.FedBranchExec
	a.dep.fedBranchMiss = s.FedBranchMiss
	a.seq.init()
	a.seq.afterBranch = copyNested(s.AfterBranch)
	return a, nil
}
