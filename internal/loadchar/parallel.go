package loadchar

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"bioperfload/internal/isa"
	"bioperfload/internal/sim"
)

// EventSource is a stream of committed-instruction event slabs in
// commit order, as produced by a trace reader. Next returns the next
// slab and a release function that recycles it; it returns io.EOF
// after the final slab. trace.Source satisfies this structurally, so
// loadchar does not import the trace package.
type EventSource interface {
	Next() ([]sim.Event, func(), error)
}

// chunkMsg carries one slab to a pass goroutine; done is the
// refcounted release shared by all passes.
type chunkMsg struct {
	evs  []sim.Event
	done func()
}

// newChunkMsg wraps a slab with a release that fires once all *refs
// receivers have called done.
func newChunkMsg(evs []sim.Event, refs *int32, release func()) chunkMsg {
	return chunkMsg{evs: evs, done: func() {
		if atomic.AddInt32(refs, -1) == 0 {
			release()
		}
	}}
}

// AnalyzeParallel runs the full characterization over src with each
// component pass on its own goroutine: the mix, cache, predictor,
// dependence, and sequence passes all see every slab in commit order,
// so the result is exactly — not approximately — the analysis a live
// simulation produces, but the critical path is the slowest single
// pass rather than their sum. The predictor pass forwards per-chunk
// mispredict bitmaps to the dependence pass, which is the passes' only
// coupling.
//
// Slabs are released once all passes have finished with them, so src
// may recycle buffers. ctx is checked between chunks.
func AnalyzeParallel(ctx context.Context, prog *isa.Program, src EventSource) (*Analysis, error) {
	a := New(prog)

	const depth = 4
	mixC := make(chan chunkMsg, depth)
	cacheC := make(chan chunkMsg, depth)
	bpC := make(chan chunkMsg, depth)
	depC := make(chan chunkMsg, depth)
	seqC := make(chan chunkMsg, depth)
	chans := []chan chunkMsg{mixC, cacheC, bpC, depC, seqC}
	// bitsC must outpace depC so the predictor pass never stalls on a
	// full bitmap queue while the dependence pass waits for its chunk.
	bitsC := make(chan *misBits, depth+2)

	var wg sync.WaitGroup
	run := func(ch chan chunkMsg, f func(chunkMsg)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for msg := range ch {
				f(msg)
				msg.done()
			}
		}()
	}
	run(mixC, func(m chunkMsg) { a.mix.observe(m.evs) })
	run(cacheC, func(m chunkMsg) { a.cache.observe(m.evs) })
	run(bpC, func(m chunkMsg) {
		bits := &misBits{}
		a.bp.observe(m.evs, bits)
		bitsC <- bits
	})
	run(depC, func(m chunkMsg) {
		bits := <-bitsC
		a.dep.observe(m.evs, bits)
	})
	run(seqC, func(m chunkMsg) { a.seq.observe(m.evs) })

	feed := func() error {
		for {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("loadchar: parallel analysis: %w", err)
			}
			evs, release, err := src.Next()
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
			if release == nil {
				release = func() {}
			}
			refs := int32(len(chans))
			msg := newChunkMsg(evs, &refs, release)
			// Every channel must receive every chunk unconditionally:
			// the bitmap handoff pairs the predictor and dependence
			// passes by chunk ordinal, so a partial fan-out would
			// desynchronize them.
			for _, ch := range chans {
				ch <- msg
			}
		}
	}
	err := feed()
	for _, ch := range chans {
		close(ch)
	}
	wg.Wait()
	if err != nil {
		return nil, err
	}
	return a, nil
}
