package loadchar

import (
	"bioperfload/internal/bpred"
	"bioperfload/internal/cache"
	"bioperfload/internal/isa"
	"bioperfload/internal/sim"
)

// The five component passes. Each is an independent sequential state
// machine over the committed-instruction stream; together they produce
// exactly the single-pass characterization. Their only coupling is
// misBits: the predictor pass records each conditional branch's
// mispredict outcome, which the dependence pass consumes in order.

// misBits is an append-only bitmap of conditional-branch mispredict
// outcomes, one bit per dynamic conditional branch in stream order.
type misBits struct {
	words []uint64
	n     int
}

func (b *misBits) reset() {
	b.words = b.words[:0]
	b.n = 0
}

func (b *misBits) push(mis bool) {
	if b.n&63 == 0 {
		b.words = append(b.words, 0)
	}
	if mis {
		b.words[b.n>>6] |= 1 << (b.n & 63)
	}
	b.n++
}

func (b *misBits) at(i int) bool { return b.words[i>>6]&(1<<(i&63)) != 0 }

// --- mix pass: instruction mix + per-static-load execution counts ---

type mixPass struct {
	classCounts [isa.NumClasses]uint64
	fpCount     uint64
	fpLoads     uint64
	total       uint64
	// counts is the dynamic execution count of each static load,
	// indexed by PC. A dense slice beats a map here: the increment on
	// every dynamic load is the pass's hot path.
	counts []uint64
}

func (p *mixPass) init(nInsts int) { p.counts = make([]uint64, nInsts) }

func (p *mixPass) observe(evs []sim.Event) {
	for i := range evs {
		op := evs[i].Inst.Op
		cls := isa.ClassOf(op)
		p.total++
		p.classCounts[cls]++
		if isa.IsFloat(op) {
			p.fpCount++
			if cls == isa.ClassLoad {
				p.fpLoads++
			}
		}
		if cls == isa.ClassLoad {
			p.counts[evs[i].PC]++
		}
	}
}

// merge folds another shard's mix state into p. Every field is a pure
// sum, so the pass is order-insensitive and the merge is exact.
func (p *mixPass) merge(o *mixPass) {
	for i := range p.classCounts {
		p.classCounts[i] += o.classCounts[i]
	}
	p.fpCount += o.fpCount
	p.fpLoads += o.fpLoads
	p.total += o.total
	for pc, c := range o.counts {
		if c != 0 {
			p.counts[pc] += c
		}
	}
}

// --- cache pass: memory hierarchy + per-static-load L1 misses ---

type cachePass struct {
	hier *cache.Hierarchy
	// l1miss is the L1 miss count of each static load, indexed by PC.
	l1miss []uint64
}

func (p *cachePass) init(hc cache.HierarchyConfig, nInsts int) {
	p.hier = cache.NewHierarchy(hc)
	p.l1miss = make([]uint64, nInsts)
}

func (p *cachePass) observe(evs []sim.Event) {
	for i := range evs {
		switch isa.ClassOf(evs[i].Inst.Op) {
		case isa.ClassLoad:
			lvl, _ := p.hier.Access(evs[i].Addr, false)
			if lvl != cache.LevelL1 {
				p.l1miss[evs[i].PC]++
			}
		case isa.ClassStore:
			p.hier.Access(evs[i].Addr, true)
		}
	}
}

// --- predictor pass: hybrid branch predictor ---

type bpredPass struct {
	bp *bpred.Tracker
}

func (p *bpredPass) init(pred bpred.Predictor) { p.bp = bpred.NewTracker(pred) }

// observe runs the predictor over the slab, appending one mispredict
// bit per conditional branch to bits for the dependence pass.
func (p *bpredPass) observe(evs []sim.Event, bits *misBits) {
	for i := range evs {
		if isa.IsCondBranch(evs[i].Inst.Op) {
			bits.push(p.bp.Observe(evs[i].PC, evs[i].Taken))
		}
	}
}

// --- dependence pass: load-to-branch chains ---

type depPass struct {
	deps [isa.NumIntRegs + isa.NumFPRegs]regDep
	// toBranch counts, per load PC (dense, indexed by PC), dynamic
	// instances feeding a conditional branch.
	toBranch []uint64
	// fedBranch counts, per load PC and branch PC, how often the load
	// fed the branch.
	fedBranch     map[int32]map[int32]uint64
	fedBranchExec uint64
	fedBranchMiss uint64
	// lastLoadPC/lastFB memoize the inner fedBranch map: consecutive
	// credits overwhelmingly come from the same hot load.
	lastLoadPC int32
	lastFB     map[int32]uint64
	// rec, when non-nil, puts the pass in recording mode: every
	// conditional branch is reported to the hook instead of the pass's
	// own counters, and the mispredict bitmap is not consulted (the
	// block-characterized replay joins fed flags with mispredicts in
	// its predictor lane). The register dependence state machine is
	// unaffected, so recorded transitions are exact.
	rec func(branchPC int32, fed bool, srcA, srcB int32)
}

func (p *depPass) init(nInsts int) {
	p.toBranch = make([]uint64, nInsts)
	p.fedBranch = make(map[int32]map[int32]uint64)
	p.lastLoadPC = -1
	p.lastFB = nil
	for i := range p.deps {
		p.deps[i].depth = -1
	}
}

func (p *depPass) credit(loadPC, branchPC int32) {
	p.toBranch[loadPC]++
	fb := p.lastFB
	if fb == nil || p.lastLoadPC != loadPC {
		fb = p.fedBranch[loadPC]
		if fb == nil {
			fb = make(map[int32]uint64)
			p.fedBranch[loadPC] = fb
		}
		p.lastFB = fb
		p.lastLoadPC = loadPC
	}
	fb[branchPC]++
}

// observe advances the register dependence state machine. bits must
// hold the mispredict outcome of every conditional branch in evs, in
// order; its cursor state lives here (bit index == conditional-branch
// ordinal within the slab).
func (p *depPass) observe(evs []sim.Event, bits *misBits) {
	br := 0
	for i := range evs {
		in := evs[i].Inst
		op := in.Op
		switch cls := isa.ClassOf(op); {
		case cls == isa.ClassLoad:
			dst := int(in.Rd)
			if op == isa.OpLdt {
				dst = fpIdx(in.Rd)
			}
			if !isZeroReg(in.Rd, op == isa.OpLdt) {
				p.deps[dst] = regDep{depth: 0, srcA: evs[i].PC, srcB: -1}
			}
		case cls == isa.ClassStore:
		case cls == isa.ClassCondBranch:
			d := p.deps[in.Ra]
			fed := in.Ra != isa.RZero && d.depth >= 0
			if p.rec != nil {
				p.rec(evs[i].PC, fed, d.srcA, d.srcB)
				continue
			}
			mis := bits.at(br)
			br++
			if fed {
				p.fedBranchExec++
				if mis {
					p.fedBranchMiss++
				}
				p.credit(d.srcA, evs[i].PC)
				if d.srcB >= 0 && d.srcB != d.srcA {
					p.credit(d.srcB, evs[i].PC)
				}
			}
		default:
			p.propagate(in)
		}
	}
}

// propagate advances the register dependence state for non-memory,
// non-branch instructions.
func (p *depPass) propagate(in *isa.Inst) {
	op := in.Op
	clearDst := func(idx int) { p.deps[idx] = regDep{depth: -1} }

	merge := func(dst int, srcs ...int) {
		nd := regDep{depth: -1, srcA: -1, srcB: -1}
		for _, s := range srcs {
			d := p.deps[s]
			if d.depth < 0 || d.depth >= chainDepth {
				continue
			}
			if nd.depth < 0 {
				nd = regDep{depth: d.depth + 1, srcA: d.srcA, srcB: d.srcB}
				continue
			}
			if d.depth+1 > nd.depth {
				nd.depth = d.depth + 1
			}
			if nd.srcB < 0 && d.srcA != nd.srcA {
				nd.srcB = d.srcA
			}
		}
		p.deps[dst] = nd
	}

	switch {
	case op == isa.OpLdiq || op == isa.OpLda:
		if !isZeroReg(in.Rd, false) {
			if op == isa.OpLda {
				merge(int(in.Rd), int(in.Ra))
			} else {
				clearDst(int(in.Rd))
			}
		}
	case isa.IsCmov(op):
		if !isZeroReg(in.Rd, false) {
			merge(int(in.Rd), int(in.Ra), int(in.Rb), int(in.Rd))
		}
	case op == isa.OpCmpTeq || op == isa.OpCmpTlt || op == isa.OpCmpTle:
		if !isZeroReg(in.Rd, false) {
			merge(int(in.Rd), fpIdx(in.Ra), fpIdx(in.Rb))
		}
	case op == isa.OpCvtQT:
		if !isZeroReg(in.Rd, true) {
			merge(fpIdx(in.Rd), int(in.Ra))
		}
	case op == isa.OpCvtTQ:
		if !isZeroReg(in.Rd, false) {
			merge(int(in.Rd), fpIdx(in.Ra))
		}
	case op == isa.OpFMov || op == isa.OpFNeg:
		if !isZeroReg(in.Rd, true) {
			merge(fpIdx(in.Rd), fpIdx(in.Ra))
		}
	case op == isa.OpAddt || op == isa.OpSubt || op == isa.OpMult || op == isa.OpDivt:
		if !isZeroReg(in.Rd, true) {
			merge(fpIdx(in.Rd), fpIdx(in.Ra), fpIdx(in.Rb))
		}
	case op == isa.OpPrint || op == isa.OpPrintF || op == isa.OpHalt || op == isa.OpNop:
	case op == isa.OpJsr:
		if !isZeroReg(in.Rd, false) {
			clearDst(int(in.Rd))
		}
	case op == isa.OpRet:
	default: // integer ALU
		if isZeroReg(in.Rd, false) {
			return
		}
		if in.HasImm {
			merge(int(in.Rd), int(in.Ra))
		} else {
			merge(int(in.Rd), int(in.Ra), int(in.Rb))
		}
	}
}

// --- sequence pass: branch-to-load sequences (Table 4b) ---

type pendingLoad struct {
	active      bool
	loadPC      int32
	afterBranch int32 // -1 when not right after a branch
	seq         uint64
}

type seqPass struct {
	pending       [isa.NumIntRegs + isa.NumFPRegs]pendingLoad
	lastBranchPC  int32
	lastBranchSeq uint64
	haveBranch    bool
	// minSeq mutes counting for consumptions before it. A shard worker
	// primes the pass with the warm-up window preceding its range (see
	// AnalyzeSharded); those events rebuild the branch/pending state but
	// their own consumptions belong to the previous shard and were
	// already counted there.
	minSeq uint64
	// afterBranch counts, per load PC and branch PC, how often the load
	// (with a tight consumer) executed right after the branch.
	afterBranch map[int32]map[int32]uint64
	// rec, when non-nil, puts the pass in recording mode: completed
	// branch-to-load sequences are reported to the hook instead of the
	// afterBranch table. The pending/branch state machine is unaffected.
	rec func(loadPC, branchPC int32)
}

func (p *seqPass) init() { p.afterBranch = make(map[int32]map[int32]uint64) }

// merge folds another shard's sequence counts into p. Each count is
// attributed at consume time, and a shard only counts consumptions
// inside its own range (minSeq), so summing shard states is exact.
func (p *seqPass) merge(o *seqPass) {
	for loadPC, ab := range o.afterBranch {
		dst := p.afterBranch[loadPC]
		if dst == nil {
			dst = make(map[int32]uint64, len(ab))
			p.afterBranch[loadPC] = dst
		}
		for brPC, n := range ab {
			dst[brPC] += n
		}
	}
}

func (p *seqPass) observe(evs []sim.Event) {
	for i := range evs {
		in := evs[i].Inst
		op := in.Op
		seq := evs[i].Seq

		// Consumption checks run before this instruction's own effects,
		// so a load reading a pending register is seen before it arms
		// its own destination.
		p.consume(in, seq)

		switch cls := isa.ClassOf(op); {
		case cls == isa.ClassLoad:
			if !isZeroReg(in.Rd, op == isa.OpLdt) {
				dst := int(in.Rd)
				if op == isa.OpLdt {
					dst = fpIdx(in.Rd)
				}
				after := int32(-1)
				if p.haveBranch && seq-p.lastBranchSeq <= proximity {
					after = p.lastBranchPC
				}
				p.pending[dst] = pendingLoad{active: true, loadPC: evs[i].PC, afterBranch: after, seq: seq}
			}
		case cls == isa.ClassStore:
		case cls == isa.ClassCondBranch:
			p.lastBranchPC = evs[i].PC
			p.lastBranchSeq = seq
			p.haveBranch = true
		default:
			p.deactivate(in)
		}
	}
}

// consume checks whether this instruction reads a register holding a
// pending just-loaded value within the proximity window, completing a
// branch-to-load sequence record.
func (p *seqPass) consume(in *isa.Inst, seq uint64) {
	check := func(idx int) {
		pd := &p.pending[idx]
		if !pd.active {
			return
		}
		if seq-pd.seq > proximity {
			pd.active = false
			return
		}
		if pd.afterBranch >= 0 && seq >= p.minSeq {
			if p.rec != nil {
				p.rec(pd.loadPC, pd.afterBranch)
			} else {
				ab := p.afterBranch[pd.loadPC]
				if ab == nil {
					ab = make(map[int32]uint64)
					p.afterBranch[pd.loadPC] = ab
				}
				ab[pd.afterBranch]++
			}
		}
		pd.active = false
	}
	op := in.Op
	switch {
	case op == isa.OpNop || op == isa.OpHalt || op == isa.OpLdiq || op == isa.OpBr || op == isa.OpJsr:
	case op == isa.OpLdt || op == isa.OpLdq || op == isa.OpLdbu || op == isa.OpLda:
		check(int(in.Ra))
	case op == isa.OpStq || op == isa.OpStb:
		check(int(in.Ra))
		check(int(in.Rb))
	case op == isa.OpStt:
		check(int(in.Ra))
		check(fpIdx(in.Rb))
	case op == isa.OpAddt || op == isa.OpSubt || op == isa.OpMult || op == isa.OpDivt ||
		op == isa.OpCmpTeq || op == isa.OpCmpTlt || op == isa.OpCmpTle:
		check(fpIdx(in.Ra))
		check(fpIdx(in.Rb))
	case op == isa.OpCvtQT:
		check(int(in.Ra))
	case op == isa.OpCvtTQ, op == isa.OpFMov, op == isa.OpFNeg, op == isa.OpPrintF:
		check(fpIdx(in.Ra))
	case isa.IsCondBranch(op) || op == isa.OpRet || op == isa.OpPrint:
		check(int(in.Ra))
	case isa.IsCmov(op):
		check(int(in.Ra))
		check(int(in.Rb))
		check(int(in.Rd))
	default: // integer ALU
		check(int(in.Ra))
		if !in.HasImm {
			check(int(in.Rb))
		}
	}
}

// deactivate mirrors depPass.propagate's destination-register writes:
// any instruction that overwrites a register disarms a pending load
// waiting there. The case structure must match propagate exactly.
func (p *seqPass) deactivate(in *isa.Inst) {
	op := in.Op
	clear := func(idx int) { p.pending[idx].active = false }

	switch {
	case op == isa.OpLdiq || op == isa.OpLda:
		if !isZeroReg(in.Rd, false) {
			clear(int(in.Rd))
		}
	case isa.IsCmov(op):
		if !isZeroReg(in.Rd, false) {
			clear(int(in.Rd))
		}
	case op == isa.OpCmpTeq || op == isa.OpCmpTlt || op == isa.OpCmpTle:
		if !isZeroReg(in.Rd, false) {
			clear(int(in.Rd))
		}
	case op == isa.OpCvtQT:
		if !isZeroReg(in.Rd, true) {
			clear(fpIdx(in.Rd))
		}
	case op == isa.OpCvtTQ:
		if !isZeroReg(in.Rd, false) {
			clear(int(in.Rd))
		}
	case op == isa.OpFMov || op == isa.OpFNeg:
		if !isZeroReg(in.Rd, true) {
			clear(fpIdx(in.Rd))
		}
	case op == isa.OpAddt || op == isa.OpSubt || op == isa.OpMult || op == isa.OpDivt:
		if !isZeroReg(in.Rd, true) {
			clear(fpIdx(in.Rd))
		}
	case op == isa.OpPrint || op == isa.OpPrintF || op == isa.OpHalt || op == isa.OpNop:
	case op == isa.OpJsr:
		if !isZeroReg(in.Rd, false) {
			clear(int(in.Rd))
		}
	case op == isa.OpRet:
	default: // integer ALU
		if !isZeroReg(in.Rd, false) {
			clear(int(in.Rd))
		}
	}
}
