package loadchar

import (
	"fmt"
	"strings"
)

// RenderProfile renders one program's full characterization as the
// canonical human-readable profile text. Both `cmd/bioperf -profile`
// and the bioperfd service's characterize payload use this single
// renderer, so the two paths are byte-equivalent by construction —
// the service golden test pins that property.
func RenderProfile(name, size string, a *Analysis, hot int) string {
	var b strings.Builder
	m := a.Mix()
	fmt.Fprintf(&b, "%s (%s inputs)\n", name, size)
	fmt.Fprintf(&b, "  instructions: %d\n", m.Total)
	fmt.Fprintf(&b, "  mix: %.1f%% loads, %.1f%% stores, %.1f%% cond branches, %.1f%% other (FP %.2f%%)\n",
		m.LoadPct, m.StorePct, m.BranchPct, m.OtherPct, 100*m.FPFraction)
	fmt.Fprintf(&b, "  static loads executed: %d, top-80 coverage %.1f%%\n",
		a.StaticLoadCount(), 100*a.CoverageAt(80))
	c := a.CacheReport()
	fmt.Fprintf(&b, "  cache: L1 %.2f%%, L2 %.2f%%, overall %.3f%%, AMAT %.2f\n",
		100*c.L1Local, 100*c.L2Local, 100*c.Overall, c.AMAT)
	s := a.Sequences()
	fmt.Fprintf(&b, "  load-to-branch: %.1f%% of loads (fed-branch mispredict %.1f%%)\n",
		s.LoadToBranchPct, 100*s.FedBranchMispredictRate)
	fmt.Fprintf(&b, "  loads after hard branches: %.1f%%\n", s.LoadAfterHardBranchPct)
	fmt.Fprintf(&b, "  hottest loads:\n")
	for _, h := range a.HotLoads(hot) {
		fmt.Fprintf(&b, "    pc=%-6d freq=%5.2f%% L1miss=%5.2f%% brMispred=%5.2f%% %s:%d (%s)\n",
			h.PC, 100*h.Frequency, 100*h.L1MissRate, 100*h.BranchMispred,
			h.File, h.Line, h.Func)
	}
	return b.String()
}
