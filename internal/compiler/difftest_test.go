package compiler

import (
	"fmt"
	"strings"
	"testing"

	"bioperfload/internal/ir"
	"bioperfload/internal/minic"
	"bioperfload/internal/sim"
	"bioperfload/internal/workload"
)

// Differential testing: a seeded generator produces random (but
// always-terminating, trap-free) MiniC programs; every program must
// print identical output at O0, at O2, and under an 8-register budget.
// Any divergence is an optimizer or register-allocator bug.

type progGen struct {
	r       *workload.RNG
	b       strings.Builder
	intVars []string
	fpVars  []string
	arrays  []string // int arrays, each 16 elements
	depth   int
}

func (g *progGen) pick(vs []string) string { return vs[g.r.Intn(len(vs))] }

// intExpr emits a side-effect-free int expression.
func (g *progGen) intExpr(depth int) string {
	if depth <= 0 || g.r.Intn(3) == 0 {
		switch g.r.Intn(3) {
		case 0:
			return fmt.Sprintf("%d", g.r.Intn(200)-100)
		case 1:
			return g.pick(g.intVars)
		default:
			return fmt.Sprintf("%s[%s & 15]", g.pick(g.arrays), g.pick(g.intVars))
		}
	}
	a := g.intExpr(depth - 1)
	b := g.intExpr(depth - 1)
	switch g.r.Intn(9) {
	case 0:
		return fmt.Sprintf("(%s + %s)", a, b)
	case 1:
		return fmt.Sprintf("(%s - %s)", a, b)
	case 2:
		return fmt.Sprintf("(%s * %s)", a, b)
	case 3:
		// Guarded division: the divisor is forced nonzero.
		return fmt.Sprintf("(%s / ((%s & 7) + 1))", a, b)
	case 4:
		return fmt.Sprintf("(%s %% ((%s & 7) + 1))", a, b)
	case 5:
		return fmt.Sprintf("(%s ^ %s)", a, b)
	case 6:
		return fmt.Sprintf("(%s & %s)", a, b)
	case 7:
		return fmt.Sprintf("(%s < %s ? %s : %s)", a, b, g.intExpr(depth-1), g.intExpr(depth-1))
	default:
		return fmt.Sprintf("(%s << (%s & 7))", a, b)
	}
}

func (g *progGen) cond() string {
	a := g.intExpr(1)
	b := g.intExpr(1)
	ops := []string{"<", "<=", ">", ">=", "==", "!="}
	c := fmt.Sprintf("%s %s %s", a, ops[g.r.Intn(len(ops))], b)
	switch g.r.Intn(4) {
	case 0:
		return fmt.Sprintf("%s && %s != 0", c, g.pick(g.intVars))
	case 1:
		return fmt.Sprintf("%s || %s > 3", c, g.pick(g.intVars))
	}
	return c
}

func (g *progGen) stmt(indent string, depth int) {
	switch g.r.Intn(8) {
	case 0, 1:
		fmt.Fprintf(&g.b, "%s%s = %s;\n", indent, g.pick(g.intVars), g.intExpr(2))
	case 2:
		fmt.Fprintf(&g.b, "%s%s[%s & 15] = %s;\n", indent,
			g.pick(g.arrays), g.pick(g.intVars), g.intExpr(2))
	case 3:
		if depth > 0 {
			fmt.Fprintf(&g.b, "%sif (%s) {\n", indent, g.cond())
			g.stmt(indent+"\t", depth-1)
			if g.r.Intn(2) == 0 {
				fmt.Fprintf(&g.b, "%s} else {\n", indent)
				g.stmt(indent+"\t", depth-1)
			}
			fmt.Fprintf(&g.b, "%s}\n", indent)
		} else {
			fmt.Fprintf(&g.b, "%s%s += %s;\n", indent, g.pick(g.intVars), g.intExpr(1))
		}
	case 4:
		// Bounded loop over a fresh counter (always terminates).
		// The counter is never added to intVars: generated statements
		// write arbitrary intVars, and a write to the counter could
		// make the loop unbounded.
		v := fmt.Sprintf("q%d", g.r.Intn(1000000))
		n := g.r.Intn(6) + 2
		fmt.Fprintf(&g.b, "%sfor (int %s = 0; %s < %d; %s++) {\n", indent, v, v, n, v)
		fmt.Fprintf(&g.b, "%s\t%s += %s & 63;\n", indent, g.pick(g.intVars), v)
		g.stmt(indent+"\t", depth-1)
		fmt.Fprintf(&g.b, "%s}\n", indent)
	case 5:
		fmt.Fprintf(&g.b, "%s%s = %s + (int)%s;\n", indent,
			g.pick(g.intVars), g.intExpr(1), g.pick(g.fpVars))
	case 6:
		fmt.Fprintf(&g.b, "%s%s = %s * 0.5 + (double)(%s);\n", indent,
			g.pick(g.fpVars), g.pick(g.fpVars), g.intExpr(1))
	default:
		fmt.Fprintf(&g.b, "%s%s++;\n", indent, g.pick(g.intVars))
	}
}

// generate emits one random program that prints a digest of all its
// state.
func generate(seed uint64) string {
	g := &progGen{r: workload.NewRNG(seed)}
	g.intVars = []string{"v0", "v1", "v2", "v3"}
	g.fpVars = []string{"f0", "f1"}
	g.arrays = []string{"ga", "gb"}
	g.b.WriteString("int ga[16];\nint gb[16];\n")
	g.b.WriteString("int helper(int x, int y) { return x * 3 - y + (x > y ? 7 : -7); }\n")
	g.b.WriteString("int main() {\n")
	for i, v := range g.intVars {
		fmt.Fprintf(&g.b, "\tint %s = %d;\n", v, i*13+1)
	}
	for i, v := range g.fpVars {
		fmt.Fprintf(&g.b, "\tdouble %s = %d.5;\n", v, i+1)
	}
	g.b.WriteString("\tint ii;\n\tfor (ii = 0; ii < 16; ii++) { ga[ii] = ii * 3 - 9; gb[ii] = 40 - ii; }\n")
	nstmt := g.r.Intn(12) + 6
	for i := 0; i < nstmt; i++ {
		g.stmt("\t", 3)
		if g.r.Intn(4) == 0 {
			fmt.Fprintf(&g.b, "\tv%d = helper(%s, %s);\n",
				g.r.Intn(4), g.intExpr(1), g.intExpr(1))
		}
	}
	// Digest: print everything so any divergence is observable.
	g.b.WriteString("\tint dig = 0;\n")
	g.b.WriteString("\tfor (ii = 0; ii < 16; ii++) dig = dig * 31 + ga[ii] + gb[ii] * 7;\n")
	for _, v := range g.intVars {
		fmt.Fprintf(&g.b, "\tprint(%s);\n", v)
	}
	for _, v := range g.fpVars {
		fmt.Fprintf(&g.b, "\tprint(%s);\n", v)
	}
	g.b.WriteString("\tprint(dig);\n\treturn 0;\n}\n")
	return g.b.String()
}

func runOnce(t *testing.T, src string, opts Options) (string, error) {
	t.Helper()
	prog, err := Compile("fuzz.mc", src, opts)
	if err != nil {
		return "", fmt.Errorf("compile: %w", err)
	}
	m, err := sim.New(prog)
	if err != nil {
		return "", err
	}
	m.Fuel = 50_000_000
	res, err := m.Run()
	if err != nil {
		return "", err
	}
	return fmt.Sprint(res.IntOutput, res.FPOutput), nil
}

func TestDifferentialRandomPrograms(t *testing.T) {
	n := 60
	if testing.Short() {
		n = 10
	}
	configs := []Options{
		{Opt: ir.O0()},
		{Opt: ir.O2()},
		{Opt: ir.O2(), AllocIntRegs: 8, AllocFPRegs: 8},
		{Opt: ir.OptOptions{Fold: true, IfConvert: true, MaxIfConvert: 4}},
		{Opt: ir.OptOptions{Schedule: true, DCE: true}},
	}
	for seed := uint64(1); seed <= uint64(n); seed++ {
		src := generate(seed * 7919)
		var want string
		for ci, opts := range configs {
			got, err := runOnce(t, src, opts)
			if err != nil {
				t.Fatalf("seed %d config %d: %v\nprogram:\n%s", seed, ci, err, src)
			}
			if ci == 0 {
				want = got
				continue
			}
			if got != want {
				t.Fatalf("seed %d config %d diverged:\n O0: %s\n got: %s\nprogram:\n%s",
					seed, ci, want, got, src)
			}
		}
	}
}

// interpOnce runs the program through the AST interpreter (a second,
// independent implementation of MiniC semantics).
func interpOnce(t *testing.T, src string) (string, error) {
	t.Helper()
	f, err := minic.Parse("fuzz.mc", src)
	if err != nil {
		return "", err
	}
	info, err := minic.Check(f)
	if err != nil {
		return "", err
	}
	in := minic.NewInterp(f, info)
	if _, err := in.Run(); err != nil {
		return "", err
	}
	return fmt.Sprint(in.IntOutput, in.FPOutput), nil
}

// TestThreeWayDifferential compares the AST interpreter against the
// compiled program at O0 and O2: three independent executions of the
// same semantics must agree exactly.
func TestThreeWayDifferential(t *testing.T) {
	n := 60
	if testing.Short() {
		n = 10
	}
	for seed := uint64(1); seed <= uint64(n); seed++ {
		src := generate(seed*104729 + 17)
		ref, err := interpOnce(t, src)
		if err != nil {
			t.Fatalf("seed %d interp: %v\nprogram:\n%s", seed, err, src)
		}
		for _, opts := range []Options{{Opt: ir.O0()}, {Opt: ir.O2()}} {
			got, err := runOnce(t, src, opts)
			if err != nil {
				t.Fatalf("seed %d: %v\nprogram:\n%s", seed, err, src)
			}
			if got != ref {
				t.Fatalf("seed %d: interpreter and compiled code diverge:\ninterp:   %s\ncompiled: %s\nprogram:\n%s",
					seed, ref, got, src)
			}
		}
	}
}
