// Package compiler is the MiniC toolchain driver: parse, type-check,
// lay out the data segment, lower to IR, optimize, and generate
// VRISC64 code. It is the single entry point the benchmark kernels,
// experiments, and tools compile through.
package compiler

import (
	"encoding/binary"
	"math"

	"bioperfload/internal/codegen"
	"bioperfload/internal/ir"
	"bioperfload/internal/isa"
	"bioperfload/internal/minic"
)

// Options selects the optimization level and the register budget of
// the target machine.
type Options struct {
	// Opt is the pass configuration; use ir.O2() for the paper's
	// "-O3" baseline and ir.O0() for unoptimized code.
	Opt ir.OptOptions
	// AllocIntRegs/AllocFPRegs cap the register allocator (0 =
	// full pool). The Pentium 4 platform compiles with 8/8.
	AllocIntRegs int
	AllocFPRegs  int
}

// Default returns the standard optimizing configuration.
func Default() Options { return Options{Opt: ir.O2()} }

// Compile builds a MiniC source file into an executable program.
func Compile(name, src string, opts Options) (*isa.Program, error) {
	file, err := minic.Parse(name, src)
	if err != nil {
		return nil, err
	}
	info, err := minic.Check(file)
	if err != nil {
		return nil, err
	}

	// Data-segment layout, in declaration order.
	layout := make(map[string]ir.GlobalLayout, len(file.Globals))
	var syms []isa.Symbol
	var inits []isa.DataInit
	addr := uint64(isa.DataBase)
	for i, g := range file.Globals {
		addr = (addr + 7) &^ 7
		size := uint64(g.Ty.Base.ElemSize())
		if g.Ty.IsArray {
			size = uint64(g.Ty.ArrayN) * uint64(g.Ty.Base.ElemSize())
		}
		layout[g.Name] = ir.GlobalLayout{Addr: addr, Index: int32(i), Ty: g.Ty}
		syms = append(syms, isa.Symbol{
			Name: g.Name, Addr: addr, Size: size,
			Elem: g.Ty.Base.ElemSize(), IsFP: g.Ty.Base == minic.TypeDouble,
		})
		if g.HasInit {
			var buf []byte
			switch {
			case g.Ty.Base == minic.TypeDouble:
				buf = make([]byte, 8)
				binary.LittleEndian.PutUint64(buf, math.Float64bits(g.InitFloat))
			case g.Ty.Base == minic.TypeChar:
				buf = []byte{byte(g.InitInt)}
			default:
				buf = make([]byte, 8)
				binary.LittleEndian.PutUint64(buf, uint64(g.InitInt))
			}
			inits = append(inits, isa.DataInit{Addr: addr, Bytes: buf})
		}
		addr += size
	}

	irp, err := ir.Lower(file, info, layout)
	if err != nil {
		return nil, err
	}
	passes := opts.Opt
	if opts.AllocIntRegs > 0 && opts.AllocIntRegs <= 12 {
		// Register-starved target (the Pentium 4's 8 logical
		// registers): speculative code motion would only add spill
		// traffic, so disable the global hoist and tighten the
		// scheduler's pressure budget — the same throttling real
		// compilers apply.
		passes.GlobalHoist = false
		passes.PressureLimit = opts.AllocIntRegs - 2
		if passes.PressureLimit < 4 {
			passes.PressureLimit = 4
		}
	}
	for _, f := range irp.Funcs {
		ir.Optimize(f, passes)
		if err := f.Validate(); err != nil {
			return nil, err
		}
	}
	prog, err := codegen.Generate(irp, syms, inits, addr, codegen.Options{
		AllocIntRegs: opts.AllocIntRegs,
		AllocFPRegs:  opts.AllocFPRegs,
	})
	if err != nil {
		return nil, err
	}
	prog.Name = name
	return prog, nil
}

// MustCompile is Compile, panicking on error. For registering
// built-in kernels whose sources are compile-time constants.
func MustCompile(name, src string, opts Options) *isa.Program {
	p, err := Compile(name, src, opts)
	if err != nil {
		panic(err)
	}
	return p
}
