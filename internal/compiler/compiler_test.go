package compiler

import (
	"fmt"
	"math"
	"testing"

	"bioperfload/internal/ir"
	"bioperfload/internal/sim"
)

// runSrc compiles and runs a program, returning its printed output.
func runSrc(t *testing.T, src string, opts Options) ([]int64, []float64) {
	t.Helper()
	prog, err := Compile("test.mc", src, opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	m, err := sim.New(prog)
	if err != nil {
		t.Fatal(err)
	}
	m.Fuel = 200_000_000
	res, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res.IntOutput, res.FPOutput
}

// allConfigs runs a program under every interesting compiler
// configuration and requires identical output — the core correctness
// property: optimization and register pressure never change results.
func allConfigs(t *testing.T, src string, wantInt []int64, wantFP []float64) {
	t.Helper()
	configs := []struct {
		name string
		opts Options
	}{
		{"O0", Options{Opt: ir.O0()}},
		{"O2", Options{Opt: ir.O2()}},
		{"O2-fold-only", Options{Opt: ir.OptOptions{Fold: true, DCE: true}}},
		{"O2-sched-only", Options{Opt: ir.OptOptions{Schedule: true}}},
		{"O2-ifconv-only", Options{Opt: ir.OptOptions{IfConvert: true, MaxIfConvert: 4}}},
		{"O2-8regs", Options{Opt: ir.O2(), AllocIntRegs: 8, AllocFPRegs: 8}},
		{"O0-8regs", Options{Opt: ir.O0(), AllocIntRegs: 8, AllocFPRegs: 8}},
		{"O2-4regs", Options{Opt: ir.O2(), AllocIntRegs: 4, AllocFPRegs: 4}},
	}
	for _, cfg := range configs {
		gotInt, gotFP := runSrc(t, src, cfg.opts)
		if fmt.Sprint(gotInt) != fmt.Sprint(wantInt) {
			t.Errorf("%s: int output = %v, want %v", cfg.name, gotInt, wantInt)
		}
		if len(wantFP) != len(gotFP) {
			t.Errorf("%s: fp output = %v, want %v", cfg.name, gotFP, wantFP)
			continue
		}
		for i := range wantFP {
			if math.Abs(gotFP[i]-wantFP[i]) > 1e-9*(1+math.Abs(wantFP[i])) {
				t.Errorf("%s: fp[%d] = %v, want %v", cfg.name, i, gotFP[i], wantFP[i])
			}
		}
	}
}

func TestArithmetic(t *testing.T) {
	allConfigs(t, `
int main() {
	print(2 + 3 * 4);
	print((2 + 3) * 4);
	print(17 / 5);
	print(17 % 5);
	print(-17 / 5);
	print(1 << 10);
	print(-64 >> 3);
	print(12 & 10);
	print(12 | 10);
	print(12 ^ 10);
	print(~0);
	print(-(5));
	return 0;
}`, []int64{14, 20, 3, 2, -3, 1024, -8, 8, 14, 6, -1, -5}, nil)
}

func TestComparisons(t *testing.T) {
	allConfigs(t, `
int main() {
	int a = 5; int b = 7;
	print(a == b); print(a != b);
	print(a < b); print(a <= b);
	print(a > b); print(a >= b);
	print(b > a); print(a == 5);
	return 0;
}`, []int64{0, 1, 1, 1, 0, 0, 1, 1}, nil)
}

func TestControlFlow(t *testing.T) {
	allConfigs(t, `
int main() {
	int i; int s = 0;
	for (i = 0; i < 10; i++) {
		if (i % 2 == 0) continue;
		if (i == 9) break;
		s += i;
	}
	print(s);
	int n = 0;
	while (n < 5) n++;
	print(n);
	if (s > 100) print(111); else print(222);
	return 0;
}`, []int64{1 + 3 + 5 + 7, 5, 222}, nil)
}

func TestShortCircuit(t *testing.T) {
	allConfigs(t, `
int trace[8];
int calls = 0;
int probe(int idx, int val) { trace[idx] = 1; calls++; return val; }
int main() {
	int r1 = probe(0, 0) && probe(1, 1);
	int r2 = probe(2, 1) || probe(3, 1);
	int r3 = probe(4, 1) && probe(5, 7);
	print(r1); print(r2); print(r3);
	print(calls);
	print(trace[1]); print(trace[3]);
	return 0;
}`, []int64{0, 1, 1, 4, 0, 0}, nil)
}

func TestTernary(t *testing.T) {
	allConfigs(t, `
int main() {
	int a = 3; int b = 9;
	print(a > b ? a : b);
	print(a < b ? a : b);
	print(1 ? 2 : 3 ? 4 : 5);
	double d = a > b ? 1.5 : 2.5;
	print(d);
	return 0;
}`, []int64{9, 3, 2}, []float64{2.5})
}

func TestArraysAndChars(t *testing.T) {
	allConfigs(t, `
int nums[16];
char text[16];
int main() {
	int i;
	for (i = 0; i < 16; i++) {
		nums[i] = i * i;
		text[i] = 'a' + i;
	}
	print(nums[0] + nums[3] + nums[15]);
	print(text[0]);
	print(text[15]);
	text[2] = 300; /* truncates to byte */
	print(text[2]);
	nums[4] += 10;
	print(nums[4]);
	nums[5]++;
	print(nums[5]);
	return 0;
}`, []int64{0 + 9 + 225, 'a', 'a' + 15, 300 & 0xFF, 26, 26}, nil)
}

func TestLocalArrays(t *testing.T) {
	allConfigs(t, `
int main() {
	int buf[8];
	char small[4];
	int i;
	for (i = 0; i < 8; i++) buf[i] = i + 1;
	small[0] = 'x';
	int s = 0;
	for (i = 0; i < 8; i++) s += buf[i];
	print(s);
	print(small[0]);
	return 0;
}`, []int64{36, 'x'}, nil)
}

func TestPointerParams(t *testing.T) {
	allConfigs(t, `
int a[8];
int b[8];
void fill(int *p, int n, int base) {
	int i;
	for (i = 0; i < n; i++) p[i] = base + i;
}
int total(int p[], int n) {
	int s = 0; int i;
	for (i = 0; i < n; i++) s += p[i];
	return s;
}
int main() {
	fill(a, 8, 10);
	fill(b, 8, 100);
	print(total(a, 8));
	print(total(b, 8));
	int local[4];
	fill(local, 4, 1);
	print(total(local, 4));
	return 0;
}`, []int64{10*8 + 28, 100*8 + 28, 10}, nil)
}

func TestRecursion(t *testing.T) {
	allConfigs(t, `
int fib(int n) {
	if (n < 2) return n;
	return fib(n - 1) + fib(n - 2);
}
int fact(int n) {
	if (n <= 1) return 1;
	return n * fact(n - 1);
}
int main() {
	print(fib(15));
	print(fact(10));
	return 0;
}`, []int64{610, 3628800}, nil)
}

func TestManyArgsOverflowToStack(t *testing.T) {
	allConfigs(t, `
int sum9(int a, int b, int c, int d, int e, int f, int g, int h, int i) {
	return a + 2*b + 3*c + 4*d + 5*e + 6*f + 7*g + 8*h + 9*i;
}
int deep(int a, int b, int c, int d, int e, int f, int g, int h) {
	return sum9(a, b, c, d, e, f, g, h, a + h);
}
int main() {
	print(sum9(1, 2, 3, 4, 5, 6, 7, 8, 9));
	print(deep(1, 1, 1, 1, 1, 1, 1, 1));
	return 0;
}`, []int64{285, 1 + 2 + 3 + 4 + 5 + 6 + 7 + 8 + 9*2}, nil)
}

func TestDoubleArithmetic(t *testing.T) {
	allConfigs(t, `
double gd = 2.5;
double arr[4];
double half(double x) { return x / 2.0; }
int main() {
	double a = 1.5;
	double b = a * gd;     /* 3.75 */
	arr[0] = b + 0.25;     /* 4.0 */
	arr[1] = -arr[0];
	print(b);
	print(arr[0]);
	print(arr[1]);
	print(half(arr[0]));
	print(a < b);
	print(a > b);
	int i = (int)(b + 0.5);
	print(i);
	double c = (double)7 / 2;
	print(c);
	return 0;
}`, []int64{1, 0, 4}, []float64{3.75, 4.0, -4.0, 2.0, 3.5})
}

func TestMixedIntDouble(t *testing.T) {
	allConfigs(t, `
int main() {
	double d = 3;
	int i = 2;
	d += i;        /* 5.0 */
	print(d);
	d = i * 1.5 + 1;
	print(d);
	i = (int)d;    /* 4 */
	print(i);
	if (d >= i) print(1); else print(0);
	if (d > i) print(1); else print(0);
	return 0;
}`, []int64{4, 1, 0}, []float64{5.0, 4.0})
}

func TestGlobalScalars(t *testing.T) {
	allConfigs(t, `
int counter = 5;
double rate = 0.5;
char flag = 'y';
int bump() { counter++; return counter; }
int main() {
	print(counter);
	print(bump());
	print(bump());
	counter += 10;
	print(counter);
	print(flag);
	print(rate * 4.0);
	return 0;
}`, []int64{5, 6, 7, 17, 'y'}, []float64{2.0})
}

func TestIncDecSemantics(t *testing.T) {
	allConfigs(t, `
int a[4];
int main() {
	int i = 0;
	a[i++] = 7;     /* a[0] = 7, i = 1 */
	print(i); print(a[0]);
	print(i++);     /* prints 1, i = 2 */
	print(i);
	print(++i);     /* prints 3 */
	print(i--);     /* prints 3, i = 2 */
	print(--i);     /* prints 1 */
	a[1] = 5;
	a[1]--;
	++a[1];
	print(a[1]);
	return 0;
}`, []int64{1, 7, 1, 2, 3, 3, 1, 5}, nil)
}

func TestHmmsearchStyleLoop(t *testing.T) {
	// The exact shape of the paper's Figure 6(a) hot loop: short IFs
	// whose conditions load from arrays and whose bodies store.
	src := `
int mpp[64]; int tpmm[64]; int ip[64]; int tpim[64];
int dpp[64]; int tpdm[64]; int bp[64]; int ms[64];
int mc[64]; int dc[64]; int ic[64];
int tpdd[64]; int tpmd[64]; int tpmi[64]; int tpii[64]; int is[64];

int viterbi_row(int *mppv, int *tpmmv, int *ipv, int *tpimv, int *dppv,
                int *tpdmv, int *bpv, int *msv, int *mcv, int *dcv,
                int *icv, int *tpddv, int *tpmdv, int *tpmiv,
                int *tpiiv, int *isv, int xmb, int M) {
	int k; int sc;
	for (k = 1; k <= M; k++) {
		mcv[k] = mppv[k-1] + tpmmv[k-1];
		if ((sc = ipv[k-1] + tpimv[k-1]) > mcv[k]) mcv[k] = sc;
		if ((sc = dppv[k-1] + tpdmv[k-1]) > mcv[k]) mcv[k] = sc;
		if ((sc = xmb + bpv[k]) > mcv[k]) mcv[k] = sc;
		mcv[k] += msv[k];
		if (mcv[k] < -987654321) mcv[k] = -987654321;

		dcv[k] = dcv[k-1] + tpddv[k-1];
		if ((sc = mcv[k-1] + tpmdv[k-1]) > dcv[k]) dcv[k] = sc;
		if (dcv[k] < -987654321) dcv[k] = -987654321;

		if (k < M) {
			icv[k] = mppv[k] + tpmiv[k];
			if ((sc = ipv[k] + tpiiv[k]) > icv[k]) icv[k] = sc;
			icv[k] += isv[k];
			if (icv[k] < -987654321) icv[k] = -987654321;
		}
	}
	return mcv[M];
}

int main() {
	int i;
	for (i = 0; i < 64; i++) {
		mpp[i] = i * 3 - 20; tpmm[i] = 7 - i; ip[i] = i * 2;
		tpim[i] = -i; dpp[i] = 5 - i * 2; tpdm[i] = i;
		bp[i] = i % 7; ms[i] = i % 5 - 2; dc[i] = 0;
		tpdd[i] = -2; tpmd[i] = 1; tpmi[i] = i % 3; tpii[i] = -1;
		is[i] = 2 - i % 4;
	}
	print(viterbi_row(mpp, tpmm, ip, tpim, dpp, tpdm, bp, ms, mc, dc,
	                  ic, tpdd, tpmd, tpmi, tpii, is, 4, 63));
	int s = 0;
	for (i = 1; i <= 63; i++) s += mc[i] + dc[i] + ic[i];
	print(s);
	return 0;
}`
	// Compute the expected values with the reference in Go.
	mpp := make([]int64, 64)
	tpmm := make([]int64, 64)
	ip := make([]int64, 64)
	tpim := make([]int64, 64)
	dpp := make([]int64, 64)
	tpdm := make([]int64, 64)
	bp := make([]int64, 64)
	ms := make([]int64, 64)
	mc := make([]int64, 64)
	dc := make([]int64, 64)
	ic := make([]int64, 64)
	tpdd := make([]int64, 64)
	tpmd := make([]int64, 64)
	tpmi := make([]int64, 64)
	tpii := make([]int64, 64)
	isv := make([]int64, 64)
	for i := int64(0); i < 64; i++ {
		mpp[i] = i*3 - 20
		tpmm[i] = 7 - i
		ip[i] = i * 2
		tpim[i] = -i
		dpp[i] = 5 - i*2
		tpdm[i] = i
		bp[i] = i % 7
		ms[i] = i%5 - 2
		tpdd[i] = -2
		tpmd[i] = 1
		tpmi[i] = i % 3
		tpii[i] = -1
		isv[i] = 2 - i%4
	}
	const inf = int64(-987654321)
	const M, xmb = int64(63), int64(4)
	for k := int64(1); k <= M; k++ {
		mc[k] = mpp[k-1] + tpmm[k-1]
		if sc := ip[k-1] + tpim[k-1]; sc > mc[k] {
			mc[k] = sc
		}
		if sc := dpp[k-1] + tpdm[k-1]; sc > mc[k] {
			mc[k] = sc
		}
		if sc := xmb + bp[k]; sc > mc[k] {
			mc[k] = sc
		}
		mc[k] += ms[k]
		if mc[k] < inf {
			mc[k] = inf
		}
		dc[k] = dc[k-1] + tpdd[k-1]
		if sc := mc[k-1] + tpmd[k-1]; sc > dc[k] {
			dc[k] = sc
		}
		if dc[k] < inf {
			dc[k] = inf
		}
		if k < M {
			ic[k] = mpp[k] + tpmi[k]
			if sc := ip[k] + tpii[k]; sc > ic[k] {
				ic[k] = sc
			}
			ic[k] += isv[k]
			if ic[k] < inf {
				ic[k] = inf
			}
		}
	}
	var s int64
	for i := 1; i <= 63; i++ {
		s += mc[i] + dc[i] + ic[i]
	}
	allConfigs(t, src, []int64{mc[M], s}, nil)
}

func TestAliasingThroughPointers(t *testing.T) {
	// Passing the SAME array through two pointer parameters: the
	// scheduler must not reorder the store through one against the
	// load through the other.
	allConfigs(t, `
int data[8];
int overlap(int *p, int *q, int n) {
	int i; int s = 0;
	for (i = 0; i < n; i++) {
		p[i] = i + 1;
		s += q[i];  /* q == p: must observe the store */
	}
	return s;
}
int main() {
	print(overlap(data, data, 8));
	return 0;
}`, []int64{36}, nil)
}

func TestCompileErrorsPropagate(t *testing.T) {
	if _, err := Compile("x.mc", "int main() { returnx; }", Default()); err == nil {
		t.Error("parse error not propagated")
	}
	if _, err := Compile("x.mc", "int main() { return y; }", Default()); err == nil {
		t.Error("check error not propagated")
	}
	if _, err := Compile("x.mc", "int f() { return 0; }", Default()); err == nil {
		t.Error("missing main not caught")
	}
}

func TestNestedLoopsMatrix(t *testing.T) {
	allConfigs(t, `
int a[64];
int b[64];
int c[64];
int main() {
	int i; int j; int k;
	for (i = 0; i < 8; i++)
		for (j = 0; j < 8; j++) {
			a[i*8+j] = i + j;
			b[i*8+j] = i - j;
		}
	for (i = 0; i < 8; i++)
		for (j = 0; j < 8; j++) {
			int s = 0;
			for (k = 0; k < 8; k++)
				s += a[i*8+k] * b[k*8+j];
			c[i*8+j] = s;
		}
	print(c[0]); print(c[9]); print(c[63]);
	return 0;
}`, []int64{matref(0, 0), matref(1, 1), matref(7, 7)}, nil)
}

func matref(i, j int64) int64 {
	var s int64
	for k := int64(0); k < 8; k++ {
		s += (i + k) * (k - j)
	}
	return s
}

func TestDeadCodeEliminated(t *testing.T) {
	srcDead := `
int main() {
	int unused1 = 3 * 7;
	int unused2 = unused1 + 4;
	int live = 5;
	print(live);
	return 0;
}`
	p2, err := Compile("d.mc", srcDead, Default())
	if err != nil {
		t.Fatal(err)
	}
	p0, err := Compile("d.mc", srcDead, Options{Opt: ir.O0()})
	if err != nil {
		t.Fatal(err)
	}
	if len(p2.Insts) >= len(p0.Insts) {
		t.Errorf("O2 (%d insts) not smaller than O0 (%d insts)", len(p2.Insts), len(p0.Insts))
	}
}

func TestLineTables(t *testing.T) {
	src := `int g[4];
int main() {
	g[0] = 1;
	g[1] = g[0] + 2;
	print(g[1]);
	return 0;
}`
	p, err := Compile("lines.mc", src, Default())
	if err != nil {
		t.Fatal(err)
	}
	// Every load/store must carry a plausible source line.
	for _, in := range p.Insts {
		if in.Pos.Line < 0 || in.Pos.Line > 6 {
			t.Fatalf("instruction %s has line %d", in, in.Pos.Line)
		}
	}
	if len(p.Funcs) != 1 || p.Funcs[0].Name != "main" {
		t.Errorf("func table: %+v", p.Funcs)
	}
	if _, ok := p.Symbol("g"); !ok {
		t.Error("symbol g missing")
	}
}

func BenchmarkCompileViterbiLoop(b *testing.B) {
	src := `
int a[64]; int bb[64]; int c[64];
int main() {
	int i;
	for (i = 0; i < 64; i++) { a[i] = i; bb[i] = 64 - i; }
	int s = 0;
	for (i = 0; i < 64; i++) {
		c[i] = a[i] + bb[i];
		if (c[i] > s) s = c[i];
	}
	print(s);
	return 0;
}`
	for i := 0; i < b.N; i++ {
		if _, err := Compile("bench.mc", src, Default()); err != nil {
			b.Fatal(err)
		}
	}
}
