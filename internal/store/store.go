// Package store is a content-addressed on-disk artifact cache: the
// durable layer under runner.Session that lets compiled programs and
// recorded traces outlive the process. Artifacts are looked up by a
// caller-chosen key (runner derives it from the program fingerprint,
// workload size, and trace format version) and stored as
// objects/<hh>/<sha256> blobs, so identical content is stored once no
// matter how many keys point at it. Writes land in a temp file and
// rename into place atomically; an index file maps keys to objects
// with sizes, checksums, and LRU clocks; corrupted or truncated
// artifacts are detected on read and evicted; and a configurable byte
// cap is enforced by least-recently-used eviction.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// indexName is the key→object map persisted in the store root.
const indexName = "index.json"

// entry is one key's record in the index.
type entry struct {
	// Hash is the hex sha256 of the object's content.
	Hash string `json:"hash"`
	// Size is the object's byte length.
	Size int64 `json:"size"`
	// CRC is the content's CRC32 (IEEE), verified on whole-artifact
	// reads. Streaming artifacts (traces) carry their own per-chunk
	// CRCs, so OpenReader skips this.
	CRC uint32 `json:"crc"`
	// Clock is the logical LRU timestamp of the last access.
	Clock uint64 `json:"clock"`
}

type indexFile struct {
	Version int              `json:"version"`
	Clock   uint64           `json:"clock"`
	Entries map[string]entry `json:"entries"`
}

// Stats is a snapshot of the store's counters. Hits/Misses/Evictions
// count since Open; Entries/BytesOnDisk describe current contents.
type Stats struct {
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Evictions   uint64 `json:"evictions"`
	Entries     int    `json:"entries"`
	BytesOnDisk int64  `json:"bytes_on_disk"`
}

// Store is the artifact cache. All methods are safe for concurrent
// use.
type Store struct {
	dir      string
	maxBytes int64

	mu        sync.Mutex
	entries   map[string]entry
	clock     uint64
	bytes     int64
	hits      uint64
	misses    uint64
	evictions uint64
}

// Open opens (creating if needed) a store rooted at dir. maxBytes
// caps the total object bytes on disk; <= 0 means unlimited. A
// pre-existing index is loaded and reconciled against the objects
// actually present: entries whose objects vanished are dropped, and
// orphaned objects are removed.
func Open(dir string, maxBytes int64) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
		return nil, fmt.Errorf("store: create %s: %w", dir, err)
	}
	s := &Store{dir: dir, maxBytes: maxBytes, entries: make(map[string]entry)}
	if err := s.loadIndex(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.evictLocked("")
	return s, nil
}

func (s *Store) loadIndex() error {
	data, err := os.ReadFile(filepath.Join(s.dir, indexName))
	if os.IsNotExist(err) {
		return s.sweepOrphans()
	}
	if err != nil {
		return fmt.Errorf("store: read index: %w", err)
	}
	var idx indexFile
	if err := json.Unmarshal(data, &idx); err != nil {
		// A torn index is recoverable: drop it (objects without index
		// entries are swept as orphans) rather than failing to open.
		idx = indexFile{}
	}
	s.clock = idx.Clock
	for key, e := range idx.Entries {
		fi, err := os.Stat(s.objectPath(e.Hash))
		if err != nil || fi.Size() != e.Size {
			continue // object vanished or was truncated
		}
		s.entries[key] = e
		s.bytes += e.Size
	}
	return s.sweepOrphans()
}

// sweepOrphans removes object files no index entry references.
func (s *Store) sweepOrphans() error {
	live := make(map[string]bool, len(s.entries))
	for _, e := range s.entries {
		live[e.Hash] = true
	}
	root := filepath.Join(s.dir, "objects")
	dirs, err := os.ReadDir(root)
	if err != nil {
		return fmt.Errorf("store: scan objects: %w", err)
	}
	for _, d := range dirs {
		if !d.IsDir() {
			continue
		}
		files, err := os.ReadDir(filepath.Join(root, d.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			if !live[f.Name()] {
				os.Remove(filepath.Join(root, d.Name(), f.Name()))
			}
		}
	}
	return nil
}

func (s *Store) objectPath(hash string) string {
	return filepath.Join(s.dir, "objects", hash[:2], hash)
}

// persistIndexLocked writes the index atomically (temp + rename).
func (s *Store) persistIndexLocked() error {
	idx := indexFile{Version: 1, Clock: s.clock, Entries: s.entries}
	data, err := json.Marshal(&idx)
	if err != nil {
		return fmt.Errorf("store: encode index: %w", err)
	}
	tmp, err := os.CreateTemp(s.dir, ".index-*")
	if err != nil {
		return fmt.Errorf("store: index temp: %w", err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("store: write index: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("store: close index: %w", err)
	}
	if err := os.Rename(name, filepath.Join(s.dir, indexName)); err != nil {
		os.Remove(name)
		return fmt.Errorf("store: install index: %w", err)
	}
	return nil
}

// evictLocked removes least-recently-used entries until the store fits
// its byte cap. pin names a key that is never evicted here — the entry
// the caller just committed — so storing a single object larger than
// the cap keeps that object (everything else is evicted and the store
// temporarily exceeds its cap) instead of silently dropping what the
// caller was just told persisted.
func (s *Store) evictLocked(pin string) {
	if s.maxBytes <= 0 || s.bytes <= s.maxBytes {
		return
	}
	type kv struct {
		key string
		e   entry
	}
	all := make([]kv, 0, len(s.entries))
	for k, e := range s.entries {
		all = append(all, kv{k, e})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].e.Clock < all[j].e.Clock })
	for _, x := range all {
		if s.bytes <= s.maxBytes {
			break
		}
		if x.key == pin {
			continue
		}
		s.removeLocked(x.key)
		s.evictions++
	}
}

// removeLocked drops a key and, if no other key shares its object,
// the object file.
func (s *Store) removeLocked(key string) {
	e, ok := s.entries[key]
	if !ok {
		return
	}
	delete(s.entries, key)
	s.bytes -= e.Size
	for _, other := range s.entries {
		if other.Hash == e.Hash {
			return // object still referenced
		}
	}
	os.Remove(s.objectPath(e.Hash))
}

// touchLocked bumps a key's LRU clock.
func (s *Store) touchLocked(key string) {
	e := s.entries[key]
	s.clock++
	e.Clock = s.clock
	s.entries[key] = e
}

// GetBytes returns the artifact stored under key, verifying its
// checksum. A missing key, unreadable object, or checksum mismatch is
// a miss (corrupt entries are evicted), so callers always regenerate
// on false.
func (s *Store) GetBytes(key string) ([]byte, bool) {
	s.mu.Lock()
	e, ok := s.entries[key]
	if !ok {
		s.misses++
		s.mu.Unlock()
		return nil, false
	}
	path := s.objectPath(e.Hash)
	s.mu.Unlock()

	data, err := os.ReadFile(path)
	if err != nil || int64(len(data)) != e.Size || crc32.ChecksumIEEE(data) != e.CRC {
		s.mu.Lock()
		s.misses++
		if cur, ok := s.entries[key]; ok && cur.Hash == e.Hash {
			s.removeLocked(key)
			s.persistIndexLocked()
		}
		s.mu.Unlock()
		return nil, false
	}
	s.mu.Lock()
	s.hits++
	s.touchLocked(key)
	s.mu.Unlock()
	return data, true
}

// OpenReader opens the artifact under key for streaming without
// whole-content verification — intended for self-validating formats
// (traces CRC every chunk). The size returned is the indexed object
// size.
func (s *Store) OpenReader(key string) (io.ReadCloser, int64, bool) {
	s.mu.Lock()
	e, ok := s.entries[key]
	if !ok {
		s.misses++
		s.mu.Unlock()
		return nil, 0, false
	}
	path := s.objectPath(e.Hash)
	s.mu.Unlock()

	f, err := os.Open(path)
	if err != nil {
		s.mu.Lock()
		s.misses++
		if cur, ok := s.entries[key]; ok && cur.Hash == e.Hash {
			s.removeLocked(key)
			s.persistIndexLocked()
		}
		s.mu.Unlock()
		return nil, 0, false
	}
	s.mu.Lock()
	s.hits++
	s.touchLocked(key)
	s.mu.Unlock()
	return f, e.Size, true
}

// ObjectInfo describes one stored artifact for wire serving: the
// content hash that addresses it, its byte length, and the CRC32 the
// store verified it against. Peers re-verify received bodies against
// all three.
type ObjectInfo struct {
	Hash string
	Size int64
	CRC  uint32
}

// Lookup returns the object metadata for key without reading the
// content. Unlike GetBytes it does not bump the LRU clock — peers
// probing for artifacts should not keep them artificially hot.
func (s *Store) Lookup(key string) (ObjectInfo, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok {
		return ObjectInfo{}, false
	}
	return ObjectInfo{Hash: e.Hash, Size: e.Size, CRC: e.CRC}, true
}

// OpenObject opens the object with the given content hash for
// streaming (the peer-serving wire path: the HTTP handler copies the
// file straight to the response). Any key referencing the hash
// supplies the metadata; a hash no entry references is a miss.
func (s *Store) OpenObject(hash string) (io.ReadCloser, ObjectInfo, bool) {
	s.mu.Lock()
	var info ObjectInfo
	found := false
	for _, e := range s.entries {
		if e.Hash == hash {
			info = ObjectInfo{Hash: e.Hash, Size: e.Size, CRC: e.CRC}
			found = true
			break
		}
	}
	s.mu.Unlock()
	if !found {
		return nil, ObjectInfo{}, false
	}
	f, err := os.Open(s.objectPath(hash))
	if err != nil {
		return nil, ObjectInfo{}, false
	}
	return f, info, true
}

// PutBytes stores data under key, replacing any previous artifact.
func (s *Store) PutBytes(key string, data []byte) error {
	w, err := s.Create(key)
	if err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		w.Abort()
		return err
	}
	return w.Commit()
}

// Delete removes key's artifact if present.
func (s *Store) Delete(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.entries[key]; !ok {
		return
	}
	s.removeLocked(key)
	s.persistIndexLocked()
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Hits:        s.hits,
		Misses:      s.misses,
		Evictions:   s.evictions,
		Entries:     len(s.entries),
		BytesOnDisk: s.bytes,
	}
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Close persists the index. The store must not be used afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.persistIndexLocked()
}

// EntryWriter streams one artifact into the store. Content is hashed
// and checksummed as it is written to a temp file; Commit renames it
// into the object tree and updates the index atomically, so readers
// never observe a partial artifact. Either Commit or Abort must be
// called.
type EntryWriter struct {
	s    *Store
	key  string
	f    *os.File
	path string
	h    interface{ Sum([]byte) []byte }
	crc  uint32
	n    int64
	mw   io.Writer
	done bool
}

// Create begins writing an artifact for key.
func (s *Store) Create(key string) (*EntryWriter, error) {
	f, err := os.CreateTemp(s.dir, ".artifact-*")
	if err != nil {
		return nil, fmt.Errorf("store: temp artifact: %w", err)
	}
	h := sha256.New()
	return &EntryWriter{
		s:    s,
		key:  key,
		f:    f,
		path: f.Name(),
		h:    h,
		mw:   io.MultiWriter(f, h),
	}, nil
}

// Write implements io.Writer.
func (w *EntryWriter) Write(p []byte) (int, error) {
	n, err := w.mw.Write(p)
	w.crc = crc32.Update(w.crc, crc32.IEEETable, p[:n])
	w.n += int64(n)
	return n, err
}

// Abort discards the pending artifact.
func (w *EntryWriter) Abort() {
	if w.done {
		return
	}
	w.done = true
	w.f.Close()
	os.Remove(w.path)
}

// Commit finalizes the artifact: fsyncs and renames the object into
// place, records the index entry, and enforces the byte cap.
func (w *EntryWriter) Commit() error {
	if w.done {
		return fmt.Errorf("store: commit after close")
	}
	w.done = true
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		os.Remove(w.path)
		return fmt.Errorf("store: sync artifact: %w", err)
	}
	if err := w.f.Close(); err != nil {
		os.Remove(w.path)
		return fmt.Errorf("store: close artifact: %w", err)
	}
	hash := hex.EncodeToString(w.h.Sum(nil))
	obj := w.s.objectPath(hash)
	if err := os.MkdirAll(filepath.Dir(obj), 0o755); err != nil {
		os.Remove(w.path)
		return fmt.Errorf("store: object dir: %w", err)
	}
	if err := os.Rename(w.path, obj); err != nil {
		os.Remove(w.path)
		return fmt.Errorf("store: install object: %w", err)
	}

	s := w.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.entries[w.key]; ok {
		if old.Hash == hash {
			// Same content re-stored: just refresh the clock.
			s.touchLocked(w.key)
			return s.persistIndexLocked()
		}
		s.removeLocked(w.key)
	}
	s.clock++
	s.entries[w.key] = entry{Hash: hash, Size: w.n, CRC: w.crc, Clock: s.clock}
	s.bytes += w.n
	s.evictLocked(w.key)
	return s.persistIndexLocked()
}
