package store

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func open(t *testing.T, dir string, max int64) *Store {
	t.Helper()
	s, err := Open(dir, max)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := open(t, t.TempDir(), 0)
	data := []byte("compiled program artifact")
	if err := s.PutBytes("prog|abc", data); err != nil {
		t.Fatal(err)
	}
	got, ok := s.GetBytes("prog|abc")
	if !ok || !bytes.Equal(got, data) {
		t.Fatalf("GetBytes = %q, %v", got, ok)
	}
	if _, ok := s.GetBytes("prog|other"); ok {
		t.Fatal("missing key reported present")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.BytesOnDisk != int64(len(data)) {
		t.Fatalf("stats %+v", st)
	}
}

func TestPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, 0)
	if err := s.PutBytes("k1", []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := s.PutBytes("k2", []byte("two")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := open(t, dir, 0)
	got, ok := s2.GetBytes("k1")
	if !ok || string(got) != "one" {
		t.Fatalf("k1 after reopen = %q, %v", got, ok)
	}
	if st := s2.Stats(); st.Entries != 2 {
		t.Fatalf("stats after reopen %+v", st)
	}
}

func TestStreamingWriterAndReader(t *testing.T) {
	s := open(t, t.TempDir(), 0)
	w, err := s.Create("trace|x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("hello ")); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("chunks")); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	r, size, ok := s.OpenReader("trace|x")
	if !ok {
		t.Fatal("OpenReader miss after commit")
	}
	defer r.Close()
	if size != int64(len("hello chunks")) {
		t.Fatalf("size %d", size)
	}
	data, err := io.ReadAll(r)
	if err != nil || string(data) != "hello chunks" {
		t.Fatalf("read %q, %v", data, err)
	}
}

func TestAbortLeavesNothing(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, 0)
	w, err := s.Create("k")
	if err != nil {
		t.Fatal(err)
	}
	w.Write([]byte("partial"))
	w.Abort()
	if _, ok := s.GetBytes("k"); ok {
		t.Fatal("aborted artifact visible")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.Name() != "objects" && e.Name() != indexName {
			t.Fatalf("leftover file %s", e.Name())
		}
	}
}

func TestCorruptionDetectedAndEvicted(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, 0)
	if err := s.PutBytes("k", []byte("pristine content")); err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the object file behind the store's back.
	var objPath string
	filepath.WalkDir(filepath.Join(dir, "objects"), func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() {
			objPath = path
		}
		return nil
	})
	if objPath == "" {
		t.Fatal("object file not found")
	}
	raw, err := os.ReadFile(objPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[0] ^= 0xff
	if err := os.WriteFile(objPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.GetBytes("k"); ok {
		t.Fatal("corrupted artifact returned as a hit")
	}
	if st := s.Stats(); st.Entries != 0 {
		t.Fatalf("corrupted entry not evicted: %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	s := open(t, t.TempDir(), 30)
	pay := func(b byte) []byte { return bytes.Repeat([]byte{b}, 10) }
	for i, k := range []string{"a", "b", "c"} {
		if err := s.PutBytes(k, pay(byte('0'+i))); err != nil {
			t.Fatal(err)
		}
	}
	// Touch "a" so "b" is the least recently used, then overflow.
	if _, ok := s.GetBytes("a"); !ok {
		t.Fatal("a missing")
	}
	if err := s.PutBytes("d", pay('3')); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.GetBytes("b"); ok {
		t.Fatal("LRU entry b survived eviction")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := s.GetBytes(k); !ok {
			t.Fatalf("%s evicted unexpectedly", k)
		}
	}
	st := s.Stats()
	if st.Evictions != 1 || st.BytesOnDisk != 30 {
		t.Fatalf("stats %+v", st)
	}
}

func TestContentDedup(t *testing.T) {
	s := open(t, t.TempDir(), 0)
	data := []byte("shared content")
	if err := s.PutBytes("k1", data); err != nil {
		t.Fatal(err)
	}
	if err := s.PutBytes("k2", data); err != nil {
		t.Fatal(err)
	}
	// Two keys, one object file.
	var objects int
	filepath.WalkDir(filepath.Join(s.Dir(), "objects"), func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() {
			objects++
		}
		return nil
	})
	if objects != 1 {
		t.Fatalf("%d object files for identical content", objects)
	}
	// Deleting one key must keep the shared object alive.
	s.Delete("k1")
	if got, ok := s.GetBytes("k2"); !ok || !bytes.Equal(got, data) {
		t.Fatal("shared object removed with first key")
	}
}

func TestOrphanSweepOnOpen(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, 0)
	if err := s.PutBytes("k", []byte("kept")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	orphan := filepath.Join(dir, "objects", "ff", "ff00")
	os.MkdirAll(filepath.Dir(orphan), 0o755)
	os.WriteFile(orphan, []byte("orphan"), 0o644)

	s2 := open(t, dir, 0)
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatal("orphan object survived reopen")
	}
	if _, ok := s2.GetBytes("k"); !ok {
		t.Fatal("live entry lost during sweep")
	}
}

func TestTornIndexRecovered(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, 0)
	if err := s.PutBytes("k", []byte("x")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := os.WriteFile(filepath.Join(dir, indexName), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := open(t, dir, 0) // must not fail
	if _, ok := s2.GetBytes("k"); ok {
		t.Fatal("entry resurrected from torn index")
	}
}

func TestReplaceKey(t *testing.T) {
	s := open(t, t.TempDir(), 0)
	if err := s.PutBytes("k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := s.PutBytes("k", []byte("value-two")); err != nil {
		t.Fatal(err)
	}
	got, ok := s.GetBytes("k")
	if !ok || string(got) != "value-two" {
		t.Fatalf("after replace: %q, %v", got, ok)
	}
	if st := s.Stats(); st.Entries != 1 || st.BytesOnDisk != int64(len("value-two")) {
		t.Fatalf("stats after replace %+v", st)
	}
}

// TestOversizedObjectPinnedOnCommit: committing an object larger than
// the byte cap must keep THAT object (evicting everything else) rather
// than deleting what the caller was just told persisted. A later
// commit may then evict it normally.
func TestOversizedObjectPinnedOnCommit(t *testing.T) {
	s := open(t, t.TempDir(), 30)
	for _, k := range []string{"a", "b"} {
		if err := s.PutBytes(k, bytes.Repeat([]byte(k), 10)); err != nil {
			t.Fatal(err)
		}
	}
	big := bytes.Repeat([]byte{'X'}, 50) // alone exceeds the 30-byte cap
	if err := s.PutBytes("big", big); err != nil {
		t.Fatal(err)
	}
	got, ok := s.GetBytes("big")
	if !ok || !bytes.Equal(got, big) {
		t.Fatal("just-committed oversized object was evicted")
	}
	for _, k := range []string{"a", "b"} {
		if _, ok := s.GetBytes(k); ok {
			t.Fatalf("%s survived an over-cap commit", k)
		}
	}
	if st := s.Stats(); st.Entries != 1 || st.BytesOnDisk != 50 {
		t.Fatalf("stats after oversized commit %+v", st)
	}
	// The pin lasts only for the commit that created it: the next
	// commit sees "big" as ordinary LRU fodder.
	if err := s.PutBytes("next", bytes.Repeat([]byte{'n'}, 10)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.GetBytes("big"); ok {
		t.Fatal("oversized object survived the following commit")
	}
	if got, ok := s.GetBytes("next"); !ok || len(got) != 10 {
		t.Fatal("latest commit missing after eviction")
	}
}

// TestEvictionExactCapBoundary: filling the store to exactly its cap
// must not evict; one byte more must evict exactly one LRU entry.
func TestEvictionExactCapBoundary(t *testing.T) {
	s := open(t, t.TempDir(), 30)
	for _, k := range []string{"a", "b", "c"} {
		if err := s.PutBytes(k, bytes.Repeat([]byte(k), 10)); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.Evictions != 0 || st.Entries != 3 || st.BytesOnDisk != 30 {
		t.Fatalf("eviction at exactly the cap: %+v", st)
	}
	// One more byte tips it over: the oldest entry goes, and only it.
	if err := s.PutBytes("d", []byte{'d'}); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Evictions != 1 || st.Entries != 3 || st.BytesOnDisk != 21 {
		t.Fatalf("eviction one byte over the cap: %+v", st)
	}
	if _, ok := s.GetBytes("a"); ok {
		t.Fatal("LRU entry a survived")
	}
}

// TestLookupAndOpenObject covers the wire-serving surface: Lookup
// reports metadata without touching LRU state, and OpenObject streams
// the content for any referenced hash.
func TestLookupAndOpenObject(t *testing.T) {
	s := open(t, t.TempDir(), 0)
	data := []byte("snapshot artifact for the wire")
	if err := s.PutBytes("prof|fp|classB", data); err != nil {
		t.Fatal(err)
	}
	info, ok := s.Lookup("prof|fp|classB")
	if !ok || info.Size != int64(len(data)) || info.Hash == "" {
		t.Fatalf("Lookup = %+v, %v", info, ok)
	}
	if _, ok := s.Lookup("prof|missing"); ok {
		t.Fatal("missing key looked up")
	}

	rc, got, ok := s.OpenObject(info.Hash)
	if !ok {
		t.Fatal("OpenObject missed a referenced hash")
	}
	defer rc.Close()
	if got != info {
		t.Fatalf("OpenObject info %+v != Lookup info %+v", got, info)
	}
	body, err := io.ReadAll(rc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, data) {
		t.Fatalf("OpenObject body %q", body)
	}
	if _, _, ok := s.OpenObject("0000000000000000000000000000000000000000000000000000000000000000"); ok {
		t.Fatal("unreferenced hash opened")
	}
	// Neither Lookup nor OpenObject is a Get: hit/miss counters and
	// LRU clocks must be unaffected.
	if st := s.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("wire reads moved cache counters: %+v", st)
	}
}
