package codegen

import (
	"fmt"
	"math"

	"bioperfload/internal/ir"
	"bioperfload/internal/isa"
)

// Options parameterizes code generation.
type Options struct {
	// AllocIntRegs / AllocFPRegs cap how many registers the
	// allocator may use per class (0 = the full pool of 19). The
	// Pentium 4 platform compiles with 8.
	AllocIntRegs int
	AllocFPRegs  int
}

// Physical register conventions (see package isa):
//
//	r0        integer result
//	r1..r15   allocatable (callee-saved)
//	r16..r21  integer/pointer arguments
//	r22..r25  allocatable (callee-saved)
//	r26       return address
//	r27..r29  spill/materialization scratch
//	r30       SP, r31 zero
//
// and symmetrically f0/f1..f15/f16..f21/f22..f25/f27..f28 for floats.
var (
	intPoolFull = []uint8{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 22, 23, 24, 25}
	fpPoolFull  = []uint8{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 22, 23, 24, 25}
)

const (
	scratch0  = 27
	scratch1  = 28
	scratch2  = 29
	fscratch0 = 27
	fscratch1 = 28
)

// Generate lowers an IR program to a VRISC64 executable. syms is the
// already-laid-out global symbol table (data segment addresses were
// assigned before lowering); dataEnd is the first free data address,
// used to place the floating-point constant pool. inits carries
// initialized global data.
func Generate(p *ir.Program, syms []isa.Symbol, inits []isa.DataInit, dataEnd uint64, opts Options) (*isa.Program, error) {
	intPool := intPoolFull
	fpPool := fpPoolFull
	switch {
	case opts.AllocIntRegs > 0 && opts.AllocIntRegs < len(intPool):
		intPool = intPool[:opts.AllocIntRegs]
	case opts.AllocIntRegs > len(intPool):
		// Large-register-file target (Itanium 2): extend the pool
		// with the upper register file r32..r63.
		intPool = append([]uint8(nil), intPool...)
		for r := uint8(32); r < 64 && len(intPool) < opts.AllocIntRegs; r++ {
			intPool = append(intPool, r)
		}
	}
	switch {
	case opts.AllocFPRegs > 0 && opts.AllocFPRegs < len(fpPool):
		fpPool = fpPool[:opts.AllocFPRegs]
	case opts.AllocFPRegs > len(fpPool):
		fpPool = append([]uint8(nil), fpPool...)
		for r := uint8(32); r < 64 && len(fpPool) < opts.AllocFPRegs; r++ {
			fpPool = append(fpPool, r)
		}
	}
	g := &gen{
		irp:     p,
		intPool: intPool,
		fpPool:  fpPool,
		out: &isa.Program{
			Name:    p.Name,
			Files:   []string{p.Name},
			Symbols: append([]isa.Symbol(nil), syms...),
			Init:    append([]isa.DataInit(nil), inits...),
		},
		fpoolIdx: make(map[uint64]int),
		poolBase: (dataEnd + 7) &^ 7,
	}

	// Entry stub: call main, halt.
	mainIdx, ok := p.FuncIndex["main"]
	if !ok {
		return nil, fmt.Errorf("codegen: no main in %s", p.Name)
	}
	g.emit(isa.Inst{Op: isa.OpJsr, Rd: isa.RegRA, Target: -1})
	g.callFixups = append(g.callFixups, fixup{at: 0, fn: mainIdx})
	g.emit(isa.Inst{Op: isa.OpHalt})

	g.funcEntries = make([]int32, len(p.Funcs))
	for i, f := range p.Funcs {
		g.funcEntries[i] = int32(len(g.out.Insts))
		if err := g.genFunc(f, int32(i)); err != nil {
			return nil, err
		}
		g.out.Funcs = append(g.out.Funcs, isa.FuncInfo{
			Name:  f.Name,
			Entry: g.funcEntries[i],
			End:   int32(len(g.out.Insts)),
		})
	}
	for _, fx := range g.callFixups {
		g.out.Insts[fx.at].Target = g.funcEntries[fx.fn]
	}

	// Emit the FP constant pool.
	if len(g.fpool) > 0 {
		buf := make([]byte, len(g.fpool)*8)
		for i, bits := range g.fpool {
			for k := 0; k < 8; k++ {
				buf[i*8+k] = byte(bits >> (8 * k))
			}
		}
		g.out.Symbols = append(g.out.Symbols, isa.Symbol{
			Name: "..fpool", Addr: g.poolBase, Size: uint64(len(buf)), Elem: 8, IsFP: true,
		})
		g.out.Init = append(g.out.Init, isa.DataInit{Addr: g.poolBase, Bytes: buf})
		g.out.DataEnd = g.poolBase + uint64(len(buf))
	} else {
		g.out.DataEnd = g.poolBase
	}

	if err := g.out.Validate(); err != nil {
		return nil, err
	}
	return g.out, nil
}

type fixup struct {
	at int32
	fn int32
}

type gen struct {
	irp         *ir.Program
	out         *isa.Program
	intPool     []uint8
	fpPool      []uint8
	funcEntries []int32
	callFixups  []fixup

	fpool    []uint64 // float64 bit patterns
	fpoolIdx map[uint64]int
	poolBase uint64

	// Per-function state.
	f           *ir.Func
	fnIdx       int32
	as          *Assignment
	constOf     map[ir.Value]int64 // single-def integer constants
	regUses     map[ir.Value]int   // uses requiring a register
	frameSize   int64
	savedInt    []uint8
	savedFP     []uint8
	spillOff    int64 // frame offset of spill slot 0
	slotOff     []int64
	saveOff     int64
	makesCalls  bool
	outArgs     int64
	blockPC     []int32
	brFixups    []brFixup
	scratchN    int
	scratchRegs []uint8
}

type brFixup struct {
	at    int32
	block int32
}

func (g *gen) emit(in isa.Inst) int32 {
	g.out.Insts = append(g.out.Insts, in)
	return int32(len(g.out.Insts) - 1)
}

func (g *gen) emitPos(in isa.Inst, line int32) int32 {
	in.Pos = isa.SrcPos{File: 0, Func: g.fnIdx, Line: line}
	return g.emit(in)
}

func (g *gen) fpoolAddr(v float64) uint64 {
	bits := math.Float64bits(v)
	idx, ok := g.fpoolIdx[bits]
	if !ok {
		idx = len(g.fpool)
		g.fpool = append(g.fpool, bits)
		g.fpoolIdx[bits] = idx
	}
	return g.poolBase + uint64(idx)*8
}

// reachable marks blocks reachable from the entry.
func reachable(f *ir.Func) []bool {
	seen := make([]bool, len(f.Blocks))
	var stack []int32
	stack = append(stack, 0)
	seen[0] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range f.Blocks[b].Succs() {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

func (g *gen) genFunc(f *ir.Func, idx int32) error {
	g.f = f
	g.fnIdx = idx
	g.blockPC = make([]int32, len(f.Blocks))
	g.brFixups = g.brFixups[:0]
	live := reachable(f)

	// Frame layout inputs. Leaf functions may additionally allocate
	// the argument registers and the result register, which a
	// compiler knows are dead across a leaf body — this matters for
	// the Viterbi kernel, whose 18 parameters would otherwise spill.
	g.makesCalls = false
	maxOverflow := 0
	for _, b := range f.Blocks {
		if !live[b.ID] {
			continue
		}
		for i := range b.Instrs {
			if b.Instrs[i].Op == ir.OpCall {
				g.makesCalls = true
				ov := overflowCount(g.irp.Funcs[b.Instrs[i].Sym], b.Instrs[i].Args)
				if ov > maxOverflow {
					maxOverflow = ov
				}
			}
		}
	}
	intPool, fpPool := g.intPool, g.fpPool
	g.as = nil
	g.scratchRegs = []uint8{scratch0, scratch1, scratch2}
	if !g.makesCalls {
		// Respect a restricted register budget (Pentium 4): the
		// budget is the total allocatable count, leaf or not.
		if len(g.fpPool) >= len(fpPoolFull) {
			fpPool = append(append([]uint8(nil), fpPool...), 16, 17, 18, 19, 20, 21, 0)
		}
		if len(g.intPool) >= len(intPoolFull) {
			intPool = append(append([]uint8(nil), intPool...), 16, 17, 18, 19, 20, 21, 0)
			// Optimistic pass: hand two of the scratch registers to
			// the allocator as well. If nothing spills, a single
			// scratch suffices for the remaining materializations
			// (FP constants, CmpNE temporaries); otherwise redo the
			// allocation with the scratches reserved.
			try := allocate(f, append(append([]uint8(nil), intPool...), scratch1, scratch2), fpPool)
			if try.NumSpills == 0 {
				g.as = try
				g.scratchRegs = []uint8{scratch0}
			}
		}
	}
	if g.as == nil {
		g.as = allocate(f, intPool, fpPool)
	}
	g.scanConsts()
	g.outArgs = int64(maxOverflow) * 8
	g.spillOff = g.outArgs
	off := g.spillOff + int64(g.as.NumSpills)*8
	g.slotOff = make([]int64, len(f.Frame))
	for i, s := range f.Frame {
		g.slotOff[i] = off
		off += (s.Size + 7) &^ 7
	}
	g.saveOff = off
	g.savedInt = filterCalleeSaved(g.as.UsedInt)
	g.savedFP = filterCalleeSaved(g.as.UsedFP)
	nSave := len(g.savedInt) + len(g.savedFP)
	if g.makesCalls {
		nSave++ // RA
	}
	off += int64(nSave) * 8
	g.frameSize = (off + 15) &^ 15

	// Prologue.
	line := f.Line
	if g.frameSize > 0 {
		g.emitPos(isa.Inst{Op: isa.OpLda, Rd: isa.RegSP, Ra: isa.RegSP, HasImm: true, Imm: -g.frameSize}, line)
	}
	so := g.saveOff
	if g.makesCalls {
		g.emitPos(isa.Inst{Op: isa.OpStq, Rb: isa.RegRA, Ra: isa.RegSP, HasImm: true, Imm: so}, line)
		so += 8
	}
	for _, r := range g.savedInt {
		g.emitPos(isa.Inst{Op: isa.OpStq, Rb: r, Ra: isa.RegSP, HasImm: true, Imm: so}, line)
		so += 8
	}
	for _, r := range g.savedFP {
		g.emitPos(isa.Inst{Op: isa.OpStt, Rb: r, Ra: isa.RegSP, HasImm: true, Imm: so}, line)
		so += 8
	}

	// Bind incoming parameters to their homes. Homes may themselves
	// be argument registers (leaf functions allocate them), so the
	// register-to-register moves are resolved as a parallel move:
	// each step moves a parameter whose home is not a still-pending
	// source; cycles are broken through a scratch register.
	intIdx, fpIdx, ovIdx := 0, 0, 0
	var moves []paramMove
	for _, pm := range f.Params {
		var srcReg uint8
		inReg := false
		if pm.IsFloat {
			if fpIdx < isa.NumArgs {
				srcReg = uint8(isa.FRegA0 + fpIdx)
				inReg = true
			}
			fpIdx++
		} else {
			if intIdx < isa.NumArgs {
				srcReg = uint8(isa.RegA0 + intIdx)
				inReg = true
			}
			intIdx++
		}
		reg := g.as.Reg[pm.Val]
		slot := g.as.SpillSlot[pm.Val]
		if reg < 0 && slot < 0 {
			if !inReg {
				ovIdx++
			}
			continue // parameter never used
		}
		if inReg {
			if reg >= 0 {
				if uint8(reg) != srcReg {
					moves = append(moves, paramMove{src: srcReg, dst: uint8(reg), isFP: pm.IsFloat})
				}
			} else if pm.IsFloat {
				g.emitPos(isa.Inst{Op: isa.OpStt, Rb: srcReg, Ra: isa.RegSP, HasImm: true, Imm: g.spillAddr(slot)}, line)
			} else {
				g.emitPos(isa.Inst{Op: isa.OpStq, Rb: srcReg, Ra: isa.RegSP, HasImm: true, Imm: g.spillAddr(slot)}, line)
			}
		} else {
			// Overflow argument: load from the caller's outgoing
			// area, which sits just above our frame.
			srcOff := g.frameSize + int64(ovIdx)*8
			ovIdx++
			if pm.IsFloat {
				tgt := uint8(fscratch0)
				if reg >= 0 {
					tgt = uint8(reg)
				}
				g.emitPos(isa.Inst{Op: isa.OpLdt, Rd: tgt, Ra: isa.RegSP, HasImm: true, Imm: srcOff}, line)
				if reg < 0 {
					g.emitPos(isa.Inst{Op: isa.OpStt, Rb: tgt, Ra: isa.RegSP, HasImm: true, Imm: g.spillAddr(slot)}, line)
				}
			} else {
				tgt := uint8(scratch0)
				if reg >= 0 {
					tgt = uint8(reg)
				}
				g.emitPos(isa.Inst{Op: isa.OpLdq, Rd: tgt, Ra: isa.RegSP, HasImm: true, Imm: srcOff}, line)
				if reg < 0 {
					g.emitPos(isa.Inst{Op: isa.OpStq, Rb: tgt, Ra: isa.RegSP, HasImm: true, Imm: g.spillAddr(slot)}, line)
				}
			}
		}
	}

	g.emitParallelMoves(moves, line)

	// Body.
	for _, b := range f.Blocks {
		if !live[b.ID] {
			g.blockPC[b.ID] = -1
			continue
		}
		g.blockPC[b.ID] = int32(len(g.out.Insts))
		for i := range b.Instrs {
			if err := g.genInstr(&b.Instrs[i]); err != nil {
				return err
			}
		}
		if err := g.genTerm(b, live); err != nil {
			return err
		}
	}
	for _, fx := range g.brFixups {
		tgt := g.blockPC[fx.block]
		if tgt < 0 {
			return fmt.Errorf("codegen: %s: branch to unreachable block b%d", f.Name, fx.block)
		}
		g.out.Insts[fx.at].Target = tgt
	}
	return nil
}

func overflowCount(callee *ir.Func, args []ir.Value) int {
	intIdx, fpIdx, ov := 0, 0, 0
	for _, pm := range callee.Params {
		if pm.IsFloat {
			if fpIdx >= isa.NumArgs {
				ov++
			}
			fpIdx++
		} else {
			if intIdx >= isa.NumArgs {
				ov++
			}
			intIdx++
		}
	}
	_ = args
	return ov
}

func (g *gen) spillAddr(slot int32) int64 { return g.spillOff + int64(slot)*8 }

// scanConsts finds integer values defined exactly once by OpConstI
// (their uses can fold into immediate operands) and counts the uses
// of each value that still require a register, so LDIQs whose every
// use folded away can be skipped.
func (g *gen) scanConsts() {
	g.constOf = make(map[ir.Value]int64)
	defs := make(map[ir.Value]int)
	for _, b := range g.f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Dst == ir.NoValue {
				continue
			}
			defs[in.Dst]++
			if in.Op == ir.OpConstI && defs[in.Dst] == 1 {
				g.constOf[in.Dst] = in.Imm
			}
		}
	}
	for v, n := range defs {
		if n > 1 {
			delete(g.constOf, v)
		}
	}

	g.regUses = make(map[ir.Value]int)
	count := func(v ir.Value) {
		if v != ir.NoValue {
			g.regUses[v]++
		}
	}
	var buf []ir.Value
	for _, b := range g.f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if foldableImmOp(in.Op) && in.B != ir.NoValue {
				if c, ok := g.constOf[in.B]; ok && fitsImm(c) {
					count(in.A) // B folds; only A needs a register
					continue
				}
			}
			buf = buf[:0]
			for _, v := range in.Uses(buf) {
				count(v)
			}
		}
		buf = buf[:0]
		for _, v := range b.Term.Uses(buf) {
			count(v)
		}
	}
}

// immOf reports whether v is a foldable integer constant.
func (g *gen) immOf(v ir.Value) (int64, bool) {
	c, ok := g.constOf[v]
	return c, ok
}

// filterCalleeSaved drops argument registers and the result register
// (caller-saved by convention) from a used-register list.
func filterCalleeSaved(regs []uint8) []uint8 {
	var out []uint8
	for _, r := range regs {
		if r == 0 || (r >= isa.RegA0 && r < isa.RegA0+isa.NumArgs) {
			continue
		}
		out = append(out, r)
	}
	return out
}
