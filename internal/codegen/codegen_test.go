package codegen

import (
	"testing"

	"bioperfload/internal/ir"
	"bioperfload/internal/isa"
	"bioperfload/internal/minic"
)

// buildIR lowers a snippet for direct allocator/codegen inspection.
func buildIR(t *testing.T, src string) *ir.Program {
	t.Helper()
	f, err := minic.Parse("t.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := minic.Check(f)
	if err != nil {
		t.Fatal(err)
	}
	layout := map[string]ir.GlobalLayout{}
	addr := uint64(isa.DataBase)
	var syms []isa.Symbol
	for i, g := range f.Globals {
		size := uint64(g.Ty.Base.ElemSize())
		if g.Ty.IsArray {
			size = uint64(g.Ty.ArrayN) * uint64(g.Ty.Base.ElemSize())
		}
		layout[g.Name] = ir.GlobalLayout{Addr: addr, Index: int32(i), Ty: g.Ty}
		syms = append(syms, isa.Symbol{Name: g.Name, Addr: addr, Size: size, Elem: g.Ty.Base.ElemSize()})
		addr += (size + 7) &^ 7
	}
	p, err := ir.Lower(f, info, layout)
	if err != nil {
		t.Fatal(err)
	}
	for _, fn := range p.Funcs {
		ir.Optimize(fn, ir.O2())
	}
	return p
}

const loopSrc = `
int a[64];
int sum(int *p, int n) {
	int s = 0; int i;
	for (i = 0; i < n; i++) s += p[i];
	return s;
}
int main() { return sum(a, 64); }
`

func TestLivenessBasics(t *testing.T) {
	p := buildIR(t, loopSrc)
	var sum *ir.Func
	for _, f := range p.Funcs {
		if f.Name == "sum" {
			sum = f
		}
	}
	liveIn, liveOut := ir.Liveness(sum)
	if len(liveIn) != len(sum.Blocks) || len(liveOut) != len(sum.Blocks) {
		t.Fatal("liveness set count mismatch")
	}
	// The parameters are live into the loop header.
	pVal := sum.Params[0].Val
	header := -1
	for i, b := range sum.Blocks {
		for _, s := range b.Succs() {
			if s <= b.ID && int(s) < len(sum.Blocks) {
				header = int(s)
			}
		}
		_ = i
	}
	if header < 0 {
		t.Fatal("no loop header found")
	}
	if !liveIn[header].Has(pVal) {
		t.Error("pointer parameter not live into the loop header")
	}
}

func TestIntervalsCoverLoop(t *testing.T) {
	p := buildIR(t, loopSrc)
	var sum *ir.Func
	for _, f := range p.Funcs {
		if f.Name == "sum" {
			sum = f
		}
	}
	ivs, starts := buildIntervals(sum)
	_ = starts
	// The pointer parameter's interval must span essentially the
	// whole function (it is used in the loop every iteration).
	var pIv *interval
	for i := range ivs {
		if ivs[i].val == sum.Params[0].Val {
			pIv = &ivs[i]
		}
	}
	if pIv == nil {
		t.Fatal("no interval for the pointer parameter")
	}
	lastPos := int32(0)
	for _, b := range sum.Blocks {
		lastPos += int32(len(b.Instrs)) + 1
	}
	if pIv.end < lastPos/2 {
		t.Errorf("parameter interval [%d,%d] does not reach the loop (size %d)",
			pIv.start, pIv.end, lastPos)
	}
	// Intervals are sorted by start.
	for i := 1; i < len(ivs); i++ {
		if ivs[i].start < ivs[i-1].start {
			t.Fatal("intervals not sorted")
		}
	}
}

func TestAllocateRespectsPool(t *testing.T) {
	p := buildIR(t, loopSrc)
	for _, f := range p.Funcs {
		pool := []uint8{1, 2, 3}
		as := allocate(f, pool, fpPoolFull)
		seen := map[int16]bool{}
		for v := ir.Value(0); int32(v) < f.NumVals; v++ {
			if f.IsFloat[v] {
				continue
			}
			r := as.Reg[v]
			if r >= 0 {
				if r != 1 && r != 2 && r != 3 {
					t.Fatalf("%s: value v%d allocated to r%d outside pool", f.Name, v, r)
				}
				seen[r] = true
			}
			if r < 0 && as.SpillSlot[v] < 0 {
				// Dead values are fine; live ones must have a slot.
				continue
			}
		}
	}
}

func TestSmallerPoolSpillsMore(t *testing.T) {
	p := buildIR(t, `
int kernel(int a, int b, int c, int d, int e, int f) {
	int t1 = a + b; int t2 = c + d; int t3 = e + f;
	int t4 = t1 * t2; int t5 = t2 * t3; int t6 = t1 * t3;
	return t4 + t5 + t6 + a + b + c + d + e + f;
}
int main() { return kernel(1,2,3,4,5,6); }`)
	var k *ir.Func
	for _, f := range p.Funcs {
		if f.Name == "kernel" {
			k = f
		}
	}
	big := allocate(k, intPoolFull, fpPoolFull)
	small := allocate(k, intPoolFull[:3], fpPoolFull)
	if small.NumSpills <= big.NumSpills {
		t.Errorf("3-register pool spills %d, full pool spills %d",
			small.NumSpills, big.NumSpills)
	}
	if big.NumSpills != 0 {
		t.Errorf("full pool should not spill this kernel (got %d)", big.NumSpills)
	}
}

func TestSpillHeuristicKeepsLoopValues(t *testing.T) {
	// One value used heavily inside a loop, several cold values live
	// across it: the loop value must keep a register when only a few
	// registers exist.
	p := buildIR(t, `
int a[64];
int kernel(int n) {
	int cold1 = n + 1; int cold2 = n + 2; int cold3 = n + 3;
	int cold4 = n + 4; int cold5 = n + 5;
	int hot = 0; int i;
	for (i = 0; i < n; i++) hot += a[i] + hot * 3;
	return hot + cold1 + cold2 + cold3 + cold4 + cold5;
}
int main() { return kernel(10); }`)
	var k *ir.Func
	for _, f := range p.Funcs {
		if f.Name == "kernel" {
			k = f
		}
	}
	as := allocate(k, intPoolFull[:4], fpPoolFull)
	if as.NumSpills == 0 {
		t.Skip("no pressure generated; nothing to check")
	}
	// Find the weighted-use champion (the loop accumulator or index)
	// and confirm it holds a register.
	ivs, _ := buildIntervals(k)
	var hottest interval
	for _, iv := range ivs {
		if iv.uses > hottest.uses {
			hottest = iv
		}
	}
	if as.Reg[hottest.val] < 0 {
		t.Errorf("hottest value v%d (weight %d) was spilled", hottest.val, hottest.uses)
	}
}

func TestBlockWeightsLoopDepth(t *testing.T) {
	p := buildIR(t, `
int main() {
	int i; int j; int s = 0;
	for (i = 0; i < 3; i++)
		for (j = 0; j < 3; j++)
			s += i * j;
	return s;
}`)
	w := blockWeights(p.Funcs[0])
	max := int64(0)
	for _, v := range w {
		if v > max {
			max = v
		}
	}
	if max < 100 {
		t.Errorf("inner loop weight %d, want >= 100 (depth 2)", max)
	}
	if w[0] != 1 {
		t.Errorf("entry block weight %d, want 1", w[0])
	}
}

func TestGenerateRejectsMissingMain(t *testing.T) {
	p := &ir.Program{Name: "x", FuncIndex: map[string]int32{}}
	if _, err := Generate(p, nil, nil, isa.DataBase, Options{}); err == nil {
		t.Error("missing main not rejected")
	}
}

func TestFitsImm(t *testing.T) {
	if !fitsImm(0) || !fitsImm(32767) || !fitsImm(-32768) {
		t.Error("in-range immediates rejected")
	}
	if fitsImm(32768) || fitsImm(-32769) {
		t.Error("out-of-range immediates accepted")
	}
}

func TestFilterCalleeSaved(t *testing.T) {
	in := []uint8{0, 1, 15, 16, 18, 21, 22, 25}
	out := filterCalleeSaved(in)
	want := []uint8{1, 15, 22, 25}
	if len(out) != len(want) {
		t.Fatalf("got %v, want %v", out, want)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("got %v, want %v", out, want)
		}
	}
}
