// Package codegen lowers optimized IR to VRISC64 machine code. It
// performs liveness analysis, linear-scan register allocation with a
// configurable allocatable-register budget (the paper attributes the
// Pentium 4's small speedups to its eight logical registers causing
// spills once the load transformation adds temporaries — restricting
// the budget reproduces exactly that), frame layout, and instruction
// emission with source-line tables for the profiler.
package codegen

import (
	"sort"

	"bioperfload/internal/ir"
)

// interval is one value's conservative live range over the linearized
// instruction numbering.
type interval struct {
	val        ir.Value
	start, end int32
	isFloat    bool
	// uses is the loop-depth-weighted occurrence count, used by the
	// spill heuristic (evict the least-busy value).
	uses int64
}

// bitset is a dense bitset over value ids.
type bitset []uint64

func newBitset(n int32) bitset { return make(bitset, (n+63)/64) }

func (s bitset) has(v ir.Value) bool { return s[v>>6]&(1<<(uint(v)&63)) != 0 }
func (s bitset) add(v ir.Value) bool {
	w := &s[v>>6]
	m := uint64(1) << (uint(v) & 63)
	if *w&m != 0 {
		return false
	}
	*w |= m
	return true
}
func (s bitset) del(v ir.Value) { s[v>>6] &^= 1 << (uint(v) & 63) }
func (s bitset) orInto(o bitset) bool {
	changed := false
	for i := range s {
		n := s[i] | o[i]
		if n != s[i] {
			s[i] = n
			changed = true
		}
	}
	return changed
}
func (s bitset) clone() bitset {
	c := make(bitset, len(s))
	copy(c, s)
	return c
}

// liveness computes live-in and live-out sets per block with the
// standard backward iterative dataflow.
func liveness(f *ir.Func) (liveIn, liveOut []bitset) {
	n := int32(f.NumVals)
	nb := len(f.Blocks)
	liveIn = make([]bitset, nb)
	liveOut = make([]bitset, nb)
	use := make([]bitset, nb)
	def := make([]bitset, nb)
	var buf []ir.Value
	for i, b := range f.Blocks {
		liveIn[i] = newBitset(n)
		liveOut[i] = newBitset(n)
		use[i] = newBitset(n)
		def[i] = newBitset(n)
		scan := func(in *ir.Instr) {
			buf = buf[:0]
			for _, v := range in.Uses(buf) {
				if !def[i].has(v) {
					use[i].add(v)
				}
			}
			if in.Dst != ir.NoValue {
				// CMov reads its destination, already recorded by
				// Uses; the def still counts.
				def[i].add(in.Dst)
			}
		}
		for j := range b.Instrs {
			scan(&b.Instrs[j])
		}
		scan(&b.Term)
	}
	for changed := true; changed; {
		changed = false
		for i := nb - 1; i >= 0; i-- {
			b := f.Blocks[i]
			for _, s := range b.Succs() {
				if liveOut[i].orInto(liveIn[s]) {
					changed = true
				}
			}
			// in = use ∪ (out - def)
			tmp := liveOut[i].clone()
			for w := range tmp {
				tmp[w] = use[i][w] | (tmp[w] &^ def[i][w])
			}
			for w := range tmp {
				if tmp[w] != liveIn[i][w] {
					liveIn[i][w] = tmp[w]
					changed = true
				}
			}
		}
	}
	return liveIn, liveOut
}

// buildIntervals linearizes the function (block order, two positions
// per instruction) and produces one conservative interval per value.
// Use counts are weighted by loop depth (approximated from block
// nesting in the lowering's block order) so the spill heuristic keeps
// loop-busy values — e.g. the Viterbi kernel's pointer parameters —
// in registers.
func buildIntervals(f *ir.Func) ([]interval, []int32) {
	liveIn, liveOut := liveness(f)
	starts := make([]int32, len(f.Blocks)) // position of block start
	pos := int32(0)
	for i, b := range f.Blocks {
		starts[i] = pos
		pos += int32(len(b.Instrs)) + 1 // +1 for terminator
	}
	const unset = int32(-1)
	lo := make([]int32, f.NumVals)
	hi := make([]int32, f.NumVals)
	for i := range lo {
		lo[i] = unset
	}
	touch := func(v ir.Value, p int32) {
		if lo[v] == unset {
			lo[v], hi[v] = p, p
			return
		}
		if p < lo[v] {
			lo[v] = p
		}
		if p > hi[v] {
			hi[v] = p
		}
	}
	var buf []ir.Value
	for i, b := range f.Blocks {
		bStart := starts[i]
		bEnd := bStart + int32(len(b.Instrs)) // terminator position
		for v := ir.Value(0); int32(v) < f.NumVals; v++ {
			if liveIn[i].has(v) {
				touch(v, bStart)
			}
			if liveOut[i].has(v) {
				touch(v, bStart)
				touch(v, bEnd)
			}
		}
		p := bStart
		handle := func(in *ir.Instr) {
			buf = buf[:0]
			for _, v := range in.Uses(buf) {
				touch(v, p)
			}
			if in.Dst != ir.NoValue {
				touch(v2(in.Dst), p)
			}
			p++
		}
		for j := range b.Instrs {
			handle(&b.Instrs[j])
		}
		handle(&b.Term)
	}
	// Parameters are live from function entry.
	for _, pm := range f.Params {
		if lo[pm.Val] != unset {
			touch(pm.Val, 0)
		}
	}
	weights := blockWeights(f)
	uses := make([]int64, f.NumVals)
	var ubuf []ir.Value
	for i, b := range f.Blocks {
		w := weights[i]
		acc := func(in *ir.Instr) {
			ubuf = ubuf[:0]
			for _, v := range in.Uses(ubuf) {
				uses[v] += w
			}
			if in.Dst != ir.NoValue {
				uses[in.Dst] += w
			}
		}
		for j := range b.Instrs {
			acc(&b.Instrs[j])
		}
		acc(&b.Term)
	}
	var out []interval
	for v := ir.Value(0); int32(v) < f.NumVals; v++ {
		if lo[v] == unset {
			continue
		}
		out = append(out, interval{val: v, start: lo[v], end: hi[v], isFloat: f.IsFloat[v], uses: uses[v]})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].start != out[j].start {
			return out[i].start < out[j].start
		}
		return out[i].val < out[j].val
	})
	return out, starts
}

func v2(v ir.Value) ir.Value { return v }

// Assignment is the allocator's result for one function.
type Assignment struct {
	// Reg maps value -> physical register (int or FP number per the
	// value's class); -1 means spilled.
	Reg []int16
	// SpillSlot maps value -> spill slot index (-1 = none).
	SpillSlot []int32
	NumSpills int32
	// UsedInt/UsedFP list the allocated physical registers (for
	// callee-save in the prologue).
	UsedInt []uint8
	UsedFP  []uint8
}

// allocate runs linear scan for one register class pool.
func allocate(f *ir.Func, intPool, fpPool []uint8) *Assignment {
	ivs, _ := buildIntervals(f)
	as := &Assignment{
		Reg:       make([]int16, f.NumVals),
		SpillSlot: make([]int32, f.NumVals),
	}
	for i := range as.Reg {
		as.Reg[i] = -1
		as.SpillSlot[i] = -1
	}
	usedInt := map[uint8]bool{}
	usedFP := map[uint8]bool{}

	type active struct {
		iv  interval
		reg uint8
	}
	run := func(pool []uint8, wantFloat bool, used map[uint8]bool) {
		free := append([]uint8(nil), pool...)
		var act []active
		for _, iv := range ivs {
			if iv.isFloat != wantFloat {
				continue
			}
			// Expire finished intervals.
			keep := act[:0]
			for _, a := range act {
				if a.iv.end < iv.start {
					free = append(free, a.reg)
				} else {
					keep = append(keep, a)
				}
			}
			act = keep
			if len(free) > 0 {
				reg := free[0]
				free = free[1:]
				as.Reg[iv.val] = int16(reg)
				used[reg] = true
				act = append(act, active{iv: iv, reg: reg})
				continue
			}
			// Spill the least-busy live value (loop-depth-weighted
			// use count), so loop-invariant-but-hot values like the
			// Viterbi kernel's pointer parameters keep registers.
			victim := -1
			for i, a := range act {
				if victim == -1 || a.iv.uses < act[victim].iv.uses {
					victim = i
				}
			}
			if victim >= 0 && act[victim].iv.uses < iv.uses {
				v := act[victim]
				as.Reg[iv.val] = int16(v.reg)
				used[v.reg] = true
				as.Reg[v.iv.val] = -1
				as.SpillSlot[v.iv.val] = as.NumSpills
				as.NumSpills++
				act[victim] = active{iv: iv, reg: v.reg}
			} else {
				as.SpillSlot[iv.val] = as.NumSpills
				as.NumSpills++
			}
		}
	}
	run(intPool, false, usedInt)
	run(fpPool, true, usedFP)

	for r := range usedInt {
		as.UsedInt = append(as.UsedInt, r)
	}
	for r := range usedFP {
		as.UsedFP = append(as.UsedFP, r)
	}
	sort.Slice(as.UsedInt, func(i, j int) bool { return as.UsedInt[i] < as.UsedInt[j] })
	sort.Slice(as.UsedFP, func(i, j int) bool { return as.UsedFP[i] < as.UsedFP[j] })
	return as
}

// blockWeights approximates per-block loop depth from the lowering's
// block numbering: an edge from block b to an earlier (or same) block
// h is a backedge of a loop spanning [h, b]. Weight is 10^depth,
// capped.
func blockWeights(f *ir.Func) []int64 {
	depth := make([]int, len(f.Blocks))
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			if s <= b.ID {
				for i := s; i <= b.ID; i++ {
					depth[i]++
				}
			}
		}
	}
	w := make([]int64, len(f.Blocks))
	for i, d := range depth {
		if d > 4 {
			d = 4
		}
		v := int64(1)
		for k := 0; k < d; k++ {
			v *= 10
		}
		w[i] = v
	}
	return w
}
