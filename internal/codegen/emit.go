package codegen

import (
	"fmt"

	"bioperfload/internal/ir"
	"bioperfload/internal/isa"
)

// immLimit keeps folded immediates within a realistic displacement
// range (Alpha literal fields are small; we allow 16 bits).
const immLimit = 32767

// foldableImmOp reports whether the op's B operand may become an
// immediate.
func foldableImmOp(op ir.Op) bool {
	switch op {
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpRem,
		ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr,
		ir.OpCmpEQ, ir.OpCmpNE, ir.OpCmpLT, ir.OpCmpLE:
		return true
	}
	return false
}

func fitsImm(v int64) bool { return v >= -immLimit-1 && v <= immLimit }

// --- operand helpers ---

func (g *gen) scratchInt() uint8 {
	s := g.scratchRegs[g.scratchN%len(g.scratchRegs)]
	g.scratchN++
	return s
}

func (g *gen) useInt(v ir.Value, line int32) uint8 {
	if r := g.as.Reg[v]; r >= 0 {
		return uint8(r)
	}
	// A spilled single-def constant is rematerialized instead of
	// reloaded: an LDIQ costs the same as the stack load and removes
	// the spill-slot traffic entirely.
	if c, ok := g.constOf[v]; ok {
		sr := g.scratchInt()
		g.emitPos(isa.Inst{Op: isa.OpLdiq, Rd: sr, HasImm: true, Imm: c}, line)
		return sr
	}
	if s := g.as.SpillSlot[v]; s >= 0 {
		sr := g.scratchInt()
		g.emitPos(isa.Inst{Op: isa.OpLdq, Rd: sr, Ra: isa.RegSP, HasImm: true, Imm: g.spillAddr(s)}, line)
		return sr
	}
	// A value with neither register nor slot is never live; reading
	// it is a compiler bug, but emit the zero register to stay safe.
	return isa.RZero
}

func (g *gen) useFP(v ir.Value, line int32, slot int) uint8 {
	if r := g.as.Reg[v]; r >= 0 {
		return uint8(r)
	}
	if s := g.as.SpillSlot[v]; s >= 0 {
		sr := uint8(fscratch0)
		if slot == 1 {
			sr = fscratch1
		}
		g.emitPos(isa.Inst{Op: isa.OpLdt, Rd: sr, Ra: isa.RegSP, HasImm: true, Imm: g.spillAddr(s)}, line)
		return sr
	}
	return isa.FZero
}

// defInt returns the register to compute v into plus a completion
// function that stores it back if v is spilled.
func (g *gen) defInt(v ir.Value, line int32) (uint8, func()) {
	if r := g.as.Reg[v]; r >= 0 {
		return uint8(r), func() {}
	}
	if s := g.as.SpillSlot[v]; s >= 0 {
		sr := g.scratchInt()
		return sr, func() {
			g.emitPos(isa.Inst{Op: isa.OpStq, Rb: sr, Ra: isa.RegSP, HasImm: true, Imm: g.spillAddr(s)}, line)
		}
	}
	return isa.RZero, func() {} // dead value
}

func (g *gen) defFP(v ir.Value, line int32) (uint8, func()) {
	if r := g.as.Reg[v]; r >= 0 {
		return uint8(r), func() {}
	}
	if s := g.as.SpillSlot[v]; s >= 0 {
		sr := uint8(fscratch0)
		return sr, func() {
			g.emitPos(isa.Inst{Op: isa.OpStt, Rb: sr, Ra: isa.RegSP, HasImm: true, Imm: g.spillAddr(s)}, line)
		}
	}
	return isa.FZero, func() {}
}

var intALUMap = map[ir.Op]isa.Op{
	ir.OpAdd: isa.OpAdd, ir.OpSub: isa.OpSub, ir.OpMul: isa.OpMul,
	ir.OpDiv: isa.OpDiv, ir.OpRem: isa.OpRem, ir.OpAnd: isa.OpAnd,
	ir.OpOr: isa.OpOr, ir.OpXor: isa.OpXor, ir.OpShl: isa.OpSll,
	ir.OpShr: isa.OpSra, ir.OpS8Add: isa.OpS8Add,
}

var fpALUMap = map[ir.Op]isa.Op{
	ir.OpFAdd: isa.OpAddt, ir.OpFSub: isa.OpSubt,
	ir.OpFMul: isa.OpMult, ir.OpFDiv: isa.OpDivt,
}

func (g *gen) genInstr(in *ir.Instr) error {
	g.scratchN = 0
	line := in.Line
	switch in.Op {
	case ir.OpNop:
		return nil

	case ir.OpConstI:
		if g.regUses[in.Dst] == 0 && g.as.SpillSlot[in.Dst] < 0 {
			return nil // every use folded into an immediate
		}
		if _, remat := g.constOf[in.Dst]; remat && g.as.Reg[in.Dst] < 0 {
			return nil // spilled constant: rematerialized at each use
		}
		rd, done := g.defInt(in.Dst, line)
		g.emitPos(isa.Inst{Op: isa.OpLdiq, Rd: rd, HasImm: true, Imm: in.Imm}, line)
		done()

	case ir.OpConstF:
		fd, done := g.defFP(in.Dst, line)
		if float64(int64(in.FImm)) == in.FImm && in.FImm >= -1e15 && in.FImm <= 1e15 {
			sr := g.scratchInt()
			g.emitPos(isa.Inst{Op: isa.OpLdiq, Rd: sr, HasImm: true, Imm: int64(in.FImm)}, line)
			g.emitPos(isa.Inst{Op: isa.OpCvtQT, Rd: fd, Ra: sr}, line)
		} else {
			addr := g.fpoolAddr(in.FImm)
			sr := g.scratchInt()
			g.emitPos(isa.Inst{Op: isa.OpLdiq, Rd: sr, HasImm: true, Imm: int64(addr)}, line)
			g.emitPos(isa.Inst{Op: isa.OpLdt, Rd: fd, Ra: sr, HasImm: true}, line)
		}
		done()

	case ir.OpMove:
		if g.f.IsFloat[in.Dst] {
			ra := g.useFP(in.A, line, 0)
			fd, done := g.defFP(in.Dst, line)
			if fd != ra {
				g.emitPos(isa.Inst{Op: isa.OpFMov, Rd: fd, Ra: ra}, line)
			}
			done()
		} else {
			ra := g.useInt(in.A, line)
			rd, done := g.defInt(in.Dst, line)
			if rd != ra {
				g.emitPos(isa.Inst{Op: isa.OpAdd, Rd: rd, Ra: ra, HasImm: true, Imm: 0}, line)
			}
			done()
		}

	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpRem,
		ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr, ir.OpS8Add:
		ra := g.useInt(in.A, line)
		op := intALUMap[in.Op]
		if c, ok := g.immOf(in.B); ok && fitsImm(c) {
			rd, done := g.defInt(in.Dst, line)
			g.emitPos(isa.Inst{Op: op, Rd: rd, Ra: ra, HasImm: true, Imm: c}, line)
			done()
			break
		}
		rb := g.useInt(in.B, line)
		rd, done := g.defInt(in.Dst, line)
		g.emitPos(isa.Inst{Op: op, Rd: rd, Ra: ra, Rb: rb}, line)
		done()

	case ir.OpCmpEQ, ir.OpCmpNE, ir.OpCmpLT, ir.OpCmpLE, ir.OpCmpGT, ir.OpCmpGE:
		g.genIntCmp(in)

	case ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv:
		fa := g.useFP(in.A, line, 0)
		fb := g.useFP(in.B, line, 1)
		fd, done := g.defFP(in.Dst, line)
		g.emitPos(isa.Inst{Op: fpALUMap[in.Op], Rd: fd, Ra: fa, Rb: fb}, line)
		done()

	case ir.OpFNeg:
		fa := g.useFP(in.A, line, 0)
		fd, done := g.defFP(in.Dst, line)
		g.emitPos(isa.Inst{Op: isa.OpFNeg, Rd: fd, Ra: fa}, line)
		done()

	case ir.OpFCmpEQ, ir.OpFCmpNE, ir.OpFCmpLT, ir.OpFCmpLE, ir.OpFCmpGT, ir.OpFCmpGE:
		g.genFPCmp(in)

	case ir.OpCvtIF:
		ra := g.useInt(in.A, line)
		fd, done := g.defFP(in.Dst, line)
		g.emitPos(isa.Inst{Op: isa.OpCvtQT, Rd: fd, Ra: ra}, line)
		done()

	case ir.OpCvtFI:
		fa := g.useFP(in.A, line, 0)
		rd, done := g.defInt(in.Dst, line)
		g.emitPos(isa.Inst{Op: isa.OpCvtTQ, Rd: rd, Ra: fa}, line)
		done()

	case ir.OpLoad:
		ra := g.useInt(in.A, line)
		if in.FloatMem {
			fd, done := g.defFP(in.Dst, line)
			g.emitPos(isa.Inst{Op: isa.OpLdt, Rd: fd, Ra: ra, HasImm: true, Imm: in.Off}, line)
			done()
		} else {
			rd, done := g.defInt(in.Dst, line)
			op := isa.OpLdq
			if in.Width == 1 {
				op = isa.OpLdbu
			}
			g.emitPos(isa.Inst{Op: op, Rd: rd, Ra: ra, HasImm: true, Imm: in.Off}, line)
			done()
		}

	case ir.OpStore:
		ra := g.useInt(in.A, line)
		if in.FloatMem {
			fb := g.useFP(in.B, line, 0)
			g.emitPos(isa.Inst{Op: isa.OpStt, Rb: fb, Ra: ra, HasImm: true, Imm: in.Off}, line)
		} else {
			rb := g.useInt(in.B, line)
			op := isa.OpStq
			if in.Width == 1 {
				op = isa.OpStb
			}
			g.emitPos(isa.Inst{Op: op, Rb: rb, Ra: ra, HasImm: true, Imm: in.Off}, line)
		}

	case ir.OpFrameAddr:
		rd, done := g.defInt(in.Dst, line)
		g.emitPos(isa.Inst{Op: isa.OpLda, Rd: rd, Ra: isa.RegSP, HasImm: true, Imm: g.slotOff[in.Sym]}, line)
		done()

	case ir.OpCMov:
		// CMov reads its destination, so load it first if spilled.
		var rd uint8
		var done func()
		if r := g.as.Reg[in.Dst]; r >= 0 {
			rd, done = uint8(r), func() {}
		} else if s := g.as.SpillSlot[in.Dst]; s >= 0 {
			sr := g.scratchInt()
			g.emitPos(isa.Inst{Op: isa.OpLdq, Rd: sr, Ra: isa.RegSP, HasImm: true, Imm: g.spillAddr(s)}, line)
			rd = sr
			done = func() {
				g.emitPos(isa.Inst{Op: isa.OpStq, Rb: sr, Ra: isa.RegSP, HasImm: true, Imm: g.spillAddr(s)}, line)
			}
		} else {
			return nil // dead
		}
		ra := g.useInt(in.A, line)
		rb := g.useInt(in.B, line)
		g.emitPos(isa.Inst{Op: isa.OpCmovNe, Rd: rd, Ra: ra, Rb: rb}, line)
		done()

	case ir.OpPrint:
		if g.f.IsFloat[in.A] {
			fa := g.useFP(in.A, line, 0)
			g.emitPos(isa.Inst{Op: isa.OpPrintF, Ra: fa}, line)
		} else {
			ra := g.useInt(in.A, line)
			g.emitPos(isa.Inst{Op: isa.OpPrint, Ra: ra}, line)
		}

	case ir.OpCall:
		g.genCall(in)

	default:
		return fmt.Errorf("codegen: unhandled IR op %s", in.Op)
	}
	return nil
}

// genIntCmp lowers the six comparisons onto cmpeq/cmplt/cmple,
// swapping operands for GT/GE and inverting for NE (Alpha style).
func (g *gen) genIntCmp(in *ir.Instr) {
	line := in.Line
	switch in.Op {
	case ir.OpCmpEQ, ir.OpCmpLT, ir.OpCmpLE, ir.OpCmpNE:
		op := isa.OpCmpEq
		switch in.Op {
		case ir.OpCmpLT:
			op = isa.OpCmpLt
		case ir.OpCmpLE:
			op = isa.OpCmpLe
		}
		ra := g.useInt(in.A, line)
		var tmp uint8
		var done func()
		if in.Op == ir.OpCmpNE {
			tmp = g.scratchInt()
			done = func() {}
		} else {
			tmp, done = g.defInt(in.Dst, line)
		}
		if c, ok := g.immOf(in.B); ok && fitsImm(c) {
			g.emitPos(isa.Inst{Op: op, Rd: tmp, Ra: ra, HasImm: true, Imm: c}, line)
		} else {
			rb := g.useInt(in.B, line)
			g.emitPos(isa.Inst{Op: op, Rd: tmp, Ra: ra, Rb: rb}, line)
		}
		if in.Op == ir.OpCmpNE {
			rd, dd := g.defInt(in.Dst, line)
			g.emitPos(isa.Inst{Op: isa.OpCmpEq, Rd: rd, Ra: tmp, HasImm: true, Imm: 0}, line)
			dd()
		}
		done()
	case ir.OpCmpGT, ir.OpCmpGE:
		// a > b  ==  b < a;  a >= b  ==  b <= a.
		op := isa.OpCmpLt
		if in.Op == ir.OpCmpGE {
			op = isa.OpCmpLe
		}
		rb := g.useInt(in.B, line)
		ra := g.useInt(in.A, line)
		rd, done := g.defInt(in.Dst, line)
		g.emitPos(isa.Inst{Op: op, Rd: rd, Ra: rb, Rb: ra}, line)
		done()
	}
}

func (g *gen) genFPCmp(in *ir.Instr) {
	line := in.Line
	var op isa.Op
	a, b := in.A, in.B
	invert := false
	switch in.Op {
	case ir.OpFCmpEQ:
		op = isa.OpCmpTeq
	case ir.OpFCmpNE:
		op = isa.OpCmpTeq
		invert = true
	case ir.OpFCmpLT:
		op = isa.OpCmpTlt
	case ir.OpFCmpLE:
		op = isa.OpCmpTle
	case ir.OpFCmpGT:
		op = isa.OpCmpTlt
		a, b = b, a
	case ir.OpFCmpGE:
		op = isa.OpCmpTle
		a, b = b, a
	}
	fa := g.useFP(a, line, 0)
	fb := g.useFP(b, line, 1)
	if invert {
		tmp := g.scratchInt()
		g.emitPos(isa.Inst{Op: op, Rd: tmp, Ra: fa, Rb: fb}, line)
		rd, done := g.defInt(in.Dst, line)
		g.emitPos(isa.Inst{Op: isa.OpCmpEq, Rd: rd, Ra: tmp, HasImm: true, Imm: 0}, line)
		done()
		return
	}
	rd, done := g.defInt(in.Dst, line)
	g.emitPos(isa.Inst{Op: op, Rd: rd, Ra: fa, Rb: fb}, line)
	done()
}

func (g *gen) genCall(in *ir.Instr) {
	line := in.Line
	callee := g.irp.Funcs[in.Sym]
	intIdx, fpIdx, ov := 0, 0, 0
	for i, pm := range callee.Params {
		g.scratchN = 0
		arg := in.Args[i]
		if pm.IsFloat {
			if fpIdx < isa.NumArgs {
				src := g.useFP(arg, line, 0)
				g.emitPos(isa.Inst{Op: isa.OpFMov, Rd: uint8(isa.FRegA0 + fpIdx), Ra: src}, line)
			} else {
				src := g.useFP(arg, line, 0)
				g.emitPos(isa.Inst{Op: isa.OpStt, Rb: src, Ra: isa.RegSP, HasImm: true, Imm: int64(ov) * 8}, line)
				ov++
			}
			fpIdx++
		} else {
			if intIdx < isa.NumArgs {
				src := g.useInt(arg, line)
				g.emitPos(isa.Inst{Op: isa.OpAdd, Rd: uint8(isa.RegA0 + intIdx), Ra: src, HasImm: true, Imm: 0}, line)
			} else {
				src := g.useInt(arg, line)
				g.emitPos(isa.Inst{Op: isa.OpStq, Rb: src, Ra: isa.RegSP, HasImm: true, Imm: int64(ov) * 8}, line)
				ov++
			}
			intIdx++
		}
	}
	at := g.emitPos(isa.Inst{Op: isa.OpJsr, Rd: isa.RegRA, Target: -1}, line)
	g.callFixups = append(g.callFixups, fixup{at: at, fn: in.Sym})
	if in.Dst != ir.NoValue {
		g.scratchN = 0
		if g.f.IsFloat[in.Dst] {
			fd, done := g.defFP(in.Dst, line)
			g.emitPos(isa.Inst{Op: isa.OpFMov, Rd: fd, Ra: isa.FRegV0}, line)
			done()
		} else {
			rd, done := g.defInt(in.Dst, line)
			g.emitPos(isa.Inst{Op: isa.OpAdd, Rd: rd, Ra: isa.RegV0, HasImm: true, Imm: 0}, line)
			done()
		}
	}
}

func (g *gen) genEpilogue(line int32) {
	so := g.saveOff
	if g.makesCalls {
		g.emitPos(isa.Inst{Op: isa.OpLdq, Rd: isa.RegRA, Ra: isa.RegSP, HasImm: true, Imm: so}, line)
		so += 8
	}
	for _, r := range g.savedInt {
		g.emitPos(isa.Inst{Op: isa.OpLdq, Rd: r, Ra: isa.RegSP, HasImm: true, Imm: so}, line)
		so += 8
	}
	for _, r := range g.savedFP {
		g.emitPos(isa.Inst{Op: isa.OpLdt, Rd: r, Ra: isa.RegSP, HasImm: true, Imm: so}, line)
		so += 8
	}
	if g.frameSize > 0 {
		g.emitPos(isa.Inst{Op: isa.OpLda, Rd: isa.RegSP, Ra: isa.RegSP, HasImm: true, Imm: g.frameSize}, line)
	}
	g.emitPos(isa.Inst{Op: isa.OpRet, Ra: isa.RegRA}, line)
}

// nextLive returns the id of the next reachable block after index i,
// or -1.
func nextLive(f *ir.Func, live []bool, i int) int32 {
	for j := i + 1; j < len(f.Blocks); j++ {
		if live[j] {
			return int32(j)
		}
	}
	return -1
}

func (g *gen) genTerm(b *ir.Block, live []bool) error {
	g.scratchN = 0
	t := &b.Term
	line := t.Line
	next := nextLive(g.f, live, int(b.ID))
	switch t.Op {
	case ir.OpJump:
		if t.True != next {
			at := g.emitPos(isa.Inst{Op: isa.OpBr, Target: -1}, line)
			g.brFixups = append(g.brFixups, brFixup{at: at, block: t.True})
		}
	case ir.OpBranch:
		ra := g.useInt(t.A, line)
		at := g.emitPos(isa.Inst{Op: isa.OpBne, Ra: ra, Target: -1}, line)
		g.brFixups = append(g.brFixups, brFixup{at: at, block: t.True})
		if t.False != next {
			at2 := g.emitPos(isa.Inst{Op: isa.OpBr, Target: -1}, line)
			g.brFixups = append(g.brFixups, brFixup{at: at2, block: t.False})
		}
	case ir.OpRet:
		if t.A != ir.NoValue {
			if g.f.IsFloat[t.A] {
				src := g.useFP(t.A, line, 0)
				if src != isa.FRegV0 {
					g.emitPos(isa.Inst{Op: isa.OpFMov, Rd: isa.FRegV0, Ra: src}, line)
				}
			} else {
				src := g.useInt(t.A, line)
				if src != isa.RegV0 {
					g.emitPos(isa.Inst{Op: isa.OpAdd, Rd: isa.RegV0, Ra: src, HasImm: true, Imm: 0}, line)
				}
			}
		}
		g.genEpilogue(line)
	default:
		return fmt.Errorf("codegen: bad terminator %s", t.Op)
	}
	return nil
}

// paramMove is a pending register-to-register parameter-binding move.
type paramMove = struct {
	src, dst uint8
	isFP     bool
}

// emitParallelMoves resolves parameter-binding moves whose
// destinations may overlap other moves' sources (leaf functions can
// allocate argument registers as homes). Moves whose destination is
// not a pending source go first; a cycle is broken by parking one
// source in a scratch register.
func (g *gen) emitParallelMoves(moves []paramMove, line int32) {
	pending := append([]paramMove(nil), moves...)
	for len(pending) > 0 {
		progress := false
		for i := 0; i < len(pending); i++ {
			mv := pending[i]
			blocked := false
			for j, other := range pending {
				if j != i && other.isFP == mv.isFP && other.src == mv.dst {
					blocked = true
					break
				}
			}
			if blocked {
				continue
			}
			if mv.isFP {
				g.emitPos(isa.Inst{Op: isa.OpFMov, Rd: mv.dst, Ra: mv.src}, line)
			} else {
				g.emitPos(isa.Inst{Op: isa.OpAdd, Rd: mv.dst, Ra: mv.src, HasImm: true, Imm: 0}, line)
			}
			pending = append(pending[:i], pending[i+1:]...)
			progress = true
			i--
		}
		if !progress {
			// Cycle: park the first move's source in a scratch and
			// retarget every reader of that source.
			mv := pending[0]
			if mv.isFP {
				g.emitPos(isa.Inst{Op: isa.OpFMov, Rd: fscratch0, Ra: mv.src}, line)
			} else {
				g.emitPos(isa.Inst{Op: isa.OpAdd, Rd: scratch0, Ra: mv.src, HasImm: true, Imm: 0}, line)
			}
			for i := range pending {
				if pending[i].isFP == mv.isFP && pending[i].src == mv.src {
					if mv.isFP {
						pending[i].src = fscratch0
					} else {
						pending[i].src = scratch0
					}
				}
			}
		}
	}
}
